(* The experiment harness: one section per figure of the paper and per
   quantitative claim in its text (the paper has no measured tables;
   see DESIGN.md's experiment index and EXPERIMENTS.md for the mapping
   and recorded results). Run with:

     dune exec bench/main.exe            # everything
     dune exec bench/main.exe -- C1 C4   # selected sections
*)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload
open Dgc_baselines

let say fmt = Format.printf (fmt ^^ "@.")

let section id title =
  say "";
  say "==================================================================";
  say "EXP-%s  %s" id title;
  say "=================================================================="

(* Aligned table printing. *)
let table header rows =
  let all = header :: rows in
  let cols = List.length header in
  let width c =
    List.fold_left (fun acc row -> max acc (String.length (List.nth row c))) 0 all
  in
  let widths = List.init cols width in
  let print_row row =
    say "  %s"
      (String.concat "  "
         (List.map2
            (fun w cell -> cell ^ String.make (w - String.length cell) ' ')
            widths row))
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let base_cfg =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_interval = Sim_time.of_seconds 10.;
    trace_jitter = Sim_time.of_seconds 1.;
    trace_duration = Sim_time.zero;
    latency = Latency.Uniform (Sim_time.of_millis 1., Sim_time.of_millis 10.);
    oracle_checks = true;
  }

let sites n = List.init n Site_id.of_int
let b2s = function true -> "yes" | false -> "no"

(* Run until the oracle sees no garbage; return rounds used (or None). *)
let rounds_to_collect ?(max_rounds = 60) sim =
  let rec loop n =
    if Dgc_oracle.Oracle.garbage_count sim.Sim.eng = 0 then Some n
    else if n >= max_rounds then None
    else begin
      Sim.run_rounds sim 1;
      loop (n + 1)
    end
  in
  loop 0

let verdict_str = function
  | Some (v, _) -> Verdict.to_string v
  | None -> "(running)"

(* ---------------------------------------------------------------------- *)
(* F1..F6: the paper's figures as executable scenarios                     *)
(* ---------------------------------------------------------------------- *)

let exp_f1 () =
  section "F1" "Figure 1: local tracing vs the f-g cycle";
  let f = Scenario.fig1 ~cfg:base_cfg () in
  let sim = f.Scenario.f1_sim in
  let eng = sim.Sim.eng in
  Scenario.settle sim ~rounds:3;
  let alive o = Heap.mem (Engine.site eng (Oid.site o)).Site.heap o in
  table
    [ "object"; "role"; "alive after 3 local rounds" ]
    [
      [ "d"; "acyclic garbage"; b2s (alive f.Scenario.f1_d) ];
      [ "e"; "acyclic garbage"; b2s (alive f.Scenario.f1_e) ];
      [ "f"; "on the 2-site cycle"; b2s (alive f.Scenario.f1_f) ];
      [ "g"; "on the 2-site cycle"; b2s (alive f.Scenario.f1_g) ];
      [ "c"; "live"; b2s (alive f.Scenario.f1_c) ];
    ];
  Sim.start sim;
  let r = rounds_to_collect sim in
  say "back tracing collected the cycle after %s further rounds"
    (match r with Some n -> string_of_int n | None -> "(never!)");
  List.iter
    (fun (id, st) ->
      say "  trace %a: %s, %d msgs, participants %d" Trace_id.pp id
        (verdict_str st.Back_trace.ts_outcome)
        st.Back_trace.ts_msgs
        (Site_id.Set.cardinal st.Back_trace.ts_participants))
    (Back_trace.stats (Collector.back sim.Sim.col))

let exp_f2 () =
  section "F2" "Figure 2: insets of suspected outrefs";
  let f = Scenario.fig2 ~cfg:base_cfg () in
  let sim = f.Scenario.f2_sim in
  let eng = sim.Sim.eng in
  Scenario.settle sim ~rounds:8;
  let q = Oid.site f.Scenario.f2_a in
  (match Tables.find_outref (Engine.site eng q).Site.tables f.Scenario.f2_c with
  | Some o ->
      say "inset of outref c at Q = {%s}   (paper: {a, b})"
        (String.concat ", " (List.map Oid.to_string o.Ioref.or_inset))
  | None -> say "outref c missing!");
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  ignore (Collector.start_back_trace sim.Sim.col q f.Scenario.f2_c);
  Sim.run_for sim (Sim_time.of_seconds 5.);
  say "back trace from outref c: %s (finds all paths; paper §4.1)"
    (match !outcome with Some v -> Verdict.to_string v | None -> "(running)")

let exp_f3 () =
  section "F3" "Figure 3: a branching back trace returning Live";
  let f = Scenario.fig3 ~cfg:base_cfg () in
  let sim = f.Scenario.f3_sim in
  Scenario.settle sim ~rounds:4;
  (* Everything is live; artificially suspect the whole path except the
     root-side inref a, as in the paper's setup. *)
  let eng = sim.Sim.eng in
  Array.iter
    (fun st ->
      Tables.iter_inrefs st.Site.tables (fun ir ->
          if not (Oid.equal ir.Ioref.ir_target f.Scenario.f3_a) then
            List.iter
              (fun src -> Ioref.set_source_dist ir src.Ioref.src_site ~dist:50)
              ir.Ioref.ir_sources))
    (Engine.sites eng);
  Collector.force_local_trace_all sim.Sim.col;
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  ignore
    (Collector.start_back_trace sim.Sim.col (Oid.site f.Scenario.f3_c)
       f.Scenario.f3_d);
  Sim.run_for sim (Sim_time.of_seconds 5.);
  say "trace from d branches at inref c to P and Q; outcome: %s"
    (match !outcome with Some v -> Verdict.to_string v | None -> "(running)");
  say "(one branch dies on the visited mark, the other reaches the root)"

let exp_f4 () =
  section "F4" "Figure 4: why outset computation needs SCCs";
  let f = Scenario.fig4 ~cfg:base_cfg () in
  let eng = f.Scenario.f4_sim.Sim.eng in
  let q = Engine.site eng (Oid.site f.Scenario.f4_a) in
  Array.iter
    (fun st ->
      Tables.iter_inrefs st.Site.tables (fun ir ->
          List.iter
            (fun src -> Ioref.set_source_dist ir src.Ioref.src_site ~dist:50)
            ir.Ioref.ir_sources))
    (Engine.sites eng);
  let inp = Local_trace.input_of_site eng q in
  let outset_of mode r =
    let oc = Local_trace.compute ~mode inp in
    List.find_map
      (fun res ->
        if Oid.equal res.Local_trace.i_ref r then
          Some
            (String.concat ","
               (List.map Oid.to_string res.Local_trace.i_outset))
        else None)
      oc.Local_trace.in_results
    |> Option.value ~default:"?"
  in
  table
    [ "mode"; "outset(a)"; "outset(b)" ]
    [
      [
        "bottom-up (SCC, §5.2)";
        outset_of Local_trace.Bottom_up f.Scenario.f4_a;
        outset_of Local_trace.Bottom_up f.Scenario.f4_b;
      ];
      [
        "independent (§5.1)";
        outset_of Local_trace.Independent f.Scenario.f4_a;
        outset_of Local_trace.Independent f.Scenario.f4_b;
      ];
      [
        "naive first cut (broken)";
        outset_of Local_trace.Naive_bottom_up f.Scenario.f4_a;
        outset_of Local_trace.Naive_bottom_up f.Scenario.f4_b;
      ];
    ];
  say "the naive mode loses c from b's outset across the back edge z->x"

let exp_f5_f6 () =
  section "F5/F6" "Figures 5-6: the mutation race and the barriers";
  let run name cfg use_fig6 =
    let _, outcome, violation = Scenario.fig5_race ~use_fig6 ~cfg () in
    [
      name;
      (match outcome with Some v -> Verdict.to_string v | None -> "timeout");
      (match violation with Some _ -> "UNSAFE (oracle caught it)" | None -> "safe");
    ]
  in
  table
    [ "configuration"; "trace outcome"; "safety" ]
    [
      run "full machinery (fig 5)" base_cfg false;
      run "full machinery (fig 6)" base_cfg true;
      run "no transfer barrier"
        { base_cfg with Config.enable_transfer_barrier = false }
        false;
      run "no transfer barrier (fig 6)"
        { base_cfg with Config.enable_transfer_barrier = false }
        true;
    ];
  say "the correct outcome is Live: the mutator re-anchored z before";
  say "cutting the old path; without the barrier the trace misses the";
  say "new path and wrongly kills the live inref g"

(* ---------------------------------------------------------------------- *)
(* C1: message complexity 2E + N (§4.6)                                    *)
(* ---------------------------------------------------------------------- *)

let exp_c1 () =
  section "C1" "Message complexity of a back trace (paper: 2E + N)";
  let rows =
    List.concat_map
      (fun span ->
        List.map
          (fun per_site ->
            let cfg = { base_cfg with Config.n_sites = span } in
            let sim = Sim.make ~cfg () in
            ignore
              (Graph_gen.ring sim.Sim.eng ~sites:(sites span) ~per_site
                 ~rooted:false);
            Sim.start sim;
            ignore (rounds_to_collect sim);
            (* Pick the trace that confirmed the garbage. *)
            let garbage_trace =
              List.find_opt
                (fun (_, st) ->
                  match st.Back_trace.ts_outcome with
                  | Some (Verdict.Garbage, _) -> true
                  | _ -> false)
                (Back_trace.stats (Collector.back sim.Sim.col))
            in
            match garbage_trace with
            | Some (_, st) ->
                let e = st.Back_trace.ts_calls in
                let n = Site_id.Set.cardinal st.Back_trace.ts_participants in
                let latency =
                  match st.Back_trace.ts_outcome with
                  | Some (_, at) ->
                      Printf.sprintf "%.0fms"
                        (1000.
                        *. (Sim_time.to_seconds at
                           -. Sim_time.to_seconds st.Back_trace.ts_started))
                  | None -> "-"
                in
                [
                  string_of_int span;
                  string_of_int per_site;
                  string_of_int span (* inter-site refs on the ring *);
                  string_of_int e;
                  string_of_int n;
                  string_of_int st.Back_trace.ts_msgs;
                  string_of_int ((2 * e) + n);
                  latency;
                ]
            | None ->
                [ string_of_int span; string_of_int per_site; "-"; "-"; "-";
                  "-"; "-"; "-" ])
          [ 1; 3 ])
      [ 2; 3; 4; 6; 8 ]
  in
  table
    [ "span"; "objs/site"; "ring E"; "calls E'"; "sites N"; "msgs"; "2E'+N";
      "latency" ]
    rows;
  say "msgs <= 2E'+N: each call pairs with a reply or times out, plus";
  say "one report per participant (the initiator is informed locally);";
  say "a whole trace takes milliseconds against minute-scale trace";
  say "intervals (§4.7)"

(* ---------------------------------------------------------------------- *)
(* C2: the distance-growth theorem (§3)                                    *)
(* ---------------------------------------------------------------------- *)

let exp_c2 () =
  section "C2" "Distance heuristic: garbage distances grow without bound";
  let spans = [ 2; 3; 5; 8 ] in
  let per_round =
    List.map
      (fun span ->
        let cfg = { base_cfg with Config.n_sites = span } in
        let sim = Sim.make ~cfg () in
        let eng = sim.Sim.eng in
        let objs = Graph_gen.ring eng ~sites:(sites span) ~per_site:2 ~rooted:false in
        let min_dist () =
          List.fold_left
            (fun acc o ->
              match Tables.find_inref (Engine.site eng (Oid.site o)).Site.tables o with
              | Some ir -> min acc (Ioref.inref_dist ir)
              | None -> acc)
            max_int objs
        in
        List.init 8 (fun r ->
            Scenario.settle sim ~rounds:1;
            (r + 1, min_dist ())))
      spans
  in
  table
    ("round" :: List.map (fun s -> Printf.sprintf "span %d" s) spans)
    (List.init 8 (fun r ->
         string_of_int (r + 1)
         :: List.map
              (fun col -> string_of_int (snd (List.nth col r)))
              per_round));
  say "theorem check: after R rounds every min distance is >= R"

(* ---------------------------------------------------------------------- *)
(* C3: the back-threshold policy (§4.3)                                    *)
(* ---------------------------------------------------------------------- *)

let exp_c3 () =
  section "C3" "Back threshold Δ2: abortive traces vs collection delay";
  (* Workload: a 3-site garbage ring plus a live deep structure whose
     iorefs sit at distance 5 — permanently suspected live objects. *)
  let rows =
    List.map
      (fun threshold2 ->
        let cfg = { base_cfg with Config.n_sites = 6; threshold2 } in
        let sim = Sim.make ~cfg () in
        let eng = sim.Sim.eng in
        ignore
          (Graph_gen.ring eng
             ~sites:[ Site_id.of_int 0; Site_id.of_int 1; Site_id.of_int 2 ]
             ~per_site:2 ~rooted:false);
        (* live chain 5 hops deep ending in a 2-site live cycle *)
        ignore
          (Graph_gen.chain eng
             ~sites:
               [
                 Site_id.of_int 0;
                 Site_id.of_int 1;
                 Site_id.of_int 2;
                 Site_id.of_int 3;
                 Site_id.of_int 4;
                 Site_id.of_int 5;
               ]
             ~per_site:1 ~rooted:true);
        Sim.start sim;
        let r = rounds_to_collect ~max_rounds:80 sim in
        Sim.run_rounds sim 10;
        let m = Engine.metrics eng in
        [
          string_of_int threshold2;
          (match r with Some n -> string_of_int n | None -> ">80");
          string_of_int (Metrics.get m "back.traces_started");
          string_of_int (Metrics.get m "back.outcome_live");
          string_of_int (Metrics.get m "back.outcome_garbage");
          string_of_int (Metrics.get m "back.msgs");
        ])
      [ 3; 4; 6; 8; 12 ]
  in
  table
    [ "Δ2"; "rounds to collect"; "traces"; "live verdicts"; "garbage"; "msgs" ]
    rows;
  say "low Δ2 fires early, abortive traces on live suspects; high Δ2";
  say "delays collection; threshold bumping silences live suspects";
  say "after a few attempts in every configuration"

(* ---------------------------------------------------------------------- *)
(* C4: inset computation cost (§5.1 vs §5.2), with bechamel                *)
(* ---------------------------------------------------------------------- *)

let build_suspect_graph ~n_objects ~n_inrefs ~shape =
  let cfg = { base_cfg with Config.n_sites = 3 } in
  let eng = Engine.create cfg in
  let q = Engine.site eng (Site_id.of_int 1) in
  let objs = Array.init n_objects (fun _ -> Heap.alloc q.Site.heap) in
  (match shape with
  | `Chain ->
      Array.iteri
        (fun i o ->
          if i + 1 < n_objects then
            Heap.add_field q.Site.heap ~obj:o ~target:objs.(i + 1))
        objs
  | `Random ->
      let rng = Rng.create ~seed:5 in
      for _ = 1 to n_objects * 2 do
        let a = objs.(Rng.int rng n_objects) in
        let b = objs.(Rng.int rng n_objects) in
        Heap.add_field q.Site.heap ~obj:a ~target:b
      done
  | `Braid k ->
      (* A chain where node i also points at portal (i mod k); each
         portal holds its own remote reference. Suffix outsets repeat,
         so the same unions recur — the memoization workload. *)
      let portals =
        Array.init k (fun j ->
            let p = Heap.alloc q.Site.heap in
            let r = Builder.obj eng (Site_id.of_int 2) in
            Builder.link eng ~src:p ~dst:r;
            ignore j;
            p)
      in
      Array.iteri
        (fun i o ->
          if i + 1 < n_objects then
            Heap.add_field q.Site.heap ~obj:o ~target:objs.(i + 1);
          Heap.add_field q.Site.heap ~obj:o ~target:portals.(i mod k))
        objs);
  let remote = Builder.obj eng (Site_id.of_int 2) in
  Builder.link eng ~src:objs.(n_objects - 1) ~dst:remote;
  for i = 0 to n_inrefs - 1 do
    let target = objs.(i * (n_objects / n_inrefs)) in
    let holder = Builder.obj eng (Site_id.of_int 0) in
    Builder.link eng ~src:holder ~dst:target;
    Builder.set_source_distance eng ~inref:target ~src:(Site_id.of_int 0) 50
  done;
  Local_trace.input_of_site eng q

let exp_c4 () =
  section "C4" "Inset computation: §5.2 bottom-up vs §5.1 independent";
  let shapes =
    [
      ("chain n=400 inrefs=8", build_suspect_graph ~n_objects:400 ~n_inrefs:8 ~shape:`Chain);
      ("chain n=400 inrefs=40", build_suspect_graph ~n_objects:400 ~n_inrefs:40 ~shape:`Chain);
      ("rand n=400 inrefs=8", build_suspect_graph ~n_objects:400 ~n_inrefs:8 ~shape:`Random);
      ("rand n=400 inrefs=40", build_suspect_graph ~n_objects:400 ~n_inrefs:40 ~shape:`Random);
    ]
  in
  let rows =
    List.map
      (fun (name, inp) ->
        let bu = (Local_trace.compute ~mode:Local_trace.Bottom_up inp).Local_trace.ot_stats in
        let ind =
          (Local_trace.compute ~mode:Local_trace.Independent inp).Local_trace.ot_stats
        in
        [
          name;
          string_of_int bu.Local_trace.suspect_visits;
          string_of_int ind.Local_trace.suspect_visits;
          Printf.sprintf "%.1fx"
            (float_of_int ind.Local_trace.suspect_visits
            /. float_of_int (max 1 bu.Local_trace.suspect_visits));
          string_of_int bu.Local_trace.memo_hits;
        ])
      shapes
  in
  table
    [ "shape"; "visits (bottom-up)"; "visits (independent)"; "ratio"; "memo hits" ]
    rows;
  say "independent tracing rescans shared structure once per suspected";
  say "inref — the paper's O(n*m); bottom-up stays linear";
  (* wall-clock via bechamel *)
  say "";
  say "wall-clock (bechamel, ns/run):";
  let open Bechamel in
  let inp = build_suspect_graph ~n_objects:400 ~n_inrefs:40 ~shape:`Chain in
  let tests =
    Test.make_grouped ~name:"inset"
      [
        Test.make ~name:"bottom-up"
          (Staged.stage (fun () ->
               ignore (Local_trace.compute ~mode:Local_trace.Bottom_up inp)));
        Test.make ~name:"independent"
          (Staged.stage (fun () ->
               ignore (Local_trace.compute ~mode:Local_trace.Independent inp)));
      ]
  in
  let cfg_b =
    Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ~kde:None ()
  in
  let raw = Benchmark.all cfg_b [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name o ->
      match Analyze.OLS.estimates o with
      | Some [ est ] -> say "  %-20s %12.0f ns/run" name est
      | _ -> say "  %-20s (no estimate)" name)
    results

(* ---------------------------------------------------------------------- *)
(* C5: outset sharing and memoized unions (§5.2)                            *)
(* ---------------------------------------------------------------------- *)

let exp_c5 () =
  section "C5" "Outset sharing: distinct outsets << suspected objects";
  let rows =
    List.map
      (fun (name, inp) ->
        let st = (Local_trace.compute ~mode:Local_trace.Bottom_up inp).Local_trace.ot_stats in
        [
          name;
          string_of_int st.Local_trace.suspect_visits;
          string_of_int st.Local_trace.distinct_outsets;
          string_of_int st.Local_trace.union_calls;
          string_of_int st.Local_trace.memo_hits;
          Printf.sprintf "%.0f%%"
            (100.
            *. float_of_int st.Local_trace.memo_hits
            /. float_of_int (max 1 st.Local_trace.union_calls));
        ])
      [
        ("chain 500/10", build_suspect_graph ~n_objects:500 ~n_inrefs:10 ~shape:`Chain);
        ("chain 2000/40", build_suspect_graph ~n_objects:2000 ~n_inrefs:40 ~shape:`Chain);
        ("random 500/10", build_suspect_graph ~n_objects:500 ~n_inrefs:10 ~shape:`Random);
        ("random 2000/40", build_suspect_graph ~n_objects:2000 ~n_inrefs:40 ~shape:`Random);
        ("braid-4 500/10", build_suspect_graph ~n_objects:500 ~n_inrefs:10 ~shape:(`Braid 4));
        ("braid-8 2000/40", build_suspect_graph ~n_objects:2000 ~n_inrefs:40 ~shape:(`Braid 8));
      ]
  in
  table
    [ "shape n/inrefs"; "suspects"; "distinct outsets"; "unions"; "memo hits"; "hit rate" ]
    rows;
  (* memoization ablation: same braid, memo on vs off *)
  say "";
  say "memoized-union ablation (bechamel, ns per outset-store run):";
  let open Bechamel in
  let braid_sets =
    (* the union sequence a suspect-phase run would issue on a braid *)
    let st0 = Outset_store.create () in
    ignore st0;
    List.init 64 (fun i -> i mod 8)
  in
  let run_store ~memoize =
    let st = Outset_store.create ~memoize () in
    let singletons =
      Array.init 8 (fun i ->
          Outset_store.singleton st
            (Oid.make ~site:(Site_id.of_int 2) ~index:i))
    in
    ignore
      (List.fold_left
         (fun acc i -> Outset_store.union st acc singletons.(i))
         (Outset_store.empty st) braid_sets)
  in
  let tests =
    Test.make_grouped ~name:"outset"
      [
        Test.make ~name:"memo-on"
          (Staged.stage (fun () -> run_store ~memoize:true));
        Test.make ~name:"memo-off"
          (Staged.stage (fun () -> run_store ~memoize:false));
      ]
  in
  let cfg_b = Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.25) ~kde:None () in
  let raw = Benchmark.all cfg_b [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  Hashtbl.iter
    (fun name o ->
      match Analyze.OLS.estimates o with
      | Some [ est ] -> say "  %-20s %12.0f ns/run" name est
      | _ -> say "  %-20s (no estimate)" name)
    results

(* ---------------------------------------------------------------------- *)
(* C6: space for back information (§5.2, §8)                                *)
(* ---------------------------------------------------------------------- *)

let exp_c6 () =
  section "C6" "Space: retained insets vs the ni*no worst case";
  let measure sim_builder name =
    let sim = Sim.make ~cfg:{ base_cfg with Config.n_sites = 6 } () in
    sim_builder sim;
    Scenario.settle sim ~rounds:8;
    let eng = sim.Sim.eng in
    let ni = ref 0 and no = ref 0 and entries = ref 0 in
    Array.iter
      (fun st ->
        Tables.iter_inrefs st.Site.tables (fun ir ->
            if ir.Ioref.ir_suspected then incr ni);
        Tables.iter_outrefs st.Site.tables (fun o ->
            if o.Ioref.or_suspected then begin
              incr no;
              entries := !entries + List.length o.Ioref.or_inset
            end))
      (Engine.sites eng);
    [
      name;
      string_of_int !ni;
      string_of_int !no;
      string_of_int !entries;
      string_of_int (!ni * !no);
    ]
  in
  let ring6 sim =
    ignore (Graph_gen.ring sim.Sim.eng ~sites:(sites 6) ~per_site:3 ~rooted:false)
  in
  let hyper sim =
    ignore
      (Graph_gen.hypertext sim.Sim.eng ~rng:(Rng.create ~seed:3)
         ~docs_per_site:3 ~pages_per_doc:4 ~cross_links:20 ~rooted_frac:0.3)
  in
  let cliq sim =
    ignore (Graph_gen.clique sim.Sim.eng ~sites:(sites 5) ~rooted:false)
  in
  table
    [ "workload"; "susp inrefs ni"; "susp outrefs no"; "inset entries"; "ni*no bound" ]
    [ measure ring6 "6-site ring"; measure hyper "hypertext"; measure cliq "5-clique" ]

(* ---------------------------------------------------------------------- *)
(* C7: locality and fault isolation (§1, §7)                                *)
(* ---------------------------------------------------------------------- *)

let exp_c7 () =
  section "C7" "Locality: a crash delays only the garbage it can reach";
  let cfg = { base_cfg with Config.n_sites = 5 } in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  ignore
    (Graph_gen.ring eng ~sites:[ Site_id.of_int 0; Site_id.of_int 1 ]
       ~per_site:2 ~rooted:false);
  ignore
    (Graph_gen.ring eng ~sites:[ Site_id.of_int 2; Site_id.of_int 3 ]
       ~per_site:2 ~rooted:false);
  Engine.crash eng (Site_id.of_int 3);
  Engine.crash eng (Site_id.of_int 4);
  Sim.start sim;
  Sim.run_rounds sim 20;
  let left ss =
    List.fold_left
      (fun acc s -> acc + Heap.object_count (Engine.site eng s).Site.heap)
      0 ss
  in
  table
    [ "cycle"; "involves crashed site?"; "objects left after 20 rounds" ]
    [
      [ "sites 0-1"; "no"; string_of_int (left [ Site_id.of_int 0; Site_id.of_int 1 ]) ];
      [ "sites 2-3"; "yes (3 down)"; string_of_int (left [ Site_id.of_int 2; Site_id.of_int 3 ]) ];
    ];
  Engine.recover eng (Site_id.of_int 3);
  Engine.recover eng (Site_id.of_int 4);
  let r = rounds_to_collect sim in
  say "after recovery the remaining cycle collects in %s rounds"
    (match r with Some n -> string_of_int n | None -> "(never)")

(* ---------------------------------------------------------------------- *)
(* C8: multiple concurrent back traces (§4.7)                               *)
(* ---------------------------------------------------------------------- *)

let exp_c8 () =
  section "C8" "Concurrent back traces on one cycle";
  let cfg = { base_cfg with Config.n_sites = 4 } in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  let objs = Graph_gen.ring eng ~sites:(sites 4) ~per_site:1 ~rooted:false in
  Scenario.settle sim ~rounds:8;
  let started = ref 0 in
  List.iter
    (fun o ->
      List.iter
        (fun site ->
          match Tables.find_outref (Engine.site eng site).Site.tables o with
          | Some _ ->
              if Collector.start_back_trace sim.Sim.col site o <> None then
                incr started
          | None -> ())
        (sites 4))
    objs;
  Sim.run_for sim (Sim_time.of_seconds 30.);
  Collector.force_local_trace_all sim.Sim.col;
  Sim.run_for sim (Sim_time.of_seconds 10.);
  Collector.force_local_trace_all sim.Sim.col;
  Sim.run_for sim (Sim_time.of_seconds 10.);
  Collector.force_local_trace_all sim.Sim.col;
  let garbage = List.length
      (List.filter
         (fun (_, st) ->
           match st.Back_trace.ts_outcome with
           | Some (Verdict.Garbage, _) -> true
           | _ -> false)
         (Back_trace.stats (Collector.back sim.Sim.col)))
  in
  say "traces started simultaneously: %d" !started;
  say "garbage verdicts: %d (duplicates die on visited marks, §4.7)" garbage;
  say "cycle collected: %b" (Dgc_oracle.Oracle.garbage_count eng = 0)

(* ---------------------------------------------------------------------- *)
(* C9: message loss (§4.6)                                                  *)
(* ---------------------------------------------------------------------- *)

let exp_c9 () =
  section "C9" "Message loss: timeouts read as Live, later rounds finish";
  let rows =
    List.map
      (fun drop ->
        let cfg = { base_cfg with Config.n_sites = 3; ext_drop = drop; seed = 5 } in
        let sim = Sim.make ~cfg () in
        ignore (Graph_gen.ring sim.Sim.eng ~sites:(sites 3) ~per_site:2 ~rooted:false);
        Sim.start sim;
        let r = rounds_to_collect ~max_rounds:100 sim in
        let m = Engine.metrics sim.Sim.eng in
        [
          Printf.sprintf "%.0f%%" (drop *. 100.);
          (match r with Some n -> string_of_int n | None -> ">100");
          string_of_int (Metrics.get m "back.traces_started");
          string_of_int (Metrics.get m "back.call_timeout");
          string_of_int (Metrics.get m "msg.dropped.lossy");
        ])
      [ 0.0; 0.1; 0.3; 0.5 ]
  in
  table
    [ "drop rate"; "rounds to collect"; "traces"; "call timeouts"; "msgs dropped" ]
    rows

(* ---------------------------------------------------------------------- *)
(* C10: barrier ablations (§6)                                              *)
(* ---------------------------------------------------------------------- *)

let exp_c10 () =
  section "C10" "Ablations: every §6 mechanism is load-bearing";
  let run name cfg =
    let _, outcome, violation = Scenario.fig5_race ~cfg () in
    [
      name;
      (match outcome with Some v -> Verdict.to_string v | None -> "timeout");
      (match violation with
      | Some _ -> "UNSAFE — oracle caught a live free"
      | None -> "safe");
    ]
  in
  table
    [ "configuration"; "race outcome"; "result" ]
    [
      run "all mechanisms on" base_cfg;
      run "transfer barrier off"
        { base_cfg with Config.enable_transfer_barrier = false };
      run "transfer barrier off, clean rule off"
        {
          base_cfg with
          Config.enable_transfer_barrier = false;
          enable_clean_rule = false;
        };
    ];
  (* The clean rule alone, demonstrated mid-trace. *)
  let f = Scenario.fig5 ~cfg:base_cfg () in
  let sim = f.Scenario.f5_sim in
  Scenario.settle sim ~rounds:9;
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ -> outcome := Some v);
  ignore (Collector.start_back_trace sim.Sim.col f.Scenario.f5_q f.Scenario.f5_g);
  Engine.schedule sim.Sim.eng ~delay:(Sim_time.of_millis 5.) (fun () ->
      (Engine.site sim.Sim.eng f.Scenario.f5_q).Site.hooks.Site.h_ref_arrived
        f.Scenario.f5_f);
  Sim.run_for sim (Sim_time.of_seconds 2.);
  say "clean rule: cleaning an ioref under an active frame forces %s"
    (match !outcome with Some v -> Verdict.to_string v | None -> "(timeout)")

(* ---------------------------------------------------------------------- *)
(* C11: completeness after churn                                            *)
(* ---------------------------------------------------------------------- *)

let exp_c11 () =
  section "C11" "Completeness: all garbage goes once mutation stops";
  let rows =
    List.map
      (fun seed ->
        let cfg =
          { base_cfg with Config.n_sites = 4; seed; trace_duration = Sim_time.of_seconds 1. }
        in
        let sim = Sim.make ~cfg () in
        let eng = sim.Sim.eng in
        ignore
          (Graph_gen.random_graph eng ~rng:(Rng.create ~seed:(seed + 1))
             ~objects_per_site:12 ~out_degree:1.5 ~remote_frac:0.3
             ~root_frac:0.1);
        Array.iter
          (fun s ->
            if Heap.persistent_roots s.Site.heap = [] then
              ignore (Builder.root_obj eng s.Site.id))
          (Engine.sites eng);
        let churn =
          Churn.start sim ~rng:(Rng.create ~seed:(seed + 2)) ~agents:3
            ~mean_op_gap:(Sim_time.of_millis 400.)
        in
        Sim.start sim;
        Sim.run_for sim (Sim_time.of_minutes 3.);
        Churn.stop churn;
        Sim.run_for sim (Sim_time.of_seconds 30.);
        let garbage_before = Dgc_oracle.Oracle.garbage_count eng in
        let r = rounds_to_collect ~max_rounds:60 sim in
        [
          string_of_int seed;
          string_of_int (Churn.ops_done churn);
          string_of_int garbage_before;
          (match r with Some n -> string_of_int n | None -> ">60");
        ])
      [ 1; 2; 3; 4 ]
  in
  table [ "seed"; "mutator ops"; "garbage at stop"; "rounds to empty" ] rows

(* ---------------------------------------------------------------------- *)
(* C12: cost comparison against the §7 baselines                            *)
(* ---------------------------------------------------------------------- *)

let exp_c12 () =
  section "C12" "Baselines on one workload (3-site cycle, site 3 crashed)";
  let build eng =
    ignore (Graph_gen.ring eng ~sites:(sites 3) ~per_site:2 ~rooted:false);
    ignore (Graph_gen.ring eng ~sites:(sites 3) ~per_site:1 ~rooted:true);
    Engine.crash eng (Site_id.of_int 3)
  in
  let cfg = { base_cfg with Config.n_sites = 4 } in
  let minutes = Sim_time.of_minutes 20. in
  let row_of name eng extra =
    let m = Engine.metrics eng in
    [
      name;
      b2s (Dgc_oracle.Oracle.garbage_count eng = 0);
      string_of_int (Metrics.get m "msg.total");
      string_of_int (Metrics.get m "msg.bytes");
      extra;
    ]
  in
  let back_row =
    let sim = Sim.make ~cfg () in
    build sim.Sim.eng;
    Sim.start sim;
    Sim.run_for sim minutes;
    let m = Engine.metrics sim.Sim.eng in
    row_of "back tracing" sim.Sim.eng
      (Printf.sprintf "back msgs %d" (Metrics.get m "back.msgs"))
  in
  let global_row =
    let eng = Engine.create cfg in
    let gt = Global_trace.install eng in
    build eng;
    Engine.start_gc_schedule eng;
    Global_trace.collect gt ~on_done:(fun ~freed:_ ~rounds:_ -> ()) ();
    Engine.run_for eng minutes;
    row_of "global trace" eng
      (if Global_trace.running gt then "STALLED on the crash" else "finished")
  in
  let hughes_row =
    let eng = Engine.create cfg in
    let h = Hughes.install eng ~slack:(Sim_time.of_seconds 30.) in
    build eng;
    Engine.start_gc_schedule eng;
    for _ = 1 to 60 do
      Engine.run_for eng (Sim_time.of_seconds 20.);
      Hughes.run_threshold_round h ()
    done;
    row_of "hughes" eng
      (Printf.sprintf "threshold stuck at %.0f" (Hughes.threshold h))
  in
  let group_row =
    let eng = Engine.create cfg in
    let g = Group_trace.install eng ~max_group:8 in
    build eng;
    Engine.start_gc_schedule eng;
    Engine.run_for eng minutes;
    row_of "group trace" eng
      (Printf.sprintf "groups %d, size %d" (Group_trace.groups_formed g)
         (Group_trace.last_group_size g))
  in
  let migration_row =
    let eng = Engine.create cfg in
    let m = Migration.install eng in
    build eng;
    Engine.start_gc_schedule eng;
    Engine.run_for eng minutes;
    row_of "migration" eng
      (Printf.sprintf "%d moves, %d bytes" (Migration.migrations m)
         (Migration.bytes_moved m))
  in
  table
    [ "collector"; "collected"; "msgs"; "bytes"; "notes" ]
    [ back_row; global_row; hughes_row; group_row; migration_row ]

(* ---------------------------------------------------------------------- *)
(* C13: deferred / piggybacked messages (§4.7)                             *)
(* ---------------------------------------------------------------------- *)

let exp_c13 () =
  section "C13" "Deferral: piggybacked back-trace traffic (§4.7)";
  let rows =
    List.map
      (fun defer_ms ->
        let cfg =
          {
            base_cfg with
            Config.n_sites = 4;
            defer_interval = Sim_time.of_millis defer_ms;
            back_call_timeout = Sim_time.of_seconds 20.;
            seed = 3;
          }
        in
        let sim = Sim.make ~cfg () in
        ignore
          (Graph_gen.clique sim.Sim.eng ~sites:(sites 4) ~rooted:false);
        Sim.start sim;
        let r = rounds_to_collect ~max_rounds:80 sim in
        let m = Engine.metrics sim.Sim.eng in
        [
          (if defer_ms = 0. then "eager" else Printf.sprintf "%.0fms" defer_ms);
          (match r with Some n -> string_of_int n | None -> ">80");
          string_of_int (Metrics.get m "msg.total");
          string_of_int (Metrics.get m "msg.batches");
          string_of_int (Metrics.get m "msg.back_call");
        ])
      [ 0.; 50.; 200.; 500. ]
  in
  table
    [ "defer"; "rounds to collect"; "wire msgs"; "batches"; "logical calls" ]
    rows;
  say "deferral trades trace latency (still well under a trace round)";
  say "for fewer wire messages — the paper's piggybacking argument"

(* ---------------------------------------------------------------------- *)
(* C14: scalability sweep                                                  *)
(* ---------------------------------------------------------------------- *)

let exp_c14 () =
  section "C14" "Scalability: hypertext webs over growing site counts";
  let rows =
    List.map
      (fun n ->
        let cfg = { base_cfg with Config.n_sites = n; seed = 17 } in
        let sim = Sim.make ~cfg () in
        let eng = sim.Sim.eng in
        let garbage =
          Graph_gen.hypertext eng ~rng:(Rng.create ~seed:18) ~docs_per_site:3
            ~pages_per_doc:4 ~cross_links:(n * 3) ~rooted_frac:0.4
        in
        let wall0 = Unix.gettimeofday () in
        Sim.start sim;
        let r = rounds_to_collect ~max_rounds:80 sim in
        let wall = Unix.gettimeofday () -. wall0 in
        let m = Engine.metrics eng in
        [
          string_of_int n;
          string_of_int (List.length garbage);
          (match r with Some k -> string_of_int k | None -> ">80");
          string_of_int (Metrics.get m "back.traces_started");
          string_of_int (Metrics.get m "back.msgs");
          string_of_int (Metrics.get m "msg.total");
          Printf.sprintf "%.2fs" wall;
        ])
      [ 4; 8; 16; 32 ]
  in
  table
    [
      "sites"; "cyclic garbage"; "rounds"; "traces"; "back msgs"; "all msgs";
      "host wall";
    ]
    rows;
  say "back-trace traffic scales with the garbage, not the system size"

(* ---------------------------------------------------------------------- *)
(* C15: the local trace at scale                                           *)
(* ---------------------------------------------------------------------- *)

let exp_c15 () =
  section "C15" "Local trace throughput at scale (bechamel)";
  let open Bechamel in
  let tests =
    Test.make_grouped ~name:"trace"
      [
        Test.make ~name:"5k objects, 20 suspects"
          (let inp =
             build_suspect_graph ~n_objects:5_000 ~n_inrefs:20 ~shape:`Random
           in
           Staged.stage (fun () -> ignore (Local_trace.compute inp)));
        Test.make ~name:"20k objects, 50 suspects"
          (let inp =
             build_suspect_graph ~n_objects:20_000 ~n_inrefs:50 ~shape:`Random
           in
           Staged.stage (fun () -> ignore (Local_trace.compute inp)));
        Test.make ~name:"20k-object chain"
          (let inp =
             build_suspect_graph ~n_objects:20_000 ~n_inrefs:50 ~shape:`Chain
           in
           Staged.stage (fun () -> ignore (Local_trace.compute inp)));
      ]
  in
  let cfg_b = Benchmark.cfg ~limit:300 ~quota:(Time.second 1.0) ~kde:None () in
  let raw = Benchmark.all cfg_b [ Toolkit.Instance.monotonic_clock ] tests in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = ref [] in
  Hashtbl.iter
    (fun name o ->
      match Analyze.OLS.estimates o with
      | Some [ est ] ->
          rows := [ name; Printf.sprintf "%.2f ms" (est /. 1e6) ] :: !rows
      | _ -> rows := [ name; "(no estimate)" ] :: !rows)
    results;
  table [ "workload"; "per full trace" ]
    (List.sort compare !rows);
  say "a full combined trace (mark + distances + suspicion + outsets)";
  say "costs milliseconds at 5k objects and tens of milliseconds at";
  say "20k — far beyond the experiments' heap sizes"

(* ---------------------------------------------------------------------- *)
(* BENCH: the machine-readable artifact                                   *)
(* ---------------------------------------------------------------------- *)

(* Aggregates back-trace latency/size distributions and per-payload
   message counts over a few ring workloads into BENCH_backtrace.json
   (schema dgc.run/1), so numbers can be tracked across runs without
   scraping the tables above. Runs in every full invocation and alone
   as `main.exe BENCH` (the @bench-smoke alias). *)
let exp_bench () =
  section "BENCH" "Run artifact: back-trace latency and message traffic";
  let agg = Metrics.create () in
  let sim_secs = ref 0. in
  (* Cost-ledger totals accumulated across the ring runs; the per-cycle
     milli ratios are integer functions of the deterministic schedule,
     so they gate exactly like any other counter. *)
  let l_traces = ref 0
  and l_collected = ref 0
  and l_msgs = ref 0
  and l_bytes = ref 0
  and l_frames = ref 0
  and l_retries = ref 0 in
  List.iter
    (fun (span, per_site, seed) ->
      let cfg = { base_cfg with Config.n_sites = span; seed; profile = true } in
      let sim = Sim.make ~cfg () in
      let eng = sim.Sim.eng in
      ignore
        (Graph_gen.ring eng ~sites:(sites span) ~per_site ~rooted:false);
      ignore (Graph_gen.ring eng ~sites:(sites span) ~per_site:1 ~rooted:true);
      Sim.start sim;
      ignore (rounds_to_collect ~max_rounds:40 sim);
      sim_secs := !sim_secs +. Sim_time.to_seconds (Engine.now eng);
      List.iter
        (fun (_, st) ->
          match st.Back_trace.ts_outcome with
          | None -> ()
          | Some (v, at) ->
              let ms =
                1000.
                *. (Sim_time.to_seconds at
                   -. Sim_time.to_seconds st.Back_trace.ts_started)
              in
              Metrics.hist_observe agg "back.latency_ms" ms;
              Metrics.hist_observe agg
                (Printf.sprintf "back.latency_ms{verdict=%s}"
                   (String.lowercase_ascii (Verdict.to_string v)))
                ms;
              Metrics.hist_observe agg "back.frames_per_trace"
                (float_of_int st.Back_trace.ts_frames);
              Metrics.hist_observe agg "back.msgs_per_trace"
                (float_of_int st.Back_trace.ts_msgs))
        (Back_trace.stats (Collector.back sim.Sim.col));
      (* Fold this run's message and back-trace counters in. *)
      List.iter
        (fun (k, v) ->
          if
            String.starts_with ~prefix:"msg." k
            || String.starts_with ~prefix:"back." k
          then Metrics.add agg k v)
        (Metrics.counters (Engine.metrics eng));
      match Engine.profile eng with
      | None -> ()
      | Some p ->
          let r =
            Dgc_profile.Ledger.rollup (Dgc_profile.Profile.ledger p)
          in
          l_traces := !l_traces + r.Dgc_profile.Ledger.r_traces;
          l_collected := !l_collected + r.Dgc_profile.Ledger.r_collected;
          l_msgs := !l_msgs + r.Dgc_profile.Ledger.r_msgs;
          l_bytes := !l_bytes + r.Dgc_profile.Ledger.r_bytes;
          l_frames := !l_frames + r.Dgc_profile.Ledger.r_frames;
          l_retries := !l_retries + r.Dgc_profile.Ledger.r_retries)
    [ (2, 1, 11); (3, 2, 12); (4, 2, 13) ];
  Metrics.add agg "ledger.traces" !l_traces;
  Metrics.add agg "ledger.collected" !l_collected;
  Metrics.add agg "ledger.msgs" !l_msgs;
  Metrics.add agg "ledger.bytes" !l_bytes;
  Metrics.add agg "ledger.frames" !l_frames;
  Metrics.add agg "ledger.retries" !l_retries;
  if !l_collected > 0 then begin
    Metrics.add agg "ledger.msgs_per_cycle_milli"
      (1000 * !l_msgs / !l_collected);
    Metrics.add agg "ledger.bytes_per_cycle_milli"
      (1000 * !l_bytes / !l_collected)
  end;
  say
    "  cost ledger: %d traces (%d collected), %d msgs / %d bytes / %d frames"
    !l_traces !l_collected !l_msgs !l_bytes !l_frames;
  let art =
    Dgc_telemetry.Run_artifact.make ~name:"backtrace-bench"
      ~sim_seconds:!sim_secs agg
  in
  let path = "BENCH_backtrace.json" in
  Dgc_telemetry.Run_artifact.write ~path art;
  (match
     Dgc_telemetry.Run_artifact.validate
       ~require_hists:[ "back.latency_ms"; "back.frames_per_trace" ]
       ~require_counter_prefixes:[ "msg."; "back."; "ledger." ]
       art
   with
  | Ok () -> say "wrote %s (shape ok)" path
  | Error e -> Fmt.failwith "BENCH artifact failed validation: %s" e);
  List.iter
    (fun name ->
      match Metrics.hist_stats agg name with
      | Some h ->
          say "  %-34s n=%-4d p50=%-8.3g p95=%-8.3g p99=%-8.3g max=%.3g" name
            h.Metrics.n h.Metrics.p50 h.Metrics.p95 h.Metrics.p99 h.Metrics.max
      | None -> ())
    [ "back.latency_ms"; "back.frames_per_trace"; "back.msgs_per_trace" ]

(* ---------------------------------------------------------------------- *)

let all_sections =
  [
    ("F1", exp_f1);
    ("F2", exp_f2);
    ("F3", exp_f3);
    ("F4", exp_f4);
    ("F5", exp_f5_f6);
    ("C1", exp_c1);
    ("C2", exp_c2);
    ("C3", exp_c3);
    ("C4", exp_c4);
    ("C5", exp_c5);
    ("C6", exp_c6);
    ("C7", exp_c7);
    ("C8", exp_c8);
    ("C9", exp_c9);
    ("C10", exp_c10);
    ("C11", exp_c11);
    ("C12", exp_c12);
    ("C13", exp_c13);
    ("C14", exp_c14);
    ("C15", exp_c15);
    ("BENCH", exp_bench);
  ]

let () =
  let wanted =
    match Array.to_list Sys.argv with [] | [ _ ] -> None | _ :: l -> Some l
  in
  List.iter
    (fun (id, f) ->
      match wanted with
      | Some l when not (List.mem id l) -> ()
      | _ -> f ())
    all_sections;
  say "";
  say "done."
