(* Validate a dgc.run/1 artifact (normally BENCH_backtrace.json): the
   @bench-smoke alias runs the BENCH section and then this checker, so
   `dune runtest` fails if the artifact's shape regresses. *)

open Dgc_telemetry

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_backtrace.json"
  in
  match Run_artifact.read ~path with
  | Error e ->
      Printf.eprintf "%s: unreadable artifact: %s\n" path e;
      exit 1
  | Ok art -> (
      match
        Run_artifact.validate
          ~require_hists:[ "back.latency_ms"; "back.frames_per_trace" ]
          ~require_counter_prefixes:[ "msg."; "back." ]
          art
      with
      | Error e ->
          Printf.eprintf "%s: bad artifact shape: %s\n" path e;
          exit 1
      | Ok () ->
          let n =
            match
              Json.(
                member "histograms" art
                |> Option.map (member "back.latency_ms")
                |> Option.join
                |> Option.map (member "n")
                |> Option.join)
            with
            | Some j -> Option.value ~default:0 (Json.to_int_opt j)
            | None -> 0
          in
          if n <= 0 then begin
            Printf.eprintf "%s: back.latency_ms has no observations\n" path;
            exit 1
          end;
          Printf.printf "%s: shape ok (%d back-trace latencies)\n" path n)
