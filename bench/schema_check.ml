(* @schemas: every committed JSON artifact (test/corpus/*.json, the
   BENCH_* baselines) must validate against the parser for its declared
   "schema" field, so a corpus file or baseline can never drift from
   the code that reads it.

     schema_check.exe FILE.json ...

   Dispatch: dgc.run/1 -> Run_artifact.validate (plus the deep profile
   check below), dgc.plan/1 -> Plan.of_json, dgc.flight/1 ->
   Flight.of_json (strict, byte-identical round trip), dgc.profile/1 ->
   Profile.validate, dgc.chaos/1 -> required sections plus its embedded
   plan/run/flight documents, dgc.schedule/1 -> deviation-list shape,
   dgc.fuzz/1 -> Dgc_fuzz.Report.validate (monotone coverage curve,
   corpus arithmetic).

   A run artifact's embedded "profile" section gets the full
   Profile.validate treatment here: Run_artifact lives below dgc.profile
   in the library stack, so its own validate can only check the schema
   tag. *)

module Tel = Dgc_telemetry
module Json = Tel.Json
module Plan = Dgc_chaos.Plan
module Prof = Dgc_profile.Profile

let failed = ref false

let complain path fmt =
  Printf.ksprintf
    (fun s ->
      failed := true;
      Printf.eprintf "%s: %s\n" path s)
    fmt

let check_schedule path doc =
  match Option.bind (Json.member "schedule" doc) Json.to_list_opt with
  | None -> complain path "dgc.schedule/1: missing \"schedule\" array"
  | Some devs ->
      List.iter
        (fun d ->
          match Json.to_list_opt d with
          | Some [ a; b ]
            when Json.to_int_opt a <> None && Json.to_int_opt b <> None ->
              ()
          | _ -> complain path "dgc.schedule/1: bad deviation entry")
        devs

let check_run path doc =
  (match Tel.Run_artifact.validate doc with
  | Ok () -> ()
  | Error e -> complain path "dgc.run/1: %s" e);
  match Tel.Run_artifact.profile_section doc with
  | None -> ()
  | Some p -> (
      match Prof.validate p with
      | Ok () -> ()
      | Error e -> complain path "dgc.run/1 embedded profile: %s" e)

let check_chaos path doc =
  List.iter
    (fun k ->
      if Json.member k doc = None then
        complain path "dgc.chaos/1: missing section %S" k)
    [ "case"; "plan"; "outcome"; "journal"; "run" ];
  (match Json.member "plan" doc with
  | Some p -> (
      match Plan.of_json p with
      | Ok _ -> ()
      | Error e -> complain path "dgc.chaos/1 embedded plan: %s" e)
  | None -> ());
  (match Json.member "run" doc with
  | Some r -> check_run path r
  | None -> ());
  match Json.member "flight" doc with
  | None -> ()
  | Some f -> (
      match Tel.Flight.of_json f with
      | Ok _ -> ()
      | Error e -> complain path "dgc.chaos/1 embedded flight: %s" e)

let check path =
  match In_channel.with_open_text path In_channel.input_all with
  | exception Sys_error e -> complain path "unreadable: %s" e
  | text -> (
      match Json.parse text with
      | Error e -> complain path "unparseable: %s" e
      | Ok doc -> (
          match Option.bind (Json.member "schema" doc) Json.to_str_opt with
          | None -> complain path "no \"schema\" field"
          | Some "dgc.run/1" -> check_run path doc
          | Some "dgc.profile/1" -> (
              match Prof.validate doc with
              | Ok () -> ()
              | Error e -> complain path "dgc.profile/1: %s" e)
          | Some "dgc.plan/1" -> (
              match Plan.of_json doc with
              | Ok _ -> ()
              | Error e -> complain path "dgc.plan/1: %s" e)
          | Some "dgc.flight/1" -> (
              match Tel.Flight.of_json doc with
              | Ok _ -> ()
              | Error e -> complain path "dgc.flight/1: %s" e)
          | Some "dgc.chaos/1" -> check_chaos path doc
          | Some "dgc.schedule/1" -> check_schedule path doc
          | Some "dgc.fuzz/1" -> (
              match Dgc_fuzz.Report.validate doc with
              | Ok () -> ()
              | Error e -> complain path "dgc.fuzz/1: %s" e)
          | Some s -> complain path "unknown schema %S" s))

let () =
  let paths = List.tl (Array.to_list Sys.argv) in
  if paths = [] then begin
    prerr_endline "usage: schema_check.exe FILE.json ...";
    exit 2
  end;
  List.iter check paths;
  if !failed then exit 1;
  Printf.printf "schemas: %d artifacts ok\n" (List.length paths)
