(* Bench regression gate: compare a freshly-generated BENCH artifact
   against the committed baseline (BENCH_backtrace.json at the repo
   root).

     compare.exe BASELINE FRESH [--tolerance FRAC]
                 [--exact-counters] [--hist-tolerance FRAC]

   The BENCH section is seeded and the engine deterministic, so the two
   artifacts are normally identical; the tolerance (default 0.25)
   absorbs intentional small shifts — e.g. a protocol tweak that adds a
   message — while a missing counter/histogram or a drift beyond the
   tolerance on any back.* / msg.* counter or histogram summary
   (n, p50, p95, max) fails the @bench-smoke alias.

   The scale artifact splits the two regimes explicitly: its counters
   (visit counts, outset-store stats, rounds-to-collect) are exact by
   construction and gated with [--exact-counters], while its wall-clock
   histograms vary by machine and get a generous [--hist-tolerance]. *)

module Json = Dgc_telemetry.Json
module Run_artifact = Dgc_telemetry.Run_artifact

let fail = ref []
let complain fmt = Printf.ksprintf (fun s -> fail := s :: !fail) fmt

let close ~tol a b =
  (* Small integer counts get absolute slack; everything else relative. *)
  abs_float (a -. b) <= 2.0
  || abs_float (a -. b) <= tol *. Float.max (abs_float a) (abs_float b)

let obj_fields = function Some (Json.Obj fields) -> fields | _ -> []

(* retry.*, chaos.* and san.* counters come from the delivery-hardening,
   fault-injection and sanitizer channels: they appear only in runs that
   exercised them. profile.* and ledger.* counters come from the
   sim-cost profiler and its per-trace cost ledger, which only runs
   when [Config.profile] is set. All are judged against 0 when absent
   rather than flagged as a disappearance, so artifacts from before the
   channel existed (or with it switched off) still gate cleanly. *)
let optional_counter k =
  String.starts_with ~prefix:"retry." k
  || String.starts_with ~prefix:"chaos." k
  || String.starts_with ~prefix:"san." k
  || String.starts_with ~prefix:"profile." k
  || String.starts_with ~prefix:"ledger." k

let contains_sub s sub =
  let ls = String.length s and lb = String.length sub in
  let rec go i = i + lb <= ls && (String.sub s i lb = sub || go (i + 1)) in
  go 0

(* shard.* / window.* keys come from the sharded-engine domains axis:
   window counts and cross-shard message counts are schedule-exact, but
   the speedup is wall clock, and whether the axis ran at all depends
   on the invocation. t100k-tier keys only exist in --full runs, which
   the committed smoke baseline is not. All are informational in the
   artifact and never gated, in either direction. *)
let skipped_key k =
  String.starts_with ~prefix:"shard." k
  || String.starts_with ~prefix:"window." k
  || contains_sub k "t100k"

let compare_counters ~tol ~exact base fresh =
  let bc = obj_fields (Json.member "counters" base) in
  let fc = obj_fields (Json.member "counters" fresh) in
  List.iter
    (fun (k, v) ->
      match (if skipped_key k then None else Json.to_int_opt v) with
      | None -> ()
      | Some b -> (
          match Option.bind (List.assoc_opt k fc) Json.to_int_opt with
          | None when optional_counter k ->
              (* fault-channel counters only exist when faults fired *)
              if not (close ~tol (float_of_int b) 0.) then
                complain "counter %s: baseline %d, now absent" k b
          | None -> complain "counter %s disappeared (baseline %d)" k b
          | Some f ->
              if exact then begin
                if b <> f then
                  complain "counter %s: baseline %d, now %d (exact gate)" k b
                    f
              end
              else if not (close ~tol (float_of_int b) (float_of_int f)) then
                complain "counter %s: baseline %d, now %d" k b f))
    bc

(* The series section ({!Dgc_telemetry.Series.to_json}) carries per-name
   summaries (n, max, last, total) of the sim-time bucketed series. They
   are functions of sim time and the deterministic size model — never of
   wall clock — so they gate with the same tolerance as counters. *)
let compare_series ~tol base fresh =
  let section j =
    match Json.member "series" j with
    | Some s -> obj_fields (Json.member "series" s)
    | None -> []
  in
  let bs = section base in
  let fs = section fresh in
  List.iter
    (fun (name, bsum) ->
      match List.assoc_opt name fs with
      | None -> complain "series %s disappeared" name
      | Some fsum ->
          List.iter
            (fun field ->
              let get j = Option.bind (Json.member field j) Json.to_float_opt in
              match (get bsum, get fsum) with
              | Some b, Some f ->
                  if not (close ~tol b f) then
                    complain "series %s.%s: baseline %g, now %g" name field b f
              | _ -> complain "series %s.%s missing" name field)
            [ "n"; "max"; "last"; "total" ])
    bs

(* The flight-recorder overhead gate: the fresh artifact's
   extra.flight_overhead.ratio (recorder-on wall / recorder-off wall at
   t10k, min-of-reps both arms) must stay under the limit. Judged on the
   fresh run only — the walls are machine-dependent, so the committed
   baseline's ratio proves nothing about this machine. *)
let gate_flight_ratio ~limit fresh =
  let ratio =
    Option.bind (Json.member "extra" fresh) (Json.member "flight_overhead")
    |> Fun.flip Option.bind (Json.member "ratio")
    |> Fun.flip Option.bind Json.to_float_opt
  in
  match ratio with
  | None ->
      complain "extra.flight_overhead.ratio missing (gate --flight-ratio-max)"
  | Some r when Float.is_nan r ->
      complain "extra.flight_overhead.ratio is nan (gate --flight-ratio-max)"
  | Some r ->
      if r > limit then
        complain "flight recorder overhead %.3fx exceeds the %.2fx gate" r
          limit

(* The profiler overhead gate: extra.profile_overhead.ratio (profiler-on
   wall / profiler-off wall at t10k, best-pair both arms) must stay
   under the limit. Like the flight gate, judged on the fresh run only. *)
let gate_profile_ratio ~limit fresh =
  let ratio =
    Option.bind (Json.member "extra" fresh) (Json.member "profile_overhead")
    |> Fun.flip Option.bind (Json.member "ratio")
    |> Fun.flip Option.bind Json.to_float_opt
  in
  match ratio with
  | None ->
      complain
        "extra.profile_overhead.ratio missing (gate --profile-ratio-max)"
  | Some r when Float.is_nan r ->
      complain "extra.profile_overhead.ratio is nan (gate --profile-ratio-max)"
  | Some r ->
      if r > limit then
        complain "profiler overhead %.3fx exceeds the %.2fx gate" r limit

(* The phase-share gate: both artifacts must carry a [dgc.profile/1]
   section, and the share of deterministic work units attributed to
   each top-level phase must not drift beyond the tolerance. Shares are
   functions of work units — never of wall clock — so they gate across
   machines; the tolerance absorbs intentional rebalancing. *)
let gate_profile_shares ~tolerance base fresh =
  match
    (Run_artifact.profile_section base, Run_artifact.profile_section fresh)
  with
  | None, _ ->
      complain "baseline has no profile section (gate \
                --profile-share-tolerance)"
  | _, None ->
      complain "fresh artifact has no profile section (gate \
                --profile-share-tolerance)"
  | Some bp, Some fp -> (
      match
        Dgc_profile.Profile.diff ~share_tolerance:tolerance bp fp
      with
      | Error e -> complain "profile diff: %s" e
      | Ok rep ->
          if rep.Dgc_profile.Profile.df_regressed then
            complain
              "profile phase shares drifted %.2f%% (> %.2f%% tolerance)"
              (100. *. rep.Dgc_profile.Profile.df_max_share_drift)
              (100. *. tolerance))

let compare_hists ~tol base fresh =
  let bh = obj_fields (Json.member "histograms" base) in
  let fh = obj_fields (Json.member "histograms" fresh) in
  List.iter
    (fun (k, bstats) ->
      match (if skipped_key k then None else List.assoc_opt k fh) with
      | None ->
          if not (skipped_key k) then complain "histogram %s disappeared" k
      | Some fstats ->
          List.iter
            (fun field ->
              let get j =
                Option.bind (Json.member field j) Json.to_float_opt
              in
              match (get bstats, get fstats) with
              | Some b, Some f ->
                  if not (close ~tol b f) then
                    complain "histogram %s.%s: baseline %g, now %g" k field b
                      f
              | _ -> complain "histogram %s.%s missing" k field)
            [ "n"; "p50"; "p95"; "max" ])
    bh

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let tol, hist_tol, exact, flight_max, profile_max, share_tol, paths =
    let rec go tol htol exact fmax pmax stol paths = function
      | "--tolerance" :: v :: rest ->
          go (float_of_string v) htol exact fmax pmax stol paths rest
      | "--hist-tolerance" :: v :: rest ->
          go tol (Some (float_of_string v)) exact fmax pmax stol paths rest
      | "--exact-counters" :: rest -> go tol htol true fmax pmax stol paths rest
      | "--flight-ratio-max" :: v :: rest ->
          go tol htol exact (Some (float_of_string v)) pmax stol paths rest
      | "--profile-ratio-max" :: v :: rest ->
          go tol htol exact fmax (Some (float_of_string v)) stol paths rest
      | "--profile-share-tolerance" :: v :: rest ->
          go tol htol exact fmax pmax (Some (float_of_string v)) paths rest
      | p :: rest -> go tol htol exact fmax pmax stol (p :: paths) rest
      | [] -> (tol, htol, exact, fmax, pmax, stol, List.rev paths)
    in
    go 0.25 None false None None None [] args
  in
  let hist_tol = Option.value hist_tol ~default:tol in
  let baseline_path, fresh_path =
    match paths with
    | [ b; f ] -> (b, f)
    | _ ->
        prerr_endline
          "usage: compare.exe BASELINE FRESH [--tolerance FRAC] \
           [--exact-counters] [--hist-tolerance FRAC] \
           [--flight-ratio-max FRAC] [--profile-ratio-max FRAC] \
           [--profile-share-tolerance FRAC]";
        exit 2
  in
  let load path =
    match Run_artifact.read ~path with
    | Ok j -> (
        match Run_artifact.validate j with
        | Ok () -> j
        | Error e ->
            Printf.eprintf "%s: invalid artifact: %s\n" path e;
            exit 2)
    | Error e ->
        Printf.eprintf "%s: %s\n" path e;
        exit 2
  in
  let base = load baseline_path in
  let fresh = load fresh_path in
  compare_counters ~tol ~exact base fresh;
  compare_hists ~tol:hist_tol base fresh;
  compare_series ~tol base fresh;
  Option.iter (fun limit -> gate_flight_ratio ~limit fresh) flight_max;
  Option.iter (fun limit -> gate_profile_ratio ~limit fresh) profile_max;
  Option.iter
    (fun tolerance -> gate_profile_shares ~tolerance base fresh)
    share_tol;
  match !fail with
  | [] ->
      Printf.printf
        "bench compare: %s ok vs baseline %s (counters %s, hists %.0f%%)\n"
        fresh_path baseline_path
        (if exact then "exact" else Printf.sprintf "%.0f%%" (tol *. 100.))
        (hist_tol *. 100.)
  | msgs ->
      Printf.eprintf "bench compare: %d regressions vs %s:\n"
        (List.length msgs) baseline_path;
      List.iter (fun m -> Printf.eprintf "  %s\n" m) (List.rev msgs);
      exit 1
