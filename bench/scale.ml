(* Scale benchmark: the local-trace hot path and full back-trace
   rounds at 10^3 / 10^4 / 10^5 objects per site.

     scale.exe [--full] [--out PATH]

   Two parts per tier:

   - Phase bench: one "big" site Q carrying a rooted chain half (clean
     phase work), a suspected half of inref-headed SCC groups wired to
     a small pool of remote targets (suspect phase: fused Tarjan +
     memoized outset unions, saturating to few distinct outsets — the
     §5.2 hash-consing regime), and a slab of unreferenced local
     garbage (dead-set + sweep work). [Local_trace.compute] is timed
     over repeated runs, then [apply] once.

   - Ring bench: a 4-site sim with rooted filler chains per site plus
     unrooted cross-site cycle rings; rounds are timed until the rings
     are collected by back tracing.

   Everything is seeded and the engine deterministic, so every counter
   in the emitted artifact (visit counts, outset-store stats, rounds
   to collect) is exact and gated exactly by compare.exe; only the
   wall-clock histograms vary by machine and get a generous tolerance.
   The default tier set (t1k, t10k) is the committed-baseline smoke
   configuration; --full adds t100k, which is not part of the baseline
   (the acceptance run records it in EXPERIMENTS.md instead). *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core

let say fmt = Format.kasprintf print_endline fmt
let now_ms () = Unix.gettimeofday () *. 1000.

let cfg_base =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_interval = Sim_time.of_seconds 10.;
    trace_jitter = Sim_time.of_seconds 1.;
    trace_duration = Sim_time.zero;
    oracle_checks = false;
    check_level = Config.Check_off;
  }

let site = Site_id.of_int

(* --- phase bench workload --------------------------------------------- *)

(* Build the big-site workload at Q (site 1): P (site 0) sources the
   suspected inrefs, R (site 2) holds the shared remote targets.
   Returns the number of objects allocated at Q. *)
let build_phase_workload eng ~n ~rng =
  let p = site 0 and q = site 1 and r = site 2 in
  (* Rooted half: a chain with extra random forward/backward edges. *)
  let n_rooted = n / 2 in
  let root = Builder.root_obj eng q in
  let rooted = Array.init n_rooted (fun _ -> Builder.obj eng q) in
  Builder.link eng ~src:root ~dst:rooted.(0);
  for i = 0 to n_rooted - 2 do
    Builder.link eng ~src:rooted.(i) ~dst:rooted.(i + 1)
  done;
  for _ = 1 to n_rooted / 4 do
    let a = Rng.int rng n_rooted and b = Rng.int rng n_rooted in
    Builder.link eng ~src:rooted.(a) ~dst:rooted.(b)
  done;
  (* Suspected half: g groups, each an inref-headed chain with a back
     edge (an SCC) and a cross edge to the next group, ending in a
     remote ref to one of 8 shared targets at R — so outsets along the
     group chain saturate to a handful of distinct interned sets. *)
  let g = max 2 (n / 128) in
  let len = max 4 (n / 2 / g) in
  let targets = Array.init 8 (fun _ -> Builder.root_obj eng r) in
  let heads = Array.init g (fun _ -> Builder.obj eng q) in
  let sources = Array.init g (fun _ -> Builder.root_obj eng p) in
  for gi = 0 to g - 1 do
    let members = Array.init (len - 1) (fun _ -> Builder.obj eng q) in
    let prev = ref heads.(gi) in
    Array.iter
      (fun m ->
        Builder.link eng ~src:!prev ~dst:m;
        prev := m)
      members;
    (* Back edge closes an SCC over the second half of the group. *)
    Builder.link eng ~src:!prev ~dst:members.(Array.length members / 2);
    (* Cross edge: this group's outset includes all downstream ones. *)
    if gi < g - 1 then
      Builder.link eng ~src:members.(Array.length members / 4)
        ~dst:heads.(gi + 1);
    Builder.link eng ~src:!prev ~dst:targets.(gi mod 8);
    Builder.link eng ~src:sources.(gi) ~dst:heads.(gi);
    Builder.set_source_distance eng ~inref:heads.(gi) ~src:p 50
  done;
  (* Unreferenced local garbage: pure dead-set and sweep work. *)
  let n_garbage = n / 8 in
  let prevg = ref None in
  for _ = 1 to n_garbage do
    let o = Builder.obj eng q in
    (match !prevg with
    | Some pg -> Builder.link eng ~src:pg ~dst:o
    | None -> ());
    prevg := Some o
  done;
  1 + n_rooted + (g * len) + n_garbage

let record_stats m ~tier (st : Local_trace.stats) =
  let c name v = Metrics.add m (Printf.sprintf "scale.%s.%s" tier name) v in
  c "clean_visits" st.Local_trace.clean_visits;
  c "suspect_visits" st.Local_trace.suspect_visits;
  c "distinct_outsets" st.Local_trace.distinct_outsets;
  c "union_calls" st.Local_trace.union_calls;
  c "memo_hits" st.Local_trace.memo_hits;
  c "inset_entries" st.Local_trace.inset_entries;
  c "suspected_inrefs" st.Local_trace.suspected_inrefs;
  c "suspected_outrefs" st.Local_trace.suspected_outrefs

let phase_bench m ~tier ~n ~reps =
  let cfg = { cfg_base with Config.n_sites = 3; seed = 1000 + n } in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  let rng = Rng.create ~seed:(77 + n) in
  let n_q = build_phase_workload eng ~n ~rng in
  let q = Engine.site eng (site 1) in
  let inp = Local_trace.input_of_site eng q in
  let hist name v =
    Metrics.hist_observe m (Printf.sprintf "scale.%s{tier=%s}" name tier) v
  in
  let outcome = ref None in
  for _ = 1 to reps do
    let t0 = now_ms () in
    (* Phase splits via the compute probe: time from the previous
       probe tick (or start) to each phase boundary. *)
    let last = ref t0 in
    let probe tag =
      let t = now_ms () in
      (match tag with
      | "clean" -> hist "clean_ms" (t -. !last)
      | "suspect" -> hist "suspect_ms" (t -. !last)
      | _ -> ());
      last := t
    in
    let o = Local_trace.compute ~mode:Local_trace.Bottom_up ~probe inp in
    hist "compute_ms" (now_ms () -. t0);
    outcome := Some o
  done;
  let o = Option.get !outcome in
  record_stats m ~tier o.Local_trace.ot_stats;
  Metrics.add m (Printf.sprintf "scale.%s.objects" tier) n_q;
  Metrics.add m
    (Printf.sprintf "scale.%s.dead" tier)
    (List.length o.Local_trace.dead);
  (* §5.1 comparison point: one full trace per suspected inref. Too
     costly at the top tier by design — that is the paper's argument
     for §5.2 — so only the smoke tiers run it. *)
  if n <= 10_000 then begin
    let t0 = now_ms () in
    ignore (Local_trace.compute ~mode:Local_trace.Independent inp);
    hist "compute_independent_ms" (now_ms () -. t0)
  end;
  let t0 = now_ms () in
  Local_trace.apply eng q o ~window_cleans:[] ~on_cleaned:ignore
    ~oracle_check:false;
  hist "apply_ms" (now_ms () -. t0);
  say "  %-6s objects=%-7d compute(p50 of %d reps)=%.2fms dead=%d" tier n_q
    reps
    (match
       Metrics.hist_stats m (Printf.sprintf "scale.compute_ms{tier=%s}" tier)
     with
    | Some h -> h.Metrics.p50
    | None -> nan)
    (List.length o.Local_trace.dead)

(* --- ring bench -------------------------------------------------------- *)

(* Shard counters of the most recent ring_bench run on a sharded
   engine: (windows, cross-shard messages, max queue skew). *)
let last_shard_stats = ref None

let ring_bench ?(sanitize = false) ?(flight = true) ?(profile = false)
    ?(record = true) ?(shards = 1) ?(domains = 1) m ~tier ~n =
  let cfg =
    {
      cfg_base with
      Config.n_sites = 4;
      seed = 2000 + n;
      sanitize;
      (* the profiler, like the recorder, draws no randomness and
         schedules no events, so either arm replays the same rounds *)
      profile;
      (* recorder-off arm of the flight-overhead probe; recording draws
         no randomness, so the schedule is identical either way *)
      flight_capacity = (if flight then cfg_base.Config.flight_capacity else 0);
      (* domains axis: 4 sites over [shards] shards, windows executed
         by [domains] worker domains *)
      shards;
      domains;
    }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  (* The sanitizer's capsules piggyback on every delivery but must not
     perturb the schedule: the sanitized pass reproduces the plain
     pass's rounds exactly, so the only delta is wall clock. *)
  if sanitize then begin
    let san = Dgc_sanitize.Sanitizer.install eng in
    Dgc_sanitize.Sanitizer.set_shared san (Collector.back sim.Sim.col)
  end;
  let sites4 = [ site 0; site 1; site 2; site 3 ] in
  (* Rooted filler: the per-round trace cost each site must pay. *)
  let filler = max 8 (n / 4) in
  List.iter
    (fun s ->
      let root = Builder.root_obj eng s in
      let prev = ref root in
      for _ = 1 to filler do
        let o = Builder.obj eng s in
        Builder.link eng ~src:!prev ~dst:o;
        prev := o
      done)
    sites4;
  (* The garbage: 8 cross-site cycle rings, plus one rooted ring for
     steady live traffic. *)
  let rings =
    List.concat
      (List.init 8 (fun _ ->
           Dgc_workload.Graph_gen.ring eng ~sites:sites4 ~per_site:2
             ~rooted:false))
  in
  ignore (Dgc_workload.Graph_gen.ring eng ~sites:sites4 ~per_site:1 ~rooted:true);
  let all_freed () =
    List.for_all
      (fun o -> not (Heap.mem (Engine.site eng (Oid.site o)).Site.heap o))
      rings
  in
  (* Floating-garbage age: oracle ground truth sampled at every round
     boundary. First-seen times per garbage object make the gauge the
     age of the oldest still-uncollected garbage (0 once clean); sim
     time and the oracle are deterministic, so the series gates exactly
     like a counter. *)
  (* Unrecorded arms (the shard speedup A/B runs) skip the oracle
     sample entirely: it is a pure read — no RNG draws, no scheduling —
     so the simulation is unaffected, but each sample is a full-heap
     reachability pass whose allocation debt would otherwise be paid by
     the GC *inside* the next timed window. *)
  let first_seen : (Oid.t, float) Hashtbl.t = Hashtbl.create 64 in
  let sample_floating () =
    if record then begin
    let now = Sim_time.to_seconds (Engine.now eng) in
    let garbage = Dgc_oracle.Oracle.garbage_set eng in
    Oid.Set.iter
      (fun o ->
        if not (Hashtbl.mem first_seen o) then Hashtbl.replace first_seen o now)
      garbage;
    let stale =
      Hashtbl.fold
        (fun o _ acc -> if Oid.Set.mem o garbage then acc else o :: acc)
        first_seen []
    in
    List.iter (Hashtbl.remove first_seen) stale;
    let age =
      Oid.Set.fold
        (fun o acc -> Float.max acc (now -. Hashtbl.find first_seen o))
        garbage 0.
    in
    Engine.series_set eng "floating_garbage_age" age
    end
  in
  Sim.start sim;
  sample_floating ();
  let max_rounds = 15 in
  let wall_ms = ref 0. in
  let rec loop k =
    if all_freed () then (k, true)
    else if k >= max_rounds then (k, false)
    else begin
      let t0 = now_ms () in
      Sim.run_rounds sim 1;
      let dt = now_ms () -. t0 in
      wall_ms := !wall_ms +. dt;
      sample_floating ();
      if record then
        Metrics.hist_observe m
          (Printf.sprintf "scale.round_ms{tier=%s}" tier)
          dt;
      loop (k + 1)
    end
  in
  let rounds, collected = loop 0 in
  if record then begin
    Metrics.add m (Printf.sprintf "scale.%s.ring_rounds" tier) rounds;
    Metrics.add m
      (Printf.sprintf "scale.%s.ring_collected" tier)
      (if collected then 1 else 0);
    (* Cost-ledger rollup: every count is a function of the
       deterministic schedule, so the per-cycle budget numbers gate
       exactly alongside the visit counters above. *)
    (match Engine.profile eng with
    | None -> ()
    | Some p ->
        let r = Dgc_profile.Ledger.rollup (Dgc_profile.Profile.ledger p) in
        let c name v =
          Metrics.add m (Printf.sprintf "ledger.%s.%s" tier name) v
        in
        c "traces" r.Dgc_profile.Ledger.r_traces;
        c "collected" r.Dgc_profile.Ledger.r_collected;
        c "msgs" r.Dgc_profile.Ledger.r_msgs;
        c "bytes" r.Dgc_profile.Ledger.r_bytes;
        c "frames" r.Dgc_profile.Ledger.r_frames;
        c "msgs_per_cycle_milli" r.Dgc_profile.Ledger.r_msgs_per_cycle_milli;
        c "bytes_per_cycle_milli" r.Dgc_profile.Ledger.r_bytes_per_cycle_milli;
        say "  %-6s ledger: %.3f msgs / %.1f bytes per collected cycle" tier
          (float_of_int r.Dgc_profile.Ledger.r_msgs_per_cycle_milli /. 1000.)
          (float_of_int r.Dgc_profile.Ledger.r_bytes_per_cycle_milli /. 1000.));
    say "  %-6s rings %s in %d rounds" tier
      (if collected then "collected" else "NOT collected")
      rounds
  end;
  let prof_json =
    Option.map
      (fun p ->
        Dgc_profile.Profile.to_json ~name:(Printf.sprintf "scale-%s-ring" tier)
          p)
      (Engine.profile eng)
  in
  last_shard_stats := Engine.shard_stats eng;
  let result =
    (Sim_time.to_seconds (Engine.now eng), !wall_ms, Engine.series eng,
     prof_json)
  in
  Engine.teardown eng;
  result

(* --- shard bench: the sharded-engine domains axis ---------------------- *)

(* The ring bench on the sharded engine: 4 sites over 4 shards (one
   site per shard), so each round's local traces — the hot path — run
   one per worker domain. The schedule, and so every counter, is
   byte-identical across domain counts; only wall clock moves. Probe
   discipline mirrors the flight/profiler overhead probes: each arm's
   best of a few reps, because wall noise only ever inflates an arm.
   Speedup is wall-clock and machine-dependent, so compare.exe never
   gates shard.* keys. *)
let shard_bench ?(pairs = 3) m ~tier ~n =
  say "tier %s: sharded engine domains axis (4 shards, 1 vs 4 domains)" tier;
  let arm d =
    let _, w, _, _ =
      ring_bench ~shards:4 ~domains:d ~record:false m ~tier ~n
    in
    w
  in
  ignore (arm 1);
  (* warm-up *)
  let w1 = ref infinity and w4 = ref infinity in
  for _ = 1 to pairs do
    let a = arm 1 in
    let b = arm 4 in
    if a < !w1 then w1 := a;
    if b < !w4 then w4 := b
  done;
  (* Speedup from each arm's best rep: noise only ever inflates a
     wall, so the per-arm minimum is the cleanest estimate of each
     arm, and their ratio the cleanest estimate of the speedup. *)
  let speedup = if !w4 > 0. then !w1 /. !w4 else 0. in
  let stats = !last_shard_stats in
  let c name v = Metrics.add m (Printf.sprintf "shard.%s.%s" tier name) v in
  c "speedup_milli" (int_of_float (speedup *. 1000.));
  c "wall_ms_domains1" (int_of_float !w1);
  c "wall_ms_domains4" (int_of_float !w4);
  (match stats with
  | Some (windows, xmsgs, skew) ->
      c "windows" windows;
      c "cross_shard_msgs" xmsgs;
      c "max_queue_skew" skew
  | None -> ());
  say "  %-6s shard walls: domains1=%.1fms domains4=%.1fms speedup=%.2fx" tier
    !w1 !w4 speedup

(* --- driver ------------------------------------------------------------ *)

let () =
  let full = Array.exists (( = ) "--full") Sys.argv in
  let out =
    let rec go i =
      if i >= Array.length Sys.argv - 1 then "BENCH_scale.json"
      else if Sys.argv.(i) = "--out" then Sys.argv.(i + 1)
      else go (i + 1)
    in
    go 1
  in
  let tiers =
    [ ("t1k", 1_000, 20); ("t10k", 10_000, 8) ]
    @ (if full then [ ("t100k", 100_000, 3) ] else [])
  in
  let m = Metrics.create () in
  let sim_secs = ref 0. in
  let ring_wall = Hashtbl.create 4 in
  let ring_series = ref None in
  let ring_profile = ref None in
  List.iter
    (fun (tier, n, reps) ->
      say "tier %s: %d objects/site" tier n;
      phase_bench m ~tier ~n ~reps;
      let secs, wall, series, prof = ring_bench ~profile:true m ~tier ~n in
      Hashtbl.replace ring_wall tier wall;
      (* the t10k ring's series and profile sections are the committed,
         gated ones: the series gauges are functions of sim time and
         the profile's phase shares functions of work units, so both
         gate exactly across machines *)
      if tier = "t10k" then begin
        ring_series := Some series;
        ring_profile := prof
      end;
      sim_secs := !sim_secs +. secs)
    tiers;
  (* Sharded-engine domains axis: the smoke probe runs at t1k; --full
     adds the headline t100k speedup measurement. All shard.* keys are
     informational (never gated by compare.exe). *)
  shard_bench m ~tier:"t1k" ~n:1_000;
  if full then shard_bench ~pairs:2 m ~tier:"t100k" ~n:100_000;
  (* dgc-san overhead probe: re-run the t10k ring with the sanitizer's
     vector clocks riding every delivery. Wall clock only — the
     schedule (and so every counter) must be identical — and purely
     informational in the artifact (compare.exe treats san.* and
     fresh-only keys as optional). *)
  say "tier t10k + dgc-san: sanitize overhead probe";
  let secs_san, wall_san, _, _ =
    ring_bench ~sanitize:true m ~tier:"t10k_san" ~n:10_000
  in
  sim_secs := !sim_secs +. secs_san;
  let wall_off = Hashtbl.find ring_wall "t10k" in
  let ratio = if wall_off > 0. then wall_san /. wall_off else nan in
  say "  sanitize ring wall: off=%.1fms on=%.1fms ratio=%.2fx" wall_off
    wall_san ratio;
  (* Flight-recorder overhead probe: the t10k ring with the recorder on
     vs off, min of a few unrecorded reps per arm to shed scheduler
     noise. The ratio is gated (≤ 1.05×) by compare.exe via
     --flight-ratio-max; the walls themselves are machine-dependent and
     only informational. *)
  say "tier t10k: flight recorder on/off overhead probe";
  (* Back-to-back on/off pairs after a warm-up pair. Wall noise on a
     shared machine is one-sided — preemption and GC pauses only ever
     inflate a rep — so the cleanest pair (lowest on/off ratio) is the
     most faithful estimate of the true recorder overhead: noise fakes
     slowdowns, never speedups, while a genuine regression lifts every
     pair. Early exit once a pair lands comfortably under the gate. *)
  let arm flight =
    let _, w, _, _ =
      ring_bench ~flight ~record:false m ~tier:"t10k" ~n:10_000
    in
    w
  in
  ignore (arm true);
  ignore (arm false);
  let fl_on = ref infinity and fl_off = ref infinity in
  let fl_ratio = ref infinity in
  let pairs = ref 0 in
  while !pairs < 15 && !fl_ratio > 1.02 do
    incr pairs;
    let w_on = arm true in
    let w_off = arm false in
    if w_on < !fl_on then fl_on := w_on;
    if w_off < !fl_off then fl_off := w_off;
    if w_off > 0. then fl_ratio := Float.min !fl_ratio (w_on /. w_off)
  done;
  let fl_on = !fl_on and fl_off = !fl_off in
  let fl_ratio = if Float.is_finite !fl_ratio then !fl_ratio else nan in
  say "  flight ring wall: off=%.1fms on=%.1fms ratio=%.2fx" fl_off fl_on
    fl_ratio;
  (* Profiler overhead probe: the t10k ring with the sim-cost profiler
     (scopes + work counters + cost ledger) on vs off, same best-pair
     discipline as the flight probe. Gated (≤ 1.10×) by compare.exe via
     --profile-ratio-max. *)
  say "tier t10k: profiler on/off overhead probe";
  let parm profile =
    let _, w, _, _ =
      ring_bench ~profile ~record:false m ~tier:"t10k" ~n:10_000
    in
    w
  in
  ignore (parm true);
  ignore (parm false);
  let pf_on = ref infinity and pf_off = ref infinity in
  let pf_ratio = ref infinity in
  let ppairs = ref 0 in
  while !ppairs < 15 && !pf_ratio > 1.05 do
    incr ppairs;
    let w_on = parm true in
    let w_off = parm false in
    if w_on < !pf_on then pf_on := w_on;
    if w_off < !pf_off then pf_off := w_off;
    if w_off > 0. then pf_ratio := Float.min !pf_ratio (w_on /. w_off)
  done;
  let pf_on = !pf_on and pf_off = !pf_off in
  let pf_ratio = if Float.is_finite !pf_ratio then !pf_ratio else nan in
  say "  profile ring wall: off=%.1fms on=%.1fms ratio=%.2fx" pf_off pf_on
    pf_ratio;
  let art =
    Dgc_telemetry.Run_artifact.make ~name:"scale-bench"
      ~sim_seconds:!sim_secs
      ~extra:
        [
          ("full", if full then Dgc_telemetry.Json.Bool true
                   else Dgc_telemetry.Json.Bool false);
          ( "san_overhead",
            Dgc_telemetry.Json.Obj
              [
                ("tier", Dgc_telemetry.Json.Str "t10k");
                ("ring_wall_ms_off", Dgc_telemetry.Json.Float wall_off);
                ("ring_wall_ms_on", Dgc_telemetry.Json.Float wall_san);
                ("ratio", Dgc_telemetry.Json.Float ratio);
              ] );
          ( "flight_overhead",
            Dgc_telemetry.Json.Obj
              [
                ("tier", Dgc_telemetry.Json.Str "t10k");
                ("ring_wall_ms_off", Dgc_telemetry.Json.Float fl_off);
                ("ring_wall_ms_on", Dgc_telemetry.Json.Float fl_on);
                ("ratio", Dgc_telemetry.Json.Float fl_ratio);
              ] );
          ( "profile_overhead",
            Dgc_telemetry.Json.Obj
              [
                ("tier", Dgc_telemetry.Json.Str "t10k");
                ("ring_wall_ms_off", Dgc_telemetry.Json.Float pf_off);
                ("ring_wall_ms_on", Dgc_telemetry.Json.Float pf_on);
                ("ratio", Dgc_telemetry.Json.Float pf_ratio);
              ] );
        ]
      ?series:!ring_series ?profile:!ring_profile m
  in
  Dgc_telemetry.Run_artifact.write ~path:out art;
  (match
     Dgc_telemetry.Run_artifact.validate
       ~require_hists:
         [
           "scale.compute_ms{tier=t1k}";
           "scale.apply_ms{tier=t1k}";
           "scale.round_ms{tier=t1k}";
         ]
       ~require_counter_prefixes:[ "scale."; "ledger." ] art
   with
  | Ok () -> say "wrote %s (shape ok)" out
  | Error e -> Fmt.failwith "scale artifact failed validation: %s" e)
