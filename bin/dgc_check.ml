(* dgc-check: static-configuration and dynamic-schedule analysis of the
   back-tracing collector.

   Examples:
     dgc-check                          # conformance + explore every SUT
     dgc-check --conformance            # protocol conformance battery only
     dgc-check --explore --scenario fig1 --depth-bound 8
     dgc-check --explore --scenario fig5-race-broken --expect-violation
     dgc-check --list                   # available exploration scenarios
     dgc-check san                      # static protocol lint (dgc-san)
     dgc-check san --smoke              # lint + dynamic sanitizer smoke

   Exit status 0 means every requested analysis matched its
   expectation; 1 means a conformance violation, an unexpected
   invariant violation, or a missing expected one. *)

open Dgc_analysis
module Lint = Dgc_sanitize.Lint
module Protocol = Dgc_rts.Protocol
open Cmdliner

type opts = {
  o_conformance : bool;
  o_explore : bool;
  o_scenario : string option;
  o_depth : int;
  o_width : int;
  o_max_steps : int;
  o_max_schedules : int;
  o_seed : int;
  o_expect_violation : bool;
  o_list : bool;
}

let say fmt = Format.printf (fmt ^^ "@.")

let run_conformance opts =
  let report = Conformance.run_battery ~seed:opts.o_seed () in
  say "== protocol conformance ==";
  say "%a" Conformance.pp_report report;
  Conformance.clean report

(* A SUT passes when its outcome matches its expectation: the stock
   scenarios must explore clean, the seeded-bug ones must produce a
   counterexample (and have it shrink). *)
let seeded_bug_suts () =
  [
    Sut.fig5_race_broken.Explorer.sut_name;
    Sut.san_race_broken.Explorer.sut_name;
    Sut.san_lost_trace.Explorer.sut_name;
  ]

let expect_violation opts sut =
  opts.o_expect_violation
  || List.mem sut.Explorer.sut_name (seeded_bug_suts ())

let run_explore_one opts sut =
  let bounds =
    {
      Explorer.depth_bound = opts.o_depth;
      width = opts.o_width;
      max_steps = opts.o_max_steps;
      max_schedules = opts.o_max_schedules;
    }
  in
  let result = Explorer.explore ~bounds sut in
  say "%a" Explorer.pp_result result;
  let expected = expect_violation opts sut in
  let ok = expected <> Explorer.clean result in
  if not ok then
    say "  UNEXPECTED: wanted %s"
      (if expected then "a violation (seeded bug not found)"
       else "a clean exploration");
  ok

let run_explore opts =
  say "== schedule exploration (depth %d, width %d, %d steps, %d schedules) =="
    opts.o_depth opts.o_width opts.o_max_steps opts.o_max_schedules;
  match opts.o_scenario with
  | None -> List.for_all (run_explore_one opts) Sut.catalog
  | Some name -> (
      match Sut.find name with
      | Some s -> run_explore_one opts s
      | None ->
          say "unknown scenario %S (try --list)" name;
          false)

let run opts =
  if opts.o_list then begin
    say "exploration scenarios:";
    List.iter
      (fun s ->
        say "  %-18s %s" s.Explorer.sut_name s.Explorer.sut_desc)
      Sut.catalog;
    0
  end
  else begin
    (* no explicit selection = run everything *)
    let both = (not opts.o_conformance) && not opts.o_explore in
    let ok_conf =
      if opts.o_conformance || both then run_conformance opts else true
    in
    let ok_exp = if opts.o_explore || both then run_explore opts else true in
    if ok_conf && ok_exp then begin
      say "dgc-check: ok";
      0
    end
    else begin
      say "dgc-check: FAILED";
      1
    end
  end

let opts_term =
  let open Term in
  let conformance =
    Arg.(
      value & flag
      & info [ "conformance" ] ~doc:"Run the protocol conformance battery.")
  in
  let explore =
    Arg.(
      value & flag
      & info [ "explore" ] ~doc:"Run the schedule-exploring race detector.")
  in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ]
          ~doc:"Explore only this scenario (see $(b,--list)).")
  in
  let depth =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.depth_bound
      & info [ "depth-bound" ]
          ~doc:"Maximum schedule deviations per explored run.")
  in
  let width =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.width
      & info [ "width" ] ~doc:"Event ranks considered at each step.")
  in
  let max_steps =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.max_steps
      & info [ "max-steps" ] ~doc:"Events executed per run.")
  in
  let max_schedules =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.max_schedules
      & info [ "max-schedules" ] ~doc:"Total schedules explored per scenario.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")
  in
  let expect_violation =
    Arg.(
      value & flag
      & info [ "expect-violation" ]
          ~doc:"Invert the verdict: exploration must find a violation.")
  in
  let list =
    Arg.(
      value & flag & info [ "list" ] ~doc:"List exploration scenarios.")
  in
  let make o_conformance o_explore o_scenario o_depth o_width o_max_steps
      o_max_schedules o_seed o_expect_violation o_list =
    {
      o_conformance;
      o_explore;
      o_scenario;
      o_depth;
      o_width;
      o_max_steps;
      o_max_schedules;
      o_seed;
      o_expect_violation;
      o_list;
    }
  in
  const make $ conformance $ explore $ scenario $ depth $ width $ max_steps
  $ max_schedules $ seed $ expect_violation $ list

(* --- san subcommand: the dgc-san static lint (+ dynamic smoke) --------- *)

(* Every [ext] kind label registered by the libraries linked into this
   binary (the executable links with -linkall so all the baseline
   collectors' descriptor declarations run too). A kind added without
   updating this list shows up as an unknown-kind finding, and a kind
   added here without a descriptor as missing-descriptor: the lint
   fails closed either way. *)
let known_ext_kinds =
  [
    "back_call";
    "back_reply";
    "back_report";
    "g_round";
    "g_mark";
    "g_sweep";
    "gr_probe";
    "gr_mark";
    "gr_sweep";
    "h_ts";
    "h_round";
    "migrate";
  ]

let run_san_lint () =
  say "== dgc-san: static protocol lint ==";
  let findings = Lint.run ~ext_kinds:known_ext_kinds () in
  List.iter (fun f -> say "  %a" Lint.pp_finding f) findings;
  if Lint.ok findings then begin
    say "lint: %d descriptors over %d message kinds, all stories sound"
      (List.length (Protocol.descriptors ()))
      (List.length (List.filter (fun k -> k <> "ext") Protocol.base_kinds)
      + List.length known_ext_kinds);
    true
  end
  else begin
    say "lint: %d findings" (List.length findings);
    false
  end

(* The dynamic smoke: the sanitizer must rediscover both seeded defects
   (the §6.4 transfer-barrier race and the lost-trace leak) from the
   explorer, deterministically. *)
let run_san_smoke opts =
  say "== dgc-san: dynamic smoke (seeded-defect rediscovery) ==";
  List.for_all
    (fun name ->
      match Sut.find name with
      | Some sut -> run_explore_one opts sut
      | None ->
          say "missing sanitizer scenario %S" name;
          false)
    [
      Sut.san_race_broken.Explorer.sut_name;
      Sut.san_lost_trace.Explorer.sut_name;
    ]

let run_san smoke opts =
  let ok_lint = run_san_lint () in
  let ok_smoke = if smoke then run_san_smoke opts else true in
  if ok_lint && ok_smoke then begin
    say "dgc-check san: ok";
    0
  end
  else begin
    say "dgc-check san: FAILED";
    1
  end

let san_cmd =
  let doc =
    "lint the protocol's message descriptors (duplicate-delivery story, \
     crash edge, commutativity class) and optionally smoke the dynamic \
     sanitizer against the seeded defects"
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Also run the happens-before sanitizer over the seeded-defect \
             scenarios and require it to rediscover both.")
  in
  Cmd.v (Cmd.info "san" ~doc) Term.(const run_san $ smoke $ opts_term)

let cmd =
  let doc =
    "check protocol conformance and explore event schedules for invariant \
     violations"
  in
  Cmd.group
    ~default:Term.(const run $ opts_term)
    (Cmd.info "dgc-check" ~doc)
    [ san_cmd ]

let () = exit (Cmd.eval' cmd)
