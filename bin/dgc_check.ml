(* dgc-check: static-configuration and dynamic-schedule analysis of the
   back-tracing collector.

   Examples:
     dgc-check                          # conformance + explore every SUT
     dgc-check --conformance            # protocol conformance battery only
     dgc-check --explore --scenario fig1 --depth-bound 8
     dgc-check --explore --scenario fig5-race-broken --expect-violation
     dgc-check --list                   # available exploration scenarios

   Exit status 0 means every requested analysis matched its
   expectation; 1 means a conformance violation, an unexpected
   invariant violation, or a missing expected one. *)

open Dgc_analysis
open Cmdliner

type opts = {
  o_conformance : bool;
  o_explore : bool;
  o_scenario : string option;
  o_depth : int;
  o_width : int;
  o_max_steps : int;
  o_max_schedules : int;
  o_seed : int;
  o_expect_violation : bool;
  o_list : bool;
}

let say fmt = Format.printf (fmt ^^ "@.")

let run_conformance opts =
  let report = Conformance.run_battery ~seed:opts.o_seed () in
  say "== protocol conformance ==";
  say "%a" Conformance.pp_report report;
  Conformance.clean report

(* A SUT passes when its outcome matches its expectation: the stock
   scenarios must explore clean, the seeded-bug one must produce a
   counterexample (and have it shrink). *)
let expect_violation opts sut =
  opts.o_expect_violation
  || sut.Explorer.sut_name = Sut.fig5_race_broken.Explorer.sut_name

let run_explore_one opts sut =
  let bounds =
    {
      Explorer.depth_bound = opts.o_depth;
      width = opts.o_width;
      max_steps = opts.o_max_steps;
      max_schedules = opts.o_max_schedules;
    }
  in
  let result = Explorer.explore ~bounds sut in
  say "%a" Explorer.pp_result result;
  let expected = expect_violation opts sut in
  let ok = expected <> Explorer.clean result in
  if not ok then
    say "  UNEXPECTED: wanted %s"
      (if expected then "a violation (seeded bug not found)"
       else "a clean exploration");
  ok

let run_explore opts =
  say "== schedule exploration (depth %d, width %d, %d steps, %d schedules) =="
    opts.o_depth opts.o_width opts.o_max_steps opts.o_max_schedules;
  match opts.o_scenario with
  | None -> List.for_all (run_explore_one opts) Sut.catalog
  | Some name -> (
      match Sut.find name with
      | Some s -> run_explore_one opts s
      | None ->
          say "unknown scenario %S (try --list)" name;
          false)

let run opts =
  if opts.o_list then begin
    say "exploration scenarios:";
    List.iter
      (fun s ->
        say "  %-18s %s" s.Explorer.sut_name s.Explorer.sut_desc)
      Sut.catalog;
    0
  end
  else begin
    (* no explicit selection = run everything *)
    let both = (not opts.o_conformance) && not opts.o_explore in
    let ok_conf =
      if opts.o_conformance || both then run_conformance opts else true
    in
    let ok_exp = if opts.o_explore || both then run_explore opts else true in
    if ok_conf && ok_exp then begin
      say "dgc-check: ok";
      0
    end
    else begin
      say "dgc-check: FAILED";
      1
    end
  end

let opts_term =
  let open Term in
  let conformance =
    Arg.(
      value & flag
      & info [ "conformance" ] ~doc:"Run the protocol conformance battery.")
  in
  let explore =
    Arg.(
      value & flag
      & info [ "explore" ] ~doc:"Run the schedule-exploring race detector.")
  in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ]
          ~doc:"Explore only this scenario (see $(b,--list)).")
  in
  let depth =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.depth_bound
      & info [ "depth-bound" ]
          ~doc:"Maximum schedule deviations per explored run.")
  in
  let width =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.width
      & info [ "width" ] ~doc:"Event ranks considered at each step.")
  in
  let max_steps =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.max_steps
      & info [ "max-steps" ] ~doc:"Events executed per run.")
  in
  let max_schedules =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.max_schedules
      & info [ "max-schedules" ] ~doc:"Total schedules explored per scenario.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")
  in
  let expect_violation =
    Arg.(
      value & flag
      & info [ "expect-violation" ]
          ~doc:"Invert the verdict: exploration must find a violation.")
  in
  let list =
    Arg.(
      value & flag & info [ "list" ] ~doc:"List exploration scenarios.")
  in
  let make o_conformance o_explore o_scenario o_depth o_width o_max_steps
      o_max_schedules o_seed o_expect_violation o_list =
    {
      o_conformance;
      o_explore;
      o_scenario;
      o_depth;
      o_width;
      o_max_steps;
      o_max_schedules;
      o_seed;
      o_expect_violation;
      o_list;
    }
  in
  const make $ conformance $ explore $ scenario $ depth $ width $ max_steps
  $ max_schedules $ seed $ expect_violation $ list

let cmd =
  let doc =
    "check protocol conformance and explore event schedules for invariant \
     violations"
  in
  Cmd.v (Cmd.info "dgc-check" ~doc) Term.(const run $ opts_term)

let () = exit (Cmd.eval' cmd)
