(* dgc-check: static-configuration and dynamic-schedule analysis of the
   back-tracing collector.

   Examples:
     dgc-check                          # conformance + explore every SUT
     dgc-check --conformance            # protocol conformance battery only
     dgc-check --explore --scenario fig1 --depth-bound 8
     dgc-check --explore --scenario fig5-race-broken --expect-violation
     dgc-check --list                   # available exploration scenarios
     dgc-check san                      # static protocol lint (dgc-san)
     dgc-check san --smoke              # lint + dynamic sanitizer smoke

   Exit status 0 means every requested analysis matched its
   expectation; 1 means a conformance violation, an unexpected
   invariant violation, or a missing expected one. *)

open Dgc_analysis
module Lint = Dgc_sanitize.Lint
module Protocol = Dgc_rts.Protocol
open Cmdliner

type opts = {
  o_conformance : bool;
  o_explore : bool;
  o_scenario : string option;
  o_depth : int;
  o_width : int;
  o_max_steps : int;
  o_max_schedules : int;
  o_seed : int;
  o_expect_violation : bool;
  o_list : bool;
}

let say fmt = Format.printf (fmt ^^ "@.")

let run_conformance opts =
  let report = Conformance.run_battery ~seed:opts.o_seed () in
  say "== protocol conformance ==";
  say "%a" Conformance.pp_report report;
  Conformance.clean report

(* A SUT passes when its outcome matches its expectation: the stock
   scenarios must explore clean, the seeded-bug ones must produce a
   counterexample (and have it shrink). *)
let seeded_bug_suts () =
  [
    Sut.fig5_race_broken.Explorer.sut_name;
    Sut.san_race_broken.Explorer.sut_name;
    Sut.san_lost_trace.Explorer.sut_name;
  ]

let expect_violation opts sut =
  opts.o_expect_violation
  || List.mem sut.Explorer.sut_name (seeded_bug_suts ())

let run_explore_one opts sut =
  let bounds =
    {
      Explorer.depth_bound = opts.o_depth;
      width = opts.o_width;
      max_steps = opts.o_max_steps;
      max_schedules = opts.o_max_schedules;
    }
  in
  let result = Explorer.explore ~bounds sut in
  say "%a" Explorer.pp_result result;
  let expected = expect_violation opts sut in
  let ok = expected <> Explorer.clean result in
  if not ok then
    say "  UNEXPECTED: wanted %s"
      (if expected then "a violation (seeded bug not found)"
       else "a clean exploration");
  ok

let run_explore opts =
  say "== schedule exploration (depth %d, width %d, %d steps, %d schedules) =="
    opts.o_depth opts.o_width opts.o_max_steps opts.o_max_schedules;
  match opts.o_scenario with
  | None -> List.for_all (run_explore_one opts) Sut.catalog
  | Some name -> (
      match Sut.find name with
      | Some s -> run_explore_one opts s
      | None ->
          say "unknown scenario %S (try --list)" name;
          false)

let run opts =
  if opts.o_list then begin
    say "exploration scenarios:";
    List.iter
      (fun s ->
        say "  %-18s %s" s.Explorer.sut_name s.Explorer.sut_desc)
      Sut.catalog;
    0
  end
  else begin
    (* no explicit selection = run everything *)
    let both = (not opts.o_conformance) && not opts.o_explore in
    let ok_conf =
      if opts.o_conformance || both then run_conformance opts else true
    in
    let ok_exp = if opts.o_explore || both then run_explore opts else true in
    if ok_conf && ok_exp then begin
      say "dgc-check: ok";
      0
    end
    else begin
      say "dgc-check: FAILED";
      1
    end
  end

let opts_term =
  let open Term in
  let conformance =
    Arg.(
      value & flag
      & info [ "conformance" ] ~doc:"Run the protocol conformance battery.")
  in
  let explore =
    Arg.(
      value & flag
      & info [ "explore" ] ~doc:"Run the schedule-exploring race detector.")
  in
  let scenario =
    Arg.(
      value
      & opt (some string) None
      & info [ "scenario" ]
          ~doc:"Explore only this scenario (see $(b,--list)).")
  in
  let depth =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.depth_bound
      & info [ "depth-bound" ]
          ~doc:"Maximum schedule deviations per explored run.")
  in
  let width =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.width
      & info [ "width" ] ~doc:"Event ranks considered at each step.")
  in
  let max_steps =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.max_steps
      & info [ "max-steps" ] ~doc:"Events executed per run.")
  in
  let max_schedules =
    Arg.(
      value
      & opt int Explorer.default_bounds.Explorer.max_schedules
      & info [ "max-schedules" ] ~doc:"Total schedules explored per scenario.")
  in
  let seed =
    Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")
  in
  let expect_violation =
    Arg.(
      value & flag
      & info [ "expect-violation" ]
          ~doc:"Invert the verdict: exploration must find a violation.")
  in
  let list =
    Arg.(
      value & flag & info [ "list" ] ~doc:"List exploration scenarios.")
  in
  let make o_conformance o_explore o_scenario o_depth o_width o_max_steps
      o_max_schedules o_seed o_expect_violation o_list =
    {
      o_conformance;
      o_explore;
      o_scenario;
      o_depth;
      o_width;
      o_max_steps;
      o_max_schedules;
      o_seed;
      o_expect_violation;
      o_list;
    }
  in
  const make $ conformance $ explore $ scenario $ depth $ width $ max_steps
  $ max_schedules $ seed $ expect_violation $ list

(* --- san subcommand: the dgc-san static lint (+ dynamic smoke) --------- *)

(* Every [ext] kind label registered by the libraries linked into this
   binary (the executable links with -linkall so all the baseline
   collectors' descriptor declarations run too). A kind added without
   updating this list shows up as an unknown-kind finding, and a kind
   added here without a descriptor as missing-descriptor: the lint
   fails closed either way. *)
let known_ext_kinds =
  [
    "back_call";
    "back_reply";
    "back_report";
    "g_round";
    "g_mark";
    "g_sweep";
    "gr_probe";
    "gr_mark";
    "gr_sweep";
    "h_ts";
    "h_round";
    "migrate";
  ]

let run_san_lint () =
  say "== dgc-san: static protocol lint ==";
  let findings = Lint.run ~ext_kinds:known_ext_kinds () in
  List.iter (fun f -> say "  %a" Lint.pp_finding f) findings;
  if Lint.ok findings then begin
    say "lint: %d descriptors over %d message kinds, all stories sound"
      (List.length (Protocol.descriptors ()))
      (List.length (List.filter (fun k -> k <> "ext") Protocol.base_kinds)
      + List.length known_ext_kinds);
    true
  end
  else begin
    say "lint: %d findings" (List.length findings);
    false
  end

(* The dynamic smoke: the sanitizer must rediscover both seeded defects
   (the §6.4 transfer-barrier race and the lost-trace leak) from the
   explorer, deterministically. *)
let run_san_smoke opts =
  say "== dgc-san: dynamic smoke (seeded-defect rediscovery) ==";
  List.for_all
    (fun name ->
      match Sut.find name with
      | Some sut -> run_explore_one opts sut
      | None ->
          say "missing sanitizer scenario %S" name;
          false)
    [
      Sut.san_race_broken.Explorer.sut_name;
      Sut.san_lost_trace.Explorer.sut_name;
    ]

let run_san smoke opts =
  let ok_lint = run_san_lint () in
  let ok_smoke = if smoke then run_san_smoke opts else true in
  if ok_lint && ok_smoke then begin
    say "dgc-check san: ok";
    0
  end
  else begin
    say "dgc-check san: FAILED";
    1
  end

let san_cmd =
  let doc =
    "lint the protocol's message descriptors (duplicate-delivery story, \
     crash edge, commutativity class) and optionally smoke the dynamic \
     sanitizer against the seeded defects"
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Also run the happens-before sanitizer over the seeded-defect \
             scenarios and require it to rediscover both.")
  in
  Cmd.v (Cmd.info "san" ~doc) Term.(const run_san $ smoke $ opts_term)

(* --- fuzz subcommand: coverage-guided plan/schedule fuzzing ------------ *)

module Fuzzer = Dgc_fuzz.Fuzzer
module Freport = Dgc_fuzz.Report

(* The smoke recipe: a cold corpus pointed at the two seeded defects —
   the §6.4 transfer-barrier race (schedule mutation against
   san-race-broken) and the lost-trace leak (plan mutation against
   fig2 with dgc-san on and the §4.6 timeouts off). Budgeted to finish
   under @runtest; stop_on ends the loop as soon as both are found. *)
let smoke_opts ~seed =
  {
    Fuzzer.default_opts with
    Fuzzer.o_name = "fuzz-smoke";
    o_seed = seed;
    o_execs = 48;
    o_cov_size = 4096;
    o_workloads = [ "fig2" ];
    o_suts = [ "san-race-broken" ];
    o_tweaks = [ "sanitize"; "no_timeouts" ];
    o_shards = [ 1 ];
    o_horizon_ms = 15_000.;
    o_events = 2;
    o_max_steps = 64;
    o_width = 3;
    o_stop_on = [ "race"; "leak" ];
  }

let print_fuzz_report (r : Freport.t) =
  say "[%s] mode %s: %d execs, %d/%d coverage slots hit (%d records)"
    r.Freport.r_name r.Freport.r_mode r.Freport.r_execs
    (Dgc_fuzz.Coverage.hits r.Freport.r_map)
    (Dgc_fuzz.Coverage.size r.Freport.r_map)
    (Dgc_fuzz.Coverage.total r.Freport.r_map);
  say "  corpus pool: %d inputs (%d plans, %d schedules), %d promoted"
    r.Freport.r_pool_size r.Freport.r_pool_plans r.Freport.r_pool_schedules
    r.Freport.r_promoted;
  if r.Freport.r_san_skipped > 0 then
    say "  sanitizer-blind execs (sharded engine): %d" r.Freport.r_san_skipped;
  List.iter
    (fun o ->
      say "  op %-10s tried %3d, novel %3d, failing %3d" o.Freport.op_name
        o.Freport.op_tried o.Freport.op_novel o.Freport.op_failed)
    r.Freport.r_ops;
  List.iter
    (fun f ->
      say "  FOUND %s (%s input, exec %d%s): %s" f.Freport.fd_kind
        f.Freport.fd_input f.Freport.fd_exec
        (match f.Freport.fd_promoted with
        | Some p -> ", promoted as " ^ p
        | None -> "")
        f.Freport.fd_detail)
    r.Freport.r_found;
  match r.Freport.r_baseline with
  | Some (execs, hits) ->
      say "  baseline (uniform random, %d execs): %d slots hit" execs hits
  | None -> ()

let split_commas s =
  String.split_on_char ',' s |> List.filter (fun x -> not (String.equal x ""))

let run_fuzz smoke with_baseline out promote seed execs workloads suts tweaks
    shards horizon_ms events max_steps width corpus =
  let opts =
    if smoke then smoke_opts ~seed
    else
      {
        Fuzzer.default_opts with
        Fuzzer.o_name = "fuzz";
        o_seed = seed;
        o_execs = execs;
        o_workloads = split_commas workloads;
        o_suts = split_commas suts;
        o_tweaks = split_commas tweaks;
        o_shards = List.map int_of_string (split_commas shards);
        o_horizon_ms = horizon_ms;
        o_events = events;
        o_max_steps = max_steps;
        o_width = width;
      }
  in
  let opts =
    { opts with Fuzzer.o_promote_dir = promote; o_corpus = corpus }
  in
  say "== coverage-guided fuzzing (%s, seed %d, budget %d execs) =="
    opts.Fuzzer.o_name opts.Fuzzer.o_seed opts.Fuzzer.o_execs;
  let report =
    if with_baseline then Fuzzer.with_baseline opts else Fuzzer.run opts
  in
  print_fuzz_report report;
  (match out with
  | Some path ->
      Freport.save ~path report;
      say "  report written to %s" path
  | None -> ());
  let found k =
    List.exists (fun f -> String.equal f.Freport.fd_kind k) report.Freport.r_found
  in
  let ok =
    if smoke then begin
      let ok_race = found "race" and ok_leak = found "leak" in
      if not ok_race then
        say "  SMOKE FAILED: seeded race not rediscovered within budget";
      if not ok_leak then
        say "  SMOKE FAILED: seeded lost-trace leak not rediscovered within \
             budget";
      let ok_base =
        match report.Freport.r_baseline with
        | Some (_, hits) ->
            let guided = Dgc_fuzz.Coverage.hits report.Freport.r_map in
            if guided <= hits then
              say "  SMOKE FAILED: guided coverage (%d) does not beat the \
                   random baseline (%d)"
                guided hits;
            guided > hits
        | None -> true
      in
      ok_race && ok_leak && ok_base
    end
    else if report.Freport.r_found <> [] then begin
      say "  failures found on supposedly-clean targets";
      false
    end
    else true
  in
  if ok then begin
    say "dgc-check fuzz: ok";
    0
  end
  else begin
    say "dgc-check fuzz: FAILED";
    1
  end

let fuzz_cmd =
  let doc =
    "coverage-guided fuzzing of fault plans and explorer schedules, with \
     reproducer shrinking and corpus promotion"
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:
            "Budgeted cold-corpus run that must rediscover both seeded \
             defects (the transfer-barrier race and the lost-trace leak).")
  in
  let baseline =
    Arg.(
      value & flag
      & info [ "baseline" ]
          ~doc:
            "Also spend the same budget on uniform-random inputs and embed \
             the comparison in the report.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE" ~doc:"Write the dgc.fuzz/1 report here.")
  in
  let promote =
    Arg.(
      value
      & opt (some string) None
      & info [ "promote" ] ~docv:"DIR"
          ~doc:"Promote shrunk reproducers into this corpus directory.")
  in
  let seed = Arg.(value & opt int 7 & info [ "seed" ] ~doc:"Campaign seed.") in
  let execs =
    Arg.(
      value & opt int 200
      & info [ "execs" ] ~doc:"Execution budget (long mode).")
  in
  let workloads =
    Arg.(
      value
      & opt string "churn,fig2,ring"
      & info [ "workloads" ] ~doc:"Comma-separated plan-input workloads.")
  in
  let suts =
    Arg.(
      value & opt string "fig1"
      & info [ "suts" ] ~doc:"Comma-separated schedule-input SUTs.")
  in
  let tweaks =
    Arg.(
      value & opt string ""
      & info [ "tweaks" ]
          ~doc:"Comma-separated config tweaks armed on every plan run.")
  in
  let shards =
    Arg.(
      value & opt string "1,4"
      & info [ "shards" ]
          ~doc:"Comma-separated shard counts plan runs rotate over.")
  in
  let horizon_ms =
    Arg.(
      value & opt float 20_000.
      & info [ "horizon-ms" ] ~doc:"Chaos horizon per plan run.")
  in
  let events =
    Arg.(
      value & opt int 3
      & info [ "events" ] ~doc:"Fault windows per fresh random plan.")
  in
  let max_steps =
    Arg.(
      value & opt int 400
      & info [ "max-steps" ] ~doc:"Step bound per schedule run.")
  in
  let width =
    Arg.(
      value & opt int 3 & info [ "width" ] ~doc:"Deviation ranks considered.")
  in
  let corpus =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"CORPUS" ~doc:"Seed corpus files to warm the pool.")
  in
  Cmd.v
    (Cmd.info "fuzz" ~doc)
    Term.(
      const run_fuzz $ smoke $ baseline $ out $ promote $ seed $ execs
      $ workloads $ suts $ tweaks $ shards $ horizon_ms $ events $ max_steps
      $ width $ corpus)

let cmd =
  let doc =
    "check protocol conformance and explore event schedules for invariant \
     violations"
  in
  Cmd.group
    ~default:Term.(const run $ opts_term)
    (Cmd.info "dgc-check" ~doc)
    [ san_cmd; fuzz_cmd ]

let () = exit (Cmd.eval' cmd)
