#!/bin/sh
# @detgate: the sharded engine's determinism bar.
#
# A dgc.run/1 artifact is a function of (seed, shards) only — never of
# the worker domain count. Every figure scenario runs at --domains
# 1/2/4 and every committed dgc.plan/1 chaos reproducer replays at
# --domains 1/4; each group of artifacts must be byte-identical.
#
#   usage: detgate.sh DGC_SIM_EXE CORPUS_DIR
set -eu

SIM="$1"
CORPUS="$2"
# dune hands the executable as a bare relative name
case "$SIM" in
  /*) ;;
  *) SIM="./$SIM" ;;
esac
TMP="${TMPDIR:-/tmp}/detgate.$$"
mkdir -p "$TMP"
trap 'rm -rf "$TMP"' EXIT INT TERM

for fig in fig1 fig2 fig3 fig4 fig5 fig6; do
  for d in 1 2 4; do
    "$SIM" det --scenario "$fig" --domains "$d" \
      -o "$TMP/$fig.d$d.json" >/dev/null
  done
  cmp "$TMP/$fig.d1.json" "$TMP/$fig.d2.json"
  cmp "$TMP/$fig.d1.json" "$TMP/$fig.d4.json"
  echo "detgate: $fig byte-identical at domains 1/2/4"
done

for plan in "$CORPUS"/*.json; do
  # dgc.schedule/1 files are explorer deviation schedules, not fault
  # plans — chaos --plan refuses them by design.
  grep -q '"dgc.plan/1"' "$plan" || continue
  base=$(basename "$plan" .json)
  for d in 1 4; do
    # Reproducer plans for planted defects FAIL their replay (exit 1);
    # the gate here is the artifact bytes, not the verdict. Exit 2+
    # (load error, bad flags) still fails the gate.
    rc=0
    "$SIM" chaos --plan "$plan" --domains "$d" \
      --out "$TMP/$base.d$d.json" >/dev/null || rc=$?
    [ "$rc" -le 1 ] || { echo "detgate: $base replay exited $rc" >&2; exit "$rc"; }
  done
  cmp "$TMP/$base.d1.json" "$TMP/$base.d4.json"
  echo "detgate: $base byte-identical at domains 1/4"
done

echo "detgate: all artifacts byte-identical across domain counts"
