(* dgc-sim: run configurable simulations of the back-tracing collector
   (or a baseline) on synthetic workloads and report what happened.

   Examples:
     dgc-sim run --sites 4 --workload ring --span 3 --minutes 10
     dgc-sim run --workload hypertext --churn 4 --minutes 20 --drop 0.1
     dgc-sim run --collector hughes --workload ring --crash 2
     dgc-sim trace --scenario fig1 --out fig1_trace.json
     dgc-sim metrics --workload random --minutes 5 --out run.json
*)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload
open Dgc_baselines
open Dgc_telemetry
module Obs = Dgc_observe
module Prof = Dgc_profile.Profile
module Ledg = Dgc_profile.Ledger
open Cmdliner

type collector_kind = Back_tracing | Global | Hughes_ts | Group | Migrate

type opts = {
  o_sites : int;
  o_seed : int;
  o_workload : string;
  o_span : int;
  o_per_site : int;
  o_delta : int;
  o_threshold2 : int;
  o_interval : float;
  o_window : float;
  o_drop : float;
  o_churn : int;
  o_minutes : float;
  o_crash : int option;
  o_collector : collector_kind;
  o_verbose : bool;
  o_dot : string option;
  o_journal : int;
  o_profile : bool;
  o_domains : int option;
}

let say fmt = Format.printf (fmt ^^ "@.")

let build_workload eng opts =
  let rng = Rng.create ~seed:(opts.o_seed + 1) in
  let sites n = List.init n Site_id.of_int in
  match opts.o_workload with
  | "ring" ->
      ignore
        (Graph_gen.ring eng ~sites:(sites opts.o_span)
           ~per_site:opts.o_per_site ~rooted:false);
      ignore
        (Graph_gen.ring eng ~sites:(sites opts.o_span)
           ~per_site:opts.o_per_site ~rooted:true)
  | "clique" ->
      ignore (Graph_gen.clique eng ~sites:(sites opts.o_span) ~rooted:false)
  | "hypertext" ->
      ignore
        (Graph_gen.hypertext eng ~rng ~docs_per_site:3
           ~pages_per_doc:opts.o_per_site ~cross_links:(opts.o_sites * 6)
           ~rooted_frac:0.5)
  | "random" ->
      ignore
        (Graph_gen.random_graph eng ~rng ~objects_per_site:20
           ~out_degree:1.5 ~remote_frac:0.3 ~root_frac:0.08)
  | w -> Fmt.failwith "unknown workload %S" w

(* [--domains N] selects the sharded engine at a fixed shard count of
   4: artifacts are a function of (seed, shards) only, so any N gives
   byte-identical output while N domains do the tracing work. *)
let det_shards = 4

let config_of opts =
  let base =
    {
      Config.default with
      Config.n_sites = opts.o_sites;
      seed = opts.o_seed;
      delta = opts.o_delta;
      threshold2 = opts.o_threshold2;
      trace_interval = Sim_time.of_seconds opts.o_interval;
      trace_jitter = Sim_time.of_seconds (opts.o_interval /. 10.);
      trace_duration = Sim_time.of_seconds opts.o_window;
      ext_drop = opts.o_drop;
      profile = opts.o_profile;
    }
  in
  match opts.o_domains with
  | None -> base
  | Some d -> { base with Config.shards = det_shards; domains = d }

(* The journal is always attached (capacity from the configuration);
   its tail is the first thing an operator wants when a run ends in a
   violated invariant. *)
let attach_journal cfg eng =
  let j = Journal.create ~capacity:(max 64 cfg.Config.journal_capacity) () in
  Engine.attach_journal eng j

(* Baseline collectors build their engine directly (no [Sim.make]), so
   [--profile] attaches the profiler here. *)
let attach_profiler cfg eng =
  if cfg.Config.profile && Option.is_none (Engine.profile eng) then
    Engine.attach_profile eng (Prof.create ())

let print_journal_tail ?(n = 20) eng =
  match Engine.merged_journal eng with
  | None -> ()
  | Some j ->
      say "-- journal tail (last %d entries) --------------------------" n;
      List.iter
        (fun e -> say "%a" Journal.pp_entry e)
        (Journal.entries ~last:n j)

(* All read-out paths use the merged accessors: on a sharded engine
   they interleave the per-shard documents deterministically, and at
   shards=1 they are content-identical to the facade's own. *)
let report eng ~verbose =
  let m = Engine.merged_metrics eng in
  say "-- per-site summary ----------------------------------------";
  say "%a" Report.pp_summary eng;
  say "%s" (Report.garbage_overview eng);
  say "-- results ------------------------------------------------";
  say "garbage remaining (oracle): %d" (Dgc_oracle.Oracle.garbage_count eng);
  say "objects freed:              %d" (Metrics.get m "gc.objects_freed");
  say "local traces:               %d" (Metrics.get m "gc.local_traces");
  say "messages (total):           %d" (Metrics.get m "msg.total");
  say "back traces started:        %d" (Metrics.get m "back.traces_started");
  say "  garbage / live verdicts:  %d / %d"
    (Metrics.get m "back.outcome_garbage")
    (Metrics.get m "back.outcome_live");
  say "  back-trace messages:      %d" (Metrics.get m "back.msgs");
  (match Metrics.hist_stats m "back.latency_ms" with
  | Some h ->
      say "  latency ms p50/p95/p99:   %.2f / %.2f / %.2f" h.Metrics.p50
        h.Metrics.p95 h.Metrics.p99
  | None -> ());
  if verbose then begin
    say "-- all counters -------------------------------------------";
    List.iter (fun (k, v) -> say "%-40s %d" k v) (Metrics.counters m);
    say "-- histograms ---------------------------------------------";
    List.iter
      (fun (k, h) ->
        say "%-40s n=%d p50=%.3g p95=%.3g p99=%.3g max=%.3g" k h.Metrics.n
          h.Metrics.p50 h.Metrics.p95 h.Metrics.p99 h.Metrics.max)
      (Metrics.hists m)
  end;
  match Dgc_oracle.Oracle.table_violations eng with
  | [] -> say "table integrity:            ok"
  | vs ->
      say "table integrity:            %d violations" (List.length vs);
      if verbose then List.iter (fun v -> say "  %s" v) vs;
      print_journal_tail eng

let dump_dot opts eng =
  match opts.o_dot with
  | None -> ()
  | Some path ->
      let oc = open_out path in
      output_string oc (Report.to_dot eng);
      close_out oc;
      say "wrote object graph to %s" path

let print_journal opts eng =
  if opts.o_journal > 0 then
    match Engine.merged_journal eng with
    | Some j ->
        say "-- journal (last %d events) --------------------------------"
          opts.o_journal;
        List.iter
          (fun e -> say "%a" Journal.pp_entry e)
          (Journal.entries ~last:opts.o_journal j)
    | None -> ()

let write_artifact ?audit ~out ~name eng =
  (* An attached profiler lands as the artifact's "profile" section
     automatically — no extra flag beyond --profile. *)
  let profile = Option.map (fun p -> Prof.to_json ~name p) (Engine.profile eng) in
  let art =
    Run_artifact.make ~name
      ~sim_seconds:(Sim_time.to_seconds (Engine.now eng))
      ?audit
      ~series:(Engine.merged_series eng)
      ?profile
      (Engine.merged_metrics eng)
  in
  Run_artifact.write ~path:out art;
  say "wrote run artifact to %s" out

let dump_flight_to eng path =
  match Engine.dump_flight eng ~reason:"cli: --dump-flight" with
  | None ->
      say "no flight recorder attached (flight_capacity = 0); nothing to dump"
  | Some j ->
      let oc = open_out path in
      output_string oc (Json.to_string j);
      output_char oc '\n';
      close_out oc;
      say "wrote flight dump to %s" path

(* artifact: when set, emit a machine-readable Run_artifact JSON at the
   end of the run (the [metrics] subcommand); back-tracing runs get a
   tracer attached and an "audit" section explaining any garbage the
   run left behind. prom: print the final time-series values in
   Prometheus text exposition. dump_flight: write the ring dump even
   though the run ended without a failure. *)
let run ?artifact ?dump_flight ?(prom = false) ?prom_out opts =
  let cfg = config_of opts in
  if opts.o_domains <> None && opts.o_collector <> Back_tracing then
    Fmt.failwith
      "--domains is only supported with --collector back (the baseline \
       collectors observe message order and need the classic engine)";
  say "dgc-sim: %a" Config.pp cfg;
  let minutes = Sim_time.of_minutes opts.o_minutes in
  let audited = ref None in
  let eng =
    match opts.o_collector with
    | Back_tracing ->
        let sim = Sim.make ~cfg () in
        let eng = sim.Sim.eng in
        attach_journal cfg eng;
        if artifact <> None then Engine.attach_tracer eng (Tracer.create ());
        audited := Some sim.Sim.col;
        build_workload eng opts;
        let churn =
          if opts.o_churn > 0 then
            Some
              (Churn.start sim
                 ~rng:(Rng.create ~seed:(opts.o_seed + 2))
                 ~agents:opts.o_churn
                 ~mean_op_gap:(Sim_time.of_millis 400.))
          else None
        in
        Option.iter (fun s -> Engine.crash eng (Site_id.of_int s)) opts.o_crash;
        Sim.start sim;
        Sim.run_for sim minutes;
        Option.iter Churn.stop churn;
        Sim.run_for sim (Sim_time.of_minutes 1.);
        report eng ~verbose:opts.o_verbose;
        print_journal opts eng;
        dump_dot opts eng;
        eng
    | Global ->
        let eng = Engine.create cfg in
        attach_journal cfg eng;
        attach_profiler cfg eng;
        let gt = Global_trace.install eng in
        build_workload eng opts;
        Option.iter (fun s -> Engine.crash eng (Site_id.of_int s)) opts.o_crash;
        Engine.start_gc_schedule eng;
        let finished = ref false in
        Global_trace.collect gt
          ~on_done:(fun ~freed ~rounds ->
            finished := true;
            say "global collection: freed %d in %d rounds" freed rounds)
          ();
        Engine.run_for eng minutes;
        if not !finished then say "global collection DID NOT FINISH";
        report eng ~verbose:opts.o_verbose;
        dump_dot opts eng;
        eng
    | Hughes_ts ->
        let eng = Engine.create cfg in
        attach_journal cfg eng;
        attach_profiler cfg eng;
        let h = Hughes.install eng ~slack:(Sim_time.of_seconds 60.) in
        build_workload eng opts;
        Option.iter (fun s -> Engine.crash eng (Site_id.of_int s)) opts.o_crash;
        Engine.start_gc_schedule eng;
        let steps =
          int_of_float (Sim_time.to_seconds minutes /. opts.o_interval)
        in
        for _ = 1 to max 1 steps do
          Engine.run_for eng (Sim_time.of_seconds opts.o_interval);
          Hughes.run_threshold_round h ()
        done;
        say "hughes threshold: %.1f after %d rounds" (Hughes.threshold h)
          (Hughes.rounds_completed h);
        report eng ~verbose:opts.o_verbose;
        dump_dot opts eng;
        eng
    | Group ->
        let eng = Engine.create cfg in
        attach_journal cfg eng;
        attach_profiler cfg eng;
        let g = Group_trace.install eng ~max_group:opts.o_sites in
        build_workload eng opts;
        Option.iter (fun s -> Engine.crash eng (Site_id.of_int s)) opts.o_crash;
        Engine.start_gc_schedule eng;
        Engine.run_for eng minutes;
        say "groups: %d formed, %d aborted, last size %d"
          (Group_trace.groups_formed g)
          (Group_trace.groups_aborted g)
          (Group_trace.last_group_size g);
        report eng ~verbose:opts.o_verbose;
        dump_dot opts eng;
        eng
    | Migrate ->
        let eng = Engine.create cfg in
        attach_journal cfg eng;
        attach_profiler cfg eng;
        let m = Migration.install eng in
        build_workload eng opts;
        Option.iter (fun s -> Engine.crash eng (Site_id.of_int s)) opts.o_crash;
        Engine.start_gc_schedule eng;
        Engine.run_for eng minutes;
        say "migration: %d moves, %d bytes, %d multi-holder skips"
          (Migration.migrations m) (Migration.bytes_moved m)
          (Migration.skipped_multi_holder m);
        report eng ~verbose:opts.o_verbose;
        dump_dot opts eng;
        eng
  in
  Option.iter (dump_flight_to eng) dump_flight;
  if prom then print_string (Series.to_prom (Engine.merged_series eng));
  Option.iter
    (fun path ->
      let oc = open_out path in
      output_string oc (Series.to_prom (Engine.merged_series eng));
      close_out oc;
      say "wrote Prometheus exposition to %s" path)
    prom_out;
  Option.iter
    (fun out ->
      let audit =
        Option.map (fun col -> Obs.Audit.to_json (Obs.Audit.run col)) !audited
      in
      write_artifact ?audit ~out ~name:"dgc-sim" eng)
    artifact;
  Engine.teardown eng;
  0

(* --- trace subcommand: record one scenario as causal spans ------------- *)

let scenario_cfg =
  {
    Config.default with
    Config.delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    trace_duration = Sim_time.zero;
  }

let run_trace scenario out format =
  let tracer = Tracer.create () in
  let eng =
    match scenario with
    | "fig1" ->
        (* The f-g cycle is garbage at rest: the periodic schedule finds
           and collects it on its own. *)
        let f = Scenario.fig1 ~cfg:scenario_cfg () in
        let sim = f.Scenario.f1_sim in
        Engine.attach_tracer sim.Sim.eng tracer;
        Sim.start sim;
        ignore (Sim.collect_all sim ~max_rounds:30 ());
        sim.Sim.eng
    | "fig2" ->
        (* Everything is suspected garbage; start the §4.1 outref-start
           trace from c at Q, as the paper's walkthrough does. *)
        let f = Scenario.fig2 ~cfg:scenario_cfg () in
        let sim = f.Scenario.f2_sim in
        Engine.attach_tracer sim.Sim.eng tracer;
        Scenario.settle sim ~rounds:8;
        ignore
          (Collector.start_back_trace sim.Sim.col
             (Oid.site f.Scenario.f2_a) f.Scenario.f2_c);
        Sim.run_for sim (Sim_time.of_seconds 5.);
        sim.Sim.eng
    | "fig6" ->
        (* All live; suspect the g-side path and trace from outref g at
           Q — the trace forks (sources Q and R) and returns Live. *)
        let f, _w = Scenario.fig6 ~cfg:scenario_cfg () in
        let sim = f.Scenario.f5_sim in
        Engine.attach_tracer sim.Sim.eng tracer;
        Scenario.settle sim ~rounds:9;
        ignore
          (Collector.start_back_trace sim.Sim.col f.Scenario.f5_q
             f.Scenario.f5_g);
        Sim.run_for sim (Sim_time.of_seconds 5.);
        sim.Sim.eng
    | s -> Fmt.failwith "unknown scenario %S (try fig1, fig2, fig6)" s
  in
  (match format with
  | `Chrome ->
      (* Merge the engine's time series as counter tracks so Perfetto
         shows load and memory gauges under the span lanes. *)
      let j =
        Tracer.to_chrome
          ~counters:(Series.chrome_counters (Engine.series eng))
          tracer
      in
      let oc = open_out out in
      output_string oc (Json.to_string j);
      output_char oc '\n';
      close_out oc
  | `Jsonl -> Tracer.write_jsonl tracer ~path:out);
  let spans = Tracer.spans tracer in
  let roots = List.filter (fun s -> s.Tracer.name = "back_trace") spans in
  let sites =
    List.sort_uniq Int.compare (List.map (fun s -> s.Tracer.site) spans)
  in
  say "scenario %s: %d spans across %d sites, %d back traces" scenario
    (List.length spans) (List.length sites) (List.length roots);
  List.iter
    (fun r ->
      let outcome =
        match List.assoc_opt "outcome" r.Tracer.attrs with
        | Some (Json.Str s) -> s
        | _ -> "unfinished"
      in
      say "  %s at site %d: %s" r.Tracer.trace r.Tracer.site outcome)
    roots;
  say "wrote %s trace to %s (load chrome format in ui.perfetto.dev)"
    (match format with `Chrome -> "chrome" | `Jsonl -> "jsonl")
    out;
  (match Engine.metrics eng |> fun m -> Metrics.hist_stats m "back.latency_ms"
   with
  | Some h ->
      say "back-trace latency ms: p50=%.2f p95=%.2f max=%.2f" h.Metrics.p50
        h.Metrics.p95 h.Metrics.max
  | None -> ());
  0

(* --- audit / inspect subcommands: the observe library ------------------- *)

let all_figs = [ "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6" ]

let scenario_sim ?(cfg = scenario_cfg) = function
  | "fig1" -> (Scenario.fig1 ~cfg ()).Scenario.f1_sim
  | "fig2" -> (Scenario.fig2 ~cfg ()).Scenario.f2_sim
  | "fig3" -> (Scenario.fig3 ~cfg ()).Scenario.f3_sim
  | "fig4" -> (Scenario.fig4 ~cfg ()).Scenario.f4_sim
  | "fig5" -> (Scenario.fig5 ~cfg ()).Scenario.f5_sim
  | "fig6" -> (fst (Scenario.fig6 ~cfg ())).Scenario.f5_sim
  | s -> Fmt.failwith "unknown scenario %S (try fig1..fig6)" s

type fault = F_none | F_crash | F_partition

(* Fault injection armed on collector activity: the first engine step
   that sees a back trace without an outcome fires the fault, so the
   crash/partition lands mid-trace rather than at a wall-clock guess. *)
let inject_fault sim fault =
  let eng = sim.Sim.eng in
  let fired = ref false in
  let when_tracing f =
    Engine.add_step_watcher eng (fun () ->
        if
          (not !fired)
          && List.exists
               (fun (_, st) -> st.Back_trace.ts_outcome = None)
               (Back_trace.stats (Collector.back sim.Sim.col))
        then begin
          fired := true;
          f ()
        end)
  in
  match fault with
  | F_none -> ()
  | F_crash -> when_tracing (fun () -> Engine.crash eng (Site_id.of_int 2))
  | F_partition ->
      when_tracing (fun () -> Engine.partition eng [ [ Site_id.of_int 0 ] ])

let audit_one ~fault ~rounds ~sanitize name =
  (* Profiler on: schedule-neutral, and its cost ledger becomes audit
     evidence — trace-involved verdicts arrive priced. *)
  let sim =
    scenario_sim ~cfg:{ scenario_cfg with Config.profile = true } name
  in
  let eng = sim.Sim.eng in
  attach_journal (Engine.config eng) eng;
  Engine.attach_tracer eng (Tracer.create ());
  let wd = Obs.Watchdog.attach sim.Sim.col in
  if sanitize then begin
    let san = Dgc_sanitize.Sanitizer.install eng in
    Dgc_sanitize.Sanitizer.set_shared san (Collector.back sim.Sim.col);
    Obs.Watchdog.set_leak_probe wd (Dgc_sanitize.Sanitizer.leak_verdict san)
  end;
  inject_fault sim fault;
  Sim.start sim;
  Sim.run_rounds sim rounds;
  ignore (Obs.Watchdog.check_now wd);
  let report = Obs.Audit.run sim.Sim.col in
  say "---- %s -------------------------------------------------------" name;
  say "%a" Obs.Audit.pp report;
  (match Obs.Watchdog.alert_counts wd with
  | [] -> ()
  | counts ->
      say "watchdog: %s"
        (String.concat ", "
           (List.map (fun (k, n) -> Printf.sprintf "%s=%d" k n) counts)));
  (name, report)

let run_audit scenarios fault rounds strict sanitize out =
  let names = match scenarios with [] -> all_figs | l -> l in
  let reports =
    List.map (fun n -> audit_one ~fault ~rounds ~sanitize n) names
  in
  Option.iter
    (fun path ->
      let j =
        Json.Obj
          (List.map (fun (n, r) -> (n, Obs.Audit.to_json r)) reports)
      in
      let oc = open_out path in
      output_string oc (Json.to_string j);
      output_char oc '\n';
      close_out oc;
      say "wrote audit report to %s" path)
    out;
  let failures =
    List.concat_map
      (fun (n, r) ->
        List.map (fun f -> n ^ ": " ^ f) (Obs.Audit.strict_failures r))
      reports
  in
  let survived =
    List.fold_left
      (fun acc (_, r) -> acc + List.length r.Obs.Audit.rp_components)
      0 reports
  in
  say "";
  say "audit: %d scenarios, %d surviving components, %d unexplained"
    (List.length reports) survived (List.length failures);
  List.iter (fun f -> say "  FAIL %s" f) failures;
  if strict && failures <> [] then 1 else 0

let run_inspect scenario rounds out =
  let sim = scenario_sim scenario in
  let eng = sim.Sim.eng in
  attach_journal (Engine.config eng) eng;
  Engine.attach_tracer eng (Tracer.create ());
  Scenario.settle sim ~rounds:2;
  let before = Obs.Snapshot.take sim.Sim.col in
  Sim.start sim;
  Sim.run_rounds sim rounds;
  let after = Obs.Snapshot.take sim.Sim.col in
  say "== %s settled, before the trace schedule ==" scenario;
  say "%a" Obs.Snapshot.pp before;
  say "";
  say "== after %d trace rounds ==" rounds;
  say "%a" Obs.Snapshot.pp after;
  let changes = Obs.Snapshot.diff before after in
  say "";
  say "== diff: %d changes ==" (List.length changes);
  List.iter (fun c -> say "  %a" Obs.Snapshot.pp_change c) changes;
  Option.iter
    (fun path ->
      let j =
        Json.Obj
          [
            ("schema", Json.Str "dgc.inspect/1");
            ("scenario", Json.Str scenario);
            ("before", Obs.Snapshot.to_json before);
            ("after", Obs.Snapshot.to_json after);
          ]
      in
      let oc = open_out path in
      output_string oc (Json.to_string j);
      output_char oc '\n';
      close_out oc;
      say "wrote snapshots to %s" path)
    out;
  0

(* --- det subcommand: the @detgate determinism surface ------------------- *)

(* Run a figure scenario on the sharded engine (fixed shard count) and
   write its run artifact. The artifact is a function of (seed, shards)
   only — never of the worker-domain count — so the @detgate alias
   diffs the output of --domains 1/2/4 byte-for-byte. *)
let run_det scenario rounds domains out =
  let cfg = { scenario_cfg with Config.shards = det_shards; domains } in
  let sim = scenario_sim ~cfg scenario in
  let eng = sim.Sim.eng in
  Sim.start sim;
  Sim.run_rounds sim rounds;
  let art =
    Run_artifact.make ~name:("det-" ^ scenario)
      ~sim_seconds:(Sim_time.to_seconds (Engine.now eng))
      ~series:(Engine.merged_series eng)
      (Engine.merged_metrics eng)
  in
  Run_artifact.write ~path:out art;
  say "wrote determinism artifact for %s to %s (domains=%d)" scenario out
    domains;
  Engine.teardown eng;
  0

let det_cmd =
  let doc =
    "run a figure scenario on the sharded engine and write its \
     $(b,dgc.run/1) artifact; the output must be byte-identical for any \
     $(b,--domains) value (the $(b,@detgate) alias diffs 1/2/4)"
  in
  let scenario =
    Arg.(
      value & opt string "fig1"
      & info [ "scenario" ] ~doc:"Scenario: $(b,fig1)..$(b,fig6).")
  in
  let rounds =
    Arg.(
      value & opt int 6
      & info [ "rounds" ] ~doc:"Local-trace rounds to run before exporting.")
  in
  let domains =
    Arg.(
      value & opt int 1
      & info [ "domains" ]
          ~doc:"Worker domains executing the shard windows (1 = inline).")
  in
  let out =
    Arg.(
      value & opt string "dgc_det.json"
      & info [ "out"; "o" ] ~doc:"Artifact output path.")
  in
  Cmd.v (Cmd.info "det" ~doc)
    Term.(const run_det $ scenario $ rounds $ domains $ out)

(* --- profile subcommand: the lib/profile cost profiler ------------------ *)

let write_text ~path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let run_profile scenario rounds out folded speedscope unit_ =
  let cfg = { scenario_cfg with Config.profile = true } in
  let sim = scenario_sim ~cfg scenario in
  let eng = sim.Sim.eng in
  Sim.start sim;
  Sim.run_rounds sim rounds;
  match Engine.profile eng with
  | None ->
      say "no profiler attached (unexpected with profile = true)";
      2
  | Some p ->
      let name = "profile-" ^ scenario in
      let doc = Prof.to_json ~name p in
      let valid = Prof.validate doc in
      (match valid with
      | Ok () -> say "profile: schema-valid %s document" Prof.schema
      | Error e -> say "profile: VALIDATION FAILED: %s" e);
      Run_artifact.write ~path:out doc;
      say "wrote %s artifact to %s" Prof.schema out;
      Option.iter
        (fun path ->
          write_text ~path (Prof.to_folded ?unit_ p);
          say "wrote folded stacks to %s (render: flamegraph.pl %s > prof.svg)"
            path path)
        folded;
      Option.iter
        (fun path ->
          write_text ~path
            (Json.to_string (Prof.to_speedscope ?unit_ ~name p) ^ "\n");
          say "wrote speedscope profile to %s (open at speedscope.app)" path)
        speedscope;
      let r = Ledg.rollup (Prof.ledger p) in
      say
        "ledger: %d traces (%d garbage, %d live), %d msgs, %d bytes, %d frames"
        r.Ledg.r_traces r.Ledg.r_collected r.Ledg.r_live r.Ledg.r_msgs
        r.Ledg.r_bytes r.Ledg.r_frames;
      if r.Ledg.r_collected > 0 then
        say "  per collected cycle: %.3f msgs, %.3f bytes"
          (float_of_int r.Ledg.r_msgs_per_cycle_milli /. 1000.)
          (float_of_int r.Ledg.r_bytes_per_cycle_milli /. 1000.);
      (match valid with Ok () -> 0 | Error _ -> 1)

let run_profile_diff base fresh tol =
  match (Run_artifact.read ~path:base, Run_artifact.read ~path:fresh) with
  | Error e, _ ->
      say "cannot read %s: %s" base e;
      2
  | _, Error e ->
      say "cannot read %s: %s" fresh e;
      2
  | Ok b, Ok f -> (
      match Prof.diff ~share_tolerance:tol b f with
      | Error e ->
          say "diff: %s" e;
          2
      | Ok report ->
          say "%a" Prof.pp_diff report;
          if report.Prof.df_regressed then 1 else 0)

let profile_cmd =
  let doc =
    "run a figure scenario with the deterministic sim-cost profiler \
     attached and export the $(b,dgc.profile/1) artifact (work units per \
     phase scope, per-back-trace cost ledger), flamegraph.pl folded \
     stacks, and speedscope JSON; $(b,profile diff) compares two artifacts"
  in
  let scenario =
    Arg.(
      value & opt string "fig2"
      & info [ "scenario" ] ~doc:"Scenario: $(b,fig1)..$(b,fig6).")
  in
  let rounds =
    Arg.(
      value & opt int 8
      & info [ "rounds" ] ~doc:"Local-trace rounds to run before exporting.")
  in
  let out =
    Arg.(
      value
      & opt string "dgc_profile.json"
      & info [ "out"; "o" ] ~doc:"$(b,dgc.profile/1) artifact output path.")
  in
  let folded =
    Arg.(
      value
      & opt (some string) None
      & info [ "folded" ]
          ~doc:
            "Write flamegraph.pl-compatible folded stacks here (render with \
             $(b,flamegraph.pl FILE > prof.svg)).")
  in
  let speedscope =
    Arg.(
      value
      & opt (some string) None
      & info [ "speedscope" ]
          ~doc:
            "Write a speedscope sampled-JSON profile here (open at \
             speedscope.app).")
  in
  let unit_ =
    Arg.(
      value
      & opt (some string) None
      & info [ "unit" ]
          ~doc:
            "Weight folded/speedscope output by this work unit (e.g. \
             $(b,events), $(b,visits), $(b,bytes_sent)); default is the sum \
             over all units.")
  in
  let run_t =
    Term.(
      const run_profile $ scenario $ rounds $ out $ folded $ speedscope
      $ unit_)
  in
  let diff_cmd =
    let base =
      Arg.(required & pos 0 (some string) None & info [] ~docv:"BASE")
    in
    let fresh =
      Arg.(required & pos 1 (some string) None & info [] ~docv:"FRESH")
    in
    let tol =
      Arg.(
        value
        & opt float 0.10
        & info [ "share-tolerance" ]
            ~doc:
              "Largest tolerated drift in any top-level phase's share of a \
               work unit's total before the exit status reports a \
               regression.")
    in
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "compare two dgc.profile/1 artifacts: per-node work deltas plus \
            a top-level phase-share regression verdict")
      Term.(const run_profile_diff $ base $ fresh $ tol)
  in
  Cmd.group ~default:run_t (Cmd.info "profile" ~doc) [ diff_cmd ]

(* --- chaos subcommand: fault-plan campaigns ----------------------------- *)

module Chaos = Dgc_chaos

let print_chaos_outcome oc =
  let open Chaos.Campaign in
  match oc.oc_failure with
  | None ->
      say "PASS %s (%d fault windows, %.0fs simulated)" oc.oc_case.cs_name
        oc.oc_injected oc.oc_sim_seconds
  | Some f -> say "FAIL %s: %s" oc.oc_case.cs_name (failure_to_string f)

let write_chaos_artifact ~out json =
  Run_artifact.write ~path:out json;
  say "wrote chaos artifact to %s" out

(* Replay one plan file against a workload; the bit-determinism surface
   (same --workload/--seed/--plan ⇒ byte-identical --out artifact). *)
let chaos_replay ~tweak ~workload ~seed ~horizon_ms ~shrink ~out path =
  match Chaos.Plan.load ~path with
  | Error m ->
      say "cannot load plan %s: %s" path m;
      2
  | Ok plan ->
      let case =
        {
          Chaos.Campaign.cs_name = Printf.sprintf "%s-%d" workload seed;
          cs_workload = workload;
          cs_seed = seed;
          cs_horizon_ms = horizon_ms;
          cs_plan = plan;
        }
      in
      say "chaos: replaying %s (%d events) against %s, seed %d" path
        (Chaos.Plan.length plan) workload seed;
      let oc = Chaos.Campaign.run_case ~tweak case in
      print_chaos_outcome oc;
      let shrunk =
        match oc.Chaos.Campaign.oc_failure with
        | Some f when shrink ->
            let p, replays = Chaos.Campaign.shrink_case ~tweak case f in
            say "shrunk to %d fault events in %d replays:" (Chaos.Plan.length p)
              replays;
            say "%a" Chaos.Plan.pp p;
            Some (p, replays)
        | _ -> None
      in
      Option.iter
        (fun out -> write_chaos_artifact ~out (Chaos.Campaign.artifact ?shrunk oc))
        out;
      if Option.is_none oc.Chaos.Campaign.oc_failure then 0 else 1

let chaos_campaign ~tweak ~workload ~seed ~cases ~horizon_ms ~events ~out () =
  if not (Chaos.Workloads.mem workload) then begin
    say "unknown workload %S (try %s)" workload
      (String.concat ", " Chaos.Workloads.names);
    2
  end
  else begin
    say "chaos: %d seeded plans x %s, horizon %.0fms, %d events each" cases
      workload horizon_ms events;
    let seeds = List.init cases (fun i -> seed + i) in
    let s =
      Chaos.Campaign.run ~tweak ~workload ~seeds ~horizon_ms
        ~events_per_plan:events ()
    in
    List.iter print_chaos_outcome s.Chaos.Campaign.sm_outcomes;
    List.iter
      (fun (oc, p, replays) ->
        let case = oc.Chaos.Campaign.oc_case in
        say "reproducer for %s (%d events, %d replays):"
          case.Chaos.Campaign.cs_name (Chaos.Plan.length p) replays;
        say "%a" Chaos.Plan.pp p;
        Option.iter
          (fun prefix ->
            let path =
              Printf.sprintf "%s.%s.json" prefix case.Chaos.Campaign.cs_name
            in
            Chaos.Plan.save ~path p;
            say "wrote reproducer plan to %s" path;
            write_chaos_artifact ~out:(prefix ^ "." ^ case.Chaos.Campaign.cs_name ^ ".artifact.json")
              (Chaos.Campaign.artifact ~shrunk:(p, replays) oc))
          out)
      s.Chaos.Campaign.sm_failures;
    let failed = List.length s.Chaos.Campaign.sm_failures in
    say "chaos: %d/%d cases passed" (cases - failed) cases;
    if failed = 0 then 0 else 1
  end

(* The deterministic CI smoke campaign: tiny fixed plans over two
   contrasting workloads; everything must stay safe and complete. *)
let chaos_smoke ~tweak () =
  let ok =
    List.for_all
      (fun (w, seeds) ->
        let s =
          Chaos.Campaign.run ~tweak ~shrink:false ~workload:w ~seeds
            ~horizon_ms:30_000. ~events_per_plan:3 ()
        in
        List.iter print_chaos_outcome s.Chaos.Campaign.sm_outcomes;
        s.Chaos.Campaign.sm_failures = [])
      [ ("fig1", [ 1; 2 ]); ("ring", [ 3 ]) ]
  in
  if ok then begin
    say "chaos smoke: all cases safe and complete";
    0
  end
  else 1

let run_chaos workload seed cases horizon_ms events plan out shrink broken
    sanitize no_timeouts no_oracle smoke domains =
  let tweak cfg =
    let cfg =
      if broken then { cfg with Config.enable_transfer_barrier = false }
      else cfg
    in
    let cfg = if sanitize then { cfg with Config.sanitize = true } else cfg in
    let cfg =
      if no_timeouts then { cfg with Config.enable_timeouts = false } else cfg
    in
    let cfg =
      match domains with
      | None -> cfg
      | Some d -> { cfg with Config.shards = det_shards; domains = d }
    in
    if no_oracle then { cfg with Config.oracle_checks = false } else cfg
  in
  if smoke then chaos_smoke ~tweak ()
  else
    match plan with
    | Some path ->
        chaos_replay ~tweak ~workload ~seed ~horizon_ms ~shrink ~out path
    | None ->
        chaos_campaign ~tweak ~workload ~seed ~cases ~horizon_ms ~events ~out
          ()

let chaos_cmd =
  let doc =
    "run deterministic fault-plan campaigns: seeded chaos schedules \
     (crashes, partitions, drop/dup bursts, latency storms) against a \
     workload, with oracle safety checked at every sweep, completeness \
     demanded after quiescence, and failing plans shrunk to minimal \
     reproducers"
  in
  let workload =
    Arg.(
      value
      & opt string "churn"
      & info [ "workload" ]
          ~doc:
            "Workload: $(b,fig1)..$(b,fig6), $(b,race), $(b,ring), \
             $(b,hypertext), $(b,churn).")
  in
  let seed =
    Arg.(
      value & opt int 1
      & info [ "seed" ] ~doc:"Base seed (campaign uses seed, seed+1, ...).")
  in
  let cases =
    Arg.(
      value & opt int 5
      & info [ "cases" ] ~doc:"Seeded plans to run in campaign mode.")
  in
  let horizon =
    Arg.(
      value
      & opt float 60_000.
      & info [ "horizon-ms" ] ~doc:"Chaos-phase length in simulated ms.")
  in
  let events =
    Arg.(
      value & opt int 4
      & info [ "events" ] ~doc:"Fault windows per generated plan.")
  in
  let plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "plan" ]
          ~doc:
            "Replay this $(b,dgc.plan/1) JSON file instead of generating \
             plans.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ]
          ~doc:
            "Replay: write the $(b,dgc.chaos/1) artifact here. Campaign: \
             prefix for reproducer plans/artifacts of failing cases.")
  in
  let shrink =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:"On replay failure, shrink the plan to a minimal reproducer.")
  in
  let broken =
    Arg.(
      value & flag
      & info [ "broken-transfer-barrier" ]
          ~doc:
            "Plant the §6.1 bug: disable the transfer barrier, so the \
             campaign must catch the resulting unsafe sweep.")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Run dgc-san inside every case: harmful races and proved lost \
             traces become first-class campaign failures (and shrink like \
             any other).")
  in
  let no_timeouts =
    Arg.(
      value & flag
      & info [ "no-timeouts" ]
          ~doc:
            "Plant the §4.6 bug: never arm call timeouts or visited TTLs, \
             so a crash mid-trace loses the trace forever.")
  in
  let no_oracle =
    Arg.(
      value & flag
      & info [ "no-oracle" ]
          ~doc:
            "Disable the oracle's per-sweep safety check; useful with \
             $(b,--sanitize) to let dgc-san be the detector that catches a \
             planted defect.")
  in
  let smoke =
    Arg.(
      value & flag
      & info [ "smoke" ]
          ~doc:"Run the small fixed CI campaign (fig1 + ring) and exit.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:
            "Run cases on the sharded engine (4 shards) with N worker \
             domains; artifacts are byte-identical for any N.")
  in
  Cmd.v (Cmd.info "chaos" ~doc)
    Term.(
      const run_chaos $ workload $ seed $ cases $ horizon $ events $ plan
      $ out $ shrink $ broken $ sanitize $ no_timeouts $ no_oracle $ smoke
      $ domains)

(* --- cmdliner ----------------------------------------------------------- *)

let opts_term =
  let open Term in
  let sites =
    Arg.(value & opt int 4 & info [ "sites" ] ~doc:"Number of sites.")
  in
  let seed = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.") in
  let workload =
    Arg.(
      value
      & opt string "ring"
      & info [ "workload" ]
          ~doc:"Workload: $(b,ring), $(b,clique), $(b,hypertext), $(b,random).")
  in
  let span =
    Arg.(
      value & opt int 3
      & info [ "span" ] ~doc:"Sites spanned by ring/clique workloads.")
  in
  let per_site =
    Arg.(
      value & opt int 2
      & info [ "per-site" ] ~doc:"Objects per site (ring), pages (hypertext).")
  in
  let delta =
    Arg.(value & opt int 3 & info [ "delta" ] ~doc:"Suspicion threshold Δ.")
  in
  let threshold2 =
    Arg.(value & opt int 6 & info [ "threshold2" ] ~doc:"Back threshold Δ2.")
  in
  let interval =
    Arg.(
      value & opt float 10.
      & info [ "interval" ] ~doc:"Seconds between local traces.")
  in
  let window =
    Arg.(
      value & opt float 0.
      & info [ "window" ] ~doc:"Local-trace window seconds (0 = atomic).")
  in
  let drop =
    Arg.(
      value & opt float 0.
      & info [ "drop" ] ~doc:"Collector-message drop probability.")
  in
  let churn =
    Arg.(value & opt int 0 & info [ "churn" ] ~doc:"Mutator agents to run.")
  in
  let minutes =
    Arg.(
      value & opt float 10. & info [ "minutes" ] ~doc:"Simulated minutes.")
  in
  let crash =
    Arg.(
      value
      & opt (some int) None
      & info [ "crash" ] ~doc:"Crash this site id for the whole run.")
  in
  let collector =
    let kinds =
      [
        ("back", Back_tracing);
        ("global", Global);
        ("hughes", Hughes_ts);
        ("group", Group);
        ("migration", Migrate);
      ]
    in
    Arg.(
      value
      & opt (enum kinds) Back_tracing
      & info [ "collector" ]
          ~doc:"Collector: $(b,back), $(b,global), $(b,hughes), $(b,group), \
                $(b,migration).")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ] ~doc:"Dump all counters and histograms.")
  in
  let dot =
    Arg.(
      value
      & opt (some string) None
      & info [ "dot" ] ~doc:"Write the final object graph as Graphviz dot.")
  in
  let journal =
    Arg.(
      value & opt int 0
      & info [ "journal" ]
          ~doc:"Print the journal's last N events after the run (the \
                journal itself is always recorded).")
  in
  let profile =
    Arg.(
      value & flag
      & info [ "profile" ]
          ~doc:
            "Attach the deterministic sim-cost profiler; artifact-writing \
             commands embed its $(b,dgc.profile/1) section. Schedules are \
             event-identical with or without it.")
  in
  let domains =
    Arg.(
      value
      & opt (some int) None
      & info [ "domains" ]
          ~doc:
            "Run the sharded engine (4 shards, conservative time windows) \
             with N worker domains. Reports and artifacts are \
             byte-identical for any N; only wall-clock time changes. \
             Requires $(b,--collector back).")
  in
  let make o_sites o_seed o_workload o_span o_per_site o_delta o_threshold2
      o_interval o_window o_drop o_churn o_minutes o_crash o_collector
      o_verbose o_dot o_journal o_profile o_domains =
    {
      o_sites;
      o_seed;
      o_workload;
      o_span;
      o_per_site;
      o_delta;
      o_threshold2;
      o_interval;
      o_window;
      o_drop;
      o_churn;
      o_minutes;
      o_crash;
      o_collector;
      o_verbose;
      o_dot;
      o_journal;
      o_profile;
      o_domains;
    }
  in
  const make $ sites $ seed $ workload $ span $ per_site $ delta $ threshold2
  $ interval $ window $ drop $ churn $ minutes $ crash $ collector $ verbose
  $ dot $ journal $ profile $ domains

let dump_flight_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "dump-flight" ]
        ~doc:
          "Write the flight recorder's ring dump ($(b,dgc.flight/1) JSON) \
           here after the run, even on success.")

let run_cmd =
  let doc = "run a simulation and print a report (the default command)" in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const (fun o df -> run ?dump_flight:df o) $ opts_term $ dump_flight_arg)

let trace_cmd =
  let doc =
    "record a figure scenario as causal back-trace spans (Chrome \
     trace-event or JSONL). The $(b,chrome) format also merges the \
     engine's time series as Perfetto counter tracks (ph $(b,C) events): \
     in-flight back traces, frames held, retry rates, and per-site \
     $(b,bytes_resident) gauges appear as counter lanes under the spans \
     (labelled series land on their site's pid) when the file is loaded \
     at ui.perfetto.dev"
  in
  let scenario =
    Arg.(
      value & opt string "fig1"
      & info [ "scenario" ]
          ~doc:"Scenario: $(b,fig1), $(b,fig2), $(b,fig6).")
  in
  let out =
    Arg.(
      value
      & opt string "dgc_trace.json"
      & info [ "out"; "o" ] ~doc:"Output path.")
  in
  let format =
    Arg.(
      value
      & opt (enum [ ("chrome", `Chrome); ("jsonl", `Jsonl) ]) `Chrome
      & info [ "format" ] ~doc:"Output format: $(b,chrome) or $(b,jsonl).")
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run_trace $ scenario $ out $ format)

let metrics_cmd =
  let doc =
    "run a simulation and write a machine-readable run artifact \
     (counters + histogram percentiles) as JSON"
  in
  let out =
    Arg.(
      value
      & opt string "dgc_metrics.json"
      & info [ "out"; "o" ] ~doc:"Artifact output path.")
  in
  let prom =
    Arg.(
      value & flag
      & info [ "prom" ]
          ~doc:
            "Also print the run's time-series (final values) as a strict \
             Prometheus text exposition on stdout.")
  in
  let prom_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "prom-out" ]
          ~doc:
            "Write the Prometheus text exposition to this file (implies the \
             same content as $(b,--prom), independent of it).")
  in
  Cmd.v (Cmd.info "metrics" ~doc)
    Term.(
      const (fun o out prom prom_out df ->
          run ~artifact:out ~prom ?prom_out ?dump_flight:df o)
      $ opts_term $ out $ prom $ prom_out $ dump_flight_arg)

let audit_cmd =
  let doc =
    "explain every surviving garbage cycle: cross-reference oracle ground \
     truth with span log, journal and table state to assign each garbage \
     component a why-not-collected verdict"
  in
  let scenarios =
    Arg.(
      value & opt_all string []
      & info [ "scenario" ]
          ~doc:
            "Scenario to audit ($(b,fig1)..$(b,fig6)); repeatable. Default: \
             all six figures.")
  in
  let fault =
    Arg.(
      value
      & opt
          (enum
             [ ("none", F_none); ("crash", F_crash); ("partition", F_partition) ])
          F_none
      & info [ "fault" ]
          ~doc:
            "Fault to inject mid-trace: $(b,none), $(b,crash) (site 2 goes \
             down when the first back trace is in flight), or \
             $(b,partition) (site 0 is isolated).")
  in
  let rounds =
    Arg.(
      value & opt int 8
      & info [ "rounds" ] ~doc:"Local-trace rounds to run before auditing.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Exit non-zero if any surviving component is Unexplained or \
             carries no evidence.")
  in
  let sanitize =
    Arg.(
      value & flag
      & info [ "sanitize" ]
          ~doc:
            "Run dgc-san alongside the audit: the watchdog cites the leak \
             detector's causal proof for stuck frames/traces instead of its \
             age heuristic, and Trace_incomplete verdicts cite the \
             sanitizer's journal evidence.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~doc:"Write the audit reports as JSON.")
  in
  Cmd.v (Cmd.info "audit" ~doc)
    Term.(
      const run_audit $ scenarios $ fault $ rounds $ strict $ sanitize $ out)

let inspect_cmd =
  let doc =
    "snapshot a scenario's collector state (tables, distances, thresholds, \
     frames, barriers, memo stats) before and after trace rounds, and diff"
  in
  let scenario =
    Arg.(
      value & opt string "fig1"
      & info [ "scenario" ] ~doc:"Scenario: $(b,fig1)..$(b,fig6).")
  in
  let rounds =
    Arg.(
      value & opt int 4
      & info [ "rounds" ] ~doc:"Local-trace rounds between the snapshots.")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~doc:"Write both snapshots as JSON.")
  in
  Cmd.v (Cmd.info "inspect" ~doc)
    Term.(const run_inspect $ scenario $ rounds $ out)

let cmd =
  let doc = "simulate distributed cyclic garbage collection by back tracing" in
  Cmd.group ~default:Term.(const (fun o -> run o) $ opts_term)
    (Cmd.info "dgc-sim" ~doc)
    [
      run_cmd;
      trace_cmd;
      metrics_cmd;
      det_cmd;
      profile_cmd;
      audit_cmd;
      inspect_cmd;
      chaos_cmd;
    ]

let () = exit (Cmd.eval' cmd)
