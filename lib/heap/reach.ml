open Dgc_prelude

type graph = {
  g_site : Site_id.t;
  g_mem : Oid.t -> bool;
  g_fields : Oid.t -> Oid.t list;
  g_dense : Dense.t;
}

let of_heap heap =
  {
    g_site = Heap.site heap;
    g_mem = (fun oid -> Heap.mem heap oid);
    g_fields = (fun oid -> Heap.fields heap oid);
    g_dense = Dense.of_heap heap;
  }

let of_snapshot snap =
  {
    g_site = Snapshot.site snap;
    g_mem = (fun oid -> Snapshot.mem snap oid);
    g_fields = (fun oid -> Snapshot.fields snap oid);
    g_dense = Dense.of_snapshot snap;
  }

let is_local g oid = Site_id.equal (Oid.site oid) g.g_site

exception Found

let closure g ~from =
  let d = g.g_dense in
  let bound = d.Dense.d_bound in
  let visited = Bytes.make (max bound 1) '\000' in
  let locals = ref Oid.Set.empty in
  let remotes = ref Oid.Set.empty in
  let stack = ref [] in
  let visit_idx i =
    if Bytes.get visited i = '\000' then begin
      Bytes.set visited i '\001';
      locals := Oid.Set.add (Oid.make ~site:g.g_site ~index:i) !locals;
      stack := i :: !stack
    end
  in
  List.iter
    (fun r ->
      if is_local g r then begin
        let i = Oid.index r in
        if Dense.present d i then visit_idx i
      end
      else remotes := Oid.Set.add r !remotes)
    from;
  let rec drain () =
    match !stack with
    | [] -> ()
    | i :: tl ->
        stack := tl;
        for k = d.Dense.d_start.(i) to d.Dense.d_start.(i + 1) - 1 do
          let c = d.Dense.d_codes.(k) in
          if c >= 0 then begin
            if Bytes.get d.Dense.d_present c <> '\000' then visit_idx c
          end
          else begin
            let r = d.Dense.d_pool.(-c - 1) in
            if not (is_local g r) then remotes := Oid.Set.add r !remotes
          end
        done;
        drain ()
  in
  drain ();
  (!locals, !remotes)

(* Membership-test DFS with early exit: [dst] is reachable iff it is
   [src], or occurs among the fields of some locally-reachable present
   object (that covers present locals — they are visited via a field —
   dangling locals, and remotes alike). *)
let reaches g ~src ~dst =
  if Oid.equal src dst then true
  else begin
    let d = g.g_dense in
    let bound = d.Dense.d_bound in
    if not (is_local g src && Dense.present d (Oid.index src)) then false
    else begin
      (* dst as a code: a local in-bound target compares by index, any
         other target compares by oid against the pool. *)
      let dst_idx =
        if is_local g dst && Oid.index dst >= 0 && Oid.index dst < bound then
          Oid.index dst
        else -1
      in
      let visited = Bytes.make (max bound 1) '\000' in
      let stack = ref [ Oid.index src ] in
      Bytes.set visited (Oid.index src) '\001';
      try
        let rec drain () =
          match !stack with
          | [] -> false
          | i :: tl ->
              stack := tl;
              for k = d.Dense.d_start.(i) to d.Dense.d_start.(i + 1) - 1 do
                let c = d.Dense.d_codes.(k) in
                if c >= 0 then begin
                  if c = dst_idx then raise Found;
                  if
                    Bytes.get d.Dense.d_present c <> '\000'
                    && Bytes.get visited c = '\000'
                  then begin
                    Bytes.set visited c '\001';
                    stack := c :: !stack
                  end
                end
                else if dst_idx < 0 && Oid.equal d.Dense.d_pool.(-c - 1) dst
                then raise Found
              done;
              drain ()
        in
        drain ()
      with Found -> true
    end
  end
