(** Per-site object store.

    Objects hold unordered multisets of references ("fields"); a
    reference may point to a local or a remote object. Persistent roots
    (§2) are designated local objects that serve as entry points. The
    store itself performs no collection — the collectors (local
    mark-sweep in {!Dgc_rts}, the combined trace in the core library)
    decide which objects to {!free}. *)

open Dgc_prelude

type obj = {
  oid : Oid.t;
  mutable fields : Oid.t list;  (** outgoing references, duplicates allowed *)
  mutable birth : int;  (** allocation sequence number, for allocate-live *)
  mutable size : int;  (** abstract payload size, for migration-cost accounting *)
}

type t

val create : Site_id.t -> t
val site : t -> Site_id.t

val alloc : ?size:int -> t -> Oid.t
(** Allocate a fresh object with no fields. [size] defaults to 1. *)

val bytes_resident : t -> int
(** Sum of the sizes of live objects, maintained incrementally (alloc
    adds, {!free} subtracts) so sampling it per trace round is O(1).
    Feeds the [bytes_resident{site=N}] gauge series. *)

val alloc_clock : t -> int
(** Current allocation sequence number; objects with
    [birth >= alloc_clock] taken at trace start are treated as live by
    snapshot-at-beginning sweeps. *)

val mem : t -> Oid.t -> bool
(** True iff the object is local to this site and not freed. *)

val find : t -> Oid.t -> obj option
val get : t -> Oid.t -> obj
(** Raises [Not_found] if absent. *)

val fields : t -> Oid.t -> Oid.t list
(** [] for absent objects. *)

val add_field : t -> obj:Oid.t -> target:Oid.t -> unit
(** Raises [Not_found] if [obj] is absent. *)

val remove_field : t -> obj:Oid.t -> target:Oid.t -> bool
(** Remove one occurrence; false if none was present. *)

val clear_fields : t -> Oid.t -> unit

val add_persistent_root : t -> Oid.t -> unit
(** Raises [Invalid_argument] if the oid is not a live local object. *)

val persistent_roots : t -> Oid.t list

val iter : t -> (obj -> unit) -> unit
val fold : t -> init:'a -> f:('a -> obj -> 'a) -> 'a
val object_count : t -> int
val indices : t -> int list
(** Local indices of live objects, ascending. *)

val free : t -> int list -> int
(** Free the objects with the given local indices; absent indices are
    ignored; persistent roots are never freed. Returns the number
    actually freed. *)

val pp : Format.formatter -> t -> unit
