(** Frozen copies of a heap's reference structure.

    The non-atomic local trace of §6.2 computes over the object graph
    as it stood when the trace began (snapshot-at-beginning): mutations
    during the trace window do not affect the computation, and objects
    allocated during the window are treated as live by the sweep. *)

open Dgc_prelude

type t

val take : Heap.t -> t
(** Capture the current adjacency, object set, persistent roots and
    allocation clock of [heap]. O(objects + references). *)

val site : t -> Site_id.t
val mem : t -> Oid.t -> bool
val fields : t -> Oid.t -> Oid.t list
(** [] for objects absent from the snapshot. *)

val indices : t -> int list
val persistent_roots : t -> Oid.t list
val alloc_clock : t -> int
(** Allocation clock at capture time: objects of the underlying heap
    with [birth >= alloc_clock t] were created after the snapshot. *)

val object_count : t -> int

val iter_edges : t -> (int -> Oid.t list -> unit) -> unit
(** [f index fields] for every object, in unspecified order; field
    order within an object is the captured one. *)
