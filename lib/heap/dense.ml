open Dgc_prelude

type t = {
  d_site : Site_id.t;
  d_bound : int;
  d_present : Bytes.t;
  d_roots : Bytes.t;
  d_start : int array;
  d_codes : int array;
  d_pool : Oid.t array;
  d_count : int;
}

let site t = t.d_site
let bound t = t.d_bound
let object_count t = t.d_count

let present t i =
  i >= 0 && i < t.d_bound && Bytes.get t.d_present i <> '\000'

let is_root t i =
  i >= 0 && i < t.d_bound && Bytes.get t.d_roots i <> '\000'

let indices t =
  let acc = ref [] in
  for i = t.d_bound - 1 downto 0 do
    if Bytes.get t.d_present i <> '\000' then acc := i :: !acc
  done;
  !acc

(* Generic two-pass CSR construction. [iter_objs f] must call
   [f index fields] once per live object; field order is preserved
   exactly (the trace's union-call sequence depends on it). *)
let build ~site ~bound ~roots ~n_objects iter_objs =
  let d_present = Bytes.make (max bound 1) '\000' in
  let d_roots = Bytes.make (max bound 1) '\000' in
  let deg = Array.make (bound + 1) 0 in
  iter_objs (fun i fields ->
      if i >= 0 && i < bound then begin
        Bytes.set d_present i '\001';
        deg.(i) <- List.length fields
      end);
  List.iter
    (fun r ->
      let i = Oid.index r in
      if i >= 0 && i < bound then Bytes.set d_roots i '\001')
    roots;
  let d_start = Array.make (bound + 1) 0 in
  for i = 0 to bound - 1 do
    d_start.(i + 1) <- d_start.(i) + deg.(i)
  done;
  let d_codes = Array.make (max d_start.(bound) 1) 0 in
  (* The pool collects every target that is not an in-bound local
     index: remote references, plus (defensively) local oids outside
     [0, bound). Encoded as [-(pool_index + 1)]. *)
  let pool_rev = ref [] in
  let n_pool = ref 0 in
  iter_objs (fun i fields ->
      if i >= 0 && i < bound then begin
        let k = ref d_start.(i) in
        List.iter
          (fun r ->
            let code =
              if Site_id.equal (Oid.site r) site then begin
                let j = Oid.index r in
                if j >= 0 && j < bound then j
                else begin
                  let p = !n_pool in
                  incr n_pool;
                  pool_rev := r :: !pool_rev;
                  -(p + 1)
                end
              end
              else begin
                let p = !n_pool in
                incr n_pool;
                pool_rev := r :: !pool_rev;
                -(p + 1)
              end
            in
            d_codes.(!k) <- code;
            incr k)
          fields
      end);
  let d_pool = Array.of_list (List.rev !pool_rev) in
  {
    d_site = site;
    d_bound = bound;
    d_present;
    d_roots;
    d_start;
    d_codes;
    d_pool;
    d_count = n_objects;
  }

let of_heap heap =
  build ~site:(Heap.site heap) ~bound:(Heap.alloc_clock heap)
    ~roots:(Heap.persistent_roots heap)
    ~n_objects:(Heap.object_count heap)
    (fun f -> Heap.iter heap (fun o -> f (Oid.index o.Heap.oid) o.Heap.fields))

let of_snapshot snap =
  build ~site:(Snapshot.site snap) ~bound:(Snapshot.alloc_clock snap)
    ~roots:(Snapshot.persistent_roots snap)
    ~n_objects:(Snapshot.object_count snap)
    (fun f -> Snapshot.iter_edges snap f)
