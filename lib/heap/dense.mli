(** Dense, immutable export of a heap's object graph.

    The per-trace hot paths (clean phase, fused Tarjan suspect phase,
    dead-set scan) run over contiguous int-indexed arrays instead of
    closure-per-lookup [find]s. A [t] is a snapshot of the graph at
    construction time: indices are heap object indices in
    [0, bound) where [bound] is the heap's allocation clock, adjacency
    is in CSR form, and roots are a bitset.

    The representation is exposed on purpose — the trace loops index
    [d_start]/[d_codes] directly. Invariants:

    - [d_start] has length [d_bound + 1]; object [i]'s field codes are
      [d_codes.(d_start.(i)) .. d_codes.(d_start.(i+1) - 1)], in exact
      field order (outset-union call order depends on it).
    - A code [c >= 0] is a local target index (check [present t c]:
      dangling references to freed local objects keep their index).
    - A code [c < 0] names [d_pool.(-c - 1)]: a remote reference, or —
      defensively — a local oid outside [0, bound).
    - [d_present]/[d_roots] are byte-per-index bitsets; only indices
      with [d_present] non-zero carry adjacency. *)

open Dgc_prelude

type t = {
  d_site : Site_id.t;
  d_bound : int;  (** allocation clock at capture *)
  d_present : Bytes.t;  (** live-object bitset, length [d_bound] *)
  d_roots : Bytes.t;  (** persistent-root bitset, length [d_bound] *)
  d_start : int array;  (** CSR offsets, length [d_bound + 1] *)
  d_codes : int array;  (** field codes in field order *)
  d_pool : Oid.t array;  (** targets not encodable as a local index *)
  d_count : int;  (** live object count *)
}

val of_heap : Heap.t -> t
(** Captures the graph now; later heap mutations are not reflected. *)

val of_snapshot : Snapshot.t -> t

val site : t -> Site_id.t
val bound : t -> int
val object_count : t -> int

val present : t -> int -> bool
(** False outside [0, bound). *)

val is_root : t -> int -> bool

val indices : t -> int list
(** Live indices, ascending — equals [Heap.indices] of the source heap
    at capture time, without the sort. *)
