open Dgc_prelude

type obj = {
  oid : Oid.t;
  mutable fields : Oid.t list;
  mutable birth : int;
  mutable size : int;
}

type t = {
  site : Site_id.t;
  objects : (int, obj) Hashtbl.t;
  mutable next_index : int;
  mutable roots : Oid.t list;
  mutable resident : int;  (** running sum of live object sizes *)
}

let create site =
  { site; objects = Hashtbl.create 64; next_index = 0; roots = []; resident = 0 }

let site t = t.site

let alloc ?(size = 1) t =
  let index = t.next_index in
  t.next_index <- index + 1;
  let oid = Oid.make ~site:t.site ~index in
  Hashtbl.add t.objects index { oid; fields = []; birth = index; size };
  t.resident <- t.resident + size;
  oid

let bytes_resident t = t.resident

let alloc_clock t = t.next_index

let find t oid =
  if not (Site_id.equal (Oid.site oid) t.site) then None
  else Hashtbl.find_opt t.objects (Oid.index oid)

let mem t oid = Option.is_some (find t oid)

let get t oid =
  match find t oid with Some o -> o | None -> raise Not_found

let fields t oid = match find t oid with Some o -> o.fields | None -> []

let add_field t ~obj ~target =
  let o = get t obj in
  o.fields <- target :: o.fields

let remove_field t ~obj ~target =
  match find t obj with
  | None -> false
  | Some o ->
      let removed = ref false in
      let rec drop_one = function
        | [] -> []
        | x :: tl ->
            if (not !removed) && Oid.equal x target then begin
              removed := true;
              tl
            end
            else x :: drop_one tl
      in
      o.fields <- drop_one o.fields;
      !removed

let clear_fields t oid =
  match find t oid with None -> () | Some o -> o.fields <- []

let add_persistent_root t oid =
  if not (mem t oid) then
    invalid_arg "Heap.add_persistent_root: not a live local object";
  if not (List.exists (Oid.equal oid) t.roots) then
    t.roots <- oid :: t.roots

let persistent_roots t = t.roots
let iter t f = Hashtbl.iter (fun _ o -> f o) t.objects
let fold t ~init ~f = Hashtbl.fold (fun _ o acc -> f acc o) t.objects init
let object_count t = Hashtbl.length t.objects

let indices t =
  Hashtbl.fold (fun i _ acc -> i :: acc) t.objects [] |> List.sort Int.compare

let free t idxs =
  (* Root indices once up front, not a root-list walk per freed index. *)
  let root_idx = Hashtbl.create (max 8 (List.length t.roots)) in
  List.iter (fun r -> Hashtbl.replace root_idx (Oid.index r) ()) t.roots;
  List.fold_left
    (fun n i ->
      match Hashtbl.find_opt t.objects i with
      | Some o when not (Hashtbl.mem root_idx i) ->
          Hashtbl.remove t.objects i;
          t.resident <- t.resident - o.size;
          n + 1
      | Some _ | None -> n)
    0 idxs

let pp ppf t =
  Format.fprintf ppf "@[<v>heap %a: %d objects, roots [%a]@," Site_id.pp
    t.site (object_count t)
    (Format.pp_print_list ~pp_sep:Format.pp_print_space Oid.pp)
    t.roots;
  List.iter
    (fun i ->
      let o = Hashtbl.find t.objects i in
      Format.fprintf ppf "  %a -> [%a]@," Oid.pp o.oid
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
           Oid.pp)
        o.fields)
    (indices t);
  Format.fprintf ppf "@]"
