open Dgc_prelude

type t = {
  site : Site_id.t;
  edges : (int, Oid.t list) Hashtbl.t;
  roots : Oid.t list;
  clock : int;
}

let take heap =
  let edges = Hashtbl.create (Heap.object_count heap) in
  Heap.iter heap (fun o -> Hashtbl.add edges (Oid.index o.Heap.oid) o.fields);
  {
    site = Heap.site heap;
    edges;
    roots = Heap.persistent_roots heap;
    clock = Heap.alloc_clock heap;
  }

let site t = t.site

let mem t oid =
  Site_id.equal (Oid.site oid) t.site && Hashtbl.mem t.edges (Oid.index oid)

let fields t oid =
  if not (Site_id.equal (Oid.site oid) t.site) then []
  else Option.value ~default:[] (Hashtbl.find_opt t.edges (Oid.index oid))

let indices t =
  Hashtbl.fold (fun i _ acc -> i :: acc) t.edges [] |> List.sort Int.compare

let persistent_roots t = t.roots
let alloc_clock t = t.clock
let object_count t = Hashtbl.length t.edges
let iter_edges t f = Hashtbl.iter f t.edges
