(** Local reachability over one site's object graph.

    "Locally reachable" follows §4.1, footnote 1: a reference [b] is
    locally reachable from reference [a] if there is a path of zero or
    more local references from the object [a] names to an object
    containing [b]. *)

open Dgc_prelude

type graph = {
  g_site : Site_id.t;
  g_mem : Oid.t -> bool;  (** object is present locally *)
  g_fields : Oid.t -> Oid.t list;
  g_dense : Dense.t;
      (** dense export used by the traversal hot paths. Captured when
          the graph is built: with [of_heap], later heap mutations show
          through [g_mem]/[g_fields] but not here — build the graph
          immediately before computing over it. *)
}

val of_heap : Heap.t -> graph
val of_snapshot : Snapshot.t -> graph

val closure : graph -> from:Oid.t list -> Oid.Set.t * Oid.Set.t
(** [closure g ~from] is [(locals, remotes)]: the set of local objects
    reachable from the starting references by local paths, and the set
    of remote references contained in those objects (plus any starting
    references that are themselves remote). Starting references naming
    absent local objects are ignored. *)

val reaches : graph -> src:Oid.t -> dst:Oid.t -> bool
(** [reaches g ~src ~dst]: [dst] is locally reachable from [src]
    (including [src = dst]). Early-exit membership test — does not
    materialize the closure. *)
