open Dgc_simcore
open Dgc_rts
open Dgc_workload

(* Every scenario here is armed, not run: events sit in the queue and
   the explorer decides their order. Trace windows are made atomic
   (zero duration) so the §6.1 battery applies after every step; all
   other determinism comes from the seed. *)

let base_cfg =
  {
    Config.default with
    Config.trace_jitter = Sim_time.zero;
    trace_duration = Sim_time.zero;
  }

let fig1 =
  {
    Explorer.sut_name = "fig1";
    sut_desc =
      "Figure 1 (inter-site cycle f<->g plus acyclic garbage) under the \
       periodic trace schedule";
    sut_make =
      (fun () ->
        let cfg =
          {
            base_cfg with
            Config.n_sites = 3;
            delta = 3;
            threshold2 = 5;
            trace_interval = Sim_time.of_seconds 5.;
          }
        in
        let f = Scenario.fig1 ~cfg () in
        Dgc_core.Sim.start f.Scenario.f1_sim;
        Explorer.instance f.Scenario.f1_sim);
  }

let race_cfg = base_cfg

let make_race cfg () =
  let f, _outcome = Scenario.fig5_race_arm ~cfg () in
  Explorer.instance f.Scenario.f5_sim

let fig5_race =
  {
    Explorer.sut_name = "fig5-race";
    sut_desc =
      "the §6.4 race armed (mutator copy, d->e deletion, back trace from h) \
       with all barriers on — must stay clean under every interleaving";
    sut_make = make_race race_cfg;
  }

let fig5_race_broken =
  {
    Explorer.sut_name = "fig5-race-broken";
    sut_desc =
      "same race with the §6.1 transfer barrier disabled — the seeded bug the \
       explorer must catch";
    sut_make =
      make_race { race_cfg with Config.enable_transfer_barrier = false };
  }

(* --- dgc-san SUTs ------------------------------------------------------ *)

(* The sanitizer checks replace the §6.1 battery here so a violation is
   attributable to the detector under test, not to the oracle. *)

module San = Dgc_sanitize.Sanitizer

let san_instance sim =
  let san = San.install sim.Dgc_core.Sim.eng in
  San.set_shared san (Dgc_core.Collector.back sim.Dgc_core.Sim.col);
  (san, { Explorer.i_sim = sim; i_check = (fun () -> San.check san) })

let san_race_broken =
  {
    Explorer.sut_name = "san-race-broken";
    sut_desc =
      "the §6.4 race with the transfer barrier disabled, judged by the \
       happens-before race detector instead of the invariant battery — the \
       sanitizer must flag the unprotected concurrent transfer";
    sut_make =
      (fun () ->
        let cfg =
          {
            race_cfg with
            Config.enable_transfer_barrier = false;
            sanitize = true;
          }
        in
        let f, _outcome = Scenario.fig5_race_arm ~cfg () in
        snd (san_instance f.Scenario.f5_sim));
  }

let san_lost_trace =
  {
    Explorer.sut_name = "san-lost-trace";
    sut_desc =
      "a fig2 back trace with the §4.6 timeouts disabled and the callee \
       crashed while the call is in flight — the planted lost-trace leak \
       the sanitizer must prove";
    sut_make =
      (fun () ->
        let cfg =
          {
            base_cfg with
            Config.delta = 3;
            threshold2 = 6;
            threshold_bump = 4;
            enable_timeouts = false;
            sanitize = true;
          }
        in
        let f = Scenario.fig2 ~cfg () in
        let sim = f.Scenario.f2_sim in
        let eng = sim.Dgc_core.Sim.eng in
        (* force the suspected regime so a back trace can start *)
        Array.iter
          (fun s ->
            Dgc_rts.Tables.iter_inrefs s.Site.tables (fun ir ->
                List.iter
                  (fun src ->
                    Dgc_rts.Ioref.set_source_dist ir src.Dgc_rts.Ioref.src_site
                      ~dist:100)
                  ir.Dgc_rts.Ioref.ir_sources))
          (Engine.sites eng);
        Dgc_core.Collector.force_local_trace_all sim.Dgc_core.Sim.col;
        let _san, inst = san_instance sim in
        (* arm: the trace from outref c at Q, then crash c's owner while
           the first back call is still in flight — with no timeouts the
           initiator's frame can never settle *)
        ignore
          (Dgc_core.Collector.start_back_trace sim.Dgc_core.Sim.col
             (Dgc_heap.Oid.site f.Scenario.f2_a)
             f.Scenario.f2_c);
        Engine.schedule eng ~delay:(Sim_time.of_millis 1.) (fun () ->
            Engine.crash eng (Dgc_heap.Oid.site f.Scenario.f2_c));
        inst);
  }

let catalog = [ fig1; fig5_race; fig5_race_broken; san_race_broken; san_lost_trace ]
let find name = List.find_opt (fun s -> s.Explorer.sut_name = name) catalog
