open Dgc_simcore
open Dgc_rts
open Dgc_workload

(* Every scenario here is armed, not run: events sit in the queue and
   the explorer decides their order. Trace windows are made atomic
   (zero duration) so the §6.1 battery applies after every step; all
   other determinism comes from the seed. *)

let base_cfg =
  {
    Config.default with
    Config.trace_jitter = Sim_time.zero;
    trace_duration = Sim_time.zero;
  }

let fig1 =
  {
    Explorer.sut_name = "fig1";
    sut_desc =
      "Figure 1 (inter-site cycle f<->g plus acyclic garbage) under the \
       periodic trace schedule";
    sut_make =
      (fun () ->
        let cfg =
          {
            base_cfg with
            Config.n_sites = 3;
            delta = 3;
            threshold2 = 5;
            trace_interval = Sim_time.of_seconds 5.;
          }
        in
        let f = Scenario.fig1 ~cfg () in
        Dgc_core.Sim.start f.Scenario.f1_sim;
        Explorer.instance f.Scenario.f1_sim);
  }

let race_cfg = base_cfg

let make_race cfg () =
  let f, _outcome = Scenario.fig5_race_arm ~cfg () in
  Explorer.instance f.Scenario.f5_sim

let fig5_race =
  {
    Explorer.sut_name = "fig5-race";
    sut_desc =
      "the §6.4 race armed (mutator copy, d->e deletion, back trace from h) \
       with all barriers on — must stay clean under every interleaving";
    sut_make = make_race race_cfg;
  }

let fig5_race_broken =
  {
    Explorer.sut_name = "fig5-race-broken";
    sut_desc =
      "same race with the §6.1 transfer barrier disabled — the seeded bug the \
       explorer must catch";
    sut_make =
      make_race { race_cfg with Config.enable_transfer_barrier = false };
  }

let catalog = [ fig1; fig5_race; fig5_race_broken ]
let find name = List.find_opt (fun s -> s.Explorer.sut_name = name) catalog
