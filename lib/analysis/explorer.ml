open Dgc_core

(* Delay-bounded schedule exploration.

   The engine's queue normally drains in (time, seq) order; a schedule
   here is a list of deviations [(step, rank)] meaning "at step
   [step], run the rank-th enabled event instead of the earliest".
   Because the whole simulation is deterministic from the seed, a
   schedule replays from scratch — no state snapshots — and two runs
   sharing a prefix of deviations see identical queues up to the first
   divergence, which is what makes parent-run enabled-counts valid
   bounds for the children's deviations. *)

type instance = {
  i_sim : Sim.t;
  i_check : unit -> string list;  (** violation messages; [] = clean *)
}

type sut = {
  sut_name : string;
  sut_desc : string;
  sut_make : unit -> instance;
}

let instance ?(extra = fun () -> []) sim =
  {
    i_sim = sim;
    i_check =
      (fun () ->
        match Invariants.strings (Sim.check sim) with
        | [] -> extra ()
        | msgs -> msgs);
  }

type bounds = {
  depth_bound : int;  (** max deviations per schedule *)
  width : int;  (** ranks considered at each step: 0..width-1 *)
  max_steps : int;  (** events per run *)
  max_schedules : int;  (** exploration budget, excluding shrinking *)
}

let default_bounds =
  { depth_bound = 3; width = 3; max_steps = 400; max_schedules = 250 }

type run = {
  run_steps : int;
  run_enabled : int array;  (** queue length before each executed step *)
  run_violation : (int * string list) option;
}

let run_schedule ?probe sut ~max_steps sched =
  let inst = sut.sut_make () in
  (match probe with Some f -> f inst | None -> ());
  let eng = inst.i_sim.Sim.eng in
  let enabled = Array.make (max 1 max_steps) 0 in
  let violation = ref None in
  let steps = ref 0 in
  (try
     while !steps < max_steps && !violation = None do
       let pending = Dgc_rts.Engine.pending eng in
       if pending = 0 then raise Exit;
       enabled.(!steps) <- pending;
       let rank =
         match List.assoc_opt !steps sched with
         | Some r -> min r (pending - 1)
         | None -> 0
       in
       ignore (Dgc_rts.Engine.step_nth eng rank : bool);
       incr steps;
       match inst.i_check () with
       | [] -> ()
       | msgs -> violation := Some (!steps - 1, msgs)
     done
   with
  | Exit -> ()
  | Dgc_oracle.Oracle.Safety_violation msg ->
      violation := Some (max 0 (!steps - 1), [ "oracle: " ^ msg ])
  | Invariants.Violation vs ->
      violation := Some (max 0 (!steps - 1), Invariants.strings vs));
  { run_steps = !steps; run_enabled = enabled; run_violation = !violation }

type counterexample = {
  cx_schedule : Shrink.deviation list;  (** as first found *)
  cx_shrunk : Shrink.deviation list;  (** minimized reproducer *)
  cx_step : int;  (** violating step of the shrunk run *)
  cx_messages : string list;
}

type result = {
  res_sut : string;
  res_schedules : int;  (** schedules explored *)
  res_total_steps : int;
  res_shrink_runs : int;
  res_counterexample : counterexample option;
}

let clean r = r.res_counterexample = None

let pp_schedule ppf = function
  | [] -> Format.pp_print_string ppf "FIFO order (no deviations)"
  | ds ->
      Format.pp_print_list
        ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
        (fun ppf (step, rank) ->
          Format.fprintf ppf "step %d takes rank %d" step rank)
        ppf ds

let pp_result ppf r =
  Format.fprintf ppf "@[<v>[%s] %d schedules, %d events" r.res_sut
    r.res_schedules r.res_total_steps;
  match r.res_counterexample with
  | None -> Format.fprintf ppf ": no invariant violation@]"
  | Some cx ->
      Format.fprintf ppf "@,VIOLATION at step %d under %a" cx.cx_step
        pp_schedule cx.cx_shrunk;
      Format.fprintf ppf "@,  (found as %a; shrunk in %d replays)" pp_schedule
        cx.cx_schedule r.res_shrink_runs;
      List.iter (fun m -> Format.fprintf ppf "@,  %s" m) cx.cx_messages;
      Format.fprintf ppf "@]"

let explore ?(bounds = default_bounds) sut =
  let schedules = ref 0 and total_steps = ref 0 in
  let found = ref None in
  let budget_left () = !schedules < bounds.max_schedules in
  (* DFS over deviation lists: children of a clean run deviate at some
     step after the parent's last deviation, so each schedule is
     generated exactly once. *)
  let rec dfs sched =
    if !found = None && budget_left () then begin
      incr schedules;
      let r = run_schedule sut ~max_steps:bounds.max_steps sched in
      total_steps := !total_steps + r.run_steps;
      match r.run_violation with
      | Some _ -> found := Some (sched, r)
      | None ->
          if List.length sched < bounds.depth_bound then begin
            let start =
              match List.rev sched with [] -> 0 | (i, _) :: _ -> i + 1
            in
            let i = ref start in
            while !found = None && budget_left () && !i < r.run_steps do
              let width_here = min bounds.width r.run_enabled.(!i) in
              let rank = ref 1 in
              while !found = None && budget_left () && !rank < width_here do
                dfs (sched @ [ (!i, !rank) ]);
                incr rank
              done;
              incr i
            done
          end
    end
  in
  dfs [];
  match !found with
  | None ->
      {
        res_sut = sut.sut_name;
        res_schedules = !schedules;
        res_total_steps = !total_steps;
        res_shrink_runs = 0;
        res_counterexample = None;
      }
  | Some (sched, _) ->
      let reproduces s =
        (run_schedule sut ~max_steps:bounds.max_steps s).run_violation <> None
      in
      let shrunk, shrink_runs = Shrink.minimize ~reproduces sched in
      let final = run_schedule sut ~max_steps:bounds.max_steps shrunk in
      let step, messages =
        match final.run_violation with
        | Some (step, msgs) -> (step, msgs)
        | None ->
            (* cannot happen: minimize only returns reproducers *)
            (0, [ "shrunk schedule no longer reproduces" ])
      in
      {
        res_sut = sut.sut_name;
        res_schedules = !schedules;
        res_total_steps = !total_steps;
        res_shrink_runs = shrink_runs + 1;
        res_counterexample =
          Some
            {
              cx_schedule = sched;
              cx_shrunk = shrunk;
              cx_step = step;
              cx_messages = messages;
            };
      }
