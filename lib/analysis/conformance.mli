(** Protocol conformance: per-role ordering automata over the message
    stream plus handler-coverage accounting.

    The monitor hangs off {!Dgc_rts.Engine.set_msg_monitor} and models
    each {!Dgc_rts.Protocol.payload} kind as a small state machine
    keyed on delivery events:

    - [move]/[move_ack] pair up by token: every ack answers exactly one
      earlier move, travels the reverse direction, and every move is
      eventually acknowledged (the §6.1 insert barrier holds until it
      is).
    - [insert]/[insert_done] pair up per (ref, holder): inserts go to
      the ref's owner, name their sender as the holder, and are each
      answered once.
    - [update] entries (removals and distances) only concern refs the
      receiving site owns.
    - no base payload is delivered from a site to itself.

    The automata are expressed through the generated dispatch table
    ({!Dgc_rts.Protocol.handlers}), so adding a payload constructor
    without a conformance rule fails to compile. Coverage is judged
    against {!Dgc_rts.Protocol.base_kinds}: a kind never delivered by
    the battery is reported as uncovered. *)

open Dgc_prelude
open Dgc_rts

type violation = { c_rule : string; c_message : string }

val violation_to_string : violation -> string

type t
(** A live monitor; attach it to any engine. *)

val create : unit -> t

val attach : t -> Engine.t -> unit
(** Install the monitor as the engine's message monitor (replacing any
    previous one). One monitor may observe several engines in turn. *)

val hook :
  t ->
  phase:[ `Send | `Deliver ] ->
  src:Site_id.t ->
  dst:Site_id.t ->
  Protocol.payload ->
  unit
(** The raw monitor callback, for callers that multiplex monitors. *)

val finish : t -> violation list
(** End-of-run obligations (moves acked, inserts answered) plus
    everything recorded along the way, in detection order. *)

val set_observer : t -> (kind:string -> state:int -> unit) -> unit
(** Install a tap fired after every delivery the monitor processes,
    with the payload's registered kind label (ext kinds keep their
    specific label: [back_call], [g_mark], ...) and {!state_code} as
    of after the delivery. One observer at a time; the coverage-guided
    fuzzer uses this as its protocol-automaton coverage signal. *)

val state_code : t -> int
(** A compact fingerprint of the ordering automata in [0, 32): bucketed
    counts of unacknowledged moves and outstanding inserts, plus a
    violation bit. O(1). *)

type report = {
  r_violations : violation list;
  r_deliveries : (string * int) list;  (** per base kind, declaration order *)
  r_uncovered : string list;  (** base kinds never delivered *)
  r_total : int;
}

val clean : report -> bool
val pp_report : Format.formatter -> report -> unit

val run_battery : ?seed:int -> unit -> report
(** Run the built-in deterministic battery: Figure 1 through a full
    periodic collection (updates, back-trace traffic, the sweep), then
    a cross-site mutator walk of the a->b->c chain (the complete
    move/insert/insert_done/move_ack exchange). *)
