(** Delay-bounded exploration of event-queue interleavings.

    The engine normally drains its queue in (time, seq) order. A
    {e schedule} is a list of deviations [(step, rank)]: at event
    number [step] of the run, execute the rank-th enabled event
    instead of the earliest. Exploration is a DFS over such lists,
    bounded by {!bounds} — at most [depth_bound] deviations per
    schedule, ranks below [width], [max_steps] events per run and
    [max_schedules] runs in total.

    Replay is from scratch: the simulation is deterministic from its
    seed, so a schedule fully determines a run and no engine state is
    ever snapshotted. The §6.1 invariant battery (and any
    [extra] check the SUT supplies) runs after every step; the first
    violating schedule is minimized with {!Shrink.minimize} into a
    reproducer. *)

open Dgc_core

type instance = {
  i_sim : Sim.t;
  i_check : unit -> string list;  (** violation messages; [] = clean *)
}

type sut = {
  sut_name : string;
  sut_desc : string;
  sut_make : unit -> instance;  (** build and arm; the explorer drives *)
}

val instance : ?extra:(unit -> string list) -> Sim.t -> instance
(** The standard harness: per-step §6.1 invariants via {!Sim.check}
    (window-open sites skipped), then [extra] when those pass. *)

type bounds = {
  depth_bound : int;  (** max deviations per schedule *)
  width : int;  (** ranks considered at each step: 0..width-1 *)
  max_steps : int;  (** events per run *)
  max_schedules : int;  (** exploration budget, excluding shrinking *)
}

val default_bounds : bounds
(** depth 3, width 3, 400 steps, 250 schedules. *)

type run = {
  run_steps : int;
  run_enabled : int array;  (** queue length before each executed step *)
  run_violation : (int * string list) option;
}

val run_schedule :
  ?probe:(instance -> unit) -> sut -> max_steps:int -> Shrink.deviation list -> run
(** Replay one schedule from scratch. Ranks beyond the live queue are
    clamped; oracle safety exceptions and [Invariants.Violation] are
    converted into run violations. [probe] sees the freshly built
    instance before the first step — the fuzzer attaches its coverage
    taps (conformance observer, journal tap) through it. *)

type counterexample = {
  cx_schedule : Shrink.deviation list;  (** as first found *)
  cx_shrunk : Shrink.deviation list;  (** minimized reproducer *)
  cx_step : int;  (** violating step of the shrunk run *)
  cx_messages : string list;
}

type result = {
  res_sut : string;
  res_schedules : int;
  res_total_steps : int;
  res_shrink_runs : int;
  res_counterexample : counterexample option;
}

val clean : result -> bool
val pp_schedule : Format.formatter -> Shrink.deviation list -> unit
val pp_result : Format.formatter -> result -> unit

val explore : ?bounds:bounds -> sut -> result
(** DFS from the FIFO schedule; children of a clean run deviate at a
    step after the parent's last deviation (each deviation list is
    visited once). Stops at the first violation and shrinks it. *)
