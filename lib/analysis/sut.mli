(** Systems under test for the schedule explorer.

    Each entry builds an {e armed} simulation — events queued, nothing
    run — and hands it to {!Explorer.explore}. All use atomic trace
    windows so the §6.1 battery applies after every step. *)

val fig1 : Explorer.sut
(** Figure 1 under the periodic schedule: cycle collection must stay
    invariant-clean under every explored interleaving. *)

val fig5_race : Explorer.sut
(** The §6.4 race with all barriers on — expected clean. *)

val fig5_race_broken : Explorer.sut
(** The §6.4 race with the transfer barrier disabled — the seeded bug;
    exploration must produce a counterexample. *)

val san_race_broken : Explorer.sut
(** The §6.4 race with the transfer barrier disabled, judged by the
    dgc-san happens-before race detector instead of the invariant
    battery — the sanitizer must rediscover the seeded bug. *)

val san_lost_trace : Explorer.sut
(** A fig2 back trace with the §4.6 timeouts disabled and the callee
    crashed mid-call — the planted lost-trace leak the sanitizer's
    detector must prove. *)

val catalog : Explorer.sut list
val find : string -> Explorer.sut option
