(** Schedule minimization.

    A violating schedule out of the explorer is a list of deviations
    [(step, rank)] from FIFO order. {!minimize} greedily removes
    deviations (halving chunk sizes, ddmin-style) and then lowers the
    surviving ranks, re-validating every candidate against
    [reproduces] — the result is always itself a reproducer (or the
    input if nothing smaller reproduces). Returns the minimized
    schedule and the number of replays spent. *)

type deviation = int * int

val minimize :
  reproduces:(deviation list -> bool) ->
  deviation list ->
  deviation list * int
