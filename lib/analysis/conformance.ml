open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload

type violation = { c_rule : string; c_message : string }

let violation_to_string v = v.c_rule ^ ": " ^ v.c_message

type move_state = {
  mv_src : Site_id.t;
  mv_dst : Site_id.t;
  mutable mv_acked : bool;
}

type t = {
  moves : (int, move_state) Hashtbl.t;
  (* (transferred ref, inserting site) -> outstanding insert count *)
  pending_inserts : (Oid.t * Site_id.t, int) Hashtbl.t;
  deliveries : (string, int) Hashtbl.t;
  senders : (string, Site_id.Set.t ref) Hashtbl.t;
  receivers : (string, Site_id.Set.t ref) Hashtbl.t;
  mutable violations : violation list;
  mutable total : int;
  (* incremental mirrors of the automata, kept so [state_code] is O(1)
     per delivery (the coverage-guided fuzzer reads it on every one) *)
  mutable unacked_moves : int;
  mutable open_inserts : int;
  mutable observer : (kind:string -> state:int -> unit) option;
}

let create () =
  {
    moves = Hashtbl.create 16;
    pending_inserts = Hashtbl.create 16;
    deliveries = Hashtbl.create 8;
    senders = Hashtbl.create 8;
    receivers = Hashtbl.create 8;
    violations = [];
    total = 0;
    unacked_moves = 0;
    open_inserts = 0;
    observer = None;
  }

let set_observer t f = t.observer <- Some f

(* A compact fingerprint of the ordering automata: how many moves are
   inside their insert-barrier window, how many inserts await their
   ack, and whether any rule has fired — bucketed so the code space
   stays tiny (32 states) and a fuzzer's coverage map cannot be blown
   apart by raw counters. *)
let bucket n = if n <= 0 then 0 else if n = 1 then 1 else if n < 4 then 2 else 3

let state_code t =
  (bucket t.unacked_moves * 8)
  + (bucket t.open_inserts * 2)
  + if t.violations = [] then 0 else 1

let note t ~rule fmt =
  Format.kasprintf
    (fun s -> t.violations <- { c_rule = rule; c_message = s } :: t.violations)
    fmt

let bump tbl key n =
  Hashtbl.replace tbl key (n + Option.value ~default:0 (Hashtbl.find_opt tbl key))

let add_site tbl kind site =
  match Hashtbl.find_opt tbl kind with
  | Some s -> s := Site_id.Set.add site !s
  | None -> Hashtbl.add tbl kind (ref (Site_id.Set.singleton site))

(* The per-role ordering automata, driven by delivery events. The
   handlers record is the same generated dispatch table the engine's
   receiver uses, so a payload constructor without a conformance rule
   is a compile error, not a silent gap. *)
let rules : (t * Site_id.t) Protocol.handlers =
  {
    Protocol.h_move =
      (fun (t, dst) ~src ~agent:_ ~refs:_ ~token ->
        (match Hashtbl.find_opt t.moves token with
        | Some m ->
            note t ~rule:"move-token-fresh" "move token %d reused" token;
            if m.mv_acked then t.unacked_moves <- t.unacked_moves + 1
        | None -> t.unacked_moves <- t.unacked_moves + 1);
        Hashtbl.replace t.moves token
          { mv_src = src; mv_dst = dst; mv_acked = false });
    h_move_ack =
      (fun (t, dst) ~src ~token ->
        match Hashtbl.find_opt t.moves token with
        | None ->
            note t ~rule:"ack-after-move"
              "move_ack for unknown token %d delivered at %a" token Site_id.pp
              dst
        | Some m ->
            if m.mv_acked then
              note t ~rule:"ack-once" "move token %d acknowledged twice" token;
            if
              not (Site_id.equal dst m.mv_src && Site_id.equal src m.mv_dst)
            then
              note t ~rule:"ack-routing"
                "move_ack for token %d travelled %a->%a but the move went \
                 %a->%a"
                token Site_id.pp src Site_id.pp dst Site_id.pp m.mv_src
                Site_id.pp m.mv_dst;
            if not m.mv_acked then t.unacked_moves <- t.unacked_moves - 1;
            m.mv_acked <- true);
    h_insert =
      (fun (t, dst) ~src ~r ~by ->
        if not (Site_id.equal dst (Oid.site r)) then
          note t ~rule:"insert-at-owner"
            "insert for %a delivered at %a, not its owner" Oid.pp r Site_id.pp
            dst;
        if not (Site_id.equal src by) then
          note t ~rule:"insert-by-holder"
            "insert for %a names holder %a but was sent by %a" Oid.pp r
            Site_id.pp by Site_id.pp src;
        t.open_inserts <- t.open_inserts + 1;
        bump t.pending_inserts (r, by) 1);
    h_insert_done =
      (fun (t, dst) ~src ~r ->
        if not (Site_id.equal src (Oid.site r)) then
          note t ~rule:"insert-done-from-owner"
            "insert_done for %a sent by %a, not its owner" Oid.pp r Site_id.pp
            src;
        match Hashtbl.find_opt t.pending_inserts (r, dst) with
        | Some n when n > 0 ->
            t.open_inserts <- t.open_inserts - 1;
            Hashtbl.replace t.pending_inserts (r, dst) (n - 1)
        | Some _ | None ->
            note t ~rule:"insert-pairing"
              "insert_done for %a at %a without an outstanding insert" Oid.pp r
              Site_id.pp dst);
    h_update =
      (fun (t, dst) ~src ~removals ~dists ->
        List.iter
          (fun r ->
            if not (Site_id.equal dst (Oid.site r)) then
              note t ~rule:"update-at-owner"
                "update removal for %a (from %a) delivered at non-owner %a"
                Oid.pp r Site_id.pp src Site_id.pp dst)
          removals;
        List.iter
          (fun (r, _) ->
            if not (Site_id.equal dst (Oid.site r)) then
              note t ~rule:"update-at-owner"
                "update distance for %a (from %a) delivered at non-owner %a"
                Oid.pp r Site_id.pp src Site_id.pp dst)
          dists);
    h_ext = (fun (_, _) ~src:_ _ -> (* collector-specific, opaque here *) ());
  }

let hook t ~phase ~src ~dst payload =
  (* count under the constructor's label, not the registered ext label,
     so coverage is judged against [Protocol.base_kinds] *)
  let base = if Protocol.is_ext payload then "ext" else Protocol.kind payload in
  match phase with
  | `Send -> add_site t.senders base src
  | `Deliver ->
      t.total <- t.total + 1;
      bump t.deliveries base 1;
      add_site t.receivers base dst;
      if (not (Protocol.is_ext payload)) && Site_id.equal src dst then
        note t ~rule:"no-self-send" "%s delivered from %a to itself" base
          Site_id.pp src;
      Protocol.dispatch rules (t, dst) ~src payload;
      (* observers see the registered label (back_call, g_mark, ...) so
         coverage can tell the collectors' ext kinds apart *)
      match t.observer with
      | Some f -> f ~kind:(Protocol.kind payload) ~state:(state_code t)
      | None -> ()

let attach t eng = Engine.set_msg_monitor eng (hook t)

let finish t =
  Hashtbl.iter
    (fun token m ->
      if not m.mv_acked then
        note t ~rule:"move-completes"
          "move token %d (%a->%a) was never acknowledged" token Site_id.pp
          m.mv_src Site_id.pp m.mv_dst)
    t.moves;
  Hashtbl.iter
    (fun (r, by) n ->
      if n > 0 then
        note t ~rule:"insert-completes"
          "%d insert(s) of %a by %a never acknowledged" n Oid.pp r Site_id.pp
          by)
    t.pending_inserts;
  List.rev t.violations

let deliveries t =
  List.map
    (fun k -> (k, Option.value ~default:0 (Hashtbl.find_opt t.deliveries k)))
    Protocol.base_kinds

(* --- the battery ------------------------------------------------------- *)

type report = {
  r_violations : violation list;
  r_deliveries : (string * int) list;
  r_uncovered : string list;
  r_total : int;
}

let clean r = r.r_violations = [] && r.r_uncovered = []

let pp_report ppf r =
  Format.fprintf ppf "@[<v>%d deliveries checked@," r.r_total;
  List.iter
    (fun (k, n) -> Format.fprintf ppf "  %-12s %d@," k n)
    r.r_deliveries;
  (match r.r_uncovered with
  | [] -> Format.fprintf ppf "coverage: every payload kind delivered@,"
  | ks ->
      Format.fprintf ppf "UNCOVERED kinds: %a@,"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
           Format.pp_print_string)
        ks);
  match r.r_violations with
  | [] -> Format.fprintf ppf "ordering: conformant@]"
  | vs ->
      Format.fprintf ppf "%d ordering violations:@," (List.length vs);
      List.iter
        (fun v -> Format.fprintf ppf "  %s@," (violation_to_string v))
        vs;
      Format.fprintf ppf "@]"

let battery_cfg seed =
  {
    Config.default with
    Config.n_sites = 3;
    seed;
    delta = 3;
    threshold2 = 5;
    trace_interval = Sim_time.of_seconds 5.;
    trace_jitter = Sim_time.zero;
    trace_duration = Sim_time.zero;
  }

(* Scenario 1: Figure 1 under the periodic schedule — updates from the
   converging distances, back-trace [Ext] traffic, the cycle sweep. *)
let scenario_fig1_gc mon seed =
  let f = Scenario.fig1 ~cfg:(battery_cfg seed) () in
  let sim = f.Scenario.f1_sim in
  attach mon sim.Sim.eng;
  Sim.start sim;
  ignore (Sim.collect_all sim ~max_rounds:25 () : bool);
  Sim.run_for sim (Sim_time.of_seconds 10.)

(* Scenario 2: a mutator walks Figure 1's a->b->c chain while holding
   on to [a], so every hop transfers a reference that is remote at the
   destination — the full move/insert/insert_done/move_ack exchange. *)
let scenario_walk mon seed =
  let f = Scenario.fig1 ~cfg:(battery_cfg seed) () in
  let sim = f.Scenario.f1_sim in
  attach mon sim.Sim.eng;
  Scenario.settle sim ~rounds:2;
  let agent = Mutator.spawn sim.Sim.muts ~at:f.Scenario.f1_p in
  Scenario.walk sim agent ~start_root:f.Scenario.f1_a
    ~path:[ f.Scenario.f1_b; f.Scenario.f1_c ]
    ~captures:[ (f.Scenario.f1_a, "a0") ]
    ~k:(fun () -> ())
    ();
  Sim.run_for sim (Sim_time.of_seconds 5.)

let run_battery ?(seed = 42) () =
  let mon = create () in
  scenario_fig1_gc mon seed;
  scenario_walk mon (seed + 1);
  let violations = finish mon in
  let delivered = deliveries mon in
  {
    r_violations = violations;
    r_deliveries = delivered;
    r_uncovered = List.filter_map (fun (k, n) -> if n = 0 then Some k else None) delivered;
    r_total = mon.total;
  }
