type deviation = int * int

(* Greedy minimization of a deviation list: first try to drop
   deviations (largest chunks first, ddmin-style), then lower each
   surviving rank toward 1. Every candidate is validated by replaying
   it, so the result is always a real reproducer. Replays are counted
   for the caller's budget report. *)

let drop_chunk l ~at ~len =
  List.filteri (fun i _ -> i < at || i >= at + len) l

let minimize ~reproduces sched =
  let runs = ref 0 in
  let check s =
    incr runs;
    reproduces s
  in
  let rec drop_pass s chunk =
    if chunk = 0 then s
    else
      let n = List.length s in
      let rec try_at at s =
        if at + chunk > List.length s then s
        else if check (drop_chunk s ~at ~len:chunk) then
          try_at at (drop_chunk s ~at ~len:chunk)
        else try_at (at + 1) s
      in
      let s' = try_at 0 s in
      drop_pass s' (if List.length s' < n then chunk else chunk / 2)
  in
  let lower_ranks s =
    let cur = ref s in
    List.iteri
      (fun i _ ->
        let step, rank = List.nth !cur i in
        let r = ref rank in
        let continue = ref true in
        while !continue && !r > 1 do
          let candidate =
            List.mapi (fun j d -> if j = i then (step, !r - 1) else d) !cur
          in
          if check candidate then begin
            cur := candidate;
            decr r
          end
          else continue := false
        done)
      s;
    !cur
  in
  let s = drop_pass sched (max 1 (List.length sched / 2)) in
  let s = if s = [] then s else lower_ranks s in
  (s, !runs)
