open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
module Tel = Dgc_telemetry
module Oracle = Dgc_oracle.Oracle

type verdict =
  | Not_suspected
  | Suspected_not_triggered
  | Trace_timed_out
  | Trace_incomplete
  | Barrier_stalled
  | Clean_rule_blocked
  | Flagged_not_swept
  | Unexplained

let verdict_name = function
  | Not_suspected -> "NotSuspected"
  | Suspected_not_triggered -> "SuspectedNotTriggered"
  | Trace_timed_out -> "TraceTimedOut"
  | Trace_incomplete -> "TraceIncomplete"
  | Barrier_stalled -> "BarrierStalled"
  | Clean_rule_blocked -> "CleanRuleBlocked"
  | Flagged_not_swept -> "FlaggedNotSwept"
  | Unexplained -> "Unexplained"

type evidence =
  | E_span of { span : int; name : string; site : int; note : string }
  | E_journal of { at : float; line : string }
  | E_state of string

type component = {
  co_objects : Oid.t list;
  co_sites : Site_id.t list;
  co_cyclic : bool;
  co_cross_site : bool;
  co_verdict : verdict;
  co_evidence : evidence list;
  co_traces : string list;
}

type phase_stat = { ph_name : string; ph_ms : float; ph_count : int }

type critical_path = {
  cp_trace : string;
  cp_root : int;
  cp_total_ms : float;
  cp_spans : int list;
}

type report = {
  rp_at : float;
  rp_garbage_objects : int;
  rp_components : component list;
  rp_phases : phase_stat list;
  rp_site_ms : (int * float) list;
  rp_paths : critical_path list;
}

let tkey trace = Format.asprintf "%a" Trace_id.pp trace

let contains_sub hay needle =
  let nh = String.length hay and nn = String.length needle in
  nn = 0
  ||
  let rec go i =
    i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
  in
  go 0

(* ---- garbage components ---------------------------------------------- *)

(* SCCs of the reference graph restricted to oracle-known garbage. *)
let garbage_components eng garbage =
  let oids = Array.of_list (Oid.Set.elements garbage) in
  let n = Array.length oids in
  let index = Oid.Tbl.create (max 16 n) in
  Array.iteri (fun i oid -> Oid.Tbl.replace index oid i) oids;
  let fields_of oid =
    Heap.fields (Engine.site eng (Oid.site oid)).Site.heap oid
  in
  let succ i =
    List.filter_map (fun f -> Oid.Tbl.find_opt index f) (fields_of oids.(i))
  in
  let scc = Scc.tarjan ~n ~succ in
  let members = Array.make scc.Scc.count [] in
  for i = n - 1 downto 0 do
    let c = scc.Scc.component.(i) in
    members.(c) <- oids.(i) :: members.(c)
  done;
  Array.to_list members
  |> List.filter (fun m -> m <> [])
  |> List.map (fun objects ->
         let objects = List.sort Oid.compare objects in
         let in_comp oid = List.exists (Oid.equal oid) objects in
         let cyclic =
           match objects with
           | [ o ] -> List.exists (Oid.equal o) (fields_of o)
           | _ -> true
         in
         let sites =
           List.map Oid.site objects |> List.sort_uniq Site_id.compare
         in
         let cross_site =
           List.length sites > 1
           || List.exists
                (fun o ->
                  List.exists
                    (fun f ->
                      in_comp f
                      && not (Site_id.equal (Oid.site f) (Oid.site o)))
                    (fields_of o))
                objects
         in
         (objects, sites, cyclic, cross_site))

(* ---- per-component ioref state --------------------------------------- *)

type comp_state = {
  cs_inrefs : Ioref.inref list;  (** inrefs whose target is in the component *)
  cs_outrefs : (Site_id.t * Ioref.outref) list;
      (** outrefs into the component (at the inrefs' source sites) and
          outrefs leaving the component's objects *)
}

let comp_state eng objects =
  let tables_of site = (Engine.site eng site).Site.tables in
  let inrefs =
    List.filter_map (fun o -> Tables.find_inref (tables_of (Oid.site o)) o)
      objects
  in
  let seen = Hashtbl.create 16 in
  let outs = ref [] in
  let add_out site target =
    let key = (Site_id.to_int site, Oid.to_string target) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      match Tables.find_outref (tables_of site) target with
      | Some o -> outs := (site, o) :: !outs
      | None -> ()
    end
  in
  (* Entry points: outrefs at the source sites of the component's inrefs. *)
  List.iter
    (fun (ir : Ioref.inref) ->
      List.iter
        (fun (s : Ioref.source) -> add_out s.Ioref.src_site ir.Ioref.ir_target)
        ir.Ioref.ir_sources)
    inrefs;
  (* Exits: cross-site fields of the component's own objects. *)
  List.iter
    (fun o ->
      List.iter
        (fun f ->
          if not (Site_id.equal (Oid.site f) (Oid.site o)) then
            add_out (Oid.site o) f)
        (Heap.fields (Engine.site eng (Oid.site o)).Site.heap o))
    objects;
  { cs_inrefs = inrefs; cs_outrefs = List.rev !outs }

(* ---- span log index --------------------------------------------------- *)

type span_index = {
  si_spans : Tel.Tracer.span list;
  si_by_trace : (string, Tel.Tracer.span list ref) Hashtbl.t;
}

let index_spans = function
  | None -> { si_spans = []; si_by_trace = Hashtbl.create 1 }
  | Some tr ->
      let spans = Tel.Tracer.spans tr in
      let by_trace = Hashtbl.create 32 in
      List.iter
        (fun (sp : Tel.Tracer.span) ->
          match Hashtbl.find_opt by_trace sp.Tel.Tracer.trace with
          | Some l -> l := sp :: !l
          | None -> Hashtbl.add by_trace sp.Tel.Tracer.trace (ref [ sp ]))
        spans;
      { si_spans = spans; si_by_trace = by_trace }

let spans_of_trace si key =
  match Hashtbl.find_opt si.si_by_trace key with
  | Some l -> List.rev !l
  | None -> []

let span_ref_strings (sp : Tel.Tracer.span) =
  List.filter_map
    (fun (k, v) ->
      match (k, v) with
      | ("ref" | "root"), Tel.Json.Str s -> Some s
      | _ -> None)
    sp.Tel.Tracer.attrs

(* ---- evidence --------------------------------------------------------- *)

let e_span ?(note = "") (sp : Tel.Tracer.span) =
  let note =
    if note <> "" then note
    else if sp.Tel.Tracer.finish = None then "still open"
    else ""
  in
  E_span
    {
      span = sp.Tel.Tracer.id;
      name = sp.Tel.Tracer.name;
      site = sp.Tel.Tracer.site;
      note;
    }

let journal_evidence eng ~needles ~cats =
  match Engine.journal eng with
  | None -> []
  | Some j ->
      Journal.entries j
      |> List.filter (fun (e : Journal.entry) ->
             (cats = [] || List.mem e.Journal.cat cats)
             && List.exists (fun n -> contains_sub e.Journal.text n) needles)
      |> List.map (fun (e : Journal.entry) ->
             E_journal
               {
                 at = Sim_time.to_seconds e.Journal.at;
                 line =
                   Printf.sprintf "%s: %s" e.Journal.cat e.Journal.text;
               })

let take_n n l =
  let rec go n = function
    | [] -> []
    | _ when n <= 0 -> []
    | x :: rest -> x :: go (n - 1) rest
  in
  go n l

let describe_inref (ir : Ioref.inref) =
  Printf.sprintf
    "inref %s: dist=%d threshold=%d%s%s%s%s"
    (Oid.to_string ir.Ioref.ir_target)
    (Ioref.inref_dist ir) ir.Ioref.ir_back_threshold
    (if ir.Ioref.ir_suspected then " suspected" else " not-suspected")
    (if ir.Ioref.ir_flagged then " flagged" else "")
    (if ir.Ioref.ir_forced_clean then " forced-clean" else "")
    (if ir.Ioref.ir_fresh then " fresh" else "")

let describe_outref site (o : Ioref.outref) =
  Printf.sprintf
    "outref %s at %s: dist=%d threshold=%d%s%s%s%s"
    (Oid.to_string o.Ioref.or_target)
    (Format.asprintf "%a" Site_id.pp site)
    o.Ioref.or_dist o.Ioref.or_back_threshold
    (if o.Ioref.or_suspected then " suspected" else " not-suspected")
    (if o.Ioref.or_forced_clean then " forced-clean" else "")
    (if o.Ioref.or_pins > 0 then Printf.sprintf " pins=%d" o.Ioref.or_pins
     else "")
    (if o.Ioref.or_fresh then " fresh" else "")

(* ---- verdict assignment ----------------------------------------------- *)

let decide eng back si objects cs =
  let oid_strings = List.map Oid.to_string objects in
  (* Traces that touched the component: recorded roots, span ref
     attributes, and visited marks still parked on its iorefs. *)
  let touched = Hashtbl.create 8 in
  let touch key = Hashtbl.replace touched key () in
  List.iter
    (fun (trace, (st : Back_trace.trace_stat)) ->
      if List.exists (Oid.equal st.Back_trace.ts_root) objects then
        touch (tkey trace))
    (Back_trace.stats back);
  List.iter
    (fun (sp : Tel.Tracer.span) ->
      if
        List.exists (fun s -> List.mem s oid_strings) (span_ref_strings sp)
      then touch sp.Tel.Tracer.trace)
    si.si_spans;
  List.iter
    (fun (ir : Ioref.inref) ->
      Trace_id.Set.iter (fun tr -> touch (tkey tr)) ir.Ioref.ir_visited)
    cs.cs_inrefs;
  List.iter
    (fun (_, (o : Ioref.outref)) ->
      Trace_id.Set.iter (fun tr -> touch (tkey tr)) o.Ioref.or_visited)
    cs.cs_outrefs;
  let trace_keys =
    Hashtbl.fold (fun k () acc -> k :: acc) touched []
    |> List.sort String.compare
  in
  let stats_touching =
    List.filter
      (fun (trace, _) -> Hashtbl.mem touched (tkey trace))
      (Back_trace.stats back)
  in
  let jev ?(cats = []) () = journal_evidence eng ~needles:(oid_strings @ trace_keys) ~cats in
  let state_ev =
    List.map (fun ir -> E_state (describe_inref ir)) cs.cs_inrefs
    @ List.map (fun (s, o) -> E_state (describe_outref s o)) cs.cs_outrefs
  in
  let any_suspected =
    List.exists (fun (ir : Ioref.inref) -> ir.Ioref.ir_suspected) cs.cs_inrefs
    || List.exists
         (fun (_, (o : Ioref.outref)) -> o.Ioref.or_suspected)
         cs.cs_outrefs
  in
  let any_flagged =
    List.exists (fun (ir : Ioref.inref) -> ir.Ioref.ir_flagged) cs.cs_inrefs
  in
  let barrier_held =
    List.exists
      (fun (ir : Ioref.inref) ->
        ir.Ioref.ir_forced_clean || ir.Ioref.ir_fresh)
      cs.cs_inrefs
    || List.exists
         (fun (_, (o : Ioref.outref)) ->
           o.Ioref.or_forced_clean || o.Ioref.or_pins > 0 || o.Ioref.or_fresh)
         cs.cs_outrefs
  in
  if cs.cs_inrefs = [] && cs.cs_outrefs = [] then
    (* No inter-site reference involved: plain local garbage, not back
       tracing's problem — the owner's next local mark-sweep frees it. *)
    ( Not_suspected,
      [
        E_state
          (Printf.sprintf
             "no ioref involves the component; local mark-sweep at %s \
              collects it without back tracing"
             (String.concat ","
                (List.map (fun o -> Format.asprintf "%a" Site_id.pp (Oid.site o))
                   objects
                |> List.sort_uniq String.compare)));
      ],
      trace_keys )
  else if trace_keys = [] && not any_suspected then
    (Not_suspected, state_ev @ take_n 4 (jev ()), trace_keys)
  else if stats_touching = [] then
    (* Suspected (or at least known) but no back trace ever ran on it:
       the §4.3 trigger never fired. *)
    (Suspected_not_triggered, state_ev @ take_n 4 (jev ()), trace_keys)
  else begin
    (* Analyze the most recent trace that touched the component. *)
    let trace, st =
      List.fold_left
        (fun (bt, bs) (t, s) ->
          if
            Sim_time.compare s.Back_trace.ts_started
              bs.Back_trace.ts_started
            >= 0
          then (t, s)
          else (bt, bs))
        (List.hd stats_touching) (List.tl stats_touching)
    in
    let key = tkey trace in
    (* When the profiler's cost ledger tracked this trace, cite its
       budget line: a timed-out or incomplete verdict reads differently
       at 2 messages than at 40 messages and 6 retries. *)
    let ledger_ev =
      match Engine.profile eng with
      | None -> []
      | Some p -> (
          match Dgc_profile.Ledger.find (Dgc_profile.Profile.ledger p) key with
          | Some e -> [ E_state (Dgc_profile.Ledger.describe e) ]
          | None -> [])
    in
    let tspans = spans_of_trace si key in
    let open_spans =
      List.filter (fun (sp : Tel.Tracer.span) -> sp.Tel.Tracer.finish = None) tspans
    in
    let named prefix =
      List.filter
        (fun (sp : Tel.Tracer.span) ->
          let n = sp.Tel.Tracer.name in
          String.length n >= String.length prefix
          && String.sub n 0 (String.length prefix) = prefix)
        tspans
    in
    let verdict, ev, keys =
      match st.Back_trace.ts_outcome with
      | None ->
        (* Started, never concluded: crash or partition ate the trace.
           The "san" category carries dgc-san's lost-trace proofs, so
           when a sanitizer ran the verdict cites causal evidence (no
           in-flight message, no armed timer) rather than heuristics. *)
        let ev =
          List.map (e_span ~note:"still open") open_spans
          @ take_n 2 (jev ~cats:[ "san" ] ())
          @ take_n 4 (jev ~cats:[ "back"; "fault" ] ())
          @ [
              E_state
                (Printf.sprintf
                   "%s started at %.3fs from %s, no outcome recorded" key
                   (Sim_time.to_seconds st.Back_trace.ts_started)
                   (Oid.to_string st.Back_trace.ts_root));
            ]
        in
        (Trace_incomplete, ev, trace_keys)
    | Some (Verdict.Garbage, _) ->
        if any_flagged then
          ( Flagged_not_swept,
            List.filter
              (function E_state s -> contains_sub s "flagged" | _ -> false)
              state_ev
            @ take_n 4 (jev ~cats:[ "back" ] ())
            @ [
                E_state
                  (Printf.sprintf
                     "%s concluded Garbage; flagged inrefs await the next \
                      local sweep" key);
              ],
            trace_keys )
        else
          (* Concluded Garbage at the initiator but the flags never
             landed: the §4.5 report was lost (crash/partition). *)
          ( Trace_incomplete,
            List.map (e_span ~note:"report undelivered") (named "report")
            @ List.map (fun sp -> e_span sp) (named "timeout.visited_ttl")
            @ take_n 2 (jev ~cats:[ "san" ] ())
            @ take_n 4 (jev ~cats:[ "back"; "fault" ] ())
            @ [
                E_state
                  (Printf.sprintf
                     "%s concluded Garbage but no inref of the component \
                      is flagged — report phase lost" key);
              ],
            trace_keys )
    | Some (Verdict.Live, _) -> (
        let clean_rule = named "clean_rule" in
        let timeouts = named "timeout." in
        match (clean_rule, timeouts) with
        | _ :: _, _ ->
            ( Clean_rule_blocked,
              List.map (fun sp -> e_span sp) clean_rule @ take_n 4 (jev ~cats:[ "back"; "barrier" ] ()),
              trace_keys )
        | [], _ :: _ ->
            ( Trace_timed_out,
              List.map (fun sp -> e_span sp) timeouts
              @ take_n 4 (jev ~cats:[ "back"; "fault" ] ()),
              trace_keys )
        | [], [] ->
            if barrier_held then
              ( Barrier_stalled,
                List.filter
                  (function
                    | E_state s ->
                        contains_sub s "forced-clean"
                        || contains_sub s "pins=" || contains_sub s "fresh"
                    | _ -> false)
                  state_ev
                @ take_n 4 (jev ~cats:[ "barrier" ] ()),
                trace_keys )
            else if
              (* Live with no witness, thresholds since bumped out of
                 reach: the §4.3 re-trigger is starved. *)
              List.exists
                (fun (_, (o : Ioref.outref)) ->
                  o.Ioref.or_suspected
                  && o.Ioref.or_dist <= o.Ioref.or_back_threshold)
                cs.cs_outrefs
            then
              ( Suspected_not_triggered,
                state_ev @ take_n 4 (jev ()),
                trace_keys )
            else (Unexplained, take_n 6 (jev ()), trace_keys))
    in
    (verdict, ev @ ledger_ev, keys)
  end

(* ---- critical paths --------------------------------------------------- *)

let dur (sp : Tel.Tracer.span) =
  match sp.Tel.Tracer.finish with
  | Some e -> Float.max 0. (e -. sp.Tel.Tracer.start)
  | None -> 0.

let critical_paths si =
  let children = Hashtbl.create 64 in
  List.iter
    (fun (sp : Tel.Tracer.span) ->
      match sp.Tel.Tracer.parent with
      | Some p ->
          let l =
            match Hashtbl.find_opt children p with
            | Some l -> l
            | None ->
                let l = ref [] in
                Hashtbl.add children p l;
                l
          in
          l := sp :: !l
      | None -> ())
    si.si_spans;
  let kids (sp : Tel.Tracer.span) =
    match Hashtbl.find_opt children sp.Tel.Tracer.id with
    | Some l ->
        List.filter (fun (c : Tel.Tracer.span) -> c.Tel.Tracer.finish <> None) !l
    | None -> []
  in
  let roots =
    List.filter
      (fun (sp : Tel.Tracer.span) ->
        sp.Tel.Tracer.name = "back_trace" && sp.Tel.Tracer.finish <> None)
      si.si_spans
  in
  let phase_tbl = Hashtbl.create 16 in
  let site_tbl = Hashtbl.create 16 in
  let account (sp : Tel.Tracer.span) self_s =
    let ms = self_s *. 1000. in
    let name = sp.Tel.Tracer.name in
    (match Hashtbl.find_opt phase_tbl name with
    | Some (ms0, n0) -> Hashtbl.replace phase_tbl name (ms0 +. ms, n0 + 1)
    | None -> Hashtbl.replace phase_tbl name (ms, 1));
    let site = sp.Tel.Tracer.site in
    match Hashtbl.find_opt site_tbl site with
    | Some ms0 -> Hashtbl.replace site_tbl site (ms0 +. ms)
    | None -> Hashtbl.replace site_tbl site ms
  in
  let paths =
    List.map
      (fun root ->
        let rec descend (sp : Tel.Tracer.span) acc =
          match kids sp with
          | [] ->
              account sp (dur sp);
              List.rev (sp :: acc)
          | ks ->
              let best =
                List.fold_left
                  (fun best (c : Tel.Tracer.span) ->
                    match (best : Tel.Tracer.span option) with
                    | None -> Some c
                    | Some b
                      when c.Tel.Tracer.finish > b.Tel.Tracer.finish ->
                        Some c
                    | Some b -> Some b)
                  None ks
              in
              let best = Option.get best in
              account sp (Float.max 0. (dur sp -. dur best));
              descend best (sp :: acc)
        in
        let path = descend root [] in
        {
          cp_trace = root.Tel.Tracer.trace;
          cp_root = root.Tel.Tracer.id;
          cp_total_ms = dur root *. 1000.;
          cp_spans = List.map (fun (sp : Tel.Tracer.span) -> sp.Tel.Tracer.id) path;
        })
      roots
  in
  let phases =
    Hashtbl.fold
      (fun name (ms, n) acc -> { ph_name = name; ph_ms = ms; ph_count = n } :: acc)
      phase_tbl []
    |> List.sort (fun a b -> String.compare a.ph_name b.ph_name)
  in
  let site_ms =
    Hashtbl.fold (fun s ms acc -> (s, ms) :: acc) site_tbl []
    |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  (paths, phases, site_ms)

(* ---- the audit -------------------------------------------------------- *)

let run col =
  let eng = Collector.engine col in
  let back = Collector.back col in
  let garbage = Oracle.garbage_set eng in
  let si = index_spans (Engine.tracer eng) in
  let components =
    garbage_components eng garbage
    |> List.map (fun (objects, sites, cyclic, cross_site) ->
           let cs = comp_state eng objects in
           let verdict, evidence, traces = decide eng back si objects cs in
           {
             co_objects = objects;
             co_sites = sites;
             co_cyclic = cyclic;
             co_cross_site = cross_site;
             co_verdict = verdict;
             co_evidence = evidence;
             co_traces = traces;
           })
  in
  let paths, phases, site_ms = critical_paths si in
  {
    rp_at = Sim_time.to_seconds (Engine.now eng);
    rp_garbage_objects = Oid.Set.cardinal garbage;
    rp_components = components;
    rp_phases = phases;
    rp_site_ms = site_ms;
    rp_paths = paths;
  }

let comp_label c =
  String.concat "," (List.map Oid.to_string c.co_objects)

let strict_failures report =
  List.filter_map
    (fun c ->
      if c.co_verdict = Unexplained then
        Some
          (Printf.sprintf "component {%s}: Unexplained surviving garbage"
             (comp_label c))
      else if c.co_evidence = [] then
        Some
          (Printf.sprintf "component {%s}: verdict %s carries no evidence"
             (comp_label c)
             (verdict_name c.co_verdict))
      else None)
    report.rp_components

(* ---- JSON ------------------------------------------------------------- *)

let json_of_evidence = function
  | E_span { span; name; site; note } ->
      Tel.Json.Obj
        ([
           ("type", Tel.Json.Str "span");
           ("span", Tel.Json.Int span);
           ("name", Tel.Json.Str name);
           ("site", Tel.Json.Int site);
         ]
        @ if note = "" then [] else [ ("note", Tel.Json.Str note) ])
  | E_journal { at; line } ->
      Tel.Json.Obj
        [
          ("type", Tel.Json.Str "journal");
          ("at", Tel.Json.Float at);
          ("line", Tel.Json.Str line);
        ]
  | E_state s ->
      Tel.Json.Obj [ ("type", Tel.Json.Str "state"); ("text", Tel.Json.Str s) ]

let json_of_component c =
  Tel.Json.Obj
    [
      ( "objects",
        Tel.Json.Arr
          (List.map (fun o -> Tel.Json.Str (Oid.to_string o)) c.co_objects) );
      ( "sites",
        Tel.Json.Arr
          (List.map (fun s -> Tel.Json.Int (Site_id.to_int s)) c.co_sites) );
      ("cyclic", Tel.Json.Bool c.co_cyclic);
      ("cross_site", Tel.Json.Bool c.co_cross_site);
      ("verdict", Tel.Json.Str (verdict_name c.co_verdict));
      ("evidence", Tel.Json.Arr (List.map json_of_evidence c.co_evidence));
      ("traces", Tel.Json.Arr (List.map (fun t -> Tel.Json.Str t) c.co_traces));
    ]

let to_json report =
  Tel.Json.Obj
    [
      ("schema", Tel.Json.Str "dgc.audit/1");
      ("at", Tel.Json.Float report.rp_at);
      ("garbage_objects", Tel.Json.Int report.rp_garbage_objects);
      ( "components",
        Tel.Json.Arr (List.map json_of_component report.rp_components) );
      ( "phases",
        Tel.Json.Obj
          (List.map
             (fun p ->
               ( p.ph_name,
                 Tel.Json.Obj
                   [
                     ("ms", Tel.Json.Float p.ph_ms);
                     ("count", Tel.Json.Int p.ph_count);
                   ] ))
             report.rp_phases) );
      ( "site_ms",
        Tel.Json.Obj
          (List.map
             (fun (s, ms) -> (string_of_int s, Tel.Json.Float ms))
             report.rp_site_ms) );
      ( "critical_paths",
        Tel.Json.Arr
          (List.map
             (fun p ->
               Tel.Json.Obj
                 [
                   ("trace", Tel.Json.Str p.cp_trace);
                   ("root", Tel.Json.Int p.cp_root);
                   ("total_ms", Tel.Json.Float p.cp_total_ms);
                   ( "spans",
                     Tel.Json.Arr (List.map (fun i -> Tel.Json.Int i) p.cp_spans)
                   );
                 ])
             report.rp_paths) );
    ]

(* ---- printing --------------------------------------------------------- *)

let pp_evidence ppf = function
  | E_span { span; name; site; note } ->
      Format.fprintf ppf "span #%d %s @@ site %d%s" span name site
        (if note = "" then "" else " (" ^ note ^ ")")
  | E_journal { at; line } -> Format.fprintf ppf "journal [%.3fs] %s" at line
  | E_state s -> Format.fprintf ppf "state: %s" s

let pp ppf report =
  Format.fprintf ppf "@[<v>audit at %.3fs: %d garbage objects in %d components"
    report.rp_at report.rp_garbage_objects
    (List.length report.rp_components);
  List.iter
    (fun c ->
      Format.fprintf ppf "@,{%s}%s%s -> %s" (comp_label c)
        (if c.co_cyclic then " cyclic" else "")
        (if c.co_cross_site then " cross-site" else " local")
        (verdict_name c.co_verdict);
      if c.co_traces <> [] then
        Format.fprintf ppf "@,  traces: %s" (String.concat " " c.co_traces);
      List.iter (fun e -> Format.fprintf ppf "@,  %a" pp_evidence e) c.co_evidence)
    report.rp_components;
  if report.rp_phases <> [] then begin
    Format.fprintf ppf "@,critical-path self-time per phase:";
    List.iter
      (fun p ->
        Format.fprintf ppf "@,  %-20s %8.2f ms (%d spans)" p.ph_name p.ph_ms
          p.ph_count)
      report.rp_phases;
    Format.fprintf ppf "@,critical-path self-time per site:";
    List.iter
      (fun (s, ms) -> Format.fprintf ppf "@,  site %-14d %8.2f ms" s ms)
      report.rp_site_ms
  end;
  Format.fprintf ppf "@]"
