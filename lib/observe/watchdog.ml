open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core

type alert = {
  al_at : Sim_time.t;
  al_kind : string;
  al_site : Site_id.t option;
  al_text : string;
}

type t = {
  col : Collector.t;
  stuck_factor : float;
  starvation_bumps : int;
  survive_rounds : int;
  interval : Sim_time.t;
  mutable last_check : Sim_time.t;
  seen : (string, unit) Hashtbl.t;  (** one alert per subject *)
  first_seen_garbage : (Oid.t, int) Hashtbl.t;  (** oid -> round first seen *)
  mutable rev_alerts : alert list;
  mutable leak_probe : (Trace_id.t -> string option) option;
  mutable flight_dump : Dgc_telemetry.Json.t option;
}

let eng t = Collector.engine t.col

let raise_alert t ~kind ?site fmt =
  Format.kasprintf
    (fun text ->
      let e = eng t in
      let a = { al_at = Engine.now e; al_kind = kind; al_site = site; al_text = text } in
      t.rev_alerts <- a :: t.rev_alerts;
      Metrics.incr (Engine.metrics e) ("watchdog." ^ kind);
      (* The first alert snapshots the flight recorder: the ring still
         holds the window that led up to the verdict, and later alerts
         on the same run would only dilute it. *)
      if t.flight_dump = None then
        t.flight_dump <-
          Engine.dump_flight e ~reason:(Printf.sprintf "watchdog: %s: %s" kind text);
      Engine.jlog e ~level:Journal.Warn ~cat:"watchdog" "%s: %s" kind text)
    fmt

let once t key f = if not (Hashtbl.mem t.seen key) then begin
    Hashtbl.replace t.seen key ();
    f ()
  end

let deadline t =
  let timeout =
    Sim_time.to_seconds (Engine.config (eng t)).Config.back_call_timeout
  in
  t.stuck_factor *. timeout

let check_stuck_frames t =
  let e = eng t in
  let now = Sim_time.to_seconds (Engine.now e) in
  let limit = deadline t in
  Array.iter
    (fun (s : Site.t) ->
      let id = s.Site.id in
      List.iter
        (fun (fi : Back_trace.frame_info) ->
          let age = now -. Sim_time.to_seconds fi.Back_trace.fi_started in
          (* Prefer the leak detector's proof when a sanitizer is wired
             in: a proved lost trace is reported at once with its causal
             evidence; the age heuristic is only the fallback. *)
          let verdict =
            match t.leak_probe with
            | Some probe -> probe fi.Back_trace.fi_trace
            | None -> None
          in
          match verdict with
          | Some evidence ->
              once t
                (Format.asprintf "frame/%a/%a/%d" Site_id.pp id Trace_id.pp
                   fi.Back_trace.fi_trace fi.Back_trace.fi_id)
                (fun () ->
                  raise_alert t ~kind:"stuck_frame" ~site:id
                    "frame #%d (%s) of %a on %a can never settle — %s"
                    fi.Back_trace.fi_id fi.Back_trace.fi_kind Trace_id.pp
                    fi.Back_trace.fi_trace Oid.pp fi.Back_trace.fi_ioref
                    evidence)
          | None ->
              if age > limit then
                once t
                  (Format.asprintf "frame/%a/%a/%d" Site_id.pp id Trace_id.pp
                     fi.Back_trace.fi_trace fi.Back_trace.fi_id)
                  (fun () ->
                    raise_alert t ~kind:"stuck_frame" ~site:id
                      "frame #%d (%s) of %a on %a open for %.1fs (> %.1fs)"
                      fi.Back_trace.fi_id fi.Back_trace.fi_kind Trace_id.pp
                      fi.Back_trace.fi_trace Oid.pp fi.Back_trace.fi_ioref
                      age limit))
        (Back_trace.open_frames (Collector.back t.col) id))
    (Engine.sites e)

let check_stuck_traces t =
  let e = eng t in
  let now = Sim_time.to_seconds (Engine.now e) in
  let limit = deadline t in
  List.iter
    (fun (trace, (st : Back_trace.trace_stat)) ->
      match st.Back_trace.ts_outcome with
      | Some _ -> ()
      | None -> (
          let age = now -. Sim_time.to_seconds st.Back_trace.ts_started in
          let verdict =
            match t.leak_probe with
            | Some probe -> probe trace
            | None -> None
          in
          match verdict with
          | Some evidence ->
              once t
                (Format.asprintf "trace/%a" Trace_id.pp trace)
                (fun () ->
                  raise_alert t ~kind:"stuck_trace"
                    ~site:st.Back_trace.ts_initiator
                    "%a (root %a) can never report — %s" Trace_id.pp trace
                    Oid.pp st.Back_trace.ts_root evidence)
          | None ->
              if age > limit then
                once t
                  (Format.asprintf "trace/%a" Trace_id.pp trace)
                  (fun () ->
                    raise_alert t ~kind:"stuck_trace"
                      ~site:st.Back_trace.ts_initiator
                      "%a (root %a) no outcome after %.1fs (> %.1fs): never \
                       reached the report phase"
                      Trace_id.pp trace Oid.pp st.Back_trace.ts_root age
                      limit)))
    (Back_trace.stats (Collector.back t.col))

let check_starved_thresholds t =
  let e = eng t in
  let cfg = Engine.config e in
  let floor =
    Collector.effective_threshold2 t.col
    + (t.starvation_bumps * cfg.Config.threshold_bump)
  in
  Array.iter
    (fun (s : Site.t) ->
      let id = s.Site.id in
      Tables.iter_outrefs s.Site.tables (fun o ->
          if
            o.Ioref.or_suspected
            && (not (Ioref.outref_clean o))
            && o.Ioref.or_back_threshold >= floor
            && o.Ioref.or_dist <= o.Ioref.or_back_threshold
            && Trace_id.Set.is_empty o.Ioref.or_visited
          then
            once t
              (Format.asprintf "thr/%a/%a" Site_id.pp id Oid.pp
                 o.Ioref.or_target)
              (fun () ->
                raise_alert t ~kind:"starved_threshold" ~site:id
                  "suspected outref %a: back threshold bumped to %d (≥ Δ2 + \
                   %d×%d) while dist=%d — §4.3 re-trigger starved"
                  Oid.pp o.Ioref.or_target o.Ioref.or_back_threshold
                  t.starvation_bumps cfg.Config.threshold_bump
                  o.Ioref.or_dist)))
    (Engine.sites e)

let check_surviving_garbage t =
  let e = eng t in
  let rounds = Engine.trace_rounds_completed e in
  let garbage = Dgc_oracle.Oracle.garbage_set e in
  Oid.Set.iter
    (fun oid ->
      match Hashtbl.find_opt t.first_seen_garbage oid with
      | None -> Hashtbl.replace t.first_seen_garbage oid rounds
      | Some first ->
          if rounds - first >= t.survive_rounds then
            once t
              (Format.asprintf "gc/%a" Oid.pp oid)
              (fun () ->
                raise_alert t ~kind:"surviving_garbage" ~site:(Oid.site oid)
                  "garbage object %a survived %d rounds of local traces"
                  Oid.pp oid (rounds - first)))
    garbage;
  (* Objects that left the garbage set were collected (or resurrected
     by an in-flight ref): forget them so a later appearance restarts
     the clock. *)
  let stale =
    Hashtbl.fold
      (fun oid _ acc -> if Oid.Set.mem oid garbage then acc else oid :: acc)
      t.first_seen_garbage []
  in
  List.iter (Hashtbl.remove t.first_seen_garbage) stale

let run_checks t =
  let before = t.rev_alerts in
  check_stuck_frames t;
  check_stuck_traces t;
  check_starved_thresholds t;
  check_surviving_garbage t;
  let rec fresh acc l =
    if l == before then acc
    else
      match l with [] -> acc | a :: rest -> fresh (a :: acc) rest
  in
  fresh [] t.rev_alerts

let check_now t =
  t.last_check <- Engine.now (eng t);
  run_checks t

let attach ?(stuck_factor = 3.0) ?(starvation_bumps = 4) ?(survive_rounds = 3)
    ?check_interval col =
  let e = Collector.engine col in
  let interval =
    match check_interval with
    | Some i -> i
    | None -> (Engine.config e).Config.trace_interval
  in
  let t =
    {
      col;
      stuck_factor;
      starvation_bumps;
      survive_rounds;
      interval;
      last_check = Engine.now e;
      seen = Hashtbl.create 64;
      first_seen_garbage = Hashtbl.create 64;
      rev_alerts = [];
      leak_probe = None;
      flight_dump = None;
    }
  in
  Engine.add_step_watcher e (fun () ->
      let now = Engine.now e in
      if Sim_time.compare (Sim_time.sub now t.last_check) t.interval >= 0
      then begin
        t.last_check <- now;
        ignore (run_checks t)
      end);
  t

let set_leak_probe t probe = t.leak_probe <- Some probe

let alerts t = List.rev t.rev_alerts
let flight_dump t = t.flight_dump

let alert_counts t =
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun a ->
      Hashtbl.replace tbl a.al_kind
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl a.al_kind)))
    t.rev_alerts;
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp ppf t =
  match alerts t with
  | [] -> Format.fprintf ppf "watchdog: quiet (%d subjects tracked)" (Hashtbl.length t.seen)
  | als ->
      Format.fprintf ppf "@[<v>watchdog: %d alerts" (List.length als);
      List.iter
        (fun a ->
          Format.fprintf ppf "@,[%8.3fs] %-18s %s"
            (Sim_time.to_seconds a.al_at) a.al_kind a.al_text)
        als;
      Format.fprintf ppf "@]"
