open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
module Tel = Dgc_telemetry

type ioref_view = {
  v_ref : Oid.t;
  v_dist : int;
  v_threshold : int;
  v_suspected : bool;
  v_fresh : bool;
  v_forced_clean : bool;
  v_flagged : bool;
  v_pins : int;
  v_visited : Trace_id.t list;
  v_linked : Oid.t list;
  v_sources : (Site_id.t * int) list;
}

type site_view = {
  sv_site : Site_id.t;
  sv_crashed : bool;
  sv_objects : int;
  sv_trace_epoch : int;
  sv_in_window : bool;
  sv_inrefs : ioref_view list;
  sv_outrefs : ioref_view list;
  sv_frames : Back_trace.frame_info list;
}

type t = {
  at : Sim_time.t;
  sites : site_view list;
  memo : (string * Metrics.hist_stats) list;
  open_spans : int;
}

let view_of_inref (ir : Ioref.inref) =
  {
    v_ref = ir.Ioref.ir_target;
    v_dist = Ioref.inref_dist ir;
    v_threshold = ir.Ioref.ir_back_threshold;
    v_suspected = ir.Ioref.ir_suspected;
    v_fresh = ir.Ioref.ir_fresh;
    v_forced_clean = ir.Ioref.ir_forced_clean;
    v_flagged = ir.Ioref.ir_flagged;
    v_pins = 0;
    v_visited = Trace_id.Set.elements ir.Ioref.ir_visited;
    v_linked = List.sort Oid.compare ir.Ioref.ir_outset;
    v_sources =
      List.map
        (fun s -> (s.Ioref.src_site, s.Ioref.src_dist))
        ir.Ioref.ir_sources
      |> List.sort compare;
  }

let view_of_outref (o : Ioref.outref) =
  {
    v_ref = o.Ioref.or_target;
    v_dist = o.Ioref.or_dist;
    v_threshold = o.Ioref.or_back_threshold;
    v_suspected = o.Ioref.or_suspected;
    v_fresh = o.Ioref.or_fresh;
    v_forced_clean = o.Ioref.or_forced_clean;
    v_flagged = false;
    v_pins = o.Ioref.or_pins;
    v_visited = Trace_id.Set.elements o.Ioref.or_visited;
    v_linked = List.sort Oid.compare o.Ioref.or_inset;
    v_sources = [];
  }

let by_ref a b = Oid.compare a.v_ref b.v_ref

let take col =
  let eng = Collector.engine col in
  let back = Collector.back col in
  let sites =
    Array.to_list (Engine.sites eng)
    |> List.map (fun (s : Site.t) ->
           let id = s.Site.id in
           let inrefs =
             List.map view_of_inref (Tables.inrefs s.Site.tables)
             |> List.sort by_ref
           in
           let outrefs =
             List.map view_of_outref (Tables.outrefs s.Site.tables)
             |> List.sort by_ref
           in
           {
             sv_site = id;
             sv_crashed = s.Site.crashed;
             sv_objects = Heap.object_count s.Site.heap;
             sv_trace_epoch = s.Site.trace_epoch;
             sv_in_window = Collector.in_window col id;
             sv_inrefs = inrefs;
             sv_outrefs = outrefs;
             sv_frames = Back_trace.open_frames back id;
           })
  in
  let memo =
    List.filter
      (fun (name, _) -> String.length name >= 6 && String.sub name 0 6 = "trace.")
      (Metrics.hists (Engine.metrics eng))
  in
  let open_spans =
    match Engine.tracer eng with
    | Some tr -> Tel.Tracer.open_count tr
    | None -> 0
  in
  { at = Engine.now eng; sites; memo; open_spans }

(* --- JSON ------------------------------------------------------------- *)

let jstr s = Tel.Json.Str s
let jint i = Tel.Json.Int i
let jbool b = Tel.Json.Bool b
let joid r = jstr (Oid.to_string r)
let jtrace tr = jstr (Format.asprintf "%a" Trace_id.pp tr)

let json_of_view ~kind v =
  Tel.Json.Obj
    ([
       ("ref", joid v.v_ref);
       ("dist", jint v.v_dist);
       ("threshold", jint v.v_threshold);
       ("suspected", jbool v.v_suspected);
       ("fresh", jbool v.v_fresh);
       ("forced_clean", jbool v.v_forced_clean);
     ]
    @ (match kind with
      | `Inref ->
          [
            ("flagged", jbool v.v_flagged);
            ( "sources",
              Tel.Json.Arr
                (List.map
                   (fun (s, d) ->
                     Tel.Json.Obj
                       [
                         ("site", jint (Site_id.to_int s)); ("dist", jint d);
                       ])
                   v.v_sources) );
            ("outset", Tel.Json.Arr (List.map joid v.v_linked));
          ]
      | `Outref ->
          [
            ("pins", jint v.v_pins);
            ("inset", Tel.Json.Arr (List.map joid v.v_linked));
          ])
    @ [ ("visited", Tel.Json.Arr (List.map jtrace v.v_visited)) ])

let json_of_frame (fi : Back_trace.frame_info) =
  Tel.Json.Obj
    ([
       ("id", jint fi.Back_trace.fi_id);
       ("trace", jtrace fi.Back_trace.fi_trace);
       ("ref", joid fi.Back_trace.fi_ioref);
       ("kind", jstr fi.Back_trace.fi_kind);
       ("pending", jint fi.Back_trace.fi_pending);
       ( "started",
         Tel.Json.Float (Sim_time.to_seconds fi.Back_trace.fi_started) );
     ]
    @
    match fi.Back_trace.fi_span with
    | Some id -> [ ("span", jint id) ]
    | None -> [])

let json_of_site sv =
  Tel.Json.Obj
    [
      ("site", jint (Site_id.to_int sv.sv_site));
      ("crashed", jbool sv.sv_crashed);
      ("objects", jint sv.sv_objects);
      ("trace_epoch", jint sv.sv_trace_epoch);
      ("in_window", jbool sv.sv_in_window);
      ("inrefs", Tel.Json.Arr (List.map (json_of_view ~kind:`Inref) sv.sv_inrefs));
      ( "outrefs",
        Tel.Json.Arr (List.map (json_of_view ~kind:`Outref) sv.sv_outrefs) );
      ("frames", Tel.Json.Arr (List.map json_of_frame sv.sv_frames));
    ]

let to_json t =
  Tel.Json.Obj
    [
      ("schema", jstr "dgc.snapshot/1");
      ("at", Tel.Json.Float (Sim_time.to_seconds t.at));
      ("sites", Tel.Json.Arr (List.map json_of_site t.sites));
      ( "memo",
        Tel.Json.Obj
          (List.map
             (fun (name, (h : Metrics.hist_stats)) ->
               ( name,
                 Tel.Json.Obj
                   [
                     ("n", jint h.Metrics.n);
                     ("p50", Tel.Json.Float h.Metrics.p50);
                     ("p95", Tel.Json.Float h.Metrics.p95);
                     ("max", Tel.Json.Float h.Metrics.max);
                   ] ))
             t.memo) );
      ("open_spans", jint t.open_spans);
    ]

(* --- diff ------------------------------------------------------------- *)

type change = {
  ch_site : Site_id.t;
  ch_what : string;
  ch_before : string;
  ch_after : string;
}

let describe_view ~kind v =
  let flags =
    List.filter_map
      (fun (name, on) -> if on then Some name else None)
      [
        ("suspected", v.v_suspected);
        ("fresh", v.v_fresh);
        ("forced_clean", v.v_forced_clean);
        ("flagged", v.v_flagged);
      ]
  in
  Printf.sprintf "dist=%d thr=%s%s%s%s" v.v_dist
    (if v.v_threshold >= Ioref.infinity_dist then "inf"
     else string_of_int v.v_threshold)
    (match flags with [] -> "" | fs -> " " ^ String.concat "," fs)
    (if v.v_pins > 0 then Printf.sprintf " pins=%d" v.v_pins else "")
    (match kind with
    | `Inref ->
        if v.v_visited <> [] then
          Printf.sprintf " visited=%d" (List.length v.v_visited)
        else ""
    | `Outref ->
        if v.v_visited <> [] then
          Printf.sprintf " visited=%d" (List.length v.v_visited)
        else "")

let diff_views ~site ~label ~kind before after acc =
  let tbl = Hashtbl.create 16 in
  List.iter (fun v -> Hashtbl.replace tbl v.v_ref (`Old v)) before;
  List.iter
    (fun v ->
      match Hashtbl.find_opt tbl v.v_ref with
      | Some (`Old old) -> Hashtbl.replace tbl v.v_ref (`Both (old, v))
      | _ -> Hashtbl.replace tbl v.v_ref (`New v))
    after;
  Hashtbl.fold
    (fun r state acc ->
      let what = Printf.sprintf "%s %s" label (Oid.to_string r) in
      match state with
      | `Old old ->
          { ch_site = site; ch_what = what;
            ch_before = describe_view ~kind old; ch_after = "(removed)" }
          :: acc
      | `New v ->
          { ch_site = site; ch_what = what; ch_before = "(absent)";
            ch_after = describe_view ~kind v }
          :: acc
      | `Both (old, v) ->
          let b = describe_view ~kind old and a = describe_view ~kind v in
          if b = a && old.v_linked = v.v_linked && old.v_sources = v.v_sources
          then acc
          else
            { ch_site = site; ch_what = what; ch_before = b; ch_after = a }
            :: acc)
    tbl acc

let diff s1 s2 =
  let by_site snap =
    List.map (fun sv -> (Site_id.to_int sv.sv_site, sv)) snap.sites
  in
  let m1 = by_site s1 and m2 = by_site s2 in
  let acc =
    List.fold_left
      (fun acc (i, sv2) ->
        match List.assoc_opt i m1 with
        | None -> acc
        | Some sv1 ->
            let site = sv2.sv_site in
            let acc =
              if sv1.sv_objects <> sv2.sv_objects then
                { ch_site = site; ch_what = "objects";
                  ch_before = string_of_int sv1.sv_objects;
                  ch_after = string_of_int sv2.sv_objects }
                :: acc
              else acc
            in
            let acc =
              if sv1.sv_crashed <> sv2.sv_crashed then
                { ch_site = site; ch_what = "crashed";
                  ch_before = string_of_bool sv1.sv_crashed;
                  ch_after = string_of_bool sv2.sv_crashed }
                :: acc
              else acc
            in
            let acc =
              if sv1.sv_in_window <> sv2.sv_in_window then
                { ch_site = site; ch_what = "in_window";
                  ch_before = string_of_bool sv1.sv_in_window;
                  ch_after = string_of_bool sv2.sv_in_window }
                :: acc
              else acc
            in
            let acc =
              let n1 = List.length sv1.sv_frames
              and n2 = List.length sv2.sv_frames in
              if n1 <> n2 then
                { ch_site = site; ch_what = "frames";
                  ch_before = string_of_int n1; ch_after = string_of_int n2 }
                :: acc
              else acc
            in
            let acc =
              diff_views ~site ~label:"inref" ~kind:`Inref sv1.sv_inrefs
                sv2.sv_inrefs acc
            in
            diff_views ~site ~label:"outref" ~kind:`Outref sv1.sv_outrefs
              sv2.sv_outrefs acc)
      [] m2
  in
  List.sort
    (fun a b ->
      match Site_id.compare a.ch_site b.ch_site with
      | 0 -> String.compare a.ch_what b.ch_what
      | c -> c)
    acc

(* --- printing --------------------------------------------------------- *)

let pp_change ppf c =
  Format.fprintf ppf "%a %-18s %s -> %s" Site_id.pp c.ch_site c.ch_what
    c.ch_before c.ch_after

let pp ppf t =
  Format.fprintf ppf "@[<v>snapshot at %.3fs" (Sim_time.to_seconds t.at);
  List.iter
    (fun sv ->
      Format.fprintf ppf "@,%a: %d objects, %d inrefs, %d outrefs, %d frames%s%s"
        Site_id.pp sv.sv_site sv.sv_objects
        (List.length sv.sv_inrefs)
        (List.length sv.sv_outrefs)
        (List.length sv.sv_frames)
        (if sv.sv_in_window then " [window open]" else "")
        (if sv.sv_crashed then " [crashed]" else "");
      List.iter
        (fun v ->
          Format.fprintf ppf "@,  inref  %-8s %s" (Oid.to_string v.v_ref)
            (describe_view ~kind:`Inref v))
        sv.sv_inrefs;
      List.iter
        (fun v ->
          Format.fprintf ppf "@,  outref %-8s %s" (Oid.to_string v.v_ref)
            (describe_view ~kind:`Outref v))
        sv.sv_outrefs;
      List.iter
        (fun (fi : Back_trace.frame_info) ->
          Format.fprintf ppf "@,  frame #%d %s %a on %s (pending %d)"
            fi.Back_trace.fi_id fi.Back_trace.fi_kind Trace_id.pp
            fi.Back_trace.fi_trace
            (Oid.to_string fi.Back_trace.fi_ioref)
            fi.Back_trace.fi_pending)
        sv.sv_frames)
    t.sites;
  if t.open_spans > 0 then
    Format.fprintf ppf "@,open spans: %d" t.open_spans;
  Format.fprintf ppf "@]"
