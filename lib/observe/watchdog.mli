(** Liveness/progress watchdog.

    Attached to a collector, the watchdog re-checks progress every
    [check_interval] of simulated time (driven by an engine step
    watcher) and raises an alert — a Warn journal entry in category
    ["watchdog"] plus a [watchdog.*] counter — the first time it sees:

    - {b stuck_frame}: an activation frame still open after
      [stuck_factor] × the §4.7 [back_call_timeout];
    - {b stuck_trace}: a back trace with no outcome (it never reached
      the §4.5 report phase) after the same deadline;
    - {b starved_threshold}: a suspected outref whose per-ioref back
      threshold has been bumped (§4.3) at least [starvation_bumps]
      times above the effective Δ2 while its distance stays below it,
      so no future local trace can re-trigger it;
    - {b surviving_garbage}: an oracle-known garbage object still
      uncollected [survive_rounds] whole rounds of local traces after
      the watchdog first saw it.

    Each alert fires once per subject (frame, trace, outref, object).
    The oracle check makes the watchdog a verification tool: it reads
    ground truth no real site could see. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_core

type alert = {
  al_at : Sim_time.t;
  al_kind : string;  (** counter suffix: e.g. ["stuck_trace"] *)
  al_site : Site_id.t option;
  al_text : string;
}

type t

val attach :
  ?stuck_factor:float ->
  (* default 3.0 *)
  ?starvation_bumps:int ->
  (* default 4 *)
  ?survive_rounds:int ->
  (* default 3 *)
  ?check_interval:Sim_time.t ->
  (* default: the engine's [trace_interval] *)
  Collector.t ->
  t

val set_leak_probe : t -> (Trace_id.t -> string option) -> unit
(** Wire in a leak oracle (in practice dgc-san's lost-trace detector,
    passed as a closure so the watchdog stays sanitizer-agnostic). When
    the probe returns [Some evidence] for a trace, stuck_frame and
    stuck_trace alerts for it fire immediately and cite that causal
    evidence instead of waiting out the [stuck_factor] age heuristic. *)

val check_now : t -> alert list
(** Run every check immediately (regardless of the interval); returns
    the alerts newly raised by this check. *)

val alerts : t -> alert list
(** Every alert raised so far, oldest first. *)

val flight_dump : t -> Dgc_telemetry.Json.t option
(** The ["dgc.flight/1"] document snapped at the {e first} alert (when
    the engine had a flight recorder attached): the ring contents
    leading up to the verdict, before later activity overwrote them.
    [None] while the watchdog is quiet. *)

val alert_counts : t -> (string * int) list
(** Alerts per kind, sorted by kind. *)

val pp : Format.formatter -> t -> unit
(** One line per alert, oldest first; a summary line when quiet. *)
