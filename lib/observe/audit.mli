(** Why-not-collected auditor.

    Cross-references oracle ground truth with the span log, the
    journal and the live collector state to explain every surviving
    garbage component. The oracle's garbage set is grouped into
    strongly connected components of the garbage-restricted reference
    graph; each component gets a machine-checkable verdict:

    - [Not_suspected] — the §3 distance heuristic never suspected any
      of the component's iorefs (or the component is single-site and
      back tracing is simply not involved);
    - [Suspected_not_triggered] — suspected, but no back trace was
      ever started that touched it: the distance never crossed the
      per-ioref back threshold (§4.3);
    - [Trace_timed_out] — a trace touched it and concluded Live off
      the back of §4.6/§4.7 timeouts ([timeout.call] /
      [timeout.visited_ttl] events);
    - [Trace_incomplete] — a trace touched it but never produced (or
      never delivered) an outcome: open root/frame/report spans are
      the witnesses (crashes and partitions land here);
    - [Barrier_stalled] — a trace concluded Live because a §6.1
      barrier held the component's iorefs forced-clean or pinned;
    - [Clean_rule_blocked] — the §6.4 clean rule fired during the
      trace and forced Live;
    - [Flagged_not_swept] — the trace concluded Garbage and flagged
      the inrefs; the local sweep that frees the objects has not run
      yet (benign transient);
    - [Unexplained] — none of the above: a diagnosis gap or a real
      collector bug. {!strict_failures} reports these.

    Each verdict carries evidence: span ids, journal lines, or state
    descriptions. The report also contains a span-tree critical-path
    analysis of every finished back trace (per-phase and per-site
    self-time along the longest causal chain). *)

open Dgc_prelude
open Dgc_heap
open Dgc_core
module Tel = Dgc_telemetry

type verdict =
  | Not_suspected
  | Suspected_not_triggered
  | Trace_timed_out
  | Trace_incomplete
  | Barrier_stalled
  | Clean_rule_blocked
  | Flagged_not_swept
  | Unexplained

val verdict_name : verdict -> string
(** The CamlCase wire name, e.g. ["TraceTimedOut"]. *)

type evidence =
  | E_span of { span : int; name : string; site : int; note : string }
      (** a span (possibly still open) witnessing the verdict *)
  | E_journal of { at : float; line : string }
  | E_state of string  (** a live table/ioref state description *)

type component = {
  co_objects : Oid.t list;  (** sorted *)
  co_sites : Site_id.t list;  (** owner sites, sorted *)
  co_cyclic : bool;  (** the component contains a reference cycle *)
  co_cross_site : bool;
  co_verdict : verdict;
  co_evidence : evidence list;
  co_traces : string list;  (** trace keys that touched the component *)
}

type phase_stat = {
  ph_name : string;  (** span name, e.g. ["frame.remote"] *)
  ph_ms : float;  (** self-time on critical paths, milliseconds *)
  ph_count : int;  (** spans contributing *)
}

type critical_path = {
  cp_trace : string;
  cp_root : int;  (** root span id *)
  cp_total_ms : float;
  cp_spans : int list;  (** span ids along the path, root first *)
}

type report = {
  rp_at : float;  (** simulated seconds when the audit ran *)
  rp_garbage_objects : int;
  rp_components : component list;
  rp_phases : phase_stat list;
      (** critical-path self-time per span name, all traces, sorted *)
  rp_site_ms : (int * float) list;
      (** critical-path self-time per site, sorted by site *)
  rp_paths : critical_path list;  (** per finished back trace *)
}

val run : Collector.t -> report
(** Audit the collector's current state: group oracle garbage into
    components, assign verdicts with evidence, and analyze the span
    tree of the attached tracer (span evidence is skipped when no
    tracer is attached). *)

val strict_failures : report -> string list
(** One message per component that is [Unexplained] or carries no
    evidence at all; empty means every surviving cycle is explained. *)

val to_json : report -> Tel.Json.t
(** An [{"schema": "dgc.audit/1"}] document; embedded as the ["audit"]
    section of run artifacts. *)

val pp : Format.formatter -> report -> unit
