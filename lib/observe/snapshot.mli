(** Per-site state inspector.

    A snapshot captures, at one instant of simulated time, everything
    a diagnosis needs about the collector's visible state: per site
    the inref/outref tables (distances, per-ioref back thresholds,
    suspected/fresh/forced-clean/flagged status, visited marks,
    insets/outsets, sources), the still-open back-trace activation
    frames, the §6.2 trace-window ("barrier") state and crash status,
    plus the §5.2 memoization statistics ([trace.*] histograms) from
    the metrics registry. Snapshots export to JSON, and two snapshots
    diff structurally — the inspector CLI prints both. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_core
module Tel = Dgc_telemetry

type ioref_view = {
  v_ref : Oid.t;
  v_dist : int;  (** outref distance / min source distance *)
  v_threshold : int;  (** per-ioref back threshold (§4.3) *)
  v_suspected : bool;
  v_fresh : bool;
  v_forced_clean : bool;
  v_flagged : bool;  (** inrefs only: confirmed garbage (§4.5) *)
  v_pins : int;  (** outrefs only: §6.1.2 retention pins *)
  v_visited : Trace_id.t list;  (** traces holding a visited mark *)
  v_linked : Oid.t list;  (** inset (outrefs) / outset (inrefs), §5 *)
  v_sources : (Site_id.t * int) list;  (** inref source sites w/ distance *)
}

type site_view = {
  sv_site : Site_id.t;
  sv_crashed : bool;
  sv_objects : int;
  sv_trace_epoch : int;  (** completed local traces *)
  sv_in_window : bool;  (** a §6.2 trace window is open *)
  sv_inrefs : ioref_view list;  (** sorted by target oid *)
  sv_outrefs : ioref_view list;  (** sorted by target oid *)
  sv_frames : Back_trace.frame_info list;  (** open activation frames *)
}

type t = {
  at : Sim_time.t;
  sites : site_view list;
  memo : (string * Metrics.hist_stats) list;
      (** §5.2 memo statistics: the [trace.*] histograms *)
  open_spans : int;  (** open tracer spans, [0] when no tracer attached *)
}

val take : Collector.t -> t
(** Capture the current state of every site under the collector. *)

val to_json : t -> Tel.Json.t

(** {1 Structural diff} *)

type change = {
  ch_site : Site_id.t;
  ch_what : string;  (** e.g. ["outref S2/o4"], ["frames"], ["objects"] *)
  ch_before : string;
  ch_after : string;
}

val diff : t -> t -> change list
(** Changes from the first snapshot to the second: iorefs added,
    removed, or with changed state; frames opened/closed; object-count
    and window/crash transitions. Empty when nothing changed. *)

val pp : Format.formatter -> t -> unit
val pp_change : Format.formatter -> change -> unit
