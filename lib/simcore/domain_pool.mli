(** Persistent worker pool for the sharded scheduler.

    [run] executes a round of tasks across [size] workers (the calling
    domain participates, so [size - 1] domains are spawned) and
    returns only when every task finished — a synchronization barrier.
    Handoff is spin-then-relax on atomics, so a round costs
    microseconds, matching the very short windows conservative
    synchronization produces.

    Pools must be released with {!teardown} (OCaml caps live domains);
    any still-live pool is torn down at process exit. *)

type t

exception Task_error of exn
(** A task raised; carries the first exception of the round. The round
    still runs to completion (remaining tasks execute), keeping the
    pool reusable. *)

val create : size:int -> t
(** [create ~size] spawns [max 1 size - 1] worker domains. *)

val size : t -> int

val run : t -> (unit -> unit) list -> unit
(** Execute all tasks, blocking until every one has finished. Tasks
    are claimed dynamically in list order. A single-task round runs
    inline on the caller. *)

val teardown : t -> unit
(** Stop and join the worker domains. Idempotent. *)
