(** Named counters, sample collections and histograms for experiments.

    A [t] is a registry of integer counters, float samples and
    fixed-bucket histograms. The simulator and collectors record into
    one registry per run; benches and run artifacts read it back. *)

type t

val create : ?sample_cap:int -> unit -> t
(** [sample_cap] bounds every sample collection: once a name holds
    that many raw observations, further ones replace retained entries
    by reservoir sampling (uniform over the whole stream, using a
    private deterministic generator), so memory stays O(cap) during
    long runs while {!mean}/{!max_sample}/{!observed} remain exact.
    Unset means unbounded, in observation order. *)

val reset : t -> unit

(** {1 Counters} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 if never incremented. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

(** {1 Samples} *)

val observe : t -> string -> float -> unit
val samples : t -> string -> float list
(** Retained observations; [] if none. In observation order when the
    registry is unbounded, an unordered uniform sample otherwise. *)

val observed : t -> string -> int
(** Observations ever made, including ones the reservoir dropped. *)

val mean : t -> string -> float
(** Over every observation ever made (exact under a reservoir). *)

val max_sample : t -> string -> float
(** Over every observation ever made (exact under a reservoir). *)

(** {1 Histograms}

    A histogram is created on first observation with fixed bucket
    upper bounds (default: 48 geometric buckets from 1e-6 doubling
    upward) plus an overflow bucket. Percentiles interpolate linearly
    inside the covering bucket, clamped to the exact observed min and
    max, so [p50/p95/p99] are bucket-resolution estimates while
    [min]/[max]/[n]/[sum] are exact. *)

type hist_stats = {
  n : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

val hist_observe : t -> ?buckets:float array -> string -> float -> unit
(** [buckets] (strictly increasing upper bounds) is honoured on the
    first observation of the name. On later observations a [buckets]
    that disagrees with the bounds in use is ignored, but reported
    through the {!set_on_bucket_mismatch} callback — the message names
    both offending specs (the bounds given and the bounds in use) —
    and the engine wires this to a Warn journal entry (or a raise
    under [Check_step]). *)

val set_on_bucket_mismatch : t -> (string -> unit) -> unit
(** Install the handler invoked with a description whenever
    [hist_observe]/[hist_ref] receives a [?buckets] spec that
    disagrees with a histogram's existing bounds. Default: none (the
    mismatch stays silent). *)

val hist_quantile : t -> string -> float -> float option
(** None if the histogram is missing or empty. *)

val hist_stats : t -> string -> hist_stats option
val hists : t -> (string * hist_stats) list
(** Sorted by name. *)

(** {1 Merging} *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into] (sharded engines merge their per-shard
    registries into one document at the end of a run): counters add,
    same-bounds histograms add bucket-wise (merged percentiles equal
    what a single registry would have recorded), samples append the
    retained observations up to [into]'s reservoir cap while the exact
    aggregates (n/sum/max) always add. Names are visited in sorted
    order, so merging deterministic registries is deterministic. A
    histogram whose bounds disagree with one already in [into] is
    skipped and reported through {!set_on_bucket_mismatch}. *)

val pp : Format.formatter -> t -> unit
(** Counters, then samples, then histograms — each block sorted by
    name, so output is deterministic and diffable. *)
