(** Message latency models for the simulated network. *)

type t =
  | Fixed of Sim_time.t
  | Uniform of Sim_time.t * Sim_time.t  (** inclusive lower, exclusive upper *)
  | Exponential of Sim_time.t  (** mean *)

val sample : Dgc_prelude.Rng.t -> t -> Sim_time.t
val mean : t -> Sim_time.t

val min_bound : t -> Sim_time.t
(** Greatest lower bound on {!sample}: the conservative lookahead of
    the sharded scheduler's time windows. [Exponential] has bound 0
    (samples are strictly positive but arbitrarily small), for which
    the scheduler falls back to equal-time windows. *)

val pp : Format.formatter -> t -> unit
