(** Priority queue of timed events.

    Events with equal timestamps are delivered in insertion order (a
    strictly increasing sequence number breaks ties), which keeps
    simulation runs deterministic. *)

type 'a t

val create : unit -> 'a t

val push : 'a t -> at:Sim_time.t -> 'a -> unit
(** Schedule an event at absolute time [at]. *)

val pop : 'a t -> (Sim_time.t * 'a) option
(** Remove and return the earliest event, or [None] if empty. *)

val push_batch : 'a t -> (Sim_time.t * 'a) list -> unit
(** Schedule a batch of events, in list order. Equivalent to folding
    {!push} over the list: list order decides the tie-break sequence
    numbers, so a deterministic batch order (e.g. the sharded
    scheduler's sorted outbox integration) yields a deterministic
    drain order. *)

val pop_until : 'a t -> Sim_time.t -> (Sim_time.t * 'a) list
(** Drain every event with timestamp [<= bound], earliest first
    (ties in insertion order) — the window-drain primitive of the
    sharded scheduler's equal-time windows. Events pushed {e after}
    the call are not included; callers that may schedule new events
    inside the window must re-drain until empty. *)

val pop_nth : 'a t -> int -> (Sim_time.t * 'a) option
(** Remove and return the [n]-th earliest event (0 = {!pop});
    [None] if fewer than [n+1] events are pending. Events skipped over
    keep their positions and tie-break order — this is the schedule
    explorer's deviation primitive. *)

val nth_time : 'a t -> int -> Sim_time.t option
(** Timestamp of the [n]-th earliest event without removing it. *)

val peek_time : 'a t -> Sim_time.t option
val is_empty : 'a t -> bool
val length : 'a t -> int
val clear : 'a t -> unit
