type level = Debug | Info | Warn

let level_name = function Debug -> "debug" | Info -> "info" | Warn -> "warn"
let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2

type entry = { at : Sim_time.t; level : level; cat : string; text : string }

type t = {
  buf : entry option array;
  mutable next : int;  (** write cursor *)
  mutable total : int;
  mutable on_record : (entry -> unit) option;
}

let create ?(capacity = 2048) () =
  if capacity <= 0 then invalid_arg "Journal.create: capacity";
  { buf = Array.make capacity None; next = 0; total = 0; on_record = None }

let capacity t = Array.length t.buf
let set_on_record t f = t.on_record <- Some f
let clear_on_record t = t.on_record <- None

let record t ?(level = Info) ~at ~cat text =
  let e = { at; level; cat; text } in
  t.buf.(t.next) <- Some e;
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1;
  match t.on_record with Some f -> f e | None -> ()

let recordf t ?level ~at ~cat fmt =
  Format.kasprintf (fun s -> record t ?level ~at ~cat s) fmt

let fold_oldest_first t f acc =
  let cap = Array.length t.buf in
  let start = if t.total >= cap then t.next else 0 in
  let n = min t.total cap in
  let rec go i acc =
    if i >= n then acc
    else
      match t.buf.((start + i) mod cap) with
      | Some e -> go (i + 1) (f acc e)
      | None -> go (i + 1) acc
  in
  go 0 acc

let keep_last last l =
  match last with
  | None -> l
  | Some n ->
      let len = List.length l in
      if len <= n then l else List.filteri (fun i _ -> i >= len - n) l

let entries ?cat ?min_level ?last t =
  fold_oldest_first t
    (fun acc e ->
      let cat_ok = match cat with Some c -> c = e.cat | None -> true in
      let lvl_ok =
        match min_level with
        | Some l -> level_rank e.level >= level_rank l
        | None -> true
      in
      if cat_ok && lvl_ok then e :: acc else acc)
    []
  |> List.rev |> keep_last last

let events ?cat ?last t =
  entries ?cat ?last t |> List.map (fun e -> (e.at, e.cat, e.text))

let length t = min t.total (Array.length t.buf)
let total t = t.total

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.total <- 0

let pp_entry ppf e =
  Format.fprintf ppf "%a %-5s [%s] %s" Sim_time.pp e.at (level_name e.level)
    e.cat e.text

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter (fun e -> Format.fprintf ppf "%a@," pp_entry e) (entries t);
  Format.fprintf ppf "@]"
