(* A tiny persistent worker pool for the sharded scheduler.

   Windows are short (often a handful of events), so worker handoff
   must cost microseconds, not a domain spawn: workers are spawned
   once, then parked on an atomic generation counter — spin briefly,
   then block on a condition variable. Blocking (rather than spinning
   through [Domain.cpu_relax]) matters when domains outnumber cores:
   a spinning worker preempts the coordinator between windows and the
   whole run crawls. The caller participates in every round, so a pool
   of size [n] uses [n-1] spawned domains. All signalling goes through
   sequentially-consistent atomics, which also gives the
   happens-before edges that make the shards' plain-field writes of
   one window visible to every domain in the next.

   OCaml caps live domains (~128); engines are created freely in tests
   and benches, so pools are handed out lazily, torn down explicitly
   ([teardown]), and any survivors are joined at exit. *)

type task = unit -> unit

type t = {
  size : int;  (** total workers including the caller *)
  gen : int Atomic.t;  (** round generation; bumped to start a round *)
  done_count : int Atomic.t;
  stop : bool Atomic.t;
  mutable tasks : task array;  (** tasks of the current round *)
  next_task : int Atomic.t;
  mutable domains : unit Domain.t array;
  mutable live : bool;
  mu : Mutex.t;  (** guards the cv waits below; state itself is atomic *)
  cv : Condition.t;  (** signalled on gen bumps and task completions *)
}

let registry : t list ref = ref []
let registry_mu = Mutex.create ()

let spin_limit = 2_000

let rec wait_for_gen t seen spin =
  let g = Atomic.get t.gen in
  if g <> seen then g
  else if spin < spin_limit then wait_for_gen t seen (spin + 1)
  else begin
    (* Park. The signaller bumps [gen] and then broadcasts while
       holding [mu], and we re-check [gen] under [mu] before waiting,
       so a wakeup cannot be missed. *)
    Mutex.lock t.mu;
    let rec block () =
      let g = Atomic.get t.gen in
      if g <> seen then g
      else begin
        Condition.wait t.cv t.mu;
        block ()
      end
    in
    let g = block () in
    Mutex.unlock t.mu;
    g
  end

let signal_all t =
  Mutex.lock t.mu;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu

let run_tasks t =
  let n = Array.length t.tasks in
  let rec go () =
    let i = Atomic.fetch_and_add t.next_task 1 in
    if i < n then begin
      t.tasks.(i) ();
      go ()
    end
  in
  go ()

let worker t () =
  let seen = ref 0 in
  let rec loop () =
    let g = wait_for_gen t !seen 0 in
    seen := g;
    if not (Atomic.get t.stop) then begin
      run_tasks t;
      ignore (Atomic.fetch_and_add t.done_count 1);
      signal_all t;
      loop ()
    end
  in
  loop ()

let create ~size =
  let size = max 1 size in
  let t =
    {
      size;
      gen = Atomic.make 0;
      done_count = Atomic.make 0;
      stop = Atomic.make false;
      tasks = [||];
      next_task = Atomic.make 0;
      domains = [||];
      live = true;
      mu = Mutex.create ();
      cv = Condition.create ();
    }
  in
  t.domains <- Array.init (size - 1) (fun _ -> Domain.spawn (worker t));
  Mutex.lock registry_mu;
  registry := t :: !registry;
  Mutex.unlock registry_mu;
  t

let size t = t.size

exception Task_error of exn

let run t tasks =
  if not t.live then invalid_arg "Domain_pool.run: pool torn down";
  match tasks with
  | [] -> ()
  | [ task ] -> task ()
  | tasks ->
      (* Exceptions out of a worker task must not wedge the pool:
         capture the first one and re-raise on the caller after the
         round's barrier. *)
      let failure = Atomic.make None in
      let guard task () =
        try task ()
        with e ->
          ignore (Atomic.compare_and_set failure None (Some e))
      in
      t.tasks <- Array.of_list (List.map guard tasks);
      Atomic.set t.next_task 0;
      Atomic.set t.done_count 0;
      Atomic.incr t.gen;
      signal_all t;
      run_tasks t;
      let spin = ref 0 in
      while Atomic.get t.done_count < t.size - 1 && !spin < spin_limit do
        incr spin
      done;
      if Atomic.get t.done_count < t.size - 1 then begin
        Mutex.lock t.mu;
        while Atomic.get t.done_count < t.size - 1 do
          Condition.wait t.cv t.mu
        done;
        Mutex.unlock t.mu
      end;
      t.tasks <- [||];
      (match Atomic.get failure with
      | Some e -> raise (Task_error e)
      | None -> ())

let teardown t =
  if t.live then begin
    t.live <- false;
    Atomic.set t.stop true;
    Atomic.incr t.gen;
    signal_all t;
    Array.iter Domain.join t.domains;
    t.domains <- [||];
    Mutex.lock registry_mu;
    registry := List.filter (fun p -> p != t) !registry;
    Mutex.unlock registry_mu
  end

let () =
  at_exit (fun () ->
      let ps = Mutex.protect registry_mu (fun () -> !registry) in
      List.iter teardown ps)
