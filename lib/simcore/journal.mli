(** A bounded journal of simulation events.

    A ring buffer of timestamped, categorized, severity-tagged
    one-line events. The engine and collectors write into it when one
    is attached; the CLI and debugging sessions read it back. Writing
    is O(1) and the buffer never grows beyond its capacity, so it can
    stay attached during long runs. *)

type level = Debug | Info | Warn

val level_name : level -> string
(** ["debug"], ["info"], ["warn"]. *)

val level_rank : level -> int
(** Debug < Info < Warn. *)

type entry = { at : Sim_time.t; level : level; cat : string; text : string }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 2048 events. *)

val capacity : t -> int

val record : t -> ?level:level -> at:Sim_time.t -> cat:string -> string -> unit
(** [cat] is a short label ("back", "gc", "barrier", "fault", ...);
    [level] defaults to [Info]. *)

val set_on_record : t -> (entry -> unit) -> unit
(** Install a tap invoked synchronously with every recorded entry
    (after it lands in the ring). The flight recorder mirrors journal
    entries into its binary ring through this. One tap at a time; a
    second call replaces the first. *)

val clear_on_record : t -> unit

val recordf :
  t ->
  ?level:level ->
  at:Sim_time.t ->
  cat:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Formatted {!record}. *)

val entries : ?cat:string -> ?min_level:level -> ?last:int -> t -> entry list
(** Oldest first; [cat] filters by category, [min_level] keeps entries
    at or above the given severity, [last] keeps only the most recent
    n (after filtering). *)

val events : ?cat:string -> ?last:int -> t -> (Sim_time.t * string * string) list
(** {!entries} without the severity, kept for tabular consumers. *)

val length : t -> int
(** Events currently retained (≤ capacity). *)

val total : t -> int
(** Events ever recorded (including overwritten ones). *)

val clear : t -> unit
val pp_entry : Format.formatter -> entry -> unit
val pp : Format.formatter -> t -> unit
