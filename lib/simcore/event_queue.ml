type 'a entry = { at : Sim_time.t; seq : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* [heap.(0)] is unused padding once empty; we manage [size] explicitly. *)
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let entry_before a b =
  match Sim_time.compare a.at b.at with
  | 0 -> a.seq < b.seq
  | c -> c < 0

let grow t =
  let cap = Array.length t.heap in
  if t.size >= cap then begin
    let dummy = t.heap.(0) in
    let fresh = Array.make (max 16 (2 * cap)) dummy in
    Array.blit t.heap 0 fresh 0 t.size;
    t.heap <- fresh
  end

let rec sift_up heap i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if entry_before heap.(i) heap.(parent) then begin
      let tmp = heap.(i) in
      heap.(i) <- heap.(parent);
      heap.(parent) <- tmp;
      sift_up heap parent
    end
  end

let rec sift_down heap size i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < size && entry_before heap.(left) heap.(!smallest) then
    smallest := left;
  if right < size && entry_before heap.(right) heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    let tmp = heap.(i) in
    heap.(i) <- heap.(!smallest);
    heap.(!smallest) <- tmp;
    sift_down heap size !smallest
  end

let push t ~at payload =
  let e = { at; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 e;
  grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t.heap (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t.heap t.size 0
    end;
    Some (top.at, top.payload)
  end

(* Re-insert an entry popped by [pop_entry], keeping its original
   sequence number so tie-breaking order is unchanged. *)
let push_entry t e =
  if Array.length t.heap = 0 then t.heap <- Array.make 16 e;
  grow t;
  t.heap.(t.size) <- e;
  t.size <- t.size + 1;
  sift_up t.heap (t.size - 1)

let pop_entry t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t.heap t.size 0
    end;
    Some top
  end

let pop_nth t n =
  if n < 0 || n >= t.size then None
  else begin
    (* Pop the n+1 earliest entries, keep the last, re-insert the rest
       with their original sequence numbers. O(n log size); schedule
       exploration only ever uses small n. *)
    let skipped = ref [] in
    for _ = 1 to n do
      match pop_entry t with
      | Some e -> skipped := e :: !skipped
      | None -> ()
    done;
    let picked = pop_entry t in
    List.iter (push_entry t) !skipped;
    Option.map (fun e -> (e.at, e.payload)) picked
  end

let push_batch t items =
  (* One [grow] for the whole batch, then sift each entry in arrival
     order: the batch behaves exactly like the equivalent sequence of
     [push] calls (same sequence numbers, same tie-break order). *)
  List.iter (fun (at, payload) -> push t ~at payload) items

let pop_until t bound =
  let rec go acc =
    if t.size > 0 && Sim_time.compare t.heap.(0).at bound <= 0 then
      match pop t with
      | Some (at, payload) -> go ((at, payload) :: acc)
      | None -> List.rev acc
    else List.rev acc
  in
  go []

let nth_time t n =
  if n < 0 || n >= t.size then None
  else begin
    let popped = ref [] in
    for _ = 0 to n do
      match pop_entry t with
      | Some e -> popped := e :: !popped
      | None -> ()
    done;
    let at = match !popped with e :: _ -> Some e.at | [] -> None in
    List.iter (push_entry t) !popped;
    at
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).at
let is_empty t = t.size = 0
let length t = t.size
let clear t = t.size <- 0
