module Rng = Dgc_prelude.Rng

type t =
  | Fixed of Sim_time.t
  | Uniform of Sim_time.t * Sim_time.t
  | Exponential of Sim_time.t

let sample rng = function
  | Fixed d -> d
  | Uniform (lo, hi) ->
      if Sim_time.compare hi lo <= 0 then lo else Rng.float_in rng lo hi
  | Exponential mean ->
      (* Inverse-CDF sampling; clamp u away from 0 to avoid infinity. *)
      let u = Float.max 1e-12 (Rng.float rng 1.0) in
      mean *. -.Float.log u

let mean = function
  | Fixed d -> d
  | Uniform (lo, hi) -> (lo +. hi) /. 2.
  | Exponential m -> m

(* Conservative lookahead for the sharded scheduler: no sample is ever
   below this bound. Exponential samples are strictly positive but not
   bounded away from zero, so its bound is 0 (the scheduler degrades to
   equal-time windows, which stay correct because samples are > 0). *)
let min_bound = function
  | Fixed d -> d
  | Uniform (lo, _) -> lo
  | Exponential _ -> Sim_time.zero

let pp ppf = function
  | Fixed d -> Format.fprintf ppf "fixed(%a)" Sim_time.pp d
  | Uniform (lo, hi) ->
      Format.fprintf ppf "uniform(%a,%a)" Sim_time.pp lo Sim_time.pp hi
  | Exponential m -> Format.fprintf ppf "exp(%a)" Sim_time.pp m
