(* Counters, samples and fixed-bucket histograms.

   Samples keep raw observations (optionally bounded by reservoir
   sampling so a registry can stay attached to a long run); histograms
   bucket observations on creation-time bounds and answer percentile
   queries by linear interpolation inside the covering bucket. *)

type samples = {
  mutable xs : float array;
  mutable len : int;  (** slots of [xs] in use *)
  mutable n_obs : int;  (** observations ever made *)
  mutable sum : float;
  mutable mx : float;
  mutable lcg : int;  (** private reservoir randomness *)
  cap : int option;
}

type hist = {
  bounds : float array;  (** upper bounds, strictly increasing *)
  counts : int array;  (** length [Array.length bounds + 1]; last = overflow *)
  mutable h_n : int;
  mutable h_sum : float;
  mutable h_min : float;
  mutable h_max : float;
}

type hist_stats = {
  n : int;
  sum : float;
  min : float;
  max : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

type t = {
  counters : (string, int ref) Hashtbl.t;
  samples : (string, samples) Hashtbl.t;
  hists : (string, hist) Hashtbl.t;
  sample_cap : int option;
  mutable on_bucket_mismatch : (string -> unit) option;
}

let create ?sample_cap () =
  (match sample_cap with
  | Some c when c <= 0 -> invalid_arg "Metrics.create: sample_cap"
  | _ -> ());
  {
    counters = Hashtbl.create 32;
    samples = Hashtbl.create 16;
    hists = Hashtbl.create 16;
    sample_cap;
    on_bucket_mismatch = None;
  }

let set_on_bucket_mismatch t f = t.on_bucket_mismatch <- Some f

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.samples;
  Hashtbl.reset t.hists

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = incr (counter_ref t name)
let add t name n = counter_ref t name := !(counter_ref t name) + n

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- samples ---------------------------------------------------------- *)

let sample_ref t name =
  match Hashtbl.find_opt t.samples name with
  | Some s -> s
  | None ->
      let s =
        {
          xs = Array.make 8 0.;
          len = 0;
          n_obs = 0;
          sum = 0.;
          mx = neg_infinity;
          lcg = 0x2545F49 + Hashtbl.hash name;
          cap = t.sample_cap;
        }
      in
      Hashtbl.add t.samples name s;
      s

(* Deterministic private randomness: good enough for reservoir index
   selection, avoids touching the simulation's seeded stream. *)
let lcg_next s bound =
  s.lcg <- ((s.lcg * 1103515245) + 12345) land 0x3FFFFFFF;
  s.lcg mod bound

let observe t name x =
  let s = sample_ref t name in
  s.n_obs <- s.n_obs + 1;
  s.sum <- s.sum +. x;
  if x > s.mx then s.mx <- x;
  let full = match s.cap with Some c -> s.len >= c | None -> false in
  if full then begin
    (* Reservoir: each observation survives with probability cap/n. *)
    let j = lcg_next s s.n_obs in
    if j < s.len then s.xs.(j) <- x
  end
  else begin
    if s.len = Array.length s.xs then begin
      let grown = Array.make (2 * s.len) 0. in
      Array.blit s.xs 0 grown 0 s.len;
      s.xs <- grown
    end;
    s.xs.(s.len) <- x;
    s.len <- s.len + 1
  end

let samples t name =
  match Hashtbl.find_opt t.samples name with
  | Some s -> Array.to_list (Array.sub s.xs 0 s.len)
  | None -> []

let observed t name =
  match Hashtbl.find_opt t.samples name with Some s -> s.n_obs | None -> 0

let mean t name =
  match Hashtbl.find_opt t.samples name with
  | Some s when s.n_obs > 0 -> s.sum /. float_of_int s.n_obs
  | _ -> Float.nan

let max_sample t name =
  match Hashtbl.find_opt t.samples name with
  | Some s -> s.mx
  | None -> neg_infinity

(* --- histograms ------------------------------------------------------- *)

(* Geometric bounds covering microseconds to ~1e8 in base 2: wide
   enough for millisecond latencies, byte sizes and small counts
   alike, at 2x resolution per bucket. *)
let default_buckets = Array.init 48 (fun i -> 1e-6 *. (2. ** float_of_int i))

let hist_ref t ?buckets name =
  match Hashtbl.find_opt t.hists name with
  | Some h ->
      (* The bounds are fixed at creation; a later [?buckets] that
         disagrees would silently measure into the wrong bins. *)
      (match buckets with
      | Some b when b <> h.bounds -> (
          (* Name both specs in full: a mismatch report that does not
             say which registration conflicted cannot be acted on. *)
          let spec a =
            Array.to_list a |> List.map (Printf.sprintf "%g")
            |> String.concat "; "
            |> Printf.sprintf "[%s]"
          in
          let msg =
            Printf.sprintf
              "histogram %S: ?buckets disagrees with existing bounds \
               (given %s vs %s in use); keeping the original"
              name (spec b) (spec h.bounds)
          in
          match t.on_bucket_mismatch with
          | Some f -> f msg
          | None -> ())
      | _ -> ());
      h
  | None ->
      let bounds =
        match buckets with
        | Some b ->
            if Array.length b = 0 then invalid_arg "Metrics: empty buckets";
            Array.iteri
              (fun i x ->
                if i > 0 && x <= b.(i - 1) then
                  invalid_arg "Metrics: buckets must increase")
              b;
            Array.copy b
        | None -> default_buckets
      in
      let h =
        {
          bounds;
          counts = Array.make (Array.length bounds + 1) 0;
          h_n = 0;
          h_sum = 0.;
          h_min = infinity;
          h_max = neg_infinity;
        }
      in
      Hashtbl.add t.hists name h;
      h

let hist_observe t ?buckets name x =
  let h = hist_ref t ?buckets name in
  let nb = Array.length h.bounds in
  (* First bucket whose upper bound covers x (binary search). *)
  let rec find lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if x <= h.bounds.(mid) then find lo mid else find (mid + 1) hi
  in
  let i = if x > h.bounds.(nb - 1) then nb else find 0 (nb - 1) in
  h.counts.(i) <- h.counts.(i) + 1;
  h.h_n <- h.h_n + 1;
  h.h_sum <- h.h_sum +. x;
  if x < h.h_min then h.h_min <- x;
  if x > h.h_max then h.h_max <- x

let quantile_of h q =
  if h.h_n = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int h.h_n in
    let nb = Array.length h.bounds in
    let rec walk i cum =
      if i > nb then h.h_max
      else
        let cum' = cum + h.counts.(i) in
        if float_of_int cum' >= rank && h.counts.(i) > 0 then begin
          (* Interpolate inside bucket i, clamped to the observed
             extremes so tiny histograms stay sensible. *)
          let lo = if i = 0 then Float.min h.h_min 0. else h.bounds.(i - 1) in
          let hi = if i >= nb then h.h_max else h.bounds.(i) in
          let lo = Float.max lo h.h_min and hi = Float.min hi h.h_max in
          let inside = rank -. float_of_int cum in
          lo
          +. (hi -. lo)
             *. Float.max 0.
                  (Float.min 1. (inside /. float_of_int h.counts.(i)))
        end
        else walk (i + 1) cum'
    in
    walk 0 0
  end

let hist_quantile t name q =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h -> if h.h_n = 0 then None else Some (quantile_of h q)

let stats_of h =
  {
    n = h.h_n;
    sum = h.h_sum;
    min = (if h.h_n = 0 then Float.nan else h.h_min);
    max = (if h.h_n = 0 then Float.nan else h.h_max);
    p50 = quantile_of h 0.5;
    p95 = quantile_of h 0.95;
    p99 = quantile_of h 0.99;
  }

let hist_stats t name =
  match Hashtbl.find_opt t.hists name with
  | None -> None
  | Some h -> Some (stats_of h)

let hists t =
  Hashtbl.fold (fun k h acc -> (k, stats_of h) :: acc) t.hists []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

(* --- merging ---------------------------------------------------------- *)

(* Fold one registry into another (sharded engines: per-shard
   registries merged into one document at the end of a run). Counters
   add; histograms with identical bounds add bucket-wise, so the
   merged percentiles are exactly what one registry would have
   recorded; samples append the retained observations (capped by the
   destination's reservoir bound) while the exact aggregates
   (n/sum/max) always add. Iteration is in sorted name order, so a
   merge of deterministic registries is itself deterministic. *)
let merge_into ~into src =
  let sorted tbl =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter (fun (name, v) -> add into name v) (counters src);
  List.iter
    (fun (name, s) ->
      let d = sample_ref into name in
      for i = 0 to s.len - 1 do
        let full = match d.cap with Some c -> d.len >= c | None -> false in
        if not full then begin
          if d.len = Array.length d.xs then begin
            let grown = Array.make (max 8 (2 * d.len)) 0. in
            Array.blit d.xs 0 grown 0 d.len;
            d.xs <- grown
          end;
          d.xs.(d.len) <- s.xs.(i);
          d.len <- d.len + 1
        end
      done;
      d.n_obs <- d.n_obs + s.n_obs;
      d.sum <- d.sum +. s.sum;
      if s.mx > d.mx then d.mx <- s.mx)
    (sorted src.samples);
  List.iter
    (fun (name, h) ->
      let d = hist_ref into ~buckets:h.bounds name in
      if d.bounds = h.bounds then begin
        Array.iteri (fun i c -> d.counts.(i) <- d.counts.(i) + c) h.counts;
        d.h_n <- d.h_n + h.h_n;
        d.h_sum <- d.h_sum +. h.h_sum;
        if h.h_min < d.h_min then d.h_min <- h.h_min;
        if h.h_max > d.h_max then d.h_max <- h.h_max
      end
      (* differing bounds: already reported via on_bucket_mismatch *))
    (sorted src.hists)

(* --- printing --------------------------------------------------------- *)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-40s %d@," name v)
    (counters t);
  let sorted_samples =
    Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.samples []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  List.iter
    (fun (name, s) ->
      Format.fprintf ppf "%-40s n=%d mean=%.2f@," name s.n_obs
        (if s.n_obs = 0 then Float.nan else s.sum /. float_of_int s.n_obs))
    sorted_samples;
  List.iter
    (fun (name, st) ->
      Format.fprintf ppf "%-40s n=%d p50=%.2f p95=%.2f p99=%.2f max=%.2f@,"
        name st.n st.p50 st.p95 st.p99 st.max)
    (hists t);
  Format.fprintf ppf "@]"
