(** Per-site state: heap, ioref tables, retention pins, and the hook
    points through which a collector scheme plugs into the runtime.

    A site is passive; the {!Engine} drives it. Collector schemes (the
    core back-tracing collector, or a baseline) install closures in
    [hooks]. Default hooks do nothing except that [h_run_local_trace]
    raises, so forgetting to install a collector is loud. *)

open Dgc_prelude
open Dgc_heap

type hooks = {
  mutable h_ref_arrived : Oid.t -> unit;
      (** §6.1 barrier point: reference [r] was transferred to or
          traversed at this site (including insert registration for a
          local [r]). Called after the runtime's table bookkeeping. *)
  mutable h_ioref_cleaned : Oid.t -> unit;
      (** the ioref identified by [r] (inref when [r] is local, outref
          otherwise) just became clean outside a local trace — the §6.4
          clean-rule point. The runtime raises it when pinning turns a
          suspected outref clean; collectors raise it from barriers. *)
  mutable h_ext : src:Site_id.t -> Protocol.ext -> unit;
      (** a collector-specific message arrived *)
  mutable h_run_local_trace : unit -> unit;
      (** perform this site's local trace now (scheduled by the engine) *)
}

type t = {
  id : Site_id.t;
  heap : Heap.t;
  tables : Tables.t;
  mutable crashed : bool;
  mutable trace_epoch : int;  (** completed local traces *)
  pin_tbl : (int, Oid.t list) Hashtbl.t;
  labels : (string, string) Hashtbl.t;  (** interned metric names *)
  hooks : hooks;
}

val create : Site_id.t -> t

val metric_label : t -> string -> string
(** [metric_label t base] is ["base{site=N}"], formatted once per base
    and cached — metric emission on hot paths should not allocate a
    fresh label string per event. *)

val pin : t -> token:int -> Oid.t list -> unit
(** Retain [refs] until {!unpin} with the same token: local refs become
    extra roots; remote refs pin their outrefs (which must exist),
    making them clean — raising [h_ioref_cleaned] if that changed their
    status. Used for in-flight moves and the insert barrier. *)

val unpin : t -> token:int -> unit
(** Idempotent. *)

val pinned_local_roots : t -> Oid.t list
(** Local references currently pinned (extra trace roots). *)

val pinned_tokens : t -> int list

val fresh_outref_of_arrival : t -> Oid.t -> [ `Local | `Known | `Created ]
(** Table bookkeeping for a reference [r] arriving at this site
    (§6.1.2): [`Local] if [r] is one of this site's objects; [`Known]
    if an outref already existed; [`Created] if a fresh clean outref
    was created (caller must run the insert protocol). *)
