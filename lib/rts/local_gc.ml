open Dgc_simcore
open Dgc_heap

let run eng site =
  let heap = site.Site.heap in
  let tables = site.Site.tables in
  let metrics = Engine.metrics eng in
  Metrics.incr metrics "gc.local_traces";
  (* Unsorted iteration: the roots feed a closure (sets), so table
     order is not observable here. *)
  let inref_roots = ref [] in
  Tables.iter_inrefs tables (fun ir ->
      if not ir.Ioref.ir_flagged then
        inref_roots := ir.Ioref.ir_target :: !inref_roots);
  let inref_roots = !inref_roots in
  let roots =
    Heap.persistent_roots heap
    @ Engine.app_roots eng site.Site.id
    @ inref_roots
  in
  let locals, remotes = Reach.closure (Reach.of_heap heap) ~from:roots in
  (* Sweep local objects. *)
  let dead =
    Heap.fold heap ~init:[] ~f:(fun acc o ->
        if Oid.Set.mem o.Heap.oid locals then acc
        else Oid.index o.Heap.oid :: acc)
  in
  let freed = Heap.free heap dead in
  Metrics.add metrics "gc.objects_freed" freed;
  (* Trim outrefs: keep traced, pinned or fresh ones. *)
  let removals = ref [] in
  List.iter
    (fun o ->
      let r = o.Ioref.or_target in
      if Oid.Set.mem r remotes then o.Ioref.or_fresh <- false
      else if o.Ioref.or_pins > 0 then ()
      else if o.Ioref.or_fresh then
        (* Keep a just-created outref for one round; if still untraced
           next time it is removed with a proper update message. *)
        o.Ioref.or_fresh <- false
      else begin
        Tables.remove_outref tables r;
        removals := r :: !removals
      end)
    (Tables.outrefs tables);
  (* Group removal notices by target site. *)
  let by_site = Hashtbl.create 8 in
  List.iter
    (fun r ->
      let dst = Oid.site r in
      let q =
        match Hashtbl.find_opt by_site dst with
        | Some q -> q
        | None ->
            let q = ref [] in
            Hashtbl.add by_site dst q;
            q
      in
      q := r :: !q)
    !removals;
  Hashtbl.iter
    (fun dst q ->
      Engine.send eng ~src:site.Site.id ~dst
        (Protocol.Update { removals = !q; dists = [] }))
    by_site;
  Tables.iter_inrefs tables (fun ir -> ir.Ioref.ir_fresh <- false);
  site.Site.trace_epoch <- site.Site.trace_epoch + 1

let install eng =
  Array.iter
    (fun s -> s.Site.hooks.Site.h_run_local_trace <- (fun () -> run eng s))
    (Engine.sites eng)
