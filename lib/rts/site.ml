open Dgc_prelude
open Dgc_heap

type hooks = {
  mutable h_ref_arrived : Oid.t -> unit;
  mutable h_ioref_cleaned : Oid.t -> unit;
  mutable h_ext : src:Site_id.t -> Protocol.ext -> unit;
  mutable h_run_local_trace : unit -> unit;
}

type t = {
  id : Site_id.t;
  heap : Heap.t;
  tables : Tables.t;
  mutable crashed : bool;
  mutable trace_epoch : int;
  pin_tbl : (int, Oid.t list) Hashtbl.t;
  labels : (string, string) Hashtbl.t;
  hooks : hooks;
}

let create id =
  {
    id;
    heap = Heap.create id;
    tables = Tables.create id;
    crashed = false;
    trace_epoch = 0;
    pin_tbl = Hashtbl.create 8;
    labels = Hashtbl.create 8;
    hooks =
      {
        h_ref_arrived = (fun _ -> ());
        h_ioref_cleaned = (fun _ -> ());
        h_ext = (fun ~src:_ _ -> ());
        h_run_local_trace =
          (fun () -> failwith "Site: no collector installed");
      };
  }

let is_local t r = Site_id.equal (Oid.site r) t.id

(* One process-wide lock for label interning: the table is per-site
   but sites can be labelled from concurrent shard windows, and the
   call is per-trace (not per-object), so contention is negligible. *)
let labels_mu = Mutex.create ()

let metric_label t base =
  Mutex.lock labels_mu;
  let s =
    match Hashtbl.find_opt t.labels base with
    | Some s -> s
    | None ->
        let s = Printf.sprintf "%s{site=%d}" base (Site_id.to_int t.id) in
        Hashtbl.add t.labels base s;
        s
  in
  Mutex.unlock labels_mu;
  s

let pin t ~token refs =
  Hashtbl.replace t.pin_tbl token refs;
  List.iter
    (fun r ->
      if not (is_local t r) then
        match Tables.find_outref t.tables r with
        | Some o ->
            let was_clean = Ioref.outref_clean o in
            o.Ioref.or_pins <- o.Ioref.or_pins + 1;
            if not was_clean then t.hooks.h_ioref_cleaned r
        | None ->
            (* The pinning call sites guarantee an outref exists for any
               remote reference held at this site. *)
            invalid_arg "Site.pin: no outref for pinned remote reference")
    refs

let unpin t ~token =
  match Hashtbl.find_opt t.pin_tbl token with
  | None -> ()
  | Some refs ->
      Hashtbl.remove t.pin_tbl token;
      List.iter
        (fun r ->
          if not (is_local t r) then
            match Tables.find_outref t.tables r with
            | Some o -> o.Ioref.or_pins <- max 0 (o.Ioref.or_pins - 1)
            | None -> ())
        refs

let pinned_local_roots t =
  Hashtbl.fold
    (fun _ refs acc -> List.filter (is_local t) refs @ acc)
    t.pin_tbl []

let pinned_tokens t = Util.hashtbl_keys t.pin_tbl

let fresh_outref_of_arrival t r =
  if is_local t r then `Local
  else begin
    let o, created = Tables.ensure_outref t.tables r in
    if created then begin
      (* Keep the new outref pinned until the owner acknowledges the
         insert (the engine releases it on Insert_done); otherwise a
         local trace could drop the outref before the insert lands and
         leave a stale source entry at the owner. *)
      o.Ioref.or_pins <- o.Ioref.or_pins + 1;
      `Created
    end
    else
      (* §6.1.2 case 3: a suspected outref for an arriving reference is
         cleaned. The cleaning itself is the collector's barrier duty
         (h_ref_arrived); here we only report the table state. *)
      `Known
  end
