open Dgc_prelude
open Dgc_simcore
open Dgc_heap

type t = {
  id : int;
  mgr : manager;
  mutable at : Site_id.t;
  vars : (string, Oid.t) Hashtbl.t;
  mutable pin_token : int option;
  traveling : bool Atomic.t;
      (* Atomic as defensive hardening for the sharded engine: agents
         live on the coordinator, but [set_extra_roots] reads
         [traveling]/[at] from worker domains during a trace window
         (windows never overlap coordinator events, so the values are
         stable; the atomic removes the data race the memory model
         would otherwise flag). Always write [at] before clearing
         [traveling]. *)
  mutable arrival_k : (unit -> unit) option;
}

and manager = {
  eng : Engine.t;
  agents : (int, t) Hashtbl.t;
  mutable next_agent : int;
}

let var_refs a = Util.hashtbl_values a.vars

(* Re-establish the agent's retention pin after any variable change. *)
let repin a =
  let s = Engine.site a.mgr.eng a.at in
  (match a.pin_token with Some tok -> Site.unpin s ~token:tok | None -> ());
  match var_refs a with
  | [] -> a.pin_token <- None
  | refs ->
      let tok = Engine.fresh_token a.mgr.eng in
      Site.pin s ~token:tok refs;
      a.pin_token <- Some tok

let manager eng =
  let mgr = { eng; agents = Hashtbl.create 8; next_agent = 0 } in
  Engine.set_agent_arrival eng (fun ~agent ~dst ->
      match Hashtbl.find_opt mgr.agents agent with
      | None -> ()
      | Some a ->
          (* The old site keeps the move pin until the move-ack; drop
             only the agent's own pin there. *)
          (match a.pin_token with
          | Some tok -> Site.unpin (Engine.site eng a.at) ~token:tok
          | None -> ());
          a.pin_token <- None;
          a.at <- dst;
          Atomic.set a.traveling false;
          repin a;
          let k = a.arrival_k in
          a.arrival_k <- None;
          (match k with Some k -> k () | None -> ()));
  Engine.set_extra_roots eng (fun site_id ->
      Hashtbl.fold
        (fun _ a acc ->
          if (not (Atomic.get a.traveling)) && Site_id.equal a.at site_id
          then
            var_refs a @ acc
          else acc)
        mgr.agents []);
  mgr

let spawn mgr ~at =
  let a =
    {
      id = mgr.next_agent;
      mgr;
      at;
      vars = Hashtbl.create 8;
      pin_token = None;
      traveling = Atomic.make false;
      arrival_k = None;
    }
  in
  mgr.next_agent <- mgr.next_agent + 1;
  Hashtbl.add mgr.agents a.id a;
  a

let agent_site a = a.at
let traveling a = Atomic.get a.traveling

let vars a =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) a.vars []
  |> List.sort (fun (x, _) (y, _) -> String.compare x y)

let var a name = Hashtbl.find_opt a.vars name

let fail a reason =
  Metrics.incr (Engine.metrics a.mgr.eng) "mutator.op_failed";
  Metrics.incr (Engine.metrics a.mgr.eng) ("mutator.op_failed." ^ reason);
  false

let ok a =
  Metrics.incr (Engine.metrics a.mgr.eng) "mutator.op";
  true

let set_var a name r =
  Hashtbl.replace a.vars name r;
  repin a

let ready a = not (Atomic.get a.traveling)

let load_root a ~dst =
  if not (ready a) then fail a "traveling"
  else begin
    let s = Engine.site a.mgr.eng a.at in
    match Heap.persistent_roots s.Site.heap with
    | [] -> fail a "no_root"
    | r :: _ ->
        set_var a dst r;
        ok a
  end

let load_root_named a ~root ~dst =
  if not (ready a) then fail a "traveling"
  else begin
    let s = Engine.site a.mgr.eng a.at in
    if List.exists (Oid.equal root) (Heap.persistent_roots s.Site.heap) then begin
      set_var a dst root;
      ok a
    end
    else fail a "no_root"
  end

let new_obj a ~dst =
  if not (ready a) then fail a "traveling"
  else begin
    let s = Engine.site a.mgr.eng a.at in
    let r = Heap.alloc s.Site.heap in
    set_var a dst r;
    ok a
  end

let read_field a ~obj ~idx ~dst =
  if not (ready a) then fail a "traveling"
  else
    match var a obj with
    | None -> fail a "no_var"
    | Some o ->
        if not (Site_id.equal (Oid.site o) a.at) then fail a "remote_obj"
        else begin
          let s = Engine.site a.mgr.eng a.at in
          match Heap.find s.Site.heap o with
          | None -> fail a "dead_obj"
          | Some obj_rec -> (
              match List.nth_opt obj_rec.Heap.fields idx with
              | None -> fail a "no_field"
              | Some r ->
                  set_var a dst r;
                  ok a)
        end

let write a ~obj ~value =
  if not (ready a) then fail a "traveling"
  else
    match (var a obj, var a value) with
    | None, _ | _, None -> fail a "no_var"
    | Some o, Some v ->
        if not (Site_id.equal (Oid.site o) a.at) then fail a "remote_obj"
        else begin
          let s = Engine.site a.mgr.eng a.at in
          if not (Heap.mem s.Site.heap o) then fail a "dead_obj"
          else begin
            Heap.add_field s.Site.heap ~obj:o ~target:v;
            ok a
          end
        end

let unlink a ~obj ~target =
  if not (ready a) then fail a "traveling"
  else
    match (var a obj, var a target) with
    | None, _ | _, None -> fail a "no_var"
    | Some o, Some v ->
        if not (Site_id.equal (Oid.site o) a.at) then fail a "remote_obj"
        else begin
          let s = Engine.site a.mgr.eng a.at in
          if Heap.remove_field s.Site.heap ~obj:o ~target:v then ok a
          else fail a "no_field"
        end

let drop a name =
  if not (ready a) then fail a "traveling"
  else if Hashtbl.mem a.vars name then begin
    Hashtbl.remove a.vars name;
    repin a;
    ok a
  end
  else fail a "no_var"

let copy_var a ~src ~dst =
  if not (ready a) then fail a "traveling"
  else
    match var a src with
    | None -> fail a "no_var"
    | Some r ->
        set_var a dst r;
        ok a

let travel a ~via ~k =
  if not (ready a) then fail a "traveling"
  else
    match var a via with
    | None -> fail a "no_var"
    | Some r ->
        let dst = Oid.site r in
        a.arrival_k <- Some k;
        if Site_id.equal dst a.at then begin
          (* Traversal within the site: no transfer, run k now. *)
          a.arrival_k <- None;
          k ();
          ok a
        end
        else begin
          Atomic.set a.traveling true;
          Engine.move_agent a.mgr.eng ~agent:a.id ~src:a.at ~dst
            ~refs:(var_refs a);
          ok a
        end

type instr =
  | Load_root of string
  | Load_root_named of Oid.t * string
  | New of string
  | Read of { obj : string; idx : int; dst : string }
  | Write of { obj : string; value : string }
  | Unlink of { obj : string; target : string }
  | Copy of { src : string; dst : string }
  | Travel of string
  | Drop of string
  | Wait of Sim_time.t

let run_program a ?(on_done = fun () -> ()) prog =
  let rec step = function
    | [] -> on_done ()
    | i :: rest -> begin
        match i with
        | Load_root dst ->
            ignore (load_root a ~dst);
            step rest
        | Load_root_named (root, dst) ->
            ignore (load_root_named a ~root ~dst);
            step rest
        | New dst ->
            ignore (new_obj a ~dst);
            step rest
        | Read { obj; idx; dst } ->
            ignore (read_field a ~obj ~idx ~dst);
            step rest
        | Write { obj; value } ->
            ignore (write a ~obj ~value);
            step rest
        | Unlink { obj; target } ->
            ignore (unlink a ~obj ~target);
            step rest
        | Copy { src; dst } ->
            ignore (copy_var a ~src ~dst);
            step rest
        | Drop v ->
            ignore (drop a v);
            step rest
        | Travel via ->
            if not (travel a ~via ~k:(fun () -> step rest)) then step rest
        | Wait d -> Engine.schedule a.mgr.eng ~delay:d (fun () -> step rest)
      end
  in
  step prog
