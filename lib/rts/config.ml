open Dgc_simcore

type check_level = Check_off | Check_final | Check_step

let check_level_name = function
  | Check_off -> "off"
  | Check_final -> "final"
  | Check_step -> "step"

type t = {
  n_sites : int;
  seed : int;
  trace_interval : Sim_time.t;
  trace_jitter : Sim_time.t;
  trace_duration : Sim_time.t;
  latency : Latency.t;
  ext_drop : float;
  ext_dup : float;
  retry_limit : int;
  retry_backoff : float;
  defer_interval : Sim_time.t;
  delta : int;
  threshold2 : int;
  threshold_bump : int;
  back_call_timeout : Sim_time.t;
  visited_ttl : Sim_time.t;
  max_trace_starts : int;
  adaptive_threshold : bool;
  enable_transfer_barrier : bool;
  enable_clean_rule : bool;
  enable_insert_barrier : bool;
  enable_timeouts : bool;
  oracle_checks : bool;
  check_level : check_level;
  sanitize : bool;
  journal_capacity : int;
  flight_capacity : int;
  profile : bool;
      (** attach the deterministic sim-cost profiler + cost ledger;
          draws no randomness, so schedules are event-identical either
          way *)
  shards : int;
  domains : int;
}

let default =
  {
    n_sites = 4;
    seed = 42;
    trace_interval = Sim_time.of_minutes 1.;
    trace_jitter = Sim_time.of_seconds 5.;
    trace_duration = Sim_time.of_seconds 2.;
    latency = Latency.Uniform (Sim_time.of_millis 1., Sim_time.of_millis 10.);
    ext_drop = 0.;
    ext_dup = 0.;
    retry_limit = 0;
    retry_backoff = 2.;
    defer_interval = Sim_time.zero;
    delta = 3;
    threshold2 = 8;
    threshold_bump = 6;
    back_call_timeout = Sim_time.of_seconds 10.;
    visited_ttl = Sim_time.of_seconds 30.;
    max_trace_starts = 4;
    adaptive_threshold = false;
    enable_transfer_barrier = true;
    enable_clean_rule = true;
    enable_insert_barrier = true;
    enable_timeouts = true;
    oracle_checks = true;
    check_level = Check_final;
    sanitize = false;
    journal_capacity = 2048;
    flight_capacity = 32768;
    profile = false;
    shards = 1;
    domains = 1;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>sites=%d seed=%d Δ=%d Δ2=%d bump=%d interval=%a window=%a \
     latency=%a drop=%.2f dup=%.2f retries=%d barriers(t=%b,c=%b,i=%b) \
     checks=%s shards=%d domains=%d@]"
    t.n_sites t.seed t.delta t.threshold2 t.threshold_bump Sim_time.pp
    t.trace_interval Sim_time.pp t.trace_duration Latency.pp t.latency
    t.ext_drop t.ext_dup t.retry_limit t.enable_transfer_barrier
    t.enable_clean_rule t.enable_insert_barrier
    (check_level_name t.check_level)
    t.shards t.domains
