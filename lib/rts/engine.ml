open Dgc_prelude
open Dgc_simcore
open Dgc_heap
module Tel = Dgc_telemetry
module Prof = Dgc_profile.Profile

type move_wait = {
  mutable remaining : int;
  reply_to : Site_id.t;
  wait_since : Sim_time.t;  (** insert-barrier stall start (§6.1.2) *)
}

(* Sanitizer hooks (dgc-san). When installed, the engine piggybacks an
   opaque capsule (minted by [san_send]) on every payload so the
   sanitizer can carry vector clocks from send to delivery, reports
   the fate of every copy (delivered, dropped, duplicated), and labels
   §4.6 timers. When absent — the default — none of these are called,
   no capsule state exists, and the event/rng stream is bit-identical
   to a build without the hooks. *)
type san_hooks = {
  san_send : src:Site_id.t -> dst:Site_id.t -> Protocol.payload -> int;
      (** a logical send: returns the capsule to ride with the payload
          (one in-flight copy is implied) *)
  san_copy : int -> unit;  (** another in-flight copy (dup channel) *)
  san_dropped : int -> reason:string -> unit;
      (** one copy destroyed without delivery *)
  san_deliver :
    src:Site_id.t -> dst:Site_id.t -> capsule:int -> Protocol.payload -> unit;
  san_timer_armed : site:Site_id.t -> key:string -> at:Sim_time.t -> int;
  san_timer_fired : int -> unit;
}

type t = {
  cfg : Config.t;
  rng : Rng.t;
  metrics : Metrics.t;
  queue : (unit -> unit) Event_queue.t;
  mutable now : Sim_time.t;
  sites : Site.t array;
  mutable next_token : int;
  mutable next_msg_id : int;
  in_flight : (int, Oid.t list) Hashtbl.t;
  parked :
    (Site_id.t, (Site_id.t * Protocol.payload * int) list ref) Hashtbl.t;
  (* per destination site: (ref being inserted -> waiting move token) *)
  awaiting_insert : (Site_id.t * Oid.t, int) Hashtbl.t;
  move_waits : (int, move_wait) Hashtbl.t;
  mutable agent_arrival : agent:int -> dst:Site_id.t -> unit;
  mutable extra_roots : Site_id.t -> Oid.t list;
  mutable gc_running : bool;
  mutable partition_of : int array;  (** site -> partition group *)
  mutable part_parked : (Site_id.t * Site_id.t * Protocol.payload * int) list;
  (* §4.7 deferral: queued collector messages per (src, dst) pair *)
  defer_queues :
    (Site_id.t * Site_id.t, (Protocol.payload * int) list ref) Hashtbl.t;
  (* chaos fault channels: runtime overrides of the configured Ext
     lossiness/duplication, plus a multiplier on sampled latencies.
     [None]/[1.0] defer to the configuration — the extra randomness is
     only drawn when a channel is actually hot, so runs with the
     channels cold are bit-identical to runs without them. *)
  mutable chaos_drop : float option;
  mutable chaos_dup : float option;
  mutable latency_factor : float;
  mutable journal : Journal.t option;
  mutable tracer : Dgc_telemetry.Tracer.t option;
  mutable flight : Tel.Flight.t option;
  mutable profile : Prof.t option;
  series : Tel.Series.t;
  mutable msg_monitor :
    (phase:[ `Send | `Deliver ] ->
    src:Site_id.t ->
    dst:Site_id.t ->
    Protocol.payload ->
    unit)
    option;
  mutable on_step : (unit -> unit) option;
  mutable step_watchers : (unit -> unit) list;  (** run after [on_step] *)
  mutable sanitizer : san_hooks option;
}

exception Metrics_bucket_mismatch of string

let create cfg =
  let t =
    {
      cfg;
    rng = Rng.create ~seed:cfg.Config.seed;
    metrics = Metrics.create ~sample_cap:4096 ();
    queue = Event_queue.create ();
    now = Sim_time.zero;
    sites = Array.init cfg.Config.n_sites (fun i -> Site.create (Site_id.of_int i));
    next_token = 0;
    next_msg_id = 0;
    in_flight = Hashtbl.create 64;
    parked = Hashtbl.create 8;
    awaiting_insert = Hashtbl.create 16;
    move_waits = Hashtbl.create 16;
    agent_arrival = (fun ~agent:_ ~dst:_ -> ());
    extra_roots = (fun _ -> []);
    gc_running = false;
    partition_of = Array.make cfg.Config.n_sites 0;
    part_parked = [];
    defer_queues = Hashtbl.create 16;
      chaos_drop = None;
      chaos_dup = None;
      latency_factor = 1.0;
      journal = None;
      tracer = None;
      flight = None;
      profile = None;
      series = Tel.Series.create ();
      msg_monitor = None;
      on_step = None;
      step_watchers = [];
      sanitizer = None;
    }
  in
  (* A ?buckets spec that disagrees with a histogram's existing bounds
     is a measurement bug: fail fast under the per-step sanitizer,
     otherwise leave a Warn in the journal. *)
  Metrics.set_on_bucket_mismatch t.metrics (fun msg ->
      if cfg.Config.check_level = Config.Check_step then
        raise (Metrics_bucket_mismatch msg)
      else
        match t.journal with
        | Some j ->
            Journal.recordf j ~level:Journal.Warn ~at:t.now ~cat:"metrics"
              "%s" msg
        | None -> ());
  t

let set_msg_monitor t f = t.msg_monitor <- Some f
let clear_msg_monitor t = t.msg_monitor <- None
let set_on_step t f = t.on_step <- Some f
let clear_on_step t = t.on_step <- None

let add_step_watcher t f = t.step_watchers <- t.step_watchers @ [ f ]
let set_sanitizer t h = t.sanitizer <- Some h
let clear_sanitizer t = t.sanitizer <- None
let sanitizing t = t.sanitizer <> None

let san_send t ~src ~dst payload =
  match t.sanitizer with
  | Some h -> h.san_send ~src ~dst payload
  | None -> -1

let san_copy t capsule =
  match t.sanitizer with Some h -> h.san_copy capsule | None -> ()

let san_dropped t capsule ~reason =
  match t.sanitizer with
  | Some h -> h.san_dropped capsule ~reason
  | None -> ()

let san_deliver t ~src ~dst ~capsule payload =
  match t.sanitizer with
  | Some h -> h.san_deliver ~src ~dst ~capsule payload
  | None -> ()

let monitor_msg t ~phase ~src ~dst payload =
  (match t.flight with
  | Some f ->
      let kind, site =
        match phase with
        | `Send -> (Tel.Flight.Send, src)
        | `Deliver -> (Tel.Flight.Deliver, dst)
      in
      Tel.Flight.record f ~site:(Site_id.to_int site)
        ~at:(Sim_time.to_seconds t.now) ~kind ~a:(Site_id.to_int src)
        ~b:(Site_id.to_int dst) ~tag:(Protocol.kind payload) ()
  | None -> ());
  match t.msg_monitor with
  | Some f -> f ~phase ~src ~dst payload
  | None -> ()

let now_s t = Sim_time.to_seconds t.now

(* Mirror journal entries and span edges into the flight recorder's
   rings. Wired whenever both halves are attached (in either order). *)
let wire_flight t =
  match t.flight with
  | None -> ()
  | Some f ->
      (match t.journal with
      | Some j ->
          Journal.set_on_record j (fun e ->
              Tel.Flight.record f ~site:(-1)
                ~at:(Sim_time.to_seconds e.Journal.at) ~kind:Tel.Flight.Journal
                ~a:(Journal.level_rank e.Journal.level) ~tag:e.Journal.cat
                ~payload:e.Journal.text ())
      | None -> ());
      (match t.tracer with
      | Some tr ->
          let span_edge kind (sp : Tel.Tracer.span) =
            let b =
              match kind with
              | Tel.Flight.Span_start ->
                  Option.value ~default:(-1) sp.Tel.Tracer.parent
              | _ ->
                  if List.mem_assoc "aborted" sp.Tel.Tracer.attrs then 1 else 0
            in
            let at =
              match kind with
              | Tel.Flight.Span_start -> sp.Tel.Tracer.start
              | _ -> Option.value ~default:sp.Tel.Tracer.start sp.Tel.Tracer.finish
            in
            Tel.Flight.record f ~site:sp.Tel.Tracer.site ~at ~kind
              ~a:sp.Tel.Tracer.id ~b ~tag:sp.Tel.Tracer.name
              ~payload:sp.Tel.Tracer.trace ()
          in
          Tel.Tracer.set_span_hooks tr
            ~on_start:(span_edge Tel.Flight.Span_start)
            ~on_finish:(span_edge Tel.Flight.Span_end)
      | None -> ())

let attach_journal t j =
  t.journal <- Some j;
  wire_flight t

let journal t = t.journal

let attach_tracer t tr =
  t.tracer <- Some tr;
  wire_flight t

let tracer t = t.tracer

let attach_flight t f =
  t.flight <- Some f;
  wire_flight t

let flight t = t.flight

let attach_profile t p = t.profile <- Some p
let profile t = t.profile

(* Work-unit attribution to the profiler's innermost open scope; a
   single [match] when no profiler is attached, so the off path costs
   nothing and — since the profiler draws no randomness and schedules
   no events — the schedule is identical either way. *)
let profile_work t u n =
  match t.profile with None -> () | Some p -> Prof.work p u n

let series t = t.series

let series_add t name n = Tel.Series.add t.series name ~at:(now_s t) n
let series_incr t name = Tel.Series.incr t.series name ~at:(now_s t)
let series_set t name v = Tel.Series.set t.series name ~at:(now_s t) v

let flight_drop t ~src ~dst ~reason payload =
  match t.flight with
  | None -> ()
  | Some f ->
      Tel.Flight.record f ~site:(Site_id.to_int src) ~at:(now_s t)
        ~kind:Tel.Flight.Drop ~a:(Site_id.to_int src) ~b:(Site_id.to_int dst)
        ~tag:(Protocol.kind payload) ~payload:reason ()

let flight_fault t ~tag detail =
  match t.flight with
  | None -> ()
  | Some f ->
      Tel.Flight.record f ~site:(-1) ~at:(now_s t) ~kind:Tel.Flight.Fault ~tag
        ~payload:detail ()

let jlog t ?level ~cat fmt =
  match t.journal with
  | Some j -> Journal.recordf j ?level ~at:t.now ~cat fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let set_chaos_drop t p = t.chaos_drop <- p
let set_chaos_dup t p = t.chaos_dup <- p
let set_latency_factor t f = t.latency_factor <- Float.max 0. f
let ext_drop_p t = match t.chaos_drop with Some p -> p | None -> t.cfg.Config.ext_drop
let ext_dup_p t = match t.chaos_dup with Some p -> p | None -> t.cfg.Config.ext_dup

let sample_latency t =
  let l = Latency.sample t.rng t.cfg.Config.latency in
  if t.latency_factor = 1.0 then l
  else Sim_time.of_seconds (Sim_time.to_seconds l *. t.latency_factor)

let config t = t.cfg
let sites t = t.sites
let site t id = t.sites.(Site_id.to_int id)
let now t = t.now
let rng t = t.rng
let metrics t = t.metrics

(* Snapshot the flight rings into a dgc.flight/1 document. Dangling
   spans are closed first with synthetic [aborted] ends so the span
   edges in the ring (and any later Perfetto export) are complete. *)
let dump_flight t ~reason =
  match t.flight with
  | None -> None
  | Some f ->
      (match t.tracer with
      | Some tr ->
          let n = Tel.Tracer.abort_open tr ~at:(now_s t) in
          if n > 0 then Metrics.add t.metrics "tracer.aborted_spans" n
      | None -> ());
      Some (Tel.Flight.to_json (Tel.Flight.dump f ~reason ~at:(now_s t)))

(* [?san] labels the scheduled closure as a protocol timer for the
   sanitizer: the thunk (forced only when a sanitizer is installed)
   names the owning site and a stable key, so the lost-trace detector
   can see that a continuation path is still armed. Plain closures
   (mutator steps, trace schedule ticks) stay unlabeled. *)
let schedule t ?san ~delay f =
  let at = Sim_time.add t.now delay in
  let f =
    match (t.sanitizer, san) with
    | Some h, Some info ->
        let site, key = info () in
        let id = h.san_timer_armed ~site ~key ~at in
        fun () ->
          h.san_timer_fired id;
          f ()
    | _ -> f
  in
  Event_queue.push t.queue ~at f

let fresh_token t =
  let tok = t.next_token in
  t.next_token <- tok + 1;
  tok

let set_agent_arrival t f = t.agent_arrival <- f
let set_extra_roots t f = t.extra_roots <- f

let reachable t a b =
  t.partition_of.(Site_id.to_int a) = t.partition_of.(Site_id.to_int b)

let app_roots t id =
  t.extra_roots id @ Site.pinned_local_roots (site t id)

let in_flight_refs t =
  let flying = Hashtbl.fold (fun _ refs acc -> refs @ acc) t.in_flight [] in
  let part =
    List.concat_map
      (fun (_, _, p, _) -> Protocol.refs_carried p)
      t.part_parked
  in
  Hashtbl.fold
    (fun _ msgs acc ->
      List.fold_left
        (fun acc (_, p, _) -> Protocol.refs_carried p @ acc)
        acc !msgs)
    t.parked (part @ flying)

(* --- delivery ------------------------------------------------------- *)

(* The base-protocol receiver, written as a {!Protocol.handlers}
   dispatch table: one handler per constructor, with the single
   exhaustive match living in [Protocol.dispatch]. The context is
   (engine, receiving site id). *)

let rec base_handlers =
  {
    Protocol.h_move =
      (fun (t, dst) ~src ~agent ~refs ~token ->
        let s = site t dst in
        let needed = ref 0 in
        List.iter
          (fun r ->
            (match Site.fresh_outref_of_arrival s r with
            | `Local | `Known -> ()
            | `Created ->
                incr needed;
                Hashtbl.replace t.awaiting_insert (dst, r) token;
                send t ~src:dst ~dst:(Oid.site r)
                  (Protocol.Insert { r; by = dst }));
            (* §6.1 barrier point: the reference arrived at this site. *)
            s.Site.hooks.h_ref_arrived r)
          refs;
        t.agent_arrival ~agent ~dst;
        if !needed = 0 then
          send t ~src:dst ~dst:src (Protocol.Move_ack { token })
        else
          Hashtbl.replace t.move_waits token
            { remaining = !needed; reply_to = src; wait_since = t.now });
    h_move_ack =
      (fun (t, dst) ~src:_ ~token -> Site.unpin (site t dst) ~token);
    h_insert =
      (fun (t, dst) ~src:_ ~r ~by ->
        let s = site t dst in
        let ir = Tables.ensure_inref s.Site.tables r in
        (* A brand-new source is conservatively at distance 1 (§3); a
           brand-new inref is stamped with its creation time (used by
           the Hughes baseline's timestamps). *)
        if ir.Ioref.ir_sources = [] then
          ir.Ioref.ir_ts <- Sim_time.to_seconds t.now;
        Ioref.add_source ir by ~dist:1;
        (* §6.1.2 case 4: the transfer barrier applies to inref z. *)
        s.Site.hooks.h_ref_arrived r;
        send t ~src:dst ~dst:by (Protocol.Insert_done { r }));
    h_insert_done =
      (fun (t, dst) ~src:_ ~r ->
        let s = site t dst in
        (* Release the insert pin taken when the outref was created. *)
        (match Tables.find_outref s.Site.tables r with
        | Some o -> o.Ioref.or_pins <- max 0 (o.Ioref.or_pins - 1)
        | None -> ());
        match Hashtbl.find_opt t.awaiting_insert (dst, r) with
        | None -> ()
        | Some token -> (
            Hashtbl.remove t.awaiting_insert (dst, r);
            match Hashtbl.find_opt t.move_waits token with
            | None -> ()
            | Some w ->
                w.remaining <- w.remaining - 1;
                if w.remaining = 0 then begin
                  Hashtbl.remove t.move_waits token;
                  let stall_ms =
                    1000.
                    *. Sim_time.to_seconds (Sim_time.sub t.now w.wait_since)
                  in
                  Metrics.hist_observe t.metrics "barrier.move_stall_ms"
                    stall_ms;
                  Metrics.hist_observe t.metrics
                    (Site.metric_label (site t dst) "barrier.move_stall_ms")
                    stall_ms;
                  send t ~src:dst ~dst:w.reply_to (Protocol.Move_ack { token })
                end));
    h_update =
      (fun (t, dst) ~src ~removals ~dists ->
        let s = site t dst in
        let on_inref r f =
          match Tables.find_inref s.Site.tables r with
          | Some ir -> f ir
          | None -> ()
        in
        List.iter
          (fun r ->
            on_inref r (fun ir ->
                Ioref.remove_source ir src;
                if ir.Ioref.ir_sources = [] then
                  Tables.remove_inref s.Site.tables r))
          removals;
        List.iter
          (fun (r, d) ->
            on_inref r (fun ir -> Ioref.set_source_dist ir src ~dist:d))
          dists);
    h_ext =
      (fun (t, dst) ~src e -> (site t dst).Site.hooks.h_ext ~src e);
  }

(* [san_deliver] runs before dispatch: the receiver's clock must join
   the capsule first so any message the handler sends in response is
   causally after this delivery. *)
and deliver t ~src ~dst ~capsule payload =
  monitor_msg t ~phase:`Deliver ~src ~dst payload;
  san_deliver t ~src ~dst ~capsule payload;
  (* Per-handler dispatch scope: everything a handler does — including
     the sends and frames it causes — lands under deliver;<kind>. *)
  match t.profile with
  | None -> Protocol.dispatch base_handlers (t, dst) ~src payload
  | Some p ->
      Prof.with_scope p "deliver" (fun () ->
          Prof.with_scope p (Protocol.kind payload) (fun () ->
              Prof.work p "deliveries" 1;
              Prof.work p "bytes_delivered" (Protocol.approx_bytes payload);
              Protocol.dispatch base_handlers (t, dst) ~src payload))

(* --- sending -------------------------------------------------------- *)

(* A parked Move or Move_ack stalls the §6.1.2 insert barrier: the
   sender keeps its pins until the ack lands, which can starve mutators
   for the whole partition/outage. Journal the cause so the watchdog's
   starvation verdicts can name it, and count it for the campaigns. *)
and note_move_stalled t ~why payload =
  match payload with
  | Protocol.Move { token; _ } ->
      Metrics.incr t.metrics "barrier.move_stalled";
      jlog t ~level:Journal.Warn ~cat:"barrier"
        "move (token %d) parked by %s: insert barrier stalled" token why
  | Protocol.Move_ack { token } ->
      Metrics.incr t.metrics "barrier.move_stalled";
      jlog t ~level:Journal.Warn ~cat:"barrier"
        "move-ack (token %d) parked by %s: sender pins held" token why
  | _ -> ()

and send_now t ~src ~dst ~capsule payload =
  let kind = Protocol.kind payload in
  let bytes = Protocol.approx_bytes payload in
  Metrics.incr t.metrics ("msg." ^ kind);
  Metrics.incr t.metrics "msg.total";
  Metrics.add t.metrics "msg.bytes" bytes;
  profile_work t "msgs_sent" 1;
  profile_work t "bytes_sent" bytes;
  Metrics.hist_observe t.metrics ("msg.size." ^ kind) (float_of_int bytes);
  let dst_site = site t dst in
  let is_ext = Protocol.is_ext payload in
  if is_ext && dst_site.Site.crashed then begin
    Metrics.incr t.metrics "msg.dropped.crashed";
    flight_drop t ~src ~dst ~reason:"crashed" payload;
    san_dropped t capsule ~reason:"crashed"
  end
  else if is_ext && not (reachable t src dst) then begin
    Metrics.incr t.metrics "msg.dropped.partition";
    flight_drop t ~src ~dst ~reason:"partition" payload;
    san_dropped t capsule ~reason:"partition"
  end
  else if is_ext && Rng.chance t.rng (ext_drop_p t) then begin
    Metrics.incr t.metrics "msg.dropped.lossy";
    flight_drop t ~src ~dst ~reason:"lossy" payload;
    san_dropped t capsule ~reason:"lossy"
  end
  else if not (reachable t src dst) then begin
    note_move_stalled t ~why:"partition" payload;
    t.part_parked <- (src, dst, payload, capsule) :: t.part_parked
  end
  else if dst_site.Site.crashed then begin
    note_move_stalled t ~why:"crash" payload;
    let q =
      match Hashtbl.find_opt t.parked dst with
      | Some q -> q
      | None ->
          let q = ref [] in
          Hashtbl.add t.parked dst q;
          q
    in
    q := (src, payload, capsule) :: !q
  end
  else begin
    let fly () =
      let id = t.next_msg_id in
      t.next_msg_id <- id + 1;
      (match Protocol.refs_carried payload with
      | [] -> ()
      | refs -> Hashtbl.replace t.in_flight id refs);
      let delay = sample_latency t in
      schedule t ~delay (fun () ->
          Hashtbl.remove t.in_flight id;
          if not (reachable t src dst) then begin
            (* Partitioned while the message was in flight. *)
            if is_ext then begin
              Metrics.incr t.metrics "msg.dropped.partition";
              flight_drop t ~src ~dst ~reason:"partition" payload;
              san_dropped t capsule ~reason:"partition"
            end
            else begin
              note_move_stalled t ~why:"partition" payload;
              t.part_parked <- (src, dst, payload, capsule) :: t.part_parked
            end
          end
          else if (site t dst).Site.crashed then begin
            (* Crashed while the message was in flight. *)
            if is_ext then begin
              Metrics.incr t.metrics "msg.dropped.crashed";
              flight_drop t ~src ~dst ~reason:"crashed" payload;
              san_dropped t capsule ~reason:"crashed"
            end
            else begin
              note_move_stalled t ~why:"crash" payload;
              let q =
                match Hashtbl.find_opt t.parked dst with
                | Some q -> q
                | None ->
                    let q = ref [] in
                    Hashtbl.add t.parked dst q;
                    q
              in
              q := (src, payload, capsule) :: !q
            end
          end
          else deliver t ~src ~dst ~capsule payload)
    in
    fly ();
    (* Duplicate-delivery fault channel: a second, independent copy of
       a collector message, with its own latency. Only Ext payloads —
       the base protocol stays exactly-once. The [ext_dup_p t > 0.]
       guard keeps the rng stream untouched when the channel is cold. *)
    if is_ext && ext_dup_p t > 0. && Rng.chance t.rng (ext_dup_p t) then begin
      Metrics.incr t.metrics "msg.duplicated";
      san_copy t capsule;
      fly ()
    end
  end

(* One wire message carrying a whole batch of deferred collector
   messages (§4.7: "deferred and piggybacked"). Per-kind counters still
   see every payload; [msg.total] counts wire messages. *)
and flush_batch t ~src ~dst payloads =
  Metrics.incr t.metrics "msg.total";
  Metrics.incr t.metrics "msg.batches";
  let batch_bytes =
    Dgc_prelude.Util.list_sum (fun (p, _) -> Protocol.approx_bytes p) payloads
  in
  Metrics.add t.metrics "msg.bytes" batch_bytes;
  profile_work t "msgs_sent" (List.length payloads);
  profile_work t "bytes_sent" batch_bytes;
  List.iter
    (fun (p, _) ->
      Metrics.incr t.metrics ("msg." ^ Protocol.kind p);
      Metrics.hist_observe t.metrics
        ("msg.size." ^ Protocol.kind p)
        (float_of_int (Protocol.approx_bytes p)))
    payloads;
  let drop_all reason =
    List.iter
      (fun (p, c) ->
        flight_drop t ~src ~dst ~reason p;
        san_dropped t c ~reason)
      payloads
  in
  if (site t dst).Site.crashed || not (reachable t src dst) then begin
    Metrics.add t.metrics "msg.dropped.crashed" (List.length payloads);
    drop_all "crashed"
  end
  else if Rng.chance t.rng (ext_drop_p t) then begin
    Metrics.add t.metrics "msg.dropped.lossy" (List.length payloads);
    drop_all "lossy"
  end
  else begin
    let fly () =
      let delay = sample_latency t in
      schedule t ~delay (fun () ->
          if reachable t src dst && not (site t dst).Site.crashed then
            List.iter
              (fun (p, capsule) -> deliver t ~src ~dst ~capsule p)
              payloads
          else begin
            Metrics.add t.metrics "msg.dropped.crashed"
              (List.length payloads);
            drop_all "crashed"
          end)
    in
    fly ();
    (* Whole-batch duplication: deferred collector batches are one wire
       message, so the fault channel duplicates the wire message. *)
    if ext_dup_p t > 0. && Rng.chance t.rng (ext_dup_p t) then begin
      Metrics.add t.metrics "msg.duplicated" (List.length payloads);
      List.iter (fun (_, c) -> san_copy t c) payloads;
      fly ()
    end
  end

and send t ~src ~dst payload =
  monitor_msg t ~phase:`Send ~src ~dst payload;
  let capsule = san_send t ~src ~dst payload in
  let defer = t.cfg.Config.defer_interval in
  if Protocol.is_ext payload && Sim_time.compare defer Sim_time.zero > 0
  then begin
    let key = (src, dst) in
    match Hashtbl.find_opt t.defer_queues key with
    | Some q -> q := (payload, capsule) :: !q
    | None ->
        let q = ref [ (payload, capsule) ] in
        Hashtbl.add t.defer_queues key q;
        schedule t ~delay:defer (fun () ->
            match Hashtbl.find_opt t.defer_queues key with
            | None -> ()
            | Some q ->
                Hashtbl.remove t.defer_queues key;
                flush_batch t ~src ~dst (List.rev !q))
  end
  else send_now t ~src ~dst ~capsule payload

(* --- mutator moves --------------------------------------------------- *)

let move_agent t ~agent ~src ~dst ~refs =
  if Site_id.equal src dst then t.agent_arrival ~agent ~dst
  else begin
    let token = fresh_token t in
    (* Retain everything we carry until the destination has registered
       it (move-ack): the insert barrier, §6.1.2. *)
    Site.pin (site t src) ~token refs;
    send t ~src ~dst (Protocol.Move { agent; refs; token })
  end

(* --- fault injection -------------------------------------------------- *)

let partition t groups =
  flight_fault t ~tag:"partition" (Printf.sprintf "%d groups" (List.length groups));
  jlog t ~level:Journal.Warn ~cat:"fault" "partition into %d groups" (List.length groups);
  let parts = Array.make (Array.length t.sites) (List.length groups) in
  List.iteri
    (fun g members ->
      List.iter (fun s -> parts.(Site_id.to_int s) <- g) members)
    groups;
  t.partition_of <- parts;
  Metrics.incr t.metrics "fault.partition"

(* Deliver a previously parked base message; if the destination is
   unavailable again when it lands, re-park it rather than lose it —
   the base protocol must be reliable. *)
let redeliver_parked t ~src ~dst ~capsule payload =
  let delay = sample_latency t in
  schedule t ~delay (fun () ->
      if not (reachable t src dst) then begin
        note_move_stalled t ~why:"partition" payload;
        t.part_parked <- (src, dst, payload, capsule) :: t.part_parked
      end
      else if (site t dst).Site.crashed then begin
        note_move_stalled t ~why:"crash" payload;
        let q =
          match Hashtbl.find_opt t.parked dst with
          | Some q -> q
          | None ->
              let q = ref [] in
              Hashtbl.add t.parked dst q;
              q
        in
        q := (src, payload, capsule) :: !q
      end
      else deliver t ~src ~dst ~capsule payload)

let heal t =
  flight_fault t ~tag:"heal" "";
  jlog t ~level:Journal.Warn ~cat:"fault" "heal";
  t.partition_of <- Array.make (Array.length t.sites) 0;
  Metrics.incr t.metrics "fault.heal";
  let parked = List.rev t.part_parked in
  t.part_parked <- [];
  List.iter
    (fun (src, dst, payload, capsule) ->
      redeliver_parked t ~src ~dst ~capsule payload)
    parked

let crash t id =
  flight_fault t ~tag:"crash" (string_of_int (Site_id.to_int id));
  jlog t ~level:Journal.Warn ~cat:"fault" "crash %a" Site_id.pp id;
  (site t id).Site.crashed <- true;
  Metrics.incr t.metrics "fault.crash"

let recover t id =
  flight_fault t ~tag:"recover" (string_of_int (Site_id.to_int id));
  jlog t ~level:Journal.Warn ~cat:"fault" "recover %a" Site_id.pp id;
  let s = site t id in
  if s.Site.crashed then begin
    s.Site.crashed <- false;
    Metrics.incr t.metrics "fault.recover";
    match Hashtbl.find_opt t.parked id with
    | None -> ()
    | Some q ->
        let msgs = List.rev !q in
        Hashtbl.remove t.parked id;
        List.iter
          (fun (src, payload, capsule) ->
            redeliver_parked t ~src ~dst:id ~capsule payload)
          msgs
  end

(* --- GC schedule ------------------------------------------------------ *)

let rec schedule_site_trace t id =
  let cfg = t.cfg in
  let jitter =
    if Sim_time.compare cfg.Config.trace_jitter Sim_time.zero <= 0 then
      Sim_time.zero
    else Rng.float t.rng (Sim_time.to_seconds cfg.Config.trace_jitter)
  in
  let delay = Sim_time.add cfg.Config.trace_interval jitter in
  schedule t ~delay (fun () ->
      if t.gc_running then begin
        let s = site t id in
        if not s.Site.crashed then s.Site.hooks.h_run_local_trace ();
        schedule_site_trace t id
      end)

let start_gc_schedule t =
  if not t.gc_running then begin
    t.gc_running <- true;
    Array.iteri
      (fun i _ ->
        let id = Site_id.of_int i in
        (* Stagger the first trace of each site across one interval. *)
        let frac =
          Sim_time.to_seconds t.cfg.Config.trace_interval
          *. (float_of_int (i + 1) /. float_of_int (Array.length t.sites + 1))
        in
        schedule t ~delay:(Sim_time.of_seconds frac) (fun () ->
            if t.gc_running then begin
              let s = site t id in
              if not s.Site.crashed then s.Site.hooks.h_run_local_trace ();
              schedule_site_trace t id
            end))
      t.sites
  end

let stop_gc_schedule t = t.gc_running <- false

(* --- run loop --------------------------------------------------------- *)

let step_nth t n =
  match Event_queue.pop_nth t.queue n with
  | None -> false
  | Some (at, f) ->
      (* Deviating to a later-scheduled event must not move time
         backwards when the skipped earlier events eventually run. *)
      if Sim_time.compare at t.now > 0 then t.now <- at;
      profile_work t "events" 1;
      f ();
      (match t.on_step with Some h -> h () | None -> ());
      List.iter (fun w -> w ()) t.step_watchers;
      true

let step t = step_nth t 0
let pending t = Event_queue.length t.queue
let peek_time t = Event_queue.peek_time t.queue
let nth_time t n = Event_queue.nth_time t.queue n

let run_until t limit =
  let rec loop () =
    match Event_queue.peek_time t.queue with
    | Some at when Sim_time.(at <= limit) ->
        ignore (step t);
        loop ()
    | _ -> t.now <- limit
  in
  loop ()

let run_for t d = run_until t (Sim_time.add t.now d)

let trace_rounds_completed t =
  Array.fold_left (fun acc s -> min acc s.Site.trace_epoch) max_int t.sites
