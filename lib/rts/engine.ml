open Dgc_prelude
open Dgc_simcore
open Dgc_heap
module Tel = Dgc_telemetry
module Prof = Dgc_profile.Profile

type move_wait = {
  mutable remaining : int;
  reply_to : Site_id.t;
  wait_since : Sim_time.t;  (** insert-barrier stall start (§6.1.2) *)
}

(* Sanitizer hooks (dgc-san). When installed, the engine piggybacks an
   opaque capsule (minted by [san_send]) on every payload so the
   sanitizer can carry vector clocks from send to delivery, reports
   the fate of every copy (delivered, dropped, duplicated), and labels
   §4.6 timers. When absent — the default — none of these are called,
   no capsule state exists, and the event/rng stream is bit-identical
   to a build without the hooks. *)
type san_hooks = {
  san_send : src:Site_id.t -> dst:Site_id.t -> Protocol.payload -> int;
      (** a logical send: returns the capsule to ride with the payload
          (one in-flight copy is implied) *)
  san_copy : int -> unit;  (** another in-flight copy (dup channel) *)
  san_dropped : int -> reason:string -> unit;
      (** one copy destroyed without delivery *)
  san_deliver :
    src:Site_id.t -> dst:Site_id.t -> capsule:int -> Protocol.payload -> unit;
  san_timer_armed : site:Site_id.t -> key:string -> at:Sim_time.t -> int;
  san_timer_fired : int -> unit;
}

(* A collector message crossing a shard boundary inside a window: the
   sender buffers it here (with the latency already sampled from its
   own lane) and the coordinator integrates all outboxes at the next
   barrier, globally sorted by (arrival, sender shard, sender seq) —
   a deterministic merge independent of domain interleaving. *)
type outmsg = {
  om_at : Sim_time.t;
  om_src_shard : int;
  om_seq : int;
  om_dst_shard : int;
  om_refs : Oid.t list;
  om_run : unit -> unit;
}

type t = {
  cfg : Config.t;
  rng : Rng.t;
  metrics : Metrics.t;
  queue : (unit -> unit) Event_queue.t;
  mutable now : Sim_time.t;
  sites : Site.t array;
  (* --- sharding (Config.shards > 1) ---------------------------------
     A sharded engine is one facade record (the coordinator: owns the
     global barrier queue, the canonical chaos/fault state and the
     worker pool) plus [cfg.shards] shard records sharing [sites] and
     [cfg] but owning their own queue, RNG lane, metrics, series,
     journal and flight buffers. Classic engines ([shards = 1]) keep
     every one of these fields inert: [shard_id = -1], [shards = [||]],
     [master = None], and id minting strides by 1 from residue 0 —
     byte-identical to the pre-sharding engine. *)
  mutable shards : t array;  (** facade: the shard records *)
  shard_id : int;  (** [>= 0] in shard records, [-1] otherwise *)
  mutable master : t option;  (** shard records: the facade *)
  shard_of : int array;  (** site -> owning shard (facade) *)
  outbox : outmsg list ref;
  mutable out_seq : int;
  barrier_q : (unit -> unit) Queue.t;
  id_stride : int;  (** token/msg ids advance by this; residue at birth *)
  mutable pool : Domain_pool.t option;
  mutable drained : int;  (** events run in the current window *)
  mutable win_count : int;
  mutable xmsg_count : int;
  mutable max_skew : int;
  mutable next_token : int;
  mutable next_msg_id : int;
  in_flight : (int, Oid.t list) Hashtbl.t;
  parked :
    (Site_id.t, (Site_id.t * Protocol.payload * int) list ref) Hashtbl.t;
  (* per destination site: (ref being inserted -> waiting move token) *)
  awaiting_insert : (Site_id.t * Oid.t, int) Hashtbl.t;
  move_waits : (int, move_wait) Hashtbl.t;
  mutable agent_arrival : agent:int -> dst:Site_id.t -> unit;
  mutable extra_roots : Site_id.t -> Oid.t list;
  mutable gc_running : bool;
  mutable partition_of : int array;  (** site -> partition group *)
  mutable part_parked : (Site_id.t * Site_id.t * Protocol.payload * int) list;
  (* §4.7 deferral: queued collector messages per (src, dst) pair *)
  defer_queues :
    (Site_id.t * Site_id.t, (Protocol.payload * int) list ref) Hashtbl.t;
  (* chaos fault channels: runtime overrides of the configured Ext
     lossiness/duplication, plus a multiplier on sampled latencies.
     [None]/[1.0] defer to the configuration — the extra randomness is
     only drawn when a channel is actually hot, so runs with the
     channels cold are bit-identical to runs without them. *)
  mutable chaos_drop : float option;
  mutable chaos_dup : float option;
  mutable latency_factor : float;
  mutable journal : Journal.t option;
  mutable tracer : Dgc_telemetry.Tracer.t option;
  mutable flight : Tel.Flight.t option;
  mutable profile : Prof.t option;
  series : Tel.Series.t;
  mutable msg_monitor :
    (phase:[ `Send | `Deliver ] ->
    src:Site_id.t ->
    dst:Site_id.t ->
    Protocol.payload ->
    unit)
    option;
  mutable on_step : (unit -> unit) option;
  mutable step_watchers : (unit -> unit) list;  (** run after [on_step] *)
  mutable sanitizer : san_hooks option;
}

exception Metrics_bucket_mismatch of string

(* --- shard context ----------------------------------------------------

   The domain executing a shard's window publishes that shard here, so
   every [Engine] call library code makes during the window — which
   still holds the facade handle — resolves to the executing shard.
   The slot is unset outside windows: calls from the main thread or
   from coordinator (barrier) events act on the facade. *)
let dls_shard : t option ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref None)

let sharded t = Array.length t.shards > 0

(* The record a call should act on: classic engines and shard records
   are already the context; a facade redirects to the shard the
   calling domain is currently executing, if any. *)
let ctx t =
  if not (sharded t) then t
  else match !(Domain.DLS.get dls_shard) with Some s -> s | None -> t

(* The facade of a shard record (itself otherwise): canonical home of
   the fault/chaos state, the mutator hooks and the GC-running flag.
   All of these are written only between windows, so in-window reads
   from any shard are stable and race-free. *)
let root t = match t.master with Some m -> m | None -> t

let all_records t = t :: Array.to_list t.shards

let mk_record cfg ~rng ~sites ~shard_id ~shard_of ~id_stride ~id_residue =
  {
    cfg;
    rng;
    metrics = Metrics.create ~sample_cap:4096 ();
    queue = Event_queue.create ();
    now = Sim_time.zero;
    sites;
    shards = [||];
    shard_id;
    master = None;
    shard_of;
    outbox = ref [];
    out_seq = 0;
    barrier_q = Queue.create ();
    id_stride;
    pool = None;
    drained = 0;
    win_count = 0;
    xmsg_count = 0;
    max_skew = 0;
    next_token = id_residue;
    next_msg_id = id_residue;
    in_flight = Hashtbl.create 64;
    parked = Hashtbl.create 8;
    awaiting_insert = Hashtbl.create 16;
    move_waits = Hashtbl.create 16;
    agent_arrival = (fun ~agent:_ ~dst:_ -> ());
    extra_roots = (fun _ -> []);
    gc_running = false;
    partition_of = Array.make cfg.Config.n_sites 0;
    part_parked = [];
    defer_queues = Hashtbl.create 16;
    chaos_drop = None;
    chaos_dup = None;
    latency_factor = 1.0;
    journal = None;
    tracer = None;
    flight = None;
    profile = None;
    series = Tel.Series.create ();
    msg_monitor = None;
    on_step = None;
    step_watchers = [];
    sanitizer = None;
  }

(* A ?buckets spec that disagrees with a histogram's existing bounds
   is a measurement bug: fail fast under the per-step sanitizer,
   otherwise leave a Warn in the journal. *)
let wire_bucket_mismatch cfg t =
  Metrics.set_on_bucket_mismatch t.metrics (fun msg ->
      if cfg.Config.check_level = Config.Check_step then
        raise (Metrics_bucket_mismatch msg)
      else
        match t.journal with
        | Some j ->
            Journal.recordf j ~level:Journal.Warn ~at:t.now ~cat:"metrics"
              "%s" msg
        | None -> ())

let create cfg =
  let sites =
    Array.init cfg.Config.n_sites (fun i -> Site.create (Site_id.of_int i))
  in
  let nshards = cfg.Config.shards in
  let t =
    if nshards <= 1 then
      (* The classic engine, bit-for-bit: one queue, one rng stream,
         ids striding by 1 from 0. *)
      mk_record cfg
        ~rng:(Rng.create ~seed:cfg.Config.seed)
        ~sites ~shard_id:(-1) ~shard_of:[||] ~id_stride:1 ~id_residue:0
    else begin
      (* Facade + shards. Ids stride by [shards + 1] with a distinct
         residue per minter, so tokens and message ids stay globally
         unique without any cross-record coordination; each shard draws
         from its own seeded rng lane; sites go round-robin. *)
      let stride = nshards + 1 in
      let facade =
        mk_record cfg
          ~rng:(Rng.create ~seed:cfg.Config.seed)
          ~sites ~shard_id:(-1)
          ~shard_of:(Array.init cfg.Config.n_sites (fun i -> i mod nshards))
          ~id_stride:stride ~id_residue:nshards
      in
      facade.shards <-
        Array.init nshards (fun k ->
            let sh =
              mk_record cfg
                ~rng:(Rng.stream ~seed:cfg.Config.seed ~lane:k)
                ~sites ~shard_id:k ~shard_of:[||] ~id_stride:stride
                ~id_residue:k
            in
            sh.master <- Some facade;
            sh);
      facade
    end
  in
  List.iter (wire_bucket_mismatch cfg) (all_records t);
  t

let set_msg_monitor t f =
  if sharded t then
    invalid_arg
      "Engine.set_msg_monitor: not supported on a sharded engine (shards \
       send concurrently; no single observation order exists)";
  t.msg_monitor <- Some f

let clear_msg_monitor t = t.msg_monitor <- None
let set_on_step t f = t.on_step <- Some f
let clear_on_step t = t.on_step <- None

let add_step_watcher t f = t.step_watchers <- t.step_watchers @ [ f ]

let set_sanitizer t h =
  if sharded t then
    invalid_arg
      "Engine.set_sanitizer: not supported on a sharded engine (capsules \
       would be minted concurrently; run dgc-san at shards=1)";
  t.sanitizer <- Some h
let clear_sanitizer t = t.sanitizer <- None
let sanitizing t = t.sanitizer <> None

let san_send t ~src ~dst payload =
  match t.sanitizer with
  | Some h -> h.san_send ~src ~dst payload
  | None -> -1

let san_copy t capsule =
  match t.sanitizer with Some h -> h.san_copy capsule | None -> ()

let san_dropped t capsule ~reason =
  match t.sanitizer with
  | Some h -> h.san_dropped capsule ~reason
  | None -> ()

let san_deliver t ~src ~dst ~capsule payload =
  match t.sanitizer with
  | Some h -> h.san_deliver ~src ~dst ~capsule payload
  | None -> ()

let monitor_msg t ~phase ~src ~dst payload =
  (match t.flight with
  | Some f ->
      let kind, site =
        match phase with
        | `Send -> (Tel.Flight.Send, src)
        | `Deliver -> (Tel.Flight.Deliver, dst)
      in
      Tel.Flight.record f ~site:(Site_id.to_int site)
        ~at:(Sim_time.to_seconds t.now) ~kind ~a:(Site_id.to_int src)
        ~b:(Site_id.to_int dst) ~tag:(Protocol.kind payload) ()
  | None -> ());
  match t.msg_monitor with
  | Some f -> f ~phase ~src ~dst payload
  | None -> ()

let now_s t = Sim_time.to_seconds t.now

(* Mirror journal entries and span edges into the flight recorder's
   rings. Wired whenever both halves are attached (in either order). *)
let wire_flight t =
  match t.flight with
  | None -> ()
  | Some f ->
      (match t.journal with
      | Some j ->
          Journal.set_on_record j (fun e ->
              Tel.Flight.record f ~site:(-1)
                ~at:(Sim_time.to_seconds e.Journal.at) ~kind:Tel.Flight.Journal
                ~a:(Journal.level_rank e.Journal.level) ~tag:e.Journal.cat
                ~payload:e.Journal.text ())
      | None -> ());
      (match t.tracer with
      | Some tr ->
          let span_edge kind (sp : Tel.Tracer.span) =
            let b =
              match kind with
              | Tel.Flight.Span_start ->
                  Option.value ~default:(-1) sp.Tel.Tracer.parent
              | _ ->
                  if List.mem_assoc "aborted" sp.Tel.Tracer.attrs then 1 else 0
            in
            let at =
              match kind with
              | Tel.Flight.Span_start -> sp.Tel.Tracer.start
              | _ -> Option.value ~default:sp.Tel.Tracer.start sp.Tel.Tracer.finish
            in
            Tel.Flight.record f ~site:sp.Tel.Tracer.site ~at ~kind
              ~a:sp.Tel.Tracer.id ~b ~tag:sp.Tel.Tracer.name
              ~payload:sp.Tel.Tracer.trace ()
          in
          Tel.Tracer.set_span_hooks tr
            ~on_start:(span_edge Tel.Flight.Span_start)
            ~on_finish:(span_edge Tel.Flight.Span_end)
      | None -> ())

let attach_journal t j =
  t.journal <- Some j;
  wire_flight t;
  (* Shards journal into private rings of the same capacity; the
     [merged_journal] accessor interleaves them by sim time. *)
  if sharded t then
    Array.iter
      (fun sh ->
        sh.journal <- Some (Journal.create ~capacity:(Journal.capacity j) ());
        wire_flight sh)
      t.shards

let journal t = (ctx t).journal

let jlog t ?level ~cat fmt =
  match t.journal with
  | Some j -> Journal.recordf j ?level ~at:t.now ~cat fmt
  | None -> Format.ikfprintf (fun _ -> ()) Format.str_formatter fmt

let attach_tracer t tr =
  (* Span state is a single mutable web threaded through every frame
     and trace; there is no per-shard split that keeps parent edges
     meaningful, so a sharded engine runs untraced. *)
  if sharded t then
    jlog t ~level:Journal.Warn ~cat:"shard"
      "tracer attach ignored: spans are not supported on a sharded engine"
  else begin
    t.tracer <- Some tr;
    wire_flight t
  end

let tracer t = t.tracer

let attach_flight t f =
  t.flight <- Some f;
  wire_flight t;
  (* Per-shard rings of the same per-site capacity; [dump_flight]
     re-records a merged, sim-time-sorted dump. *)
  if sharded t then
    Array.iter
      (fun sh ->
        sh.flight <-
          Some
            (Tel.Flight.create
               ~capacity:(Tel.Flight.capacity f)
               ~n_sites:(Tel.Flight.n_sites f) ());
        wire_flight sh)
      t.shards

let flight t = (ctx t).flight

let attach_profile t p =
  (* The profiler's scope stack is inherently per-control-flow; its
     cost model is exercised at shards=1. *)
  if sharded t then
    jlog t ~level:Journal.Warn ~cat:"shard"
      "profiler attach ignored: not supported on a sharded engine"
  else t.profile <- Some p

let profile t = t.profile

(* Work-unit attribution to the profiler's innermost open scope; a
   single [match] when no profiler is attached, so the off path costs
   nothing and — since the profiler draws no randomness and schedules
   no events — the schedule is identical either way. *)
let profile_work t u n =
  match t.profile with None -> () | Some p -> Prof.work p u n

let series t = (ctx t).series

let series_add t name n =
  let t = ctx t in
  Tel.Series.add t.series name ~at:(now_s t) n

let series_incr t name =
  let t = ctx t in
  Tel.Series.incr t.series name ~at:(now_s t)

let series_set t name v =
  let t = ctx t in
  Tel.Series.set t.series name ~at:(now_s t) v

let flight_drop t ~src ~dst ~reason payload =
  match t.flight with
  | None -> ()
  | Some f ->
      Tel.Flight.record f ~site:(Site_id.to_int src) ~at:(now_s t)
        ~kind:Tel.Flight.Drop ~a:(Site_id.to_int src) ~b:(Site_id.to_int dst)
        ~tag:(Protocol.kind payload) ~payload:reason ()

let flight_fault t ~tag detail =
  match t.flight with
  | None -> ()
  | Some f ->
      Tel.Flight.record f ~site:(-1) ~at:(now_s t) ~kind:Tel.Flight.Fault ~tag
        ~payload:detail ()

(* Chaos knobs and the latency factor live on the facade (set from
   fault events, which run between windows), so every shard sees one
   coherent value for the whole window. *)
let set_chaos_drop t p = (root t).chaos_drop <- p
let set_chaos_dup t p = (root t).chaos_dup <- p
let set_latency_factor t f = (root t).latency_factor <- Float.max 0. f

let ext_drop_p t =
  let r = root t in
  match r.chaos_drop with Some p -> p | None -> r.cfg.Config.ext_drop

let ext_dup_p t =
  let r = root t in
  match r.chaos_dup with Some p -> p | None -> r.cfg.Config.ext_dup

let sample_latency t =
  let l = Latency.sample t.rng t.cfg.Config.latency in
  let factor = (root t).latency_factor in
  if factor = 1.0 then l
  else Sim_time.of_seconds (Sim_time.to_seconds l *. factor)

let config t = t.cfg
let sites t = t.sites
let site t id = t.sites.(Site_id.to_int id)
let now t = (ctx t).now
let rng t = (ctx t).rng
let metrics t = (ctx t).metrics

(* Snapshot the flight rings into a dgc.flight/1 document. Dangling
   spans are closed first with synthetic [aborted] ends so the span
   edges in the ring (and any later Perfetto export) are complete.

   Sharded engines merge the facade's and every shard's rings first:
   each ring's events are interleaved by (sim time, record rank, ring
   index) — a total order independent of the domain count — and
   re-recorded into a fresh recorder, whose dump is then serialized.
   The merged ring can evict differently from a classic run's (it is
   still one ring per site of the same capacity), but identically
   across runs of the same sharded timeline, which is the bar. *)
let dump_flight t ~reason =
  match t.flight with
  | None -> None
  | Some f ->
      (match t.tracer with
      | Some tr ->
          let n = Tel.Tracer.abort_open tr ~at:(now_s t) in
          if n > 0 then Metrics.add t.metrics "tracer.aborted_spans" n
      | None -> ());
      if not (sharded t) then
        Some (Tel.Flight.to_json (Tel.Flight.dump f ~reason ~at:(now_s t)))
      else begin
        let merged =
          Tel.Flight.create ~capacity:(Tel.Flight.capacity f)
            ~n_sites:(Tel.Flight.n_sites f) ()
        in
        let dumps =
          List.filter_map
            (fun r ->
              match r.flight with
              | Some fl -> Some (Tel.Flight.dump fl ~reason ~at:(now_s t))
              | None -> None)
            (all_records t)
        in
        let events =
          List.concat
            (List.mapi
               (fun rank d ->
                 List.concat_map
                   (fun site ->
                     List.mapi
                       (fun idx ev -> (ev.Tel.Flight.ev_at, rank, idx, site, ev))
                       (Tel.Flight.events d ~site))
                   (Tel.Flight.sites d))
               dumps)
        in
        let events =
          List.sort
            (fun (a1, r1, i1, s1, _) (a2, r2, i2, s2, _) ->
              let c = Float.compare a1 a2 in
              if c <> 0 then c
              else
                let c = Int.compare r1 r2 in
                if c <> 0 then c
                else
                  let c = Int.compare s1 s2 in
                  if c <> 0 then c else Int.compare i1 i2)
            events
        in
        List.iter
          (fun (_, _, _, site, ev) ->
            Tel.Flight.record merged ~site ~at:ev.Tel.Flight.ev_at
              ~kind:ev.Tel.Flight.ev_kind ~a:ev.Tel.Flight.ev_a
              ~b:ev.Tel.Flight.ev_b ~tag:ev.Tel.Flight.ev_tag
              ~payload:ev.Tel.Flight.ev_payload ())
          events;
        Some
          (Tel.Flight.to_json (Tel.Flight.dump merged ~reason ~at:(now_s t)))
      end

(* [?san] labels the scheduled closure as a protocol timer for the
   sanitizer: the thunk (forced only when a sanitizer is installed)
   names the owning site and a stable key, so the lost-trace detector
   can see that a continuation path is still armed. Plain closures
   (mutator steps, trace schedule ticks) stay unlabeled. *)
let schedule t ?san ~delay f =
  let t = ctx t in
  let at = Sim_time.add t.now delay in
  let f =
    match (t.sanitizer, san) with
    | Some h, Some info ->
        let site, key = info () in
        let id = h.san_timer_armed ~site ~key ~at in
        fun () ->
          h.san_timer_fired id;
          f ()
    | _ -> f
  in
  Event_queue.push t.queue ~at f

let fresh_token t =
  let t = ctx t in
  let tok = t.next_token in
  t.next_token <- tok + t.id_stride;
  tok

let set_agent_arrival t f = (root t).agent_arrival <- f
let set_extra_roots t f = (root t).extra_roots <- f

let reachable t a b =
  let r = root t in
  r.partition_of.(Site_id.to_int a) = r.partition_of.(Site_id.to_int b)

let app_roots t id =
  (root t).extra_roots id @ Site.pinned_local_roots (site t id)

let in_flight_refs t =
  let of_record t =
    let flying = Hashtbl.fold (fun _ refs acc -> refs @ acc) t.in_flight [] in
    let part =
      List.concat_map
        (fun (_, _, p, _) -> Protocol.refs_carried p)
        t.part_parked
    in
    let outboxed =
      List.concat_map (fun om -> om.om_refs) !(t.outbox)
    in
    Hashtbl.fold
      (fun _ msgs acc ->
        List.fold_left
          (fun acc (_, p, _) -> Protocol.refs_carried p @ acc)
          acc !msgs)
      t.parked
      (outboxed @ part @ flying)
  in
  List.concat_map of_record (all_records t)

(* --- delivery ------------------------------------------------------- *)

(* The base-protocol receiver, written as a {!Protocol.handlers}
   dispatch table: one handler per constructor, with the single
   exhaustive match living in [Protocol.dispatch]. The context is
   (engine, receiving site id). *)

let rec base_handlers =
  {
    Protocol.h_move =
      (fun (t, dst) ~src ~agent ~refs ~token ->
        let s = site t dst in
        let needed = ref 0 in
        List.iter
          (fun r ->
            (match Site.fresh_outref_of_arrival s r with
            | `Local | `Known -> ()
            | `Created ->
                incr needed;
                Hashtbl.replace t.awaiting_insert (dst, r) token;
                send t ~src:dst ~dst:(Oid.site r)
                  (Protocol.Insert { r; by = dst }));
            (* §6.1 barrier point: the reference arrived at this site. *)
            s.Site.hooks.h_ref_arrived r)
          refs;
        (root t).agent_arrival ~agent ~dst;
        if !needed = 0 then
          send t ~src:dst ~dst:src (Protocol.Move_ack { token })
        else
          Hashtbl.replace t.move_waits token
            { remaining = !needed; reply_to = src; wait_since = t.now });
    h_move_ack =
      (fun (t, dst) ~src:_ ~token -> Site.unpin (site t dst) ~token);
    h_insert =
      (fun (t, dst) ~src:_ ~r ~by ->
        let s = site t dst in
        let ir = Tables.ensure_inref s.Site.tables r in
        (* A brand-new source is conservatively at distance 1 (§3); a
           brand-new inref is stamped with its creation time (used by
           the Hughes baseline's timestamps). *)
        if ir.Ioref.ir_sources = [] then
          ir.Ioref.ir_ts <- Sim_time.to_seconds t.now;
        Ioref.add_source ir by ~dist:1;
        (* §6.1.2 case 4: the transfer barrier applies to inref z. *)
        s.Site.hooks.h_ref_arrived r;
        send t ~src:dst ~dst:by (Protocol.Insert_done { r }));
    h_insert_done =
      (fun (t, dst) ~src:_ ~r ->
        let s = site t dst in
        (* Release the insert pin taken when the outref was created. *)
        (match Tables.find_outref s.Site.tables r with
        | Some o -> o.Ioref.or_pins <- max 0 (o.Ioref.or_pins - 1)
        | None -> ());
        match Hashtbl.find_opt t.awaiting_insert (dst, r) with
        | None -> ()
        | Some token -> (
            Hashtbl.remove t.awaiting_insert (dst, r);
            match Hashtbl.find_opt t.move_waits token with
            | None -> ()
            | Some w ->
                w.remaining <- w.remaining - 1;
                if w.remaining = 0 then begin
                  Hashtbl.remove t.move_waits token;
                  let stall_ms =
                    1000.
                    *. Sim_time.to_seconds (Sim_time.sub t.now w.wait_since)
                  in
                  Metrics.hist_observe t.metrics "barrier.move_stall_ms"
                    stall_ms;
                  Metrics.hist_observe t.metrics
                    (Site.metric_label (site t dst) "barrier.move_stall_ms")
                    stall_ms;
                  send t ~src:dst ~dst:w.reply_to (Protocol.Move_ack { token })
                end));
    h_update =
      (fun (t, dst) ~src ~removals ~dists ->
        let s = site t dst in
        let on_inref r f =
          match Tables.find_inref s.Site.tables r with
          | Some ir -> f ir
          | None -> ()
        in
        List.iter
          (fun r ->
            on_inref r (fun ir ->
                Ioref.remove_source ir src;
                if ir.Ioref.ir_sources = [] then
                  Tables.remove_inref s.Site.tables r))
          removals;
        List.iter
          (fun (r, d) ->
            on_inref r (fun ir -> Ioref.set_source_dist ir src ~dist:d))
          dists);
    h_ext =
      (fun (t, dst) ~src e -> (site t dst).Site.hooks.h_ext ~src e);
  }

(* [san_deliver] runs before dispatch: the receiver's clock must join
   the capsule first so any message the handler sends in response is
   causally after this delivery. *)
and deliver t ~src ~dst ~capsule payload =
  monitor_msg t ~phase:`Deliver ~src ~dst payload;
  san_deliver t ~src ~dst ~capsule payload;
  (* Per-handler dispatch scope: everything a handler does — including
     the sends and frames it causes — lands under deliver;<kind>. *)
  match t.profile with
  | None -> Protocol.dispatch base_handlers (t, dst) ~src payload
  | Some p ->
      Prof.with_scope p "deliver" (fun () ->
          Prof.with_scope p (Protocol.kind payload) (fun () ->
              Prof.work p "deliveries" 1;
              Prof.work p "bytes_delivered" (Protocol.approx_bytes payload);
              Protocol.dispatch base_handlers (t, dst) ~src payload))

(* --- sending -------------------------------------------------------- *)

(* A parked Move or Move_ack stalls the §6.1.2 insert barrier: the
   sender keeps its pins until the ack lands, which can starve mutators
   for the whole partition/outage. Journal the cause so the watchdog's
   starvation verdicts can name it, and count it for the campaigns. *)
and note_move_stalled t ~why payload =
  match payload with
  | Protocol.Move { token; _ } ->
      Metrics.incr t.metrics "barrier.move_stalled";
      jlog t ~level:Journal.Warn ~cat:"barrier"
        "move (token %d) parked by %s: insert barrier stalled" token why
  | Protocol.Move_ack { token } ->
      Metrics.incr t.metrics "barrier.move_stalled";
      jlog t ~level:Journal.Warn ~cat:"barrier"
        "move-ack (token %d) parked by %s: sender pins held" token why
  | _ -> ()

and send_now t ~src ~dst ~capsule payload =
  let kind = Protocol.kind payload in
  let bytes = Protocol.approx_bytes payload in
  Metrics.incr t.metrics ("msg." ^ kind);
  Metrics.incr t.metrics "msg.total";
  Metrics.add t.metrics "msg.bytes" bytes;
  profile_work t "msgs_sent" 1;
  profile_work t "bytes_sent" bytes;
  Metrics.hist_observe t.metrics ("msg.size." ^ kind) (float_of_int bytes);
  let dst_site = site t dst in
  let is_ext = Protocol.is_ext payload in
  if is_ext && dst_site.Site.crashed then begin
    Metrics.incr t.metrics "msg.dropped.crashed";
    flight_drop t ~src ~dst ~reason:"crashed" payload;
    san_dropped t capsule ~reason:"crashed"
  end
  else if is_ext && not (reachable t src dst) then begin
    Metrics.incr t.metrics "msg.dropped.partition";
    flight_drop t ~src ~dst ~reason:"partition" payload;
    san_dropped t capsule ~reason:"partition"
  end
  else if is_ext && Rng.chance t.rng (ext_drop_p t) then begin
    Metrics.incr t.metrics "msg.dropped.lossy";
    flight_drop t ~src ~dst ~reason:"lossy" payload;
    san_dropped t capsule ~reason:"lossy"
  end
  else if not (reachable t src dst) then begin
    note_move_stalled t ~why:"partition" payload;
    t.part_parked <- (src, dst, payload, capsule) :: t.part_parked
  end
  else if dst_site.Site.crashed then begin
    note_move_stalled t ~why:"crash" payload;
    let q =
      match Hashtbl.find_opt t.parked dst with
      | Some q -> q
      | None ->
          let q = ref [] in
          Hashtbl.add t.parked dst q;
          q
    in
    q := (src, payload, capsule) :: !q
  end
  else begin
    let fly_local () =
      let id = t.next_msg_id in
      t.next_msg_id <- id + t.id_stride;
      (match Protocol.refs_carried payload with
      | [] -> ()
      | refs -> Hashtbl.replace t.in_flight id refs);
      let delay = sample_latency t in
      schedule t ~delay (fun () ->
          Hashtbl.remove t.in_flight id;
          if not (reachable t src dst) then begin
            (* Partitioned while the message was in flight. *)
            if is_ext then begin
              Metrics.incr t.metrics "msg.dropped.partition";
              flight_drop t ~src ~dst ~reason:"partition" payload;
              san_dropped t capsule ~reason:"partition"
            end
            else begin
              note_move_stalled t ~why:"partition" payload;
              t.part_parked <- (src, dst, payload, capsule) :: t.part_parked
            end
          end
          else if (site t dst).Site.crashed then begin
            (* Crashed while the message was in flight. *)
            if is_ext then begin
              Metrics.incr t.metrics "msg.dropped.crashed";
              flight_drop t ~src ~dst ~reason:"crashed" payload;
              san_dropped t capsule ~reason:"crashed"
            end
            else begin
              note_move_stalled t ~why:"crash" payload;
              let q =
                match Hashtbl.find_opt t.parked dst with
                | Some q -> q
                | None ->
                    let q = ref [] in
                    Hashtbl.add t.parked dst q;
                    q
              in
              q := (src, payload, capsule) :: !q
            end
          end
          else deliver t ~src ~dst ~capsule payload)
    in
    (* A shard sending to a site another shard owns must not touch the
       peer's queue or tables mid-window: the flight is buffered in
       this shard's outbox (latency sampled from this shard's lane, so
       the arrival time is already fixed and deterministic) and the
       coordinator integrates all outboxes at the next barrier in
       (arrival, sender shard, sender seq) order. The landing closure
       then runs on the *destination* shard and re-checks reachability
       and crash state there, exactly like a local flight would. *)
    let fly_cross m dst_sh =
      let delay = sample_latency t in
      let at = Sim_time.add t.now delay in
      let seq = t.out_seq in
      t.out_seq <- seq + 1;
      let dsh = m.shards.(dst_sh) in
      let run () =
        if not (reachable dsh src dst) then begin
          if is_ext then begin
            Metrics.incr dsh.metrics "msg.dropped.partition";
            flight_drop dsh ~src ~dst ~reason:"partition" payload
          end
          else begin
            note_move_stalled dsh ~why:"partition" payload;
            dsh.part_parked <- (src, dst, payload, capsule) :: dsh.part_parked
          end
        end
        else if (site dsh dst).Site.crashed then begin
          if is_ext then begin
            Metrics.incr dsh.metrics "msg.dropped.crashed";
            flight_drop dsh ~src ~dst ~reason:"crashed" payload
          end
          else begin
            note_move_stalled dsh ~why:"crash" payload;
            let q =
              match Hashtbl.find_opt dsh.parked dst with
              | Some q -> q
              | None ->
                  let q = ref [] in
                  Hashtbl.add dsh.parked dst q;
                  q
            in
            q := (src, payload, capsule) :: !q
          end
        end
        else deliver dsh ~src ~dst ~capsule payload
      in
      t.outbox :=
        {
          om_at = at;
          om_src_shard = t.shard_id;
          om_seq = seq;
          om_dst_shard = dst_sh;
          om_refs = Protocol.refs_carried payload;
          om_run = run;
        }
        :: !(t.outbox)
    in
    let fly =
      match t.master with
      | Some m ->
          let dst_sh = m.shard_of.(Site_id.to_int dst) in
          if dst_sh <> t.shard_id then fun () -> fly_cross m dst_sh
          else fly_local
      | None -> fly_local
    in
    fly ();
    (* Duplicate-delivery fault channel: a second, independent copy of
       a collector message, with its own latency. Only Ext payloads —
       the base protocol stays exactly-once. The [ext_dup_p t > 0.]
       guard keeps the rng stream untouched when the channel is cold. *)
    if is_ext && ext_dup_p t > 0. && Rng.chance t.rng (ext_dup_p t) then begin
      Metrics.incr t.metrics "msg.duplicated";
      san_copy t capsule;
      fly ()
    end
  end

(* One wire message carrying a whole batch of deferred collector
   messages (§4.7: "deferred and piggybacked"). Per-kind counters still
   see every payload; [msg.total] counts wire messages. *)
and flush_batch t ~src ~dst payloads =
  Metrics.incr t.metrics "msg.total";
  Metrics.incr t.metrics "msg.batches";
  let batch_bytes =
    Dgc_prelude.Util.list_sum (fun (p, _) -> Protocol.approx_bytes p) payloads
  in
  Metrics.add t.metrics "msg.bytes" batch_bytes;
  profile_work t "msgs_sent" (List.length payloads);
  profile_work t "bytes_sent" batch_bytes;
  List.iter
    (fun (p, _) ->
      Metrics.incr t.metrics ("msg." ^ Protocol.kind p);
      Metrics.hist_observe t.metrics
        ("msg.size." ^ Protocol.kind p)
        (float_of_int (Protocol.approx_bytes p)))
    payloads;
  let drop_all reason =
    List.iter
      (fun (p, c) ->
        flight_drop t ~src ~dst ~reason p;
        san_dropped t c ~reason)
      payloads
  in
  if (site t dst).Site.crashed || not (reachable t src dst) then begin
    Metrics.add t.metrics "msg.dropped.crashed" (List.length payloads);
    drop_all "crashed"
  end
  else if Rng.chance t.rng (ext_drop_p t) then begin
    Metrics.add t.metrics "msg.dropped.lossy" (List.length payloads);
    drop_all "lossy"
  end
  else begin
    let fly () =
      let delay = sample_latency t in
      schedule t ~delay (fun () ->
          if reachable t src dst && not (site t dst).Site.crashed then
            List.iter
              (fun (p, capsule) -> deliver t ~src ~dst ~capsule p)
              payloads
          else begin
            Metrics.add t.metrics "msg.dropped.crashed"
              (List.length payloads);
            drop_all "crashed"
          end)
    in
    fly ();
    (* Whole-batch duplication: deferred collector batches are one wire
       message, so the fault channel duplicates the wire message. *)
    if ext_dup_p t > 0. && Rng.chance t.rng (ext_dup_p t) then begin
      Metrics.add t.metrics "msg.duplicated" (List.length payloads);
      List.iter (fun (_, c) -> san_copy t c) payloads;
      fly ()
    end
  end

and send t ~src ~dst payload =
  let t = ctx t in
  monitor_msg t ~phase:`Send ~src ~dst payload;
  let capsule = san_send t ~src ~dst payload in
  let defer = t.cfg.Config.defer_interval in
  (* A shard's deferral queue can only batch same-shard destinations:
     a batched flush delivers directly, which must stay shard-local.
     Cross-shard sends from a shard bypass deferral and go through the
     outbox (still one flight per message — batching across the
     boundary would need its own integration protocol). *)
  let cross_shard =
    match t.master with
    | Some m -> m.shard_of.(Site_id.to_int dst) <> t.shard_id
    | None -> false
  in
  if
    Protocol.is_ext payload
    && Sim_time.compare defer Sim_time.zero > 0
    && not cross_shard
  then begin
    let key = (src, dst) in
    match Hashtbl.find_opt t.defer_queues key with
    | Some q -> q := (payload, capsule) :: !q
    | None ->
        let q = ref [ (payload, capsule) ] in
        Hashtbl.add t.defer_queues key q;
        schedule t ~delay:defer (fun () ->
            match Hashtbl.find_opt t.defer_queues key with
            | None -> ()
            | Some q ->
                Hashtbl.remove t.defer_queues key;
                flush_batch t ~src ~dst (List.rev !q))
  end
  else send_now t ~src ~dst ~capsule payload

(* --- mutator moves --------------------------------------------------- *)

let move_agent t ~agent ~src ~dst ~refs =
  let t = ctx t in
  if Site_id.equal src dst then (root t).agent_arrival ~agent ~dst
  else begin
    let token = fresh_token t in
    (* Retain everything we carry until the destination has registered
       it (move-ack): the insert barrier, §6.1.2. *)
    Site.pin (site t src) ~token refs;
    send t ~src ~dst (Protocol.Move { agent; refs; token })
  end

(* --- fault injection -------------------------------------------------- *)

let partition t groups =
  let t = root t in
  flight_fault t ~tag:"partition" (Printf.sprintf "%d groups" (List.length groups));
  jlog t ~level:Journal.Warn ~cat:"fault" "partition into %d groups" (List.length groups);
  let parts = Array.make (Array.length t.sites) (List.length groups) in
  List.iteri
    (fun g members ->
      List.iter (fun s -> parts.(Site_id.to_int s) <- g) members)
    groups;
  t.partition_of <- parts;
  Metrics.incr t.metrics "fault.partition"

(* Deliver a previously parked base message; if the destination is
   unavailable again when it lands, re-park it rather than lose it —
   the base protocol must be reliable. *)
let redeliver_parked t ~src ~dst ~capsule payload =
  let delay = sample_latency t in
  schedule t ~delay (fun () ->
      if not (reachable t src dst) then begin
        note_move_stalled t ~why:"partition" payload;
        t.part_parked <- (src, dst, payload, capsule) :: t.part_parked
      end
      else if (site t dst).Site.crashed then begin
        note_move_stalled t ~why:"crash" payload;
        let q =
          match Hashtbl.find_opt t.parked dst with
          | Some q -> q
          | None ->
              let q = ref [] in
              Hashtbl.add t.parked dst q;
              q
        in
        q := (src, payload, capsule) :: !q
      end
      else deliver t ~src ~dst ~capsule payload)

let heal t =
  let t = root t in
  flight_fault t ~tag:"heal" "";
  jlog t ~level:Journal.Warn ~cat:"fault" "heal";
  t.partition_of <- Array.make (Array.length t.sites) 0;
  Metrics.incr t.metrics "fault.heal";
  (* Sharded: every record (facade first, shards in order) may hold
     partition-parked messages; redeliveries all go through the
     coordinator's queue and rng, so the replay order — and therefore
     the run — is independent of which record parked what when. *)
  List.iter
    (fun r ->
      let parked = List.rev r.part_parked in
      r.part_parked <- [];
      List.iter
        (fun (src, dst, payload, capsule) ->
          redeliver_parked t ~src ~dst ~capsule payload)
        parked)
    (all_records t)

let crash t id =
  let t = root t in
  flight_fault t ~tag:"crash" (string_of_int (Site_id.to_int id));
  jlog t ~level:Journal.Warn ~cat:"fault" "crash %a" Site_id.pp id;
  (site t id).Site.crashed <- true;
  Metrics.incr t.metrics "fault.crash"

let recover t id =
  let t = root t in
  flight_fault t ~tag:"recover" (string_of_int (Site_id.to_int id));
  jlog t ~level:Journal.Warn ~cat:"fault" "recover %a" Site_id.pp id;
  let s = site t id in
  if s.Site.crashed then begin
    s.Site.crashed <- false;
    Metrics.incr t.metrics "fault.recover";
    List.iter
      (fun r ->
        match Hashtbl.find_opt r.parked id with
        | None -> ()
        | Some q ->
            let msgs = List.rev !q in
            Hashtbl.remove r.parked id;
            List.iter
              (fun (src, payload, capsule) ->
                redeliver_parked t ~src ~dst:id ~capsule payload)
              msgs)
      (all_records t)
  end

(* --- GC schedule ------------------------------------------------------ *)

let rec schedule_site_trace t id =
  let cfg = t.cfg in
  let jitter =
    if Sim_time.compare cfg.Config.trace_jitter Sim_time.zero <= 0 then
      Sim_time.zero
    else Rng.float t.rng (Sim_time.to_seconds cfg.Config.trace_jitter)
  in
  let delay = Sim_time.add cfg.Config.trace_interval jitter in
  schedule t ~delay (fun () ->
      if t.gc_running then begin
        let s = site t id in
        if not s.Site.crashed then s.Site.hooks.h_run_local_trace ();
        schedule_site_trace t id
      end)

let start_gc_schedule t =
  if not t.gc_running then begin
    t.gc_running <- true;
    if sharded t then
      (* Synchronized rounds: every site traces at k·interval on its
         owner shard — no stagger, no jitter, no rng draw. The trace
         schedule being randomness-free keeps each shard's rng lane
         aligned regardless of how the conservative windows cut, and
         all sites tracing at the same instant is what lets one window
         run every site's trace concurrently. *)
      Array.iteri
        (fun i _ ->
          let id = Site_id.of_int i in
          let sh = t.shards.(t.shard_of.(i)) in
          let interval = t.cfg.Config.trace_interval in
          let rec tick at () =
            if t.gc_running then begin
              let s = site t id in
              if not s.Site.crashed then s.Site.hooks.h_run_local_trace ();
              let at' = Sim_time.add at interval in
              Event_queue.push sh.queue ~at:at' (tick at')
            end
          in
          let at0 = Sim_time.add t.now interval in
          Event_queue.push sh.queue ~at:at0 (tick at0))
        t.sites
    else
      Array.iteri
        (fun i _ ->
          let id = Site_id.of_int i in
          (* Stagger the first trace of each site across one interval. *)
          let frac =
            Sim_time.to_seconds t.cfg.Config.trace_interval
            *. (float_of_int (i + 1)
               /. float_of_int (Array.length t.sites + 1))
          in
          schedule t ~delay:(Sim_time.of_seconds frac) (fun () ->
              if t.gc_running then begin
                let s = site t id in
                if not s.Site.crashed then s.Site.hooks.h_run_local_trace ();
                schedule_site_trace t id
              end))
        t.sites
  end

let stop_gc_schedule t = t.gc_running <- false

(* --- run loop --------------------------------------------------------- *)

let run_step_hooks t =
  (match t.on_step with Some h -> h () | None -> ());
  List.iter (fun w -> w ()) t.step_watchers

let step_nth t n =
  if sharded t then
    invalid_arg
      "Engine.step_nth: a sharded engine has no single event queue (use \
       run_until/run_for; the schedule explorer needs shards=1)";
  match Event_queue.pop_nth t.queue n with
  | None -> false
  | Some (at, f) ->
      (* Deviating to a later-scheduled event must not move time
         backwards when the skipped earlier events eventually run. *)
      if Sim_time.compare at t.now > 0 then t.now <- at;
      profile_work t "events" 1;
      f ();
      run_step_hooks t;
      true

let step t = step_nth t 0

let pending t =
  List.fold_left
    (fun acc r -> acc + Event_queue.length r.queue)
    0 (all_records t)

let peek_time t =
  List.fold_left
    (fun acc r ->
      match (acc, Event_queue.peek_time r.queue) with
      | None, x | x, None -> x
      | Some a, Some b -> Some (if Sim_time.compare a b <= 0 then a else b))
    None (all_records t)

let nth_time t n = Event_queue.nth_time t.queue n

(* --- sharded run loop -------------------------------------------------

   Conservative time windows. Let W be the earliest event time across
   the shard queues and L the lookahead — the minimum cross-shard
   network latency ([Latency.min_bound], scaled by the chaos latency
   factor). No shard can cause an event on another shard before W + L:
   the only in-window cross-shard channel is a message flight, and
   every flight takes at least L. So all shard events in [W, W + L)
   are causally independent across shards and may run concurrently.

   The window is further clipped to the next coordinator event (fault
   injections, redeliveries, agent programs and barrier-deferred trace
   applies all run there, serially, between windows) and to the run
   limit. When L = 0 (exponential latency, or a chaos factor of 0) the
   window degenerates to the closed equal-time slice [W, W]: strictly
   positive samples mean any flight still lands after W, so draining
   exactly the events at W remains conservative and makes progress.

   Determinism: which events land in which window is a function of
   event times alone; within a window each shard drains only its own
   queue with its own rng lane and writes no other shard's state
   (cross-shard sends buffer in the sender's outbox); outboxes are
   integrated at the barrier in (arrival, sender shard, seq) order.
   None of this depends on the number of domains executing the shard
   tasks, which is the whole point: same seed, same shard count, any
   --domains N — byte-identical runs. *)

let at_barrier t f =
  let c = ctx t in
  if c.shard_id >= 0 then Queue.push f c.barrier_q else f ()

let lookahead t =
  let base = Latency.min_bound t.cfg.Config.latency in
  let factor = t.latency_factor in
  if factor = 1.0 then base
  else Sim_time.of_seconds (Sim_time.to_seconds base *. factor)

let integrate_outboxes t =
  let msgs =
    Array.fold_left (fun acc sh -> !(sh.outbox) @ acc) [] t.shards
  in
  Array.iter (fun sh -> sh.outbox := []) t.shards;
  match msgs with
  | [] -> ()
  | msgs ->
      let msgs =
        List.sort
          (fun a b ->
            let c = Sim_time.compare a.om_at b.om_at in
            if c <> 0 then c
            else
              let c = Int.compare a.om_src_shard b.om_src_shard in
              if c <> 0 then c else Int.compare a.om_seq b.om_seq)
          msgs
      in
      Metrics.add t.metrics "window.cross_shard_msgs" (List.length msgs);
      List.iter
        (fun om ->
          t.xmsg_count <- t.xmsg_count + 1;
          let dsh = t.shards.(om.om_dst_shard) in
          (* Refs crossing the boundary become visible to the oracle's
             in-flight set the moment they leave the outbox. *)
          let run =
            match om.om_refs with
            | [] -> om.om_run
            | refs ->
                let id = t.next_msg_id in
                t.next_msg_id <- id + t.id_stride;
                Hashtbl.replace dsh.in_flight id refs;
                fun () ->
                  Hashtbl.remove dsh.in_flight id;
                  om.om_run ()
          in
          Event_queue.push dsh.queue ~at:om.om_at run)
        msgs

let run_barrier t =
  integrate_outboxes t;
  (* Deferred shard work (trace applies, oracle checks, back-trace
     triggers) runs serially here, in shard order, on the coordinator. *)
  Array.iter
    (fun sh ->
      while not (Queue.is_empty sh.barrier_q) do
        (Queue.pop sh.barrier_q) ()
      done)
    t.shards

let ensure_pool t =
  match t.pool with
  | Some p -> p
  | None ->
      (* Cap at the core count: domains beyond the cores only add
         stop-the-world scheduling latency (a descheduled domain must
         be run by the OS before any minor GC can proceed). Shard
         tasks are claimed from a shared counter, so fewer workers
         than shards still execute every window — just in waves —
         and which worker runs a shard never affects the result. *)
      let n =
        max 1
          (min
             (min t.cfg.Config.domains (Array.length t.shards))
             (Domain.recommended_domain_count ()))
      in
      let p = Domain_pool.create ~size:n in
      t.pool <- Some p;
      p

let exec_window t ~closed ~bound ~limit =
  let task sh () =
    let cur = Domain.DLS.get dls_shard in
    cur := Some sh;
    Fun.protect
      ~finally:(fun () -> cur := None)
      (fun () ->
        let n = ref 0 in
        let keep_going () =
          match Event_queue.peek_time sh.queue with
          | None -> false
          | Some at ->
              Sim_time.compare at limit <= 0
              &&
              if closed then Sim_time.compare at bound <= 0
              else Sim_time.compare at bound < 0
        in
        while keep_going () do
          match Event_queue.pop sh.queue with
          | Some (at, f) ->
              if Sim_time.compare at sh.now > 0 then sh.now <- at;
              incr n;
              f ()
          | None -> ()
        done;
        sh.drained <- !n)
  in
  (* Windows where at most one shard has events in range gain nothing
     from the pool — run them inline on the coordinator (the executed
     event sequence is identical either way). Most windows in a
     lightly-loaded run are of this kind, so this is the difference
     between paying a pool handoff per window and paying one only when
     there is parallel work to hand off. *)
  let in_range at =
    Sim_time.compare at limit <= 0
    &&
    if closed then Sim_time.compare at bound <= 0
    else Sim_time.compare at bound < 0
  in
  let active =
    Array.fold_left
      (fun acc sh ->
        match Event_queue.peek_time sh.queue with
        | Some at when in_range at -> acc + 1
        | _ -> acc)
      0 t.shards
  in
  if active <= 1 then Array.iter (fun sh -> task sh ()) t.shards
  else begin
    let pool = ensure_pool t in
    let tasks = Array.to_list (Array.map task t.shards) in
    try Domain_pool.run pool tasks
    with Domain_pool.Task_error e -> raise e
  end;
  t.win_count <- t.win_count + 1;
  Metrics.incr t.metrics "window.count";
  let mn, mx =
    Array.fold_left
      (fun (mn, mx) sh -> (min mn sh.drained, max mx sh.drained))
      (max_int, 0) t.shards
  in
  if mx - mn > t.max_skew then t.max_skew <- mx - mn;
  (* Advance the facade clock to the window end *before* the barrier:
     deferred applies run at the barrier's logical time, so anything
     they schedule or send lands in the future. With the clock still
     at the previous window's end, a barrier-sent flight would get a
     past timestamp and only pop after [t.now] jumps past it — one
     whole inter-window gap late, which is exactly a protocol timeout
     when windows are a trace round apart. [wend] is a function of
     event times alone, so determinism across [--domains] holds. *)
  let wend = if Sim_time.compare bound limit <= 0 then bound else limit in
  if Sim_time.compare wend t.now > 0 then t.now <- wend;
  run_barrier t

let sharded_run_until t limit =
  let next_shard_time () =
    Array.fold_left
      (fun acc sh ->
        match Event_queue.peek_time sh.queue with
        | None -> acc
        | Some at -> (
            match acc with
            | None -> Some at
            | Some b -> Some (if Sim_time.compare at b <= 0 then at else b)))
      None t.shards
  in
  let rec loop () =
    let g = Event_queue.peek_time t.queue in
    let w = next_shard_time () in
    let coord_first =
      match (g, w) with
      | Some g, Some w -> Sim_time.compare g w <= 0
      | Some _, None -> true
      | None, _ -> false
    in
    if coord_first then begin
      match g with
      | Some at when Sim_time.compare at limit <= 0 -> (
          match Event_queue.pop t.queue with
          | Some (at, f) ->
              if Sim_time.compare at t.now > 0 then t.now <- at;
              f ();
              run_step_hooks t;
              loop ()
          | None -> ())
      | _ -> ()
    end
    else
      match w with
      | Some w when Sim_time.compare w limit <= 0 ->
          let la = lookahead t in
          let closed = Sim_time.compare la Sim_time.zero <= 0 in
          let bound =
            if closed then w
            else begin
              let b = Sim_time.add w la in
              match g with
              | Some g when Sim_time.compare g b < 0 -> g
              | _ -> b
            end
          in
          (* [exec_window] advances [t.now] to the window end itself,
             before its barrier. *)
          exec_window t ~closed ~bound ~limit;
          run_step_hooks t;
          loop ()
      | _ -> ()
  in
  loop ();
  t.now <- limit;
  Array.iter
    (fun sh -> if Sim_time.compare limit sh.now > 0 then sh.now <- limit)
    t.shards

let run_until t limit =
  if sharded t then sharded_run_until t limit
  else
    let rec loop () =
      match Event_queue.peek_time t.queue with
      | Some at when Sim_time.(at <= limit) ->
          ignore (step t);
          loop ()
      | _ -> t.now <- limit
    in
    loop ()

let run_for t d = run_until t (Sim_time.add t.now d)

(* --- sharded read-back ------------------------------------------------ *)

let shard_stats t =
  if not (sharded t) then None
  else Some (t.win_count, t.xmsg_count, t.max_skew)

let teardown t =
  match t.pool with
  | Some p ->
      Domain_pool.teardown p;
      t.pool <- None
  | None -> ()

let merged_metrics t =
  if not (sharded t) then t.metrics
  else begin
    let m = Metrics.create ~sample_cap:4096 () in
    List.iter (fun r -> Metrics.merge_into ~into:m r.metrics) (all_records t);
    m
  end

let merged_series t =
  if not (sharded t) then t.series
  else begin
    let s = Tel.Series.create () in
    List.iter
      (fun r -> Tel.Series.merge_into ~into:s r.series)
      (all_records t);
    s
  end

let merged_journal t =
  if not (sharded t) then t.journal
  else
    match t.journal with
    | None -> None
    | Some fj ->
        (* Interleave by (sim time, record rank, ring position): a
           total order that depends only on the sharded timeline. The
           merged ring is sized to hold everything, so the merge never
           evicts. *)
        let sources =
          List.mapi (fun rank r ->
              ( rank,
                match r.journal with
                | Some j -> Journal.entries j
                | None -> [] ))
            (all_records t)
        in
        let tagged =
          List.concat_map
            (fun (rank, es) ->
              List.mapi (fun i e -> (e.Journal.at, rank, i, e)) es)
            sources
        in
        let tagged =
          List.sort
            (fun (a1, r1, i1, _) (a2, r2, i2, _) ->
              let c = Sim_time.compare a1 a2 in
              if c <> 0 then c
              else
                let c = Int.compare r1 r2 in
                if c <> 0 then c else Int.compare i1 i2)
            tagged
        in
        let j =
          Journal.create
            ~capacity:(max (Journal.capacity fj) (List.length tagged))
            ()
        in
        List.iter
          (fun (_, _, _, e) ->
            Journal.record j ~level:e.Journal.level ~at:e.Journal.at
              ~cat:e.Journal.cat e.Journal.text)
          tagged;
        Some j

let trace_rounds_completed t =
  Array.fold_left (fun acc s -> min acc s.Site.trace_epoch) max_int t.sites
