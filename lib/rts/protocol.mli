(** Inter-site messages.

    The base payloads implement §2's reference-listing machinery (plus
    the mutator-movement message that models reference transfer and
    traversal). Collector schemes extend [ext] with their own messages:
    the core library adds back-trace calls/replies/reports, the
    baselines add marking, timestamp-threshold and migration messages. *)

open Dgc_prelude
open Dgc_heap

type ext = ..

type payload =
  | Move of { agent : int; refs : Oid.t list; token : int }
      (** A mutator agent relocates to the destination site, carrying
          the references held in its variables. Each carried reference
          is thereby "transferred" in the §6.1 sense. [token] matches
          the eventual {!Move_ack}. *)
  | Move_ack of { token : int }
      (** Destination has registered every carried reference (all
          insert messages acknowledged); the sender may release its
          retention pins. *)
  | Insert of { r : Oid.t; by : Site_id.t }
      (** To the owner of [r]: site [by] now holds an outref for [r]. *)
  | Insert_done of { r : Oid.t }
      (** Owner of [r] has registered the insert. *)
  | Update of { removals : Oid.t list; dists : (Oid.t * int) list }
      (** After a local trace at the sender: the sender no longer holds
          outrefs for [removals]; its outref distances for [dists]
          changed (§2, §3). *)
  | Ext of ext

val kind : payload -> string
(** Short label for metrics ("move", "insert", "update", ...). For
    [Ext] payloads, the label registered via {!register_ext_kind},
    falling back to ["ext"]. *)

val refs_carried : payload -> Oid.t list
(** Application references carried by the message — the ones a
    reachability oracle must treat as roots while the message is in
    flight. Control messages (updates, back-trace traffic) carry
    ioref names but confer no reachability, so they report []. *)

val register_ext_kind : (ext -> string option) -> unit
(** Collectors register a labeler for their [ext] constructors. *)

val register_ext_refs : (ext -> Oid.t list option) -> unit
(** Collectors whose [ext] messages carry application references that
    must stay live while in flight (e.g. migration payloads) register
    an extractor here; back-trace traffic carries only ioref names and
    needs none. *)

val is_ext : payload -> bool

(** {1 Dispatch table}

    Receivers of base-protocol messages implement one handler per
    constructor; {!dispatch} holds the single exhaustive match over
    [payload]. Adding a constructor therefore forces every receiver to
    grow a handler (missing-field type error) before the tree compiles
    again — handler coverage is checked by the compiler, not at
    runtime. *)

type 'ctx handlers = {
  h_move :
    'ctx -> src:Site_id.t -> agent:int -> refs:Oid.t list -> token:int -> unit;
  h_move_ack : 'ctx -> src:Site_id.t -> token:int -> unit;
  h_insert : 'ctx -> src:Site_id.t -> r:Oid.t -> by:Site_id.t -> unit;
  h_insert_done : 'ctx -> src:Site_id.t -> r:Oid.t -> unit;
  h_update :
    'ctx ->
    src:Site_id.t ->
    removals:Oid.t list ->
    dists:(Oid.t * int) list ->
    unit;
  h_ext : 'ctx -> src:Site_id.t -> ext -> unit;
}

val dispatch : 'ctx handlers -> 'ctx -> src:Site_id.t -> payload -> unit

val base_kinds : string list
(** The {!kind} labels of the base constructors, in declaration order
    ([Ext] reported as ["ext"]). Conformance coverage accounting keys
    on these. *)

(** {1 Message descriptors}

    Every message kind — base constructor or registered [ext] label —
    declares how it survives the fault model: its duplicate-delivery
    story, its crash/timeout edge, and a commutativity class naming
    which reorderings it tolerates. The declarations are data, not
    enforcement; the dgc-san lint ([dgc-check san]) audits them for
    coverage and consistency and fails closed on [@check]. *)

type dup_story =
  | Dup_memo
      (** duplicates are answered from a receiver-side memo (the §4.6
          at-least-once call channel) *)
  | Dup_dedup  (** duplicates are detected by a nonce and discarded *)
  | Dup_idempotent  (** re-processing a duplicate is a no-op *)
  | Dup_exactly_once
      (** the channel itself never duplicates — only the reliable base
          protocol may claim this; the lint rejects it on [ext] kinds *)

type crash_edge =
  | Crash_timeout
      (** a sender-side timeout covers a crashed/partitioned peer *)
  | Crash_ttl  (** a TTL eventually undoes the message's effect *)
  | Crash_park_redeliver
      (** the engine parks the message and redelivers on recovery *)
  | Crash_none  (** no story — the lint rejects this on [ext] kinds *)

type descriptor = {
  d_kind : string;  (** the {!kind} label this describes *)
  d_dup : dup_story;
  d_crash : crash_edge;
  d_commutes : string;
      (** commutativity class: kinds in the same class may be
          reordered against each other without changing the outcome *)
}

val declare : descriptor -> unit
(** Register (or replace) the descriptor for a kind. Collectors
    declare alongside {!register_ext_kind}. *)

val descriptors : unit -> descriptor list
(** All declared descriptors, in first-declaration order. *)

val descriptor_of : string -> descriptor option
val dup_story_name : dup_story -> string
val crash_edge_name : crash_edge -> string

val approx_bytes : payload -> int
(** Rough wire size: a fixed per-message header plus per-reference and
    per-entry costs; [Ext] payloads report header + the registered
    refs. Used for byte-level cost comparisons (e.g. against the
    migration baseline, whose payloads carry whole objects). *)
