(** Inter-site messages.

    The base payloads implement §2's reference-listing machinery (plus
    the mutator-movement message that models reference transfer and
    traversal). Collector schemes extend [ext] with their own messages:
    the core library adds back-trace calls/replies/reports, the
    baselines add marking, timestamp-threshold and migration messages. *)

open Dgc_prelude
open Dgc_heap

type ext = ..

type payload =
  | Move of { agent : int; refs : Oid.t list; token : int }
      (** A mutator agent relocates to the destination site, carrying
          the references held in its variables. Each carried reference
          is thereby "transferred" in the §6.1 sense. [token] matches
          the eventual {!Move_ack}. *)
  | Move_ack of { token : int }
      (** Destination has registered every carried reference (all
          insert messages acknowledged); the sender may release its
          retention pins. *)
  | Insert of { r : Oid.t; by : Site_id.t }
      (** To the owner of [r]: site [by] now holds an outref for [r]. *)
  | Insert_done of { r : Oid.t }
      (** Owner of [r] has registered the insert. *)
  | Update of { removals : Oid.t list; dists : (Oid.t * int) list }
      (** After a local trace at the sender: the sender no longer holds
          outrefs for [removals]; its outref distances for [dists]
          changed (§2, §3). *)
  | Ext of ext

val kind : payload -> string
(** Short label for metrics ("move", "insert", "update", ...). For
    [Ext] payloads, the label registered via {!register_ext_kind},
    falling back to ["ext"]. *)

val refs_carried : payload -> Oid.t list
(** Application references carried by the message — the ones a
    reachability oracle must treat as roots while the message is in
    flight. Control messages (updates, back-trace traffic) carry
    ioref names but confer no reachability, so they report []. *)

val register_ext_kind : (ext -> string option) -> unit
(** Collectors register a labeler for their [ext] constructors. *)

val register_ext_refs : (ext -> Oid.t list option) -> unit
(** Collectors whose [ext] messages carry application references that
    must stay live while in flight (e.g. migration payloads) register
    an extractor here; back-trace traffic carries only ioref names and
    needs none. *)

val is_ext : payload -> bool

(** {1 Dispatch table}

    Receivers of base-protocol messages implement one handler per
    constructor; {!dispatch} holds the single exhaustive match over
    [payload]. Adding a constructor therefore forces every receiver to
    grow a handler (missing-field type error) before the tree compiles
    again — handler coverage is checked by the compiler, not at
    runtime. *)

type 'ctx handlers = {
  h_move :
    'ctx -> src:Site_id.t -> agent:int -> refs:Oid.t list -> token:int -> unit;
  h_move_ack : 'ctx -> src:Site_id.t -> token:int -> unit;
  h_insert : 'ctx -> src:Site_id.t -> r:Oid.t -> by:Site_id.t -> unit;
  h_insert_done : 'ctx -> src:Site_id.t -> r:Oid.t -> unit;
  h_update :
    'ctx ->
    src:Site_id.t ->
    removals:Oid.t list ->
    dists:(Oid.t * int) list ->
    unit;
  h_ext : 'ctx -> src:Site_id.t -> ext -> unit;
}

val dispatch : 'ctx handlers -> 'ctx -> src:Site_id.t -> payload -> unit

val base_kinds : string list
(** The {!kind} labels of the base constructors, in declaration order
    ([Ext] reported as ["ext"]). Conformance coverage accounting keys
    on these. *)

val approx_bytes : payload -> int
(** Rough wire size: a fixed per-message header plus per-reference and
    per-entry costs; [Ext] payloads report header + the registered
    refs. Used for byte-level cost comparisons (e.g. against the
    migration baseline, whose payloads carry whole objects). *)
