open Dgc_prelude
open Dgc_heap

type t = {
  site : Site_id.t;
  in_tbl : Ioref.inref Oid.Tbl.t;
  out_tbl : Ioref.outref Oid.Tbl.t;
}

let create site =
  { site; in_tbl = Oid.Tbl.create 32; out_tbl = Oid.Tbl.create 32 }

let site t = t.site
let find_inref t r = Oid.Tbl.find_opt t.in_tbl r

let ensure_inref t r =
  if not (Site_id.equal (Oid.site r) t.site) then
    invalid_arg "Tables.ensure_inref: reference not local to this site";
  match Oid.Tbl.find_opt t.in_tbl r with
  | Some ir -> ir
  | None ->
      let ir = Ioref.make_inref r in
      Oid.Tbl.add t.in_tbl r ir;
      ir

let remove_inref t r = Oid.Tbl.remove t.in_tbl r
let iter_inrefs t f = Oid.Tbl.iter (fun _ ir -> f ir) t.in_tbl

let inrefs t =
  Oid.Tbl.fold (fun _ ir acc -> ir :: acc) t.in_tbl []
  |> List.sort (fun a b -> Oid.compare a.Ioref.ir_target b.Ioref.ir_target)

let inref_count t = Oid.Tbl.length t.in_tbl
let find_outref t r = Oid.Tbl.find_opt t.out_tbl r

let ensure_outref t ?(dist = 1) r =
  if Site_id.equal (Oid.site r) t.site then
    invalid_arg "Tables.ensure_outref: reference is local to this site";
  match Oid.Tbl.find_opt t.out_tbl r with
  | Some o -> (o, false)
  | None ->
      let o = Ioref.make_outref ~dist r in
      Oid.Tbl.add t.out_tbl r o;
      (o, true)

let remove_outref t r = Oid.Tbl.remove t.out_tbl r
let iter_outrefs t f = Oid.Tbl.iter (fun _ o -> f o) t.out_tbl

let outrefs t =
  Oid.Tbl.fold (fun _ o acc -> o :: acc) t.out_tbl []
  |> List.sort (fun a b -> Oid.compare a.Ioref.or_target b.Ioref.or_target)

let outref_count t = Oid.Tbl.length t.out_tbl

(* Size model for the memory-accounting gauges: words at 8 bytes, one
   record header plus one word per field, list cells at 3 words, set
   nodes at 4. An estimate, not a measurement — what matters is that
   it moves monotonically with the structures it tracks and is exact
   across runs (deterministic), so the bench can gate on it. *)
let word = 8

let approx_bytes t =
  let inref_bytes ir =
    word
    * (11
      + (4 * List.length ir.Ioref.ir_sources)
      + (4 * Trace_id.Set.cardinal ir.Ioref.ir_visited)
      + (3 * List.length ir.Ioref.ir_outset))
  in
  let outref_bytes o =
    word
    * (11
      + (4 * Trace_id.Set.cardinal o.Ioref.or_visited)
      + (3 * List.length o.Ioref.or_inset))
  in
  let n = ref 0 in
  Oid.Tbl.iter (fun _ ir -> n := !n + inref_bytes ir) t.in_tbl;
  Oid.Tbl.iter (fun _ o -> n := !n + outref_bytes o) t.out_tbl;
  !n

let pp ppf t =
  Format.fprintf ppf "@[<v>tables %a:@," Site_id.pp t.site;
  List.iter (fun ir -> Format.fprintf ppf "  %a@," Ioref.pp_inref ir) (inrefs t);
  List.iter
    (fun o -> Format.fprintf ppf "  %a@," Ioref.pp_outref o)
    (outrefs t);
  Format.fprintf ppf "@]"
