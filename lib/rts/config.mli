(** Simulation and collector parameters.

    One record covers the runtime, the core collector and the
    baselines; baseline-only fields are ignored by the core collector
    and vice versa. The ablation toggles exist so the benches can show
    that each §6 mechanism is load-bearing. *)

open Dgc_simcore

type check_level =
  | Check_off  (** no invariant checking anywhere *)
  | Check_final
      (** invariants checked at explicit checkpoints only (e.g.
          [Sim.check], scenario ends, [dgc_check] runs) — the
          pre-existing behaviour *)
  | Check_step
      (** sanitizer mode: the full §6.1 per-step invariant battery runs
          after {e every} engine event; a violation raises
          [Invariants.Violation]. Orders of magnitude slower — meant
          for tests, fuzzing and the schedule explorer. *)

val check_level_name : check_level -> string

type t = {
  n_sites : int;
  seed : int;
  (* local GC schedule *)
  trace_interval : Sim_time.t;  (** time between local traces per site *)
  trace_jitter : Sim_time.t;  (** uniform jitter applied to each interval *)
  trace_duration : Sim_time.t;
      (** length of the non-atomic trace window (§6.2); [0] makes local
          traces atomic *)
  (* network *)
  latency : Latency.t;
  ext_drop : float;
      (** drop probability for collector (Ext) messages only; the base
          protocol (moves, inserts, updates) is reliable, back-trace
          traffic tolerates loss via timeouts (§4.6) *)
  ext_dup : float;
      (** duplicate-delivery probability for collector (Ext) messages
          only: the message is delivered once more with an independent
          latency. The base protocol stays exactly-once; the collector
          handlers are idempotent (dedup by trace id / call nonce), so
          duplication is a pure fault-model knob *)
  retry_limit : int;
      (** §4.6 hardening: how many times a back call whose reply has
          not arrived is re-sent before the caller finally assumes
          Live. [0] restores the paper's single-shot timeout. Reports
          are re-sent the same number of times (blind redundancy —
          receivers are idempotent), so a dropped report no longer
          strands a suspect until the next threshold bump *)
  retry_backoff : float;
      (** multiplier on [back_call_timeout] between successive retry
          attempts (attempt k waits timeout·backoff^k) *)
  defer_interval : Dgc_simcore.Sim_time.t;
      (** batch collector messages per destination and flush them on
          this period, modeling §4.7's "deferred and piggybacked"
          messages (one wire message per flush). Zero sends eagerly. *)
  (* distance heuristic (§3) and back tracing (§4) *)
  delta : int;  (** suspicion threshold Δ *)
  threshold2 : int;  (** back threshold Δ2 ≈ Δ + estimated cycle length *)
  threshold_bump : int;  (** δ added to an ioref's threshold per visit *)
  back_call_timeout : Sim_time.t;  (** caller assumes Live after this *)
  visited_ttl : Sim_time.t;
      (** participant clears visited marks (assuming Live) if no outcome
          report arrives in this long *)
  max_trace_starts : int;  (** back traces a site may initiate per trace *)
  adaptive_threshold : bool;
      (** §3: "if too many suspects are found live, the threshold
          should be increased". When on, the collector raises its
          effective Δ2 for newly suspected outrefs whenever abortive
          (Live) traces dominate recent outcomes. *)
  (* ablation toggles *)
  enable_transfer_barrier : bool;
  enable_clean_rule : bool;
  enable_insert_barrier : bool;
  enable_timeouts : bool;
      (** the §4.6 silence-means-Live machinery: per-call timeouts
          (with their retry schedule) and the visited-marks TTL.
          Disabling it is an ablation that plants the "lost trace"
          defect — a crash then strands activation frames and memo
          entries forever, which the sanitizer's leak detector must
          prove (no continuation path: no reply in flight, no armed
          timer, callee down) *)
  (* verification *)
  oracle_checks : bool;  (** assert oracle safety at every sweep *)
  check_level : check_level;
      (** how aggressively the §6.1 invariants are checked during a
          run; {!Check_step} is wired up by [Sim.make] through the
          engine's step hook *)
  sanitize : bool;
      (** arm the happens-before sanitizer (dgc-san): the engine
          piggybacks vector-clock capsules on every delivery and
          labels §4.6 timers so the race and lost-trace detectors can
          order events causally. Off by default; when off the engine
          makes no sanitizer calls at all and runs are bit-identical
          to builds without the hooks. The layers that can see
          [lib/sanitize] (campaigns, the explorer SUTs, the CLI) read
          this flag to decide whether to install the detectors *)
  journal_capacity : int;
      (** ring-buffer size of the journal the CLI attaches by default
          ({!Journal.create}'s [capacity]) *)
  flight_capacity : int;
      (** bytes per site for the always-on flight recorder's binary
          rings ([Sim.make] attaches one when positive; [0] disables
          it). The recorder draws no randomness and schedules nothing,
          so runs are event-identical with it on or off — only wall
          clock moves, which the scale bench gates at ≤ 1.05×. *)
  profile : bool;
      (** attach the deterministic sim-cost profiler and per-trace
          cost ledger ([Sim.make] creates one and the engine/collector
          taps feed it). Like the flight recorder it draws no
          randomness and schedules nothing, so schedules are
          event-identical with it on or off; its work-unit sections
          are byte-identical across same-seed runs, and the scale
          bench gates its wall-clock overhead at ≤ 1.10×. Off by
          default. *)
  shards : int;
      (** number of logical engine shards. [1] (the default) is the
          classic single-queue engine, byte-for-byte. [> 1] partitions
          sites round-robin into that many shards, each with its own
          event queue, RNG lane and telemetry buffers, synchronized by
          conservative time windows whose lookahead is
          [Latency.min_bound latency]. The shard count — not the
          domain count — defines the sharded timeline: artifacts are a
          function of [(seed, shards)] alone. *)
  domains : int;
      (** worker domains executing the shards' windows. Any value
          (clamped to [1 .. shards]) produces byte-identical runs —
          shards are data-race-free within a window, so parallel and
          sequential window execution coincide. Ignored when
          [shards = 1]. *)
}

val default : t
(** 4 sites, Δ=3, Δ2=8, millisecond latencies, minute-scale trace
    intervals, all barriers on, oracle checks on. *)

val pp : Format.formatter -> t -> unit
