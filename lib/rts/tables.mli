(** Per-site inref and outref tables (§2). *)

open Dgc_prelude
open Dgc_heap

type t

val create : Site_id.t -> t
val site : t -> Site_id.t

(** {1 Inrefs} *)

val find_inref : t -> Oid.t -> Ioref.inref option
val ensure_inref : t -> Oid.t -> Ioref.inref
(** Find or create (fresh, no sources). Raises [Invalid_argument] if
    the oid is not local to this site. *)

val remove_inref : t -> Oid.t -> unit

val iter_inrefs : t -> (Ioref.inref -> unit) -> unit
(** Unspecified order, no allocation — prefer this on hot paths where
    order is not observable (closures, mark sets, flag resets). *)

val inrefs : t -> Ioref.inref list
(** Sorted by target oid. Use where traversal order is observable:
    pretty-printing, snapshots, conformance checks, and anything that
    feeds deterministic statistics or tie-breaks. *)

val inref_count : t -> int

(** {1 Outrefs} *)

val find_outref : t -> Oid.t -> Ioref.outref option
val ensure_outref : t -> ?dist:int -> Oid.t -> Ioref.outref * bool
(** Find or create; the boolean is true when the outref was created
    (the caller must then run the insert protocol). Raises
    [Invalid_argument] if the oid is local to this site. *)

val remove_outref : t -> Oid.t -> unit

val iter_outrefs : t -> (Ioref.outref -> unit) -> unit
(** Unspecified order; see {!iter_inrefs}. *)

val outrefs : t -> Ioref.outref list
(** Sorted by target oid; see {!inrefs}. *)

val outref_count : t -> int

val approx_bytes : t -> int
(** Estimated bytes held by the ioref tables under a fixed size model
    (8-byte words; record headers plus per-element costs for source
    lists, visited sets and in/outsets). Deterministic across runs —
    the [bytes_resident{site=N}] gauge and the bench gates rely on
    that — but an estimate, not a heap measurement. *)

val pp : Format.formatter -> t -> unit
