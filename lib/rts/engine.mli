(** The discrete-event simulation engine.

    Owns the sites, the event queue, the network model and the metrics
    registry; implements the base reference-listing protocol of §2
    (inserts with the §6.1.2 insert barrier, updates, reference
    transfer via mutator moves). Collector schemes and mutator agents
    plug in through {!Site.hooks} and the callbacks below.

    Determinism: all randomness comes from the engine's seeded
    generator, and simultaneous events fire in scheduling order, so a
    run is a pure function of the configuration and the installed
    behaviours.

    {2 Sharded engines}

    With [Config.shards > 1] the engine becomes one {e facade} (the
    handle returned by {!create}: it owns a coordinator event queue,
    the fault/chaos state and the worker pool) plus that many shard
    records, each owning a private event queue, seeded rng lane and
    telemetry buffers, with sites partitioned round-robin. The run
    loop alternates coordinator events (faults, redeliveries, agent
    programs, barrier-deferred trace applies — all serial) with
    conservative time windows in which every shard drains its own
    queue, concurrently across up to [Config.domains] domains; the
    window bound is the minimum cross-shard latency
    ({!Latency.min_bound}). Cross-shard sends buffer in the sender's
    outbox and integrate at the next barrier in (arrival, sender
    shard, sender sequence) order.

    Every public function below accepts the facade everywhere; calls
    made while a shard's window is executing resolve to that shard via
    domain-local state. Artifacts are a function of [(seed, shards)]
    alone — any domain count replays the identical run. [shards = 1]
    is the classic engine, bit-for-bit. A sharded engine refuses the
    single-control-flow observers (tracer, profiler, sanitizer,
    message monitor, {!step_nth}); read results back through
    {!merged_metrics}, {!merged_journal}, {!merged_series} and
    {!dump_flight}, which interleave per-shard buffers by simulated
    time. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap

type t

exception Metrics_bucket_mismatch of string
(** Raised under [Config.Check_step] when a [Metrics.hist_observe]
    call passes a [?buckets] spec disagreeing with the histogram's
    existing bounds. Under other check levels the mismatch becomes a
    Warn entry (cat ["metrics"]) in the attached journal. *)

val create : Config.t -> t
val config : t -> Config.t
val sites : t -> Site.t array
val site : t -> Site_id.t -> Site.t
val now : t -> Sim_time.t
val rng : t -> Rng.t
val metrics : t -> Metrics.t

val attach_journal : t -> Journal.t -> unit
(** Attach a bounded event journal; the runtime and collectors record
    faults, traces, sweeps and verdicts into it. *)

val journal : t -> Journal.t option

val attach_tracer : t -> Dgc_telemetry.Tracer.t -> unit
(** Attach a span tracer; the collectors record back-trace activation
    frames, leaps, reports and timeouts into it as causal spans. *)

val tracer : t -> Dgc_telemetry.Tracer.t option

val attach_flight : t -> Dgc_telemetry.Flight.t -> unit
(** Attach a flight recorder. The engine mirrors message sends,
    deliveries, drops (with the drop reason), crash/recover/partition
    faults, journal entries and tracer span edges into its binary
    rings. Wiring works in any attachment order: journal and tracer
    taps are (re)installed whenever both halves are present. [Sim.make]
    attaches one automatically when [Config.flight_capacity > 0]. *)

val flight : t -> Dgc_telemetry.Flight.t option

val dump_flight : t -> reason:string -> Dgc_telemetry.Json.t option
(** Snapshot the flight rings into a [dgc.flight/1] document, or
    [None] when no recorder is attached. Still-open tracer spans are
    first closed with synthetic [aborted] ends ({!Tracer.abort_open});
    the number closed is added to the [tracer.aborted_spans] metric.
    Campaign failures, watchdog verdicts and [dgc-sim --dump-flight]
    all come through here. *)

val attach_profile : t -> Dgc_profile.Profile.t -> unit
(** Attach the deterministic sim-cost profiler. The engine opens a
    [deliver;<kind>] scope around every handler dispatch and attributes
    work units (events, deliveries, msgs_sent, bytes) to the innermost
    open scope; the collector layers add local-trace phase scopes and
    frame/visit work, and feed the profile's cost {!Dgc_profile.Ledger}
    per back trace. Like the flight recorder it draws no randomness and
    schedules nothing, so runs are event-identical with it on or off.
    [Sim.make] attaches one automatically when [Config.profile]. *)

val profile : t -> Dgc_profile.Profile.t option

val profile_work : t -> string -> int -> unit
(** Attribute work units to the attached profiler's innermost open
    scope; no-op without a profiler. *)

val series : t -> Dgc_telemetry.Series.t
(** The engine's always-on time-series registry (windowed counters and
    gauges, simulated-time buckets). Unlike the flight recorder it is
    unconditionally present: recording costs a hash-table update and
    draws no randomness. *)

val series_add : t -> string -> int -> unit
(** Add to a counter series at the current simulated time. *)

val series_incr : t -> string -> unit
(** [series_add t name 1]. *)

val series_set : t -> string -> float -> unit
(** Set a gauge series at the current simulated time. *)

val jlog :
  t ->
  ?level:Journal.level ->
  cat:string ->
  ('a, Format.formatter, unit, unit) format4 ->
  'a
(** Record into the attached journal (cheap no-op when none); [level]
    defaults to [Info]. *)

(** {1 Scheduling and messaging} *)

val schedule :
  t -> ?san:(unit -> Site_id.t * string) -> delay:Sim_time.t -> (unit -> unit) -> unit
(** Schedule a thunk after [delay]. [?san] labels the timer for the
    sanitizer: a thunk producing the owning site and a stable key (e.g.
    ["back_call:t3:s1:7"]). It is forced only when a sanitizer is
    installed — with none, scheduling is exactly the pre-sanitizer
    code path. *)

val send : t -> src:Site_id.t -> dst:Site_id.t -> Protocol.payload -> unit
(** Sample a latency and schedule delivery. Base-protocol messages to a
    crashed destination are parked and delivered on recovery; [Ext]
    messages to a crashed destination, and [Ext] messages unlucky under
    [cfg.ext_drop], are dropped (and counted). *)

val fresh_token : t -> int

(** {1 Mutator support} *)

val move_agent :
  t -> agent:int -> src:Site_id.t -> dst:Site_id.t -> refs:Oid.t list -> unit
(** Relocate an agent: pins [refs] at [src] (releasing on the eventual
    move-ack, which arrives only after every needed insert was
    acknowledged — the insert barrier), then ships a [Move]. A move to
    the current site completes synchronously. *)

val set_agent_arrival : t -> (agent:int -> dst:Site_id.t -> unit) -> unit
(** Called when a [Move] is delivered, after table bookkeeping and the
    arrival barrier, before the insert round-trips complete. *)

val set_extra_roots : t -> (Site_id.t -> Oid.t list) -> unit
(** Contribute application roots (mutator variables) per site. *)

val app_roots : t -> Site_id.t -> Oid.t list
(** Application roots of a site: contributed variables plus pinned
    local references. May include remote references (variables holding
    remote objects); local traces treat those as outrefs to clean. *)

(** {1 Fault injection} *)

val crash : t -> Site_id.t -> unit
val recover : t -> Site_id.t -> unit

val set_chaos_drop : t -> float option -> unit
(** Override the configured [ext_drop] probability for collector
    messages ([None] restores the configuration). The chaos injector
    drives loss bursts through this. *)

val set_chaos_dup : t -> float option -> unit
(** Override the configured [ext_dup] duplicate-delivery probability:
    an affected collector message is delivered once more with an
    independent latency. Base-protocol messages are never duplicated. *)

val set_latency_factor : t -> float -> unit
(** Multiply every sampled message latency by this factor (default
    [1.0]); the chaos injector models latency storms with it. Clamped
    to be non-negative. *)

val partition : t -> Site_id.t list list -> unit
(** Split the network into the given groups (sites not listed form one
    implicit extra group). Base-protocol messages across a partition
    boundary are parked and delivered on {!heal}; collector ([Ext])
    messages across the boundary are dropped — back tracing reads the
    silence as Live via its timeouts (§4.6). *)

val heal : t -> unit
(** Remove all partitions; parked cross-partition messages flow. *)

val reachable : t -> Site_id.t -> Site_id.t -> bool

(** {1 Oracle support} *)

val in_flight_refs : t -> Oid.t list
(** References carried by undelivered (or parked) messages. *)

(** {1 Running} *)

val start_gc_schedule : t -> unit
(** Begin periodic local traces at every site: each site's
    [h_run_local_trace] fires every [trace_interval] (±jitter),
    staggered across sites. Call once. *)

val stop_gc_schedule : t -> unit
(** No further periodic traces are scheduled (pending other events
    still run). *)

val step : t -> bool
(** Execute the next event; false if the queue is empty. *)

val step_nth : t -> int -> bool
(** Execute the [n]-th earliest pending event instead of the earliest
    ([step_nth t 0 = step t]); false if fewer than [n+1] events are
    pending. The clock never moves backwards: skipped earlier events
    run later at the (greater) current time. This is the schedule
    explorer's hook for exploring event-queue interleavings. *)

val pending : t -> int
(** Number of pending events. *)

val peek_time : t -> Sim_time.t option
val nth_time : t -> int -> Sim_time.t option
(** Timestamp of the earliest / [n]-th earliest pending event. *)

val set_on_step : t -> (unit -> unit) -> unit
(** Install a hook that runs after every executed event ({!step},
    {!step_nth}, and thus {!run_until}/{!run_for}). [Sim.make] uses it
    to wire [Config.Check_step] sanitizer checking; exceptions raised
    by the hook propagate out of the run functions. *)

val clear_on_step : t -> unit

val add_step_watcher : t -> (unit -> unit) -> unit
(** Append a step watcher: watchers run after every executed event, in
    registration order, after the {!set_on_step} hook, and are never
    cleared by {!clear_on_step}. Unlike the single [on_step] slot
    (owned by [Sim.make]'s sanitizer), any number of watchers can
    coexist — the watchdog registers itself here. *)

val set_msg_monitor :
  t ->
  (phase:[ `Send | `Deliver ] ->
  src:Site_id.t ->
  dst:Site_id.t ->
  Protocol.payload ->
  unit) ->
  unit
(** Observe every base-protocol/ext message: [`Send] fires once at the
    original send (before deferral, drops or parking), [`Deliver] fires
    at actual delivery (including batched flushes and redeliveries
    after heal/recover). The conformance checker keys its per-role
    ordering automata on [`Deliver] events. *)

val clear_msg_monitor : t -> unit

(** {1 Sanitizer hooks}

    The dgc-san happens-before sanitizer (lib/sanitize) installs these
    to thread vector clocks through message traffic and timers. The
    engine stays causally faithful but opaque: it mints an [int]
    capsule at send time via [san_send] and hands it back at delivery,
    drop, or duplication; it never inspects clock contents. With no
    sanitizer installed every hook site is a no-op and capsules are
    [-1] — behaviour, rng draws and event order are identical to a
    build without the hooks. *)

type san_hooks = {
  san_send : src:Site_id.t -> dst:Site_id.t -> Protocol.payload -> int;
      (** mint a capsule snapshotting the sender's clock at send time *)
  san_copy : int -> unit;
      (** the capsule's message was duplicated by the fault model *)
  san_dropped : int -> reason:string -> unit;
      (** the capsule's message will never be delivered
          ("crashed" / "partition" / "lossy") *)
  san_deliver :
    src:Site_id.t -> dst:Site_id.t -> capsule:int -> Protocol.payload -> unit;
      (** one delivery of the capsule's message is about to dispatch;
          runs {e before} the handler so anything the handler sends is
          causally after the join *)
  san_timer_armed : site:Site_id.t -> key:string -> at:Sim_time.t -> int;
      (** a [?san]-labelled timer was armed; returns a timer id *)
  san_timer_fired : int -> unit;  (** that timer is about to run *)
}

val set_sanitizer : t -> san_hooks -> unit
val clear_sanitizer : t -> unit
val sanitizing : t -> bool

val run_until : t -> Sim_time.t -> unit
(** Process events with timestamps up to the given absolute time;
    [now] afterwards equals that time. *)

val run_for : t -> Sim_time.t -> unit
val trace_rounds_completed : t -> int
(** Minimum over sites of completed local traces. *)

(** {1 Sharding} *)

val sharded : t -> bool
(** True iff this engine was created with [Config.shards > 1]. *)

val at_barrier : t -> (unit -> unit) -> unit
(** Run a thunk at the next synchronization barrier, on the
    coordinator, after this window's shard tasks have all finished —
    the collectors defer trace application, oracle checks and
    back-trace triggering through this so heavy in-window work can run
    concurrently while everything that touches cross-site state stays
    serial. From a shard's window the thunk is queued (per shard,
    FIFO; barrier queues drain in shard order); from coordinator
    context — including a classic engine — it runs immediately. *)

val shard_stats : t -> (int * int * int) option
(** [(windows, cross_shard_msgs, max_queue_skew)] for a sharded
    engine: synchronization windows executed, messages integrated
    across shard boundaries, and the largest per-window spread between
    the busiest and idlest shard (events drained). [None] when
    [shards = 1]. The same numbers land in the facade's metrics as
    [window.count] and [window.cross_shard_msgs]. *)

val teardown : t -> unit
(** Join the worker-domain pool, if one was started. Idempotent; safe
    on classic engines (no-op). Long-lived processes that create many
    sharded engines should call this when done with each (OCaml caps
    live domains); any pool still alive is joined at process exit. *)

val merged_metrics : t -> Metrics.t
(** Classic: the engine's registry itself. Sharded: a fresh registry
    folding the facade's and every shard's ({!Metrics.merge_into} —
    counters add, same-bounds histograms add bucket-wise), merged in
    record order, so it is deterministic for a deterministic run. *)

val merged_journal : t -> Journal.t option
(** Classic: the attached journal. Sharded: a fresh journal holding
    the facade's and every shard's retained entries interleaved by
    (sim time, record, ring position), sized to evict nothing. *)

val merged_series : t -> Dgc_telemetry.Series.t
(** Classic: the engine's registry itself. Sharded: a fresh registry
    folding all records' series ({!Series.merge_into} — bucket values
    add for counters and gauges alike, each shard gauging a disjoint
    population). *)
