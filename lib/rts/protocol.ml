open Dgc_prelude
open Dgc_heap

type ext = ..

type payload =
  | Move of { agent : int; refs : Oid.t list; token : int }
  | Move_ack of { token : int }
  | Insert of { r : Oid.t; by : Site_id.t }
  | Insert_done of { r : Oid.t }
  | Update of { removals : Oid.t list; dists : (Oid.t * int) list }
  | Ext of ext

let ext_kinds : (ext -> string option) list ref = ref []
let register_ext_kind f = ext_kinds := f :: !ext_kinds
let ext_refs : (ext -> Oid.t list option) list ref = ref []
let register_ext_refs f = ext_refs := f :: !ext_refs

let kind = function
  | Move _ -> "move"
  | Move_ack _ -> "move_ack"
  | Insert _ -> "insert"
  | Insert_done _ -> "insert_done"
  | Update _ -> "update"
  | Ext e ->
      let rec search = function
        | [] -> "ext"
        | f :: tl -> ( match f e with Some k -> k | None -> search tl)
      in
      search !ext_kinds

let refs_carried = function
  | Move { refs; _ } -> refs
  | Move_ack _ | Insert_done _ | Update _ -> []
  | Insert { r; _ } -> [ r ]
  | Ext e ->
      let rec search = function
        | [] -> []
        | f :: tl -> ( match f e with Some refs -> refs | None -> search tl)
      in
      search !ext_refs

let is_ext = function Ext _ -> true | _ -> false

(* --- dispatch table --------------------------------------------------- *)

type 'ctx handlers = {
  h_move :
    'ctx -> src:Site_id.t -> agent:int -> refs:Oid.t list -> token:int -> unit;
  h_move_ack : 'ctx -> src:Site_id.t -> token:int -> unit;
  h_insert : 'ctx -> src:Site_id.t -> r:Oid.t -> by:Site_id.t -> unit;
  h_insert_done : 'ctx -> src:Site_id.t -> r:Oid.t -> unit;
  h_update :
    'ctx ->
    src:Site_id.t ->
    removals:Oid.t list ->
    dists:(Oid.t * int) list ->
    unit;
  h_ext : 'ctx -> src:Site_id.t -> ext -> unit;
}

(* The one exhaustive match over [payload] in the code base: every
   receiver goes through this table, so a new constructor is a missing
   record field here (a type error) plus an inexhaustive match below (a
   fatal warning under the dev profile) — never a silent runtime drop. *)
let dispatch h ctx ~src = function
  | Move { agent; refs; token } -> h.h_move ctx ~src ~agent ~refs ~token
  | Move_ack { token } -> h.h_move_ack ctx ~src ~token
  | Insert { r; by } -> h.h_insert ctx ~src ~r ~by
  | Insert_done { r } -> h.h_insert_done ctx ~src ~r
  | Update { removals; dists } -> h.h_update ctx ~src ~removals ~dists
  | Ext e -> h.h_ext ctx ~src e

let base_kinds = [ "move"; "move_ack"; "insert"; "insert_done"; "update"; "ext" ]

(* --- message descriptors (the dgc-san lint surface) ------------------- *)

type dup_story = Dup_memo | Dup_dedup | Dup_idempotent | Dup_exactly_once

let dup_story_name = function
  | Dup_memo -> "memo"
  | Dup_dedup -> "dedup"
  | Dup_idempotent -> "idempotent"
  | Dup_exactly_once -> "exactly-once"

type crash_edge =
  | Crash_timeout
  | Crash_ttl
  | Crash_park_redeliver
  | Crash_none

let crash_edge_name = function
  | Crash_timeout -> "timeout"
  | Crash_ttl -> "ttl"
  | Crash_park_redeliver -> "park+redeliver"
  | Crash_none -> "none"

type descriptor = {
  d_kind : string;
  d_dup : dup_story;
  d_crash : crash_edge;
  d_commutes : string;
}

let descriptor_table : (string, descriptor) Hashtbl.t = Hashtbl.create 16
let descriptor_order : string list ref = ref []

let declare d =
  if not (Hashtbl.mem descriptor_table d.d_kind) then
    descriptor_order := d.d_kind :: !descriptor_order;
  Hashtbl.replace descriptor_table d.d_kind d

let descriptor_of k = Hashtbl.find_opt descriptor_table k

let descriptors () =
  List.rev !descriptor_order
  |> List.filter_map (fun k -> Hashtbl.find_opt descriptor_table k)

(* The base protocol rides the reliable channel: exactly-once delivery
   (the engine parks and redelivers across crashes and partitions), so
   no receiver-side dup machinery is needed — and the lint checks that
   only non-Ext kinds may claim that. *)
let () =
  List.iter declare
    [
      {
        d_kind = "move";
        d_dup = Dup_exactly_once;
        d_crash = Crash_park_redeliver;
        d_commutes = "token-paired";
      };
      {
        d_kind = "move_ack";
        d_dup = Dup_exactly_once;
        d_crash = Crash_park_redeliver;
        d_commutes = "token-paired";
      };
      {
        d_kind = "insert";
        d_dup = Dup_exactly_once;
        d_crash = Crash_park_redeliver;
        d_commutes = "ref-merge";
      };
      {
        d_kind = "insert_done";
        d_dup = Dup_exactly_once;
        d_crash = Crash_park_redeliver;
        d_commutes = "ref-merge";
      };
      {
        d_kind = "update";
        d_dup = Dup_exactly_once;
        d_crash = Crash_park_redeliver;
        d_commutes = "per-source-ordered";
      };
    ]

(* 16-byte header; 12 bytes per reference (site + index + tag); 16 per
   distance entry. Coarse, but uniform across collectors. *)
let approx_bytes p =
  let header = 16 in
  match p with
  | Move { refs; _ } -> header + 8 + (12 * List.length refs)
  | Move_ack _ -> header + 4
  | Insert _ -> header + 12 + 4
  | Insert_done _ -> header + 12
  | Update { removals; dists } ->
      header + (12 * List.length removals) + (16 * List.length dists)
  | Ext e ->
      let rec refs = function
        | [] -> []
        | f :: tl -> ( match f e with Some r -> r | None -> refs tl)
      in
      header + 16 + (12 * List.length (refs !ext_refs))
