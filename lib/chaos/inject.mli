(** Fault-plan execution against a live engine.

    {!arm} schedules every window of a {!Plan.t}: an apply event at
    [at_ms] and an undo event at [at_ms + dur_ms], both as ordinary
    engine events (so they interleave deterministically with the
    simulation). Windows of the same kind may overlap; the injector
    refcounts crashes per site and keeps the most recently opened
    drop/dup/slow/partition window in force, restoring the next one
    down (or the configured default) when it closes. Every injection
    lands in the journal (cat ["chaos"]) and in [chaos.*] counters.

    {!quiesce} closes every window immediately — recovering crashed
    sites, healing partitions, clearing the drop/dup/latency overrides
    — and deactivates any still-pending plan events, so the campaign
    driver can demand completeness afterwards. *)

open Dgc_rts

type t

val arm : Engine.t -> Plan.t -> t
(** Call before running the horizon; delays are relative to now. *)

val quiesce : t -> unit
(** Idempotent. *)

val injected : t -> int
(** Windows actually opened so far (skipped events excluded). *)

val active : t -> int
(** Windows currently open. *)

val active_mask : t -> int
(** One bit per fault kind with a window currently open: crash [1],
    partition [2], drop [4], dup [8], slow [16]. The fuzzer folds this
    into its coverage keys so "state X reached {e while partitioned}"
    and "state X reached fault-free" count as different edges. *)

val active_kinds : t -> string list
(** {!active_mask} as kind names, in mask-bit order. *)
