(** The chaos-campaign driver.

    A {!case} names a workload, a seed, a horizon and a {!Plan.t}; the
    driver builds the workload, arms the plan, runs the horizon with
    the oracle checking every sweep, then closes all fault windows and
    demands completeness: [Sim.collect_all] must reach zero garbage,
    the §6.1 invariant battery and the oracle's table-integrity check
    must both come back clean. Any deviation is a {!failure}; on
    failure the plan can be shrunk (ddmin over its windows, via
    [Dgc_analysis.Shrink]) to a minimal reproducer.

    Everything is a pure function of the case (plus the optional
    config tweak), so outcomes — including the ["dgc.chaos/1"]
    artifact with the full journal — are bit-reproducible. *)

module Json := Dgc_telemetry.Json

type failure =
  | Safety of string  (** oracle caught an unsafe sweep mid-run *)
  | Liveness of int
      (** garbage objects surviving after quiescence and
          [collect_all] *)
  | Invariant of string  (** §6.1 invariant battery violation *)
  | Table of string  (** ioref-table referential integrity violation *)
  | Race of string
      (** dgc-san: a causally-concurrent transfer/trace conflict with
          no barrier protection (runs only when [cfg.sanitize]) *)
  | Leak of string
      (** dgc-san: a lost trace — resident frames/memo with no message
          in flight and no armed timer (runs only when
          [cfg.sanitize]) *)

val failure_to_string : failure -> string

val failure_kind : failure -> string
(** The constructor name alone: ["safety"], ["liveness"], ["invariant"],
    ["table"], ["race"], ["leak"] — the vocabulary corpus files use in
    their ["expect"] field and the fuzzer uses as dedup/stop keys. *)

type case = {
  cs_name : string;
  cs_workload : string;  (** a {!Workloads.names} entry *)
  cs_seed : int;
  cs_horizon_ms : float;  (** chaos phase length *)
  cs_plan : Plan.t;
}

type outcome = {
  oc_case : case;
  oc_failure : failure option;
  oc_sim_seconds : float;
  oc_injected : int;  (** fault windows actually opened *)
  oc_sanitizer : string;
      (** dgc-san status of this run: ["off"] (not requested), ["on"]
          (armed, its verdicts were live failure detectors), or
          ["skipped-sharded"] (requested but the engine was sharded, so
          the sanitizer was downgraded to a journal warning). Also
          carried in the ["dgc.chaos/1"] artifact's outcome section so
          downstream consumers — the fuzzer above all — cannot mistake
          a sanitizer-blind run for sanitizer coverage. *)
  oc_journal : string list;  (** rendered journal, oldest first *)
  oc_counters : (string * int) list;  (** sorted *)
  oc_run : Json.t;  (** embedded ["dgc.run/1"] artifact with audit *)
  oc_flight : Json.t option;
      (** ["dgc.flight/1"] ring dump, captured automatically iff the
          case failed — the causal tail (sends, drops with reasons,
          faults, journal lines, span edges) of the failing window.
          Deterministic like everything else here, so a replay of the
          same case produces a byte-identical dump. *)
}

val schema : string
(** ["dgc.chaos/1"]. *)

val base_cfg : case -> Dgc_rts.Config.t
(** The campaign configuration for a case: the case's workload site
    count and seed, 10s trace intervals, millisecond latencies,
    [retry_limit = 2] (the hardened delivery defaults), oracle checks
    on. [run_case]'s [tweak] post-processes it. *)

type probe = {
  pb_eng : Dgc_rts.Engine.t;
  pb_journal : Dgc_simcore.Journal.t;
  pb_inject : Inject.t;
}
(** What a {!run_case} probe sees: the live engine, the campaign's
    journal and the armed injector — enough to attach coverage taps
    (conformance observer, journal tap, {!Inject.active_mask} polls). *)

val run_case :
  ?tweak:(Dgc_rts.Config.t -> Dgc_rts.Config.t) ->
  ?probe:(probe -> unit) ->
  case ->
  outcome
(** Deterministic: same case (and tweak) ⇒ identical outcome,
    including journal and counters. [probe] fires once, after the plan
    is armed and before the horizon runs; a probe that only observes
    (no scheduling, no rng draws) preserves determinism. *)

val shrink_case :
  ?tweak:(Dgc_rts.Config.t -> Dgc_rts.Config.t) ->
  case ->
  failure ->
  Plan.t * int
(** Minimize the case's plan while [run_case] keeps failing with the
    same failure constructor; returns the minimal plan and the number
    of replays spent. The input case must reproduce. *)

val artifact : ?shrunk:Plan.t * int -> outcome -> Json.t
(** The ["dgc.chaos/1"] document: case, plan, outcome, journal, the
    embedded run artifact (now carrying a ["series"] section), the
    ["flight"] dump when the case failed, and the shrunk plan when
    given. *)

type summary = {
  sm_outcomes : outcome list;
  sm_failures : (outcome * Plan.t * int) list;
      (** failed outcomes with their (shrunk) plans and replay counts *)
}

val run :
  ?tweak:(Dgc_rts.Config.t -> Dgc_rts.Config.t) ->
  ?shrink:bool ->
  workload:string ->
  seeds:int list ->
  horizon_ms:float ->
  events_per_plan:int ->
  unit ->
  summary
(** One {!Plan.random} per seed (the seed also drives the workload and
    engine), [run_case] on each; failures are shrunk unless
    [~shrink:false]. *)
