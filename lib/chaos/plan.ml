open Dgc_prelude
module Json = Dgc_telemetry.Json

type event =
  | Crash of { site : int }
  | Partition of { groups : int list list }
  | Drop of { p : float }
  | Dup of { p : float }
  | Slow of { factor : float }

type timed = { at_ms : float; dur_ms : float; ev : event }
type t = { events : timed list }

let schema = "dgc.plan/1"
let empty = { events = [] }
let length t = List.length t.events

let kind_name = function
  | Crash _ -> "crash"
  | Partition _ -> "partition"
  | Drop _ -> "drop"
  | Dup _ -> "dup"
  | Slow _ -> "slow"

(* ---- encoding -------------------------------------------------------- *)

let event_fields = function
  | Crash { site } -> [ ("site", Json.Int site) ]
  | Partition { groups } ->
      [
        ( "groups",
          Json.Arr
            (List.map
               (fun g -> Json.Arr (List.map (fun s -> Json.Int s) g))
               groups) );
      ]
  | Drop { p } -> [ ("p", Json.Float p) ]
  | Dup { p } -> [ ("p", Json.Float p) ]
  | Slow { factor } -> [ ("factor", Json.Float factor) ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ( "events",
        Json.Arr
          (List.map
             (fun e ->
               Json.Obj
                 ([
                    ("kind", Json.Str (kind_name e.ev));
                    ("at_ms", Json.Float e.at_ms);
                    ("dur_ms", Json.Float e.dur_ms);
                  ]
                 @ event_fields e.ev))
             t.events) );
    ]

(* ---- decoding -------------------------------------------------------- *)

let ( let* ) = Result.bind

let field name j =
  match Json.member name j with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "missing field %S" name)

let num name j =
  let* v = field name j in
  match Json.to_float_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "field %S: expected a number" name)

let str name j =
  let* v = field name j in
  match Json.to_str_opt v with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "field %S: expected a string" name)

let int_field name j =
  let* v = field name j in
  match Json.to_int_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "field %S: expected an integer" name)

let groups_of_json j =
  let* v = field "groups" j in
  match Json.to_list_opt v with
  | None -> Error "field \"groups\": expected an array"
  | Some gs ->
      List.fold_left
        (fun acc g ->
          let* acc = acc in
          match Json.to_list_opt g with
          | None -> Error "partition group: expected an array of sites"
          | Some sites ->
              let* sites =
                List.fold_left
                  (fun acc s ->
                    let* acc = acc in
                    match Json.to_int_opt s with
                    | Some i -> Ok (i :: acc)
                    | None -> Error "partition group: expected integer sites")
                  (Ok []) sites
              in
              Ok (List.rev sites :: acc))
        (Ok []) gs
      |> Result.map List.rev

let event_of_json j =
  let* kind = str "kind" j in
  let* at_ms = num "at_ms" j in
  let* dur_ms = num "dur_ms" j in
  let* ev =
    match kind with
    | "crash" ->
        let* site = int_field "site" j in
        Ok (Crash { site })
    | "partition" ->
        let* groups = groups_of_json j in
        Ok (Partition { groups })
    | "drop" ->
        let* p = num "p" j in
        Ok (Drop { p })
    | "dup" ->
        let* p = num "p" j in
        Ok (Dup { p })
    | "slow" ->
        let* factor = num "factor" j in
        Ok (Slow { factor })
    | other -> Error (Printf.sprintf "unknown fault kind %S" other)
  in
  if at_ms < 0. || dur_ms < 0. then Error "at_ms/dur_ms must be non-negative"
  else Ok { at_ms; dur_ms; ev }

let of_json j =
  let* s = str "schema" j in
  if not (String.equal s schema) then
    Error (Printf.sprintf "expected schema %S, got %S" schema s)
  else
    let* evs = field "events" j in
    match Json.to_list_opt evs with
    | None -> Error "field \"events\": expected an array"
    | Some l ->
        let rec go i acc = function
          | [] -> Ok { events = List.rev acc }
          | e :: tl -> (
              match event_of_json e with
              | Ok e -> go (i + 1) (e :: acc) tl
              | Error m -> Error (Printf.sprintf "event %d: %s" i m))
        in
        go 0 [] l

let of_string s =
  let* j = Json.parse s in
  of_json j

(* ---- validation ------------------------------------------------------ *)

(* What [of_json] cannot check without knowing the deployment: site
   ranges. Probabilities and factors are bounded here too so the fuzz
   mutators have one contract to satisfy (the injector itself is
   lenient — it skips out-of-range sites and clamps nothing). *)
let validate ~sites t =
  let err fmt = Printf.ksprintf Result.error fmt in
  let rec go i = function
    | [] -> Ok ()
    | { at_ms; dur_ms; ev } :: tl ->
        if at_ms < 0. || not (Float.is_finite at_ms) then
          err "event %d: negative or non-finite at_ms" i
        else if dur_ms < 0. || not (Float.is_finite dur_ms) then
          err "event %d: negative or non-finite dur_ms" i
        else
          let ok =
            match ev with
            | Crash { site } ->
                if site < 0 || site >= sites then
                  err "event %d: crash site %d out of range [0,%d)" i site sites
                else Ok ()
            | Partition { groups } ->
                if
                  List.exists
                    (List.exists (fun s -> s < 0 || s >= sites))
                    groups
                then err "event %d: partition names an out-of-range site" i
                else Ok ()
            | Drop { p } | Dup { p } ->
                if p < 0. || p > 1. || not (Float.is_finite p) then
                  err "event %d: probability %g outside [0,1]" i p
                else Ok ()
            | Slow { factor } ->
                if factor <= 0. || not (Float.is_finite factor) then
                  err "event %d: latency factor %g not positive" i factor
                else Ok ()
          in
          let* () = ok in
          go (i + 1) tl
  in
  go 0 t.events

let save ~path t =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | s -> of_string s

(* ---- generation ------------------------------------------------------ *)

let random_event rng ~sites =
  match Rng.int rng 5 with
  | 0 -> Crash { site = Rng.int rng sites }
  | 1 ->
      let all = List.init sites Fun.id in
      let left = List.filter (fun _ -> Rng.bool rng) all in
      let left = if left = [] then [ 0 ] else left in
      let right = List.filter (fun s -> not (List.mem s left)) all in
      Partition { groups = (if right = [] then [ left ] else [ left; right ]) }
  | 2 -> Drop { p = Rng.float_in rng 0.3 1.0 }
  | 3 -> Dup { p = Rng.float_in rng 0.2 0.8 }
  | _ -> Slow { factor = Rng.float_in rng 2. 10. }

let random ~rng ~sites ~horizon_ms ~events =
  (* explicit loop: List.init's application order is unspecified and
     the rng stream must be reproducible *)
  let rec draw n acc =
    if n = 0 then acc
    else
      let at_ms = Rng.float_in rng 0. (0.75 *. horizon_ms) in
      let dur_ms = Rng.float_in rng (horizon_ms /. 20.) (horizon_ms /. 4.) in
      let ev = random_event rng ~sites in
      draw (n - 1) ({ at_ms; dur_ms; ev } :: acc)
  in
  let evs = draw (max 0 events) [] in
  { events = List.stable_sort (fun a b -> Float.compare a.at_ms b.at_ms) evs }

(* ---- printing -------------------------------------------------------- *)

let pp_event ppf = function
  | Crash { site } -> Format.fprintf ppf "crash site %d" site
  | Partition { groups } ->
      Format.fprintf ppf "partition %a"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "|")
           (fun ppf g ->
             Format.pp_print_list
               ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",")
               Format.pp_print_int ppf g))
        groups
  | Drop { p } -> Format.fprintf ppf "drop p=%.2f" p
  | Dup { p } -> Format.fprintf ppf "dup p=%.2f" p
  | Slow { factor } -> Format.fprintf ppf "slow x%.1f" factor

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i e ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%7.0fms +%5.0fms  %a" e.at_ms e.dur_ms pp_event e.ev)
    t.events;
  Format.fprintf ppf "@]"
