open Dgc_prelude
open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload

type spec = { sim : Sim.t; settled : bool; stop : unit -> unit }

let nothing () = ()

let names =
  [
    "fig1"; "fig2"; "fig3"; "fig4"; "fig5"; "fig6"; "race"; "ring";
    "hypertext"; "churn";
  ]

let mem n = List.mem n names

let sites = function
  | "fig1" | "fig2" | "fig4" -> 3
  | "fig3" | "fig5" | "fig6" | "race" -> 4
  | _ -> 5

let static sim = { sim; settled = false; stop = nothing }

let all_sites eng =
  Array.to_list (Array.map (fun s -> s.Site.id) (Engine.sites eng))

let build ~name ~cfg ~rng =
  match name with
  | "fig1" -> static (Scenario.fig1 ~cfg ()).Scenario.f1_sim
  | "fig2" -> static (Scenario.fig2 ~cfg ()).Scenario.f2_sim
  | "fig3" -> static (Scenario.fig3 ~cfg ()).Scenario.f3_sim
  | "fig4" -> static (Scenario.fig4 ~cfg ()).Scenario.f4_sim
  | "fig5" -> static (Scenario.fig5 ~cfg ()).Scenario.f5_sim
  | "fig6" -> static (fst (Scenario.fig6 ~cfg ())).Scenario.f5_sim
  | "race" ->
      (* armed §6.4 race: the builder settles distances and schedules
         the walk, the deletion and the back trace itself *)
      let f, _verdict = Scenario.fig5_race_arm ~cfg () in
      { sim = f.Scenario.f5_sim; settled = true; stop = nothing }
  | "ring" ->
      let sim = Sim.make ~cfg () in
      let eng = sim.Sim.eng in
      let sites = all_sites eng in
      ignore (Graph_gen.chain eng ~sites ~per_site:2 ~rooted:true);
      ignore (Graph_gen.ring eng ~sites ~per_site:2 ~rooted:false);
      static sim
  | "hypertext" ->
      let sim = Sim.make ~cfg () in
      ignore
        (Graph_gen.hypertext sim.Sim.eng ~rng ~docs_per_site:2
           ~pages_per_doc:4 ~cross_links:6 ~rooted_frac:0.5);
      static sim
  | "churn" ->
      let sim = Sim.make ~cfg () in
      let eng = sim.Sim.eng in
      Array.iter
        (fun st -> ignore (Builder.root_obj eng st.Site.id))
        (Engine.sites eng);
      ignore
        (Graph_gen.random_graph eng ~rng ~objects_per_site:8 ~out_degree:1.3
           ~remote_frac:0.35 ~root_frac:0.1);
      let churn =
        Churn.start sim ~rng:(Rng.split rng) ~agents:3
          ~mean_op_gap:(Sim_time.of_millis 500.)
      in
      { sim; settled = false; stop = (fun () -> Churn.stop churn) }
  | other -> invalid_arg ("unknown chaos workload: " ^ other)
