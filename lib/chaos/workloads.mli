(** The campaign workload catalog.

    Every workload builds a ready-to-run {!Dgc_core.Sim.t}: the
    paper's figure scenarios (figs 1–6 and the armed §6.4 race), the
    synthetic ring and hypertext graphs, and the randomized churn
    workload. The campaign driver injects faults into whichever one a
    case names, so each plan exercises the same fault schedule against
    very different object graphs and mutator behaviours. *)

open Dgc_prelude
open Dgc_rts
open Dgc_core

type spec = {
  sim : Sim.t;
  settled : bool;
      (** the builder already converged distances (and possibly armed
          its own schedule): the driver must not call [Scenario.settle]
          again *)
  stop : unit -> unit;  (** stop mutators before the completeness phase *)
}

val names : string list
(** ["fig1"] … ["fig6"], ["race"], ["ring"], ["hypertext"], ["churn"]. *)

val mem : string -> bool

val sites : string -> int
(** Sites the workload runs on — what [Config.n_sites] and
    {!Plan.random}'s [~sites] should use. (The figure builders force
    their own site count regardless.) *)

val build : name:string -> cfg:Config.t -> rng:Rng.t -> spec
(** [rng] seeds the graph generators and churn agents; the engine has
    its own stream from [cfg.seed]. Raises [Invalid_argument] on an
    unknown name. *)
