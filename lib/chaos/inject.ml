open Dgc_prelude
open Dgc_simcore
open Dgc_rts

type t = {
  eng : Engine.t;
  mutable alive : bool;
  crash_depth : int array;
  (* newest-first stacks of open windows; the head is in force *)
  mutable partitions : (int * Site_id.t list list) list;
  mutable drops : (int * float) list;
  mutable dups : (int * float) list;
  mutable slows : (int * float) list;
  mutable next_id : int;
  mutable injected : int;
}

let metrics t = Engine.metrics t.eng

let refresh_drop t =
  Engine.set_chaos_drop t.eng
    (match t.drops with (_, p) :: _ -> Some p | [] -> None)

let refresh_dup t =
  Engine.set_chaos_dup t.eng
    (match t.dups with (_, p) :: _ -> Some p | [] -> None)

let refresh_slow t =
  Engine.set_latency_factor t.eng
    (match t.slows with (_, f) :: _ -> f | [] -> 1.0)

let refresh_partition t =
  (* heal-then-repartition: closing one of two overlapping partitions
     briefly reconnects everything, which only releases parked
     messages early — never loses them *)
  Engine.heal t.eng;
  match t.partitions with
  | (_, groups) :: _ -> Engine.partition t.eng groups
  | [] -> ()

let fresh t =
  let id = t.next_id in
  t.next_id <- id + 1;
  id

let skip t =
  Metrics.incr (metrics t) "chaos.skipped";
  fun () -> ()

(* Every injected fault also lands in the [chaos.injected] counter
   series, so the metrics export shows the fault rate over time next
   to the retry/drop rates it provokes. *)
let inject t =
  t.injected <- t.injected + 1;
  Engine.series_incr t.eng "chaos.injected"

(* Open a window; returns its closer. *)
let apply t ev =
  let n = Array.length (Engine.sites t.eng) in
  match ev with
  | Plan.Crash { site } ->
      if site < 0 || site >= n then skip t
      else begin
        inject t;
        let d = t.crash_depth.(site) in
        t.crash_depth.(site) <- d + 1;
        if d = 0 then begin
          Metrics.incr (metrics t) "chaos.crash";
          Engine.jlog t.eng ~cat:"chaos" "inject: crash site %d" site;
          Engine.crash t.eng (Site_id.of_int site)
        end;
        fun () ->
          let d = t.crash_depth.(site) - 1 in
          t.crash_depth.(site) <- d;
          if d = 0 then begin
            Metrics.incr (metrics t) "chaos.recover";
            Engine.jlog t.eng ~cat:"chaos" "undo: recover site %d" site;
            Engine.recover t.eng (Site_id.of_int site)
          end
      end
  | Plan.Partition { groups } -> (
      let groups =
        List.filter_map
          (fun g ->
            match List.filter (fun s -> s >= 0 && s < n) g with
            | [] -> None
            | g -> Some (List.map Site_id.of_int g))
          groups
      in
      match groups with
      | [] -> skip t
      | groups ->
          inject t;
          let id = fresh t in
          t.partitions <- (id, groups) :: t.partitions;
          Metrics.incr (metrics t) "chaos.partition";
          Engine.jlog t.eng ~cat:"chaos" "inject: partition (%d groups)"
            (List.length groups);
          refresh_partition t;
          fun () ->
            t.partitions <- List.filter (fun (i, _) -> i <> id) t.partitions;
            Metrics.incr (metrics t) "chaos.heal";
            Engine.jlog t.eng ~cat:"chaos" "undo: heal partition";
            refresh_partition t)
  | Plan.Drop { p } ->
      inject t;
      let id = fresh t in
      t.drops <- (id, p) :: t.drops;
      Metrics.incr (metrics t) "chaos.drop_burst";
      Engine.jlog t.eng ~cat:"chaos" "inject: drop burst p=%.2f" p;
      refresh_drop t;
      fun () ->
        t.drops <- List.filter (fun (i, _) -> i <> id) t.drops;
        Engine.jlog t.eng ~cat:"chaos" "undo: drop burst over";
        refresh_drop t
  | Plan.Dup { p } ->
      inject t;
      let id = fresh t in
      t.dups <- (id, p) :: t.dups;
      Metrics.incr (metrics t) "chaos.dup_burst";
      Engine.jlog t.eng ~cat:"chaos" "inject: dup burst p=%.2f" p;
      refresh_dup t;
      fun () ->
        t.dups <- List.filter (fun (i, _) -> i <> id) t.dups;
        Engine.jlog t.eng ~cat:"chaos" "undo: dup burst over";
        refresh_dup t
  | Plan.Slow { factor } ->
      inject t;
      let id = fresh t in
      t.slows <- (id, factor) :: t.slows;
      Metrics.incr (metrics t) "chaos.latency_storm";
      Engine.jlog t.eng ~cat:"chaos" "inject: latency storm x%.1f" factor;
      refresh_slow t;
      fun () ->
        t.slows <- List.filter (fun (i, _) -> i <> id) t.slows;
        Engine.jlog t.eng ~cat:"chaos" "undo: latency storm over";
        refresh_slow t

let arm eng plan =
  let t =
    {
      eng;
      alive = true;
      crash_depth = Array.make (Array.length (Engine.sites eng)) 0;
      partitions = [];
      drops = [];
      dups = [];
      slows = [];
      next_id = 0;
      injected = 0;
    }
  in
  List.iter
    (fun { Plan.at_ms; dur_ms; ev } ->
      Engine.schedule eng ~delay:(Sim_time.of_millis at_ms) (fun () ->
          if t.alive then begin
            let close = apply t ev in
            Engine.schedule eng ~delay:(Sim_time.of_millis dur_ms) (fun () ->
                if t.alive then close ())
          end))
    plan.Plan.events;
  t

let quiesce t =
  if t.alive then begin
    t.alive <- false;
    Engine.jlog t.eng ~cat:"chaos" "quiesce: closing all fault windows";
    Array.iteri
      (fun i d ->
        if d > 0 then begin
          t.crash_depth.(i) <- 0;
          Metrics.incr (metrics t) "chaos.recover";
          Engine.recover t.eng (Site_id.of_int i)
        end)
      t.crash_depth;
    t.partitions <- [];
    Engine.heal t.eng;
    t.drops <- [];
    t.dups <- [];
    t.slows <- [];
    refresh_drop t;
    refresh_dup t;
    refresh_slow t
  end

let injected t = t.injected

let active t =
  Array.fold_left (fun a d -> a + min d 1) 0 t.crash_depth
  + List.length t.partitions + List.length t.drops + List.length t.dups
  + List.length t.slows

let active_mask t =
  (if Array.exists (fun d -> d > 0) t.crash_depth then 1 else 0)
  lor (if t.partitions <> [] then 2 else 0)
  lor (if t.drops <> [] then 4 else 0)
  lor (if t.dups <> [] then 8 else 0)
  lor if t.slows <> [] then 16 else 0

let mask_kinds = [ (1, "crash"); (2, "partition"); (4, "drop"); (8, "dup"); (16, "slow") ]

let active_kinds t =
  let m = active_mask t in
  List.filter_map (fun (bit, k) -> if m land bit <> 0 then Some k else None) mask_kinds
