open Dgc_prelude
open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload
module Tel = Dgc_telemetry
module Json = Tel.Json
module Oracle = Dgc_oracle.Oracle
module Audit = Dgc_observe.Audit
module Shrink = Dgc_analysis.Shrink

type failure =
  | Safety of string
  | Liveness of int
  | Invariant of string
  | Table of string
  | Race of string
  | Leak of string

let failure_to_string = function
  | Safety m -> "safety: " ^ m
  | Liveness n -> Printf.sprintf "liveness: %d garbage objects survived" n
  | Invariant m -> "invariant: " ^ m
  | Table m -> "table: " ^ m
  | Race m -> "race: " ^ m
  | Leak m -> "leak: " ^ m

let failure_kind = function
  | Safety _ -> "safety"
  | Liveness _ -> "liveness"
  | Invariant _ -> "invariant"
  | Table _ -> "table"
  | Race _ -> "race"
  | Leak _ -> "leak"

let same_kind a b =
  match (a, b) with
  | Safety _, Safety _
  | Liveness _, Liveness _
  | Invariant _, Invariant _
  | Table _, Table _
  | Race _, Race _
  | Leak _, Leak _ ->
      true
  | (Safety _ | Liveness _ | Invariant _ | Table _ | Race _ | Leak _), _ ->
      false

type case = {
  cs_name : string;
  cs_workload : string;
  cs_seed : int;
  cs_horizon_ms : float;
  cs_plan : Plan.t;
}

type outcome = {
  oc_case : case;
  oc_failure : failure option;
  oc_sim_seconds : float;
  oc_injected : int;
  oc_sanitizer : string;
      (** ["off"], ["on"], or ["skipped-sharded"] — the last means the
          (tweaked) config asked for dgc-san but the engine was sharded
          and the sanitizer was downgraded to a journal warning; the
          artifact carries it so a fuzz run can never count race/leak
          detection it did not actually have *)
  oc_journal : string list;
  oc_counters : (string * int) list;
  oc_run : Json.t;
  oc_flight : Json.t option;
      (** [dgc.flight/1] dump, captured iff the case failed *)
}

type probe = {
  pb_eng : Dgc_rts.Engine.t;
  pb_journal : Journal.t;
  pb_inject : Inject.t;
}

let schema = "dgc.chaos/1"

let base_cfg case =
  {
    Config.default with
    Config.n_sites = Workloads.sites case.cs_workload;
    seed = case.cs_seed;
    trace_interval = Sim_time.of_seconds 10.;
    trace_jitter = Sim_time.of_seconds 2.;
    trace_duration = Sim_time.zero;
    delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
    latency = Latency.Uniform (Sim_time.of_millis 1., Sim_time.of_millis 20.);
    retry_limit = 2;
    oracle_checks = true;
  }

let run_case ?(tweak = fun c -> c) ?probe case =
  let cfg = tweak (base_cfg case) in
  let wrng = Rng.create ~seed:((case.cs_seed * 7) + 1) in
  let spec = Workloads.build ~name:case.cs_workload ~cfg ~rng:wrng in
  let sim = spec.Workloads.sim in
  let eng = sim.Sim.eng in
  let journal = Journal.create ~capacity:8192 () in
  Engine.attach_journal eng journal;
  Engine.attach_tracer eng (Tel.Tracer.create ());
  (* dgc-san rides along when the (tweaked) config asks for it; the
     detectors' verdicts become first-class failures below, so ddmin
     shrinks race and leak reports like any other. A sharded engine
     refuses the sanitizer (no single observation order), so skip it
     with a journal warning rather than dying. *)
  let san, sanitizer_status =
    if cfg.Config.sanitize then
      if Engine.sharded eng then begin
        Journal.record journal ~level:Journal.Warn ~at:(Engine.now eng)
          ~cat:"shard"
          "sanitize requested but engine is sharded; dgc-san skipped \
           (rerun at shards=1)";
        (None, "skipped-sharded")
      end
      else begin
        let s = Dgc_sanitize.Sanitizer.install eng in
        Dgc_sanitize.Sanitizer.set_shared s (Collector.back sim.Sim.col);
        (Some s, "on")
      end
    else (None, "off")
  in
  if not spec.Workloads.settled then Scenario.settle sim ~rounds:5;
  Sim.start sim;
  let inj = Inject.arm eng case.cs_plan in
  (match probe with
  | Some f -> f { pb_eng = eng; pb_journal = journal; pb_inject = inj }
  | None -> ());
  let failure = ref None in
  let catchf f =
    try f () with
    | Oracle.Safety_violation m -> failure := Some (Safety m)
    | Invariants.Violation vs ->
        failure :=
          Some
            (Invariant
               (match Invariants.strings vs with v :: _ -> v | [] -> "?"))
  in
  catchf (fun () -> Sim.run_for sim (Sim_time.of_millis case.cs_horizon_ms));
  Inject.quiesce inj;
  spec.Workloads.stop ();
  if Option.is_none !failure then
    catchf (fun () ->
        (* grace: parked base messages land, in-flight travels finish *)
        Sim.run_for sim (Sim_time.of_minutes 1.);
        if not (Sim.collect_all sim ~max_rounds:80 ()) then
          failure := Some (Liveness (Oracle.garbage_count eng))
        else begin
          Scenario.settle sim ~rounds:6;
          (match Invariants.strings (Invariants.check_all eng) with
          | v :: _ -> failure := Some (Invariant v)
          | [] -> ());
          if Option.is_none !failure then
            match Oracle.table_violations eng with
            | v :: _ -> failure := Some (Table v)
            | [] -> ()
        end);
  (* The sanitizer's verdicts outrank the liveness/table judgments — a
     proved lost trace explains a liveness miss better than a garbage
     count — but never a safety or invariant exception. *)
  (match san with
  | Some s
    when (match !failure with
         | None | Some (Liveness _) | Some (Table _) -> true
         | Some _ -> false) -> (
      ignore (Dgc_sanitize.Sanitizer.check_leaks s);
      match
        ( Dgc_sanitize.Sanitizer.harmful_races s,
          Dgc_sanitize.Sanitizer.leaks s )
      with
      | r :: _, _ ->
          failure := Some (Race (Dgc_sanitize.Sanitizer.race_message r))
      | [], l :: _ ->
          failure := Some (Leak (Dgc_sanitize.Sanitizer.leak_message l))
      | [], [] -> ())
  | _ -> ());
  let sim_seconds = Sim_time.to_seconds (Engine.now eng) in
  (* On failure, snapshot the always-on flight recorder before anything
     else touches the engine: the rings hold the causally-relevant
     tail — sends, drops with reasons, faults, journal lines, span
     edges — of exactly the window that produced the verdict. *)
  let flight =
    match !failure with
    | None -> None
    | Some f -> Engine.dump_flight eng ~reason:(failure_to_string f)
  in
  let audit = Audit.to_json (Audit.run sim.Sim.col) in
  let extra =
    match san with
    | Some s -> [ ("san", Dgc_sanitize.Sanitizer.to_json s) ]
    | None -> []
  in
  (* Profile embed is wall-free ([wall:false]): campaign artifacts are
     pinned byte-for-byte by tests, and host wall-time is the one
     non-deterministic quantity the profiler holds. *)
  let profile =
    Option.map
      (fun p -> Dgc_profile.Profile.to_json ~wall:false ~name:case.cs_name p)
      (Engine.profile eng)
  in
  (* Merged accessors: on a sharded engine these interleave the
     per-shard registries/rings deterministically; at shards=1 they are
     the plain facade documents. *)
  let run =
    Tel.Run_artifact.make ~name:case.cs_name ~sim_seconds ~extra ~audit
      ~series:(Engine.merged_series eng) ?profile (Engine.merged_metrics eng)
  in
  let journal_entries =
    match Engine.merged_journal eng with
    | Some j -> Journal.entries j
    | None -> Journal.entries journal
  in
  let outcome =
    {
      oc_case = case;
      oc_failure = !failure;
      oc_sim_seconds = sim_seconds;
      oc_injected = Inject.injected inj;
      oc_sanitizer = sanitizer_status;
      oc_journal =
        List.map
          (fun e -> Format.asprintf "%a" Journal.pp_entry e)
          journal_entries;
      oc_counters =
        List.sort
          (fun (a, _) (b, _) -> String.compare a b)
          (Metrics.counters (Engine.merged_metrics eng));
      oc_run = run;
      oc_flight = flight;
    }
  in
  Engine.teardown eng;
  outcome

let shrink_case ?tweak case failure0 =
  let evs = Array.of_list case.cs_plan.Plan.events in
  let plan_of devs =
    {
      Plan.events =
        List.map (fun (i, _) -> evs.(i)) (List.sort compare devs);
    }
  in
  let reproduces devs =
    match (run_case ?tweak { case with cs_plan = plan_of devs }).oc_failure with
    | Some f -> same_kind f failure0
    | None -> false
  in
  let initial = List.mapi (fun i _ -> (i, 1)) case.cs_plan.Plan.events in
  let devs, replays = Shrink.minimize ~reproduces initial in
  (plan_of devs, replays)

let artifact ?shrunk oc =
  let case = oc.oc_case in
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ( "case",
         Json.Obj
           [
             ("name", Json.Str case.cs_name);
             ("workload", Json.Str case.cs_workload);
             ("seed", Json.Int case.cs_seed);
             ("horizon_ms", Json.Float case.cs_horizon_ms);
           ] );
       ("plan", Plan.to_json case.cs_plan);
       ( "outcome",
         match oc.oc_failure with
         | None ->
             Json.Obj
               [
                 ("status", Json.Str "pass");
                 ("sanitizer", Json.Str oc.oc_sanitizer);
               ]
         | Some f ->
             Json.Obj
               [
                 ("status", Json.Str "fail");
                 ("failure", Json.Str (failure_to_string f));
                 ("sanitizer", Json.Str oc.oc_sanitizer);
               ] );
       ("injected", Json.Int oc.oc_injected);
       ("journal", Json.Arr (List.map (fun s -> Json.Str s) oc.oc_journal));
       ("run", oc.oc_run);
     ]
    @ (match oc.oc_flight with
      | Some f -> [ ("flight", f) ]
      | None -> [])
    @
    match shrunk with
    | None -> []
    | Some (p, replays) ->
        [
          ("shrunk_plan", Plan.to_json p);
          ("shrink_replays", Json.Int replays);
        ])

type summary = {
  sm_outcomes : outcome list;
  sm_failures : (outcome * Plan.t * int) list;
}

let run ?tweak ?(shrink = true) ~workload ~seeds ~horizon_ms ~events_per_plan
    () =
  let outcomes =
    List.map
      (fun seed ->
        let rng = Rng.create ~seed in
        let plan =
          Plan.random ~rng ~sites:(Workloads.sites workload) ~horizon_ms
            ~events:events_per_plan
        in
        let case =
          {
            cs_name = Printf.sprintf "%s-%d" workload seed;
            cs_workload = workload;
            cs_seed = seed;
            cs_horizon_ms = horizon_ms;
            cs_plan = plan;
          }
        in
        run_case ?tweak case)
      seeds
  in
  let failures =
    List.filter_map
      (fun oc ->
        match oc.oc_failure with
        | None -> None
        | Some f ->
            if shrink then
              let p, replays = shrink_case ?tweak oc.oc_case f in
              Some (oc, p, replays)
            else Some (oc, oc.oc_case.cs_plan, 0))
      outcomes
  in
  { sm_outcomes = outcomes; sm_failures = failures }
