(** Fault plans: first-class, serializable chaos schedules.

    A plan is a list of timed fault windows — site crashes, network
    partitions, collector-message drop and duplicate-delivery bursts,
    latency storms — each opening [at_ms] into the run and closing
    [dur_ms] later. Plans serialize to the ["dgc.plan/1"] JSON schema
    so a failing campaign case can be committed to the regression
    corpus and replayed bit-for-bit; {!Inject} executes them against a
    live engine; {!Campaign} shrinks them to minimal reproducers. *)

open Dgc_prelude

type event =
  | Crash of { site : int }
      (** crash the site at window open, recover it at window close;
          out-of-range sites are skipped by the injector *)
  | Partition of { groups : int list list }
      (** split the network into the given groups for the window
          (unlisted sites form an implicit extra group) *)
  | Drop of { p : float }
      (** drop collector ([Ext]) messages with probability [p] during
          the window, overriding [Config.ext_drop] *)
  | Dup of { p : float }
      (** duplicate collector messages with probability [p] during the
          window, overriding [Config.ext_dup] *)
  | Slow of { factor : float }
      (** multiply every sampled message latency by [factor] during
          the window (a latency storm) *)

type timed = { at_ms : float; dur_ms : float; ev : event }
type t = { events : timed list }

val schema : string
(** ["dgc.plan/1"]. *)

val empty : t
val length : t -> int
val kind_name : event -> string

val to_json : t -> Dgc_telemetry.Json.t
(** Deterministic (events in order, fields in fixed order). *)

val of_json : Dgc_telemetry.Json.t -> (t, string) result
val of_string : string -> (t, string) result

val save : path:string -> t -> unit
val load : path:string -> (t, string) result

val validate : sites:int -> t -> (unit, string) result
(** Deployment-aware well-formedness: non-negative finite windows,
    probabilities in [0,1], positive latency factors, crash/partition
    sites inside [0, sites). {!random} and every fuzz mutator preserve
    this. *)

val random : rng:Rng.t -> sites:int -> horizon_ms:float -> events:int -> t
(** Draw [events] random fault windows opening in the first three
    quarters of the horizon, each lasting 5–25% of it, sorted by open
    time. Purely a function of the [rng] stream. *)

val pp : Format.formatter -> t -> unit
