(** Distributed back tracing (§4).

    A back trace starts from a suspected outref and searches backwards
    over ioref-level reachability: local steps go from an outref to the
    inrefs in its inset, remote steps go from an inref to the outrefs
    at its source sites. The trace returns Live as soon as it reaches a
    clean ioref; if every branch bottoms out, the visited inrefs are
    garbage, and the initiator reports that outcome to every
    participant site (§4.5), which flags them.

    Implementation notes, mirroring §4.4–§4.7:
    - an activation frame per call, with a pending-count and a
      Live-dominates result; branch calls are issued in parallel and a
      Live child completes the frame early;
    - visited marks are per-trace sets in the iorefs, cleared by the
      report phase or by a TTL (a participant that never hears the
      outcome assumes Live, §4.6);
    - a caller that waits too long for a reply assumes Live (§4.6);
    - when an ioref is cleaned while a trace is active on it, the
      frame is forced Live — the §6.4 clean rule;
    - multiple concurrent traces are distinguished by trace ids; an
      ioref deleted under one trace makes calls from others return
      Garbage, which is safe (§4.7). *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts

type Protocol.ext +=
  | Back_call of {
      trace : Trace_id.t;
      r : Oid.t;
      reply_site : Site_id.t;
      reply_frame : int;
      call_seq : int;
    }  (** "perform BackStepLocal(you, r)" — sent along an inref's
           source list *)
  | Back_reply of {
      trace : Trace_id.t;
      reply_frame : int;
      call_seq : int;
      verdict : Verdict.t;
      participants : Site_id.Set.t;
    }
  | Back_report of { trace : Trace_id.t; outcome : Verdict.t }

type shared
(** State shared across all sites of one engine (per-site frame tables
    plus a per-trace statistics registry). *)

type trace_stat = {
  ts_initiator : Site_id.t;
  ts_root : Oid.t;  (** the outref the trace started from *)
  ts_started : Sim_time.t;
  mutable ts_msgs : int;  (** back-trace messages sent on its behalf *)
  mutable ts_calls : int;  (** remote back calls (≈ inter-site refs walked) *)
  mutable ts_frames : int;  (** activation frames created across all sites *)
  mutable ts_participants : Site_id.Set.t;
  mutable ts_outcome : (Verdict.t * Sim_time.t) option;
}

val create : Engine.t -> shared

val start : shared -> Site_id.t -> Oid.t -> Trace_id.t option
(** Start a back trace at the given site from the given suspected
    outref (§4.1 mandates an outref start). None if the outref is
    missing or clean. *)

val handle_ext : shared -> Site_id.t -> src:Site_id.t -> Protocol.ext -> bool
(** Process one of this module's messages; false if it is not ours. *)

val on_cleaned : shared -> Site_id.t -> Oid.t -> unit
(** The §6.4 clean rule: the ioref named by this reference was just
    cleaned at the site; any trace active there returns Live. No-op
    when [enable_clean_rule] is off (ablation). *)

val active_frames : shared -> Site_id.t -> int

type parent_info =
  | Pi_initiator  (** the trace root at the initiator *)
  | Pi_local of int  (** parent frame id at the same site *)
  | Pi_remote of { site : Site_id.t; frame : int; call_seq : int }
      (** awaited by [frame] at [site] as its call [call_seq] *)

type frame_info = {
  fi_id : int;
  fi_trace : Trace_id.t;
  fi_ioref : Oid.t;  (** the ioref the activation is parked on *)
  fi_kind : string;  (** ["frame.local"] or ["frame.remote"] *)
  fi_pending : int;  (** outstanding child calls *)
  fi_started : Sim_time.t;
  fi_span : int option;  (** telemetry span id when a tracer is attached *)
  fi_parent : parent_info;
  fi_calls : int list;  (** outstanding remote call sequence numbers *)
}

val open_frames : shared -> Site_id.t -> frame_info list
(** Still-open activation frames at a site, oldest first. The state
    inspector dumps these; the watchdog flags ones open beyond a
    multiple of the §4.7 timeout. *)

type residue = { rs_frames : int; rs_memo : int; rs_visited : int }
(** Per-site footprint a trace still occupies: open activation frames,
    call-memo entries, visited marks. *)

val residue : shared -> (Trace_id.t * (Site_id.t * residue) list) list
(** Every trace with non-zero footprint anywhere, sorted by trace id
    (sites sorted within). The lost-trace leak detector asks this and
    then proves no continuation path can ever clear the footprint. *)

val stats : shared -> (Trace_id.t * trace_stat) list
(** Sorted by trace id. *)

val approx_bytes : shared -> int
(** Estimated bytes of back-trace residue across all sites — open
    activation frames, call-memo entries, visited marks — under the
    fixed size model of [Tables.approx_bytes]. Feeds the
    [bytes.back_trace] gauge; this is exactly the state a lost report
    would leak, so a flat-lining gauge is the healthy shape. *)

val find_stat : shared -> Trace_id.t -> trace_stat option

val on_outcome : shared -> (Trace_id.t -> Verdict.t -> Site_id.Set.t -> unit) -> unit
(** Register an observer called at the initiator when a trace
    completes (before reports are delivered). *)

val timer_key_call : Trace_id.t -> site:Site_id.t -> int -> string
(** Stable sanitizer label of the §4.6 per-call timeout the caller
    [site] arms for call sequence number [seq] of the trace. *)

val timer_key_ttl : Trace_id.t -> site:Site_id.t -> string
(** Stable sanitizer label of the visited-marks TTL a participant
    [site] arms for the trace. *)
