(** The local forward trace, extended per §3 and §5.

    One pass does four jobs:
    - mark live local objects (roots: persistent roots, application
      roots, non-flagged inrefs);
    - propagate distances from inrefs to outrefs, tracing inrefs in
      increasing distance order (§3);
    - classify iorefs as clean or suspected against the threshold Δ;
    - compute the outsets of suspected inrefs — equivalently the insets
      of suspected outrefs — by the §5.2 bottom-up algorithm (fused
      Tarjan SCC + memoized outset unions), or by §5.1 independent
      tracing for comparison.

    [compute] is pure with respect to the site: it reads a sampled
    {!input} and returns an {!outcome}. [apply] installs an outcome
    into the site's tables atomically — the §6.2 "new copy replaces the
    old" step — sweeps the heap, emits update messages, and replays the
    transfer-barrier cleans that happened during the trace window. *)

open Dgc_prelude
open Dgc_heap
open Dgc_rts

type mode =
  | Bottom_up  (** §5.2: every object scanned once, SCC-aware *)
  | Independent  (** §5.1: one full trace per suspected inref *)
  | Naive_bottom_up
      (** §5.2's rejected "first cut": single-scan bottom-up without
          strongly-connected-component handling. Deliberately incorrect
          in the presence of back edges (Figure 4) — kept to
          demonstrate why the SCC machinery is needed. Never use it in
          a real collector. *)

type input = {
  in_site : Site_id.t;
  in_graph : Reach.graph;
  in_indices : int list;  (** local objects existing at sample time *)
  in_roots : Oid.t list;  (** persistent + application roots (distance 0) *)
  in_inrefs : (Oid.t * int * bool) list;  (** target, distance, flagged *)
  in_outrefs : Oid.t list;
  in_delta : int;
}

val input_of_site : Engine.t -> Site.t -> input
(** Sample the site's current state (atomic trace). *)

val input_of_snapshot : Engine.t -> Site.t -> Snapshot.t -> input
(** Graph and object set from the snapshot (taken at window start);
    roots and tables sampled now — call this at window start too. *)

type out_result = {
  o_ref : Oid.t;
  o_dist : int;
  o_suspected : bool;
  o_removed : bool;  (** untraced: drop and notify the target site *)
  o_inset : Oid.t list;
}

type in_result = {
  i_ref : Oid.t;
  i_suspected : bool;
  i_outset : Oid.t list;
}

type stats = {
  clean_visits : int;
  suspect_visits : int;  (** object scans; exceeds the object count in
                             [Independent] mode — that is §5.1's cost *)
  distinct_outsets : int;
  union_calls : int;
  memo_hits : int;
  inset_entries : int;  (** Σ |inset| over suspected outrefs *)
  suspected_inrefs : int;
  suspected_outrefs : int;
  workspace_bytes : int;
      (** [Outset_store.approx_bytes] of the trace's (discarded)
          workspace — the transient component of the memory-accounting
          taxonomy, sampled into the [bytes.trace_workspace] gauge *)
}

type outcome = {
  out_site : Site_id.t;
  dead : int list;  (** local indices to free *)
  out_results : out_result list;
  in_results : in_result list;
  ot_stats : stats;
}

val compute : ?mode:mode -> ?probe:(string -> unit) -> input -> outcome
(** [probe] (for benchmarks) fires once per internal phase as it
    completes, with tags ["clean"], ["suspect"], ["assemble"]. *)

val apply :
  Engine.t ->
  Site.t ->
  outcome ->
  window_cleans:Oid.t list ->
  on_cleaned:(Oid.t -> unit) ->
  oracle_check:bool ->
  unit
(** Atomic swap (§6.2). [window_cleans] are the references barrier-
    cleaned during the trace window, replayed onto the new copy.
    [on_cleaned] fires for every ioref that transitions suspected →
    clean (the §6.4 clean-rule notification). With [oracle_check], the
    sweep is verified against {!Dgc_oracle.Oracle} first. *)
