open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
module Tel = Dgc_telemetry

type Protocol.ext +=
  | Back_call of {
      trace : Trace_id.t;
      r : Oid.t;
      reply_site : Site_id.t;
      reply_frame : int;
      call_seq : int;
    }
  | Back_reply of {
      trace : Trace_id.t;
      reply_frame : int;
      call_seq : int;
      verdict : Verdict.t;
      participants : Site_id.Set.t;
    }
  | Back_report of { trace : Trace_id.t; outcome : Verdict.t }

let () =
  Protocol.register_ext_kind (function
    | Back_call _ -> Some "back_call"
    | Back_reply _ -> Some "back_reply"
    | Back_report _ -> Some "back_report"
    | _ -> None)

(* How each back-trace message survives the fault model (§4.6): calls
   are memoized at the receiver (duplicates re-answered), replies are
   deduplicated by call nonce, reports are idempotent broadcasts; the
   crash edge is the sender timeout for the call channel and the
   visited-marks TTL for reports. The dgc-san lint audits these. *)
let () =
  Protocol.(
    List.iter declare
      [
        {
          d_kind = "back_call";
          d_dup = Dup_memo;
          d_crash = Crash_timeout;
          d_commutes = "memoized-rpc";
        };
        {
          d_kind = "back_reply";
          d_dup = Dup_dedup;
          d_crash = Crash_timeout;
          d_commutes = "dedup-by-nonce";
        };
        {
          d_kind = "back_report";
          d_dup = Dup_idempotent;
          d_crash = Crash_ttl;
          d_commutes = "idempotent-broadcast";
        };
      ])

module Int_set = Set.Make (Int)

type parent =
  | P_initiator
  | P_local of int
  | P_remote of { site : Site_id.t; frame : int; call_seq : int }

type frame = {
  fr_id : int;
  fr_trace : Trace_id.t;
  fr_parent : parent;
  fr_ioref : Oid.t;
  fr_kind : string;  (** ["frame.local"] or ["frame.remote"] *)
  fr_started : Sim_time.t;
  mutable fr_pending : int;
  mutable fr_result : Verdict.t;
  mutable fr_participants : Site_id.Set.t;
  mutable fr_done : bool;
  mutable fr_calls : Int_set.t;
  mutable fr_span : int;  (** telemetry span id, [-1] when untraced *)
}

type site_state = {
  ss_site : Site.t;
  frames : (int, frame) Hashtbl.t;
  mutable next_frame : int;
  mutable next_call : int;
  mutable next_trace : int;
  (* iorefs this site has marked visited, per trace, for the report
     phase and the TTL cleanup *)
  visited_refs : (Trace_id.t, Oid.t list ref) Hashtbl.t;
  (* Receiver-side idempotency memo for at-least-once [Back_call]
     delivery, keyed by (trace, caller site, caller call seq) — the
     nonce the caller minted for the call. [None] while the call is
     still being traced (a duplicate is ignored; the eventual reply
     answers both copies); [Some reply] afterwards (a duplicate
     replays the cached reply verbatim). Entries are dropped when the
     trace's outcome report arrives, and the FIFO bounds the table
     when reports are lost. *)
  call_memo : (Trace_id.t * Site_id.t * int, Protocol.ext option) Hashtbl.t;
  memo_fifo : (Trace_id.t * Site_id.t * int) Queue.t;
}

type trace_stat = {
  ts_initiator : Site_id.t;
  ts_root : Oid.t;
  ts_started : Sim_time.t;
  mutable ts_msgs : int;
  mutable ts_calls : int;
  mutable ts_frames : int;
  mutable ts_participants : Site_id.Set.t;
  mutable ts_outcome : (Verdict.t * Sim_time.t) option;
}

type shared = {
  eng : Engine.t;
  states : site_state array;
  tstats : (Trace_id.t, trace_stat) Hashtbl.t;
  (* telemetry: root span per trace, and in-flight message spans keyed
     by a (trace, endpoints, seq) string *)
  t_spans : (Trace_id.t, int) Hashtbl.t;
  m_spans : (string, int) Hashtbl.t;
  mutable observers : (Trace_id.t -> Verdict.t -> Site_id.Set.t -> unit) list;
  (* live totals behind the [back.in_flight] / [back.frames_held]
     gauge series; counting here keeps the samples O(1) *)
  mutable in_flight : int;
  mutable frames_held : int;
}

let create eng =
  {
    eng;
    states =
      Array.map
        (fun s ->
          {
            ss_site = s;
            frames = Hashtbl.create 16;
            next_frame = 0;
            next_call = 0;
            next_trace = 0;
            visited_refs = Hashtbl.create 8;
            call_memo = Hashtbl.create 32;
            memo_fifo = Queue.create ();
          })
        (Engine.sites eng);
    tstats = Hashtbl.create 16;
    t_spans = Hashtbl.create 16;
    m_spans = Hashtbl.create 32;
    observers = [];
    in_flight = 0;
    frames_held = 0;
  }

let gauge_in_flight sh d =
  sh.in_flight <- sh.in_flight + d;
  Engine.series_set sh.eng "back.in_flight" (float_of_int sh.in_flight)

let gauge_frames sh d =
  sh.frames_held <- sh.frames_held + d;
  Engine.series_set sh.eng "back.frames_held" (float_of_int sh.frames_held)

let state sh id = sh.states.(Site_id.to_int id)
let on_outcome sh f = sh.observers <- f :: sh.observers

let bump_stat sh trace f =
  match Hashtbl.find_opt sh.tstats trace with Some s -> f s | None -> ()

(* Cost-ledger feed (lib/profile): every per-trace cost below is also
   attributed to the trace's ledger entry when a profiler is attached.
   [led] is a no-op otherwise. *)
let led sh f =
  match Engine.profile sh.eng with
  | Some p -> f (Dgc_profile.Profile.ledger p)
  | None -> ()

let lkey = Format.asprintf "%a" Trace_id.pp

let send_back sh ~src ~dst trace ext =
  bump_stat sh trace (fun s -> s.ts_msgs <- s.ts_msgs + 1);
  Metrics.incr (Engine.metrics sh.eng) "back.msgs";
  led sh (fun l ->
      let payload = Protocol.Ext ext in
      Dgc_profile.Ledger.on_msg l ~trace:(lkey trace)
        ~kind:(Protocol.kind payload)
        ~bytes:(Protocol.approx_bytes payload));
  Engine.send sh.eng ~src ~dst (Protocol.Ext ext)

(* Cap on memoized calls per site: entries normally die with the
   trace's report, but a lost report would otherwise leak them. *)
let memo_cap = 8192

let memo_add st key v =
  if not (Hashtbl.mem st.call_memo key) then begin
    Queue.push key st.memo_fifo;
    if Queue.length st.memo_fifo > memo_cap then
      Hashtbl.remove st.call_memo (Queue.pop st.memo_fifo)
  end;
  Hashtbl.replace st.call_memo key v

let self_id st = st.ss_site.Site.id
let tables st = st.ss_site.Site.tables
let delta sh = (Engine.config sh.eng).Config.delta
let bump sh = (Engine.config sh.eng).Config.threshold_bump

(* ---- telemetry ------------------------------------------------------- *)

(* Span vocabulary (DESIGN.md "Observability"): [back_trace] is the
   root, [frame.local]/[frame.remote] are §4.4 activation frames,
   [leap.call]/[leap.reply] are the §4.4 messages between them,
   [report] is the §4.5 outcome fan-out, and the [timeout.*] events
   are §4.6's silence-means-Live decisions. *)

let tracer sh = Engine.tracer sh.eng
let tkey trace = Format.asprintf "%a" Trace_id.pp trace
let now_s sh = Sim_time.to_seconds (Engine.now sh.eng)
let jint i = Tel.Json.Int i
let jstr s = Tel.Json.Str s
let jsite id = jint (Site_id.to_int id)

let call_key trace ~caller ~callee seq =
  Printf.sprintf "call/%s/%d->%d/%d" (tkey trace) (Site_id.to_int caller)
    (Site_id.to_int callee) seq

let reply_key trace ~replier ~target seq =
  Printf.sprintf "reply/%s/%d->%d/%d" (tkey trace) (Site_id.to_int replier)
    (Site_id.to_int target) seq

let report_key trace participant =
  Printf.sprintf "report/%s/%d" (tkey trace) (Site_id.to_int participant)

(* Stable labels for the §4.6 timers, shared with the sanitizer's
   armed-timer registry (a lost-trace verdict cites them). *)
let timer_key_call trace ~site seq =
  Printf.sprintf "back_call/%s/%d/%d" (tkey trace) (Site_id.to_int site) seq

let timer_key_ttl trace ~site =
  Printf.sprintf "visited_ttl/%s/%d" (tkey trace) (Site_id.to_int site)

let root_span sh trace = Hashtbl.find_opt sh.t_spans trace

(* The span of the activation that issued this parent link: the local
   caller frame, the leap that carried the remote call, or the trace
   root for the initiator's first step. *)
let parent_span sh st trace = function
  | P_initiator -> root_span sh trace
  | P_local pid -> (
      match Hashtbl.find_opt st.frames pid with
      | Some p when p.fr_span >= 0 -> Some p.fr_span
      | _ -> root_span sh trace)
  | P_remote { site; frame; call_seq } -> (
      match
        Hashtbl.find_opt sh.m_spans
          (call_key trace ~caller:site ~callee:(self_id st) call_seq)
      with
      | Some id -> Some id
      | None -> (
          match Hashtbl.find_opt (state sh site).frames frame with
          | Some p when p.fr_span >= 0 -> Some p.fr_span
          | _ -> root_span sh trace))

(* key is "<kind>/<trace>/..." *)
let tkey_of_key key =
  match String.split_on_char '/' key with _ :: t :: _ -> t | _ -> key

let start_msg_span sh key ~name ~site ~parent attrs =
  match tracer sh with
  | None -> ()
  | Some tr ->
      let id =
        Tel.Tracer.start_span tr ?parent ~trace:(tkey_of_key key)
          ~name ~site ~at:(now_s sh) attrs
      in
      Hashtbl.replace sh.m_spans key id

let finish_msg_span sh key attrs =
  match tracer sh with
  | None -> ()
  | Some tr -> (
      match Hashtbl.find_opt sh.m_spans key with
      | Some id -> Tel.Tracer.finish_span tr id ~at:(now_s sh) attrs
      | None -> ())

let finish_frame_span sh fr attrs =
  match tracer sh with
  | None -> ()
  | Some tr ->
      if fr.fr_span >= 0 then
        Tel.Tracer.finish_span tr fr.fr_span ~at:(now_s sh) attrs

let new_frame sh st trace parent ioref ~kind =
  let fr =
    {
      fr_id = st.next_frame;
      fr_trace = trace;
      fr_parent = parent;
      fr_ioref = ioref;
      fr_kind = kind;
      fr_started = Engine.now sh.eng;
      fr_pending = 0;
      fr_result = Verdict.Garbage;
      fr_participants = Site_id.Set.empty;
      fr_done = false;
      fr_calls = Int_set.empty;
      fr_span = -1;
    }
  in
  st.next_frame <- st.next_frame + 1;
  Hashtbl.add st.frames fr.fr_id fr;
  gauge_frames sh 1;
  bump_stat sh trace (fun s -> s.ts_frames <- s.ts_frames + 1);
  Engine.profile_work sh.eng "frames" 1;
  led sh (fun l -> Dgc_profile.Ledger.on_frame l ~trace:(lkey trace));
  (match tracer sh with
  | None -> ()
  | Some tr ->
      let attrs =
        [ ("ref", jstr (Oid.to_string ioref)) ]
        @
        match parent with
        | P_remote { site; _ } -> [ ("caller_site", jsite site) ]
        | P_initiator | P_local _ -> []
      in
      fr.fr_span <-
        Tel.Tracer.start_span tr
          ?parent:(parent_span sh st trace parent)
          ~trace:(tkey trace) ~name:kind
          ~site:(Site_id.to_int (self_id st))
          ~at:(now_s sh) attrs);
  fr

(* The whole message-driven machine is one recursive knot: finishing a
   frame feeds its parent, which may finish in turn, up to the
   initiator's report phase. *)
let rec finish sh st fr v =
  if not fr.fr_done then begin
    fr.fr_done <- true;
    Hashtbl.remove st.frames fr.fr_id;
    gauge_frames sh (-1);
    finish_frame_span sh fr [ ("verdict", jstr (Verdict.to_string v)) ];
    let parts = Site_id.Set.add (self_id st) fr.fr_participants in
    match fr.fr_parent with
    | P_local pid -> begin
        match Hashtbl.find_opt st.frames pid with
        | Some p -> child_done sh st p v parts
        | None -> ()
      end
    | P_remote { site; frame; call_seq } ->
        start_msg_span sh
          (reply_key fr.fr_trace ~replier:(self_id st) ~target:site call_seq)
          ~name:"leap.reply"
          ~site:(Site_id.to_int (self_id st))
          ~parent:(if fr.fr_span >= 0 then Some fr.fr_span else None)
          [
            ("src", jsite (self_id st));
            ("dst", jsite site);
            ("verdict", jstr (Verdict.to_string v));
          ];
        let reply =
          Back_reply
            {
              trace = fr.fr_trace;
              reply_frame = frame;
              call_seq;
              verdict = v;
              participants = parts;
            }
        in
        memo_add st (fr.fr_trace, site, call_seq) (Some reply);
        send_back sh ~src:(self_id st) ~dst:site fr.fr_trace reply
    | P_initiator -> conclude sh st fr.fr_trace v parts
  end

and child_done sh st fr v parts =
  if not fr.fr_done then begin
    fr.fr_participants <- Site_id.Set.union fr.fr_participants parts;
    fr.fr_result <- Verdict.merge fr.fr_result v;
    fr.fr_pending <- fr.fr_pending - 1;
    match v with
    | Verdict.Live ->
        (* Live short-circuits the frame (§4.4's early return). *)
        finish sh st fr Verdict.Live
    | Verdict.Garbage ->
        if fr.fr_pending <= 0 then finish sh st fr fr.fr_result
  end

and return_to sh st trace parent v =
  let parts = Site_id.Set.singleton (self_id st) in
  match parent with
  | P_local pid -> begin
      match Hashtbl.find_opt st.frames pid with
      | Some p -> child_done sh st p v parts
      | None -> ()
    end
  | P_remote { site; frame; call_seq } ->
      start_msg_span sh
        (reply_key trace ~replier:(self_id st) ~target:site call_seq)
        ~name:"leap.reply"
        ~site:(Site_id.to_int (self_id st))
        ~parent:
          (Hashtbl.find_opt sh.m_spans
             (call_key trace ~caller:site ~callee:(self_id st) call_seq))
        [
          ("src", jsite (self_id st));
          ("dst", jsite site);
          ("verdict", jstr (Verdict.to_string v));
        ];
      let reply =
        Back_reply
          { trace; reply_frame = frame; call_seq; verdict = v; participants = parts }
      in
      memo_add st (trace, site, call_seq) (Some reply);
      send_back sh ~src:(self_id st) ~dst:site trace reply
  | P_initiator -> conclude sh st trace v parts

and conclude sh st trace outcome parts =
  Engine.jlog sh.eng ~cat:"back" "%a concluded %a (%d participants)"
    Trace_id.pp trace Verdict.pp outcome (Site_id.Set.cardinal parts);
  let metrics = Engine.metrics sh.eng in
  Metrics.incr metrics
    (match outcome with
    | Verdict.Garbage -> "back.outcome_garbage"
    | Verdict.Live -> "back.outcome_live");
  led sh (fun l ->
      Dgc_profile.Ledger.on_conclude l ~trace:(lkey trace)
        ~outcome:(String.lowercase_ascii (Verdict.to_string outcome))
        ~at:(now_s sh));
  bump_stat sh trace (fun s ->
      if s.ts_outcome = None then gauge_in_flight sh (-1);
      s.ts_outcome <- Some (outcome, Engine.now sh.eng);
      s.ts_participants <- parts;
      let lat_ms =
        1000.
        *. Sim_time.to_seconds (Sim_time.sub (Engine.now sh.eng) s.ts_started)
      in
      Metrics.hist_observe metrics "back.latency_ms" lat_ms;
      Metrics.hist_observe metrics
        (Site.metric_label
           (Engine.site sh.eng s.ts_initiator)
           "back.latency_ms")
        lat_ms;
      Metrics.hist_observe metrics "back.frames_per_trace"
        (float_of_int s.ts_frames);
      Metrics.hist_observe metrics "back.msgs_per_trace"
        (float_of_int s.ts_msgs));
  (match tracer sh with
  | None -> ()
  | Some tr -> (
      match root_span sh trace with
      | Some id ->
          Tel.Tracer.finish_span tr id ~at:(now_s sh)
            [
              ("outcome", jstr (Verdict.to_string outcome));
              ("participants", jint (Site_id.Set.cardinal parts));
            ]
      | None -> ()));
  List.iter (fun f -> f trace outcome parts) sh.observers;
  (* Report phase (§4.5): inform every participant. *)
  Site_id.Set.iter
    (fun p ->
      if not (Site_id.equal p (self_id st)) then begin
        start_msg_span sh (report_key trace p) ~name:"report"
          ~site:(Site_id.to_int (self_id st))
          ~parent:(root_span sh trace)
          [
            ("src", jsite (self_id st));
            ("dst", jsite p);
            ("outcome", jstr (Verdict.to_string outcome));
          ];
        led sh (fun l -> Dgc_profile.Ledger.on_report l ~trace:(lkey trace));
        send_back sh ~src:(self_id st) ~dst:p trace
          (Back_report { trace; outcome })
      end)
    parts;
  (let cfg = Engine.config sh.eng in
   if cfg.Config.retry_limit > 0 then begin
     (* Blind redundancy for the §4.5 fan-out: the protocol has no
        report acks, but [apply_report] is idempotent, so re-sending
        each report on the retry schedule means a dropped copy no
        longer strands participants until the visited TTL. *)
     let base = Sim_time.to_seconds cfg.Config.back_call_timeout in
     Site_id.Set.iter
       (fun p ->
         if not (Site_id.equal p (self_id st)) then
           for k = 1 to cfg.Config.retry_limit do
             let delay =
               Sim_time.of_seconds
                 (base *. (cfg.Config.retry_backoff ** float_of_int (k - 1)))
             in
             Engine.schedule sh.eng ~delay (fun () ->
                 Metrics.incr (Engine.metrics sh.eng) "retry.back_report";
                 Engine.series_incr sh.eng "retry.back_report";
                 led sh (fun l ->
                     Dgc_profile.Ledger.on_retry l ~trace:(lkey trace));
                 send_back sh ~src:(self_id st) ~dst:p trace
                   (Back_report { trace; outcome }))
           done)
       parts
   end);
  apply_report sh st trace outcome

and apply_report sh st trace outcome =
  (match Hashtbl.find_opt st.visited_refs trace with
  | None -> ()
  | Some l ->
      Hashtbl.remove st.visited_refs trace;
      List.iter
        (fun r ->
          if Site_id.equal (Oid.site r) (self_id st) then begin
            match Tables.find_inref (tables st) r with
            | None -> ()
            | Some ir ->
                ir.Ioref.ir_visited <-
                  Trace_id.Set.remove trace ir.Ioref.ir_visited;
                if Verdict.equal outcome Verdict.Garbage then begin
                  ir.Ioref.ir_flagged <- true;
                  Metrics.incr (Engine.metrics sh.eng) "back.inrefs_flagged";
                  Engine.jlog sh.eng ~cat:"back" "inref %a flagged garbage"
                    Oid.pp r
                end
          end
          else
            match Tables.find_outref (tables st) r with
            | None -> ()
            | Some o ->
                o.Ioref.or_visited <-
                  Trace_id.Set.remove trace o.Ioref.or_visited)
        !l);
  (* Drop any leftover frames of this trace at this site. *)
  let leftovers =
    Hashtbl.fold
      (fun id fr acc -> if Trace_id.equal fr.fr_trace trace then id :: acc else acc)
      st.frames []
  in
  List.iter
    (fun id ->
      match Hashtbl.find_opt st.frames id with
      | Some fr ->
          fr.fr_done <- true;
          Hashtbl.remove st.frames id;
          gauge_frames sh (-1);
          finish_frame_span sh fr [ ("aborted", Tel.Json.Bool true) ]
      | None -> ())
    leftovers;
  (* The trace is settled at this site: forget its call memo (any
     further duplicates are stale and will be re-answered from the
     tables, which now reflect the outcome). *)
  let stale_memo =
    Hashtbl.fold
      (fun ((tr, _, _) as k) _ acc ->
        if Trace_id.equal tr trace then k :: acc else acc)
      st.call_memo []
  in
  List.iter (Hashtbl.remove st.call_memo) stale_memo

and record_visit sh st trace r =
  match Hashtbl.find_opt st.visited_refs trace with
  | Some l -> l := r :: !l
  | None ->
      let l = ref [ r ] in
      Hashtbl.add st.visited_refs trace l;
      let cfg = Engine.config sh.eng in
      let ttl = cfg.Config.visited_ttl in
      (* With retries enabled the §4.6 give-up can land well after the
         configured TTL; stretch the TTL past the whole backoff
         schedule so a retried call can still settle the trace instead
         of being aborted under it. Single-shot runs keep the exact
         configured TTL (and their event stream). *)
      let ttl =
        if cfg.Config.retry_limit <= 0 then ttl
        else begin
          let base = Sim_time.to_seconds cfg.Config.back_call_timeout in
          let span = ref base in
          for k = 0 to cfg.Config.retry_limit do
            span := !span +. (base *. (cfg.Config.retry_backoff ** float_of_int k))
          done;
          if Sim_time.(ttl < Sim_time.of_seconds !span) then
            Sim_time.of_seconds !span
          else ttl
        end
      in
      if not cfg.Config.enable_timeouts then ()
      else
      Engine.schedule sh.eng
        ~san:(fun () -> (self_id st, timer_key_ttl trace ~site:(self_id st)))
        ~delay:ttl (fun () ->
          if Hashtbl.mem st.visited_refs trace then begin
            (* Never heard the outcome: assume Live (§4.6). *)
            Metrics.incr (Engine.metrics sh.eng) "back.visited_ttl_expired";
            led sh (fun l ->
                Dgc_profile.Ledger.on_timeout l ~trace:(lkey trace));
            (match tracer sh with
            | None -> ()
            | Some tr ->
                ignore
                  (Tel.Tracer.event tr
                     ?parent:(root_span sh trace)
                     ~trace:(tkey trace) ~name:"timeout.visited_ttl"
                     ~site:(Site_id.to_int (self_id st))
                     ~at:(now_s sh) []));
            apply_report sh st trace Verdict.Live
          end)

(* BackStepLocal (§4.4): [r] names an outref of this site. *)
and step_local sh st trace r parent =
  match Tables.find_outref (tables st) r with
  | None ->
      (* ioref deleted by the collector: garbage. *)
      return_to sh st trace parent Verdict.Garbage
  | Some o ->
      if Ioref.outref_clean o then return_to sh st trace parent Verdict.Live
      else if Trace_id.Set.mem trace o.Ioref.or_visited then
        return_to sh st trace parent Verdict.Garbage
      else begin
        o.Ioref.or_visited <- Trace_id.Set.add trace o.Ioref.or_visited;
        o.Ioref.or_back_threshold <- o.Ioref.or_back_threshold + bump sh;
        record_visit sh st trace r;
        let fr = new_frame sh st trace parent r ~kind:"frame.local" in
        match o.Ioref.or_inset with
        | [] -> finish sh st fr Verdict.Garbage
        | inset ->
            fr.fr_pending <- List.length inset;
            List.iter
              (fun i -> step_remote sh st trace i (P_local fr.fr_id))
              inset
      end

(* BackStepRemote (§4.4): [i] names an inref of this site; branch
   calls go to every source site in parallel. *)
and step_remote sh st trace i parent =
  match Tables.find_inref (tables st) i with
  | None -> return_to sh st trace parent Verdict.Garbage
  | Some ir ->
      if ir.Ioref.ir_flagged then
        (* Already confirmed garbage by an earlier trace. *)
        return_to sh st trace parent Verdict.Garbage
      else if Ioref.inref_clean ~delta:(delta sh) ir then
        return_to sh st trace parent Verdict.Live
      else if Trace_id.Set.mem trace ir.Ioref.ir_visited then
        return_to sh st trace parent Verdict.Garbage
      else begin
        ir.Ioref.ir_visited <- Trace_id.Set.add trace ir.Ioref.ir_visited;
        ir.Ioref.ir_back_threshold <- ir.Ioref.ir_back_threshold + bump sh;
        record_visit sh st trace i;
        let fr = new_frame sh st trace parent i ~kind:"frame.remote" in
        match Ioref.source_sites ir with
        | [] -> finish sh st fr Verdict.Garbage
        | sources ->
            fr.fr_pending <- List.length sources;
            List.iter
              (fun q ->
                let seq = st.next_call in
                st.next_call <- seq + 1;
                fr.fr_calls <- Int_set.add seq fr.fr_calls;
                bump_stat sh trace (fun s -> s.ts_calls <- s.ts_calls + 1);
                led sh (fun l ->
                    Dgc_profile.Ledger.on_call l ~trace:(lkey trace));
                start_msg_span sh
                  (call_key trace ~caller:(self_id st) ~callee:q seq)
                  ~name:"leap.call"
                  ~site:(Site_id.to_int (self_id st))
                  ~parent:(if fr.fr_span >= 0 then Some fr.fr_span else None)
                  [
                    ("src", jsite (self_id st));
                    ("dst", jsite q);
                    ("ref", jstr (Oid.to_string i));
                  ];
                let send_call () =
                  send_back sh ~src:(self_id st) ~dst:q trace
                    (Back_call
                       {
                         trace;
                         r = i;
                         reply_site = self_id st;
                         reply_frame = fr.fr_id;
                         call_seq = seq;
                       })
                in
                let cfg = Engine.config sh.eng in
                let base = Sim_time.to_seconds cfg.Config.back_call_timeout in
                (* Attempt [k] waits timeout·backoff^k, then either
                   re-sends the call (k < retry_limit — the receiver
                   memo makes duplicates harmless) or finally assumes
                   Live (§4.6). [retry_limit = 0] is the paper's
                   single-shot timeout, event-for-event. *)
                let rec arm attempt =
                  let delay =
                    if attempt = 0 then cfg.Config.back_call_timeout
                    else
                      Sim_time.of_seconds
                        (base
                        *. (cfg.Config.retry_backoff ** float_of_int attempt))
                  in
                  Engine.schedule sh.eng
                    ~san:(fun () ->
                      (self_id st, timer_key_call trace ~site:(self_id st) seq))
                    ~delay (fun () ->
                      match Hashtbl.find_opt st.frames fr.fr_id with
                      | Some fr'
                        when (not fr'.fr_done) && Int_set.mem seq fr'.fr_calls
                        ->
                          if attempt < cfg.Config.retry_limit then begin
                            Metrics.incr (Engine.metrics sh.eng)
                              "retry.back_call";
                            Engine.series_incr sh.eng "retry.back_call";
                            led sh (fun l ->
                                Dgc_profile.Ledger.on_retry l
                                  ~trace:(lkey trace));
                            Engine.jlog sh.eng ~level:Journal.Debug
                              ~cat:"retry"
                              "%a call %d to %a unanswered: retry %d/%d"
                              Trace_id.pp trace seq Site_id.pp q (attempt + 1)
                              cfg.Config.retry_limit;
                            send_call ();
                            arm (attempt + 1)
                          end
                          else begin
                            fr'.fr_calls <- Int_set.remove seq fr'.fr_calls;
                            (* No reply: assume Live (§4.6). *)
                            if cfg.Config.retry_limit > 0 then
                              Metrics.incr (Engine.metrics sh.eng)
                                "retry.exhausted";
                            Metrics.incr (Engine.metrics sh.eng)
                              "back.call_timeout";
                            led sh (fun l ->
                                Dgc_profile.Ledger.on_timeout l
                                  ~trace:(lkey trace));
                            finish_msg_span sh
                              (call_key trace ~caller:(self_id st) ~callee:q
                                 seq)
                              [ ("timeout", Tel.Json.Bool true) ];
                            (match tracer sh with
                            | None -> ()
                            | Some tr ->
                                ignore
                                  (Tel.Tracer.event tr
                                     ?parent:
                                       (if fr'.fr_span >= 0 then
                                          Some fr'.fr_span
                                        else None)
                                     ~trace:(tkey trace) ~name:"timeout.call"
                                     ~site:(Site_id.to_int (self_id st))
                                     ~at:(now_s sh)
                                     [ ("dst", jsite q) ]));
                            child_done sh st fr' Verdict.Live
                              Site_id.Set.empty
                          end
                      | _ -> ())
                in
                send_call ();
                (* The [enable_timeouts] ablation plants the lost-trace
                   defect: the call goes out but silence is never read
                   as Live, so a crashed callee strands this frame (and
                   the memo entries behind it) forever. *)
                if cfg.Config.enable_timeouts then arm 0)
              sources
      end

let start sh site_id outref =
  let st = state sh site_id in
  match Tables.find_outref (tables st) outref with
  | Some o when not (Ioref.outref_clean o) ->
      let trace = Trace_id.make ~initiator:site_id ~seq:st.next_trace in
      st.next_trace <- st.next_trace + 1;
      Hashtbl.replace sh.tstats trace
        {
          ts_initiator = site_id;
          ts_root = outref;
          ts_started = Engine.now sh.eng;
          ts_msgs = 0;
          ts_calls = 0;
          ts_frames = 0;
          ts_participants = Site_id.Set.empty;
          ts_outcome = None;
        };
      Metrics.incr (Engine.metrics sh.eng) "back.traces_started";
      led sh (fun l ->
          Dgc_profile.Ledger.on_start l ~trace:(lkey trace)
            ~root:(Oid.to_string outref) ~at:(now_s sh));
      gauge_in_flight sh 1;
      (match tracer sh with
      | None -> ()
      | Some tr ->
          Hashtbl.replace sh.t_spans trace
            (Tel.Tracer.start_span tr ~trace:(tkey trace) ~name:"back_trace"
               ~site:(Site_id.to_int site_id) ~at:(now_s sh)
               [ ("root", jstr (Oid.to_string outref)) ]));
      Engine.jlog sh.eng ~cat:"back" "%a started from outref %a" Trace_id.pp
        trace Oid.pp outref;
      step_local sh st trace outref P_initiator;
      Some trace
  | Some _ | None -> None

let handle_ext sh site_id ~src ext =
  let st = state sh site_id in
  match ext with
  | Back_call { trace; r; reply_site; reply_frame; call_seq } ->
      finish_msg_span sh
        (call_key trace ~caller:reply_site ~callee:site_id call_seq)
        [];
      let key = (trace, reply_site, call_seq) in
      (match Hashtbl.find_opt st.call_memo key with
      | Some (Some reply) ->
          (* Duplicate of a call already answered: replay the cached
             reply verbatim (at-least-once delivery, exactly-once
             tracing). *)
          Metrics.incr (Engine.metrics sh.eng) "back.call_replayed";
          led sh (fun l -> Dgc_profile.Ledger.on_memo_hit l ~trace:(lkey trace));
          Engine.jlog sh.eng ~level:Journal.Debug ~cat:"back"
            "%a duplicate call %d from %a: replaying cached reply"
            Trace_id.pp trace call_seq Site_id.pp reply_site;
          send_back sh ~src:site_id ~dst:reply_site trace reply
      | Some None ->
          (* Duplicate of a call still being traced: the eventual
             reply answers both copies. *)
          Metrics.incr (Engine.metrics sh.eng) "back.dup_call_ignored";
          led sh (fun l -> Dgc_profile.Ledger.on_memo_hit l ~trace:(lkey trace));
          Engine.jlog sh.eng ~level:Journal.Debug ~cat:"back"
            "%a duplicate call %d from %a ignored (in progress)"
            Trace_id.pp trace call_seq Site_id.pp reply_site
      | None ->
          memo_add st key None;
          step_local sh st trace r
            (P_remote { site = reply_site; frame = reply_frame; call_seq }));
      true
  | Back_reply { trace; reply_frame; call_seq; verdict; participants } ->
      finish_msg_span sh
        (reply_key trace ~replier:src ~target:site_id call_seq)
        [];
      (match Hashtbl.find_opt st.frames reply_frame with
      | Some fr when Int_set.mem call_seq fr.fr_calls ->
          fr.fr_calls <- Int_set.remove call_seq fr.fr_calls;
          child_done sh st fr verdict participants
      | Some _ | None -> ());
      true
  | Back_report { trace; outcome } ->
      finish_msg_span sh (report_key trace site_id) [];
      apply_report sh st trace outcome;
      true
  | _ -> false

let on_cleaned sh site_id r =
  if (Engine.config sh.eng).Config.enable_clean_rule then begin
    let st = state sh site_id in
    let hits =
      Hashtbl.fold
        (fun _ fr acc ->
          if (not fr.fr_done) && Oid.equal fr.fr_ioref r then fr :: acc
          else acc)
        st.frames []
    in
    List.iter
      (fun fr ->
        Metrics.incr (Engine.metrics sh.eng) "back.clean_rule_fired";
        (match tracer sh with
        | None -> ()
        | Some tr ->
            ignore
              (Tel.Tracer.event tr
                 ?parent:(if fr.fr_span >= 0 then Some fr.fr_span else None)
                 ~trace:(tkey fr.fr_trace) ~name:"clean_rule"
                 ~site:(Site_id.to_int site_id) ~at:(now_s sh)
                 [ ("ref", jstr (Oid.to_string r)) ]));
        finish sh st fr Verdict.Live)
      hits
  end

let active_frames sh site_id = Hashtbl.length (state sh site_id).frames

type parent_info =
  | Pi_initiator
  | Pi_local of int
  | Pi_remote of { site : Site_id.t; frame : int; call_seq : int }

type frame_info = {
  fi_id : int;
  fi_trace : Trace_id.t;
  fi_ioref : Oid.t;
  fi_kind : string;
  fi_pending : int;
  fi_started : Sim_time.t;
  fi_span : int option;
  fi_parent : parent_info;
  fi_calls : int list;
}

let open_frames sh site_id =
  Hashtbl.fold
    (fun _ fr acc ->
      if fr.fr_done then acc
      else
        {
          fi_id = fr.fr_id;
          fi_trace = fr.fr_trace;
          fi_ioref = fr.fr_ioref;
          fi_kind = fr.fr_kind;
          fi_pending = fr.fr_pending;
          fi_started = fr.fr_started;
          fi_span = (if fr.fr_span >= 0 then Some fr.fr_span else None);
          fi_parent =
            (match fr.fr_parent with
            | P_initiator -> Pi_initiator
            | P_local id -> Pi_local id
            | P_remote { site; frame; call_seq } ->
                Pi_remote { site; frame; call_seq });
          fi_calls = Int_set.elements fr.fr_calls;
        }
        :: acc)
    (state sh site_id).frames []
  |> List.sort (fun a b -> Int.compare a.fi_id b.fi_id)

type residue = { rs_frames : int; rs_memo : int; rs_visited : int }

let residue sh =
  let acc : (Trace_id.t, (Site_id.t * residue) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  Array.iter
    (fun st ->
      let per : (Trace_id.t, residue) Hashtbl.t = Hashtbl.create 8 in
      let bump tr f =
        let r =
          Option.value
            (Hashtbl.find_opt per tr)
            ~default:{ rs_frames = 0; rs_memo = 0; rs_visited = 0 }
        in
        Hashtbl.replace per tr (f r)
      in
      Hashtbl.iter
        (fun _ fr ->
          if not fr.fr_done then
            bump fr.fr_trace (fun r -> { r with rs_frames = r.rs_frames + 1 }))
        st.frames;
      Hashtbl.iter
        (fun (tr, _, _) _ ->
          bump tr (fun r -> { r with rs_memo = r.rs_memo + 1 }))
        st.call_memo;
      Hashtbl.iter
        (fun tr l ->
          bump tr (fun r ->
              { r with rs_visited = r.rs_visited + List.length !l }))
        st.visited_refs;
      Hashtbl.iter
        (fun tr r ->
          match Hashtbl.find_opt acc tr with
          | Some l -> l := (self_id st, r) :: !l
          | None -> Hashtbl.add acc tr (ref [ (self_id st, r) ]))
        per)
    sh.states;
  Hashtbl.fold
    (fun tr l out ->
      ( tr,
        List.sort (fun (a, _) (b, _) -> Site_id.compare a b) !l )
      :: out)
    acc []
  |> List.sort (fun (a, _) (b, _) -> Trace_id.compare a b)

let stats sh =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) sh.tstats []
  |> List.sort (fun (a, _) (b, _) -> Trace_id.compare a b)

(* Fixed size model shared with [Tables.approx_bytes]: 8-byte words,
   per-record constants for frames and memo entries, list cells for
   visited refs. Covers the machinery a lost report would leak. *)
let approx_bytes sh =
  let word = 8 in
  let n = ref 0 in
  Array.iter
    (fun st ->
      n := !n + (word * 18 * Hashtbl.length st.frames);
      n := !n + (word * 6 * Hashtbl.length st.call_memo);
      Hashtbl.iter
        (fun _ l -> n := !n + (word * 3 * List.length !l))
        st.visited_refs)
    sh.states;
  !n

let find_stat sh trace = Hashtbl.find_opt sh.tstats trace
