open Dgc_prelude
open Dgc_heap
open Dgc_rts

type kind =
  | Local_safety
  | Auxiliary
  | Remote_safety
  | Visited_hygiene
  | Distance_sanity

let kind_name = function
  | Local_safety -> "local-safety"
  | Auxiliary -> "auxiliary"
  | Remote_safety -> "remote-safety"
  | Visited_hygiene -> "visited-hygiene"
  | Distance_sanity -> "distance-sanity"

type violation = {
  v_kind : kind;
  v_site : Site_id.t;
  v_subject : Oid.t option;
  v_message : string;
}

exception Violation of violation list

let to_string v = kind_name v.v_kind ^ ": " ^ v.v_message
let strings vs = List.map to_string vs

let pp_violation ppf v = Format.pp_print_string ppf (to_string v)

let () =
  Printexc.register_printer (function
    | Violation vs ->
        Some
          (Format.asprintf "Invariants.Violation [@[<v>%a@]]"
             (Format.pp_print_list ~pp_sep:Format.pp_print_space pp_violation)
             vs)
    | _ -> None)

let delta eng = (Engine.config eng).Config.delta

let note acc ~kind ~site ?subject fmt =
  Format.kasprintf
    (fun s ->
      acc :=
        { v_kind = kind; v_site = site; v_subject = subject; v_message = s }
        :: !acc)
    fmt

let no_skip : Site_id.t -> bool = fun _ -> false

(* Apply [f] to every site the caller did not ask to skip (sites in an
   open trace window hold the old table copy, §6.2, and are not
   checkable mid-window). *)
let each_site ?(skip = no_skip) eng f =
  Array.iter
    (fun s -> if not (skip s.Site.id) then f s)
    (Engine.sites eng)

(* --- local safety (§6.1) ------------------------------------------------- *)

let local_safety ?skip eng =
  let acc = ref [] in
  each_site ?skip eng (fun s ->
      let graph = Reach.of_heap s.Site.heap in
      (* Ground truth: for every non-flagged inref, the set of remote
         references locally reachable from it. *)
      let reach_of_inref =
        List.filter_map
          (fun ir ->
            if ir.Ioref.ir_flagged then None
            else begin
              let _locals, remotes =
                Reach.closure graph ~from:[ ir.Ioref.ir_target ]
              in
              Some (ir, remotes)
            end)
          (Tables.inrefs s.Site.tables)
      in
      Tables.iter_outrefs s.Site.tables (fun o ->
          if not (Ioref.outref_clean o) then
            List.iter
              (fun (ir, remotes) ->
                if
                  Oid.Set.mem o.Ioref.or_target remotes
                  && not
                       (List.exists
                          (Oid.equal ir.Ioref.ir_target)
                          o.Ioref.or_inset)
                then
                  note acc ~kind:Local_safety ~site:s.Site.id
                    ~subject:o.Ioref.or_target
                    "%a: suspected outref %a is reachable from inref %a but \
                     its inset omits it"
                    Site_id.pp s.Site.id Oid.pp o.Ioref.or_target Oid.pp
                    ir.Ioref.ir_target)
              reach_of_inref));
  List.rev !acc

(* --- auxiliary invariant (§6.1) ------------------------------------------- *)

let auxiliary ?skip eng =
  let acc = ref [] in
  each_site ?skip eng (fun s ->
      Tables.iter_outrefs s.Site.tables (fun o ->
          if not (Ioref.outref_clean o) then
            List.iter
              (fun i ->
                match Tables.find_inref s.Site.tables i with
                | Some ir when Ioref.inref_clean ~delta:(delta eng) ir ->
                    note acc ~kind:Auxiliary ~site:s.Site.id
                      ~subject:o.Ioref.or_target
                      "%a: inset of suspected outref %a names the clean inref \
                       %a"
                      Site_id.pp s.Site.id Oid.pp o.Ioref.or_target Oid.pp i
                | Some _ | None -> ())
              o.Ioref.or_inset));
  List.rev !acc

(* --- remote safety (§6.1.2) ------------------------------------------------ *)

let remote_safety ?skip eng =
  let acc = ref [] in
  each_site ?skip eng (fun s ->
      Tables.iter_inrefs s.Site.tables (fun ir ->
          if
            (not ir.Ioref.ir_flagged)
            && not (Ioref.inref_clean ~delta:(delta eng) ir)
          then begin
            let i = ir.Ioref.ir_target in
            each_site ?skip eng (fun p ->
                if not (Site_id.equal p.Site.id s.Site.id) then begin
                  let holds_in_heap =
                    Heap.fold p.Site.heap ~init:false ~f:(fun found o ->
                        found || List.exists (Oid.equal i) o.Heap.fields)
                  in
                  let holds_in_roots =
                    List.exists (Oid.equal i) (Engine.app_roots eng p.Site.id)
                  in
                  if holds_in_heap || holds_in_roots then begin
                    let listed = Ioref.find_source ir p.Site.id <> None in
                    let clean_outref =
                      match Tables.find_outref p.Site.tables i with
                      | Some o -> Ioref.outref_clean o
                      | None -> false
                    in
                    if (not listed) && not clean_outref then
                      note acc ~kind:Remote_safety ~site:s.Site.id ~subject:i
                        "%a: suspected inref %a misses holder %a (and %a has \
                         no clean outref for it)"
                        Site_id.pp s.Site.id Oid.pp i Site_id.pp p.Site.id
                        Site_id.pp p.Site.id
                  end
                end)
          end));
  List.rev !acc

(* --- visited-mark hygiene --------------------------------------------------- *)

let visited_hygiene ?skip eng =
  let acc = ref [] in
  each_site ?skip eng (fun s ->
      Tables.iter_inrefs s.Site.tables (fun ir ->
          if
            (not (Trace_id.Set.is_empty ir.Ioref.ir_visited))
            && (not ir.Ioref.ir_suspected)
            && (not ir.Ioref.ir_forced_clean)
            && not ir.Ioref.ir_flagged
          then
            note acc ~kind:Visited_hygiene ~site:s.Site.id
              ~subject:ir.Ioref.ir_target
              "%a: visited marks on never-suspected inref %a" Site_id.pp
              s.Site.id Oid.pp ir.Ioref.ir_target);
      Tables.iter_outrefs s.Site.tables (fun o ->
          if
            (not (Trace_id.Set.is_empty o.Ioref.or_visited))
            && (not o.Ioref.or_suspected)
            && not o.Ioref.or_forced_clean
          then
            note acc ~kind:Visited_hygiene ~site:s.Site.id
              ~subject:o.Ioref.or_target
              "%a: visited marks on never-suspected outref %a" Site_id.pp
              s.Site.id Oid.pp o.Ioref.or_target));
  List.rev !acc

(* --- distance sanity ---------------------------------------------------------- *)

(* True inter-site distances from the roots: 0-1 BFS over the global
   graph (cross-site edges cost 1, local edges cost 0). *)
let true_distances eng =
  let dist : int Oid.Tbl.t = Oid.Tbl.create 256 in
  let deque = ref [] and back = ref [] in
  let push_front x = deque := x :: !deque in
  let push_back x = back := x :: !back in
  let pop () =
    match !deque with
    | x :: tl ->
        deque := tl;
        Some x
    | [] -> (
        match List.rev !back with
        | [] -> None
        | x :: tl ->
            deque := tl;
            back := [];
            Some x)
  in
  let heap_of r = (Engine.site eng (Oid.site r)).Site.heap in
  let relax r d =
    if Heap.mem (heap_of r) r then begin
      match Oid.Tbl.find_opt dist r with
      | Some d' when d' <= d -> ()
      | _ ->
          Oid.Tbl.replace dist r d;
          if d = 0 then push_front (r, d) else push_back (r, d)
    end
  in
  each_site eng (fun s ->
      List.iter
        (fun r -> relax r 0)
        (Heap.persistent_roots s.Site.heap @ Engine.app_roots eng s.Site.id));
  let rec drain () =
    match pop () with
    | None -> ()
    | Some (r, d) ->
        if Oid.Tbl.find_opt dist r = Some d then
          List.iter
            (fun z ->
              let w = if Site_id.equal (Oid.site z) (Oid.site r) then 0 else 1 in
              relax z (d + w))
            (Heap.fields (heap_of r) r);
        drain ()
  in
  drain ();
  dist

(* An inref's per-source distance estimates the shortest root path
   that ends with that inter-site reference: at most one more than the
   true distance of some holder of the reference at the source site.
   Estimates are conservative (start at 1, grow toward the truth), so
   in a settled system: recorded <= 1 + min holder distance. *)
let distance_sanity ?skip eng =
  let acc = ref [] in
  let truth = true_distances eng in
  each_site ?skip eng (fun s ->
      Tables.iter_inrefs s.Site.tables (fun ir ->
          let i = ir.Ioref.ir_target in
          List.iter
            (fun src ->
              let p = Engine.site eng src.Ioref.src_site in
              let holder_truth =
                Heap.fold p.Site.heap ~init:None ~f:(fun best o ->
                    if List.exists (Oid.equal i) o.Heap.fields then
                      match Oid.Tbl.find_opt truth o.Heap.oid with
                      | Some d ->
                          Some
                            (match best with
                            | Some b -> min b d
                            | None -> d)
                      | None -> best
                    else best)
              in
              match holder_truth with
              | Some h ->
                  if
                    src.Ioref.src_dist > h + 1
                    && src.Ioref.src_dist < Ioref.infinity_dist
                  then
                    note acc ~kind:Distance_sanity ~site:s.Site.id ~subject:i
                      "%a: inref %a source %a records %d but a live holder \
                       sits at true distance %d"
                      Site_id.pp s.Site.id Oid.pp i Site_id.pp
                      src.Ioref.src_site src.Ioref.src_dist h
              | None -> (* garbage or stale holder: any estimate *) ())
            ir.Ioref.ir_sources));
  List.rev !acc

(* --- batteries --------------------------------------------------------------- *)

let per_step ?skip eng =
  List.concat
    [
      local_safety ?skip eng;
      auxiliary ?skip eng;
      remote_safety ?skip eng;
      visited_hygiene ?skip eng;
    ]

let check_all ?skip eng = per_step ?skip eng @ distance_sanity ?skip eng

let check_exn ?skip eng =
  match per_step ?skip eng with [] -> () | vs -> raise (Violation vs)
