open Dgc_simcore
open Dgc_rts

type t = { eng : Engine.t; col : Collector.t; muts : Mutator.manager }

let make ?(cfg = Config.default) () =
  let eng = Engine.create cfg in
  (* The flight recorder is always-on at the Sim layer: every path
     that can fail (campaigns, the CLI, benches) goes through [make],
     so any later [Engine.dump_flight] finds a populated ring. It
     draws no randomness, so runs stay event-identical either way. *)
  if cfg.Config.flight_capacity > 0 then
    Engine.attach_flight eng
      (Dgc_telemetry.Flight.create ~capacity:cfg.Config.flight_capacity
         ~n_sites:cfg.Config.n_sites ());
  (* Same contract as the flight recorder: the profiler draws no
     randomness and schedules no events, so runs stay event-identical
     with it on or off. *)
  if cfg.Config.profile then
    Engine.attach_profile eng (Dgc_profile.Profile.create ());
  let col = Collector.install eng in
  let muts = Mutator.manager eng in
  (match cfg.Config.check_level with
  | Config.Check_step ->
      (* Sanitizer mode: the continuously-maintained §6.1 invariants
         after every event, skipping sites mid-trace-window (§6.2). *)
      Engine.set_on_step eng (fun () ->
          Invariants.check_exn ~skip:(Collector.in_window col) eng)
  | Config.Check_off | Config.Check_final -> ());
  { eng; col; muts }

let check ?(settled = false) t =
  let skip = Collector.in_window t.col in
  if settled then Invariants.check_all ~skip t.eng
  else Invariants.per_step ~skip t.eng

let start t = Engine.start_gc_schedule t.eng
let run_for t d = Engine.run_for t.eng d

let run_rounds t n =
  let target = Engine.trace_rounds_completed t.eng + n in
  let interval = (Engine.config t.eng).Config.trace_interval in
  (* Step in quarter-intervals so we stop close to the target round
     rather than overshooting by several trace rounds. *)
  let chunk =
    Sim_time.of_seconds (Float.max 0.5 (Sim_time.to_seconds interval /. 4.))
  in
  let guard = ref ((16 * n) + 64) in
  while Engine.trace_rounds_completed t.eng < target && !guard > 0 do
    decr guard;
    run_for t chunk
  done

let collect_all t ?(max_rounds = 40) () =
  let rec loop n =
    if Dgc_oracle.Oracle.garbage_count t.eng = 0 then true
    else if n >= max_rounds then false
    else begin
      run_rounds t 1;
      loop (n + 1)
    end
  in
  loop 0
