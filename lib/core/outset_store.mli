(** Canonical, shared outsets with memoized unions (§5.2).

    An outset is a set of suspected outrefs. During the bottom-up
    computation the same outsets recur constantly — objects in a chain
    or a strongly connected component share one — so outsets are
    hash-consed: each distinct set is stored once and named by an
    integer id, and the results of unions are memoized on pairs of
    ids. Re-doing a memoized union is O(1).

    A store lives for one local trace and is discarded afterwards;
    only the resulting per-inref outsets (plain lists) are retained,
    as in the paper.

    Domain-safety: a store is confined to the single [compute] call
    that created it — every cache (interning table, union memo,
    singleton cache) is per-instance, never module-level — so
    concurrent traces on different shards each build their own store
    and never share one. Do not retain a store across the trace or
    hand it to another domain. *)

open Dgc_heap

type t

type id = int
(** Concrete so callers can keep ids in [int array] workspaces (the
    trace hot path); treat as opaque otherwise. Only ids produced by
    the same store are meaningful. *)

(** [create ?memoize ()] — [memoize] (default true) controls the union
    memo table, the §5.2 optimization. Disable only for the ablation
    bench; results are identical either way. *)
val create : ?memoize:bool -> unit -> t
val empty : t -> id
val singleton : t -> Oid.t -> id
val union : t -> id -> id -> id
val add : t -> id -> Oid.t -> id
val elements : t -> id -> Oid.t list
(** Ascending by {!Oid.compare}. *)

val cardinal : t -> id -> int
val is_empty_id : t -> id -> bool

type stats = {
  distinct : int;  (** distinct outsets interned *)
  union_calls : int;
  memo_hits : int;
  elements_stored : int;  (** total size of all interned sets *)
}

val stats : t -> stats

val approx_bytes : t -> int
(** Estimated bytes held by the interned sets and the union memo,
    under the fixed 8-byte-word size model shared with
    [Tables.approx_bytes]. The trace-workspace component of the
    memory-accounting gauges. *)
