open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts

type mode = Bottom_up | Independent | Naive_bottom_up

type input = {
  in_site : Site_id.t;
  in_graph : Reach.graph;
  in_indices : int list;
  in_roots : Oid.t list;
  in_inrefs : (Oid.t * int * bool) list;
  in_outrefs : Oid.t list;
  in_delta : int;
}

let sample_tables site =
  let inrefs =
    List.map
      (fun ir ->
        (ir.Ioref.ir_target, Ioref.inref_dist ir, ir.Ioref.ir_flagged))
      (Tables.inrefs site.Site.tables)
  in
  let outrefs =
    List.map (fun o -> o.Ioref.or_target) (Tables.outrefs site.Site.tables)
  in
  (inrefs, outrefs)

let input_of_site eng site =
  let heap = site.Site.heap in
  let inrefs, outrefs = sample_tables site in
  {
    in_site = site.Site.id;
    in_graph = Reach.of_heap heap;
    in_indices = Heap.indices heap;
    in_roots = Heap.persistent_roots heap @ Engine.app_roots eng site.Site.id;
    in_inrefs = inrefs;
    in_outrefs = outrefs;
    in_delta = (Engine.config eng).Config.delta;
  }

let input_of_snapshot eng site snap =
  let inrefs, outrefs = sample_tables site in
  {
    in_site = site.Site.id;
    in_graph = Reach.of_snapshot snap;
    in_indices = Snapshot.indices snap;
    in_roots =
      Snapshot.persistent_roots snap @ Engine.app_roots eng site.Site.id;
    in_inrefs = inrefs;
    in_outrefs = outrefs;
    in_delta = (Engine.config eng).Config.delta;
  }

type out_result = {
  o_ref : Oid.t;
  o_dist : int;
  o_suspected : bool;
  o_removed : bool;
  o_inset : Oid.t list;
}

type in_result = { i_ref : Oid.t; i_suspected : bool; i_outset : Oid.t list }

type stats = {
  clean_visits : int;
  suspect_visits : int;
  distinct_outsets : int;
  union_calls : int;
  memo_hits : int;
  inset_entries : int;
  suspected_inrefs : int;
  suspected_outrefs : int;
}

type outcome = {
  out_site : Site_id.t;
  dead : int list;
  out_results : out_result list;
  in_results : in_result list;
  ot_stats : stats;
}

(* Per-outref accumulator during a trace. *)
type outinfo = { oi_dist : int; mutable oi_clean : bool }

type mark = Clean | Suspect

let compute ?(mode = Bottom_up) inp =
  let graph = inp.in_graph in
  let is_local r = Site_id.equal (Oid.site r) inp.in_site in
  let marks : mark Oid.Tbl.t = Oid.Tbl.create 256 in
  let outinfo : outinfo Oid.Tbl.t = Oid.Tbl.create 64 in
  let clean_visits = ref 0 in
  let suspect_visits = ref 0 in

  (* ---- clean phase: trace distance-ordered clean roots (§3) ---- *)
  let clean_groups =
    (0, inp.in_roots)
    :: List.filter_map
         (fun (r, d, flagged) ->
           if flagged || d > inp.in_delta then None else Some (d, [ r ]))
         inp.in_inrefs
    |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let trace_clean_group (d, roots) =
    let stack = ref [] in
    let visit r =
      if is_local r then begin
        if graph.Reach.g_mem r && not (Oid.Tbl.mem marks r) then begin
          Oid.Tbl.add marks r Clean;
          incr clean_visits;
          stack := r :: !stack
        end
      end
      else begin
        (* First reach sets the distance (ascending root order makes it
           the minimum); any reach from a clean root makes it clean. *)
        match Oid.Tbl.find_opt outinfo r with
        | Some oi -> oi.oi_clean <- true
        | None -> Oid.Tbl.add outinfo r { oi_dist = d + 1; oi_clean = true }
      end
    in
    List.iter visit roots;
    let rec drain () =
      match !stack with
      | [] -> ()
      | r :: tl ->
          stack := tl;
          List.iter visit (graph.Reach.g_fields r);
          drain ()
    in
    drain ()
  in
  List.iter trace_clean_group clean_groups;

  (* ---- suspect phase ---- *)
  let suspects =
    List.filter_map
      (fun (r, d, flagged) ->
        if flagged || d <= inp.in_delta then None else Some (r, d))
      inp.in_inrefs
    |> List.stable_sort (fun (_, a) (_, b) -> Int.compare a b)
  in
  let store = Outset_store.create () in
  (* Encountering a remote reference from a suspected trace rooted at
     distance [d]: returns the outset contribution (None if the outref
     is clean). *)
  let reach_out_suspect d r =
    match Oid.Tbl.find_opt outinfo r with
    | Some oi ->
        if oi.oi_clean then None else Some (Outset_store.singleton store r)
    | None ->
        Oid.Tbl.add outinfo r { oi_dist = d + 1; oi_clean = false };
        Some (Outset_store.singleton store r)
  in

  (* Outset of every traced suspected object, by outset-store id. *)
  let obj_outset : Outset_store.id Oid.Tbl.t = Oid.Tbl.create 256 in

  let inref_outsets : (Oid.t, Oid.t list) Hashtbl.t = Hashtbl.create 64 in

  (match mode with
  | Bottom_up ->
      (* §5.2: fused trace + Tarjan SCC + bottom-up outsets. The state
         mirrors the paper's pseudocode: Mark (visit numbers), Leader,
         Outset, and an auxiliary component stack. *)
      let mark_num : int Oid.Tbl.t = Oid.Tbl.create 256 in
      let lead : int Oid.Tbl.t = Oid.Tbl.create 256 in
      let comp_stack = ref [] in
      let counter = ref 0 in
      let inf = max_int in
      let get tbl x = Oid.Tbl.find tbl x in
      let set tbl x v = Oid.Tbl.replace tbl x v in
      let trace_suspected d root =
        if
          graph.Reach.g_mem root
          && (not (Oid.Tbl.mem marks root))
          && not (Oid.Tbl.mem mark_num root)
        then begin
          let start x =
            set mark_num x !counter;
            set lead x !counter;
            incr counter;
            comp_stack := x :: !comp_stack;
            Oid.Tbl.replace marks x Suspect;
            incr suspect_visits;
            set obj_outset x (Outset_store.empty store)
          in
          start root;
          let frames = ref [ (root, ref (graph.Reach.g_fields root)) ] in
          let merge_into parent child_outset child_leader =
            set obj_outset parent
              (Outset_store.union store (get obj_outset parent) child_outset);
            set lead parent (min (get lead parent) child_leader)
          in
          let finish x =
            if get lead x = get mark_num x then begin
              (* x leads its component: give every member x's outset. *)
              let ox = get obj_outset x in
              let rec pop () =
                match !comp_stack with
                | [] -> assert false
                | z :: tl ->
                    comp_stack := tl;
                    set obj_outset z ox;
                    set lead z inf;
                    if not (Oid.equal z x) then pop ()
              in
              pop ()
            end
          in
          let rec step () =
            match !frames with
            | [] -> ()
            | (x, pending) :: rest -> begin
                match !pending with
                | [] ->
                    finish x;
                    frames := rest;
                    (match rest with
                    | (p, _) :: _ ->
                        merge_into p (get obj_outset x) (get lead x)
                    | [] -> ());
                    step ()
                | z :: ztl ->
                    pending := ztl;
                    if is_local z then begin
                      if
                        graph.Reach.g_mem z
                        && not (Oid.Tbl.mem marks z && get_mark marks z = Clean)
                      then begin
                        if Oid.Tbl.mem mark_num z then
                          (* already traced (possibly on the stack):
                             merge its current outset and leader *)
                          merge_into x (get obj_outset z) (get lead z)
                        else begin
                          start z;
                          frames := (z, ref (graph.Reach.g_fields z)) :: !frames
                        end
                      end
                    end
                    else begin
                      match reach_out_suspect d z with
                      | None -> ()
                      | Some contrib ->
                          set obj_outset x
                            (Outset_store.union store (get obj_outset x)
                               contrib)
                    end;
                    step ()
              end
          and get_mark tbl z = Oid.Tbl.find tbl z in
          step ()
        end
      in
      List.iter
        (fun (r, d) ->
          trace_suspected d r;
          let outset =
            match Oid.Tbl.find_opt obj_outset r with
            | Some id -> Outset_store.elements store id
            | None -> []  (* object clean or absent *)
          in
          Hashtbl.replace inref_outsets r outset)
        suspects
  | Naive_bottom_up ->
      (* §5.2's first cut: single scan, outsets unioned bottom-up, but
         no SCC handling — back edges read incomplete outsets. Kept
         only to demonstrate the failure (Figure 4). *)
      let visited : unit Oid.Tbl.t = Oid.Tbl.create 256 in
      let trace_naive d root =
        if
          graph.Reach.g_mem root
          && Oid.Tbl.find_opt marks root <> Some Clean
          && not (Oid.Tbl.mem visited root)
        then begin
          let start x =
            Oid.Tbl.add visited x ();
            Oid.Tbl.replace marks x Suspect;
            incr suspect_visits;
            Oid.Tbl.replace obj_outset x (Outset_store.empty store)
          in
          start root;
          let frames = ref [ (root, ref (graph.Reach.g_fields root)) ] in
          let merge_into p contrib =
            Oid.Tbl.replace obj_outset p
              (Outset_store.union store (Oid.Tbl.find obj_outset p) contrib)
          in
          let rec step () =
            match !frames with
            | [] -> ()
            | (x, pending) :: rest -> begin
                match !pending with
                | [] ->
                    frames := rest;
                    (match rest with
                    | (p, _) :: _ -> merge_into p (Oid.Tbl.find obj_outset x)
                    | [] -> ());
                    step ()
                | z :: ztl ->
                    pending := ztl;
                    if is_local z then begin
                      if
                        graph.Reach.g_mem z
                        && Oid.Tbl.find_opt marks z <> Some Clean
                      then begin
                        if Oid.Tbl.mem visited z then
                          (* possibly incomplete: the bug *)
                          merge_into x (Oid.Tbl.find obj_outset z)
                        else begin
                          start z;
                          frames :=
                            (z, ref (graph.Reach.g_fields z)) :: !frames
                        end
                      end
                    end
                    else begin
                      match reach_out_suspect d z with
                      | None -> ()
                      | Some contrib -> merge_into x contrib
                    end;
                    step ()
              end
          in
          step ()
        end
      in
      List.iter
        (fun (r, d) ->
          trace_naive d r;
          let outset =
            match Oid.Tbl.find_opt obj_outset r with
            | Some id -> Outset_store.elements store id
            | None -> []
          in
          Hashtbl.replace inref_outsets r outset)
        suspects
  | Independent ->
      (* §5.1: a full, separate trace per suspected inref; objects
         reached by several suspected inrefs are scanned once per
         inref. *)
      List.iter
        (fun (r, d) ->
          let visited = Oid.Tbl.create 64 in
          let acc = ref Oid.Set.empty in
          let stack = ref [] in
          let visit z =
            if is_local z then begin
              if
                graph.Reach.g_mem z
                && (not (Oid.Tbl.mem visited z))
                && Oid.Tbl.find_opt marks z <> Some Clean
              then begin
                Oid.Tbl.add visited z ();
                Oid.Tbl.replace marks z Suspect;
                incr suspect_visits;
                stack := z :: !stack
              end
            end
            else
              match reach_out_suspect d z with
              | None -> ()
              | Some _ -> acc := Oid.Set.add z !acc
          in
          visit r;
          let rec drain () =
            match !stack with
            | [] -> ()
            | z :: tl ->
                stack := tl;
                List.iter visit (graph.Reach.g_fields z);
                drain ()
          in
          drain ();
          Hashtbl.replace inref_outsets r (Oid.Set.elements !acc))
        suspects);

  (* ---- assemble results ---- *)
  let in_results =
    List.map
      (fun (r, d, flagged) ->
        let suspected = (not flagged) && d > inp.in_delta in
        let outset =
          if suspected then
            Option.value ~default:[] (Hashtbl.find_opt inref_outsets r)
          else []
        in
        { i_ref = r; i_suspected = suspected; i_outset = outset })
      inp.in_inrefs
  in
  (* Insets are the inverse view of the suspected inrefs' outsets. *)
  let insets : (Oid.t, Oid.t list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun res ->
      if res.i_suspected then
        List.iter
          (fun o ->
            match Hashtbl.find_opt insets o with
            | Some l -> l := res.i_ref :: !l
            | None -> Hashtbl.add insets o (ref [ res.i_ref ]))
          res.i_outset)
    in_results;
  let out_results =
    List.map
      (fun r ->
        match Oid.Tbl.find_opt outinfo r with
        | None ->
            {
              o_ref = r;
              o_dist = Ioref.infinity_dist;
              o_suspected = false;
              o_removed = true;
              o_inset = [];
            }
        | Some oi ->
            let inset =
              if oi.oi_clean then []
              else
                match Hashtbl.find_opt insets r with
                | Some l -> List.sort Oid.compare !l
                | None -> []
            in
            {
              o_ref = r;
              o_dist = oi.oi_dist;
              o_suspected = not oi.oi_clean;
              o_removed = false;
              o_inset = inset;
            })
      inp.in_outrefs
  in
  let dead =
    List.filter
      (fun i ->
        not (Oid.Tbl.mem marks (Oid.make ~site:inp.in_site ~index:i)))
      inp.in_indices
  in
  let st = Outset_store.stats store in
  let ot_stats =
    {
      clean_visits = !clean_visits;
      suspect_visits = !suspect_visits;
      distinct_outsets = st.Outset_store.distinct;
      union_calls = st.Outset_store.union_calls;
      memo_hits = st.Outset_store.memo_hits;
      inset_entries =
        Util.list_sum (fun o -> List.length o.o_inset) out_results;
      suspected_inrefs = List.length suspects;
      suspected_outrefs =
        List.length (List.filter (fun o -> o.o_suspected) out_results);
    }
  in
  { out_site = inp.in_site; dead; out_results; in_results; ot_stats }

(* ---- the atomic swap (§6.2) ---- *)

let apply eng site outcome ~window_cleans ~on_cleaned ~oracle_check =
  let tables = site.Site.tables in
  let metrics = Engine.metrics eng in
  let delta = (Engine.config eng).Config.delta in
  if oracle_check then
    Dgc_oracle.Oracle.check_would_free eng site.Site.id outcome.dead;
  let freed = Heap.free site.Site.heap outcome.dead in
  Metrics.add metrics "gc.objects_freed" freed;
  Metrics.incr metrics "gc.local_traces";
  let ts = outcome.ot_stats in
  if ts.union_calls > 0 then begin
    let rate = float_of_int ts.memo_hits /. float_of_int ts.union_calls in
    Metrics.hist_observe metrics "trace.outset_memo_hit_rate" rate;
    Metrics.hist_observe metrics
      (Printf.sprintf "trace.outset_memo_hit_rate{site=%d}"
         (Site_id.to_int site.Site.id))
      rate
  end;
  Metrics.hist_observe metrics "trace.inset_entries"
    (float_of_int ts.inset_entries);
  if freed > 0 then
    Engine.jlog eng ~cat:"gc" "%a freed %d (suspects: %d inrefs, %d outrefs)"
      Site_id.pp site.Site.id freed outcome.ot_stats.suspected_inrefs
      outcome.ot_stats.suspected_outrefs;
  (* Inrefs: install new suspicion status and outsets. *)
  List.iter
    (fun res ->
      match Tables.find_inref tables res.i_ref with
      | None -> ()
      | Some ir ->
          let was_clean = Ioref.inref_clean ~delta ir in
          ir.Ioref.ir_suspected <- res.i_suspected;
          ir.Ioref.ir_outset <- res.i_outset;
          ir.Ioref.ir_forced_clean <- false;
          ir.Ioref.ir_fresh <- false;
          if Ioref.inref_clean ~delta ir && not was_clean then
            on_cleaned res.i_ref)
    outcome.in_results;
  (* Outrefs: install distances, suspicion and insets; trim. *)
  let removals = ref [] in
  let dist_updates = ref [] in
  List.iter
    (fun res ->
      match Tables.find_outref tables res.o_ref with
      | None -> ()
      | Some o ->
          if res.o_removed then begin
            if o.Ioref.or_pins > 0 then begin
              (* Pinned during the window (insert barrier): keep it,
                 conservatively clean. *)
              let was_clean = Ioref.outref_clean o in
              o.Ioref.or_suspected <- false;
              o.Ioref.or_inset <- [];
              o.Ioref.or_forced_clean <- false;
              if not was_clean then on_cleaned res.o_ref
            end
            else begin
              Tables.remove_outref tables res.o_ref;
              removals := res.o_ref :: !removals
            end
          end
          else begin
            let was_clean = Ioref.outref_clean o in
            if o.Ioref.or_dist <> res.o_dist then
              dist_updates := (res.o_ref, res.o_dist) :: !dist_updates;
            o.Ioref.or_dist <- res.o_dist;
            o.Ioref.or_suspected <- res.o_suspected;
            o.Ioref.or_inset <- res.o_inset;
            o.Ioref.or_forced_clean <- false;
            o.Ioref.or_fresh <- false;
            if Ioref.outref_clean o && not was_clean then on_cleaned res.o_ref
          end)
    outcome.out_results;
  (* Replay barrier cleans that raced the trace window onto the new
     copy (§6.2). *)
  let clean_outref r =
    match Tables.find_outref tables r with
    | None -> ()
    | Some o ->
        let was_clean = Ioref.outref_clean o in
        o.Ioref.or_forced_clean <- true;
        if not was_clean then on_cleaned r
  in
  List.iter
    (fun r ->
      if Site_id.equal (Oid.site r) site.Site.id then begin
        match Tables.find_inref tables r with
        | None -> ()
        | Some ir ->
            let was_clean = Ioref.inref_clean ~delta ir in
            ir.Ioref.ir_forced_clean <- true;
            if not was_clean then on_cleaned r;
            List.iter clean_outref ir.Ioref.ir_outset
      end
      else clean_outref r)
    window_cleans;
  (* Report removals and distance changes to the target sites. *)
  let by_site = Hashtbl.create 8 in
  let bucket dst =
    match Hashtbl.find_opt by_site dst with
    | Some b -> b
    | None ->
        let b = (ref [], ref []) in
        Hashtbl.add by_site dst b;
        b
  in
  List.iter
    (fun r ->
      let rem, _ = bucket (Oid.site r) in
      rem := r :: !rem)
    !removals;
  List.iter
    (fun (r, d) ->
      let _, ds = bucket (Oid.site r) in
      ds := (r, d) :: !ds)
    !dist_updates;
  Hashtbl.iter
    (fun dst (rem, ds) ->
      Engine.send eng ~src:site.Site.id ~dst
        (Protocol.Update { removals = !rem; dists = !ds }))
    by_site;
  site.Site.trace_epoch <- site.Site.trace_epoch + 1
