open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts

type mode = Bottom_up | Independent | Naive_bottom_up

type input = {
  in_site : Site_id.t;
  in_graph : Reach.graph;
  in_indices : int list;
  in_roots : Oid.t list;
  in_inrefs : (Oid.t * int * bool) list;
  in_outrefs : Oid.t list;
  in_delta : int;
}

(* Deliberately the sorted [Tables.inrefs]/[Tables.outrefs] views:
   traversal order here decides outset-store interning order, and with
   it [ot_stats] (distinct_outsets / union_calls / memo_hits) in the
   outcome — determinism is observable. *)
let sample_tables site =
  let inrefs =
    List.map
      (fun ir ->
        (ir.Ioref.ir_target, Ioref.inref_dist ir, ir.Ioref.ir_flagged))
      (Tables.inrefs site.Site.tables)
  in
  let outrefs =
    List.map (fun o -> o.Ioref.or_target) (Tables.outrefs site.Site.tables)
  in
  (inrefs, outrefs)

let input_of_site eng site =
  let heap = site.Site.heap in
  let inrefs, outrefs = sample_tables site in
  let graph = Reach.of_heap heap in
  {
    in_site = site.Site.id;
    in_graph = graph;
    in_indices = Dense.indices graph.Reach.g_dense;
    in_roots = Heap.persistent_roots heap @ Engine.app_roots eng site.Site.id;
    in_inrefs = inrefs;
    in_outrefs = outrefs;
    in_delta = (Engine.config eng).Config.delta;
  }

let input_of_snapshot eng site snap =
  let inrefs, outrefs = sample_tables site in
  let graph = Reach.of_snapshot snap in
  {
    in_site = site.Site.id;
    in_graph = graph;
    in_indices = Dense.indices graph.Reach.g_dense;
    in_roots =
      Snapshot.persistent_roots snap @ Engine.app_roots eng site.Site.id;
    in_inrefs = inrefs;
    in_outrefs = outrefs;
    in_delta = (Engine.config eng).Config.delta;
  }

type out_result = {
  o_ref : Oid.t;
  o_dist : int;
  o_suspected : bool;
  o_removed : bool;
  o_inset : Oid.t list;
}

type in_result = { i_ref : Oid.t; i_suspected : bool; i_outset : Oid.t list }

type stats = {
  clean_visits : int;
  suspect_visits : int;
  distinct_outsets : int;
  union_calls : int;
  memo_hits : int;
  inset_entries : int;
  suspected_inrefs : int;
  suspected_outrefs : int;
  workspace_bytes : int;
}

type outcome = {
  out_site : Site_id.t;
  dead : int list;
  out_results : out_result list;
  in_results : in_result list;
  ot_stats : stats;
}

(* Per-outref accumulator during a trace. *)
type outinfo = { oi_dist : int; mutable oi_clean : bool }

(* Reusable index-space workspace. Validity of every per-object cell is
   epoch-stamped, so consecutive traces pay no O(heap) clears:

   - [w_mark.(i) = epoch lsl 2 lor state] with state 1 = Clean,
     2 = Suspect; a cell whose epoch part differs is unmarked.
   - [w_num]/[w_lead]/[w_oset] (Tarjan visit number, component leader,
     outset id) are valid iff [w_nume.(i)] carries the current epoch —
     they are always written together by the suspect phase's [start].
   - [w_vis] is a sub-trace visited stamp against [w_vep] (one bump
     per §5.1 independent trace, one for the whole naive scan).

   [compute] is synchronous, but the sharded engine runs one [compute]
   per worker domain concurrently, so the workspace is domain-local
   (one per domain, via [Domain.DLS]); each grows to the largest
   allocation clock its domain has seen. *)
type ws = {
  mutable w_cap : int;
  mutable w_mark : int array;
  mutable w_num : int array;
  mutable w_nume : int array;
  mutable w_lead : int array;
  mutable w_oset : int array;
  mutable w_vis : int array;
  mutable w_stack : int array;
  mutable w_fx : int array;
  mutable w_fk : int array;
  mutable w_comp : int array;
  mutable w_epoch : int;
  mutable w_vep : int;
}

let ws_key : ws Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      {
        w_cap = 0;
        w_mark = [||];
        w_num = [||];
        w_nume = [||];
        w_lead = [||];
        w_oset = [||];
        w_vis = [||];
        w_stack = Array.make 256 0;
        w_fx = Array.make 256 0;
        w_fk = Array.make 256 0;
        w_comp = Array.make 256 0;
        w_epoch = 0;
        w_vep = 0;
      })

let ws_ensure ws cap =
  if cap > ws.w_cap then begin
    let c = max cap (max 1024 (2 * ws.w_cap)) in
    ws.w_mark <- Array.make c 0;
    ws.w_num <- Array.make c 0;
    ws.w_nume <- Array.make c 0;
    ws.w_lead <- Array.make c 0;
    ws.w_oset <- Array.make c 0;
    ws.w_vis <- Array.make c 0;
    ws.w_cap <- c
  end

let compute ?(mode = Bottom_up) ?probe inp =
  let graph = inp.in_graph in
  let d = graph.Reach.g_dense in
  let bound = d.Dense.d_bound in
  let codes = d.Dense.d_codes
  and starts = d.Dense.d_start
  and pool = d.Dense.d_pool
  and pres = d.Dense.d_present in
  let present i = Bytes.get pres i <> '\000' in
  let ws = Domain.DLS.get ws_key in
  ws_ensure ws bound;
  ws.w_epoch <- ws.w_epoch + 1;
  let epoch = ws.w_epoch in
  let mark = ws.w_mark
  and num = ws.w_num
  and nume = ws.w_nume
  and lead = ws.w_lead
  and oset = ws.w_oset
  and vis = ws.w_vis in
  (* 0 unmarked, 1 Clean, 2 Suspect *)
  let mark_get i =
    let m = mark.(i) in
    if m lsr 2 = epoch then m land 3 else 0
  in
  let mark_set i v = mark.(i) <- (epoch lsl 2) lor v in
  let num_valid i = nume.(i) = epoch in
  let note tag = match probe with Some f -> f tag | None -> () in
  let is_local r = Site_id.equal (Oid.site r) inp.in_site in
  let outinfo : outinfo Oid.Tbl.t = Oid.Tbl.create 64 in
  let clean_visits = ref 0 in
  let suspect_visits = ref 0 in

  (* Scratch int stack (clean phase + independent traces). *)
  let sp = ref 0 in
  let push i =
    if !sp >= Array.length ws.w_stack then begin
      let b = Array.make (2 * Array.length ws.w_stack) 0 in
      Array.blit ws.w_stack 0 b 0 !sp;
      ws.w_stack <- b
    end;
    ws.w_stack.(!sp) <- i;
    incr sp
  in

  (* ---- clean phase: trace distance-ordered clean roots (§3) ---- *)
  let clean_groups =
    (0, inp.in_roots)
    :: List.filter_map
         (fun (r, d, flagged) ->
           if flagged || d > inp.in_delta then None else Some (d, [ r ]))
         inp.in_inrefs
    |> List.stable_sort (fun (a, _) (b, _) -> Int.compare a b)
  in
  let reach_out_clean dg r =
    (* First reach sets the distance (ascending root order makes it
       the minimum); any reach from a clean root makes it clean. *)
    match Oid.Tbl.find_opt outinfo r with
    | Some oi -> oi.oi_clean <- true
    | None -> Oid.Tbl.add outinfo r { oi_dist = dg + 1; oi_clean = true }
  in
  let trace_clean_group (dg, roots) =
    List.iter
      (fun r ->
        if is_local r then begin
          let i = Oid.index r in
          if i >= 0 && i < bound && present i && mark_get i = 0 then begin
            mark_set i 1;
            incr clean_visits;
            push i
          end
        end
        else reach_out_clean dg r)
      roots;
    while !sp > 0 do
      decr sp;
      let i = ws.w_stack.(!sp) in
      for k = starts.(i) to starts.(i + 1) - 1 do
        let c = codes.(k) in
        if c >= 0 then begin
          if present c && mark_get c = 0 then begin
            mark_set c 1;
            incr clean_visits;
            push c
          end
        end
        else begin
          let r = pool.(-c - 1) in
          if not (is_local r) then reach_out_clean dg r
        end
      done
    done
  in
  List.iter trace_clean_group clean_groups;
  note "clean";

  (* ---- suspect phase ---- *)
  let suspects =
    List.filter_map
      (fun (r, d, flagged) ->
        if flagged || d <= inp.in_delta then None else Some (r, d))
      inp.in_inrefs
    |> List.stable_sort (fun (_, a) (_, b) -> Int.compare a b)
  in
  let store = Outset_store.create () in
  (* Encountering a remote reference from a suspected trace rooted at
     distance [d]: returns the outset contribution (None if the outref
     is clean). *)
  let reach_out_suspect dg r =
    match Oid.Tbl.find_opt outinfo r with
    | Some oi ->
        if oi.oi_clean then None else Some (Outset_store.singleton store r)
    | None ->
        Oid.Tbl.add outinfo r { oi_dist = dg + 1; oi_clean = false };
        Some (Outset_store.singleton store r)
  in

  let inref_outsets : (Oid.t, Oid.t list) Hashtbl.t = Hashtbl.create 64 in

  (* Iterative DFS frames: object index + next code position. *)
  let fp = ref 0 in
  let fpush x k =
    if !fp >= Array.length ws.w_fx then begin
      let bx = Array.make (2 * Array.length ws.w_fx) 0 in
      let bk = Array.make (2 * Array.length ws.w_fk) 0 in
      Array.blit ws.w_fx 0 bx 0 !fp;
      Array.blit ws.w_fk 0 bk 0 !fp;
      ws.w_fx <- bx;
      ws.w_fk <- bk
    end;
    ws.w_fx.(!fp) <- x;
    ws.w_fk.(!fp) <- k;
    incr fp
  in

  (match mode with
  | Bottom_up ->
      (* §5.2: fused trace + Tarjan SCC + bottom-up outsets. The state
         mirrors the paper's pseudocode — Mark (visit numbers), Leader,
         Outset, and an auxiliary component stack — laid out as
         index-space arrays ([w_num]/[w_lead]/[w_oset], valid under the
         [w_nume] epoch stamp). *)
      let csp = ref 0 in
      let cpush x =
        if !csp >= Array.length ws.w_comp then begin
          let b = Array.make (2 * Array.length ws.w_comp) 0 in
          Array.blit ws.w_comp 0 b 0 !csp;
          ws.w_comp <- b
        end;
        ws.w_comp.(!csp) <- x;
        incr csp
      in
      let counter = ref 0 in
      let inf = max_int in
      let start x =
        num.(x) <- !counter;
        nume.(x) <- epoch;
        lead.(x) <- !counter;
        incr counter;
        cpush x;
        mark_set x 2;
        incr suspect_visits;
        oset.(x) <- Outset_store.empty store
      in
      let merge_into p child_outset child_leader =
        oset.(p) <- Outset_store.union store oset.(p) child_outset;
        if child_leader < lead.(p) then lead.(p) <- child_leader
      in
      let finish x =
        if lead.(x) = num.(x) then begin
          (* x leads its component: give every member x's outset. *)
          let ox = oset.(x) in
          let rec pop () =
            if !csp = 0 then assert false
            else begin
              decr csp;
              let z = ws.w_comp.(!csp) in
              oset.(z) <- ox;
              lead.(z) <- inf;
              if z <> x then pop ()
            end
          in
          pop ()
        end
      in
      let trace_suspected dg root =
        if is_local root then begin
          let i = Oid.index root in
          if
            i >= 0 && i < bound && present i
            && mark_get i = 0
            && not (num_valid i)
          then begin
            start i;
            fpush i starts.(i);
            while !fp > 0 do
              let x = ws.w_fx.(!fp - 1) in
              let k = ws.w_fk.(!fp - 1) in
              if k >= starts.(x + 1) then begin
                finish x;
                decr fp;
                if !fp > 0 then
                  merge_into ws.w_fx.(!fp - 1) oset.(x) lead.(x)
              end
              else begin
                ws.w_fk.(!fp - 1) <- k + 1;
                let c = codes.(k) in
                if c >= 0 then begin
                  if present c && mark_get c <> 1 then begin
                    if num_valid c then
                      (* already traced (possibly on the stack):
                         merge its current outset and leader *)
                      merge_into x oset.(c) lead.(c)
                    else begin
                      start c;
                      fpush c starts.(c)
                    end
                  end
                end
                else begin
                  let r = pool.(-c - 1) in
                  if not (is_local r) then
                    match reach_out_suspect dg r with
                    | None -> ()
                    | Some contrib ->
                        oset.(x) <- Outset_store.union store oset.(x) contrib
                end
              end
            done
          end
        end
      in
      List.iter
        (fun (r, dg) ->
          trace_suspected dg r;
          let outset =
            let i = Oid.index r in
            if is_local r && i >= 0 && i < bound && num_valid i then
              Outset_store.elements store oset.(i)
            else [] (* object clean or absent *)
          in
          Hashtbl.replace inref_outsets r outset)
        suspects
  | Naive_bottom_up ->
      (* §5.2's first cut: single scan, outsets unioned bottom-up, but
         no SCC handling — back edges read incomplete outsets. Kept
         only to demonstrate the failure (Figure 4). Visited-ness (and
         with it [w_oset] validity) is the [w_vis] stamp. *)
      ws.w_vep <- ws.w_vep + 1;
      let vep = ws.w_vep in
      let start x =
        vis.(x) <- vep;
        mark_set x 2;
        incr suspect_visits;
        oset.(x) <- Outset_store.empty store
      in
      let merge_into p contrib =
        oset.(p) <- Outset_store.union store oset.(p) contrib
      in
      let trace_naive dg root =
        if is_local root then begin
          let i = Oid.index root in
          if
            i >= 0 && i < bound && present i
            && mark_get i <> 1
            && vis.(i) <> vep
          then begin
            start i;
            fpush i starts.(i);
            while !fp > 0 do
              let x = ws.w_fx.(!fp - 1) in
              let k = ws.w_fk.(!fp - 1) in
              if k >= starts.(x + 1) then begin
                decr fp;
                if !fp > 0 then merge_into ws.w_fx.(!fp - 1) oset.(x)
              end
              else begin
                ws.w_fk.(!fp - 1) <- k + 1;
                let c = codes.(k) in
                if c >= 0 then begin
                  if present c && mark_get c <> 1 then begin
                    if vis.(c) = vep then
                      (* possibly incomplete: the bug *)
                      merge_into x oset.(c)
                    else begin
                      start c;
                      fpush c starts.(c)
                    end
                  end
                end
                else begin
                  let r = pool.(-c - 1) in
                  if not (is_local r) then
                    match reach_out_suspect dg r with
                    | None -> ()
                    | Some contrib -> merge_into x contrib
                end
              end
            done
          end
        end
      in
      List.iter
        (fun (r, dg) ->
          trace_naive dg r;
          let outset =
            let i = Oid.index r in
            if is_local r && i >= 0 && i < bound && vis.(i) = vep then
              Outset_store.elements store oset.(i)
            else []
          in
          Hashtbl.replace inref_outsets r outset)
        suspects
  | Independent ->
      (* §5.1: a full, separate trace per suspected inref; objects
         reached by several suspected inrefs are scanned once per
         inref ([w_vis] re-stamped per inref). *)
      List.iter
        (fun (r, dg) ->
          ws.w_vep <- ws.w_vep + 1;
          let vep = ws.w_vep in
          let acc = ref Oid.Set.empty in
          let visit_remote z =
            match reach_out_suspect dg z with
            | None -> ()
            | Some _ -> acc := Oid.Set.add z !acc
          in
          let visit_idx i =
            if present i && vis.(i) <> vep && mark_get i <> 1 then begin
              vis.(i) <- vep;
              mark_set i 2;
              incr suspect_visits;
              push i
            end
          in
          (if is_local r then begin
             let i = Oid.index r in
             if i >= 0 && i < bound then visit_idx i
           end
           else visit_remote r);
          while !sp > 0 do
            decr sp;
            let i = ws.w_stack.(!sp) in
            for k = starts.(i) to starts.(i + 1) - 1 do
              let c = codes.(k) in
              if c >= 0 then begin
                if c < bound then visit_idx c
              end
              else begin
                let rr = pool.(-c - 1) in
                if not (is_local rr) then visit_remote rr
              end
            done
          done;
          Hashtbl.replace inref_outsets r (Oid.Set.elements !acc))
        suspects);
  note "suspect";

  (* ---- assemble results ---- *)
  let in_results =
    List.map
      (fun (r, d, flagged) ->
        let suspected = (not flagged) && d > inp.in_delta in
        let outset =
          if suspected then
            Option.value ~default:[] (Hashtbl.find_opt inref_outsets r)
          else []
        in
        { i_ref = r; i_suspected = suspected; i_outset = outset })
      inp.in_inrefs
  in
  (* Insets are the inverse view of the suspected inrefs' outsets. *)
  let insets : (Oid.t, Oid.t list ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun res ->
      if res.i_suspected then
        List.iter
          (fun o ->
            match Hashtbl.find_opt insets o with
            | Some l -> l := res.i_ref :: !l
            | None -> Hashtbl.add insets o (ref [ res.i_ref ]))
          res.i_outset)
    in_results;
  let out_results =
    List.map
      (fun r ->
        match Oid.Tbl.find_opt outinfo r with
        | None ->
            {
              o_ref = r;
              o_dist = Ioref.infinity_dist;
              o_suspected = false;
              o_removed = true;
              o_inset = [];
            }
        | Some oi ->
            let inset =
              if oi.oi_clean then []
              else
                match Hashtbl.find_opt insets r with
                | Some l -> List.sort Oid.compare !l
                | None -> []
            in
            {
              o_ref = r;
              o_dist = oi.oi_dist;
              o_suspected = not oi.oi_clean;
              o_removed = false;
              o_inset = inset;
            })
      inp.in_outrefs
  in
  (* Unmarked present objects, ascending — same order the old
     [in_indices] filter produced. *)
  let dead =
    let acc = ref [] in
    for i = bound - 1 downto 0 do
      if present i && mark_get i = 0 then acc := i :: !acc
    done;
    !acc
  in
  note "assemble";
  let st = Outset_store.stats store in
  let ot_stats =
    {
      clean_visits = !clean_visits;
      suspect_visits = !suspect_visits;
      distinct_outsets = st.Outset_store.distinct;
      union_calls = st.Outset_store.union_calls;
      memo_hits = st.Outset_store.memo_hits;
      inset_entries =
        Util.list_sum (fun o -> List.length o.o_inset) out_results;
      suspected_inrefs = List.length suspects;
      suspected_outrefs =
        List.length (List.filter (fun o -> o.o_suspected) out_results);
      workspace_bytes = Outset_store.approx_bytes store;
    }
  in
  { out_site = inp.in_site; dead; out_results; in_results; ot_stats }

(* ---- the atomic swap (§6.2) ---- *)

let apply eng site outcome ~window_cleans ~on_cleaned ~oracle_check =
  let tables = site.Site.tables in
  let metrics = Engine.metrics eng in
  let delta = (Engine.config eng).Config.delta in
  if oracle_check then
    Dgc_oracle.Oracle.check_would_free eng site.Site.id outcome.dead;
  let freed = Heap.free site.Site.heap outcome.dead in
  Metrics.add metrics "gc.objects_freed" freed;
  Metrics.incr metrics "gc.local_traces";
  let ts = outcome.ot_stats in
  if ts.union_calls > 0 then begin
    let rate = float_of_int ts.memo_hits /. float_of_int ts.union_calls in
    Metrics.hist_observe metrics "trace.outset_memo_hit_rate" rate;
    Metrics.hist_observe metrics
      (Site.metric_label site "trace.outset_memo_hit_rate")
      rate
  end;
  Metrics.hist_observe metrics "trace.inset_entries"
    (float_of_int ts.inset_entries);
  if freed > 0 then
    Engine.jlog eng ~cat:"gc" "%a freed %d (suspects: %d inrefs, %d outrefs)"
      Site_id.pp site.Site.id freed outcome.ot_stats.suspected_inrefs
      outcome.ot_stats.suspected_outrefs;
  (* Inrefs: install new suspicion status and outsets. *)
  List.iter
    (fun res ->
      match Tables.find_inref tables res.i_ref with
      | None -> ()
      | Some ir ->
          let was_clean = Ioref.inref_clean ~delta ir in
          ir.Ioref.ir_suspected <- res.i_suspected;
          ir.Ioref.ir_outset <- res.i_outset;
          ir.Ioref.ir_forced_clean <- false;
          ir.Ioref.ir_fresh <- false;
          if Ioref.inref_clean ~delta ir && not was_clean then
            on_cleaned res.i_ref)
    outcome.in_results;
  (* Outrefs: install distances, suspicion and insets; trim. *)
  let removals = ref [] in
  let dist_updates = ref [] in
  List.iter
    (fun res ->
      match Tables.find_outref tables res.o_ref with
      | None -> ()
      | Some o ->
          if res.o_removed then begin
            if o.Ioref.or_pins > 0 then begin
              (* Pinned during the window (insert barrier): keep it,
                 conservatively clean. *)
              let was_clean = Ioref.outref_clean o in
              o.Ioref.or_suspected <- false;
              o.Ioref.or_inset <- [];
              o.Ioref.or_forced_clean <- false;
              if not was_clean then on_cleaned res.o_ref
            end
            else begin
              Tables.remove_outref tables res.o_ref;
              removals := res.o_ref :: !removals
            end
          end
          else begin
            let was_clean = Ioref.outref_clean o in
            if o.Ioref.or_dist <> res.o_dist then
              dist_updates := (res.o_ref, res.o_dist) :: !dist_updates;
            o.Ioref.or_dist <- res.o_dist;
            o.Ioref.or_suspected <- res.o_suspected;
            o.Ioref.or_inset <- res.o_inset;
            o.Ioref.or_forced_clean <- false;
            o.Ioref.or_fresh <- false;
            if Ioref.outref_clean o && not was_clean then on_cleaned res.o_ref
          end)
    outcome.out_results;
  (* Replay barrier cleans that raced the trace window onto the new
     copy (§6.2). *)
  let clean_outref r =
    match Tables.find_outref tables r with
    | None -> ()
    | Some o ->
        let was_clean = Ioref.outref_clean o in
        o.Ioref.or_forced_clean <- true;
        if not was_clean then on_cleaned r
  in
  List.iter
    (fun r ->
      if Site_id.equal (Oid.site r) site.Site.id then begin
        match Tables.find_inref tables r with
        | None -> ()
        | Some ir ->
            let was_clean = Ioref.inref_clean ~delta ir in
            ir.Ioref.ir_forced_clean <- true;
            if not was_clean then on_cleaned r;
            List.iter clean_outref ir.Ioref.ir_outset
      end
      else clean_outref r)
    window_cleans;
  (* Report removals and distance changes to the target sites. *)
  let by_site = Hashtbl.create 8 in
  let bucket dst =
    match Hashtbl.find_opt by_site dst with
    | Some b -> b
    | None ->
        let b = (ref [], ref []) in
        Hashtbl.add by_site dst b;
        b
  in
  List.iter
    (fun r ->
      let rem, _ = bucket (Oid.site r) in
      rem := r :: !rem)
    !removals;
  List.iter
    (fun (r, d) ->
      let _, ds = bucket (Oid.site r) in
      ds := (r, d) :: !ds)
    !dist_updates;
  Hashtbl.iter
    (fun dst (rem, ds) ->
      Engine.send eng ~src:site.Site.id ~dst
        (Protocol.Update { removals = !rem; dists = !ds }))
    by_site;
  site.Site.trace_epoch <- site.Site.trace_epoch + 1
