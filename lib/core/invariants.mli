(** The paper's stated invariants as runtime-checkable predicates.

    §6.1 proves safety from three named invariants; this module checks
    them against live system state so tests, fuzzers, the per-step
    sanitizer ([Config.Check_step]) and the schedule explorer can
    assert them at any point:

    - {b Local safety} ("For any suspected outref o, o.inset includes
      all inrefs o is locally reachable from"): every suspected
      outref's recorded inset covers the local-reachability ground
      truth recomputed from the heap.
    - {b Auxiliary} ("o.inset does not include any clean inref"):
      insets never name clean inrefs.
    - {b Remote safety} ("for any suspected inref i, either i.sources
      includes all remote sites containing i, or at least one of its
      corresponding outrefs is clean"): checked against every site's
      heaps and tables.

    Additionally:
    - {b Visited hygiene}: visited marks only on suspected iorefs
      belonging to live traces (approximated as: flagged inrefs aside,
      no marks on clean iorefs).
    - {b Distance sanity}: a recorded per-source distance estimates
      the shortest root path ending with that inter-site reference, so
      in a settled system it is at most one more than the true
      distance of some live holder of the reference at the source site
      (estimates are conservative and converge from below; garbage has
      no live holders, so any estimate is fine).

    The three §6.1 invariants plus visited hygiene are maintained
    {e continuously} by the barriers, so {!per_step} may run after
    every engine event — that is what the schedule explorer and the
    [Check_step] sanitizer do. Distance sanity only converges in a
    settled system (a new shorter path transiently invalidates old
    estimates from above), so it is checked by {!check_all} only.

    During an open (non-atomic) trace window the site's tables hold
    the old copy (§6.2) and are not checkable; pass [?skip]
    (typically [Collector.in_window]) to exclude such sites. *)

open Dgc_prelude
open Dgc_heap
open Dgc_rts

type kind =
  | Local_safety
  | Auxiliary
  | Remote_safety
  | Visited_hygiene
  | Distance_sanity

type violation = {
  v_kind : kind;
  v_site : Site_id.t;  (** the site whose tables are inconsistent *)
  v_subject : Oid.t option;  (** the ioref target involved, if one *)
  v_message : string;
}

exception Violation of violation list
(** Raised by {!check_exn} (and thus by runs under
    [Config.Check_step]). Registered with [Printexc]. *)

val kind_name : kind -> string
val to_string : violation -> string
(** ["<kind>: <message>"], the historical string rendering. *)

val strings : violation list -> string list
val pp_violation : Format.formatter -> violation -> unit

val local_safety : ?skip:(Site_id.t -> bool) -> Engine.t -> violation list
val auxiliary : ?skip:(Site_id.t -> bool) -> Engine.t -> violation list
val remote_safety : ?skip:(Site_id.t -> bool) -> Engine.t -> violation list
val visited_hygiene : ?skip:(Site_id.t -> bool) -> Engine.t -> violation list
val distance_sanity : ?skip:(Site_id.t -> bool) -> Engine.t -> violation list

val per_step : ?skip:(Site_id.t -> bool) -> Engine.t -> violation list
(** The continuously-maintained invariants (everything except distance
    sanity); safe to run after every engine event. *)

val check_all : ?skip:(Site_id.t -> bool) -> Engine.t -> violation list
(** Every check, including settled-only distance sanity. *)

val check_exn : ?skip:(Site_id.t -> bool) -> Engine.t -> unit
(** Raise {!Violation} if {!per_step} reports anything. *)
