open Dgc_heap

type id = int

(* Canonical sets are sorted [Oid.t array]s; interning hashes them
   directly (elementwise, no polymorphic traversal of a list spine). *)
module Key = struct
  type t = Oid.t array

  let equal a b =
    let la = Array.length a in
    la = Array.length b
    &&
    let rec go i = i < 0 || (Oid.equal a.(i) b.(i) && go (i - 1)) in
    go (la - 1)

  let hash a =
    let h = ref (Array.length a) in
    for i = 0 to Array.length a - 1 do
      h := (!h * 31) + Oid.hash a.(i)
    done;
    !h land max_int
end

module Ktbl = Hashtbl.Make (Key)

(* Union memo keyed by the packed id pair (x < y, ids are small). *)
module Itbl = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type t = {
  mutable sets : Oid.t array array;  (** id -> sorted elements *)
  mutable count : int;
  interned : id Ktbl.t;  (** canonical form -> id *)
  memo : id Itbl.t;
  singl : id Oid.Tbl.t;  (** singleton cache: skip re-interning *)
  memoize : bool;
  mutable u_calls : int;
  mutable u_hits : int;
}

type stats = {
  distinct : int;
  union_calls : int;
  memo_hits : int;
  elements_stored : int;
}

let create ?(memoize = true) () =
  let t =
    {
      sets = Array.make 16 [||];
      count = 0;
      interned = Ktbl.create 64;
      memo = Itbl.create 64;
      singl = Oid.Tbl.create 64;
      memoize;
      u_calls = 0;
      u_hits = 0;
    }
  in
  (* id 0 is the empty set *)
  Ktbl.add t.interned [||] 0;
  t.count <- 1;
  t

(* [sorted] is owned by the store after this call. *)
let intern t sorted =
  match Ktbl.find_opt t.interned sorted with
  | Some id -> id
  | None ->
      let id = t.count in
      if id >= Array.length t.sets then begin
        let fresh = Array.make (2 * Array.length t.sets) [||] in
        Array.blit t.sets 0 fresh 0 t.count;
        t.sets <- fresh
      end;
      t.sets.(id) <- sorted;
      t.count <- id + 1;
      Ktbl.add t.interned sorted id;
      id

let empty _t = 0

let singleton t r =
  match Oid.Tbl.find_opt t.singl r with
  | Some id -> id
  | None ->
      let id = intern t [| r |] in
      Oid.Tbl.add t.singl r id;
      id

let merge_sorted a b =
  let la = Array.length a and lb = Array.length b in
  if la = 0 then b
  else if lb = 0 then a
  else begin
    let out = Array.make (la + lb) a.(0) in
    let i = ref 0 and j = ref 0 and k = ref 0 in
    while !i < la && !j < lb do
      let c = Oid.compare a.(!i) b.(!j) in
      if c < 0 then begin
        out.(!k) <- a.(!i);
        incr i
      end
      else if c > 0 then begin
        out.(!k) <- b.(!j);
        incr j
      end
      else begin
        out.(!k) <- a.(!i);
        incr i;
        incr j
      end;
      incr k
    done;
    while !i < la do
      out.(!k) <- a.(!i);
      incr i;
      incr k
    done;
    while !j < lb do
      out.(!k) <- b.(!j);
      incr j;
      incr k
    done;
    if !k = la + lb then out else Array.sub out 0 !k
  end

let union t x y =
  if x = y then x
  else if x = 0 then y
  else if y = 0 then x
  else begin
    t.u_calls <- t.u_calls + 1;
    let key = if x < y then (x lsl 31) lor y else (y lsl 31) lor x in
    match if t.memoize then Itbl.find_opt t.memo key else None with
    | Some id ->
        t.u_hits <- t.u_hits + 1;
        id
    | None ->
        let merged = merge_sorted t.sets.(x) t.sets.(y) in
        let id = intern t merged in
        if t.memoize then Itbl.add t.memo key id;
        id
  end

let add t x r = union t x (singleton t r)
let elements t id = Array.to_list t.sets.(id)
let cardinal t id = Array.length t.sets.(id)
let is_empty_id _t id = id = 0

let stats t =
  let elements_stored = ref 0 in
  for i = 0 to t.count - 1 do
    elements_stored := !elements_stored + Array.length t.sets.(i)
  done;
  {
    distinct = t.count;
    union_calls = t.u_calls;
    memo_hits = t.u_hits;
    elements_stored = !elements_stored;
  }

(* Same fixed size model as [Tables.approx_bytes]: 8-byte words, one
   word per stored element, small per-entry constants for the interning
   and memo tables. Deterministic, so gauges built on it are gateable. *)
let approx_bytes t =
  let word = 8 in
  let elems = ref 0 in
  for i = 0 to t.count - 1 do
    elems := !elems + Array.length t.sets.(i)
  done;
  word * (!elems + (3 * t.count) + (3 * Itbl.length t.memo) + (3 * Oid.Tbl.length t.singl))
