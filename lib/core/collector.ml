open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts

type window = {
  w_input : Local_trace.input;
  mutable w_cleans : Oid.t list;
}

type site_ctl = { ctl_site : Site.t; mutable ctl_window : window option }

type t = {
  eng : Engine.t;
  back : Back_trace.shared;
  ctls : site_ctl array;
  mutable auto_back_traces : bool;
  mutable after_trace : Site_id.t -> unit;
  (* §3's tuning suggestion: when abortive (Live) verdicts dominate,
     raise the effective back threshold for newly suspected outrefs. *)
  mutable eff_threshold2 : int;
  mutable recent_live : int;
  mutable recent_garbage : int;
}

let engine t = t.eng
let back t = t.back
let ctl t id = t.ctls.(Site_id.to_int id)
let in_window t id = (ctl t id).ctl_window <> None

let cfg t = Engine.config t.eng

(* ---- the transfer barrier (§6.1) ------------------------------------ *)

(* Clean a suspected outref; notify the clean rule. *)
let clean_outref t site_id tables r =
  match Tables.find_outref tables r with
  | None -> ()
  | Some o ->
      if not (Ioref.outref_clean o) then begin
        o.Ioref.or_forced_clean <- true;
        Metrics.incr (Engine.metrics t.eng) "barrier.outref_cleaned";
        Back_trace.on_cleaned t.back site_id r
      end

let barrier_ref_arrived t site_id r =
  if (cfg t).Config.enable_transfer_barrier then begin
    let c = ctl t site_id in
    let tables = c.ctl_site.Site.tables in
    let record_window_clean () =
      match c.ctl_window with
      | Some w -> w.w_cleans <- r :: w.w_cleans
      | None -> ()
    in
    if Site_id.equal (Oid.site r) site_id then begin
      (* An inref of ours: clean it and its outset. *)
      match Tables.find_inref tables r with
      | None -> ()
      | Some ir ->
          if not (Ioref.inref_clean ~delta:(cfg t).Config.delta ir) then begin
            ir.Ioref.ir_forced_clean <- true;
            Metrics.incr (Engine.metrics t.eng) "barrier.inref_cleaned";
            Engine.jlog t.eng ~cat:"barrier" "%a cleaned inref %a (+outset)"
              Site_id.pp site_id Oid.pp r;
            Back_trace.on_cleaned t.back site_id r;
            List.iter (clean_outref t site_id tables) ir.Ioref.ir_outset;
            record_window_clean ()
          end
    end
    else begin
      (* §6.1.2 case 3: a suspected outref for an arriving reference. *)
      match Tables.find_outref tables r with
      | None -> ()
      | Some o ->
          if not (Ioref.outref_clean o) then begin
            clean_outref t site_id tables r;
            record_window_clean ()
          end
    end
  end

(* ---- back-trace triggering (§4.3) ----------------------------------- *)

let trigger_back_traces t site_id =
  let c = ctl t site_id in
  let conf = cfg t in
  (* Deliberately the sorted [Tables.outrefs] view: the stable sort
     below only orders by distance, so table order is the tie-break and
     determines which outref starts a trace — determinism is
     observable here. *)
  let candidates =
    List.filter_map
      (fun o ->
        if not o.Ioref.or_suspected then None
        else begin
          (* Initialize the back threshold lazily to Δ2. *)
          if o.Ioref.or_back_threshold >= Ioref.infinity_dist then
            o.Ioref.or_back_threshold <- t.eff_threshold2;
          if
            o.Ioref.or_dist > o.Ioref.or_back_threshold
            && Ioref.outref_clean o = false
            && Trace_id.Set.is_empty o.Ioref.or_visited
          then Some o
          else None
        end)
      (Tables.outrefs c.ctl_site.Site.tables)
  in
  let metrics = Engine.metrics t.eng in
  let n_cand = float_of_int (List.length candidates) in
  Metrics.hist_observe metrics "back.trigger_candidates" n_cand;
  Metrics.hist_observe metrics
    (Site.metric_label c.ctl_site "back.trigger_candidates")
    n_cand;
  Engine.series_add t.eng "back.trigger_candidates" (List.length candidates);
  (* Deepest first: they are the most likely to be fully suspected. *)
  let sorted =
    List.stable_sort
      (fun a b -> Int.compare b.Ioref.or_dist a.Ioref.or_dist)
      candidates
  in
  let picked = Util.list_take conf.Config.max_trace_starts sorted in
  List.filter_map
    (fun o -> Back_trace.start t.back site_id o.Ioref.or_target)
    picked

let start_back_trace t site_id r = Back_trace.start t.back site_id r
let set_auto_back_traces t b = t.auto_back_traces <- b
let set_after_trace t f = t.after_trace <- f
let effective_threshold2 t = t.eff_threshold2

(* ---- local traces (§5, §6.2) ----------------------------------------- *)

(* Memory-accounting gauges, sampled once per applied local trace —
   the moment resident bytes actually move. Taxonomy (DESIGN.md
   "Observability"): objects ([Heap.bytes_resident]), ioref tables
   ([Tables.approx_bytes]), back-trace residue
   ([Back_trace.approx_bytes]), and the trace's transient workspace. *)
let sample_memory t site_id outcome =
  let s = (ctl t site_id).ctl_site in
  let resident =
    Heap.bytes_resident s.Site.heap + Tables.approx_bytes s.Site.tables
  in
  Engine.series_set t.eng
    (Site.metric_label s "bytes_resident")
    (float_of_int resident);
  Engine.series_set t.eng "bytes.back_trace"
    (float_of_int (Back_trace.approx_bytes t.back));
  Engine.series_set t.eng "bytes.trace_workspace"
    (float_of_int outcome.Local_trace.ot_stats.Local_trace.workspace_bytes)

(* Profiled [Local_trace.compute]: a [local_trace] scope with
   per-phase subscopes (clean / suspect / assemble) driven by the
   [?probe] hook, plus the outcome's deterministic work-unit stats —
   object visits, outset algebra, memo hits, workspace bytes —
   attributed to the [local_trace] node. Without a profiler this is
   exactly the bare compute. *)
let profiled_compute t input =
  match Engine.profile t.eng with
  | None -> Local_trace.compute input
  | Some p ->
      let module Prof = Dgc_profile.Profile in
      Prof.enter p "local_trace";
      let open_sub = ref false in
      let close_sub () =
        if !open_sub then begin
          Prof.leave p;
          open_sub := false
        end
      in
      let probe tag =
        close_sub ();
        Prof.enter p tag;
        open_sub := true
      in
      Fun.protect
        ~finally:(fun () ->
          close_sub ();
          Prof.leave p)
        (fun () ->
          let outcome = Local_trace.compute ~probe input in
          close_sub ();
          let st = outcome.Local_trace.ot_stats in
          Prof.work p "visits"
            (st.Local_trace.clean_visits + st.Local_trace.suspect_visits);
          Prof.work p "outsets" st.Local_trace.distinct_outsets;
          Prof.work p "union_calls" st.Local_trace.union_calls;
          Prof.work p "memo_hits" st.Local_trace.memo_hits;
          Prof.work p "inset_entries" st.Local_trace.inset_entries;
          Prof.work p "workspace_bytes" st.Local_trace.workspace_bytes;
          outcome)

(* Everything that happens after a trace's mark phase: install the
   outcome (frees, table swap, update sends), sample the memory
   gauges, trigger back traces, notify. On a classic engine this runs
   inline; on a sharded engine it is deferred to the synchronization
   barrier, because it reaches across sites (update messages, oracle
   liveness, back-trace frames) while the mark phase itself is
   site-local and may run concurrently with other shards. *)
let apply_outcome t site_id outcome ~window_cleans =
  let c = ctl t site_id in
  Local_trace.apply t.eng c.ctl_site outcome ~window_cleans
    ~on_cleaned:(Back_trace.on_cleaned t.back site_id)
    ~oracle_check:(cfg t).Config.oracle_checks;
  sample_memory t site_id outcome;
  if t.auto_back_traces then ignore (trigger_back_traces t site_id);
  t.after_trace site_id

(* Sharded: the heavy [compute] just ran in the window; leave the
   window open so transfer-barrier cleans that land between now and
   the barrier are still recorded, and replay them at apply time —
   the same snapshot-at-beginning discipline §6.2 uses against
   concurrent mutation, reused against barrier deferral. *)
let apply_at_barrier t site_id outcome =
  let c = ctl t site_id in
  Engine.at_barrier t.eng (fun () ->
      match c.ctl_window with
      | None -> ()
      | Some w ->
          c.ctl_window <- None;
          apply_outcome t site_id outcome
            ~window_cleans:(List.rev w.w_cleans))

let finish_window t site_id =
  let c = ctl t site_id in
  match c.ctl_window with
  | None -> ()
  | Some w ->
      if Engine.sharded t.eng then begin
        if c.ctl_site.Site.crashed then c.ctl_window <- None
        else begin
          let outcome = profiled_compute t w.w_input in
          apply_at_barrier t site_id outcome
        end
      end
      else begin
        c.ctl_window <- None;
        if not c.ctl_site.Site.crashed then begin
          let outcome = profiled_compute t w.w_input in
          apply_outcome t site_id outcome
            ~window_cleans:(List.rev w.w_cleans)
        end
      end

let run_scheduled_trace t site_id =
  let c = ctl t site_id in
  if c.ctl_window = None then begin
    let conf = cfg t in
    if Sim_time.compare conf.Config.trace_duration Sim_time.zero <= 0 then begin
      if Engine.sharded t.eng then begin
        (* Atomic trace, sharded: mark now (concurrently — this is the
           work the shards exist to parallelize), apply at the
           barrier. The pseudo-window collects any transfer-barrier
           cleans arriving in between. *)
        let input = Local_trace.input_of_site t.eng c.ctl_site in
        let outcome = profiled_compute t input in
        c.ctl_window <- Some { w_input = input; w_cleans = [] };
        apply_at_barrier t site_id outcome
      end
      else begin
        (* Atomic trace. *)
        let input = Local_trace.input_of_site t.eng c.ctl_site in
        let outcome = profiled_compute t input in
        Local_trace.apply t.eng c.ctl_site outcome ~window_cleans:[]
          ~on_cleaned:(Back_trace.on_cleaned t.back site_id)
          ~oracle_check:conf.Config.oracle_checks;
        sample_memory t site_id outcome;
        if t.auto_back_traces then ignore (trigger_back_traces t site_id);
        t.after_trace site_id
      end
    end
    else begin
      (* Open a snapshot-at-beginning window (§6.2); back traces keep
         reading the old tables until the swap. *)
      let snap = Snapshot.take c.ctl_site.Site.heap in
      let input = Local_trace.input_of_snapshot t.eng c.ctl_site snap in
      c.ctl_window <- Some { w_input = input; w_cleans = [] };
      Engine.schedule t.eng ~delay:conf.Config.trace_duration (fun () ->
          finish_window t site_id)
    end
  end

let force_local_trace t site_id =
  let c = ctl t site_id in
  (* Discard any open window: the atomic trace supersedes it. *)
  c.ctl_window <- None;
  let input = Local_trace.input_of_site t.eng c.ctl_site in
  let outcome = profiled_compute t input in
  Local_trace.apply t.eng c.ctl_site outcome ~window_cleans:[]
    ~on_cleaned:(Back_trace.on_cleaned t.back site_id)
    ~oracle_check:(cfg t).Config.oracle_checks;
  sample_memory t site_id outcome

let force_local_trace_all t =
  Array.iter
    (fun c ->
      if not c.ctl_site.Site.crashed then force_local_trace t c.ctl_site.Site.id)
    t.ctls

let install eng =
  let t =
    {
      eng;
      back = Back_trace.create eng;
      ctls =
        Array.map
          (fun s -> { ctl_site = s; ctl_window = None })
          (Engine.sites eng);
      auto_back_traces = true;
      after_trace = (fun _ -> ());
      eff_threshold2 = (Engine.config eng).Config.threshold2;
      recent_live = 0;
      recent_garbage = 0;
    }
  in
  if (Engine.config eng).Config.adaptive_threshold then
    Back_trace.on_outcome t.back (fun _ outcome _ ->
        (match outcome with
        | Verdict.Live -> t.recent_live <- t.recent_live + 1
        | Verdict.Garbage -> t.recent_garbage <- t.recent_garbage + 1);
        (* Every four outcomes: if Live dominates, raise the threshold
           and restart the window. *)
        if t.recent_live + t.recent_garbage >= 4 then begin
          if t.recent_live > 2 * t.recent_garbage then begin
            t.eff_threshold2 <-
              t.eff_threshold2 + (Engine.config eng).Config.threshold_bump;
            Metrics.incr (Engine.metrics eng) "adaptive.threshold_raised"
          end;
          t.recent_live <- 0;
          t.recent_garbage <- 0
        end);
  Array.iter
    (fun c ->
      let s = c.ctl_site in
      let id = s.Site.id in
      s.Site.hooks.Site.h_run_local_trace <-
        (fun () -> run_scheduled_trace t id);
      s.Site.hooks.Site.h_ref_arrived <- (fun r -> barrier_ref_arrived t id r);
      s.Site.hooks.Site.h_ioref_cleaned <-
        (fun r -> Back_trace.on_cleaned t.back id r);
      s.Site.hooks.Site.h_ext <-
        (fun ~src ext -> ignore (Back_trace.handle_ext t.back id ~src ext)))
    t.ctls;
  t
