(** Top-level assembly: engine + back-tracing collector + mutators.

    The usual lifecycle is
    {[
      let sim = Sim.make ~cfg () in
      (* build an object graph: Dgc_rts.Builder or mutator agents *)
      Sim.start sim;
      Sim.run_rounds sim 12;
      (* inspect: Dgc_oracle.Oracle, Engine.metrics, Back_trace.stats *)
    ]} *)

open Dgc_simcore
open Dgc_rts

type t = {
  eng : Engine.t;
  col : Collector.t;
  muts : Mutator.manager;
}

val make : ?cfg:Config.t -> unit -> t
(** Assemble a simulation. Under [cfg.check_level = Check_step] the
    engine's step hook runs {!Invariants.per_step} after every event
    (skipping sites with an open trace window) and raises
    [Invariants.Violation] on the first inconsistent state. *)

val check : ?settled:bool -> t -> Invariants.violation list
(** Run the invariant battery now, skipping sites mid-window:
    the continuously-maintained checks by default, plus settled-only
    distance sanity with [~settled:true]. *)

val start : t -> unit
(** Begin the periodic local-trace schedule. *)

val run_for : t -> Sim_time.t -> unit
val run_rounds : t -> int -> unit
(** Run until every site has completed that many more local traces
    (bounded internally to avoid spinning if sites are crashed). *)

val collect_all : t -> ?max_rounds:int -> unit -> bool
(** Run rounds until the oracle reports zero garbage, up to
    [max_rounds] (default 40). True on success. Requires {!start} to
    have been called. *)
