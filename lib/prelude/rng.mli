(** Deterministic pseudo-random streams.

    All randomness in the simulator flows through a single [t] created
    from a seed, so that every run is reproducible from its seed. *)

type t

val create : seed:int -> t

val stream : seed:int -> lane:int -> t
(** [stream ~seed ~lane] is an independent deterministic stream keyed
    by [(seed, lane)]: the sharded scheduler gives shard [i] lane [i],
    so the draws of one shard never depend on another shard's progress.
    No lane coincides with the stream [create ~seed] produces. *)

val split : t -> t
(** [split t] is a new independent stream derived from [t]; drawing from
    one does not perturb the other. *)

val int : t -> int -> int
(** [int t n] is uniform in [0, n). Requires [n > 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t x] is uniform in [0, x). *)

val float_in : t -> float -> float -> float
(** [float_in t lo hi] is uniform in [lo, hi). *)

val bool : t -> bool
val chance : t -> float -> bool
(** [chance t p] is true with probability [p]. *)

val choose : t -> 'a list -> 'a
(** Uniform choice from a non-empty list. Raises [Invalid_argument] on
    an empty list. *)

val choose_arr : t -> 'a array -> 'a
val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniformly random permutation of [0..n-1]. *)
