type t = Random.State.t

let create ~seed = Random.State.make [| seed; 0x6d6c3937 |]

(* Lane 0 is reserved: [stream ~seed ~lane:0] is NOT [create ~seed];
   the extra key word always participates so lanes never collide with
   the classic two-word stream. *)
let stream ~seed ~lane = Random.State.make [| seed; 0x6d6c3937; 0x736864 + lane |]
let split t = Random.State.make [| Random.State.bits t; Random.State.bits t |]
let int t n = Random.State.int t n

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + Random.State.int t (hi - lo + 1)

let float t x = Random.State.float t x
let float_in t lo hi = lo +. Random.State.float t (hi -. lo)
let bool t = Random.State.bool t
let chance t p = Random.State.float t 1.0 < p

let choose t = function
  | [] -> invalid_arg "Rng.choose: empty list"
  | l -> List.nth l (int t (List.length l))

let choose_arr t a =
  if Array.length a = 0 then invalid_arg "Rng.choose_arr: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
