open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core

let site_id i = Site_id.of_int i

let make_sim ?cfg n_sites =
  let base = Option.value cfg ~default:Config.default in
  Sim.make ~cfg:{ base with Config.n_sites } ()

(* ---- Figure 1 -------------------------------------------------------- *)

type fig1 = {
  f1_sim : Sim.t;
  f1_p : Site_id.t;
  f1_q : Site_id.t;
  f1_r : Site_id.t;
  f1_a : Oid.t;
  f1_b : Oid.t;
  f1_c : Oid.t;
  f1_d : Oid.t;
  f1_e : Oid.t;
  f1_f : Oid.t;
  f1_g : Oid.t;
}

let fig1 ?cfg () =
  let sim = make_sim ?cfg 3 in
  let eng = sim.Sim.eng in
  let p = site_id 0 and q = site_id 1 and r = site_id 2 in
  let a = Builder.root_obj eng p in
  let e = Builder.obj eng p in
  let b = Builder.obj eng q in
  let d = Builder.obj eng q in
  let f = Builder.obj eng q in
  let c = Builder.obj eng r in
  let g = Builder.obj eng r in
  Builder.link eng ~src:a ~dst:b;
  Builder.link eng ~src:a ~dst:c;
  Builder.link eng ~src:b ~dst:c;
  Builder.link eng ~src:d ~dst:e;
  Builder.link eng ~src:f ~dst:g;
  Builder.link eng ~src:g ~dst:f;
  {
    f1_sim = sim;
    f1_p = p;
    f1_q = q;
    f1_r = r;
    f1_a = a;
    f1_b = b;
    f1_c = c;
    f1_d = d;
    f1_e = e;
    f1_f = f;
    f1_g = g;
  }

(* ---- Figure 2 -------------------------------------------------------- *)

type fig2 = {
  f2_sim : Sim.t;
  f2_a : Oid.t;
  f2_b : Oid.t;
  f2_c : Oid.t;
  f2_d : Oid.t;
}

let fig2 ?cfg () =
  let sim = make_sim ?cfg 3 in
  let eng = sim.Sim.eng in
  let p = site_id 0 and q = site_id 1 and r = site_id 2 in
  let a = Builder.obj eng q in
  let b = Builder.obj eng q in
  let c = Builder.obj eng p in
  let d = Builder.obj eng r in
  Builder.link eng ~src:a ~dst:c;
  Builder.link eng ~src:b ~dst:a;
  Builder.link eng ~src:b ~dst:d;
  Builder.link eng ~src:c ~dst:a;
  Builder.link eng ~src:d ~dst:b;
  { f2_sim = sim; f2_a = a; f2_b = b; f2_c = c; f2_d = d }

(* ---- Figure 3 -------------------------------------------------------- *)

type fig3 = {
  f3_sim : Sim.t;
  f3_root : Oid.t;
  f3_a : Oid.t;
  f3_b : Oid.t;
  f3_c : Oid.t;
  f3_d : Oid.t;
}

let fig3 ?cfg () =
  let sim = make_sim ?cfg 4 in
  let eng = sim.Sim.eng in
  let p = site_id 0 and q = site_id 1 and r = site_id 2 and s = site_id 3 in
  let root = Builder.root_obj eng s in
  let a = Builder.obj eng p in
  let b = Builder.obj eng q in
  let c = Builder.obj eng r in
  let d = Builder.obj eng s in
  (* "long path from root" to a: keep it a single inter-site link; the
     distance settles to 1, i.e. clean. *)
  Builder.link eng ~src:root ~dst:a;
  Builder.link eng ~src:a ~dst:b;
  Builder.link eng ~src:a ~dst:c;
  Builder.link eng ~src:b ~dst:c;
  Builder.link eng ~src:c ~dst:d;
  { f3_sim = sim; f3_root = root; f3_a = a; f3_b = b; f3_c = c; f3_d = d }

(* ---- Figure 4 -------------------------------------------------------- *)

type fig4 = {
  f4_sim : Sim.t;
  f4_a : Oid.t;
  f4_b : Oid.t;
  f4_x : Oid.t;
  f4_y : Oid.t;
  f4_z : Oid.t;
  f4_c : Oid.t;
  f4_d : Oid.t;
}

let fig4 ?cfg () =
  let sim = make_sim ?cfg 3 in
  let eng = sim.Sim.eng in
  let p = site_id 0 and q = site_id 1 and r = site_id 2 in
  let a = Builder.obj eng q in
  let b = Builder.obj eng q in
  let x = Builder.obj eng q in
  let y = Builder.obj eng q in
  let z = Builder.obj eng q in
  let c = Builder.obj eng p in
  let d = Builder.obj eng r in
  (* Sources for the two suspected inrefs. *)
  let pa = Builder.obj eng p in
  let rb = Builder.obj eng r in
  Builder.link eng ~src:pa ~dst:a;
  Builder.link eng ~src:rb ~dst:b;
  Builder.link eng ~src:a ~dst:x;
  (* Order matters for reproducing §5.2's first-cut failure: x scans z
     before c (fields are kept most-recently-added first). *)
  Builder.link eng ~src:x ~dst:c;
  Builder.link eng ~src:x ~dst:z;
  Builder.link eng ~src:z ~dst:x;
  Builder.link eng ~src:b ~dst:y;
  Builder.link eng ~src:b ~dst:z;
  Builder.link eng ~src:y ~dst:d;
  { f4_sim = sim; f4_a = a; f4_b = b; f4_x = x; f4_y = y; f4_z = z;
    f4_c = c; f4_d = d }

(* ---- Figures 5 and 6 -------------------------------------------------- *)

type fig5 = {
  f5_sim : Sim.t;
  f5_p : Site_id.t;
  f5_q : Site_id.t;
  f5_r : Site_id.t;
  f5_s : Site_id.t;
  f5_a : Oid.t;
  f5_b : Oid.t;
  f5_c : Oid.t;
  f5_d : Oid.t;
  f5_e : Oid.t;
  f5_f : Oid.t;
  f5_x : Oid.t;
  f5_y : Oid.t;
  f5_z : Oid.t;
  f5_g : Oid.t;
  f5_h : Oid.t;
}

let fig5 ?cfg () =
  let sim = make_sim ?cfg 4 in
  let eng = sim.Sim.eng in
  let p = site_id 0 and q = site_id 1 and r = site_id 2 and s = site_id 3 in
  let a = Builder.root_obj eng p in
  let g = Builder.obj eng p in
  let b = Builder.obj eng q in
  let f = Builder.obj eng q in
  let x = Builder.obj eng q in
  let y = Builder.obj eng q in
  let z = Builder.obj eng q in
  let c = Builder.obj eng r in
  let e = Builder.obj eng r in
  let d = Builder.obj eng s in
  let h = Builder.obj eng s in
  Builder.link eng ~src:a ~dst:b;
  Builder.link eng ~src:g ~dst:h;
  Builder.link eng ~src:b ~dst:y;
  Builder.link eng ~src:b ~dst:c;
  Builder.link eng ~src:c ~dst:d;
  Builder.link eng ~src:d ~dst:e;
  Builder.link eng ~src:e ~dst:f;
  Builder.link eng ~src:f ~dst:x;
  Builder.link eng ~src:x ~dst:z;
  Builder.link eng ~src:z ~dst:g;
  {
    f5_sim = sim;
    f5_p = p;
    f5_q = q;
    f5_r = r;
    f5_s = s;
    f5_a = a;
    f5_b = b;
    f5_c = c;
    f5_d = d;
    f5_e = e;
    f5_f = f;
    f5_x = x;
    f5_y = y;
    f5_z = z;
    f5_g = g;
    f5_h = h;
  }

let fig6 ?cfg () =
  let f = fig5 ?cfg () in
  let eng = f.f5_sim.Sim.eng in
  let w = Builder.obj eng f.f5_r in
  Builder.link eng ~src:f.f5_e ~dst:w;
  Builder.link eng ~src:w ~dst:f.f5_g;
  (f, w)

(* ---- drivers ---------------------------------------------------------- *)

let settle sim ~rounds =
  for _ = 1 to rounds do
    Collector.force_local_trace_all sim.Sim.col;
    (* Let update and insert messages land before the next round. *)
    Sim.run_for sim (Sim_time.of_seconds 1.)
  done

let walk sim agent ~start_root ~path ?(captures = []) ~k () =
  let eng = sim.Sim.eng in
  if not (Mutator.load_root_named agent ~root:start_root ~dst:"cur") then
    invalid_arg "Scenario.walk: start_root is not a root at the agent's site";
  let capture o =
    List.iter
      (fun (target, name) ->
        if Oid.equal o target then
          ignore (Mutator.copy_var agent ~src:"cur" ~dst:name))
      captures
  in
  capture start_root;
  let rec go = function
    | [] -> k ()
    | next :: rest ->
        let cur =
          match Mutator.var agent "cur" with
          | Some c -> c
          | None -> invalid_arg "Scenario.walk: lost the cursor"
        in
        let heap = (Engine.site eng (Oid.site cur)).Site.heap in
        let fields = Heap.fields heap cur in
        let idx =
          let rec find i = function
            | [] ->
                invalid_arg
                  (Format.asprintf "Scenario.walk: no field %a in %a" Oid.pp
                     next Oid.pp cur)
            | fld :: tl -> if Oid.equal fld next then i else find (i + 1) tl
          in
          find 0 fields
        in
        if not (Mutator.read_field agent ~obj:"cur" ~idx ~dst:"cur") then
          invalid_arg "Scenario.walk: read_field failed";
        capture next;
        if Site_id.equal (Oid.site next) (Mutator.agent_site agent) then
          go rest
        else if not (Mutator.travel agent ~via:"cur" ~k:(fun () -> go rest))
        then invalid_arg "Scenario.walk: travel failed"
  in
  go path

let fig5_race_arm ?(use_fig6 = false) ?(trace_start_ms = 60.) ~cfg () =
  let cfg =
    {
      cfg with
      Config.latency = Latency.Fixed (Sim_time.of_millis 10.);
      trace_duration = Sim_time.zero;
    }
  in
  let f = if use_fig6 then fst (fig6 ~cfg ()) else fig5 ~cfg () in
  let sim = f.f5_sim in
  let eng = sim.Sim.eng in
  (* Converge distances: b1 c2 d3 e4 f5 g6 h7 (delta=3 suspects e..h). *)
  settle sim ~rounds:9;
  let outcome = ref None in
  Back_trace.on_outcome (Collector.back sim.Sim.col) (fun _ v _ ->
      outcome := Some v);
  let agent = Mutator.spawn sim.Sim.muts ~at:f.f5_p in
  walk sim agent ~start_root:f.f5_a
    ~path:[ f.f5_b; f.f5_c; f.f5_d; f.f5_e; f.f5_f; f.f5_x; f.f5_z ]
    ~captures:[ (f.f5_b, "b") ]
    ~k:(fun () ->
      (* Copy z into y (y is a field of b, both local at Q). *)
      let heap_q = (Engine.site eng f.f5_q).Site.heap in
      let y_idx =
        let fields = Heap.fields heap_q f.f5_b in
        let rec find i = function
          | [] -> invalid_arg "fig5_race: y not a field of b"
          | fld :: tl -> if Oid.equal fld f.f5_y then i else find (i + 1) tl
        in
        find 0 fields
      in
      ignore (Mutator.read_field agent ~obj:"b" ~idx:y_idx ~dst:"y");
      ignore (Mutator.write agent ~obj:"y" ~value:"cur");
      (* Delete the old path at S once the final move-ack released the
         retention pin on outref e. *)
      Engine.schedule eng ~delay:(Sim_time.of_millis 5.) (fun () ->
          Builder.unlink eng ~src:f.f5_d ~dst:f.f5_e;
          Collector.force_local_trace sim.Sim.col f.f5_s))
    ();
  Engine.schedule eng ~delay:(Sim_time.of_millis trace_start_ms) (fun () ->
      ignore (Collector.start_back_trace sim.Sim.col f.f5_p f.f5_h));
  (f, outcome)

let fig5_race ?use_fig6 ?trace_start_ms ~cfg () =
  let f, outcome = fig5_race_arm ?use_fig6 ?trace_start_ms ~cfg () in
  let sim = f.f5_sim in
  let violation = ref None in
  (try Sim.run_for sim (Sim_time.of_seconds 5.)
   with Dgc_oracle.Oracle.Safety_violation m -> violation := Some m);
  (* Make the consequences of any wrong flags visible. *)
  if !violation = None then begin
    try
      Collector.force_local_trace sim.Sim.col f.f5_p;
      Collector.force_local_trace sim.Sim.col f.f5_q
    with Dgc_oracle.Oracle.Safety_violation m -> violation := Some m
  end;
  (f, !outcome, !violation)

