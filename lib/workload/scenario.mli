(** Executable reconstructions of the paper's figures.

    Each [figN] builds exactly the configuration drawn in Figure N
    (sites, objects, references, roots) through the builder, so the
    ioref tables start consistent; distances are the conservative
    initial ones until traces run ({!settle}). The returned records
    name every object with the letter used in the paper. *)

open Dgc_prelude
open Dgc_heap
open Dgc_rts
open Dgc_core

type fig1 = {
  f1_sim : Sim.t;
  f1_p : Site_id.t;
  f1_q : Site_id.t;
  f1_r : Site_id.t;
  f1_a : Oid.t;  (** persistent root at P *)
  f1_b : Oid.t;
  f1_c : Oid.t;
  f1_d : Oid.t;  (** acyclic garbage at Q, d -> e *)
  f1_e : Oid.t;
  f1_f : Oid.t;  (** f <-> g: the inter-site garbage cycle *)
  f1_g : Oid.t;
}

val fig1 : ?cfg:Config.t -> unit -> fig1

type fig2 = {
  f2_sim : Sim.t;
  f2_a : Oid.t;  (** at Q; a -> c *)
  f2_b : Oid.t;  (** at Q; b -> a, b -> d *)
  f2_c : Oid.t;  (** at P; c -> a *)
  f2_d : Oid.t;  (** at R; d -> b *)
}

val fig2 : ?cfg:Config.t -> unit -> fig2

type fig3 = {
  f3_sim : Sim.t;
  f3_root : Oid.t;  (** at S, heads the long path to a *)
  f3_a : Oid.t;  (** at P; a -> b, a -> c *)
  f3_b : Oid.t;  (** at Q; b -> c *)
  f3_c : Oid.t;  (** at R; c -> d *)
  f3_d : Oid.t;  (** at S *)
}

val fig3 : ?cfg:Config.t -> unit -> fig3

type fig4 = {
  f4_sim : Sim.t;
  f4_a : Oid.t;  (** inref target at Q (source P) *)
  f4_b : Oid.t;  (** inref target at Q (source R) *)
  f4_x : Oid.t;  (** at Q; x -> z, x -> c; z -> x closes the SCC *)
  f4_y : Oid.t;  (** at Q; y -> d *)
  f4_z : Oid.t;
  f4_c : Oid.t;  (** at P, remote target *)
  f4_d : Oid.t;  (** at R, remote target *)
}

val fig4 : ?cfg:Config.t -> unit -> fig4
(** Figure 4 augmented with the back edge discussed in §5.2 (z -> x),
    so the naive bottom-up computation goes wrong while the SCC-based
    one does not. Layout: P holds c and sources inref a; R holds d and
    sources inref b; at Q: a -> x, x -> z, x -> c, z -> x (the back
    edge), b -> z, b -> y, y -> d. *)

type fig5 = {
  f5_sim : Sim.t;
  f5_p : Site_id.t;
  f5_q : Site_id.t;
  f5_r : Site_id.t;
  f5_s : Site_id.t;
  f5_a : Oid.t;  (** root at P *)
  f5_b : Oid.t;  (** at Q, clean *)
  f5_c : Oid.t;  (** at R, clean *)
  f5_d : Oid.t;  (** at S; d -> e is the reference the race deletes *)
  f5_e : Oid.t;  (** at R, suspected *)
  f5_f : Oid.t;  (** at Q, suspected *)
  f5_x : Oid.t;  (** at Q; old path: f -> x -> z *)
  f5_y : Oid.t;  (** at Q; reachable from b; the race creates y -> z *)
  f5_z : Oid.t;  (** at Q; z -> g *)
  f5_g : Oid.t;  (** at P, suspected *)
  f5_h : Oid.t;
      (** at S, with g -> h. Not drawn in the figure: the paper's "back
          trace from g" reaches inref g at P, which under the §4.1
          outref-start discipline requires a suspected outref downstream
          of g — outref h at P, whose inset is [{g}]. *)
}

val fig5 : ?cfg:Config.t -> unit -> fig5

val fig6 : ?cfg:Config.t -> unit -> fig5 * Oid.t
(** Figure 6 = Figure 5 plus an object [w] at R with e -> w -> g, so
    inref g at P has sources Q and R and a back trace from g forks.
    Returns the fig5 record (same naming) and [w]. *)

(** {1 Drivers} *)

val fig5_race_arm :
  ?use_fig6:bool ->
  ?trace_start_ms:float ->
  cfg:Config.t ->
  unit ->
  fig5 * Verdict.t option ref
(** Build and arm the §6.4 race without running it: distances settled,
    the mutator walk and the deletion scheduled, the back trace from
    outref h queued at [trace_start_ms]. The caller drives the engine
    (normally, or step by step — the schedule explorer uses this to
    enumerate interleavings of the armed events). The returned ref
    receives the back trace's eventual verdict. The configuration's
    latency is forced to the fixed 10ms the schedule assumes, and
    trace windows are made atomic. *)

val fig5_race :
  ?use_fig6:bool ->
  ?trace_start_ms:float ->
  cfg:Config.t ->
  unit ->
  fig5 * Verdict.t option * string option
(** The §6.4 race, deterministically scheduled (10ms fixed hops):
    a mutator walks the old path a..z, copies z into y and deletes
    d -> e (reflected by a forced trace at S); a back trace from
    outref h at P starts at [trace_start_ms] (default 60) so that it
    sees Q before the mutation's barrier information would be
    recomputed and S after the deletion. Returns the scenario, the
    trace outcome, and a safety-violation message if the oracle caught
    an unsafe sweep (which happens exactly when the §6 machinery is
    disabled in [cfg]). The configuration's latency is forced to the
    fixed 10ms the schedule assumes. *)

val settle : Sim.t -> rounds:int -> unit
(** Run [rounds] forced synchronous local traces at every site, with
    enough simulated time in between for update messages to land —
    converges distances deterministically without starting the
    periodic schedule. Does not trigger back traces. *)

val walk :
  Sim.t ->
  Mutator.t ->
  start_root:Oid.t ->
  path:Oid.t list ->
  ?captures:(Oid.t * string) list ->
  k:(unit -> unit) ->
  unit ->
  unit
(** Drive an agent along a concrete object path: the agent loads
    [start_root] (a persistent root at its current site) into variable
    ["cur"], then repeatedly reads the field leading to the next path
    element and travels when it is remote — firing exactly the §6.1
    transfer/traversal events. Objects listed in [captures] are copied
    into the named variables as the walk passes them. [k] runs when the
    walk completes (asynchronously if it crossed sites). *)
