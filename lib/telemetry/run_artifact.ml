open Dgc_simcore

let schema = "dgc.run/1"

let hist_json (st : Metrics.hist_stats) =
  Json.Obj
    [
      ("n", Json.Int st.Metrics.n);
      ("sum", Json.Float st.Metrics.sum);
      ("min", Json.Float st.Metrics.min);
      ("max", Json.Float st.Metrics.max);
      ("p50", Json.Float st.Metrics.p50);
      ("p95", Json.Float st.Metrics.p95);
      ("p99", Json.Float st.Metrics.p99);
    ]

let make ~name ~sim_seconds ?(extra = []) ?audit ?series ?profile metrics =
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("name", Json.Str name);
       ("sim_seconds", Json.Float sim_seconds);
       ( "counters",
         Json.Obj
           (List.map (fun (k, v) -> (k, Json.Int v)) (Metrics.counters metrics))
       );
       ( "histograms",
         Json.Obj
           (List.map (fun (k, st) -> (k, hist_json st)) (Metrics.hists metrics))
       );
       ("extra", Json.Obj extra);
     ]
    @ (match series with Some s -> [ ("series", Series.to_json s) ] | None -> [])
    @ (match profile with Some p -> [ ("profile", p) ] | None -> [])
    @ match audit with Some a -> [ ("audit", a) ] | None -> [])

let audit_section j = Json.member "audit" j
let series_section j = Json.member "series" j
let profile_section j = Json.member "profile" j

let validate ?(require_hists = []) ?(require_counter_prefixes = []) j =
  let ( let* ) r f = Result.bind r f in
  let str_field k =
    match Option.bind (Json.member k j) Json.to_str_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "missing string field %S" k)
  in
  let* s = str_field "schema" in
  let* _ = str_field "name" in
  let* () =
    if s = schema then Ok ()
    else Error (Printf.sprintf "schema %S, expected %S" s schema)
  in
  let* () =
    match Option.bind (Json.member "sim_seconds" j) Json.to_float_opt with
    | Some _ -> Ok ()
    | None -> Error "missing numeric field \"sim_seconds\""
  in
  let* counters =
    match Json.member "counters" j with
    | Some (Json.Obj fields) -> Ok fields
    | _ -> Error "missing object field \"counters\""
  in
  let* () =
    List.fold_left
      (fun acc (k, v) ->
        let* () = acc in
        match v with
        | Json.Int _ -> Ok ()
        | _ -> Error (Printf.sprintf "counter %S is not an integer" k))
      (Ok ()) counters
  in
  let* hists =
    match Json.member "histograms" j with
    | Some (Json.Obj fields) -> Ok fields
    | _ -> Error "missing object field \"histograms\""
  in
  let* () =
    List.fold_left
      (fun acc (k, v) ->
        let* () = acc in
        List.fold_left
          (fun acc field ->
            let* () = acc in
            match Option.bind (Json.member field v) Json.to_float_opt with
            | Some _ -> Ok ()
            | None ->
                Error (Printf.sprintf "histogram %S missing %S" k field))
          (Ok ())
          [ "n"; "sum"; "min"; "max"; "p50"; "p95"; "p99" ])
      (Ok ()) hists
  in
  let* () =
    List.fold_left
      (fun acc name ->
        let* () = acc in
        if List.mem_assoc name hists then Ok ()
        else Error (Printf.sprintf "required histogram %S missing" name))
      (Ok ()) require_hists
  in
  let* () =
    match Json.member "audit" j with
    | None -> Ok ()
    | Some a -> (
        match Option.bind (Json.member "schema" a) Json.to_str_opt with
        | Some "dgc.audit/1" -> Ok ()
        | Some s -> Error (Printf.sprintf "audit schema %S, expected \"dgc.audit/1\"" s)
        | None -> Error "audit section missing its schema field")
  in
  let* () =
    match Json.member "series" j with
    | None -> Ok ()
    | Some s -> (
        match Series.validate s with
        | Ok () -> Ok ()
        | Error e -> Error ("series section: " ^ e))
  in
  (* Lightweight check only: full [dgc.profile/1] validation lives in
     [Dgc_profile.Profile.validate] (telemetry sits below lib/profile
     in the dependency order, so it can't call it). *)
  let* () =
    match Json.member "profile" j with
    | None -> Ok ()
    | Some p -> (
        match Option.bind (Json.member "schema" p) Json.to_str_opt with
        | Some "dgc.profile/1" -> Ok ()
        | Some s ->
            Error
              (Printf.sprintf "profile schema %S, expected \"dgc.profile/1\"" s)
        | None -> Error "profile section missing its schema field")
  in
  List.fold_left
    (fun acc prefix ->
      let* () = acc in
      let has =
        List.exists
          (fun (k, _) ->
            String.length k >= String.length prefix
            && String.sub k 0 (String.length prefix) = prefix)
          counters
      in
      if has then Ok ()
      else Error (Printf.sprintf "no counter under prefix %S" prefix))
    (Ok ()) require_counter_prefixes

let write ~path j =
  let oc = open_out path in
  output_string oc (Json.to_string j);
  output_char oc '\n';
  close_out oc

let read ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> Json.parse text
  | exception Sys_error e -> Error e
