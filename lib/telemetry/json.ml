type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* --- printing --------------------------------------------------------- *)

let escape b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr x =
  if not (Float.is_finite x) then "null"
  else
    let s = Printf.sprintf "%.12g" x in
    (* "%.12g" never emits a trailing '.', but be safe for "1." forms. *)
    if String.contains s '.' || String.contains s 'e' || String.contains s 'n'
    then s
    else s ^ ".0"

let rec emit b = function
  | Null -> Buffer.add_string b "null"
  | Bool true -> Buffer.add_string b "true"
  | Bool false -> Buffer.add_string b "false"
  | Int i -> Buffer.add_string b (string_of_int i)
  | Float x -> Buffer.add_string b (float_repr x)
  | Str s -> escape b s
  | Arr l ->
      Buffer.add_char b '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_char b ',';
          emit b v)
        l;
      Buffer.add_char b ']'
  | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char b ',';
          escape b k;
          Buffer.add_char b ':';
          emit b v)
        fields;
      Buffer.add_char b '}'

let to_string v =
  let b = Buffer.create 256 in
  emit b v;
  Buffer.contents b

let pp ppf v = Format.pp_print_string ppf (to_string v)

(* --- parsing ---------------------------------------------------------- *)

exception Bad of string

type cursor = { s : string; mutable pos : int }

let peek c = if c.pos < String.length c.s then Some c.s.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let fail c msg = raise (Bad (Printf.sprintf "%s at offset %d" msg c.pos))

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | _ -> fail c (Printf.sprintf "expected %c" ch)

let literal c word v =
  let n = String.length word in
  if c.pos + n <= String.length c.s && String.sub c.s c.pos n = word then begin
    c.pos <- c.pos + n;
    v
  end
  else fail c ("expected " ^ word)

let parse_string_raw c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
        advance c;
        match peek c with
        | Some '"' -> advance c; Buffer.add_char b '"'; go ()
        | Some '\\' -> advance c; Buffer.add_char b '\\'; go ()
        | Some '/' -> advance c; Buffer.add_char b '/'; go ()
        | Some 'n' -> advance c; Buffer.add_char b '\n'; go ()
        | Some 'r' -> advance c; Buffer.add_char b '\r'; go ()
        | Some 't' -> advance c; Buffer.add_char b '\t'; go ()
        | Some 'b' -> advance c; Buffer.add_char b '\b'; go ()
        | Some 'f' -> advance c; Buffer.add_char b '\012'; go ()
        | Some 'u' ->
            advance c;
            if c.pos + 4 > String.length c.s then fail c "bad \\u escape";
            let hex = String.sub c.s c.pos 4 in
            let code =
              try int_of_string ("0x" ^ hex)
              with _ -> fail c "bad \\u escape"
            in
            c.pos <- c.pos + 4;
            (* ASCII only; anything else round-trips as '?'. *)
            Buffer.add_char b
              (if code < 0x80 then Char.chr code else '?');
            go ()
        | _ -> fail c "bad escape")
    | Some ch ->
        advance c;
        Buffer.add_char b ch;
        go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char ch =
    match ch with
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
        advance c;
        go ()
    | _ -> ()
  in
  go ();
  let text = String.sub c.s start (c.pos - start) in
  if String.contains text '.' || String.contains text 'e'
     || String.contains text 'E'
  then
    match float_of_string_opt text with
    | Some x -> Float x
    | None -> fail c "bad number"
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
        match float_of_string_opt text with
        | Some x -> Float x
        | None -> fail c "bad number")

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '{' ->
      advance c;
      skip_ws c;
      if peek c = Some '}' then begin
        advance c;
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws c;
          let k = parse_string_raw c in
          skip_ws c;
          expect c ':';
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              fields ((k, v) :: acc)
          | Some '}' ->
              advance c;
              List.rev ((k, v) :: acc)
          | _ -> fail c "expected ',' or '}'"
        in
        Obj (fields [])
      end
  | Some '[' ->
      advance c;
      skip_ws c;
      if peek c = Some ']' then begin
        advance c;
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value c in
          skip_ws c;
          match peek c with
          | Some ',' ->
              advance c;
              items (v :: acc)
          | Some ']' ->
              advance c;
              List.rev (v :: acc)
          | _ -> fail c "expected ',' or ']'"
        in
        Arr (items [])
      end
  | Some '"' -> Str (parse_string_raw c)
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected %c" ch)

let parse s =
  let c = { s; pos = 0 } in
  match parse_value c with
  | v ->
      skip_ws c;
      if c.pos = String.length s then Ok v
      else Error (Printf.sprintf "trailing input at offset %d" c.pos)
  | exception Bad msg -> Error msg

(* --- accessors -------------------------------------------------------- *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_int_opt = function Int i -> Some i | _ -> None

let to_float_opt = function
  | Float x -> Some x
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str_opt = function Str s -> Some s | _ -> None
let to_list_opt = function Arr l -> Some l | _ -> None
