(** Causal spans for distributed back traces.

    A tracer records spans: named, site-attributed intervals of
    simulated time with parent links and a trace key, so one back
    trace — activation frames, remote leaps, the report phase,
    timeouts — renders as a single causal tree across sites. The
    runtime writes spans through hooks; exporters turn the log into
    JSONL (one span object per line) or Chrome trace-event JSON
    (loadable in Perfetto / chrome://tracing as a flame chart with
    cross-site flow arrows).

    Span ids are unique per tracer and stable across export and
    re-import; times are simulated seconds. *)

type span_id = int

type span = {
  id : span_id;
  parent : span_id option;
  trace : string;  (** trace key, e.g. ["T0.3"] *)
  name : string;  (** e.g. ["frame.local"], ["leap.call"], ["report"] *)
  site : int;
  start : float;  (** simulated seconds *)
  mutable finish : float option;  (** [None] while open *)
  mutable attrs : (string * Json.t) list;
}

type t

val create : unit -> t

val start_span :
  t ->
  ?parent:span_id ->
  trace:string ->
  name:string ->
  site:int ->
  at:float ->
  (string * Json.t) list ->
  span_id

val finish_span : t -> span_id -> at:float -> (string * Json.t) list -> unit
(** Close an open span, appending attributes. A finish for an unknown
    or already-closed id (a TTL may race the report phase) is not an
    error, but it is counted: see {!dropped_finishes}. *)

val event :
  t ->
  ?parent:span_id ->
  trace:string ->
  name:string ->
  site:int ->
  at:float ->
  (string * Json.t) list ->
  span_id
(** A zero-duration span (e.g. a timeout firing). *)

val find : t -> span_id -> span option
val spans : t -> span list
(** In start order. *)

val span_count : t -> int
val open_count : t -> int

val open_spans : t -> span list
(** Spans not yet finished, in start order. The watchdog reads these
    to flag frames stuck past their timeout. *)

val dropped_finishes : t -> int
(** Number of [finish_span] calls that hit an unknown or
    already-closed id and were discarded. A non-zero value after a
    clean run points at a span-bookkeeping bug in the caller. *)

val abort_open : t -> at:float -> int
(** Close every still-open span with a synthetic end at [at] carrying
    an [("aborted", true)] attribute, so Perfetto renders them as real
    slices instead of zero-width marks. Returns the number closed; the
    running count is {!aborted_spans}. The flight recorder calls this
    on dump (the engine mirrors the count into the
    [tracer.aborted_spans] metric). *)

val aborted_spans : t -> int
(** Spans ever closed by {!abort_open}. *)

val set_span_hooks :
  t -> on_start:(span -> unit) -> on_finish:(span -> unit) -> unit
(** Install taps invoked at every span start and finish ([on_finish]
    sees the span with its end time set, including synthetic
    {!abort_open} ends). One pair at a time; the flight recorder
    mirrors span edges into its binary ring through these. *)

val pp : Format.formatter -> t -> unit
(** One summary line (span/open/dropped counts) followed by one line
    per still-open span. *)

(** {1 Export / import} *)

val span_to_json : span -> Json.t
val span_of_json : Json.t -> (span, string) result

val to_jsonl : t -> string
(** One span object per line, start order. *)

val spans_of_jsonl : string -> (span list, string) result

val to_chrome : ?counters:Json.t list -> t -> Json.t
(** A [{"traceEvents": [...]}] document: per-site processes (pid =
    site id), per-trace lanes (tid), one complete ("X") event per
    span, and flow arrows ("s"/"f") linking parents to children that
    run on a different site. [counters] appends extra trace events —
    [Series.chrome_counters] produces Perfetto counter tracks in the
    right shape. *)

val write_jsonl : t -> path:string -> unit
val write_chrome : t -> path:string -> unit
