(** Machine-readable run artifacts.

    One JSON document per run ("dgc.run/1"): name, simulated duration,
    every counter, and percentile summaries of every histogram in the
    metrics registry, plus free-form extra fields. The CLI's [metrics]
    subcommand, the bench harness ([BENCH_backtrace.json]) and tests
    all write and validate the same shape, so downstream tooling can
    track numbers across runs without scraping tables. *)

val schema : string
(** ["dgc.run/1"]. *)

val make :
  name:string ->
  sim_seconds:float ->
  ?extra:(string * Json.t) list ->
  ?audit:Json.t ->
  ?series:Series.t ->
  ?profile:Json.t ->
  Dgc_simcore.Metrics.t ->
  Json.t
(** Counters and histograms are emitted sorted by name. [audit], when
    given, must be a ["dgc.audit/1"] document (the observe library's
    [Audit.to_json]); it lands under the top-level ["audit"] key.
    [series], when given, lands as {!Series.to_json} under ["series"]
    — the time dimension the point-in-time sections lack. [profile],
    when given, must be a ["dgc.profile/1"] document
    ([Dgc_profile.Profile.to_json]); it lands under ["profile"]. *)

val audit_section : Json.t -> Json.t option
(** The ["audit"] section of an artifact, if present. *)

val series_section : Json.t -> Json.t option
(** The ["series"] section of an artifact, if present. *)

val profile_section : Json.t -> Json.t option
(** The ["profile"] section of an artifact, if present. *)

val validate :
  ?require_hists:string list ->
  ?require_counter_prefixes:string list ->
  Json.t ->
  (unit, string) result
(** Shape check: schema/name/sim_seconds present and well-typed,
    [counters] all integers, every histogram carrying numeric
    n/sum/min/max/p50/p95/p99. [require_hists] names histograms that
    must exist; [require_counter_prefixes] demands at least one
    counter under each prefix. An ["audit"] section, when present,
    must carry the ["dgc.audit/1"] schema tag; a ["series"] section
    must pass {!Series.validate}; a ["profile"] section must carry the
    ["dgc.profile/1"] schema tag (full validation is the profile
    library's job). *)

val write : path:string -> Json.t -> unit

val read : path:string -> (Json.t, string) result
(** Parse errors and I/O errors both land in [Error]. *)
