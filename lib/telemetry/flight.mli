(** The flight recorder: always-on, fixed-capacity binary rings.

    One ring of bytes per site (plus a global ring for site-less
    events: faults, journal mirror) records engine events, span edges
    and journal entries as compact length-prefixed binary frames.
    Writing is a few blits and never allocates on the steady path;
    when a ring is full the oldest whole records are evicted, so the
    recorder always holds the causally-relevant last-N events per site
    at O(capacity) memory.

    On an invariant violation, campaign failure, watchdog verdict or
    an explicit [--dump-flight], the rings are snapshotted into a
    ["dgc.flight/1"] JSON artifact: the intern table, then per ring
    the site, the written/evicted counters and the live region as hex,
    oldest record first. {!of_json} decodes strictly — truncated
    frames, unknown kinds, dangling string ids or non-canonical hex
    are rejected — and {!to_json} of a parsed dump is byte-identical
    to the original document.

    Record layout (little-endian), framed as [u16 length ++ body]:
    {v
      body := u8  kind        (1=send 2=deliver 3=drop 4=fault
                               5=journal 6=span-start 7=span-end 8=timer)
              u16 tag         (intern-table index: msg kind, journal
                               category, span name, fault kind)
              i32 a, i32 b    (kind-specific: src/dst sites, span id
                               and parent, journal level)
              f64 at          (simulated seconds, IEEE-754 bits)
              u16 plen ++ payload bytes (free text, clamped to 255)
    v} *)

type kind =
  | Send
  | Deliver
  | Drop
  | Fault
  | Journal
  | Span_start
  | Span_end
  | Timer

val kind_name : kind -> string

type event = {
  ev_kind : kind;
  ev_at : float;  (** simulated seconds *)
  ev_a : int;
  ev_b : int;
  ev_tag : string;
  ev_payload : string;
}

type t

val create : ?capacity:int -> n_sites:int -> unit -> t
(** [capacity] is bytes per ring (default 32768, minimum 1024). Rings
    exist for sites [0 .. n_sites-1] plus the global ring ([site:-1]). *)

val capacity : t -> int
val n_sites : t -> int

val record :
  t ->
  site:int ->
  at:float ->
  kind:kind ->
  ?a:int ->
  ?b:int ->
  ?tag:string ->
  ?payload:string ->
  unit ->
  unit
(** Append one record to the ring of [site] ([-1] for the global
    ring; out-of-range sites are ignored). [a]/[b] default to [-1],
    [tag]/[payload] to [""]. Payloads are truncated to 255 bytes. *)

val written : t -> site:int -> int
(** Records ever written to the ring (including evicted ones). *)

val evicted : t -> site:int -> int

(** {1 Dump artifact} *)

val schema : string
(** ["dgc.flight/1"]. *)

type dump

val dump : t -> reason:string -> at:float -> dump
(** Snapshot every ring (linearized oldest-first). Recording may
    continue afterwards; the dump is independent of the live rings. *)

val reason : dump -> string
val dump_at : dump -> float

val sites : dump -> int list
(** Ring owners present in the dump, [-1] (global) first. *)

val events : dump -> site:int -> event list
(** Decoded records of one ring, oldest first; [] for an absent site. *)

val to_json : dump -> Json.t
val of_json : Json.t -> (dump, string) result
(** Strict: a document not produced by {!to_json} (truncated frame,
    bad kind, dangling intern index, odd or non-canonical hex, wrong
    schema) is an [Error]. [to_json (of_json d)] re-serializes to the
    exact original bytes. *)

val write : path:string -> dump -> unit
val read : path:string -> (dump, string) result
