(** Windowed time-series metrics.

    A registry of named series bucketed by simulated time: counters
    (per-bucket sums plus a cumulative total) and gauges (last write
    per bucket). Buckets are [window] seconds wide and the per-series
    retention is bounded by [max_buckets], so a registry can stay
    attached to a long run at O(max_buckets) memory per name.

    Series complement the end-of-run aggregates in
    [Dgc_simcore.Metrics] with a time dimension: in-flight back-trace
    counts, frames held, retry/chaos rates, per-site bytes resident.
    Names follow the metrics convention, including [{site=N}] label
    suffixes (e.g. ["bytes_resident{site=2}"]).

    Exporters: {!to_prom} (Prometheus-style text exposition of the
    final values), {!chrome_counters} (Perfetto counter-track ["C"]
    events, mergeable into [Tracer.to_chrome]), {!to_json} (the
    ["series"] section of a run artifact, gated by bench compare). *)

type t

type kind = Counter | Gauge

val create : ?window:float -> ?max_buckets:int -> unit -> t
(** [window] is the bucket width in simulated seconds (default 1.0);
    [max_buckets] bounds per-series retention (default 512) — older
    buckets are evicted and counted. *)

val window : t -> float

(** {1 Recording} *)

val add : t -> string -> at:float -> int -> unit
(** Counter: add to the bucket covering [at] and to the running total.
    First use of a name fixes its kind; a later {!set} on a counter
    name (or {!add} on a gauge name) raises [Invalid_argument]. *)

val incr : t -> string -> at:float -> unit
(** [add t name ~at 1]. *)

val set : t -> string -> at:float -> float -> unit
(** Gauge: overwrite the bucket covering [at]; the newest write is
    also the series' last value. *)

(** {1 Reading} *)

val names : t -> (string * kind) list
(** Sorted by name. *)

val points : t -> string -> (float * float) list
(** Retained (bucket-start-time, value) pairs, oldest first; [] for
    an unknown name. *)

val total : t -> string -> float
(** Counter: cumulative sum over the whole run (including evicted
    buckets). Gauge: the last value written. 0 for an unknown name. *)

val evicted : t -> string -> int
(** Buckets dropped by the retention bound. *)

(** {1 Merging} *)

val merge_into : into:t -> t -> unit
(** Fold [src] into [into] (sharded engines merge their per-shard
    registries into one document). Bucket values add for both kinds —
    counters are per-window sums, and each shard's gauges sample a
    disjoint population (its own sites and frames), so the
    whole-engine gauge is the sum of the shard gauges. Names are
    visited in sorted order, so merging deterministic registries is
    deterministic. Raises [Invalid_argument] on a window mismatch or
    when a name's kind disagrees between the registries. *)

(** {1 Export} *)

val to_json : t -> Json.t
(** [{"window": w, "series": {name: {"kind", "n", "max", "last",
    "total", "points": [[t, v], ...]}, ...}}] with names sorted, so
    output is deterministic and diffable. *)

val validate : Json.t -> (unit, string) result
(** Shape check of a {!to_json} document: numeric window, every series
    carrying a known kind, numeric summary fields, an [n] matching its
    points array, and two-element numeric points. *)

val to_prom : t -> string
(** Strict Prometheus text exposition of the final state: one
    [# TYPE] line per metric family, one sample per series (counters
    expose the cumulative total, gauges the last value). Names are
    sanitized (dots to underscores, ["dgc_"] prefix), [{site=N}]
    suffixes become proper labels with validated label names, and
    label values escape exactly backslash, double quote and newline as
    the exposition format requires. *)

val chrome_counters : t -> Json.t list
(** One Chrome trace-event counter sample (["ph":"C"]) per retained
    point; the [pid] is the site for [{site=N}]-labelled series and 0
    otherwise. Pass to [Tracer.to_chrome]'s [?counters]. *)
