type kind =
  | Send
  | Deliver
  | Drop
  | Fault
  | Journal
  | Span_start
  | Span_end
  | Timer

let kind_code = function
  | Send -> 1
  | Deliver -> 2
  | Drop -> 3
  | Fault -> 4
  | Journal -> 5
  | Span_start -> 6
  | Span_end -> 7
  | Timer -> 8

let kind_of_code = function
  | 1 -> Some Send
  | 2 -> Some Deliver
  | 3 -> Some Drop
  | 4 -> Some Fault
  | 5 -> Some Journal
  | 6 -> Some Span_start
  | 7 -> Some Span_end
  | 8 -> Some Timer
  | _ -> None

let kind_name = function
  | Send -> "send"
  | Deliver -> "deliver"
  | Drop -> "drop"
  | Fault -> "fault"
  | Journal -> "journal"
  | Span_start -> "span_start"
  | Span_end -> "span_end"
  | Timer -> "timer"

type event = {
  ev_kind : kind;
  ev_at : float;
  ev_a : int;
  ev_b : int;
  ev_tag : string;
  ev_payload : string;
}

(* Fixed body prefix: kind u8, tag u16, a i32, b i32, at f64, plen u16. *)
let header_bytes = 1 + 2 + 4 + 4 + 8 + 2
let max_payload = 255

type ring = {
  data : Bytes.t;
  mutable head : int;  (** offset of the oldest record's length prefix *)
  mutable used : int;  (** live bytes *)
  mutable r_written : int;
  mutable r_evicted : int;
}

type t = {
  cap : int;
  n_sites : int;
  rings : ring array;  (** index 0 = global ring, index i+1 = site i *)
  intern : (string, int) Hashtbl.t;
  mutable rev : string array;
  mutable n_strings : int;
  scratch : Bytes.t;
}

let create ?(capacity = 32768) ~n_sites () =
  if capacity < 1024 then invalid_arg "Flight.create: capacity < 1024";
  if n_sites < 0 then invalid_arg "Flight.create: n_sites";
  {
    cap = capacity;
    n_sites;
    rings =
      Array.init (n_sites + 1) (fun _ ->
          {
            data = Bytes.create capacity;
            head = 0;
            used = 0;
            r_written = 0;
            r_evicted = 0;
          });
    intern = Hashtbl.create 64;
    rev = Array.make 64 "";
    n_strings = 0;
    scratch = Bytes.create (2 + header_bytes + max_payload);
  }

let capacity t = t.cap
let n_sites t = t.n_sites

let intern t s =
  match Hashtbl.find_opt t.intern s with
  | Some i -> i
  | None ->
      let i = t.n_strings in
      if i > 0xFFFF then 0 (* tag field saturates; id 0 always exists *)
      else begin
        if i = Array.length t.rev then begin
          let grown = Array.make (2 * i) "" in
          Array.blit t.rev 0 grown 0 i;
          t.rev <- grown
        end;
        t.rev.(i) <- s;
        t.n_strings <- i + 1;
        Hashtbl.add t.intern s i;
        i
      end

let ring_of t ~site =
  if site < -1 || site >= t.n_sites then None else Some t.rings.(site + 1)

let ring_u8 t r pos = Bytes.get_uint8 r.data (pos mod t.cap)

let ring_rec_len t r pos = ring_u8 t r pos lor (ring_u8 t r (pos + 1) lsl 8)

let record t ~site ~at ~kind ?(a = -1) ?(b = -1) ?(tag = "") ?(payload = "")
    () =
  match ring_of t ~site with
  | None -> ()
  | Some r ->
      (* Intern the empty string first so tag id 0 is always valid. *)
      if t.n_strings = 0 then ignore (intern t "");
      let tag_id = intern t tag in
      let plen = min max_payload (String.length payload) in
      let blen = header_bytes + plen in
      let sz = 2 + blen in
      let s = t.scratch in
      Bytes.set_uint16_le s 0 blen;
      Bytes.set_uint8 s 2 (kind_code kind);
      (* i32 fields as u16 pairs: no boxed Int32 on the steady path *)
      Bytes.set_uint16_le s 3 tag_id;
      Bytes.set_uint16_le s 5 (a land 0xFFFF);
      Bytes.set_uint16_le s 7 ((a asr 16) land 0xFFFF);
      Bytes.set_uint16_le s 9 (b land 0xFFFF);
      Bytes.set_uint16_le s 11 ((b asr 16) land 0xFFFF);
      Bytes.set_int64_le s 13 (Int64.bits_of_float at);
      Bytes.set_uint16_le s 21 plen;
      Bytes.blit_string payload 0 s 23 plen;
      (* Evict whole oldest records until the new one fits. *)
      while t.cap - r.used < sz do
        let old = 2 + ring_rec_len t r r.head in
        r.head <- (r.head + old) mod t.cap;
        r.used <- r.used - old;
        r.r_evicted <- r.r_evicted + 1
      done;
      (* At most two blits: up to the physical end, then the wrap. *)
      let tail = (r.head + r.used) mod t.cap in
      let first = min sz (t.cap - tail) in
      Bytes.blit s 0 r.data tail first;
      if sz > first then Bytes.blit s first r.data 0 (sz - first);
      r.used <- r.used + sz;
      r.r_written <- r.r_written + 1

let written t ~site =
  match ring_of t ~site with Some r -> r.r_written | None -> 0

let evicted t ~site =
  match ring_of t ~site with Some r -> r.r_evicted | None -> 0

(* --- dump -------------------------------------------------------------- *)

let schema = "dgc.flight/1"

type ring_dump = {
  rd_site : int;
  rd_written : int;
  rd_evicted : int;
  rd_data : string;  (** linearized live region, oldest record first *)
}

type dump = {
  d_reason : string;
  d_at : float;
  d_capacity : int;
  d_strings : string array;
  d_rings : ring_dump list;
}

let reason d = d.d_reason
let dump_at d = d.d_at
let sites d = List.map (fun r -> r.rd_site) d.d_rings

let dump t ~reason ~at =
  let linearize r =
    String.init r.used (fun i -> Char.chr (ring_u8 t r (r.head + i)))
  in
  {
    d_reason = reason;
    d_at = at;
    d_capacity = t.cap;
    d_strings = Array.sub t.rev 0 t.n_strings;
    d_rings =
      List.init (t.n_sites + 1) (fun i ->
          let r = t.rings.(i) in
          {
            rd_site = i - 1;
            rd_written = r.r_written;
            rd_evicted = r.r_evicted;
            rd_data = linearize r;
          });
  }

(* --- decoding ---------------------------------------------------------- *)

let decode_frames ~strings data =
  let len = String.length data in
  let u8 p = Char.code data.[p] in
  let u16 p = u8 p lor (u8 (p + 1) lsl 8) in
  let i32 p =
    let v =
      Int32.logor
        (Int32.of_int (u16 p))
        (Int32.shift_left (Int32.of_int (u16 (p + 2))) 16)
    in
    Int32.to_int v
  in
  let f64 p =
    let v = ref 0L in
    for i = 7 downto 0 do
      v := Int64.logor (Int64.shift_left !v 8) (Int64.of_int (u8 (p + i)))
    done;
    Int64.float_of_bits !v
  in
  let rec go pos acc =
    if pos = len then Ok (List.rev acc)
    else if pos + 2 > len then Error "truncated record length"
    else begin
      let blen = u16 pos in
      let body = pos + 2 in
      if body + blen > len then Error "truncated record body"
      else if blen < header_bytes then Error "record body too short"
      else
        match kind_of_code (u8 body) with
        | None -> Error (Printf.sprintf "unknown record kind %d" (u8 body))
        | Some ev_kind ->
            let tag_id = u16 (body + 1) in
            if tag_id >= Array.length strings then
              Error (Printf.sprintf "dangling string id %d" tag_id)
            else begin
              let plen = u16 (body + 19) in
              if blen <> header_bytes + plen then
                Error "record length disagrees with payload length"
              else
                let ev =
                  {
                    ev_kind;
                    ev_at = f64 (body + 11);
                    ev_a = i32 (body + 3);
                    ev_b = i32 (body + 7);
                    ev_tag = strings.(tag_id);
                    ev_payload = String.sub data (body + 21) plen;
                  }
                in
                go (body + blen) (ev :: acc)
            end
    end
  in
  go 0 []

let events d ~site =
  match List.find_opt (fun r -> r.rd_site = site) d.d_rings with
  | None -> []
  | Some r -> (
      match decode_frames ~strings:d.d_strings r.rd_data with
      | Ok evs -> evs
      | Error _ -> [])

(* --- JSON -------------------------------------------------------------- *)

let hex_of_string s =
  let b = Buffer.create (2 * String.length s) in
  String.iter (fun c -> Buffer.add_string b (Printf.sprintf "%02x" (Char.code c))) s;
  Buffer.contents b

let string_of_hex h =
  let n = String.length h in
  if n mod 2 <> 0 then Error "odd-length hex"
  else
    let nib c =
      match c with
      | '0' .. '9' -> Ok (Char.code c - Char.code '0')
      | 'a' .. 'f' -> Ok (Char.code c - Char.code 'a' + 10)
      | _ -> Error (Printf.sprintf "bad hex character %C" c)
    in
    let buf = Bytes.create (n / 2) in
    let rec go i =
      if i >= n then Ok (Bytes.to_string buf)
      else
        match (nib h.[i], nib h.[i + 1]) with
        | Ok hi, Ok lo ->
            Bytes.set_uint8 buf (i / 2) ((hi lsl 4) lor lo);
            go (i + 2)
        | Error e, _ | _, Error e -> Error e
    in
    go 0

let to_json d =
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("reason", Json.Str d.d_reason);
      ("at", Json.Float d.d_at);
      ("capacity", Json.Int d.d_capacity);
      ( "strings",
        Json.Arr (List.map (fun s -> Json.Str s) (Array.to_list d.d_strings))
      );
      ( "rings",
        Json.Arr
          (List.map
             (fun r ->
               Json.Obj
                 [
                   ("site", Json.Int r.rd_site);
                   ("written", Json.Int r.rd_written);
                   ("evicted", Json.Int r.rd_evicted);
                   ("data", Json.Str (hex_of_string r.rd_data));
                 ])
             d.d_rings) );
    ]

let of_json j =
  let ( let* ) r f = Result.bind r f in
  let str_field obj k =
    match Option.bind (Json.member k obj) Json.to_str_opt with
    | Some s -> Ok s
    | None -> Error (Printf.sprintf "flight: missing string %S" k)
  in
  let int_field obj k =
    match Json.member k obj with
    | Some (Json.Int i) -> Ok i
    | _ -> Error (Printf.sprintf "flight: missing integer %S" k)
  in
  let* s = str_field j "schema" in
  let* () =
    if s = schema then Ok ()
    else Error (Printf.sprintf "flight: schema %S, expected %S" s schema)
  in
  let* d_reason = str_field j "reason" in
  let* d_at =
    match Option.bind (Json.member "at" j) Json.to_float_opt with
    | Some f -> Ok f
    | None -> Error "flight: missing numeric \"at\""
  in
  let* d_capacity = int_field j "capacity" in
  let* strings =
    match Json.member "strings" j with
    | Some (Json.Arr l) ->
        List.fold_left
          (fun acc s ->
            let* acc = acc in
            match Json.to_str_opt s with
            | Some s -> Ok (s :: acc)
            | None -> Error "flight: non-string intern entry")
          (Ok []) l
        |> Result.map (fun l -> Array.of_list (List.rev l))
    | _ -> Error "flight: missing \"strings\" array"
  in
  let* rings =
    match Json.member "rings" j with
    | Some (Json.Arr l) -> Ok l
    | _ -> Error "flight: missing \"rings\" array"
  in
  let* d_rings =
    List.fold_left
      (fun acc rj ->
        let* acc = acc in
        let* rd_site = int_field rj "site" in
        let* rd_written = int_field rj "written" in
        let* rd_evicted = int_field rj "evicted" in
        let* hex = str_field rj "data" in
        let* rd_data = string_of_hex hex in
        (* Canonical hex only: re-serialization must be byte-identical. *)
        let* () =
          if hex_of_string rd_data = hex then Ok ()
          else Error "flight: non-canonical hex"
        in
        let* _ = decode_frames ~strings rd_data in
        Ok ({ rd_site; rd_written; rd_evicted; rd_data } :: acc))
      (Ok []) rings
    |> Result.map List.rev
  in
  Ok { d_reason; d_at; d_capacity; d_strings = strings; d_rings }

let write ~path d =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json d));
  output_char oc '\n';
  close_out oc

let read ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> Result.bind (Json.parse text) of_json
  | exception Sys_error e -> Error e
