(** A minimal JSON tree, printer and parser.

    Enough JSON for the telemetry artifacts (span logs, Chrome trace
    files, run artifacts) without an external dependency: compact
    deterministic printing (object fields in construction order), and
    a strict recursive-descent parser for round-trips and shape
    checks. Non-finite floats print as [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact (no insignificant whitespace). *)

val pp : Format.formatter -> t -> unit
(** Same output as {!to_string}. *)

val parse : string -> (t, string) result
(** Strict: exactly one JSON value plus trailing whitespace. Numbers
    with a fraction or exponent parse as [Float], others as [Int]. *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field of an [Obj]; [None] elsewhere. *)

val to_int_opt : t -> int option
val to_float_opt : t -> float option
(** Accepts [Int] and [Float]. *)

val to_str_opt : t -> string option
val to_list_opt : t -> t list option
