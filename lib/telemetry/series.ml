type kind = Counter | Gauge

let kind_name = function Counter -> "counter" | Gauge -> "gauge"

type series = {
  s_kind : kind;
  buckets : (int, float) Hashtbl.t;
  mutable lo : int;  (** oldest retained bucket index *)
  mutable hi : int;  (** newest bucket index written *)
  mutable any : bool;  (** false until the first write *)
  mutable s_total : float;  (** counter: cumulative sum; gauge: last *)
  mutable s_evicted : int;
}

type t = {
  win : float;
  max_buckets : int;
  tbl : (string, series) Hashtbl.t;
}

let create ?(window = 1.0) ?(max_buckets = 512) () =
  if window <= 0. then invalid_arg "Series.create: window";
  if max_buckets <= 0 then invalid_arg "Series.create: max_buckets";
  { win = window; max_buckets; tbl = Hashtbl.create 16 }

let window t = t.win

let series_ref t name ~kind =
  match Hashtbl.find_opt t.tbl name with
  | Some s ->
      if s.s_kind <> kind then
        invalid_arg
          (Printf.sprintf "Series: %S is a %s, recorded as a %s" name
             (kind_name s.s_kind) (kind_name kind));
      s
  | None ->
      let s =
        {
          s_kind = kind;
          buckets = Hashtbl.create 32;
          lo = 0;
          hi = 0;
          any = false;
          s_total = 0.;
          s_evicted = 0;
        }
      in
      Hashtbl.add t.tbl name s;
      s

let bucket_of t at = int_of_float (floor (Float.max 0. at /. t.win))

let touch t s i =
  if not s.any then begin
    s.any <- true;
    s.lo <- i;
    s.hi <- i
  end
  else begin
    if i < s.lo then s.lo <- i;
    if i > s.hi then s.hi <- i
  end;
  (* Evict oldest buckets past the retention bound. The index range is
     walked rather than the (sparse) table, so eviction stays O(range). *)
  while s.hi - s.lo + 1 > t.max_buckets do
    if Hashtbl.mem s.buckets s.lo then begin
      Hashtbl.remove s.buckets s.lo;
      s.s_evicted <- s.s_evicted + 1
    end;
    s.lo <- s.lo + 1
  done

let add t name ~at n =
  let s = series_ref t name ~kind:Counter in
  let i = bucket_of t at in
  let v = float_of_int n in
  Hashtbl.replace s.buckets i
    (v +. Option.value ~default:0. (Hashtbl.find_opt s.buckets i));
  s.s_total <- s.s_total +. v;
  touch t s i

let incr t name ~at = add t name ~at 1

let set t name ~at v =
  let s = series_ref t name ~kind:Gauge in
  let i = bucket_of t at in
  Hashtbl.replace s.buckets i v;
  s.s_total <- v;
  touch t s i

let names t =
  Hashtbl.fold (fun k s acc -> (k, s.s_kind) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let points t name =
  match Hashtbl.find_opt t.tbl name with
  | None -> []
  | Some s ->
      Hashtbl.fold (fun i v acc -> (i, v) :: acc) s.buckets []
      |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      |> List.map (fun (i, v) -> (float_of_int i *. t.win, v))

let total t name =
  match Hashtbl.find_opt t.tbl name with Some s -> s.s_total | None -> 0.

let evicted t name =
  match Hashtbl.find_opt t.tbl name with Some s -> s.s_evicted | None -> 0

(* --- merging ----------------------------------------------------------- *)

(* Fold one registry into another (sharded engines: per-shard series
   merged into one document). Bucket values add for both kinds: a
   counter's buckets are per-window sums, and each shard's gauges
   sample a disjoint population (its own sites and frames), so the
   whole-engine gauge is the sum of the shard gauges. Names are
   visited in sorted order, so merging deterministic registries is
   deterministic. *)
let merge_into ~into src =
  if into.win <> src.win then invalid_arg "Series.merge_into: window mismatch";
  List.iter
    (fun (name, _) ->
      let s = Hashtbl.find src.tbl name in
      let d = series_ref into name ~kind:s.s_kind in
      if s.any then begin
        Hashtbl.fold (fun i v acc -> (i, v) :: acc) s.buckets []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
        |> List.iter (fun (i, v) ->
               Hashtbl.replace d.buckets i
                 (v +. Option.value ~default:0. (Hashtbl.find_opt d.buckets i));
               touch into d i);
        d.s_total <- d.s_total +. s.s_total;
        d.s_evicted <- d.s_evicted + s.s_evicted
      end)
    (names src)

(* --- labels ------------------------------------------------------------ *)

(* "bytes_resident{site=2}" -> ("bytes_resident", Some ("site", "2")) *)
let split_label name =
  match String.index_opt name '{' with
  | None -> (name, None)
  | Some i when String.length name > i + 1 && name.[String.length name - 1] = '}'
    -> (
      let inner = String.sub name (i + 1) (String.length name - i - 2) in
      match String.index_opt inner '=' with
      | Some j ->
          ( String.sub name 0 i,
            Some
              ( String.sub inner 0 j,
                String.sub inner (j + 1) (String.length inner - j - 1) ) )
      | None -> (name, None))
  | Some _ -> (name, None)

let sanitize base =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    base

(* --- export ------------------------------------------------------------ *)

(* A gauge's running total is its last value, so both kinds expose
   [s_total] as the final sample. *)
let last_value t name =
  match Hashtbl.find_opt t.tbl name with None -> 0. | Some s -> s.s_total

let to_json t =
  let series =
    List.map
      (fun (name, k) ->
        let pts = points t name in
        let mx =
          List.fold_left (fun m (_, v) -> Float.max m v) neg_infinity pts
        in
        let last = match List.rev pts with (_, v) :: _ -> v | [] -> 0. in
        ( name,
          Json.Obj
            [
              ("kind", Json.Str (kind_name k));
              ("n", Json.Int (List.length pts));
              ("max", Json.Float (if pts = [] then 0. else mx));
              ("last", Json.Float last);
              ("total", Json.Float (total t name));
              ( "points",
                Json.Arr
                  (List.map
                     (fun (at, v) ->
                       Json.Arr [ Json.Float at; Json.Float v ])
                     pts) );
            ] ))
      (names t)
  in
  Json.Obj [ ("window", Json.Float t.win); ("series", Json.Obj series) ]

let validate j =
  let ( let* ) r f = Result.bind r f in
  let* () =
    match Option.bind (Json.member "window" j) Json.to_float_opt with
    | Some w when w > 0. -> Ok ()
    | Some _ -> Error "series window must be positive"
    | None -> Error "series missing numeric \"window\""
  in
  let* fields =
    match Json.member "series" j with
    | Some (Json.Obj fields) -> Ok fields
    | _ -> Error "series missing object \"series\""
  in
  List.fold_left
    (fun acc (name, s) ->
      let* () = acc in
      let* () =
        match Option.bind (Json.member "kind" s) Json.to_str_opt with
        | Some ("counter" | "gauge") -> Ok ()
        | _ -> Error (Printf.sprintf "series %S: bad kind" name)
      in
      let* () =
        List.fold_left
          (fun acc f ->
            let* () = acc in
            match Option.bind (Json.member f s) Json.to_float_opt with
            | Some _ -> Ok ()
            | None ->
                Error (Printf.sprintf "series %S: missing numeric %S" name f))
          (Ok ())
          [ "max"; "last"; "total" ]
      in
      let* n =
        match Option.bind (Json.member "n" s) Json.to_int_opt with
        | Some n -> Ok n
        | None -> Error (Printf.sprintf "series %S: missing integer n" name)
      in
      let* pts =
        match Json.member "points" s with
        | Some (Json.Arr pts) -> Ok pts
        | _ -> Error (Printf.sprintf "series %S: missing points array" name)
      in
      let* () =
        if List.length pts = n then Ok ()
        else
          Error
            (Printf.sprintf "series %S: n=%d but %d points" name n
               (List.length pts))
      in
      List.fold_left
        (fun acc p ->
          let* () = acc in
          match p with
          | Json.Arr [ a; b ]
            when Json.to_float_opt a <> None && Json.to_float_opt b <> None ->
              Ok ()
          | _ -> Error (Printf.sprintf "series %S: malformed point" name))
        (Ok ()) pts)
    (Ok ()) fields

(* Strict text-exposition label escaping: exactly backslash, double
   quote, and newline are escaped; everything else passes through
   verbatim (the format is UTF-8). OCaml's [%S] is close but not
   conformant — it escapes tabs and non-printables as [\t]/[\ddd],
   which Prometheus parsers reject. *)
let escape_label_value v =
  let b = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

(* Label names must match [a-zA-Z_][a-zA-Z0-9_]*; anything else is
   sanitized the same way metric names are (':' is NOT legal in label
   names, unlike metric names). *)
let sanitize_label_name n =
  let n = if n = "" then "label" else n in
  let n =
    String.map
      (fun c ->
        match c with 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c | _ -> '_')
      n
  in
  match n.[0] with '0' .. '9' -> "_" ^ n | _ -> n

let to_prom t =
  let b = Buffer.create 1024 in
  let typed = Hashtbl.create 8 in
  List.iter
    (fun (name, k) ->
      let base, label = split_label name in
      let metric = "dgc_" ^ sanitize base in
      if not (Hashtbl.mem typed metric) then begin
        Hashtbl.replace typed metric ();
        Buffer.add_string b
          (Printf.sprintf "# TYPE %s %s\n" metric (kind_name k))
      end;
      let labels =
        match label with
        | Some (lk, lv) ->
            Printf.sprintf "{%s=\"%s\"}" (sanitize_label_name lk)
              (escape_label_value lv)
        | None -> ""
      in
      (* Counters expose the cumulative total, gauges the last value —
         both live in [s_total]. *)
      Buffer.add_string b
        (Printf.sprintf "%s%s %g\n" metric labels (last_value t name)))
    (names t);
  Buffer.contents b

let chrome_counters t =
  List.concat_map
    (fun (name, _) ->
      let base, label = split_label name in
      let pid =
        match label with
        | Some ("site", v) -> ( match int_of_string_opt v with
                                | Some i -> i
                                | None -> 0)
        | _ -> 0
      in
      List.map
        (fun (at, v) ->
          Json.Obj
            [
              ("name", Json.Str base);
              ("ph", Json.Str "C");
              ("ts", Json.Float (at *. 1e6));
              ("pid", Json.Int pid);
              ("tid", Json.Int 0);
              ("args", Json.Obj [ ("value", Json.Float v) ]);
            ])
        (points t name))
    (names t)
