type span_id = int

type span = {
  id : span_id;
  parent : span_id option;
  trace : string;
  name : string;
  site : int;
  start : float;
  mutable finish : float option;
  mutable attrs : (string * Json.t) list;
}

type t = {
  mutable rev_spans : span list;  (** newest first *)
  tbl : (span_id, span) Hashtbl.t;
  mutable next : int;
  mutable opened : int;
  mutable dropped : int;
  mutable aborted : int;
  mutable on_start : (span -> unit) option;
  mutable on_finish : (span -> unit) option;
}

let create () =
  {
    rev_spans = [];
    tbl = Hashtbl.create 64;
    next = 0;
    opened = 0;
    dropped = 0;
    aborted = 0;
    on_start = None;
    on_finish = None;
  }

let set_span_hooks t ~on_start ~on_finish =
  t.on_start <- Some on_start;
  t.on_finish <- Some on_finish

let add t sp =
  t.rev_spans <- sp :: t.rev_spans;
  Hashtbl.replace t.tbl sp.id sp

let start_span t ?parent ~trace ~name ~site ~at attrs =
  let id = t.next in
  t.next <- id + 1;
  let sp = { id; parent; trace; name; site; start = at; finish = None; attrs } in
  add t sp;
  t.opened <- t.opened + 1;
  (match t.on_start with Some f -> f sp | None -> ());
  id

let finish_span t id ~at attrs =
  match Hashtbl.find_opt t.tbl id with
  | Some sp when sp.finish = None ->
      sp.finish <- Some at;
      sp.attrs <- sp.attrs @ attrs;
      t.opened <- t.opened - 1;
      (match t.on_finish with Some f -> f sp | None -> ())
  | Some _ | None -> t.dropped <- t.dropped + 1

(* A flight dump must leave no dangling spans: Perfetto renders an
   unfinished slice as zero-width, so the open ones are closed with a
   synthetic end carrying the [aborted] mark. *)
let abort_open t ~at =
  let n = ref 0 in
  List.iter
    (fun sp ->
      if sp.finish = None then begin
        incr n;
        finish_span t sp.id ~at [ ("aborted", Json.Bool true) ]
      end)
    t.rev_spans;
  t.aborted <- t.aborted + !n;
  !n

let aborted_spans t = t.aborted

let event t ?parent ~trace ~name ~site ~at attrs =
  let id = start_span t ?parent ~trace ~name ~site ~at attrs in
  finish_span t id ~at [];
  id

let find t id = Hashtbl.find_opt t.tbl id
let spans t = List.rev t.rev_spans
let span_count t = List.length t.rev_spans
let open_count t = t.opened
let dropped_finishes t = t.dropped

let open_spans t =
  List.rev (List.filter (fun sp -> sp.finish = None) t.rev_spans)

let pp ppf t =
  Format.fprintf ppf "@[<v>tracer: %d spans, %d open, %d dropped finishes"
    (span_count t) t.opened t.dropped;
  List.iter
    (fun sp ->
      Format.fprintf ppf "@,  open #%d %s %s site=%d since %.3fs" sp.id
        sp.trace sp.name sp.site sp.start)
    (open_spans t);
  Format.fprintf ppf "@]"

(* --- JSONL ------------------------------------------------------------ *)

let span_to_json sp =
  Json.Obj
    [
      ("id", Json.Int sp.id);
      ("parent", match sp.parent with Some p -> Json.Int p | None -> Json.Null);
      ("trace", Json.Str sp.trace);
      ("name", Json.Str sp.name);
      ("site", Json.Int sp.site);
      ("start", Json.Float sp.start);
      ("end", match sp.finish with Some e -> Json.Float e | None -> Json.Null);
      ("attrs", Json.Obj sp.attrs);
    ]

let span_of_json j =
  let req what = function
    | Some v -> Ok v
    | None -> Error (Printf.sprintf "span missing %s" what)
  in
  let ( let* ) r f = Result.bind r f in
  let* id = req "id" (Option.bind (Json.member "id" j) Json.to_int_opt) in
  let parent =
    match Json.member "parent" j with
    | Some (Json.Int p) -> Some p
    | _ -> None
  in
  let* trace =
    req "trace" (Option.bind (Json.member "trace" j) Json.to_str_opt)
  in
  let* name = req "name" (Option.bind (Json.member "name" j) Json.to_str_opt) in
  let* site = req "site" (Option.bind (Json.member "site" j) Json.to_int_opt) in
  let* start =
    req "start" (Option.bind (Json.member "start" j) Json.to_float_opt)
  in
  let finish =
    match Json.member "end" j with
    | Some (Json.Float e) -> Some e
    | Some (Json.Int e) -> Some (float_of_int e)
    | _ -> None
  in
  let attrs =
    match Json.member "attrs" j with Some (Json.Obj a) -> a | _ -> []
  in
  Ok { id; parent; trace; name; site; start; finish; attrs }

let to_jsonl t =
  let b = Buffer.create 4096 in
  List.iter
    (fun sp ->
      Buffer.add_string b (Json.to_string (span_to_json sp));
      Buffer.add_char b '\n')
    (spans t);
  Buffer.contents b

let spans_of_jsonl text =
  let lines =
    String.split_on_char '\n' text
    |> List.filter (fun l -> String.trim l <> "")
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | line :: rest -> (
        match Json.parse line with
        | Error e -> Error e
        | Ok j -> (
            match span_of_json j with
            | Error e -> Error e
            | Ok sp -> go (sp :: acc) rest))
  in
  go [] lines

(* --- Chrome trace-event format ---------------------------------------- *)

let us x = Json.Float (x *. 1e6)

let to_chrome ?(counters = []) t =
  let all = spans t in
  (* One lane (tid) per (site, trace) pair so concurrent traces at a
     site stack instead of overlapping. *)
  let lanes = Hashtbl.create 16 in
  let next_lane = Hashtbl.create 8 in
  let lane_of site trace =
    match Hashtbl.find_opt lanes (site, trace) with
    | Some l -> l
    | None ->
        let l =
          match Hashtbl.find_opt next_lane site with Some n -> n | None -> 0
        in
        Hashtbl.replace next_lane site (l + 1);
        Hashtbl.replace lanes (site, trace) l;
        l
  in
  let sites = Hashtbl.create 8 in
  List.iter (fun sp -> Hashtbl.replace sites sp.site ()) all;
  let meta =
    Hashtbl.fold
      (fun site () acc ->
        Json.Obj
          [
            ("name", Json.Str "process_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int site);
            ("tid", Json.Int 0);
            ("args", Json.Obj [ ("name", Json.Str (Printf.sprintf "site %d" site)) ]);
          ]
        :: acc)
      sites []
    |> List.sort compare
  in
  let lane_meta = ref [] in
  let complete =
    List.map
      (fun sp ->
        let lane = lane_of sp.site sp.trace in
        let dur =
          match sp.finish with Some e -> Float.max 0. (e -. sp.start) | None -> 0.
        in
        let args =
          ("span", Json.Int sp.id)
          :: (match sp.parent with
             | Some p -> [ ("parent", Json.Int p) ]
             | None -> [])
          @ (if sp.finish = None then [ ("open", Json.Bool true) ] else [])
          @ sp.attrs
        in
        Json.Obj
          [
            ("name", Json.Str sp.name);
            ("cat", Json.Str sp.trace);
            ("ph", Json.Str "X");
            ("ts", us sp.start);
            ("dur", us dur);
            ("pid", Json.Int sp.site);
            ("tid", Json.Int lane);
            ("args", Json.Obj args);
          ])
      all
  in
  Hashtbl.iter
    (fun (site, trace) lane ->
      lane_meta :=
        Json.Obj
          [
            ("name", Json.Str "thread_name");
            ("ph", Json.Str "M");
            ("pid", Json.Int site);
            ("tid", Json.Int lane);
            ("args", Json.Obj [ ("name", Json.Str trace) ]);
          ]
        :: !lane_meta)
    lanes;
  (* Cross-site parent links become flow arrows: start on the parent's
     slice, finish on the child's. *)
  let flows =
    List.concat_map
      (fun sp ->
        match sp.parent with
        | None -> []
        | Some pid -> (
            match find t pid with
            | Some parent when parent.site <> sp.site ->
                let common =
                  [
                    ("name", Json.Str "leap");
                    ("cat", Json.Str sp.trace);
                    ("id", Json.Int sp.id);
                  ]
                in
                (* Bind the arrow's tail inside the parent slice. *)
                let tail_ts =
                  match parent.finish with
                  | Some e when e < sp.start -> (parent.start +. e) /. 2.
                  | _ -> Float.max parent.start (sp.start -. 1e-9)
                in
                [
                  Json.Obj
                    (common
                    @ [
                        ("ph", Json.Str "s");
                        ("ts", us tail_ts);
                        ("pid", Json.Int parent.site);
                        ("tid", Json.Int (lane_of parent.site parent.trace));
                      ]);
                  Json.Obj
                    (common
                    @ [
                        ("ph", Json.Str "f");
                        ("bp", Json.Str "e");
                        ("ts", us sp.start);
                        ("pid", Json.Int sp.site);
                        ("tid", Json.Int (lane_of sp.site sp.trace));
                      ]);
                ]
            | _ -> []))
      all
  in
  Json.Obj
    [
      ( "traceEvents",
        Json.Arr
          (meta @ List.sort compare !lane_meta @ complete @ flows @ counters)
      );
      ("displayTimeUnit", Json.Str "ms");
      ( "otherData",
        Json.Obj
          [
            ("spans", Json.Int (span_count t));
            ("open_spans", Json.Int t.opened);
            ("dropped_finishes", Json.Int t.dropped);
            ("aborted_spans", Json.Int t.aborted);
          ] );
    ]

let write_file path text =
  let oc = open_out path in
  output_string oc text;
  close_out oc

let write_jsonl t ~path = write_file path (to_jsonl t)
let write_chrome t ~path = write_file path (Json.to_string (to_chrome t))
