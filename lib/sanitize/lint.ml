open Dgc_rts

type finding = { lf_kind : string; lf_check : string; lf_msg : string }

let finding kind check fmt =
  Format.kasprintf
    (fun msg -> { lf_kind = kind; lf_check = check; lf_msg = msg })
    fmt

(* "ext" is the fallback label for unregistered constructors, not a
   kind of its own; requiring a descriptor for it would be vacuous. *)
let base = List.filter (fun k -> k <> "ext") Protocol.base_kinds

let run ?descriptors ~ext_kinds () =
  let ds =
    match descriptors with Some l -> l | None -> Protocol.descriptors ()
  in
  let known = base @ ext_kinds in
  let declared k = List.exists (fun d -> d.Protocol.d_kind = k) ds in
  let missing =
    List.filter_map
      (fun k ->
        if declared k then None
        else
          Some
            (finding k "missing-descriptor"
               "message kind %S has no descriptor: declare its \
                duplicate-delivery story, crash edge and commutativity class"
               k))
      known
  in
  let per_descriptor =
    List.concat_map
      (fun d ->
        let k = d.Protocol.d_kind in
        let is_base = List.mem k base in
        let unknown =
          if List.mem k known then []
          else
            [
              finding k "unknown-kind"
                "descriptor for %S matches no base constructor and no \
                 registered ext label"
                k;
            ]
        in
        let dup =
          if (not is_base) && d.Protocol.d_dup = Protocol.Dup_exactly_once
          then
            [
              finding k "ext-exactly-once"
                "ext kind %S claims exactly-once delivery, but only the \
                 reliable base channel never duplicates — it needs a memo, \
                 dedup or idempotency story"
                k;
            ]
          else []
        in
        let crash =
          match (is_base, d.Protocol.d_crash) with
          | false, Protocol.Crash_none ->
              [
                finding k "ext-no-crash-story"
                  "ext kind %S has no crash/timeout edge, but collector \
                   messages to a crashed peer are dropped — silence needs a \
                   timeout or TTL"
                  k;
              ]
          | true, c when c <> Protocol.Crash_park_redeliver ->
              [
                finding k "base-crash-story"
                  "base kind %S must declare park+redeliver (what the \
                   engine actually does), not %s"
                  k
                  (Protocol.crash_edge_name c);
              ]
          | _ -> []
        in
        let commutes =
          if String.trim d.Protocol.d_commutes = "" then
            [
              finding k "empty-commutativity"
                "kind %S declares no commutativity class; name the \
                 reorderings it tolerates"
                k;
            ]
          else []
        in
        unknown @ dup @ crash @ commutes)
      ds
  in
  missing @ per_descriptor

let ok = function [] -> true | _ -> false

let pp_finding ppf f =
  Format.fprintf ppf "[%s] %s: %s" f.lf_check f.lf_kind f.lf_msg
