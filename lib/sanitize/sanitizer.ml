open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
module Json = Dgc_telemetry.Json

type race = {
  rc_oid : Oid.t;
  rc_trace : Trace_id.t;
  rc_trace_site : Site_id.t;
  rc_transfer_site : Site_id.t;
  rc_transfer_kind : string;
  rc_harmful : bool;
  rc_at : Sim_time.t;
}

type leak = {
  lk_trace : Trace_id.t;
  lk_residue : (Site_id.t * Back_trace.residue) list;
  lk_evidence : string list;
  lk_at : Sim_time.t;
}

(* One in-flight message: the sender's clock snapshot plus enough
   payload identity for the leak detector's in-flight accounting.
   [c_outstanding] counts undelivered copies (dup channel adds one);
   the capsule dies when it reaches zero. *)
type capsule = {
  c_clock : Vclock.t;
  c_trace : Trace_id.t option;
  mutable c_outstanding : int;
  mutable c_delivered : int;
}

(* A resolved collector-state access for the race detector: the
   receiver's clock right after the delivery join. Transfer-class
   accesses additionally record whether the §6.1 barrier protected the
   ioref, judged after the delivery dispatched. *)
type access = {
  a_site : Site_id.t;
  a_clock : Vclock.t;
  a_kind : string;
  a_trace : Trace_id.t option;  (** the reading trace, for trace-class *)
  a_protected : bool;
}

(* A transfer delivery whose protection verdict is still pending: the
   barrier bits are set by the handler, i.e. during dispatch, which
   runs after [san_deliver] — so the verdict must wait for the
   post-event step watcher. *)
type candidate = {
  pc_oid : Oid.t;
  pc_site : Site_id.t;
  pc_kind : string;
  pc_clock : Vclock.t;
}

type t = {
  eng : Engine.t;
  clocks : Vclock.t array;
  capsules : (int, capsule) Hashtbl.t;
  mutable next_capsule : int;
  (* armed, not-yet-fired timers: id -> trace tag of the key *)
  timers : (int, string) Hashtbl.t;
  mutable next_timer : int;
  (* per-trace-tag counts for O(1) leak queries *)
  inflight : (string, int ref) Hashtbl.t;
  armed : (string, int ref) Hashtbl.t;
  (* (trace tag, caller site, call seq) -> callee, learned at send *)
  callees : (string * int * int, Site_id.t) Hashtbl.t;
  transfers : (Oid.t, access list ref) Hashtbl.t;
  trace_reads : (Oid.t, access list ref) Hashtbl.t;
  settled : (int * string, unit) Hashtbl.t;  (** (site, trace tag) *)
  mutable pending : candidate list;
  mutable races : race list;
  mutable leaks : leak list;
  leak_seen : (string, unit) Hashtbl.t;
  mutable sh : Back_trace.shared option;
  mutable active : bool;
}

let tstr trace = Format.asprintf "%a" Trace_id.pp trace
let sid = Site_id.to_int

let bump tbl tag d =
  match Hashtbl.find_opt tbl tag with
  | Some r ->
      r := !r + d;
      if !r <= 0 then Hashtbl.remove tbl tag
  | None -> if d > 0 then Hashtbl.add tbl tag (ref d)

let count tbl tag =
  match Hashtbl.find_opt tbl tag with Some r -> !r | None -> 0

(* trace tag of a timer key "kind/<trace>/..." (Back_trace.timer_key_call
   and timer_key_ttl both use this shape) *)
let key_tag key =
  match String.split_on_char '/' key with _ :: t :: _ -> Some t | _ -> None

let payload_trace = function
  | Protocol.Ext (Back_trace.Back_call { trace; _ })
  | Protocol.Ext (Back_trace.Back_reply { trace; _ })
  | Protocol.Ext (Back_trace.Back_report { trace; _ }) ->
      Some trace
  | _ -> None

(* Oids whose collector state the delivery writes (transfer class). *)
let transfer_oids = function
  | Protocol.Move { refs; _ } -> refs
  | Protocol.Insert { r; _ } -> [ r ]
  | _ -> []

let metrics t = Engine.metrics t.eng
let jlog t ?level fmt = Engine.jlog t.eng ?level ~cat:"san" fmt

(* --- access history ---------------------------------------------------- *)

let history_cap = 64

let push_access tbl oid a =
  match Hashtbl.find_opt tbl oid with
  | Some l ->
      l := a :: !l;
      (match !l with
      | _ :: _ when List.length !l > history_cap ->
          l := List.filteri (fun i _ -> i < history_cap) !l
      | _ -> ())
  | None -> Hashtbl.add tbl oid (ref [ a ])

let accesses tbl oid =
  match Hashtbl.find_opt tbl oid with Some l -> !l | None -> []

(* Was the transferred ioref protected by the §6.1 machinery at the
   transfer site, as of right after the delivery dispatched? *)
let protection_engaged t ~site ~oid =
  let s = Engine.site t.eng site in
  if Site_id.equal (Oid.site oid) site then
    match Tables.find_inref s.Site.tables oid with
    | Some ir -> ir.Ioref.ir_fresh || ir.Ioref.ir_forced_clean
    | None -> false
  else
    match Tables.find_outref s.Site.tables oid with
    | Some o ->
        o.Ioref.or_fresh || o.Ioref.or_forced_clean || o.Ioref.or_pins > 0
    | None -> false

let record_race t ~oid ~trace ~trace_site ~transfer ~harmful =
  let r =
    {
      rc_oid = oid;
      rc_trace = trace;
      rc_trace_site = trace_site;
      rc_transfer_site = transfer.a_site;
      rc_transfer_kind = transfer.a_kind;
      rc_harmful = harmful;
      rc_at = Engine.now t.eng;
    }
  in
  t.races <- r :: t.races;
  if harmful then begin
    Metrics.incr (metrics t) "san.race_harmful";
    jlog t ~level:Journal.Warn
      "race: transfer of %a (%s at site %d) concurrent with back trace %a \
       reading it at site %d, no barrier protection"
      Oid.pp oid transfer.a_kind (sid transfer.a_site) Trace_id.pp trace
      (sid trace_site)
  end
  else begin
    Metrics.incr (metrics t) "san.race_benign";
    jlog t ~level:Journal.Debug
      "benign race: transfer of %a concurrent with trace %a but barrier \
       protection held"
      Oid.pp oid Trace_id.pp trace
  end

(* --- engine hooks ------------------------------------------------------ *)

let on_send t ~src ~dst payload =
  Vclock.tick t.clocks.(sid src) (sid src);
  let id = t.next_capsule in
  t.next_capsule <- id + 1;
  let trace = payload_trace payload in
  Hashtbl.replace t.capsules id
    {
      c_clock = Vclock.copy t.clocks.(sid src);
      c_trace = trace;
      c_outstanding = 1;
      c_delivered = 0;
    };
  (match trace with Some tr -> bump t.inflight (tstr tr) 1 | None -> ());
  (* learn which site answers each call, for the leak verdicts *)
  (match payload with
  | Protocol.Ext (Back_trace.Back_call { trace; reply_site; call_seq; _ }) ->
      Hashtbl.replace t.callees (tstr trace, sid reply_site, call_seq) dst
  | _ -> ());
  Metrics.incr (metrics t) "san.capsules";
  id

let on_copy t capsule =
  match Hashtbl.find_opt t.capsules capsule with
  | None -> ()
  | Some c ->
      c.c_outstanding <- c.c_outstanding + 1;
      (match c.c_trace with
      | Some tr -> bump t.inflight (tstr tr) 1
      | None -> ());
      Metrics.incr (metrics t) "san.dup_copies"

let consume t capsule =
  match Hashtbl.find_opt t.capsules capsule with
  | None -> None
  | Some c ->
      c.c_outstanding <- c.c_outstanding - 1;
      (match c.c_trace with
      | Some tr -> bump t.inflight (tstr tr) (-1)
      | None -> ());
      if c.c_outstanding <= 0 && c.c_delivered > 0 then
        Hashtbl.remove t.capsules capsule;
      Some c

let on_dropped t capsule ~reason =
  match consume t capsule with
  | None -> ()
  | Some c ->
      if c.c_outstanding <= 0 then Hashtbl.remove t.capsules capsule;
      Metrics.incr (metrics t) "san.dropped";
      ignore reason

let on_deliver t ~src:_ ~dst ~capsule payload =
  let c = consume t capsule in
  (match c with
  | Some c ->
      c.c_delivered <- c.c_delivered + 1;
      if c.c_delivered > 1 then Metrics.incr (metrics t) "san.dup_delivered";
      (* all copies accounted for: the capsule can leave the table *)
      if c.c_outstanding <= 0 then Hashtbl.remove t.capsules capsule;
      Vclock.join t.clocks.(sid dst) c.c_clock
  | None -> ());
  Vclock.tick t.clocks.(sid dst) (sid dst);
  Metrics.incr (metrics t) "san.delivered";
  let here = Vclock.copy t.clocks.(sid dst) in
  (* transfer-class writes: protection is judged post-dispatch *)
  List.iter
    (fun oid ->
      t.pending <-
        {
          pc_oid = oid;
          pc_site = dst;
          pc_kind = Protocol.kind payload;
          pc_clock = here;
        }
        :: t.pending)
    (transfer_oids payload);
  (* trace-class reads, replay and reorder accounting *)
  match payload with
  | Protocol.Ext (Back_trace.Back_call { trace; r; _ }) ->
      if Hashtbl.mem t.settled (sid dst, tstr trace) then begin
        (* duplicate or straggler call into a trace already settled
           here: the memo / table re-answer makes it harmless *)
        Metrics.incr (metrics t) "san.stale_replay";
        jlog t ~level:Journal.Debug
          "stale replay: call of settled trace %a at site %d" Trace_id.pp
          trace (sid dst)
      end;
      let a =
        {
          a_site = dst;
          a_clock = here;
          a_kind = "back_call";
          a_trace = Some trace;
          a_protected = false;
        }
      in
      push_access t.trace_reads r a;
      List.iter
        (fun (tr : access) ->
          if Vclock.concurrent tr.a_clock here then
            record_race t ~oid:r ~trace ~trace_site:dst ~transfer:tr
              ~harmful:(not tr.a_protected))
        (accesses t.transfers r)
  | Protocol.Ext (Back_trace.Back_report { trace; _ }) -> (
      Hashtbl.replace t.settled (sid dst, tstr trace) ();
      match t.sh with
      | Some sh
        when List.exists
               (fun fi -> Trace_id.equal fi.Back_trace.fi_trace trace)
               (Back_trace.open_frames sh dst) ->
          (* the outcome overtook replies this site still waits for:
             a legal reordering (reports dominate, frames abort) *)
          Metrics.incr (metrics t) "san.report_reorder";
          jlog t ~level:Journal.Debug
            "report of %a reached site %d before its frames settled"
            Trace_id.pp trace (sid dst)
      | _ -> ())
  | _ -> ()

let on_timer_armed t ~site:_ ~key ~at:_ =
  let id = t.next_timer in
  t.next_timer <- id + 1;
  let tag = match key_tag key with Some tag -> tag | None -> key in
  Hashtbl.replace t.timers id tag;
  bump t.armed tag 1;
  Metrics.incr (metrics t) "san.timers_armed";
  id

let on_timer_fired t id =
  match Hashtbl.find_opt t.timers id with
  | None -> ()
  | Some tag ->
      Hashtbl.remove t.timers id;
      bump t.armed tag (-1);
      Metrics.incr (metrics t) "san.timers_fired"

(* Resolve pending transfer candidates now that the handler (and so the
   §6.1 barrier) has run, then compare against recorded trace reads. *)
let resolve_pending t =
  match t.pending with
  | [] -> ()
  | pending ->
      t.pending <- [];
      List.iter
        (fun pc ->
          let protected_ = protection_engaged t ~site:pc.pc_site ~oid:pc.pc_oid in
          let a =
            {
              a_site = pc.pc_site;
              a_clock = pc.pc_clock;
              a_kind = pc.pc_kind;
              a_trace = None;
              a_protected = protected_;
            }
          in
          push_access t.transfers pc.pc_oid a;
          List.iter
            (fun (rd : access) ->
              if Vclock.concurrent rd.a_clock pc.pc_clock then
                match rd.a_trace with
                | Some trace ->
                    record_race t ~oid:pc.pc_oid ~trace ~trace_site:rd.a_site
                      ~transfer:a ~harmful:(not protected_)
                | None -> ())
            (accesses t.trace_reads pc.pc_oid))
        (List.rev pending)

(* --- lost-trace leak detector ------------------------------------------ *)

let check_leaks t =
  match t.sh with
  | None -> []
  | Some sh ->
      let fresh = ref [] in
      let concluded trace =
        match List.assoc_opt trace (Back_trace.stats sh) with
        | Some st -> st.Back_trace.ts_outcome <> None
        | None -> false
      in
      List.iter
        (fun (trace, residue) ->
          let tag = tstr trace in
          if
            (not (Hashtbl.mem t.leak_seen tag))
            && count t.inflight tag = 0
            && count t.armed tag = 0
          then
            if concluded trace then begin
              (* The trace already reached its outcome at the initiator;
                 what lingers is residue at a participant whose reply was
                 reordered past the conclusion, so it never saw the
                 report that purges frames/memo. Storage is bounded by
                 the memo cap — a benign reordering, not a lost trace. *)
              Hashtbl.replace t.leak_seen tag ();
              Metrics.incr (metrics t) "san.residue_stranded";
              jlog t "trace %a concluded but %d site(s) keep stranded \
                      residue (reply reordered past the report)"
                Trace_id.pp trace (List.length residue)
            end
            else begin
            (* Nothing can ever advance this trace again: the protocol
               moves only on message deliveries and §4.6 timers, and it
               has neither. Prove it with the causal facts. *)
            let ev =
              ref
                [
                  "no message of this trace is in flight (sent - delivered \
                   - dropped = 0)";
                  "no \xc2\xa74.6 timer (call timeout or visited TTL) is \
                   armed for it";
                ]
            in
            List.iter
              (fun (site, r) ->
                if r.Back_trace.rs_frames > 0 then
                  List.iter
                    (fun fi ->
                      if Trace_id.equal fi.Back_trace.fi_trace trace then
                        List.iter
                          (fun seq ->
                            match
                              Hashtbl.find_opt t.callees (tag, sid site, seq)
                            with
                            | Some callee ->
                                let crashed =
                                  (Engine.site t.eng callee).Site.crashed
                                in
                                ev :=
                                  Printf.sprintf
                                    "call #%d from site %d to site %d is \
                                     unanswered%s"
                                    seq (sid site) (sid callee)
                                    (if crashed then
                                       " and the callee is crashed"
                                     else "")
                                  :: !ev
                            | None -> ())
                          fi.Back_trace.fi_calls)
                    (Back_trace.open_frames sh site))
              residue;
            let lk =
              {
                lk_trace = trace;
                lk_residue = residue;
                lk_evidence = List.rev !ev;
                lk_at = Engine.now t.eng;
              }
            in
            Hashtbl.replace t.leak_seen tag ();
            t.leaks <- lk :: t.leaks;
            fresh := lk :: !fresh;
            Metrics.incr (metrics t) "san.leak_proof";
            jlog t ~level:Journal.Warn
              "lost trace %a: %d site(s) still hold frames/memo/visited \
               state but no message or timer can ever advance it"
              Trace_id.pp trace (List.length residue)
          end)
        (Back_trace.residue sh);
      List.rev !fresh

(* --- public surface ----------------------------------------------------- *)

let install eng =
  let n = Array.length (Engine.sites eng) in
  let t =
    {
      eng;
      clocks = Array.init n (fun _ -> Vclock.create n);
      capsules = Hashtbl.create 256;
      next_capsule = 0;
      timers = Hashtbl.create 64;
      next_timer = 0;
      inflight = Hashtbl.create 32;
      armed = Hashtbl.create 32;
      callees = Hashtbl.create 64;
      transfers = Hashtbl.create 64;
      trace_reads = Hashtbl.create 64;
      settled = Hashtbl.create 32;
      pending = [];
      races = [];
      leaks = [];
      leak_seen = Hashtbl.create 8;
      sh = None;
      active = true;
    }
  in
  Engine.set_sanitizer eng
    {
      Engine.san_send = (fun ~src ~dst p -> on_send t ~src ~dst p);
      san_copy = (fun c -> on_copy t c);
      san_dropped = (fun c ~reason -> on_dropped t c ~reason);
      san_deliver =
        (fun ~src ~dst ~capsule p -> on_deliver t ~src ~dst ~capsule p);
      san_timer_armed =
        (fun ~site ~key ~at -> on_timer_armed t ~site ~key ~at);
      san_timer_fired = (fun id -> on_timer_fired t id);
    };
  Engine.add_step_watcher eng (fun () -> if t.active then resolve_pending t);
  t

let set_shared t sh = t.sh <- Some sh

let uninstall t =
  t.active <- false;
  Engine.clear_sanitizer t.eng

let races t = List.rev t.races
let harmful_races t = List.filter (fun r -> r.rc_harmful) (races t)
let leaks t = List.rev t.leaks

let race_message r =
  Format.asprintf
    "san: harmful race on %a (%s at site %d vs trace %a at site %d)" Oid.pp
    r.rc_oid r.rc_transfer_kind (sid r.rc_transfer_site) Trace_id.pp
    r.rc_trace (sid r.rc_trace_site)

let leak_message l =
  Format.asprintf "san: lost trace %a (%s)" Trace_id.pp l.lk_trace
    (String.concat "; " l.lk_evidence)

let check t =
  resolve_pending t;
  ignore (check_leaks t);
  List.map race_message (harmful_races t) @ List.map leak_message (leaks t)

let leak_verdict t trace =
  ignore (check_leaks t);
  List.find_opt (fun l -> Trace_id.equal l.lk_trace trace) (leaks t)
  |> Option.map (fun l -> String.concat "; " l.lk_evidence)

let residue_json (site, r) =
  Json.Obj
    [
      ("site", Json.Int (sid site));
      ("frames", Json.Int r.Back_trace.rs_frames);
      ("memo", Json.Int r.Back_trace.rs_memo);
      ("visited", Json.Int r.Back_trace.rs_visited);
    ]

let race_json r =
  Json.Obj
    [
      ("oid", Json.Str (Oid.to_string r.rc_oid));
      ("trace", Json.Str (tstr r.rc_trace));
      ("trace_site", Json.Int (sid r.rc_trace_site));
      ("transfer_site", Json.Int (sid r.rc_transfer_site));
      ("transfer_kind", Json.Str r.rc_transfer_kind);
      ("harmful", Json.Bool r.rc_harmful);
      ("at", Json.Float (Sim_time.to_seconds r.rc_at));
    ]

let leak_json l =
  Json.Obj
    [
      ("trace", Json.Str (tstr l.lk_trace));
      ("residue", Json.Arr (List.map residue_json l.lk_residue));
      ("evidence", Json.Arr (List.map (fun e -> Json.Str e) l.lk_evidence));
      ("at", Json.Float (Sim_time.to_seconds l.lk_at));
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.Str "dgc.san/1");
      ("races", Json.Arr (List.map race_json (races t)));
      ("leaks", Json.Arr (List.map leak_json (leaks t)));
      ("live_capsules", Json.Int (Hashtbl.length t.capsules));
      ("armed_timers", Json.Int (Hashtbl.length t.timers));
    ]
