(** dgc-san: the dynamic happens-before sanitizer.

    Installed on an engine it threads a {!Vclock} per site through
    every message (via the engine's capsule hooks) and every labelled
    §4.6 timer, and runs two detectors over the causal order:

    - a {b message-race detector}: a reference transfer (a [Move] or
      [Insert] carrying an oid) and a back-trace read of the same oid
      (a [Back_call]) that are causally {e concurrent} conflict; the
      pair is benign when the §6.1 transfer barrier protected the
      transferred ioref (fresh / forced-clean / pinned, judged right
      after the transfer dispatched), harmful otherwise — the §6.4
      race. Duplicate deliveries replaying calls into settled traces
      and reports overtaking still-open frames are counted as benign
      reorderings.
    - a {b lost-trace leak detector}: a trace still occupying frames,
      call-memo entries or visited marks somewhere, with {e no}
      message of its own in flight and {e no} armed §4.6 timer, can
      never finish — nothing is left that could ever advance it. The
      verdict cites the causal evidence (unanswered calls, crashed
      callees).

    Everything lands in [san.*] counters, Warn journal entries
    (cat ["san"]) and the ["dgc.san/1"] report ({!to_json}). With no
    sanitizer installed the engine makes no hook calls at all; runs
    are event-identical to builds without it. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core

type race = {
  rc_oid : Oid.t;  (** the ioref raced on *)
  rc_trace : Trace_id.t;  (** the back trace reading it *)
  rc_trace_site : Site_id.t;  (** where the [Back_call] landed *)
  rc_transfer_site : Site_id.t;  (** where the transfer landed *)
  rc_transfer_kind : string;  (** ["move"] or ["insert"] *)
  rc_harmful : bool;  (** barrier protection was {e not} engaged *)
  rc_at : Sim_time.t;
}

type leak = {
  lk_trace : Trace_id.t;
  lk_residue : (Site_id.t * Back_trace.residue) list;
  lk_evidence : string list;  (** the causal facts proving stuckness *)
  lk_at : Sim_time.t;
}

type t

val install : Engine.t -> t
(** Arm the sanitizer: sets the engine's capsule hooks and registers a
    step watcher that resolves transfer-barrier protection after each
    dispatch. One sanitizer per engine. *)

val set_shared : t -> Back_trace.shared -> unit
(** Give the detectors the collector's frame tables; without it the
    leak detector and the report-reorder counter stay silent. *)

val uninstall : t -> unit
(** Clear the engine hooks; the step watcher becomes a no-op. *)

val races : t -> race list
(** Every race found so far, oldest first (benign and harmful). *)

val harmful_races : t -> race list

val leaks : t -> leak list
(** Leaks proved so far (each trace reported once), oldest first. *)

val check_leaks : t -> leak list
(** Run the lost-trace proof now; returns (and records) only newly
    proved leaks. *)

val race_message : race -> string
val leak_message : leak -> string

val leak_verdict : t -> Trace_id.t -> string option
(** [Some evidence] iff the trace is a proved lost trace (runs
    {!check_leaks} first). Shaped for [Watchdog.set_leak_probe]. *)

val check : t -> string list
(** The explorer/campaign hook: run {!check_leaks}, then report one
    message per harmful race and per proved leak ([] = clean). *)

val to_json : t -> Dgc_telemetry.Json.t
(** The ["dgc.san/1"] report: races, leaks, live capsule and armed
    timer counts. *)
