(** Vector clocks over a fixed site universe.

    The happens-before core of dgc-san: one integer component per
    site, ticked on local events (sends, deliveries, timer arms) and
    joined when a message's send-time snapshot reaches its receiver.
    Two snapshots are causally ordered iff one dominates the other
    componentwise; otherwise the events they stamp are concurrent and
    only a barrier can make their conflict benign.

    Clocks are mutable arrays on the hot path ({!tick}, {!join}); the
    sanitizer snapshots with {!copy} where it must retain a value. *)

type t

val create : int -> t
(** All-zero clock over [n] sites. *)

val size : t -> int
val copy : t -> t
val get : t -> int -> int

val tick : t -> int -> unit
(** Advance the site's own component: a new local event. *)

val join : t -> t -> unit
(** [join dst src] sets [dst] to the componentwise maximum — the
    receiver learns everything the sender knew. *)

val merge : t -> t -> t
(** Functional {!join}: a fresh clock, neither argument mutated. *)

val leq : t -> t -> bool
(** Componentwise [<=]: [leq a b] means every event in [a] is known to
    [b] — [a] happened before or equals [b]. *)

val equal : t -> t -> bool

val before : t -> t -> bool
(** Strict happens-before: [leq a b] and not [equal a b]. *)

val concurrent : t -> t -> bool
(** Neither [leq a b] nor [leq b a]: causally unordered. *)

val pp : Format.formatter -> t -> unit
(** [[0,3,1,0]]. *)

val to_list : t -> int list
val of_list : int list -> t
