(** The dgc-san static protocol lint.

    Audits the {!Dgc_rts.Protocol} message descriptors against the set
    of message kinds actually linked into the binary. Handler coverage
    for the base constructors is already compiler-checked (the one
    exhaustive match lives in [Protocol.dispatch]); what the compiler
    cannot check is the {e protocol} story each kind claims — how it
    survives duplicate delivery, what covers a crashed peer, which
    reorderings it tolerates. Those are declared as descriptors, and
    this lint fails closed when one is missing or inconsistent:

    - every kind (base constructor label or registered [ext] label)
      must declare a descriptor;
    - an [ext] kind must not claim [Dup_exactly_once] — only the
      reliable base channel never duplicates — so every collector
      message needs a real memo / dedup / idempotency story;
    - an [ext] kind must not claim [Crash_none]: collector messages to
      a crashed peer are dropped, so silence needs a timeout or TTL;
    - base kinds must claim [Crash_park_redeliver] (that is what the
      engine actually does for them);
    - the commutativity class must be non-empty;
    - a descriptor for an unknown kind is flagged (typo guard).

    [dgc-check san] runs this and exits non-zero on findings. *)

open Dgc_rts

type finding = {
  lf_kind : string;  (** the message kind at fault *)
  lf_check : string;  (** short check id, e.g. ["missing-descriptor"] *)
  lf_msg : string;
}

val run :
  ?descriptors:Protocol.descriptor list -> ext_kinds:string list -> unit ->
  finding list
(** Audit [descriptors] (default: the live {!Protocol.descriptors}
    table) against the base kinds plus [ext_kinds], the [ext] labels
    registered in this binary. [] = clean. The [?descriptors] override
    exists for negative tests: pass a mutated table and watch the lint
    reject it. *)

val ok : finding list -> bool
val pp_finding : Format.formatter -> finding -> unit
