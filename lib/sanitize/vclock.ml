type t = int array

let create n = Array.make n 0
let size = Array.length
let copy = Array.copy
let get c i = c.(i)
let tick c i = c.(i) <- c.(i) + 1

let join dst src =
  for i = 0 to Array.length dst - 1 do
    if src.(i) > dst.(i) then dst.(i) <- src.(i)
  done

let merge a b =
  let c = copy a in
  join c b;
  c

let leq a b =
  let n = Array.length a in
  let rec go i = i >= n || (a.(i) <= b.(i) && go (i + 1)) in
  go 0

let equal a b = a = b
let before a b = leq a b && not (equal a b)
let concurrent a b = (not (leq a b)) && not (leq b a)

let pp ppf c =
  Format.fprintf ppf "[%s]"
    (String.concat "," (Array.to_list (Array.map string_of_int c)))

let to_list = Array.to_list
let of_list = Array.of_list
