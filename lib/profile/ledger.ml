module Json = Dgc_telemetry.Json

type entry = {
  e_trace : string;
  mutable e_root : string;
  mutable e_started : float;  (** sim seconds; negative = unknown *)
  mutable e_concluded : float option;
  mutable e_outcome : string option;  (** ["garbage"] or ["live"] *)
  mutable e_frames : int;
  mutable e_calls : int;
  mutable e_retries : int;
  mutable e_memo_hits : int;
  mutable e_timeouts : int;
  mutable e_reports : int;
  e_msgs : (string, int ref) Hashtbl.t;
  e_bytes : (string, int ref) Hashtbl.t;
}

type t = { entries : (string, entry) Hashtbl.t }

let create () = { entries = Hashtbl.create 64 }

let entry t trace =
  match Hashtbl.find_opt t.entries trace with
  | Some e -> e
  | None ->
      let e =
        {
          e_trace = trace;
          e_root = "";
          e_started = -1.;
          e_concluded = None;
          e_outcome = None;
          e_frames = 0;
          e_calls = 0;
          e_retries = 0;
          e_memo_hits = 0;
          e_timeouts = 0;
          e_reports = 0;
          e_msgs = Hashtbl.create 8;
          e_bytes = Hashtbl.create 8;
        }
      in
      Hashtbl.add t.entries trace e;
      e

let bump tbl k n =
  match Hashtbl.find_opt tbl k with
  | Some r -> r := !r + n
  | None -> Hashtbl.add tbl k (ref n)

let on_start t ~trace ~root ~at =
  let e = entry t trace in
  if e.e_root = "" then e.e_root <- root;
  if e.e_started < 0. then e.e_started <- at

let on_msg t ~trace ~kind ~bytes =
  let e = entry t trace in
  bump e.e_msgs kind 1;
  bump e.e_bytes kind bytes

let on_frame t ~trace =
  let e = entry t trace in
  e.e_frames <- e.e_frames + 1

let on_call t ~trace =
  let e = entry t trace in
  e.e_calls <- e.e_calls + 1

let on_retry t ~trace =
  let e = entry t trace in
  e.e_retries <- e.e_retries + 1

let on_memo_hit t ~trace =
  let e = entry t trace in
  e.e_memo_hits <- e.e_memo_hits + 1

let on_timeout t ~trace =
  let e = entry t trace in
  e.e_timeouts <- e.e_timeouts + 1

let on_report t ~trace =
  let e = entry t trace in
  e.e_reports <- e.e_reports + 1

(* First conclusion wins: a blind §4.5 report re-send may conclude the
   same trace twice at the initiator; the ledger keeps the original
   verdict and critical path. *)
let on_conclude t ~trace ~outcome ~at =
  let e = entry t trace in
  if e.e_outcome = None then begin
    e.e_outcome <- Some outcome;
    e.e_concluded <- Some at
  end

let find t trace = Hashtbl.find_opt t.entries trace

let entries t =
  Hashtbl.fold (fun _ e acc -> e :: acc) t.entries []
  |> List.sort (fun a b -> String.compare a.e_trace b.e_trace)

let tbl_total tbl = Hashtbl.fold (fun _ r acc -> acc + !r) tbl 0
let msg_total e = tbl_total e.e_msgs
let byte_total e = tbl_total e.e_bytes

type rollup = {
  r_traces : int;
  r_collected : int;  (** traces concluded Garbage *)
  r_live : int;
  r_msgs : int;
  r_bytes : int;
  r_frames : int;
  r_retries : int;
  r_memo_hits : int;
  r_msgs_per_cycle_milli : int;
  r_bytes_per_cycle_milli : int;
}

(* Cost per *successfully collected* cycle amortises the traces that
   concluded Live or never concluded: that protocol budget was spent
   either way. Ratios are integer milli-units so exact-counter bench
   gates can pin them. *)
let rollup t =
  let es = entries t in
  let collected =
    List.length (List.filter (fun e -> e.e_outcome = Some "garbage") es)
  in
  let live =
    List.length (List.filter (fun e -> e.e_outcome = Some "live") es)
  in
  let msgs = List.fold_left (fun a e -> a + msg_total e) 0 es in
  let bytes = List.fold_left (fun a e -> a + byte_total e) 0 es in
  let per_cycle total = if collected = 0 then 0 else 1000 * total / collected in
  {
    r_traces = List.length es;
    r_collected = collected;
    r_live = live;
    r_msgs = msgs;
    r_bytes = bytes;
    r_frames = List.fold_left (fun a e -> a + e.e_frames) 0 es;
    r_retries = List.fold_left (fun a e -> a + e.e_retries) 0 es;
    r_memo_hits = List.fold_left (fun a e -> a + e.e_memo_hits) 0 es;
    r_msgs_per_cycle_milli = per_cycle msgs;
    r_bytes_per_cycle_milli = per_cycle bytes;
  }

let critical_path_ms e =
  match e.e_concluded with
  | Some c when e.e_started >= 0. -> Some ((c -. e.e_started) *. 1000.)
  | _ -> None

let describe e =
  Printf.sprintf
    "ledger %s: msgs=%d bytes=%d frames=%d calls=%d retries=%d memo_hits=%d \
     timeouts=%d reports=%d%s"
    e.e_trace (msg_total e) (byte_total e) e.e_frames e.e_calls e.e_retries
    e.e_memo_hits e.e_timeouts e.e_reports
    (match critical_path_ms e with
    | Some ms -> Printf.sprintf " critical_path=%.1fms" ms
    | None -> " (no conclusion)")

let sorted_obj tbl =
  Hashtbl.fold (fun k r acc -> (k, Json.Int !r) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let json_of_entry e =
  Json.Obj
    [
      ("trace", Json.Str e.e_trace);
      ("root", Json.Str e.e_root);
      ("started", if e.e_started < 0. then Json.Null else Json.Float e.e_started);
      ( "concluded",
        match e.e_concluded with Some c -> Json.Float c | None -> Json.Null );
      ( "outcome",
        match e.e_outcome with Some o -> Json.Str o | None -> Json.Null );
      ("frames", Json.Int e.e_frames);
      ("calls", Json.Int e.e_calls);
      ("retries", Json.Int e.e_retries);
      ("memo_hits", Json.Int e.e_memo_hits);
      ("timeouts", Json.Int e.e_timeouts);
      ("reports", Json.Int e.e_reports);
      ("msgs", Json.Obj (sorted_obj e.e_msgs));
      ("bytes", Json.Obj (sorted_obj e.e_bytes));
      ( "critical_path_ms",
        match critical_path_ms e with
        | Some ms -> Json.Float ms
        | None -> Json.Null );
    ]

let json_of_rollup r =
  Json.Obj
    [
      ("traces", Json.Int r.r_traces);
      ("collected", Json.Int r.r_collected);
      ("live", Json.Int r.r_live);
      ("msgs", Json.Int r.r_msgs);
      ("bytes", Json.Int r.r_bytes);
      ("frames", Json.Int r.r_frames);
      ("retries", Json.Int r.r_retries);
      ("memo_hits", Json.Int r.r_memo_hits);
      ("msgs_per_cycle_milli", Json.Int r.r_msgs_per_cycle_milli);
      ("bytes_per_cycle_milli", Json.Int r.r_bytes_per_cycle_milli);
    ]

let to_json t =
  Json.Obj
    [
      ("traces", Json.Arr (List.map json_of_entry (entries t)));
      ("rollup", json_of_rollup (rollup t));
    ]

(* ---- validation ------------------------------------------------------- *)

let ( let* ) = Result.bind

let need_int name = function
  | Some j -> (
      match Json.to_int_opt j with
      | Some n when n >= 0 -> Ok n
      | Some _ -> Error (name ^ " is negative")
      | None -> Error (name ^ " is not an int"))
  | None -> Error (name ^ " missing")

let int_obj name = function
  | Some (Json.Obj fields) ->
      let rec go = function
        | [] -> Ok ()
        | (_, Json.Int n) :: tl when n >= 0 -> go tl
        | (k, _) :: _ -> Error (name ^ "." ^ k ^ " is not a non-negative int")
      in
      go fields
  | _ -> Error (name ^ " is not an object")

let validate_entry j =
  match j with
  | Json.Obj _ ->
      let* _ =
        match Json.member "trace" j with
        | Some (Json.Str s) when s <> "" -> Ok s
        | _ -> Error "ledger trace id missing"
      in
      let* _ = need_int "frames" (Json.member "frames" j) in
      let* _ = need_int "retries" (Json.member "retries" j) in
      let* () = int_obj "msgs" (Json.member "msgs" j) in
      let* () = int_obj "bytes" (Json.member "bytes" j) in
      Ok ()
  | _ -> Error "ledger entry is not an object"

let validate j =
  match Json.member "traces" j with
  | Some (Json.Arr es) ->
      let* () =
        List.fold_left
          (fun acc e ->
            let* () = acc in
            validate_entry e)
          (Ok ()) es
      in
      let* r =
        match Json.member "rollup" j with
        | Some (Json.Obj _ as r) -> Ok r
        | _ -> Error "ledger rollup missing"
      in
      let* _ = need_int "rollup.msgs" (Json.member "msgs" r) in
      let* _ = need_int "rollup.collected" (Json.member "collected" r) in
      let* _ =
        need_int "rollup.msgs_per_cycle_milli"
          (Json.member "msgs_per_cycle_milli" r)
      in
      let* _ =
        need_int "rollup.bytes_per_cycle_milli"
          (Json.member "bytes_per_cycle_milli" r)
      in
      Ok ()
  | _ -> Error "ledger traces missing"
