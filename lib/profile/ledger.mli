(** Per-back-trace cost ledger.

    End-to-end attribution of protocol budget per trace id: messages
    and bytes by payload kind, frames, calls, retries, memo hits,
    timeouts, reports, and the sim-time critical path from the first
    §4.3 trigger to the §4.5 conclusion. Rolled up into
    messages-per-collected-cycle and bytes-per-collected-cycle — the
    Allen & Terriberry-style overhead figure a distributed cycle
    collector pays for each cycle it actually reclaims.

    Every quantity is derived from the deterministic simulation
    (counts and sim timestamps), so two same-seed runs produce
    byte-identical ledger JSON. *)

module Json = Dgc_telemetry.Json

type entry = {
  e_trace : string;
  mutable e_root : string;
  mutable e_started : float;  (** sim seconds; negative = unknown *)
  mutable e_concluded : float option;
  mutable e_outcome : string option;  (** ["garbage"] or ["live"] *)
  mutable e_frames : int;
  mutable e_calls : int;
  mutable e_retries : int;
  mutable e_memo_hits : int;
  mutable e_timeouts : int;
  mutable e_reports : int;
  e_msgs : (string, int ref) Hashtbl.t;  (** by payload kind *)
  e_bytes : (string, int ref) Hashtbl.t;  (** by payload kind *)
}

type t

val create : unit -> t

(** {1 Attribution feeds} *)

val on_start : t -> trace:string -> root:string -> at:float -> unit
(** First call wins; [at] is sim seconds. *)

val on_msg : t -> trace:string -> kind:string -> bytes:int -> unit
val on_frame : t -> trace:string -> unit
val on_call : t -> trace:string -> unit
val on_retry : t -> trace:string -> unit
val on_memo_hit : t -> trace:string -> unit
val on_timeout : t -> trace:string -> unit
val on_report : t -> trace:string -> unit

val on_conclude : t -> trace:string -> outcome:string -> at:float -> unit
(** First conclusion wins (duplicate reports re-conclude). *)

(** {1 Reading} *)

val find : t -> string -> entry option
val entries : t -> entry list
(** Sorted by trace id — deterministic. *)

val msg_total : entry -> int
val byte_total : entry -> int
val critical_path_ms : entry -> float option

val describe : entry -> string
(** One audit-quality evidence line naming every cost field. *)

type rollup = {
  r_traces : int;
  r_collected : int;  (** traces concluded Garbage *)
  r_live : int;
  r_msgs : int;
  r_bytes : int;
  r_frames : int;
  r_retries : int;
  r_memo_hits : int;
  r_msgs_per_cycle_milli : int;
      (** 1000 × total msgs / collected (integer; 0 when none collected) *)
  r_bytes_per_cycle_milli : int;
}

val rollup : t -> rollup

val to_json : t -> Json.t
(** Deterministic: entries sorted by trace id, kind maps sorted by key. *)

val validate : Json.t -> (unit, string) result
(** Shape-check a ledger section produced by {!to_json}. *)
