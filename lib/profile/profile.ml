module Json = Dgc_telemetry.Json

let schema = "dgc.profile/1"

type node = {
  n_name : string;
  mutable n_wall : float;  (** inclusive host seconds across enter/leave *)
  n_work : (string, int ref) Hashtbl.t;
  n_children : (string, node) Hashtbl.t;
}

let new_node name =
  {
    n_name = name;
    n_wall = 0.;
    n_work = Hashtbl.create 8;
    n_children = Hashtbl.create 8;
  }

type t = {
  p_root : node;
  mutable p_stack : (node * float) list;
  p_clock : unit -> float;
  p_ledger : Ledger.t;
}

(* The clock runs twice per scope on hot paths, so it must be the
   cheapest real-time source available: [Unix.gettimeofday] is
   vDSO-backed (~tens of ns) where [Sys.time] is a genuine syscall —
   four orders of magnitude apart on syscall-intercepting hosts. It
   also actually measures wall time, which is what the [wall_ns]
   field advertises. *)
let create ?(clock = Unix.gettimeofday) () =
  {
    p_root = new_node "all";
    p_stack = [];
    p_clock = clock;
    p_ledger = Ledger.create ();
  }

let ledger t = t.p_ledger
let current t = match t.p_stack with (n, _) :: _ -> n | [] -> t.p_root
let depth t = List.length t.p_stack

let enter t name =
  let cur = current t in
  let child =
    match Hashtbl.find_opt cur.n_children name with
    | Some c -> c
    | None ->
        let c = new_node name in
        Hashtbl.add cur.n_children name c;
        c
  in
  t.p_stack <- (child, t.p_clock ()) :: t.p_stack

let leave t =
  match t.p_stack with
  | [] -> invalid_arg "Profile.leave: empty scope stack"
  | (n, t0) :: rest ->
      n.n_wall <- n.n_wall +. Float.max 0. (t.p_clock () -. t0);
      t.p_stack <- rest

let with_scope t name f =
  enter t name;
  Fun.protect ~finally:(fun () -> leave t) f

let work t u n =
  if n <> 0 then begin
    let cur = current t in
    match Hashtbl.find_opt cur.n_work u with
    | Some r -> r := !r + n
    | None -> Hashtbl.add cur.n_work u (ref n)
  end

(* ---- traversal -------------------------------------------------------- *)

let children_sorted n =
  Hashtbl.fold (fun _ c acc -> c :: acc) n.n_children []
  |> List.sort (fun a b -> String.compare a.n_name b.n_name)

(* Pre-order, children in name order: deterministic regardless of the
   order scopes were first entered. [f acc path node kids]. *)
let fold_nodes f acc t =
  let rec go acc path n =
    let path = if path = "" then n.n_name else path ^ ";" ^ n.n_name in
    let kids = children_sorted n in
    let acc = f acc path n kids in
    List.fold_left (fun acc c -> go acc path c) acc kids
  in
  go acc "" t.p_root

let work_items n =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) n.n_work []
  |> List.filter (fun (_, v) -> v <> 0)
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let units t =
  let seen = Hashtbl.create 16 in
  fold_nodes
    (fun () _ n _ ->
      Hashtbl.iter (fun k r -> if !r <> 0 then Hashtbl.replace seen k ()) n.n_work)
    () t;
  Hashtbl.fold (fun k () acc -> k :: acc) seen [] |> List.sort String.compare

let self_weight ?unit_ n =
  match unit_ with
  | Some u -> ( match Hashtbl.find_opt n.n_work u with Some r -> !r | None -> 0)
  | None -> Hashtbl.fold (fun _ r acc -> acc + !r) n.n_work 0

let self_wall n kids =
  Float.max 0. (n.n_wall -. List.fold_left (fun a c -> a +. c.n_wall) 0. kids)

(* ---- exports ---------------------------------------------------------- *)

(* flamegraph.pl-compatible folded stacks: "all;deliver;move 42" lines,
   weight = the node's own (self) work in [unit_], or the sum over all
   work units when no unit is named. *)
let to_folded ?unit_ t =
  let lines =
    fold_nodes
      (fun acc path n _ ->
        let w = self_weight ?unit_ n in
        if w > 0 then Printf.sprintf "%s %d" path w :: acc else acc)
      [] t
  in
  String.concat "\n" (List.rev lines) ^ "\n"

(* speedscope "sampled" profile: one sample per node with self weight,
   the sample's stack being the node's path. *)
let to_speedscope ?unit_ ?(name = "dgc-profile") t =
  let frame_ix = Hashtbl.create 32 in
  let frames = ref [] in
  let n_frames = ref 0 in
  let frame fname =
    match Hashtbl.find_opt frame_ix fname with
    | Some i -> i
    | None ->
        let i = !n_frames in
        Hashtbl.replace frame_ix fname i;
        frames := fname :: !frames;
        incr n_frames;
        i
  in
  let samples, weights, total =
    let rec go (samples, weights, total) stack n =
      let stack = stack @ [ frame n.n_name ] in
      let w = self_weight ?unit_ n in
      let acc =
        if w > 0 then
          ( Json.Arr (List.map (fun i -> Json.Int i) stack) :: samples,
            Json.Int w :: weights,
            total + w )
        else (samples, weights, total)
      in
      List.fold_left (fun acc c -> go acc stack c) acc (children_sorted n)
    in
    go ([], [], 0) [] t.p_root
  in
  Json.Obj
    [
      ( "$schema",
        Json.Str "https://www.speedscope.app/file-format-schema.json" );
      ( "shared",
        Json.Obj
          [
            ( "frames",
              Json.Arr
                (List.rev_map
                   (fun fname -> Json.Obj [ ("name", Json.Str fname) ])
                   !frames) );
          ] );
      ( "profiles",
        Json.Arr
          [
            Json.Obj
              [
                ("type", Json.Str "sampled");
                ("name", Json.Str name);
                ("unit", Json.Str "none");
                ("startValue", Json.Int 0);
                ("endValue", Json.Int total);
                ("samples", Json.Arr (List.rev samples));
                ("weights", Json.Arr (List.rev weights));
              ];
          ] );
      ("name", Json.Str name);
      ("activeProfileIndex", Json.Int 0);
      ("exporter", Json.Str "dgc-sim profile");
    ]

(* The dgc.profile/1 artifact. Work-unit fields are deterministic
   (same seed => byte-identical); wall_ns is host time and excluded
   when [wall:false] — which is also how bit-reproducible artifacts
   (chaos campaigns, bench baselines) embed their profile sections. *)
let to_json ?(wall = true) ?(name = "profile") t =
  let nodes =
    fold_nodes
      (fun acc path n kids ->
        let fields =
          [
            ("path", Json.Str path);
            ( "work",
              Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (work_items n))
            );
          ]
          @
          if wall then
            [
              ( "wall_ns",
                Json.Int
                  (int_of_float (Float.max 0. (self_wall n kids *. 1e9))) );
            ]
          else []
        in
        Json.Obj fields :: acc)
      [] t
  in
  Json.Obj
    [
      ("schema", Json.Str schema);
      ("name", Json.Str name);
      ("units", Json.Arr (List.map (fun u -> Json.Str u) (units t)));
      ("nodes", Json.Arr (List.rev nodes));
      ("ledger", Ledger.to_json t.p_ledger);
    ]

let work_fingerprint t = Json.to_string (to_json ~wall:false t)

(* ---- validation ------------------------------------------------------- *)

let ( let* ) = Result.bind

let node_path j =
  match Json.member "path" j with
  | Some (Json.Str p) when p <> "" -> Ok p
  | _ -> Error "node path missing or empty"

let validate_node units j =
  let* path = node_path j in
  let* () =
    match Json.member "work" j with
    | Some (Json.Obj fields) ->
        let rec go last = function
          | [] -> Ok ()
          | (k, Json.Int v) :: tl ->
              if v < 0 then Error (path ^ ": negative work " ^ k)
              else if not (List.mem k units) then
                Error (path ^ ": work unit " ^ k ^ " not declared in units")
              else if last >= k then
                Error (path ^ ": work keys not sorted at " ^ k)
              else go k tl
          | (k, _) :: _ -> Error (path ^ ": work " ^ k ^ " is not an int")
        in
        go "" fields
    | _ -> Error (path ^ ": work object missing")
  in
  let* () =
    match Json.member "wall_ns" j with
    | None -> Ok ()  (* wall-free export *)
    | Some j -> (
        match Json.to_int_opt j with
        | Some n when n >= 0 -> Ok ()
        | _ -> Error (path ^ ": wall_ns is not a non-negative int"))
  in
  Ok path

let parent_path p =
  match String.rindex_opt p ';' with
  | Some i -> Some (String.sub p 0 i)
  | None -> None

let validate j =
  let* () =
    match Json.member "schema" j with
    | Some (Json.Str s) when s = schema -> Ok ()
    | Some (Json.Str s) -> Error ("wrong schema " ^ s)
    | _ -> Error "schema missing"
  in
  let* () =
    match Json.member "name" j with
    | Some (Json.Str _) -> Ok ()
    | _ -> Error "name missing"
  in
  let* units =
    match Json.member "units" j with
    | Some (Json.Arr us) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | Json.Str u :: tl -> (
              match acc with
              | last :: _ when last >= u -> Error "units not sorted"
              | _ -> go (u :: acc) tl)
          | _ -> Error "units must be strings"
        in
        go [] us
    | _ -> Error "units missing"
  in
  let* nodes =
    match Json.member "nodes" j with
    | Some (Json.Arr ns) -> Ok ns
    | _ -> Error "nodes missing"
  in
  let* paths =
    List.fold_left
      (fun acc n ->
        let* acc = acc in
        let* p = validate_node units n in
        Ok (p :: acc))
      (Ok []) nodes
  in
  let paths = List.rev paths in
  let* () =
    match paths with
    | [] -> Error "no nodes"
    | root :: _ when String.contains root ';' ->
        Error "first node is not the root"
    | _ -> Ok ()
  in
  (* Pre-order with name-sorted children implies: every parent appears
     before its children, and sibling subtrees appear in name order.
     Checking "parent already seen" catches both truncation and
     non-deterministic emission orders. *)
  let* () =
    let seen = Hashtbl.create 64 in
    List.fold_left
      (fun acc p ->
        let* () = acc in
        let* () =
          match parent_path p with
          | None -> Ok ()
          | Some parent ->
              if Hashtbl.mem seen parent then Ok ()
              else Error ("node " ^ p ^ " appears before its parent")
        in
        if Hashtbl.mem seen p then Error ("duplicate node path " ^ p)
        else begin
          Hashtbl.replace seen p ();
          Ok ()
        end)
      (Ok ()) paths
  in
  match Json.member "ledger" j with
  | Some l -> Ledger.validate l
  | None -> Ok ()

(* ---- diff ------------------------------------------------------------- *)

type delta = {
  d_path : string;
  d_unit : string;
  d_base : int;
  d_fresh : int;
}

type diff_report = {
  df_deltas : delta list;  (** every path×unit whose count changed *)
  df_shares : (string * string * float * float) list;
      (** (top-level phase, unit, base share, fresh share) *)
  df_max_share_drift : float;
  df_share_tolerance : float;
  df_regressed : bool;
}

let nodes_of_json j =
  match Json.member "nodes" j with
  | Some (Json.Arr ns) ->
      List.fold_left
        (fun acc n ->
          let* acc = acc in
          let* p = node_path n in
          let work =
            match Json.member "work" n with
            | Some (Json.Obj fields) ->
                List.filter_map
                  (fun (k, v) ->
                    match Json.to_int_opt v with
                    | Some i -> Some (k, i)
                    | None -> None)
                  fields
            | _ -> []
          in
          Ok ((p, work) :: acc))
        (Ok []) ns
      |> Result.map List.rev
  | _ -> Error "nodes missing"

(* Top-level phase of a path: the segment right under the root —
   "all;deliver;move" -> "deliver"; root self-work stays under "all". *)
let top_phase p =
  match String.index_opt p ';' with
  | None -> p
  | Some i -> (
      let rest = String.sub p (i + 1) (String.length p - i - 1) in
      match String.index_opt rest ';' with
      | None -> rest
      | Some k -> String.sub rest 0 k)

let diff ?(share_tolerance = 0.10) base fresh =
  let* bn = nodes_of_json base in
  let* fn = nodes_of_json fresh in
  let lookup nodes p u =
    match List.assoc_opt p nodes with
    | Some work -> ( match List.assoc_opt u work with Some v -> v | None -> 0)
    | None -> 0
  in
  let keys =
    List.concat_map (fun (p, work) -> List.map (fun (u, _) -> (p, u)) work)
      (bn @ fn)
    |> List.sort_uniq compare
  in
  let deltas =
    List.filter_map
      (fun (p, u) ->
        let b = lookup bn p u and f = lookup fn p u in
        if b <> f then Some { d_path = p; d_unit = u; d_base = b; d_fresh = f }
        else None)
      keys
  in
  (* Per-unit totals and per-phase totals over *all* nodes. *)
  let totals nodes =
    let phase_tbl = Hashtbl.create 16 and unit_tbl = Hashtbl.create 16 in
    List.iter
      (fun (p, work) ->
        let phase = top_phase p in
        List.iter
          (fun (u, v) ->
            let bump tbl k =
              match Hashtbl.find_opt tbl k with
              | Some r -> r := !r + v
              | None -> Hashtbl.add tbl k (ref v)
            in
            bump phase_tbl (phase, u);
            bump unit_tbl u)
          work)
      nodes;
    (phase_tbl, unit_tbl)
  in
  let b_phase, b_unit = totals bn in
  let f_phase, f_unit = totals fn in
  let share tbl_phase tbl_unit phase u =
    let num =
      match Hashtbl.find_opt tbl_phase (phase, u) with
      | Some r -> float_of_int !r
      | None -> 0.
    in
    let den =
      match Hashtbl.find_opt tbl_unit u with
      | Some r -> float_of_int !r
      | None -> 0.
    in
    if den <= 0. then 0. else num /. den
  in
  let phase_units =
    let acc = Hashtbl.create 16 in
    Hashtbl.iter (fun k _ -> Hashtbl.replace acc k ()) b_phase;
    Hashtbl.iter (fun k _ -> Hashtbl.replace acc k ()) f_phase;
    Hashtbl.fold (fun k () l -> k :: l) acc [] |> List.sort compare
  in
  let shares =
    List.map
      (fun (phase, u) ->
        ( phase,
          u,
          share b_phase b_unit phase u,
          share f_phase f_unit phase u ))
      phase_units
  in
  let drift =
    List.fold_left
      (fun m (_, _, b, f) -> Float.max m (Float.abs (f -. b)))
      0. shares
  in
  Ok
    {
      df_deltas = deltas;
      df_shares = shares;
      df_max_share_drift = drift;
      df_share_tolerance = share_tolerance;
      df_regressed = drift > share_tolerance;
    }

let pp_diff ppf r =
  Format.fprintf ppf "@[<v>%d work-unit deltas" (List.length r.df_deltas);
  List.iter
    (fun d ->
      Format.fprintf ppf "@,  %-48s %-16s %10d -> %-10d (%+d)" d.d_path d.d_unit
        d.d_base d.d_fresh (d.d_fresh - d.d_base))
    r.df_deltas;
  Format.fprintf ppf "@,top-level phase shares (base -> fresh):";
  List.iter
    (fun (phase, u, b, f) ->
      Format.fprintf ppf "@,  %-20s %-16s %6.2f%% -> %6.2f%% (drift %.2f%%)"
        phase u (100. *. b) (100. *. f)
        (100. *. Float.abs (f -. b)))
    r.df_shares;
  Format.fprintf ppf "@,max share drift %.2f%% vs tolerance %.2f%%: %s@]"
    (100. *. r.df_max_share_drift)
    (100. *. r.df_share_tolerance)
    (if r.df_regressed then "REGRESSION" else "ok")
