(** Deterministic sim-cost profiler.

    A stack of phase scopes forming a tree of nodes; each node
    accumulates named {e work units} — deterministic integer costs
    (events, frames, edges visited, bytes moved, workspace touches)
    attributed to the innermost open scope — plus inclusive host wall
    time. Work units are pure functions of the simulated schedule, so
    two same-seed runs produce byte-identical work sections
    ({!work_fingerprint}); wall time is machine-dependent and kept in
    a separate field that bit-reproducible artifacts omit.

    The profiler draws no randomness and schedules no events, so runs
    with it attached stay event-identical to runs without it.

    Exports: flamegraph.pl folded stacks ({!to_folded}), speedscope
    sampled JSON ({!to_speedscope}), and the [dgc.profile/1] artifact
    ({!to_json}) with {!validate} and a per-node {!diff} carrying a
    top-level phase-share regression verdict. Each profile also owns
    the per-back-trace cost {!Ledger}. *)

module Json = Dgc_telemetry.Json

val schema : string
(** ["dgc.profile/1"] *)

type t

val create : ?clock:(unit -> float) -> unit -> t
(** [clock] supplies host seconds for wall accounting (default
    [Unix.gettimeofday] — vDSO-cheap where [Sys.time] is a syscall);
    it never influences work units or the schedule. *)

val ledger : t -> Ledger.t

(** {1 Scopes and work} *)

val enter : t -> string -> unit
val leave : t -> unit
(** @raise Invalid_argument when the scope stack is empty. *)

val with_scope : t -> string -> (unit -> 'a) -> 'a
(** Exception-safe [enter]/[leave] bracket. *)

val depth : t -> int
(** Open-scope count (root excluded); for tests. *)

val work : t -> string -> int -> unit
(** [work t unit n] adds [n] units to the innermost open scope (the
    root when none is open). [n = 0] is a no-op. *)

(** {1 Exports} *)

val units : t -> string list
(** All work-unit names seen, sorted. *)

val to_folded : ?unit_:string -> t -> string
(** flamegraph.pl-compatible folded stacks ("all;deliver;move 42"),
    weighted by [unit_]'s self-work per node, or the sum over all work
    units when omitted. Zero-weight nodes are skipped. *)

val to_speedscope : ?unit_:string -> ?name:string -> t -> Json.t
(** speedscope "sampled" profile over the same weights. *)

val to_json : ?wall:bool -> ?name:string -> t -> Json.t
(** The [dgc.profile/1] artifact: pre-order nodes (children in name
    order) with sorted work maps, the unit list, and the embedded
    ledger. [wall:false] omits the host-time [wall_ns] fields so the
    document is bit-reproducible across machines. *)

val work_fingerprint : t -> string
(** [Json.to_string (to_json ~wall:false t)] — the determinism
    surface: equal for same-seed runs. *)

val validate : Json.t -> (unit, string) result
(** Schema/shape check used by [bench/schema_check.ml]: declared
    units, sorted work maps, parents-before-children pre-order, no
    duplicate paths, ledger shape. *)

(** {1 Diff} *)

type delta = {
  d_path : string;
  d_unit : string;
  d_base : int;
  d_fresh : int;
}

type diff_report = {
  df_deltas : delta list;  (** every path×unit whose count changed *)
  df_shares : (string * string * float * float) list;
      (** (top-level phase, unit, base share, fresh share) *)
  df_max_share_drift : float;
  df_share_tolerance : float;
  df_regressed : bool;
}

val diff :
  ?share_tolerance:float -> Json.t -> Json.t -> (diff_report, string) result
(** Per-node work deltas between two [dgc.profile/1] documents plus a
    regression verdict: the largest absolute drift in any top-level
    phase's share of a work unit's total, against [share_tolerance]
    (default 0.10). *)

val pp_diff : Format.formatter -> diff_report -> unit
