(** The coverage-guided fuzz driver.

    Each execution runs one {!Input.t} against the real system — plan
    inputs through {!Dgc_chaos.Campaign.run_case}, schedule inputs
    through {!Dgc_analysis.Explorer.run_schedule} — with two passive
    coverage taps attached through the probe hooks: the
    {!Conformance} observer (protocol-automaton state crossed with the
    injector's {!Dgc_chaos.Inject.active_mask}) and the journal tap
    (category crossed with the fault mask and the last automaton
    state). The hit set feeds the global {!Coverage} map; inputs that
    light new edges join the {!Pool}, future inputs are mutations of
    rarity-weighted pool picks, and failing inputs are ddmin-shrunk
    and promoted into the regression corpus keyed by (failure kind,
    coverage signature).

    Everything — input choice, mutation, execution — is a pure
    function of [o_seed], so a campaign is replayable and its
    ["dgc.fuzz/1"] artifact byte-stable. *)

type opts = {
  o_name : string;
  o_seed : int;
  o_execs : int;  (** execution budget *)
  o_cov_size : int;  (** coverage bitmap slots *)
  o_workloads : string list;  (** plan-input targets; [] = none *)
  o_suts : string list;  (** schedule-input targets; [] = none *)
  o_tweaks : string list;  (** config tweaks armed on every plan run *)
  o_shards : int list;  (** shard counts plan runs rotate over *)
  o_horizon_ms : float;  (** plan-run chaos horizon *)
  o_events : int;  (** fault windows per fresh random plan *)
  o_max_steps : int;  (** schedule-run step bound *)
  o_width : int;  (** deviation ranks: 1..width *)
  o_stop_on : string list;
      (** failure kinds; stop early once every listed kind was found *)
  o_promote_dir : string option;
      (** write shrunk reproducers into this corpus directory *)
  o_corpus : string list;  (** seed corpus files to warm the pool with *)
}

val default_opts : opts
(** seed 1, 48 execs, 16384 slots, churn + fig2 workloads, no suts,
    no tweaks, shards [1], 20s horizon, 3 events, 400 steps, width 3,
    no stop set, no promotion, cold corpus. *)

val run : opts -> Report.t
(** The guided campaign. *)

val baseline : opts -> Report.t
(** The same budget spent on uniform-random fresh inputs: no corpus,
    no mutation, no promotion — the control arm the guided run's
    final hit count is compared against. *)

val with_baseline : opts -> Report.t
(** {!run}, then {!baseline} under the same options, merged: the
    guided report carrying the random arm's (execs, hits). *)
