(** The corpus pool: retained inputs power-scheduled by edge rarity.

    Entries are inputs that increased global coverage when they ran,
    stored with the hit set they produced. {!select} draws an entry
    with probability proportional to {!Coverage.rarity} of its hit set
    against the current global map — an input whose edges have gone
    cold is picked less and less as the campaign re-treads them, an
    input holding the only copy of a rare edge keeps its weight. *)

open Dgc_prelude

type entry = { e_input : Input.t; e_bits : int list }
type t

val create : unit -> t
val add : t -> Input.t -> int list -> unit
val size : t -> int
val plans : t -> int
val schedules : t -> int

val entries : t -> entry list
(** Insertion order. *)

val select : t -> rng:Rng.t -> global:Coverage.t -> entry option
(** Rarity-weighted draw; [None] on an empty pool. Deterministic given
    the rng stream and the global map. *)
