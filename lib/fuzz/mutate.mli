(** Corpus-input mutators.

    Structure-aware mutations over {!Input.t}: fault-plan windows are
    shifted, stretched, split, merged, re-parameterized, added,
    dropped, reseeded or crossed over with a mate; explorer schedules
    get deviation add/drop/step/rank tweaks and splicing. Every
    operator preserves validity — a mutated plan always passes
    [Plan.validate ~sites] (the qcheck property in [test_fuzzer.ml]
    holds them to this) and a mutated schedule stays inside
    [max_steps]/[width] — so the fuzzer never wastes an execution on a
    rejected input. All draws come from the caller's rng stream;
    mutation is a pure function of (rng state, input, mate). *)

open Dgc_prelude

val plan_ops : string list
(** Operator names a plan input can receive (reporting vocabulary). *)

val sched_ops : string list
(** Operator names a schedule input can receive. *)

val mutate :
  rng:Rng.t ->
  sites:int ->
  horizon_ms:float ->
  max_steps:int ->
  width:int ->
  ?mate:Input.t ->
  Input.t ->
  string * Input.t
(** Pick an operator (uniformly; crossover only offered when [mate]
    has the same shape) and apply it. Returns the operator name and
    the mutated input. [sites] bounds crash/partition sites for the
    input's workload; [horizon_ms] bounds window open times;
    [max_steps]/[width] bound schedule deviations. *)

val random_plan :
  rng:Rng.t ->
  workload:string ->
  sites:int ->
  horizon_ms:float ->
  events:int ->
  Input.t
(** A fresh random plan input (random seed, [Plan.random] events) —
    the cold-corpus bootstrap and the uniform-random baseline arm. *)

val random_schedule :
  rng:Rng.t -> sut:string -> max_steps:int -> width:int -> Input.t
(** A fresh random schedule input: 1–4 random deviations. *)
