module Json = Dgc_telemetry.Json

type op_stat = {
  op_name : string;
  op_tried : int;
  op_novel : int;
  op_failed : int;
}

type found = {
  fd_kind : string;
  fd_input : string;
  fd_exec : int;
  fd_detail : string;
  fd_signature : int;
  fd_promoted : string option;
}

type t = {
  r_name : string;
  r_seed : int;
  r_mode : string;
  r_execs : int;
  r_curve : int list;
  r_map : Coverage.t;
  r_pool_size : int;
  r_pool_plans : int;
  r_pool_schedules : int;
  r_promoted : int;
  r_ops : op_stat list;
  r_found : found list;
  r_san_skipped : int;
  r_baseline : (int * int) option;
}

let schema = "dgc.fuzz/1"

let to_json t =
  let coverage =
    match Coverage.to_json t.r_map with
    | Json.Obj fields ->
        Json.Obj
          (fields
          @ [ ("curve", Json.Arr (List.map (fun h -> Json.Int h) t.r_curve)) ]
          )
    | j -> j
  in
  Json.Obj
    ([
       ("schema", Json.Str schema);
       ("name", Json.Str t.r_name);
       ("seed", Json.Int t.r_seed);
       ("mode", Json.Str t.r_mode);
       ("execs", Json.Int t.r_execs);
       ("sanitizer_skipped", Json.Int t.r_san_skipped);
       ("coverage", coverage);
       ( "corpus",
         Json.Obj
           [
             ("size", Json.Int t.r_pool_size);
             ("plans", Json.Int t.r_pool_plans);
             ("schedules", Json.Int t.r_pool_schedules);
             ("promoted", Json.Int t.r_promoted);
           ] );
       ( "ops",
         Json.Arr
           (List.map
              (fun o ->
                Json.Obj
                  [
                    ("name", Json.Str o.op_name);
                    ("tried", Json.Int o.op_tried);
                    ("novel", Json.Int o.op_novel);
                    ("failures", Json.Int o.op_failed);
                  ])
              t.r_ops) );
       ( "failures",
         Json.Arr
           (List.map
              (fun f ->
                Json.Obj
                  ([
                     ("kind", Json.Str f.fd_kind);
                     ("input", Json.Str f.fd_input);
                     ("exec", Json.Int f.fd_exec);
                     ("detail", Json.Str f.fd_detail);
                     ("signature", Json.Int f.fd_signature);
                   ]
                  @
                  match f.fd_promoted with
                  | Some p -> [ ("promoted", Json.Str p) ]
                  | None -> []))
              t.r_found) );
     ]
    @
    match t.r_baseline with
    | Some (execs, hits) ->
        [
          ( "baseline",
            Json.Obj [ ("execs", Json.Int execs); ("hits", Json.Int hits) ] );
        ]
    | None -> [])

let save ~path t =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json t));
  output_char oc '\n';
  close_out oc

(* ---- validation ------------------------------------------------------ *)

let ( let* ) = Result.bind

let need_int doc name =
  match Option.bind (Json.member name doc) Json.to_int_opt with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "missing or non-int field %S" name)

let need_str doc name =
  match Option.bind (Json.member name doc) Json.to_str_opt with
  | Some s -> Ok s
  | None -> Error (Printf.sprintf "missing or non-string field %S" name)

let need_obj doc name =
  match Json.member name doc with
  | Some j -> Ok j
  | None -> Error (Printf.sprintf "missing section %S" name)

let validate doc =
  let* s = need_str doc "schema" in
  if not (String.equal s schema) then
    Error (Printf.sprintf "expected schema %S, got %S" schema s)
  else
    let* _ = need_str doc "name" in
    let* _ = need_int doc "seed" in
    let* mode = need_str doc "mode" in
    let* () =
      if List.mem mode [ "guided"; "random" ] then Ok ()
      else Error (Printf.sprintf "unknown mode %S" mode)
    in
    let* execs = need_int doc "execs" in
    let* _ = need_int doc "sanitizer_skipped" in
    let* cov = need_obj doc "coverage" in
    let* _ = need_int cov "size" in
    let* hits = need_int cov "hits" in
    let* _ = need_int cov "total" in
    let* curve =
      match Option.bind (Json.member "curve" cov) Json.to_list_opt with
      | None -> Error "coverage: missing \"curve\" array"
      | Some l ->
          List.fold_left
            (fun acc j ->
              let* acc = acc in
              match Json.to_int_opt j with
              | Some i -> Ok (i :: acc)
              | None -> Error "coverage curve: non-int entry")
            (Ok []) l
          |> Result.map List.rev
    in
    let* () =
      if List.length curve <> execs then
        Error
          (Printf.sprintf "coverage curve has %d points for %d execs"
             (List.length curve) execs)
      else Ok ()
    in
    let* () =
      let rec mono prev = function
        | [] -> Ok ()
        | h :: tl ->
            if h < prev then Error "coverage curve not monotone"
            else mono h tl
      in
      mono 0 curve
    in
    let* () =
      match List.rev curve with
      | last :: _ when last <> hits ->
          Error
            (Printf.sprintf "curve ends at %d but bitmap reports %d hits" last
               hits)
      | _ -> Ok ()
    in
    let* corpus = need_obj doc "corpus" in
    let* size = need_int corpus "size" in
    let* plans = need_int corpus "plans" in
    let* schedules = need_int corpus "schedules" in
    let* _ = need_int corpus "promoted" in
    let* () =
      if size <> plans + schedules then
        Error "corpus size != plans + schedules"
      else Ok ()
    in
    let* () =
      match Option.bind (Json.member "ops" doc) Json.to_list_opt with
      | None -> Error "missing \"ops\" array"
      | Some ops ->
          List.fold_left
            (fun acc o ->
              let* () = acc in
              let* _ = need_str o "name" in
              let* _ = need_int o "tried" in
              let* _ = need_int o "novel" in
              let* _ = need_int o "failures" in
              Ok ())
            (Ok ()) ops
    in
    let* () =
      match Option.bind (Json.member "failures" doc) Json.to_list_opt with
      | None -> Error "missing \"failures\" array"
      | Some fs ->
          List.fold_left
            (fun acc f ->
              let* () = acc in
              let* _ = need_str f "kind" in
              let* _ = need_str f "input" in
              let* _ = need_int f "exec" in
              let* _ = need_str f "detail" in
              let* _ = need_int f "signature" in
              Ok ())
            (Ok ()) fs
    in
    match Json.member "baseline" doc with
    | None -> Ok ()
    | Some b ->
        let* _ = need_int b "execs" in
        let* _ = need_int b "hits" in
        Ok ()
