module Json = Dgc_telemetry.Json

type t = {
  mask : int;  (** size - 1; size is a power of two *)
  counts : int array;  (** per-slot hit counts; > 0 = set *)
  seed : int;
  mutable set : int;  (** distinct slots set *)
  mutable total : int;  (** keys recorded *)
}

let round_pow2 n =
  let rec go p = if p >= n then p else go (p * 2) in
  go 1

let create ?(size = 16384) ~seed () =
  let n = round_pow2 (max 2 size) in
  { mask = n - 1; counts = Array.make n 0; seed; set = 0; total = 0 }

(* FNV-1a over the key bytes, the seed folded into the offset basis.
   Deterministic across runs and OCaml versions — never use
   [Hashtbl.hash] here, its layout is not a contract. The canonical
   64-bit offset basis doesn't fit OCaml's 63-bit int, so the top
   nibble is dropped; any fixed odd basis serves. *)
let fnv_prime = 0x100000001b3
let fnv_basis = 0x3bf29ce484222325

let hash ~seed s =
  let h = ref (fnv_basis lxor (seed * 0x9e3779b9)) in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * fnv_prime)
    s;
  !h land max_int

let record t key =
  let i = hash ~seed:t.seed key land t.mask in
  t.total <- t.total + 1;
  if t.counts.(i) = 0 then t.set <- t.set + 1;
  t.counts.(i) <- t.counts.(i) + 1

let size t = t.mask + 1
let hits t = t.set
let total t = t.total

(* AFL-style count buckets: an edge hit once, a few times and hundreds
   of times are different behaviours. [bits] projects each set slot
   crossed with its bucket back into the map's index space, so a
   mutation that merely amplifies a known edge still scores novelty —
   the gradient that lets guided search climb where a binary hit set
   saturates. *)
let bucket c =
  if c <= 1 then 0
  else if c = 2 then 1
  else if c <= 4 then 2
  else if c <= 8 then 3
  else if c <= 16 then 4
  else if c <= 32 then 5
  else if c <= 128 then 6
  else 7

let bits t =
  let acc = ref [] in
  for i = t.mask downto 0 do
    let c = t.counts.(i) in
    if c > 0 then
      acc := ((i * 8) + bucket c) * 0x9e3779b9 land max_int land t.mask :: !acc
  done;
  List.sort_uniq compare !acc

let absorb t bits =
  List.fold_left
    (fun novel i ->
      t.total <- t.total + 1;
      if t.counts.(i) = 0 then begin
        t.set <- t.set + 1;
        t.counts.(i) <- 1;
        novel + 1
      end
      else begin
        t.counts.(i) <- t.counts.(i) + 1;
        novel
      end)
    0 bits

let rarity t bits =
  List.fold_left
    (fun acc i -> acc +. (1. /. float_of_int (max 1 t.counts.(i))))
    0. bits

let signature bits =
  let h =
    List.fold_left
      (fun h i -> (h lxor i) * fnv_prime)
      fnv_basis
      (List.sort compare bits)
  in
  h land max_int

let to_json t =
  Json.Obj
    [
      ("size", Json.Int (size t));
      ("hits", Json.Int t.set);
      ("total", Json.Int t.total);
    ]
