(** Fuzz inputs = corpus files.

    The fuzzer mutates exactly what the regression corpus stores: a
    ["dgc.plan/1"] fault plan with its campaign envelope (workload,
    seed, horizon) or a ["dgc.schedule/1"] explorer deviation schedule
    with its SUT. One codec serves three masters — the corpus replay
    test, the fuzzer's seed loading, and reproducer auto-promotion —
    so a promoted file is replayable by construction. *)

open Dgc_rts

type plan_case = {
  pi_workload : string;
  pi_seed : int;
  pi_horizon_ms : float;
  pi_plan : Dgc_chaos.Plan.t;
}

type sched_case = {
  si_sut : string;  (** a {!Dgc_analysis.Sut} catalog name *)
  si_max_steps : int;
  si_schedule : Dgc_analysis.Shrink.deviation list;
}

type t = Plan_input of plan_case | Schedule_input of sched_case

type meta = {
  m_expect : string option;
      (** expected failure kind on replay ({!Dgc_chaos.Campaign.failure_kind}
          vocabulary); [None] = must replay clean *)
  m_tweaks : string list;  (** named config tweaks to arm, in order *)
  m_comment : string option;
}

val no_meta : meta

val kind_name : t -> string
(** ["plan"] or ["schedule"]. *)

val tweak_of_name : string -> (Config.t -> Config.t) option
(** The corpus tweak vocabulary: ["sanitize"], ["no_timeouts"],
    ["broken_transfer_barrier"]. *)

val tweak_all : string list -> Config.t -> Config.t
(** Compose known tweaks left to right; raises [Invalid_argument] on an
    unknown name (a corpus file naming one is corrupt). *)

val to_json : ?meta:meta -> t -> Dgc_telemetry.Json.t
(** The corpus-file document (schema, envelope, expect/tweaks/comment
    when given, events or schedule). Deterministic field order. *)

val of_json : Dgc_telemetry.Json.t -> (t * meta, string) result
(** Accepts both schemas. Plan envelopes default like the historical
    corpus reader: workload ["churn"], seed 1, horizon 60000ms;
    schedules default to 400 max steps. *)

val load : path:string -> (t * meta, string) result
val save : path:string -> ?meta:meta -> t -> unit

val case_of_plan : name:string -> plan_case -> Dgc_chaos.Campaign.case
(** The campaign case a plan input replays as. *)
