(** The fuzzer's coverage signal: a deterministic seeded bitmap.

    A coverage {e edge} is an opaque string key — the fuzzer builds
    them from (protocol-automaton state × active fault-window kind ×
    journal category) tuples — hashed into a fixed-size bit array by a
    seeded FNV-1a. Per-run recorders and the global map share the seed,
    so the same key always lands on the same slot and two in-process
    runs with the same seed produce identical hit sets (the determinism
    pin in [test_fuzzer.ml] holds the fuzz artifact to this).

    The global map additionally counts how often each slot has been
    hit across the whole campaign; {!rarity} turns an input's hit set
    into a power-schedule weight favouring rare edges. *)

type t

val create : ?size:int -> seed:int -> unit -> t
(** [size] (default 16384) is rounded up to a power of two. *)

val size : t -> int

val record : t -> string -> unit
(** Hash the key, set its bit, bump its hit count. *)

val hits : t -> int
(** Distinct slots set so far. *)

val total : t -> int
(** Keys recorded (including re-hits). *)

val bits : t -> int list
(** The run's hit set as map indices, sorted and deduplicated: each
    set slot crossed with its AFL-style hit-count bucket (1, 2, 3–4,
    5–8, ... 129+) and projected back into the index space — so
    amplifying a known edge still reads as a new behaviour. *)

val absorb : t -> int list -> int
(** [absorb global bits] merges a run's hit set into the global map
    (bumping each slot's hit count) and returns how many slots were
    new — the novelty score that decides corpus retention. *)

val rarity : t -> int list -> float
(** Power-schedule weight: Σ 1/(hit count) over the given slots — an
    input whose edges are rare in the global map outweighs one that
    only re-treads hot paths. 0 for the empty set. *)

val signature : int list -> int
(** Order-insensitive fingerprint of a hit set (for the promotion
    dedup key). Non-negative. *)

val to_json : t -> Dgc_telemetry.Json.t
(** [{size; hits; total}] — the bitmap summary embedded in
    ["dgc.fuzz/1"]. *)
