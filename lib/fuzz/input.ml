open Dgc_rts
module Json = Dgc_telemetry.Json
module Plan = Dgc_chaos.Plan

type plan_case = {
  pi_workload : string;
  pi_seed : int;
  pi_horizon_ms : float;
  pi_plan : Plan.t;
}

type sched_case = {
  si_sut : string;
  si_max_steps : int;
  si_schedule : Dgc_analysis.Shrink.deviation list;
}

type t = Plan_input of plan_case | Schedule_input of sched_case

type meta = {
  m_expect : string option;
  m_tweaks : string list;
  m_comment : string option;
}

let no_meta = { m_expect = None; m_tweaks = []; m_comment = None }

let kind_name = function
  | Plan_input _ -> "plan"
  | Schedule_input _ -> "schedule"

let tweak_of_name = function
  | "sanitize" -> Some (fun c -> { c with Config.sanitize = true })
  | "no_timeouts" -> Some (fun c -> { c with Config.enable_timeouts = false })
  | "broken_transfer_barrier" ->
      Some (fun c -> { c with Config.enable_transfer_barrier = false })
  | _ -> None

let tweak_all names cfg =
  List.fold_left
    (fun cfg n ->
      match tweak_of_name n with
      | Some f -> f cfg
      | None -> invalid_arg (Printf.sprintf "unknown config tweak %S" n))
    cfg names

(* ---- encoding -------------------------------------------------------- *)

(* The corpus files carry the plan codec's event array inside a richer
   envelope; reuse [Plan.to_json] and graft its "events" member so the
   two encoders cannot drift. *)
let plan_events_json plan =
  match Json.member "events" (Plan.to_json plan) with
  | Some evs -> evs
  | None -> assert false

let meta_fields meta =
  (match meta.m_comment with
  | Some c -> [ ("comment", Json.Str c) ]
  | None -> [])
  @ (match meta.m_expect with
    | Some e -> [ ("expect", Json.Str e) ]
    | None -> [])
  @
  match meta.m_tweaks with
  | [] -> []
  | ts -> [ ("tweak", Json.Arr (List.map (fun t -> Json.Str t) ts)) ]

let to_json ?(meta = no_meta) = function
  | Plan_input p ->
      Json.Obj
        ([ ("schema", Json.Str Plan.schema) ]
        @ meta_fields meta
        @ [
            ("workload", Json.Str p.pi_workload);
            ("seed", Json.Int p.pi_seed);
            ("horizon_ms", Json.Float p.pi_horizon_ms);
            ("events", plan_events_json p.pi_plan);
          ])
  | Schedule_input s ->
      Json.Obj
        ([ ("schema", Json.Str "dgc.schedule/1") ]
        @ meta_fields meta
        @ [
            ("sut", Json.Str s.si_sut);
            ("max_steps", Json.Int s.si_max_steps);
            ( "schedule",
              Json.Arr
                (List.map
                   (fun (step, rank) ->
                     Json.Arr [ Json.Int step; Json.Int rank ])
                   s.si_schedule) );
          ])

(* ---- decoding -------------------------------------------------------- *)

let ( let* ) = Result.bind

let meta_of_json doc =
  let str name = Option.bind (Json.member name doc) Json.to_str_opt in
  let* tweaks =
    match Json.member "tweak" doc with
    | None -> Ok []
    | Some j -> (
        match Json.to_list_opt j with
        | None -> Error "field \"tweak\": expected an array of names"
        | Some l ->
            List.fold_left
              (fun acc j ->
                let* acc = acc in
                match Json.to_str_opt j with
                | Some n -> Ok (n :: acc)
                | None -> Error "field \"tweak\": expected string entries")
              (Ok []) l
            |> Result.map List.rev)
  in
  Ok { m_expect = str "expect"; m_tweaks = tweaks; m_comment = str "comment" }

let schedule_of_json doc =
  match Option.bind (Json.member "schedule" doc) Json.to_list_opt with
  | None -> Error "missing field \"schedule\""
  | Some devs ->
      List.fold_left
        (fun acc d ->
          let* acc = acc in
          match Json.to_list_opt d with
          | Some [ a; b ] -> (
              match (Json.to_int_opt a, Json.to_int_opt b) with
              | Some step, Some rank -> Ok ((step, rank) :: acc)
              | _ -> Error "schedule deviation: expected [step, rank] ints")
          | _ -> Error "schedule deviation: expected a [step, rank] pair")
        (Ok []) devs
      |> Result.map List.rev

let of_json doc =
  let str name = Option.bind (Json.member name doc) Json.to_str_opt in
  let int name = Option.bind (Json.member name doc) Json.to_int_opt in
  let flt name = Option.bind (Json.member name doc) Json.to_float_opt in
  let* meta = meta_of_json doc in
  match str "schema" with
  | Some "dgc.schedule/1" ->
      let* schedule = schedule_of_json doc in
      let* sut =
        match str "sut" with
        | Some s -> Ok s
        | None -> Error "missing field \"sut\""
      in
      Ok
        ( Schedule_input
            {
              si_sut = sut;
              si_max_steps = Option.value ~default:400 (int "max_steps");
              si_schedule = schedule;
            },
          meta )
  | Some s when String.equal s Plan.schema ->
      let* plan = Plan.of_json doc in
      Ok
        ( Plan_input
            {
              pi_workload = Option.value ~default:"churn" (str "workload");
              pi_seed = Option.value ~default:1 (int "seed");
              pi_horizon_ms = Option.value ~default:60_000. (flt "horizon_ms");
              pi_plan = plan;
            },
          meta )
  | Some s -> Error (Printf.sprintf "unknown corpus schema %S" s)
  | None -> Error "missing field \"schema\""

let load ~path =
  match In_channel.with_open_bin path In_channel.input_all with
  | exception Sys_error m -> Error m
  | text ->
      let* j = Json.parse text in
      of_json j

let save ~path ?meta t =
  let oc = open_out path in
  output_string oc (Json.to_string (to_json ?meta t));
  output_char oc '\n';
  close_out oc

let case_of_plan ~name p =
  {
    Dgc_chaos.Campaign.cs_name = name;
    cs_workload = p.pi_workload;
    cs_seed = p.pi_seed;
    cs_horizon_ms = p.pi_horizon_ms;
    cs_plan = p.pi_plan;
  }
