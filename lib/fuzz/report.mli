(** The ["dgc.fuzz/1"] artifact: what a fuzz campaign did and found.

    Coverage curve (cumulative distinct edges after every execution),
    bitmap summary, corpus composition, per-operator effectiveness,
    the failures discovered (with their promotion dedup keys), the
    count of sanitizer-blind executions, and — when the baseline arm
    ran — the same-budget uniform-random comparison. Deliberately free
    of wall-clock fields so two runs with the same seed produce
    byte-identical documents. *)

type op_stat = {
  op_name : string;
  op_tried : int;
  op_novel : int;  (** mutations that increased global coverage *)
  op_failed : int;  (** mutations whose execution failed the oracle *)
}

type found = {
  fd_kind : string;  (** {!Dgc_chaos.Campaign.failure_kind} vocabulary *)
  fd_input : string;  (** ["plan"] or ["schedule"] *)
  fd_exec : int;  (** execution index at discovery (0-based) *)
  fd_detail : string;
  fd_signature : int;  (** {!Coverage.signature} of the failing run *)
  fd_promoted : string option;  (** corpus filename when auto-promoted *)
}

type t = {
  r_name : string;
  r_seed : int;
  r_mode : string;  (** ["guided"] or ["random"] *)
  r_execs : int;  (** executions performed *)
  r_curve : int list;  (** cumulative distinct edges, one per exec *)
  r_map : Coverage.t;  (** the final global map *)
  r_pool_size : int;
  r_pool_plans : int;
  r_pool_schedules : int;
  r_promoted : int;  (** reproducers written to the corpus *)
  r_ops : op_stat list;
  r_found : found list;
  r_san_skipped : int;
      (** executions whose sanitizer was downgraded (sharded engine) —
          honest accounting of sanitizer-blind coverage *)
  r_baseline : (int * int) option;  (** random arm: (execs, hits) *)
}

val schema : string
(** ["dgc.fuzz/1"]. *)

val to_json : t -> Dgc_telemetry.Json.t
val save : path:string -> t -> unit

val validate : Dgc_telemetry.Json.t -> (unit, string) result
(** Structural validation for [bench/schema_check.ml]: required
    fields, int-typed curve of length [execs], monotone and ending at
    the bitmap's hit count, corpus arithmetic consistent. *)
