open Dgc_prelude
open Dgc_rts
module Journal = Dgc_simcore.Journal
module Campaign = Dgc_chaos.Campaign
module Inject = Dgc_chaos.Inject
module Workloads = Dgc_chaos.Workloads
module Explorer = Dgc_analysis.Explorer
module Sut = Dgc_analysis.Sut
module Shrink = Dgc_analysis.Shrink
module Conformance = Dgc_analysis.Conformance

type opts = {
  o_name : string;
  o_seed : int;
  o_execs : int;
  o_cov_size : int;
  o_workloads : string list;
  o_suts : string list;
  o_tweaks : string list;
  o_shards : int list;
  o_horizon_ms : float;
  o_events : int;
  o_max_steps : int;
  o_width : int;
  o_stop_on : string list;
  o_promote_dir : string option;
  o_corpus : string list;
}

let default_opts =
  {
    o_name = "fuzz";
    o_seed = 1;
    o_execs = 48;
    o_cov_size = 16384;
    o_workloads = [ "churn"; "fig2" ];
    o_suts = [];
    o_tweaks = [];
    o_shards = [ 1 ];
    o_horizon_ms = 20_000.;
    o_events = 3;
    o_max_steps = 400;
    o_width = 3;
    o_stop_on = [];
    o_promote_dir = None;
    o_corpus = [];
  }

(* ---- one execution --------------------------------------------------- *)

type exec_result = {
  x_bits : int list;  (** the run's coverage hit set *)
  x_failure : (string * string) option;  (** kind, detail *)
  x_san_skipped : bool;
}

(* Both taps share one per-run recorder sized and seeded like the
   global map, so slot indices line up for [Coverage.absorb]. The
   protocol key crosses the automaton state with the live fault mask;
   the journal key crosses the category with the mask and the last
   automaton state seen — the same journal line means something
   different inside a partition window than outside one. *)
let attach_taps ~local ~mask_of ~journal eng =
  let last_state = ref 0 in
  if not (Engine.sharded eng) then begin
    let conf = Conformance.create () in
    Conformance.attach conf eng;
    Conformance.set_observer conf (fun ~kind ~state ->
        last_state := state;
        Coverage.record local
          (Printf.sprintf "p|%s|%d|%d" kind state (mask_of ())))
  end;
  Journal.set_on_record journal (fun e ->
      Coverage.record local
        (Printf.sprintf "j|%s|%d|%d" e.Journal.cat (mask_of ()) !last_state))

let contains_sub ~sub s =
  let n = String.length sub and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
  go 0

let plan_tweak opts ~shards cfg =
  let cfg = Input.tweak_all opts.o_tweaks cfg in
  (* The flight recorder owns the journal's single on-record tap; fuzz
     runs trade the crash dump for the coverage signal. [domains] is
     pinned to 1: artifacts are a function of (seed, shards) alone and
     worker domains buy nothing inside a fuzz exec. *)
  { cfg with Config.shards; domains = 1; flight_capacity = 0 }

let exec_plan opts ~local ~shards (p : Input.plan_case) =
  let case = Input.case_of_plan ~name:"fuzz" p in
  let case = { case with Campaign.cs_horizon_ms = p.Input.pi_horizon_ms } in
  let probe pb =
    attach_taps ~local
      ~mask_of:(fun () -> Inject.active_mask pb.Campaign.pb_inject)
      ~journal:pb.Campaign.pb_journal pb.Campaign.pb_eng
  in
  let oc = Campaign.run_case ~tweak:(plan_tweak opts ~shards) ~probe case in
  let failure =
    Option.map
      (fun f -> (Campaign.failure_kind f, Campaign.failure_to_string f))
      oc.Campaign.oc_failure
  in
  (match failure with
  | Some (kind, _) -> Coverage.record local ("v|plan|" ^ kind)
  | None -> ());
  {
    x_bits = Coverage.bits local;
    x_failure = failure;
    x_san_skipped = String.equal oc.Campaign.oc_sanitizer "skipped-sharded";
  }

(* The sanitizer SUTs judge through [i_check], so the violation text is
   the sanitizer's vocabulary; the explorer turns oracle exceptions
   into "oracle: ..." lines. *)
let classify_sched_violation msgs =
  let any sub = List.exists (contains_sub ~sub) msgs in
  if any "harmful race" then "race"
  else if any "lost trace" then "leak"
  else if any "oracle:" then "safety"
  else "invariant"

let exec_sched ~local (s : Input.sched_case) =
  match Sut.find s.Input.si_sut with
  | None -> { x_bits = []; x_failure = None; x_san_skipped = false }
  | Some sut ->
      let probe inst =
        let eng = inst.Explorer.i_sim.Dgc_core.Sim.eng in
        let journal =
          match Engine.journal eng with
          | Some j -> j
          | None ->
              let j = Journal.create () in
              Engine.attach_journal eng j;
              j
        in
        attach_taps ~local ~mask_of:(fun () -> 0) ~journal eng
      in
      let run =
        Explorer.run_schedule ~probe sut ~max_steps:s.Input.si_max_steps
          s.Input.si_schedule
      in
      let failure =
        Option.map
          (fun (step, msgs) ->
            let kind = classify_sched_violation msgs in
            let detail =
              Printf.sprintf "step %d: %s" step
                (match msgs with m :: _ -> m | [] -> "?")
            in
            (kind, detail))
          run.Explorer.run_violation
      in
      (match failure with
      | Some (kind, _) -> Coverage.record local ("v|schedule|" ^ kind)
      | None -> ());
      { x_bits = Coverage.bits local; x_failure = failure; x_san_skipped = false }

let execute opts ~seed ~shards input =
  let local = Coverage.create ~size:opts.o_cov_size ~seed () in
  match input with
  | Input.Plan_input p -> exec_plan opts ~local ~shards p
  | Input.Schedule_input s -> exec_sched ~local s

(* ---- shrinking and promotion ----------------------------------------- *)

let shrink_input opts ~shards input (kind, _detail) =
  match input with
  | Input.Plan_input p -> (
      let case = Input.case_of_plan ~name:"fuzz-shrink" p in
      let tweak = plan_tweak opts ~shards in
      match (Campaign.run_case ~tweak case).Campaign.oc_failure with
      | Some f ->
          let plan, _replays = Campaign.shrink_case ~tweak case f in
          Input.Plan_input { p with Input.pi_plan = plan }
      | None -> input)
  | Input.Schedule_input s ->
      let reproduces devs =
        match Sut.find s.Input.si_sut with
        | None -> false
        | Some sut -> (
            let run =
              Explorer.run_schedule sut ~max_steps:s.Input.si_max_steps devs
            in
            match run.Explorer.run_violation with
            | Some (_, msgs) ->
                String.equal (classify_sched_violation msgs) kind
            | None -> false)
      in
      let devs, _replays = Shrink.minimize ~reproduces s.Input.si_schedule in
      Input.Schedule_input { s with Input.si_schedule = devs }

let promote opts ~dir ~kind ~signature input =
  let file = Printf.sprintf "fuzz_%s_%08x.json" kind (signature land 0xffffffff) in
  let path = Filename.concat dir file in
  let meta =
    {
      Input.m_expect = Some kind;
      m_tweaks =
        (match input with
        | Input.Plan_input _ -> opts.o_tweaks
        | Input.Schedule_input _ -> []);
      m_comment =
        Some
          (Printf.sprintf
             "Auto-promoted by the coverage-guided fuzzer (seed %d): %s \
              reproducer, ddmin-shrunk; dedup key %s/%08x."
             opts.o_seed kind kind
             (signature land 0xffffffff));
    }
  in
  Input.save ~path ~meta input;
  file

(* ---- the campaign loop ----------------------------------------------- *)

type target = T_workload of string | T_sut of string

let fresh_input opts rng = function
  | T_workload w ->
      Mutate.random_plan ~rng ~workload:w ~sites:(Workloads.sites w)
        ~horizon_ms:opts.o_horizon_ms ~events:opts.o_events
  | T_sut s ->
      Mutate.random_schedule ~rng ~sut:s ~max_steps:opts.o_max_steps
        ~width:opts.o_width

let sites_of_input = function
  | Input.Plan_input p -> Workloads.sites p.Input.pi_workload
  | Input.Schedule_input _ -> 1

let campaign ~guided opts =
  let rng = Rng.create ~seed:opts.o_seed in
  let global = Coverage.create ~size:opts.o_cov_size ~seed:opts.o_seed () in
  let pool = Pool.create () in
  let targets =
    List.map (fun w -> T_workload w) opts.o_workloads
    @ List.map (fun s -> T_sut s) opts.o_suts
  in
  if targets = [] then invalid_arg "Fuzzer: no workloads and no suts";
  let ops = Hashtbl.create 16 in
  let bump op ~novel ~failed =
    let t, n, f =
      match Hashtbl.find_opt ops op with Some x -> x | None -> (0, 0, 0)
    in
    Hashtbl.replace ops op
      (t + 1, (n + if novel then 1 else 0), f + if failed then 1 else 0)
  in
  let curve = ref [] in
  let found = ref [] in
  let found_kinds = ref [] in
  let promoted = ref 0 in
  let san_skipped = ref 0 in
  let seen_sigs = ref [] in
  (* warm the pool from the seed corpus: each file costs one exec *)
  let seeds =
    if guided then
      List.filter_map
        (fun path ->
          match Input.load ~path with Ok (i, _) -> Some i | Error _ -> None)
        opts.o_corpus
    else []
  in
  let execs_done = ref 0 in
  let stop () =
    opts.o_stop_on <> []
    && List.for_all (fun k -> List.mem k !found_kinds) opts.o_stop_on
  in
  let next_input () =
    if guided && Pool.size pool > 0 && Rng.chance rng 0.5 then
      match Pool.select pool ~rng ~global with
      | Some e ->
          let mate =
            Option.map
              (fun m -> m.Pool.e_input)
              (Pool.select pool ~rng ~global)
          in
          let op, input =
            Mutate.mutate ~rng
              ~sites:(sites_of_input e.Pool.e_input)
              ~horizon_ms:opts.o_horizon_ms ~max_steps:opts.o_max_steps
              ~width:opts.o_width ?mate e.Pool.e_input
          in
          (Some op, input)
      | None -> (None, fresh_input opts rng (Rng.choose rng targets))
    else (None, fresh_input opts rng (Rng.choose rng targets))
  in
  let seed_queue = ref seeds in
  let run_one exec_ix =
    let op, input =
      match !seed_queue with
      | s :: tl ->
          seed_queue := tl;
          (None, s)
      | [] -> next_input ()
    in
    let shards =
      match opts.o_shards with
      | [] -> 1
      | l -> List.nth l (exec_ix mod List.length l)
    in
    let res = execute opts ~seed:opts.o_seed ~shards input in
    if res.x_san_skipped then incr san_skipped;
    let novel = Coverage.absorb global res.x_bits in
    if guided && novel > 0 then Pool.add pool input res.x_bits;
    (match op with
    | Some op -> bump op ~novel:(novel > 0) ~failed:(res.x_failure <> None)
    | None -> ());
    curve := Coverage.hits global :: !curve;
    match res.x_failure with
    | None -> ()
    | Some (kind, detail) ->
        if not (List.mem kind !found_kinds) then
          found_kinds := kind :: !found_kinds;
        let signature = Coverage.signature res.x_bits in
        let key = (kind, signature) in
        if not (List.mem key !seen_sigs) then begin
          seen_sigs := key :: !seen_sigs;
          let promoted_as =
            match opts.o_promote_dir with
            | Some dir when guided && shards = 1 ->
                let shrunk = shrink_input opts ~shards input (kind, detail) in
                incr promoted;
                Some (promote opts ~dir ~kind ~signature shrunk)
            | _ -> None
          in
          found :=
            {
              Report.fd_kind = kind;
              fd_input = Input.kind_name input;
              fd_exec = exec_ix;
              fd_detail = detail;
              fd_signature = signature;
              fd_promoted = promoted_as;
            }
            :: !found
        end
  in
  (try
     for i = 0 to opts.o_execs - 1 do
       if stop () then raise Exit;
       run_one i;
       incr execs_done
     done
   with Exit -> ());
  {
    Report.r_name = opts.o_name;
    r_seed = opts.o_seed;
    r_mode = (if guided then "guided" else "random");
    r_execs = !execs_done;
    r_curve = List.rev !curve;
    r_map = global;
    r_pool_size = Pool.size pool;
    r_pool_plans = Pool.plans pool;
    r_pool_schedules = Pool.schedules pool;
    r_promoted = !promoted;
    r_ops =
      Hashtbl.fold
        (fun name (t, n, f) acc ->
          { Report.op_name = name; op_tried = t; op_novel = n; op_failed = f }
          :: acc)
        ops []
      |> List.sort (fun a b -> String.compare a.Report.op_name b.Report.op_name);
    r_found = List.rev !found;
    r_san_skipped = !san_skipped;
    r_baseline = None;
  }

let run opts = campaign ~guided:true opts
let baseline opts = campaign ~guided:false opts

let with_baseline opts =
  let guided = run opts in
  (* Same budget means same budget: the random arm gets exactly the
     executions the guided arm spent (stop_on may have ended the
     guided loop early), and no early exit of its own. *)
  let random =
    baseline
      {
        opts with
        o_promote_dir = None;
        o_stop_on = [];
        o_execs = guided.Report.r_execs;
      }
  in
  {
    guided with
    Report.r_baseline =
      Some (random.Report.r_execs, Coverage.hits random.Report.r_map);
  }
