open Dgc_prelude
module Plan = Dgc_chaos.Plan

(* Clamps shared by every operator: windows open inside the first 95%
   of the horizon and last at least 1ms; probabilities stay in
   [0.05, 1] (a 0-probability drop window is a no-op that only wastes
   executions); latency factors in [1.5, 20]. *)
let clamp lo hi x = Float.max lo (Float.min hi x)
let clamp_at ~horizon_ms at = clamp 0. (0.95 *. horizon_ms) at
let clamp_dur ~horizon_ms dur = clamp 1. horizon_ms dur
let clamp_p p = clamp 0.05 1. p
let clamp_factor f = clamp 1.5 20. f

let sort_events evs =
  List.stable_sort
    (fun a b -> Float.compare a.Plan.at_ms b.Plan.at_ms)
    evs

let with_events evs = { Plan.events = sort_events evs }

let random_event rng ~sites =
  match Rng.int rng 5 with
  | 0 -> Plan.Crash { site = Rng.int rng sites }
  | 1 ->
      let all = List.init sites Fun.id in
      let left = List.filter (fun _ -> Rng.bool rng) all in
      let left = if left = [] then [ 0 ] else left in
      let right = List.filter (fun s -> not (List.mem s left)) all in
      Plan.Partition
        { groups = (if right = [] then [ left ] else [ left; right ]) }
  | 2 -> Plan.Drop { p = Rng.float_in rng 0.3 1.0 }
  | 3 -> Plan.Dup { p = Rng.float_in rng 0.2 0.8 }
  | _ -> Plan.Slow { factor = Rng.float_in rng 2. 10. }

let random_timed rng ~sites ~horizon_ms =
  {
    Plan.at_ms = Rng.float_in rng 0. (0.75 *. horizon_ms);
    dur_ms = Rng.float_in rng (horizon_ms /. 20.) (horizon_ms /. 4.);
    ev = random_event rng ~sites;
  }

(* pick the i-th event out; returns (event, rest-in-order) *)
let pick_nth l n =
  let rec go i acc = function
    | [] -> invalid_arg "pick_nth"
    | x :: tl ->
        if i = n then (x, List.rev_append acc tl) else go (i + 1) (x :: acc) tl
  in
  go 0 [] l

let plan_ops =
  [
    "shift"; "stretch"; "split"; "merge"; "perturb"; "add"; "drop"; "reseed";
    "xover";
  ]

let sched_ops = [ "dev-add"; "dev-drop"; "dev-step"; "dev-rank"; "dev-xover" ]

(* ---- plan operators -------------------------------------------------- *)

let perturb_event rng ~sites = function
  | Plan.Crash _ -> Plan.Crash { site = Rng.int rng sites }
  | Plan.Partition _ ->
      (* redraw the cut entirely; perturbing one membership rarely
         changes reachability *)
      let all = List.init sites Fun.id in
      let left = List.filter (fun _ -> Rng.bool rng) all in
      let left = if left = [] then [ 0 ] else left in
      let right = List.filter (fun s -> not (List.mem s left)) all in
      Plan.Partition
        { groups = (if right = [] then [ left ] else [ left; right ]) }
  | Plan.Drop { p } ->
      Plan.Drop { p = clamp_p (p +. Rng.float_in rng (-0.3) 0.3) }
  | Plan.Dup { p } ->
      Plan.Dup { p = clamp_p (p +. Rng.float_in rng (-0.3) 0.3) }
  | Plan.Slow { factor } ->
      Plan.Slow { factor = clamp_factor (factor *. Rng.float_in rng 0.5 2.) }

let mutate_plan ~rng ~sites ~horizon_ms ?mate (p : Input.plan_case) =
  let evs = p.Input.pi_plan.Plan.events in
  let n = List.length evs in
  let ops =
    if n = 0 then [ "add"; "reseed" ]
    else
      [ "shift"; "stretch"; "split"; "perturb"; "add"; "drop"; "reseed" ]
      @ (if n >= 2 then [ "merge" ] else [])
      @
      match mate with
      | Some (Input.Plan_input m) when m.Input.pi_plan.Plan.events <> [] ->
          [ "xover" ]
      | _ -> []
  in
  let op = Rng.choose rng ops in
  let plan' =
    match op with
    | "shift" ->
        let e, rest = pick_nth evs (Rng.int rng n) in
        let at_ms =
          clamp_at ~horizon_ms
            (e.Plan.at_ms +. Rng.float_in rng (-0.2) 0.2 *. horizon_ms)
        in
        with_events ({ e with Plan.at_ms } :: rest)
    | "stretch" ->
        let e, rest = pick_nth evs (Rng.int rng n) in
        let dur_ms =
          clamp_dur ~horizon_ms (e.Plan.dur_ms *. Rng.float_in rng 0.25 4.)
        in
        with_events ({ e with Plan.dur_ms } :: rest)
    | "split" ->
        (* one window becomes two halves with a gap between them — the
           shape that turns a steady fault into a flap *)
        let e, rest = pick_nth evs (Rng.int rng n) in
        let half = Float.max 1. (e.Plan.dur_ms /. 2.) in
        let gap = Rng.float_in rng 0. half in
        let a = { e with Plan.dur_ms = half } in
        let b =
          {
            e with
            Plan.at_ms = clamp_at ~horizon_ms (e.Plan.at_ms +. half +. gap);
            dur_ms = half;
          }
        in
        with_events (a :: b :: rest)
    | "merge" ->
        let i = Rng.int rng n in
        let j = (i + 1 + Rng.int rng (n - 1)) mod n in
        let a, rest = pick_nth evs (min i j) in
        let b, rest = pick_nth rest (max i j - 1) in
        let at_ms = Float.min a.Plan.at_ms b.Plan.at_ms in
        let close =
          Float.max
            (a.Plan.at_ms +. a.Plan.dur_ms)
            (b.Plan.at_ms +. b.Plan.dur_ms)
        in
        let merged =
          {
            Plan.at_ms;
            dur_ms = clamp_dur ~horizon_ms (close -. at_ms);
            ev = (if Rng.bool rng then a.Plan.ev else b.Plan.ev);
          }
        in
        with_events (merged :: rest)
    | "perturb" ->
        let e, rest = pick_nth evs (Rng.int rng n) in
        with_events
          ({ e with Plan.ev = perturb_event rng ~sites e.Plan.ev } :: rest)
    | "add" ->
        with_events (random_timed rng ~sites ~horizon_ms :: evs)
    | "drop" ->
        let _, rest = pick_nth evs (Rng.int rng n) in
        with_events rest
    | "reseed" -> p.Input.pi_plan
    | "xover" -> (
        match mate with
        | Some (Input.Plan_input m) ->
            (* keep a random prefix of ours, graft the mate's suffix *)
            let keep = Rng.int rng (n + 1) in
            let ours = List.filteri (fun i _ -> i < keep) evs in
            let theirs =
              List.filter
                (fun _ -> Rng.bool rng)
                m.Input.pi_plan.Plan.events
            in
            with_events (ours @ theirs)
        | _ -> assert false)
    | _ -> assert false
  in
  let seed =
    if String.equal op "reseed" then Rng.int_in rng 1 1_000_000
    else p.Input.pi_seed
  in
  (op, Input.Plan_input { p with Input.pi_plan = plan'; pi_seed = seed })

(* ---- schedule operators ---------------------------------------------- *)

let random_dev rng ~max_steps ~width =
  (Rng.int rng (max 1 max_steps), Rng.int_in rng 1 (max 1 width))

let mutate_sched ~rng ~max_steps ~width ?mate (s : Input.sched_case) =
  let devs = s.Input.si_schedule in
  let n = List.length devs in
  let ops =
    if n = 0 then [ "dev-add" ]
    else
      [ "dev-add"; "dev-drop"; "dev-step"; "dev-rank" ]
      @
      match mate with
      | Some (Input.Schedule_input m) when m.Input.si_schedule <> [] ->
          [ "dev-xover" ]
      | _ -> []
  in
  let op = Rng.choose rng ops in
  let devs' =
    match op with
    | "dev-add" -> random_dev rng ~max_steps ~width :: devs
    | "dev-drop" ->
        let _, rest = pick_nth devs (Rng.int rng n) in
        rest
    | "dev-step" ->
        let (step, rank), rest = pick_nth devs (Rng.int rng n) in
        let step =
          max 0 (min (max_steps - 1) (step + Rng.int_in rng (-8) 8))
        in
        (step, rank) :: rest
    | "dev-rank" ->
        let (step, _), rest = pick_nth devs (Rng.int rng n) in
        (step, Rng.int_in rng 1 (max 1 width)) :: rest
    | "dev-xover" -> (
        match mate with
        | Some (Input.Schedule_input m) ->
            List.filter (fun _ -> Rng.bool rng) devs
            @ List.filter (fun _ -> Rng.bool rng) m.Input.si_schedule
        | _ -> assert false)
    | _ -> assert false
  in
  let devs' = List.sort_uniq compare devs' in
  (op, Input.Schedule_input { s with Input.si_schedule = devs' })

let mutate ~rng ~sites ~horizon_ms ~max_steps ~width ?mate input =
  match input with
  | Input.Plan_input p -> mutate_plan ~rng ~sites ~horizon_ms ?mate p
  | Input.Schedule_input s -> mutate_sched ~rng ~max_steps ~width ?mate s

(* ---- fresh inputs ---------------------------------------------------- *)

let random_plan ~rng ~workload ~sites ~horizon_ms ~events =
  let seed = Rng.int_in rng 1 1_000_000 in
  Input.Plan_input
    {
      Input.pi_workload = workload;
      pi_seed = seed;
      pi_horizon_ms = horizon_ms;
      pi_plan = Plan.random ~rng ~sites ~horizon_ms ~events;
    }

let random_schedule ~rng ~sut ~max_steps ~width =
  let n = Rng.int_in rng 1 4 in
  let rec draw k acc =
    if k = 0 then acc else draw (k - 1) (random_dev rng ~max_steps ~width :: acc)
  in
  Input.Schedule_input
    {
      Input.si_sut = sut;
      si_max_steps = max_steps;
      si_schedule = List.sort_uniq compare (draw n []);
    }
