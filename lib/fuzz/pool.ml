open Dgc_prelude

type entry = { e_input : Input.t; e_bits : int list }

type t = { mutable rev : entry list; mutable n : int }

let create () = { rev = []; n = 0 }

let add t input bits =
  t.rev <- { e_input = input; e_bits = bits } :: t.rev;
  t.n <- t.n + 1

let size t = t.n
let entries t = List.rev t.rev

let count pred t =
  List.fold_left (fun k e -> if pred e.e_input then k + 1 else k) 0 t.rev

let plans t =
  count (function Input.Plan_input _ -> true | _ -> false) t

let schedules t =
  count (function Input.Schedule_input _ -> true | _ -> false) t

let select t ~rng ~global =
  match t.rev with
  | [] -> None
  | entries ->
      (* weight floor keeps fully-cold entries selectable: mutation of
         a stale input can still reach new edges *)
      let weights =
        List.map
          (fun e -> Float.max 1e-6 (Coverage.rarity global e.e_bits))
          entries
      in
      let total = List.fold_left ( +. ) 0. weights in
      let x = Rng.float_in rng 0. total in
      let rec scan acc = function
        | [ (e, _) ] -> Some e
        | (e, w) :: tl -> if acc +. w >= x then Some e else scan (acc +. w) tl
        | [] -> None
      in
      scan 0. (List.combine entries weights)
