open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core

type gid = { g_site : Site_id.t; g_seq : int }

let gid_equal a b = Site_id.equal a.g_site b.g_site && a.g_seq = b.g_seq


type Protocol.ext +=
  | Gr_probe of { gid : gid; initiator : Site_id.t }
      (** membership probe: are you free to join, and where do your
          suspected outrefs lead? *)
  | Gr_probe_reply of {
      gid : gid;
      from : Site_id.t;
      busy : bool;
      targets : Site_id.t list;
    }
  | Gr_mark_start of { gid : gid; initiator : Site_id.t; members : Site_id.t list }
  | Gr_mark of { gid : gid; refs : Oid.t list }
  | Gr_round of { gid : gid; initiator : Site_id.t }
  | Gr_round_done of { gid : gid; dirty : bool }
  | Gr_sweep of { gid : gid; initiator : Site_id.t }
  | Gr_sweep_done of { gid : gid; freed : int }
  | Gr_release of { gid : gid }

let () =
  Protocol.register_ext_kind (function
    | Gr_probe _ | Gr_probe_reply _ -> Some "gr_probe"
    | Gr_mark_start _ | Gr_mark _ | Gr_round _ | Gr_round_done _ ->
        Some "gr_mark"
    | Gr_sweep _ | Gr_sweep_done _ | Gr_release _ -> Some "gr_sweep"
    | _ -> None);
  Protocol.(
    List.iter declare
      [
        (* Group ids scope every message; a stale or duplicated one
           lands in a dissolved group and is ignored. *)
        {
          d_kind = "gr_probe";
          d_dup = Dup_idempotent;
          d_crash = Crash_timeout;
          d_commutes = "group-scoped";
        };
        {
          d_kind = "gr_mark";
          d_dup = Dup_idempotent;
          d_crash = Crash_timeout;
          d_commutes = "mark-merge";
        };
        {
          d_kind = "gr_sweep";
          d_dup = Dup_idempotent;
          d_crash = Crash_timeout;
          d_commutes = "group-scoped";
        };
      ])

type site_state = {
  gs_site : Site.t;
  mutable gs_member_of : gid option;
  gs_marked : unit Oid.Tbl.t;
  mutable gs_dirty : bool;
  mutable gs_members : Site_id.Set.t;  (** membership of the active group *)
}

type formation = {
  f_gid : gid;
  mutable f_members : Site_id.Set.t;
  mutable f_frontier : Site_id.t list;  (** probes not yet sent *)
  mutable f_waiting : int;  (** probe replies outstanding *)
  mutable f_aborted : bool;
}

type marking = {
  m_gid : gid;
  m_members : Site_id.t list;
  mutable m_round : int;
  mutable m_waiting : int;
  mutable m_all_clean : bool;
  mutable m_clean_streak : int;
  mutable m_freed : int;
}

type t = {
  eng : Engine.t;
  col : Collector.t;
  max_group : int;
  states : site_state array;
  mutable next_seq : int;
  formations : (gid, formation) Hashtbl.t;
  markings : (gid, marking) Hashtbl.t;
  mutable groups_formed : int;
  mutable groups_aborted : int;
  mutable last_group_size : int;
}

let collector t = t.col
let groups_formed t = t.groups_formed
let groups_aborted t = t.groups_aborted
let last_group_size t = t.last_group_size
let state t id = t.states.(Site_id.to_int id)
let settle_delay = Sim_time.of_seconds 1.

(* Where do this site's suspected outrefs lead? Unsorted iteration is
   fine: the dedup sorts the site ids anyway. *)
let suspect_targets st =
  let acc = ref [] in
  Tables.iter_outrefs st.gs_site.Site.tables (fun o ->
      if not (Ioref.outref_clean o) then
        acc := Oid.site o.Ioref.or_target :: !acc);
  Util.list_dedup ~compare:Site_id.compare !acc

(* ---- marking within the group ---------------------------------------- *)

let mark_from t st refs =
  let heap = st.gs_site.Site.heap in
  let outgoing = Hashtbl.create 4 in
  let stack = ref [] in
  let visit r =
    if Site_id.equal (Oid.site r) st.gs_site.Site.id then begin
      if Heap.mem heap r && not (Oid.Tbl.mem st.gs_marked r) then begin
        Oid.Tbl.add st.gs_marked r ();
        st.gs_dirty <- true;
        stack := r :: !stack
      end
    end
    else if Site_id.Set.mem (Oid.site r) st.gs_members then begin
      (* Only marks into the group matter. *)
      let dst = Oid.site r in
      let q =
        match Hashtbl.find_opt outgoing dst with
        | Some q -> q
        | None ->
            let q = ref Oid.Set.empty in
            Hashtbl.add outgoing dst q;
            q
      in
      q := Oid.Set.add r !q
    end
  in
  List.iter visit refs;
  let rec drain () =
    match !stack with
    | [] -> ()
    | r :: tl ->
        stack := tl;
        List.iter visit (Heap.fields heap r);
        drain ()
  in
  drain ();
  Hashtbl.iter
    (fun dst refs ->
      match st.gs_member_of with
      | Some gid ->
          st.gs_dirty <- true;
          Engine.send t.eng ~src:st.gs_site.Site.id ~dst
            (Protocol.Ext (Gr_mark { gid; refs = Oid.Set.elements !refs }))
      | None -> ())
    outgoing

(* Group-local roots: everything presumed live from the group's point
   of view — local roots, clean inrefs, and inrefs with any source
   outside the group. *)
let group_roots t st =
  let delta = (Engine.config t.eng).Config.delta in
  (* Unsorted: these roots seed a mark closure, so order is not
     observable. *)
  let inref_roots = ref [] in
  Tables.iter_inrefs st.gs_site.Site.tables (fun ir ->
      if
        (not ir.Ioref.ir_flagged)
        && (Ioref.inref_clean ~delta ir
           || List.exists
                (fun src -> not (Site_id.Set.mem src st.gs_members))
                (Ioref.source_sites ir))
      then inref_roots := ir.Ioref.ir_target :: !inref_roots);
  let inref_roots = !inref_roots in
  Heap.persistent_roots st.gs_site.Site.heap
  @ Engine.app_roots t.eng st.gs_site.Site.id
  @ inref_roots

let broadcast_members t ~src members make =
  List.iter
    (fun m -> Engine.send t.eng ~src ~dst:m (Protocol.Ext (make m)))
    members

let begin_mark_round t m =
  m.m_round <- m.m_round + 1;
  m.m_waiting <- List.length m.m_members;
  m.m_all_clean <- true;
  broadcast_members t ~src:m.m_gid.g_site m.m_members (fun _ ->
      Gr_round { gid = m.m_gid; initiator = m.m_gid.g_site })

let start_marking t gid members =
  t.groups_formed <- t.groups_formed + 1;
  t.last_group_size <- List.length members;
  Metrics.incr (Engine.metrics t.eng) "group.formed";
  let m =
    {
      m_gid = gid;
      m_members = members;
      m_round = 0;
      m_waiting = 0;
      m_all_clean = true;
      m_clean_streak = 0;
      m_freed = 0;
    }
  in
  Hashtbl.add t.markings gid m;
  broadcast_members t ~src:gid.g_site members (fun _ ->
      Gr_mark_start { gid; initiator = gid.g_site; members });
  Engine.schedule t.eng ~delay:settle_delay (fun () -> begin_mark_round t m)

(* ---- formation -------------------------------------------------------- *)

let rec pump_formation t f =
  if not f.f_aborted then begin
    match f.f_frontier with
    | [] ->
        if f.f_waiting = 0 then begin
          Hashtbl.remove t.formations f.f_gid;
          start_marking t f.f_gid (Site_id.Set.elements f.f_members)
        end
    | s :: rest ->
        f.f_frontier <- rest;
        if Site_id.Set.mem s f.f_members then pump_formation t f
        else if Site_id.Set.cardinal f.f_members >= t.max_group then begin
          (* Cap reached: the group cannot cover the structure. *)
          Metrics.incr (Engine.metrics t.eng) "group.capped";
          f.f_frontier <- [];
          pump_formation t f
        end
        else begin
          f.f_waiting <- f.f_waiting + 1;
          Engine.send t.eng ~src:f.f_gid.g_site ~dst:s
            (Protocol.Ext (Gr_probe { gid = f.f_gid; initiator = f.f_gid.g_site }))
        end
  end

let abort_formation t f =
  if not f.f_aborted then begin
    f.f_aborted <- true;
    Hashtbl.remove t.formations f.f_gid;
    t.groups_aborted <- t.groups_aborted + 1;
    Metrics.incr (Engine.metrics t.eng) "group.aborted";
    (* Release the sites that did join. *)
    Site_id.Set.iter
      (fun m ->
        Engine.send t.eng ~src:f.f_gid.g_site ~dst:m
          (Protocol.Ext (Gr_release { gid = f.f_gid })))
      f.f_members
  end

let maybe_initiate t site_id =
  let st = state t site_id in
  if st.gs_member_of = None then begin
    begin
      let conf = Engine.config t.eng in
      let seed =
        Tables.outrefs st.gs_site.Site.tables
        |> List.find_opt (fun o ->
               (not (Ioref.outref_clean o))
               && o.Ioref.or_dist > conf.Config.threshold2)
      in
      match seed with
      | None -> ()
      | Some seed ->
          t.next_seq <- t.next_seq + 1;
          let gid = { g_site = site_id; g_seq = t.next_seq } in
          st.gs_member_of <- Some gid;
          Oid.Tbl.reset st.gs_marked;
          st.gs_dirty <- false;
          let f =
            {
              f_gid = gid;
              f_members = Site_id.Set.singleton site_id;
              f_frontier =
                Oid.site seed.Ioref.or_target :: suspect_targets st;
              f_waiting = 0;
              f_aborted = false;
            }
          in
          Hashtbl.add t.formations gid f;
          pump_formation t f
    end
  end

(* ---- message handling ------------------------------------------------- *)

let handle t site_id ~src:_ ext =
  let st = state t site_id in
  match ext with
  | Gr_probe { gid; initiator } ->
      let busy =
        match st.gs_member_of with
        | Some g -> not (gid_equal g gid)
        | None -> false
      in
      let targets = if busy then [] else suspect_targets st in
      if not busy then begin
        st.gs_member_of <- Some gid;
        Oid.Tbl.reset st.gs_marked;
        st.gs_dirty <- false
      end;
      Engine.send t.eng ~src:site_id ~dst:initiator
        (Protocol.Ext (Gr_probe_reply { gid; from = site_id; busy; targets }));
      true
  | Gr_probe_reply { gid; from; busy; targets } -> begin
      (match Hashtbl.find_opt t.formations gid with
      | Some f ->
          f.f_waiting <- f.f_waiting - 1;
          if busy then abort_formation t f
          else begin
            f.f_members <- Site_id.Set.add from f.f_members;
            f.f_frontier <- f.f_frontier @ targets;
            pump_formation t f
          end
      | _ -> ());
      true
    end
  | Gr_release { gid } ->
      (match st.gs_member_of with
      | Some g when gid_equal g gid -> st.gs_member_of <- None
      | _ -> ());
      true
  | Gr_mark_start { gid; initiator = _; members } ->
      (match st.gs_member_of with
      | Some g when gid_equal g gid ->
          st.gs_members <- Site_id.set_of_list members;
          mark_from t st (group_roots t st)
      | _ -> ());
      true
  | Gr_mark { gid; refs } ->
      (match st.gs_member_of with
      | Some g when gid_equal g gid -> mark_from t st refs
      | _ -> ());
      true
  | Gr_round { gid; initiator } ->
      (match st.gs_member_of with
      | Some g when gid_equal g gid ->
          let dirty = st.gs_dirty in
          st.gs_dirty <- false;
          Engine.send t.eng ~src:site_id ~dst:initiator
            (Protocol.Ext (Gr_round_done { gid; dirty }))
      | _ -> ());
      true
  | Gr_round_done { gid; dirty } -> begin
      (match Hashtbl.find_opt t.markings gid with
      | Some m ->
          m.m_waiting <- m.m_waiting - 1;
          if dirty then m.m_all_clean <- false;
          if m.m_waiting = 0 then begin
            if m.m_all_clean then m.m_clean_streak <- m.m_clean_streak + 1
            else m.m_clean_streak <- 0;
            if m.m_clean_streak >= 2 then
              broadcast_members t ~src:gid.g_site m.m_members (fun _ ->
                  Gr_sweep { gid; initiator = gid.g_site })
            else
              Engine.schedule t.eng ~delay:settle_delay (fun () ->
                  match Hashtbl.find_opt t.markings gid with
                  | Some m' -> begin_mark_round t m'
                  | None -> ())
          end
      | _ -> ());
      true
    end
  | Gr_sweep { gid; initiator } ->
      (match st.gs_member_of with
      | Some g when gid_equal g gid ->
          let heap = st.gs_site.Site.heap in
          let dead =
            Heap.fold heap ~init:[] ~f:(fun acc o ->
                if Oid.Tbl.mem st.gs_marked o.Heap.oid then acc
                else Oid.index o.Heap.oid :: acc)
          in
          let freed = Heap.free heap dead in
          Metrics.add (Engine.metrics t.eng) "group.objects_freed" freed;
          st.gs_member_of <- None;
          Engine.send t.eng ~src:site_id ~dst:initiator
            (Protocol.Ext (Gr_sweep_done { gid; freed }))
      | _ -> ());
      true
  | Gr_sweep_done { gid; freed } -> begin
      (match Hashtbl.find_opt t.markings gid with
      | Some m ->
          m.m_freed <- m.m_freed + freed;
          m.m_waiting <- m.m_waiting + 1;
          if m.m_waiting >= List.length m.m_members then
            Hashtbl.remove t.markings gid
      | None -> ());
      true
    end
  | _ -> false

let try_initiate t site_id = maybe_initiate t site_id

let install eng ~max_group =
  let col = Collector.install eng in
  Collector.set_auto_back_traces col false;
  let t =
    {
      eng;
      col;
      max_group;
      states =
        Array.map
          (fun s ->
            {
              gs_site = s;
              gs_member_of = None;
              gs_marked = Oid.Tbl.create 128;
              gs_dirty = false;
              gs_members = Site_id.Set.empty;
            })
          (Engine.sites eng);
      next_seq = 0;
      formations = Hashtbl.create 4;
      markings = Hashtbl.create 4;
      groups_formed = 0;
      groups_aborted = 0;
      last_group_size = 0;
    }
  in
  (* Chain our messages in front of the collector's handler. *)
  Array.iter
    (fun st ->
      let s = st.gs_site in
      let prev = s.Site.hooks.Site.h_ext in
      s.Site.hooks.Site.h_ext <-
        (fun ~src ext ->
          if not (handle t s.Site.id ~src ext) then prev ~src ext))
    t.states;
  Collector.set_after_trace col (fun site_id -> maybe_initiate t site_id);
  t
