open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts

type Protocol.ext +=
  | H_ts_update of (Oid.t * float) list
      (** new outref timestamps for the target's inrefs *)
  | H_query of { round : int; coordinator : Site_id.t }
  | H_reply of { round : int; last_trace : float }
  | H_threshold of float

let () =
  Protocol.register_ext_kind (function
    | H_ts_update _ -> Some "h_ts"
    | H_query _ | H_reply _ | H_threshold _ -> Some "h_round"
    | _ -> None);
  Protocol.(
    List.iter declare
      [
        (* Timestamps are monotone maxima: re-applying an update or a
           threshold is absorbed, rounds are keyed by round number. *)
        {
          d_kind = "h_ts";
          d_dup = Dup_idempotent;
          d_crash = Crash_timeout;
          d_commutes = "monotone-max";
        };
        {
          d_kind = "h_round";
          d_dup = Dup_idempotent;
          d_crash = Crash_timeout;
          d_commutes = "round-scoped";
        };
      ])

type site_state = { hs_site : Site.t; mutable hs_last_trace : float }

type round = {
  r_id : int;
  mutable r_waiting : int;
  mutable r_min : float;
  r_coordinator : Site_id.t;
}

type t = {
  eng : Engine.t;
  slack : Sim_time.t;
  states : site_state array;
  mutable round : round option;
  mutable threshold : float;
  mutable rounds_done : int;
  mutable next_round : int;
}

let threshold t = t.threshold
let rounds_completed t = t.rounds_done
let state t id = t.states.(Site_id.to_int id)

(* Timestamp-propagating local trace: like the plain local trace, but
   roots are processed in decreasing timestamp order and the first
   reach of an object or outref assigns the (maximal) timestamp. *)
let hughes_trace t st =
  let site = st.hs_site in
  let heap = site.Site.heap in
  let tables = site.Site.tables in
  let now = Sim_time.to_seconds (Engine.now t.eng) in
  st.hs_last_trace <- now;
  Metrics.incr (Engine.metrics t.eng) "gc.local_traces";
  let inref_groups =
    List.filter_map
      (fun ir ->
        if ir.Ioref.ir_flagged then None
        else Some (ir.Ioref.ir_ts, [ ir.Ioref.ir_target ]))
      (Tables.inrefs tables)
  in
  let root_group =
    ( now,
      Heap.persistent_roots heap @ Engine.app_roots t.eng site.Site.id )
  in
  let groups =
    root_group :: inref_groups
    |> List.stable_sort (fun (a, _) (b, _) -> Float.compare b a)
  in
  let marked : unit Oid.Tbl.t = Oid.Tbl.create 256 in
  let out_ts : float Oid.Tbl.t = Oid.Tbl.create 32 in
  List.iter
    (fun (ts, roots) ->
      let stack = ref [] in
      let visit r =
        if Site_id.equal (Oid.site r) site.Site.id then begin
          if Heap.mem heap r && not (Oid.Tbl.mem marked r) then begin
            Oid.Tbl.add marked r ();
            stack := r :: !stack
          end
        end
        else if not (Oid.Tbl.mem out_ts r) then Oid.Tbl.add out_ts r ts
      in
      List.iter visit roots;
      let rec drain () =
        match !stack with
        | [] -> ()
        | r :: tl ->
            stack := tl;
            List.iter visit (Heap.fields heap r);
            drain ()
      in
      drain ())
    groups;
  (* Sweep local objects. *)
  let dead =
    Heap.fold heap ~init:[] ~f:(fun acc o ->
        if Oid.Tbl.mem marked o.Heap.oid then acc
        else Oid.index o.Heap.oid :: acc)
  in
  let freed = Heap.free heap dead in
  Metrics.add (Engine.metrics t.eng) "gc.objects_freed" freed;
  (* Trim outrefs and ship timestamp changes. *)
  let removals = Hashtbl.create 8 in
  let ts_changes = Hashtbl.create 8 in
  let bucket tbl dst =
    match Hashtbl.find_opt tbl dst with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add tbl dst b;
        b
  in
  List.iter
    (fun o ->
      let r = o.Ioref.or_target in
      match Oid.Tbl.find_opt out_ts r with
      | Some ts ->
          o.Ioref.or_fresh <- false;
          if ts > o.Ioref.or_ts then begin
            o.Ioref.or_ts <- ts;
            let b = bucket ts_changes (Oid.site r) in
            b := (r, ts) :: !b
          end
      | None ->
          if o.Ioref.or_pins > 0 then ()
          else if o.Ioref.or_fresh then o.Ioref.or_fresh <- false
          else begin
            Tables.remove_outref tables r;
            let b = bucket removals (Oid.site r) in
            b := r :: !b
          end)
    (Tables.outrefs tables);
  Hashtbl.iter
    (fun dst b ->
      Engine.send t.eng ~src:site.Site.id ~dst
        (Protocol.Update { removals = !b; dists = [] }))
    removals;
  Hashtbl.iter
    (fun dst b ->
      Engine.send t.eng ~src:site.Site.id ~dst
        (Protocol.Ext (H_ts_update !b)))
    ts_changes;
  Tables.iter_inrefs tables (fun ir -> ir.Ioref.ir_fresh <- false);
  site.Site.trace_epoch <- site.Site.trace_epoch + 1

let apply_threshold t st v =
  let tables = st.hs_site.Site.tables in
  Tables.iter_inrefs tables (fun ir ->
      if (not ir.Ioref.ir_fresh) && ir.Ioref.ir_ts < v then begin
        ir.Ioref.ir_flagged <- true;
        Metrics.incr (Engine.metrics t.eng) "hughes.inrefs_flagged"
      end)

let handle t site_id ~src:_ ext =
  let st = state t site_id in
  match ext with
  | H_ts_update changes ->
      List.iter
        (fun (r, ts) ->
          match Tables.find_inref st.hs_site.Site.tables r with
          | Some ir -> ir.Ioref.ir_ts <- Float.max ir.Ioref.ir_ts ts
          | None -> ())
        changes;
      true
  | H_query { round; coordinator } ->
      Engine.send t.eng ~src:site_id ~dst:coordinator
        (Protocol.Ext (H_reply { round; last_trace = st.hs_last_trace }));
      true
  | H_reply { round; last_trace } -> begin
      (match t.round with
      | Some r when r.r_id = round ->
          r.r_min <- Float.min r.r_min last_trace;
          r.r_waiting <- r.r_waiting - 1;
          if r.r_waiting = 0 then begin
            t.round <- None;
            t.rounds_done <- t.rounds_done + 1;
            let v = r.r_min -. Sim_time.to_seconds t.slack in
            if v > t.threshold then t.threshold <- v;
            Array.iter
              (fun st' ->
                Engine.send t.eng ~src:r.r_coordinator
                  ~dst:st'.hs_site.Site.id
                  (Protocol.Ext (H_threshold t.threshold)))
              t.states
          end
      | _ -> ());
      true
    end
  | H_threshold v ->
      apply_threshold t st v;
      true
  | _ -> false

let install eng ~slack =
  let t =
    {
      eng;
      slack;
      states =
        Array.map
          (fun s -> { hs_site = s; hs_last_trace = 0. })
          (Engine.sites eng);
      round = None;
      threshold = 0.;
      rounds_done = 0;
      next_round = 0;
    }
  in
  Array.iter
    (fun st ->
      let s = st.hs_site in
      s.Site.hooks.Site.h_run_local_trace <- (fun () -> hughes_trace t st);
      s.Site.hooks.Site.h_ext <-
        (fun ~src ext -> ignore (handle t s.Site.id ~src ext)))
    t.states;
  t

let run_threshold_round t ?(coordinator = Site_id.of_int 0) () =
  begin
    (* A previous round that never completed (e.g. a crashed site not
       replying) is abandoned: replies carry the round id, so stale
       ones are ignored. *)
    t.next_round <- t.next_round + 1;
    let r =
      {
        r_id = t.next_round;
        r_waiting = Array.length t.states;
        r_min = infinity;
        r_coordinator = coordinator;
      }
    in
    t.round <- Some r;
    Metrics.incr (Engine.metrics t.eng) "hughes.threshold_rounds";
    Array.iter
      (fun st ->
        Engine.send t.eng ~src:coordinator ~dst:st.hs_site.Site.id
          (Protocol.Ext (H_query { round = r.r_id; coordinator })))
      t.states
  end
