open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts

type Protocol.ext +=
  | G_round of { epoch : int; first : bool; coordinator : Site_id.t }
  | G_round_done of { epoch : int; dirty : bool }
  | G_mark of { epoch : int; refs : Oid.t list }
  | G_sweep of { epoch : int; coordinator : Site_id.t }
  | G_sweep_done of { epoch : int; freed : int }

let () =
  Protocol.register_ext_kind (function
    | G_round _ | G_round_done _ -> Some "g_round"
    | G_mark _ -> Some "g_mark"
    | G_sweep _ | G_sweep_done _ -> Some "g_sweep"
    | _ -> None);
  Protocol.(
    List.iter declare
      [
        (* Each epoch restarts on loss/crash (the coordinator re-runs
           rounds until a clean streak), so dup rounds/marks/sweeps
           merge into the epoch's mark sets idempotently. *)
        {
          d_kind = "g_round";
          d_dup = Dup_idempotent;
          d_crash = Crash_timeout;
          d_commutes = "epoch-scoped";
        };
        {
          d_kind = "g_mark";
          d_dup = Dup_idempotent;
          d_crash = Crash_timeout;
          d_commutes = "mark-merge";
        };
        {
          d_kind = "g_sweep";
          d_dup = Dup_idempotent;
          d_crash = Crash_timeout;
          d_commutes = "epoch-scoped";
        };
      ])

type site_state = {
  gs_site : Site.t;
  mutable gs_epoch : int;
  gs_marked : unit Oid.Tbl.t;
  mutable gs_dirty : bool;
}

type active = {
  a_epoch : int;
  a_coordinator : Site_id.t;
  mutable a_round : int;
  mutable a_waiting : int;
  mutable a_all_clean : bool;
  mutable a_clean_streak : int;
  mutable a_sweep_freed : int;
  a_on_done : freed:int -> rounds:int -> unit;
}

type t = {
  eng : Engine.t;
  states : site_state array;
  mutable active : active option;
}

let running t = t.active <> None
let state t id = t.states.(Site_id.to_int id)

(* Mark locally from the given references; returns marks that escaped
   to other sites, grouped by destination. *)
let mark_from st refs =
  let heap = st.gs_site.Site.heap in
  let outgoing = Hashtbl.create 8 in
  let stack = ref [] in
  let progressed = ref false in
  let visit r =
    if Site_id.equal (Oid.site r) st.gs_site.Site.id then begin
      if Heap.mem heap r && not (Oid.Tbl.mem st.gs_marked r) then begin
        Oid.Tbl.add st.gs_marked r ();
        progressed := true;
        stack := r :: !stack
      end
    end
    else begin
      let dst = Oid.site r in
      let q =
        match Hashtbl.find_opt outgoing dst with
        | Some q -> q
        | None ->
            let q = ref Oid.Set.empty in
            Hashtbl.add outgoing dst q;
            q
      in
      q := Oid.Set.add r !q
    end
  in
  List.iter visit refs;
  let rec drain () =
    match !stack with
    | [] -> ()
    | r :: tl ->
        stack := tl;
        List.iter visit (Heap.fields heap r);
        drain ()
  in
  drain ();
  (outgoing, !progressed)

let send_marks t st outgoing =
  Hashtbl.iter
    (fun dst refs ->
      if not (Oid.Set.is_empty !refs) then begin
        st.gs_dirty <- true;
        Engine.send t.eng ~src:st.gs_site.Site.id ~dst
          (Protocol.Ext
             (G_mark { epoch = st.gs_epoch; refs = Oid.Set.elements !refs }))
      end)
    outgoing

let broadcast t ~src make =
  Array.iter
    (fun st ->
      Engine.send t.eng ~src ~dst:st.gs_site.Site.id
        (Protocol.Ext (make st.gs_site.Site.id)))
    t.states

let begin_round t a =
  a.a_round <- a.a_round + 1;
  a.a_waiting <- Array.length t.states;
  a.a_all_clean <- true;
  broadcast t ~src:a.a_coordinator (fun _ ->
      G_round
        { epoch = a.a_epoch; first = a.a_round = 1; coordinator = a.a_coordinator })

let settle_delay = Sim_time.of_seconds 1.

let handle t site_id ~src:_ ext =
  let st = state t site_id in
  match ext with
  | G_round { epoch; first; coordinator } ->
      st.gs_epoch <- epoch;
      if first then begin
        Oid.Tbl.reset st.gs_marked;
        st.gs_dirty <- false;
        let roots =
          Heap.persistent_roots st.gs_site.Site.heap
          @ Engine.app_roots t.eng site_id
        in
        let outgoing, _ = mark_from st roots in
        send_marks t st outgoing
      end;
      let dirty = st.gs_dirty in
      st.gs_dirty <- false;
      Engine.send t.eng ~src:site_id ~dst:coordinator
        (Protocol.Ext (G_round_done { epoch; dirty }));
      true
  | G_mark { epoch; refs } ->
      if epoch = st.gs_epoch then begin
        let outgoing, progressed = mark_from st refs in
        if progressed then st.gs_dirty <- true;
        send_marks t st outgoing
      end;
      true
  | G_round_done { epoch; dirty } -> begin
      (match t.active with
      | Some a when a.a_epoch = epoch ->
          a.a_waiting <- a.a_waiting - 1;
          if dirty then a.a_all_clean <- false;
          if a.a_waiting = 0 then begin
            if a.a_all_clean then a.a_clean_streak <- a.a_clean_streak + 1
            else a.a_clean_streak <- 0;
            if a.a_clean_streak >= 2 then begin
              a.a_waiting <- Array.length t.states;
              broadcast t ~src:a.a_coordinator (fun _ ->
                  G_sweep { epoch; coordinator = a.a_coordinator })
            end
            else
              (* Give in-flight marks time to land before re-probing. *)
              Engine.schedule t.eng ~delay:settle_delay (fun () ->
                  match t.active with
                  | Some a' when a'.a_epoch = epoch -> begin_round t a'
                  | _ -> ())
          end
      | _ -> ());
      true
    end
  | G_sweep { epoch; coordinator } ->
      let heap = st.gs_site.Site.heap in
      let dead =
        Heap.fold heap ~init:[] ~f:(fun acc o ->
            if Oid.Tbl.mem st.gs_marked o.Heap.oid then acc
            else Oid.index o.Heap.oid :: acc)
      in
      let freed = Heap.free heap dead in
      Metrics.add (Engine.metrics t.eng) "global.objects_freed" freed;
      ignore epoch;
      Engine.send t.eng ~src:site_id ~dst:coordinator
        (Protocol.Ext (G_sweep_done { epoch; freed }));
      true
  | G_sweep_done { epoch; freed } -> begin
      (match t.active with
      | Some a when a.a_epoch = epoch ->
          a.a_sweep_freed <- a.a_sweep_freed + freed;
          a.a_waiting <- a.a_waiting - 1;
          if a.a_waiting = 0 then begin
            t.active <- None;
            a.a_on_done ~freed:a.a_sweep_freed ~rounds:a.a_round
          end
      | _ -> ());
      true
    end
  | _ -> false

let install eng =
  Local_gc.install eng;
  let t =
    {
      eng;
      states =
        Array.map
          (fun s ->
            {
              gs_site = s;
              gs_epoch = -1;
              gs_marked = Oid.Tbl.create 256;
              gs_dirty = false;
            })
          (Engine.sites eng);
      active = None;
    }
  in
  Array.iter
    (fun st ->
      st.gs_site.Site.hooks.Site.h_ext <-
        (fun ~src ext ->
          ignore (handle t st.gs_site.Site.id ~src ext)))
    t.states;
  t

let epoch_counter = ref 0

let collect t ?(coordinator = Site_id.of_int 0) ~on_done () =
  if t.active <> None then invalid_arg "Global_trace.collect: already running";
  incr epoch_counter;
  let a =
    {
      a_epoch = !epoch_counter;
      a_coordinator = coordinator;
      a_round = 0;
      a_waiting = 0;
      a_all_clean = true;
      a_clean_streak = 0;
      a_sweep_freed = 0;
      a_on_done = on_done;
    }
  in
  t.active <- Some a;
  Metrics.incr (Engine.metrics t.eng) "global.collections";
  begin_round t a
