open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core

type Protocol.ext +=
  | M_migrate of {
      old_oid : Oid.t;
      fields : Oid.t list;
      size : int;
      from : Site_id.t;
    }
  | M_ack of { old_oid : Oid.t }

let () =
  Protocol.register_ext_kind (function
    | M_migrate _ | M_ack _ -> Some "migrate"
    | _ -> None);
  (* A migrating object's referents must stay live while it flies. *)
  Protocol.register_ext_refs (function
    | M_migrate { fields; _ } -> Some fields
    | M_ack _ -> Some []
    | _ -> None);
  (* A migration is keyed by the old oid: a duplicate finds the object
     already forwarded and only re-acks; an unacked migration is
     retried by the next collector pass. *)
  Protocol.declare
    {
      d_kind = "migrate";
      d_dup = Dup_dedup;
      d_crash = Crash_timeout;
      d_commutes = "per-object";
    }

type t = {
  eng : Engine.t;
  col : Collector.t;
  mutable migrations : int;
  mutable bytes_moved : int;
  mutable skipped : int;
  mutable in_flight : int;  (** migrations awaiting ack *)
}

let collector t = t.col
let migrations t = t.migrations
let bytes_moved t = t.bytes_moved
let skipped_multi_holder t = t.skipped

(* Register a cross-site reference now held at [holder] (the engine's
   insert protocol in miniature, applied synchronously: migration is a
   controlled operation and both table updates belong to it). *)
let register_ref t ~holder r =
  if not (Site_id.equal (Oid.site r) holder) then begin
    let holder_site = Engine.site t.eng holder in
    ignore (Tables.ensure_outref holder_site.Site.tables r);
    let owner = Engine.site t.eng (Oid.site r) in
    let ir = Tables.ensure_inref owner.Site.tables r in
    Ioref.add_source ir holder ~dist:1
  end

let arrive t site_id ~old_oid ~fields ~size ~from =
  let site = Engine.site t.eng site_id in
  let heap = site.Site.heap in
  (* Materialize the migrated object under a fresh local identity. *)
  let fresh = Heap.alloc ~size heap in
  let rewritten =
    List.map (fun z -> if Oid.equal z old_oid then fresh else z) fields
  in
  List.iter (fun z -> Heap.add_field heap ~obj:fresh ~target:z) rewritten;
  List.iter (fun z -> register_ref t ~holder:site_id z) rewritten;
  (* Patch every local reference to the old identity. *)
  Heap.iter heap (fun o ->
      if not (Oid.equal o.Heap.oid fresh) then
        o.Heap.fields <-
          List.map
            (fun z -> if Oid.equal z old_oid then fresh else z)
            o.Heap.fields);
  (* The outref for the old object is dead now. *)
  Tables.remove_outref site.Site.tables old_oid;
  Metrics.incr (Engine.metrics t.eng) "migration.arrivals";
  Engine.send t.eng ~src:site_id ~dst:from (Protocol.Ext (M_ack { old_oid }))

let handle t site_id ~src:_ ext =
  match ext with
  | M_migrate { old_oid; fields; size; from } ->
      arrive t site_id ~old_oid ~fields ~size ~from;
      true
  | M_ack { old_oid = _ } ->
      t.in_flight <- t.in_flight - 1;
      true
  | _ -> false

let try_migrate t site_id =
  let conf = Engine.config t.eng in
  let site = Engine.site t.eng site_id in
  let heap = site.Site.heap in
  let candidates =
    Tables.inrefs site.Site.tables
    |> List.filter (fun ir ->
           (not ir.Ioref.ir_flagged)
           && (not (Ioref.inref_clean ~delta:conf.Config.delta ir))
           && Ioref.inref_dist ir > conf.Config.threshold2
           && Heap.mem heap ir.Ioref.ir_target)
  in
  List.iter
    (fun ir ->
      match Ioref.source_sites ir with
      | [ dst ] when Site_id.compare dst site_id < 0 ->
          (* Monotone destinations (downhill in site order): without a
             total order, concurrent migrations on a cycle rotate it
             around the ring forever instead of collapsing it — the
             "controlled" part of ML95's controlled migration. *)
          let r = ir.Ioref.ir_target in
          let obj = Heap.get heap r in
          let fields = obj.Heap.fields in
          let size = obj.Heap.size in
          (* Only migrate if no local object still references it —
             otherwise local holders would dangle (they keep it live
             anyway, so it will be reconsidered later). *)
          let locally_held =
            Heap.fold heap ~init:false ~f:(fun acc o ->
                acc
                || (not (Oid.equal o.Heap.oid r))
                   && List.exists (Oid.equal r) o.Heap.fields)
          in
          if not locally_held then begin
            t.migrations <- t.migrations + 1;
            t.bytes_moved <- t.bytes_moved + size + List.length fields;
            t.in_flight <- t.in_flight + 1;
            Metrics.incr (Engine.metrics t.eng) "migration.departures";
            Metrics.add (Engine.metrics t.eng) "migration.bytes"
              (size + List.length fields);
            (* Remove locally: the object now lives at [dst]. *)
            ignore (Heap.free heap [ Oid.index r ]);
            Tables.remove_inref site.Site.tables r;
            Engine.send t.eng ~src:site_id ~dst
              (Protocol.Ext
                 (M_migrate { old_oid = r; fields; size; from = site_id }))
          end
      | [] | [ _ ] -> ()
      | _ :: _ :: _ -> t.skipped <- t.skipped + 1)
    candidates

let install eng =
  let col = Collector.install eng in
  Collector.set_auto_back_traces col false;
  let t =
    {
      eng;
      col;
      migrations = 0;
      bytes_moved = 0;
      skipped = 0;
      in_flight = 0;
    }
  in
  Array.iter
    (fun s ->
      let prev = s.Site.hooks.Site.h_ext in
      s.Site.hooks.Site.h_ext <-
        (fun ~src ext ->
          if not (handle t s.Site.id ~src ext) then prev ~src ext))
    (Engine.sites eng);
  Collector.set_after_trace col (fun site_id -> try_migrate t site_id);
  t
