(* Observatory: watching a live system through the operator surface.

     dune exec examples/observatory.exe

   Runs randomized mutator churn under the collector and periodically
   prints the per-site summary, the oracle's garbage overview and an
   audit of the paper's §6 invariants — the kind of dashboard a real
   deployment would expose. Ends with a Graphviz dump of whatever
   object graph is left. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload

let say fmt = Format.printf (fmt ^^ "@.")

let () =
  let cfg =
    {
      Config.default with
      Config.n_sites = 4;
      seed = 1234;
      trace_interval = Sim_time.of_seconds 10.;
      trace_duration = Sim_time.of_seconds 1.;
      delta = 3;
      threshold2 = 7;
      threshold_bump = 5;
    }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  Array.iter (fun st -> ignore (Builder.root_obj eng st.Site.id)) (Engine.sites eng);
  ignore
    (Graph_gen.random_graph eng ~rng:(Rng.create ~seed:55) ~objects_per_site:10
       ~out_degree:1.4 ~remote_frac:0.35 ~root_frac:0.1);
  let churn =
    Churn.start sim ~rng:(Rng.create ~seed:56) ~agents:3
      ~mean_op_gap:(Sim_time.of_millis 300.)
  in
  Sim.start sim;

  for minute = 1 to 5 do
    Sim.run_for sim (Sim_time.of_minutes 1.);
    say "";
    say "== t = %d min, %d mutator ops so far ==" minute (Churn.ops_done churn);
    say "%a" Report.pp_summary eng;
    say "oracle: %s" (Report.garbage_overview eng)
  done;

  say "";
  say "Stopping the mutators and letting the collector finish...";
  Churn.stop churn;
  ignore (Sim.collect_all sim ~max_rounds:60 ());
  say "oracle: %s" (Report.garbage_overview eng);

  (* Audit: converged state must satisfy the paper's invariants. *)
  Scenario.settle sim ~rounds:6;
  (match Invariants.strings (Invariants.check_all eng) with
  | [] -> say "invariant audit: all of §6's invariants hold"
  | vs ->
      say "invariant audit: %d violations!" (List.length vs);
      List.iter (fun v -> say "  %s" v) vs);
  (match Dgc_oracle.Oracle.table_violations eng with
  | [] -> say "table integrity: ok"
  | vs -> say "table integrity: %d violations" (List.length vs));

  let path = Filename.temp_file "dgc_observatory" ".dot" in
  let oc = open_out path in
  output_string oc (Report.to_dot eng);
  close_out oc;
  say "";
  say "Final object graph written to %s (render with `dot -Tsvg`)." path;
  let m = Engine.metrics eng in
  say "Session: %d msgs, %d local traces, %d objects freed, %d back traces."
    (Metrics.get m "msg.total")
    (Metrics.get m "gc.local_traces")
    (Metrics.get m "gc.objects_freed")
    (Metrics.get m "back.traces_started")
