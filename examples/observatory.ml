(* Observatory: watching a live system through the operator surface.

     dune exec examples/observatory.exe

   Runs randomized mutator churn under the collector and periodically
   prints the per-site summary, the oracle's garbage overview, the
   back-trace latency/frames histograms and the live span counts — the
   kind of dashboard a real deployment would expose. Ends with an
   invariant audit, a span log (JSONL + Chrome trace-event, loadable in
   ui.perfetto.dev) and a Graphviz dump of whatever object graph is
   left. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload
open Dgc_telemetry
module Obs = Dgc_observe

let say fmt = Format.printf (fmt ^^ "@.")

let pp_hist m name =
  match Metrics.hist_stats m name with
  | None -> ()
  | Some h ->
      say "  %-28s n=%-4d p50=%-8.3g p95=%-8.3g p99=%-8.3g max=%.3g" name
        h.Metrics.n h.Metrics.p50 h.Metrics.p95 h.Metrics.p99 h.Metrics.max

let () =
  let cfg =
    {
      Config.default with
      Config.n_sites = 4;
      seed = 1234;
      trace_interval = Sim_time.of_seconds 10.;
      trace_duration = Sim_time.of_seconds 1.;
      delta = 3;
      threshold2 = 7;
      threshold_bump = 5;
    }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  let tracer = Tracer.create () in
  Engine.attach_tracer eng tracer;
  Engine.attach_journal eng
    (Journal.create ~capacity:cfg.Config.journal_capacity ());
  Array.iter (fun st -> ignore (Builder.root_obj eng st.Site.id)) (Engine.sites eng);
  ignore
    (Graph_gen.random_graph eng ~rng:(Rng.create ~seed:55) ~objects_per_site:10
       ~out_degree:1.4 ~remote_frac:0.35 ~root_frac:0.1);
  (* An unrooted inter-site ring: distributed cyclic garbage only back
     tracing can reclaim, so the span dashboard has something to show. *)
  ignore
    (Graph_gen.ring eng
       ~sites:(List.init cfg.Config.n_sites Site_id.of_int)
       ~per_site:2 ~rooted:false);
  let churn =
    Churn.start sim ~rng:(Rng.create ~seed:56) ~agents:3
      ~mean_op_gap:(Sim_time.of_millis 300.)
  in
  (* The watchdog rides the engine's step hook: stuck frames/traces,
     starved thresholds and long-surviving garbage turn into journal
     warnings, watchdog.* counters and the live alert feed below. *)
  let wd = Obs.Watchdog.attach sim.Sim.col in
  Sim.start sim;

  let m = Engine.metrics eng in
  for minute = 1 to 5 do
    Sim.run_for sim (Sim_time.of_minutes 1.);
    say "";
    say "== t = %d min, %d mutator ops so far ==" minute (Churn.ops_done churn);
    say "%a" Report.pp_summary eng;
    say "oracle: %s" (Report.garbage_overview eng);
    say "spans: %d recorded, %d still open" (Tracer.span_count tracer)
      (Tracer.open_count tracer);
    pp_hist m "back.latency_ms";
    pp_hist m "back.frames_per_trace";
    pp_hist m "trace.outset_memo_hit_rate";
    say "%a" Obs.Watchdog.pp wd
  done;

  say "";
  say "Stopping the mutators and letting the collector finish...";
  Churn.stop churn;
  ignore (Sim.collect_all sim ~max_rounds:60 ());
  say "oracle: %s" (Report.garbage_overview eng);

  (* Why-not-collected audit: every garbage component that survived
     gets a verdict backed by span/journal/state evidence. *)
  let audit = Obs.Audit.run sim.Sim.col in
  say "%a" Obs.Audit.pp audit;

  (* Audit: converged state must satisfy the paper's invariants. *)
  Scenario.settle sim ~rounds:6;
  (match Invariants.strings (Invariants.check_all eng) with
  | [] -> say "invariant audit: all of §6's invariants hold"
  | vs ->
      say "invariant audit: %d violations!" (List.length vs);
      List.iter (fun v -> say "  %s" v) vs;
      (* The journal tail is the first diagnostic an operator reads. *)
      (match Engine.journal eng with
      | Some j ->
          List.iter
            (fun e -> say "  | %a" Journal.pp_entry e)
            (Journal.entries ~last:15 j)
      | None -> ()));
  (match Dgc_oracle.Oracle.table_violations eng with
  | [] -> say "table integrity: ok"
  | vs -> say "table integrity: %d violations" (List.length vs));

  let dot_path = Filename.temp_file "dgc_observatory" ".dot" in
  let oc = open_out dot_path in
  output_string oc (Report.to_dot eng);
  close_out oc;
  let spans_path = Filename.temp_file "dgc_observatory" ".jsonl" in
  Tracer.write_jsonl tracer ~path:spans_path;
  let chrome_path = Filename.temp_file "dgc_observatory" ".json" in
  Tracer.write_chrome tracer ~path:chrome_path;
  say "";
  say "Final object graph written to %s (render with `dot -Tsvg`)." dot_path;
  say "Span log written to %s (JSONL) and %s (Chrome trace-event; load \
       in ui.perfetto.dev)."
    spans_path chrome_path;
  say "Session: %d msgs, %d local traces, %d objects freed, %d back traces, \
       %d spans."
    (Metrics.get m "msg.total")
    (Metrics.get m "gc.local_traces")
    (Metrics.get m "gc.objects_freed")
    (Metrics.get m "back.traces_started")
    (Tracer.span_count tracer)
