let list_sum f l = List.fold_left (fun acc x -> acc + f x) 0 l

let list_max ~default f l =
  List.fold_left (fun acc x -> max acc (f x)) default l

let list_mean = function
  | [] -> 0.
  | xs -> List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let list_take n l =
  let rec loop n acc = function
    | [] -> List.rev acc
    | _ when n <= 0 -> List.rev acc
    | x :: tl -> loop (n - 1) (x :: acc) tl
  in
  loop n [] l

let list_dedup ~compare l =
  let sorted = List.sort compare l in
  let rec loop acc = function
    | [] -> List.rev acc
    | [ x ] -> List.rev (x :: acc)
    | x :: (y :: _ as tl) ->
        if compare x y = 0 then loop acc tl else loop (x :: acc) tl
  in
  loop [] sorted

let hashtbl_keys tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []
let hashtbl_values tbl = Hashtbl.fold (fun _ v acc -> v :: acc) tbl []

let percentile p = function
  | [] -> 0.
  | xs ->
      let sorted = List.sort Float.compare xs in
      let n = List.length sorted in
      let rank =
        int_of_float (ceil (p *. float_of_int n)) |> max 1 |> min n
      in
      List.nth sorted (rank - 1)
