type t = { initiator : Site_id.t; seq : int }

let make ~initiator ~seq = { initiator; seq }

let equal a b = Site_id.equal a.initiator b.initiator && Int.equal a.seq b.seq

let compare a b =
  match Site_id.compare a.initiator b.initiator with
  | 0 -> Int.compare a.seq b.seq
  | c -> c

let pp ppf t = Format.fprintf ppf "T%a.%d" Site_id.pp t.initiator t.seq

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)
