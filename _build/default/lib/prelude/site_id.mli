(** Site identifiers.

    A site is one node of the distributed object store. Sites are
    numbered densely from 0 so that simulator state can live in arrays
    indexed by site id. *)

type t = private int

val of_int : int -> t
(** [of_int i] is the id of site [i]. Raises [Invalid_argument] if
    [i < 0]. *)

val to_int : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t

val set_of_list : t list -> Set.t
