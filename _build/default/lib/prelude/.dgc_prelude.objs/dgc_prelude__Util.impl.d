lib/prelude/util.ml: Float Hashtbl List
