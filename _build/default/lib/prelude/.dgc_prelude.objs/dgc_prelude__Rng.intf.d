lib/prelude/rng.mli:
