lib/prelude/trace_id.mli: Format Map Set Site_id
