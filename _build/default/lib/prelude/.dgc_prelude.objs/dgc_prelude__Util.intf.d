lib/prelude/util.mli: Hashtbl
