lib/prelude/site_id.ml: Format Int Map Set
