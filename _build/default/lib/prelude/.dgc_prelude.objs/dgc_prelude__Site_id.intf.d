lib/prelude/site_id.mli: Format Map Set
