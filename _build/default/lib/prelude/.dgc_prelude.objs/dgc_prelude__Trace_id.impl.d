lib/prelude/trace_id.ml: Format Int Map Set Site_id
