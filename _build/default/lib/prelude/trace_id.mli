(** Back-trace identifiers.

    Each back trace is identified by the site that initiated it and a
    per-site sequence number (§4.7: "The site starting a trace assigns
    it a unique id"). *)

type t = { initiator : Site_id.t; seq : int }

val make : initiator:Site_id.t -> seq:int -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
