type t = int

let of_int i =
  if i < 0 then invalid_arg "Site_id.of_int: negative";
  i

let to_int i = i
let equal = Int.equal
let compare = Int.compare
let hash i = i
let pp ppf i = Format.fprintf ppf "S%d" i

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

let set_of_list l = Set.of_list l
