(** Small general-purpose helpers shared across the libraries. *)

val list_sum : ('a -> int) -> 'a list -> int
val list_max : default:int -> ('a -> int) -> 'a list -> int
val list_mean : float list -> float
(** Arithmetic mean; 0. on the empty list. *)

val list_take : int -> 'a list -> 'a list
val list_dedup : compare:('a -> 'a -> int) -> 'a list -> 'a list
(** Sort and remove duplicates. *)

val hashtbl_keys : ('a, 'b) Hashtbl.t -> 'a list
val hashtbl_values : ('a, 'b) Hashtbl.t -> 'b list

val percentile : float -> float list -> float
(** [percentile p xs] for [p] in [0,1]; nearest-rank on the sorted
    sample; 0. on the empty list. *)
