open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts

type Protocol.ext +=
  | Back_call of {
      trace : Trace_id.t;
      r : Oid.t;
      reply_site : Site_id.t;
      reply_frame : int;
      call_seq : int;
    }
  | Back_reply of {
      trace : Trace_id.t;
      reply_frame : int;
      call_seq : int;
      verdict : Verdict.t;
      participants : Site_id.Set.t;
    }
  | Back_report of { trace : Trace_id.t; outcome : Verdict.t }

let () =
  Protocol.register_ext_kind (function
    | Back_call _ -> Some "back_call"
    | Back_reply _ -> Some "back_reply"
    | Back_report _ -> Some "back_report"
    | _ -> None)

module Int_set = Set.Make (Int)

type parent =
  | P_initiator
  | P_local of int
  | P_remote of { site : Site_id.t; frame : int; call_seq : int }

type frame = {
  fr_id : int;
  fr_trace : Trace_id.t;
  fr_parent : parent;
  fr_ioref : Oid.t;
  mutable fr_pending : int;
  mutable fr_result : Verdict.t;
  mutable fr_participants : Site_id.Set.t;
  mutable fr_done : bool;
  mutable fr_calls : Int_set.t;
}

type site_state = {
  ss_site : Site.t;
  frames : (int, frame) Hashtbl.t;
  mutable next_frame : int;
  mutable next_call : int;
  mutable next_trace : int;
  (* iorefs this site has marked visited, per trace, for the report
     phase and the TTL cleanup *)
  visited_refs : (Trace_id.t, Oid.t list ref) Hashtbl.t;
}

type trace_stat = {
  ts_initiator : Site_id.t;
  ts_root : Oid.t;
  ts_started : Sim_time.t;
  mutable ts_msgs : int;
  mutable ts_calls : int;
  mutable ts_participants : Site_id.Set.t;
  mutable ts_outcome : (Verdict.t * Sim_time.t) option;
}

type shared = {
  eng : Engine.t;
  states : site_state array;
  tstats : (Trace_id.t, trace_stat) Hashtbl.t;
  mutable observers : (Trace_id.t -> Verdict.t -> Site_id.Set.t -> unit) list;
}

let create eng =
  {
    eng;
    states =
      Array.map
        (fun s ->
          {
            ss_site = s;
            frames = Hashtbl.create 16;
            next_frame = 0;
            next_call = 0;
            next_trace = 0;
            visited_refs = Hashtbl.create 8;
          })
        (Engine.sites eng);
    tstats = Hashtbl.create 16;
    observers = [];
  }

let state sh id = sh.states.(Site_id.to_int id)
let on_outcome sh f = sh.observers <- f :: sh.observers

let bump_stat sh trace f =
  match Hashtbl.find_opt sh.tstats trace with Some s -> f s | None -> ()

let send_back sh ~src ~dst trace ext =
  bump_stat sh trace (fun s -> s.ts_msgs <- s.ts_msgs + 1);
  Metrics.incr (Engine.metrics sh.eng) "back.msgs";
  Engine.send sh.eng ~src ~dst (Protocol.Ext ext)

let self_id st = st.ss_site.Site.id
let tables st = st.ss_site.Site.tables
let delta sh = (Engine.config sh.eng).Config.delta
let bump sh = (Engine.config sh.eng).Config.threshold_bump

let new_frame st trace parent ioref =
  let fr =
    {
      fr_id = st.next_frame;
      fr_trace = trace;
      fr_parent = parent;
      fr_ioref = ioref;
      fr_pending = 0;
      fr_result = Verdict.Garbage;
      fr_participants = Site_id.Set.empty;
      fr_done = false;
      fr_calls = Int_set.empty;
    }
  in
  st.next_frame <- st.next_frame + 1;
  Hashtbl.add st.frames fr.fr_id fr;
  fr

(* The whole message-driven machine is one recursive knot: finishing a
   frame feeds its parent, which may finish in turn, up to the
   initiator's report phase. *)
let rec finish sh st fr v =
  if not fr.fr_done then begin
    fr.fr_done <- true;
    Hashtbl.remove st.frames fr.fr_id;
    let parts = Site_id.Set.add (self_id st) fr.fr_participants in
    match fr.fr_parent with
    | P_local pid -> begin
        match Hashtbl.find_opt st.frames pid with
        | Some p -> child_done sh st p v parts
        | None -> ()
      end
    | P_remote { site; frame; call_seq } ->
        send_back sh ~src:(self_id st) ~dst:site fr.fr_trace
          (Back_reply
             {
               trace = fr.fr_trace;
               reply_frame = frame;
               call_seq;
               verdict = v;
               participants = parts;
             })
    | P_initiator -> conclude sh st fr.fr_trace v parts
  end

and child_done sh st fr v parts =
  if not fr.fr_done then begin
    fr.fr_participants <- Site_id.Set.union fr.fr_participants parts;
    fr.fr_result <- Verdict.merge fr.fr_result v;
    fr.fr_pending <- fr.fr_pending - 1;
    match v with
    | Verdict.Live ->
        (* Live short-circuits the frame (§4.4's early return). *)
        finish sh st fr Verdict.Live
    | Verdict.Garbage ->
        if fr.fr_pending <= 0 then finish sh st fr fr.fr_result
  end

and return_to sh st trace parent v =
  let parts = Site_id.Set.singleton (self_id st) in
  match parent with
  | P_local pid -> begin
      match Hashtbl.find_opt st.frames pid with
      | Some p -> child_done sh st p v parts
      | None -> ()
    end
  | P_remote { site; frame; call_seq } ->
      send_back sh ~src:(self_id st) ~dst:site trace
        (Back_reply
           { trace; reply_frame = frame; call_seq; verdict = v; participants = parts })
  | P_initiator -> conclude sh st trace v parts

and conclude sh st trace outcome parts =
  Engine.jlog sh.eng ~cat:"back" "%a concluded %a (%d participants)"
    Trace_id.pp trace Verdict.pp outcome (Site_id.Set.cardinal parts);
  let metrics = Engine.metrics sh.eng in
  Metrics.incr metrics
    (match outcome with
    | Verdict.Garbage -> "back.outcome_garbage"
    | Verdict.Live -> "back.outcome_live");
  bump_stat sh trace (fun s ->
      s.ts_outcome <- Some (outcome, Engine.now sh.eng);
      s.ts_participants <- parts);
  List.iter (fun f -> f trace outcome parts) sh.observers;
  (* Report phase (§4.5): inform every participant. *)
  Site_id.Set.iter
    (fun p ->
      if not (Site_id.equal p (self_id st)) then
        send_back sh ~src:(self_id st) ~dst:p trace
          (Back_report { trace; outcome }))
    parts;
  apply_report sh st trace outcome

and apply_report sh st trace outcome =
  (match Hashtbl.find_opt st.visited_refs trace with
  | None -> ()
  | Some l ->
      Hashtbl.remove st.visited_refs trace;
      List.iter
        (fun r ->
          if Site_id.equal (Oid.site r) (self_id st) then begin
            match Tables.find_inref (tables st) r with
            | None -> ()
            | Some ir ->
                ir.Ioref.ir_visited <-
                  Trace_id.Set.remove trace ir.Ioref.ir_visited;
                if Verdict.equal outcome Verdict.Garbage then begin
                  ir.Ioref.ir_flagged <- true;
                  Metrics.incr (Engine.metrics sh.eng) "back.inrefs_flagged";
                  Engine.jlog sh.eng ~cat:"back" "inref %a flagged garbage"
                    Oid.pp r
                end
          end
          else
            match Tables.find_outref (tables st) r with
            | None -> ()
            | Some o ->
                o.Ioref.or_visited <-
                  Trace_id.Set.remove trace o.Ioref.or_visited)
        !l);
  (* Drop any leftover frames of this trace at this site. *)
  let leftovers =
    Hashtbl.fold
      (fun id fr acc -> if Trace_id.equal fr.fr_trace trace then id :: acc else acc)
      st.frames []
  in
  List.iter
    (fun id ->
      match Hashtbl.find_opt st.frames id with
      | Some fr ->
          fr.fr_done <- true;
          Hashtbl.remove st.frames id
      | None -> ())
    leftovers

and record_visit sh st trace r =
  match Hashtbl.find_opt st.visited_refs trace with
  | Some l -> l := r :: !l
  | None ->
      let l = ref [ r ] in
      Hashtbl.add st.visited_refs trace l;
      let ttl = (Engine.config sh.eng).Config.visited_ttl in
      Engine.schedule sh.eng ~delay:ttl (fun () ->
          if Hashtbl.mem st.visited_refs trace then begin
            (* Never heard the outcome: assume Live (§4.6). *)
            Metrics.incr (Engine.metrics sh.eng) "back.visited_ttl_expired";
            apply_report sh st trace Verdict.Live
          end)

(* BackStepLocal (§4.4): [r] names an outref of this site. *)
and step_local sh st trace r parent =
  match Tables.find_outref (tables st) r with
  | None ->
      (* ioref deleted by the collector: garbage. *)
      return_to sh st trace parent Verdict.Garbage
  | Some o ->
      if Ioref.outref_clean o then return_to sh st trace parent Verdict.Live
      else if Trace_id.Set.mem trace o.Ioref.or_visited then
        return_to sh st trace parent Verdict.Garbage
      else begin
        o.Ioref.or_visited <- Trace_id.Set.add trace o.Ioref.or_visited;
        o.Ioref.or_back_threshold <- o.Ioref.or_back_threshold + bump sh;
        record_visit sh st trace r;
        let fr = new_frame st trace parent r in
        match o.Ioref.or_inset with
        | [] -> finish sh st fr Verdict.Garbage
        | inset ->
            fr.fr_pending <- List.length inset;
            List.iter
              (fun i -> step_remote sh st trace i (P_local fr.fr_id))
              inset
      end

(* BackStepRemote (§4.4): [i] names an inref of this site; branch
   calls go to every source site in parallel. *)
and step_remote sh st trace i parent =
  match Tables.find_inref (tables st) i with
  | None -> return_to sh st trace parent Verdict.Garbage
  | Some ir ->
      if ir.Ioref.ir_flagged then
        (* Already confirmed garbage by an earlier trace. *)
        return_to sh st trace parent Verdict.Garbage
      else if Ioref.inref_clean ~delta:(delta sh) ir then
        return_to sh st trace parent Verdict.Live
      else if Trace_id.Set.mem trace ir.Ioref.ir_visited then
        return_to sh st trace parent Verdict.Garbage
      else begin
        ir.Ioref.ir_visited <- Trace_id.Set.add trace ir.Ioref.ir_visited;
        ir.Ioref.ir_back_threshold <- ir.Ioref.ir_back_threshold + bump sh;
        record_visit sh st trace i;
        let fr = new_frame st trace parent i in
        match Ioref.source_sites ir with
        | [] -> finish sh st fr Verdict.Garbage
        | sources ->
            fr.fr_pending <- List.length sources;
            List.iter
              (fun q ->
                let seq = st.next_call in
                st.next_call <- seq + 1;
                fr.fr_calls <- Int_set.add seq fr.fr_calls;
                bump_stat sh trace (fun s -> s.ts_calls <- s.ts_calls + 1);
                send_back sh ~src:(self_id st) ~dst:q trace
                  (Back_call
                     {
                       trace;
                       r = i;
                       reply_site = self_id st;
                       reply_frame = fr.fr_id;
                       call_seq = seq;
                     });
                let timeout = (Engine.config sh.eng).Config.back_call_timeout in
                Engine.schedule sh.eng ~delay:timeout (fun () ->
                    match Hashtbl.find_opt st.frames fr.fr_id with
                    | Some fr'
                      when (not fr'.fr_done) && Int_set.mem seq fr'.fr_calls ->
                        fr'.fr_calls <- Int_set.remove seq fr'.fr_calls;
                        (* No reply: assume Live (§4.6). *)
                        Metrics.incr (Engine.metrics sh.eng)
                          "back.call_timeout";
                        child_done sh st fr' Verdict.Live Site_id.Set.empty
                    | _ -> ()))
              sources
      end

let start sh site_id outref =
  let st = state sh site_id in
  match Tables.find_outref (tables st) outref with
  | Some o when not (Ioref.outref_clean o) ->
      let trace = Trace_id.make ~initiator:site_id ~seq:st.next_trace in
      st.next_trace <- st.next_trace + 1;
      Hashtbl.replace sh.tstats trace
        {
          ts_initiator = site_id;
          ts_root = outref;
          ts_started = Engine.now sh.eng;
          ts_msgs = 0;
          ts_calls = 0;
          ts_participants = Site_id.Set.empty;
          ts_outcome = None;
        };
      Metrics.incr (Engine.metrics sh.eng) "back.traces_started";
      Engine.jlog sh.eng ~cat:"back" "%a started from outref %a" Trace_id.pp
        trace Oid.pp outref;
      step_local sh st trace outref P_initiator;
      Some trace
  | Some _ | None -> None

let handle_ext sh site_id ~src ext =
  ignore src;
  let st = state sh site_id in
  match ext with
  | Back_call { trace; r; reply_site; reply_frame; call_seq } ->
      step_local sh st trace r (P_remote { site = reply_site; frame = reply_frame; call_seq });
      true
  | Back_reply { trace = _; reply_frame; call_seq; verdict; participants } ->
      (match Hashtbl.find_opt st.frames reply_frame with
      | Some fr when Int_set.mem call_seq fr.fr_calls ->
          fr.fr_calls <- Int_set.remove call_seq fr.fr_calls;
          child_done sh st fr verdict participants
      | Some _ | None -> ());
      true
  | Back_report { trace; outcome } ->
      apply_report sh st trace outcome;
      true
  | _ -> false

let on_cleaned sh site_id r =
  if (Engine.config sh.eng).Config.enable_clean_rule then begin
    let st = state sh site_id in
    let hits =
      Hashtbl.fold
        (fun _ fr acc ->
          if (not fr.fr_done) && Oid.equal fr.fr_ioref r then fr :: acc
          else acc)
        st.frames []
    in
    List.iter
      (fun fr ->
        Metrics.incr (Engine.metrics sh.eng) "back.clean_rule_fired";
        finish sh st fr Verdict.Live)
      hits
  end

let active_frames sh site_id = Hashtbl.length (state sh site_id).frames

let stats sh =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) sh.tstats []
  |> List.sort (fun (a, _) (b, _) -> Trace_id.compare a b)

let find_stat sh trace = Hashtbl.find_opt sh.tstats trace
