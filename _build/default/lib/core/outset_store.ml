open Dgc_heap

type id = int

type t = {
  mutable sets : Oid.t array array;  (** id -> sorted elements *)
  mutable count : int;
  interned : (Oid.t list, id) Hashtbl.t;  (** canonical form -> id *)
  memo : (int * int, id) Hashtbl.t;
  memoize : bool;
  mutable u_calls : int;
  mutable u_hits : int;
}

type stats = {
  distinct : int;
  union_calls : int;
  memo_hits : int;
  elements_stored : int;
}

let create ?(memoize = true) () =
  let t =
    {
      sets = Array.make 16 [||];
      count = 0;
      interned = Hashtbl.create 64;
      memo = Hashtbl.create 64;
      memoize;
      u_calls = 0;
      u_hits = 0;
    }
  in
  (* id 0 is the empty set *)
  Hashtbl.add t.interned [] 0;
  t.count <- 1;
  t

let intern t sorted_list =
  match Hashtbl.find_opt t.interned sorted_list with
  | Some id -> id
  | None ->
      let id = t.count in
      if id >= Array.length t.sets then begin
        let fresh = Array.make (2 * Array.length t.sets) [||] in
        Array.blit t.sets 0 fresh 0 t.count;
        t.sets <- fresh
      end;
      t.sets.(id) <- Array.of_list sorted_list;
      t.count <- id + 1;
      Hashtbl.add t.interned sorted_list id;
      id

let empty _t = 0
let singleton t r = intern t [ r ]

let merge_sorted a b =
  let la = Array.length a and lb = Array.length b in
  let out = ref [] in
  let i = ref 0 and j = ref 0 in
  while !i < la && !j < lb do
    let c = Oid.compare a.(!i) b.(!j) in
    if c < 0 then begin
      out := a.(!i) :: !out;
      incr i
    end
    else if c > 0 then begin
      out := b.(!j) :: !out;
      incr j
    end
    else begin
      out := a.(!i) :: !out;
      incr i;
      incr j
    end
  done;
  while !i < la do
    out := a.(!i) :: !out;
    incr i
  done;
  while !j < lb do
    out := b.(!j) :: !out;
    incr j
  done;
  List.rev !out

let union t x y =
  if x = y then x
  else if x = 0 then y
  else if y = 0 then x
  else begin
    t.u_calls <- t.u_calls + 1;
    let key = if x < y then (x, y) else (y, x) in
    match if t.memoize then Hashtbl.find_opt t.memo key else None with
    | Some id ->
        t.u_hits <- t.u_hits + 1;
        id
    | None ->
        let merged = merge_sorted t.sets.(x) t.sets.(y) in
        let id = intern t merged in
        if t.memoize then Hashtbl.add t.memo key id;
        id
  end

let add t x r = union t x (singleton t r)
let elements t id = Array.to_list t.sets.(id)
let cardinal t id = Array.length t.sets.(id)
let is_empty_id _t id = id = 0

let stats t =
  let elements_stored = ref 0 in
  for i = 0 to t.count - 1 do
    elements_stored := !elements_stored + Array.length t.sets.(i)
  done;
  {
    distinct = t.count;
    union_calls = t.u_calls;
    memo_hits = t.u_hits;
    elements_stored = !elements_stored;
  }
