(** Back-trace verdicts (§4.4). *)

type t = Live | Garbage

val merge : t -> t -> t
(** [Live] dominates: a trace is garbage only if every branch is. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
