lib/core/outset_store.mli: Dgc_heap Oid
