lib/core/sim.ml: Collector Config Dgc_oracle Dgc_rts Dgc_simcore Engine Float Mutator Sim_time
