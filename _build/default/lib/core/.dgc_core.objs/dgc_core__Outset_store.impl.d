lib/core/outset_store.ml: Array Dgc_heap Hashtbl List Oid
