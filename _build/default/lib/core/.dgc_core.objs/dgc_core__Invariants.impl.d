lib/core/invariants.ml: Array Config Dgc_heap Dgc_prelude Dgc_rts Engine Format Heap Ioref List Oid Reach Site Site_id Tables Trace_id
