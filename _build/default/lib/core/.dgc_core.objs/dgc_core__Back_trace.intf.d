lib/core/back_trace.mli: Dgc_heap Dgc_prelude Dgc_rts Dgc_simcore Engine Oid Protocol Sim_time Site_id Trace_id Verdict
