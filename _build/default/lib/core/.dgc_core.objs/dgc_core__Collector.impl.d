lib/core/collector.ml: Array Back_trace Config Dgc_heap Dgc_prelude Dgc_rts Dgc_simcore Engine Int Ioref List Local_trace Metrics Oid Sim_time Site Site_id Snapshot Tables Trace_id Util Verdict
