lib/core/local_trace.mli: Dgc_heap Dgc_prelude Dgc_rts Engine Oid Reach Site Site_id Snapshot
