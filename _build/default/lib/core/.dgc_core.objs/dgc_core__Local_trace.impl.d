lib/core/local_trace.ml: Config Dgc_heap Dgc_oracle Dgc_prelude Dgc_rts Dgc_simcore Engine Hashtbl Heap Int Ioref List Metrics Oid Option Outset_store Protocol Reach Site Site_id Snapshot Tables Util
