lib/core/back_trace.ml: Array Config Dgc_heap Dgc_prelude Dgc_rts Dgc_simcore Engine Hashtbl Int Ioref List Metrics Oid Protocol Set Sim_time Site Site_id Tables Trace_id Verdict
