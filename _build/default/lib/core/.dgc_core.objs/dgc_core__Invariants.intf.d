lib/core/invariants.mli: Dgc_rts Engine
