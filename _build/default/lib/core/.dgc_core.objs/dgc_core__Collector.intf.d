lib/core/collector.mli: Back_trace Dgc_heap Dgc_prelude Dgc_rts Engine Oid Site_id Trace_id
