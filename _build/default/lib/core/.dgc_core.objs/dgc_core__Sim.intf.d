lib/core/sim.mli: Collector Config Dgc_rts Dgc_simcore Engine Mutator Sim_time
