lib/core/verdict.mli: Format
