open Dgc_prelude
open Dgc_heap
open Dgc_rts

let delta eng = (Engine.config eng).Config.delta

let note acc fmt = Format.kasprintf (fun s -> acc := s :: !acc) fmt

(* Inrefs (non-flagged) from which a given site-local closure starts. *)
let each_site eng f = Array.iter f (Engine.sites eng)

(* --- local safety (§6.1) ------------------------------------------------- *)

let local_safety eng =
  let acc = ref [] in
  each_site eng (fun s ->
      let graph = Reach.of_heap s.Site.heap in
      (* Ground truth: for every non-flagged inref, the set of remote
         references locally reachable from it. *)
      let reach_of_inref =
        List.filter_map
          (fun ir ->
            if ir.Ioref.ir_flagged then None
            else begin
              let _, remotes =
                Reach.closure graph ~from:[ ir.Ioref.ir_target ]
              in
              Some (ir, remotes)
            end)
          (Tables.inrefs s.Site.tables)
      in
      Tables.iter_outrefs s.Site.tables (fun o ->
          if not (Ioref.outref_clean o) then
            List.iter
              (fun (ir, remotes) ->
                if
                  Oid.Set.mem o.Ioref.or_target remotes
                  && not
                       (List.exists
                          (Oid.equal ir.Ioref.ir_target)
                          o.Ioref.or_inset)
                then
                  note acc
                    "%a: suspected outref %a is reachable from inref %a but \
                     its inset omits it"
                    Site_id.pp s.Site.id Oid.pp o.Ioref.or_target Oid.pp
                    ir.Ioref.ir_target)
              reach_of_inref))
  [@warning "-26"];
  List.rev !acc

(* --- auxiliary invariant (§6.1) ------------------------------------------- *)

let auxiliary eng =
  let acc = ref [] in
  each_site eng (fun s ->
      Tables.iter_outrefs s.Site.tables (fun o ->
          if not (Ioref.outref_clean o) then
            List.iter
              (fun i ->
                match Tables.find_inref s.Site.tables i with
                | Some ir when Ioref.inref_clean ~delta:(delta eng) ir ->
                    note acc
                      "%a: inset of suspected outref %a names the clean inref \
                       %a"
                      Site_id.pp s.Site.id Oid.pp o.Ioref.or_target Oid.pp i
                | Some _ | None -> ())
              o.Ioref.or_inset));
  List.rev !acc

(* --- remote safety (§6.1.2) ------------------------------------------------ *)

let remote_safety eng =
  let acc = ref [] in
  each_site eng (fun s ->
      Tables.iter_inrefs s.Site.tables (fun ir ->
          if
            (not ir.Ioref.ir_flagged)
            && not (Ioref.inref_clean ~delta:(delta eng) ir)
          then begin
            let i = ir.Ioref.ir_target in
            each_site eng (fun p ->
                if not (Site_id.equal p.Site.id s.Site.id) then begin
                  let holds_in_heap =
                    Heap.fold p.Site.heap ~init:false ~f:(fun found o ->
                        found || List.exists (Oid.equal i) o.Heap.fields)
                  in
                  let holds_in_roots =
                    List.exists (Oid.equal i) (Engine.app_roots eng p.Site.id)
                  in
                  if holds_in_heap || holds_in_roots then begin
                    let listed = Ioref.find_source ir p.Site.id <> None in
                    let clean_outref =
                      match Tables.find_outref p.Site.tables i with
                      | Some o -> Ioref.outref_clean o
                      | None -> false
                    in
                    if (not listed) && not clean_outref then
                      note acc
                        "%a: suspected inref %a misses holder %a (and %a has \
                         no clean outref for it)"
                        Site_id.pp s.Site.id Oid.pp i Site_id.pp p.Site.id
                        Site_id.pp p.Site.id
                  end
                end)
          end));
  List.rev !acc

(* --- visited-mark hygiene --------------------------------------------------- *)

let visited_hygiene eng =
  let acc = ref [] in
  each_site eng (fun s ->
      Tables.iter_inrefs s.Site.tables (fun ir ->
          if
            (not (Trace_id.Set.is_empty ir.Ioref.ir_visited))
            && (not ir.Ioref.ir_suspected)
            && (not ir.Ioref.ir_forced_clean)
            && not ir.Ioref.ir_flagged
          then
            note acc "%a: visited marks on never-suspected inref %a" Site_id.pp
              s.Site.id Oid.pp ir.Ioref.ir_target);
      Tables.iter_outrefs s.Site.tables (fun o ->
          if
            (not (Trace_id.Set.is_empty o.Ioref.or_visited))
            && (not o.Ioref.or_suspected)
            && not o.Ioref.or_forced_clean
          then
            note acc "%a: visited marks on never-suspected outref %a"
              Site_id.pp s.Site.id Oid.pp o.Ioref.or_target));
  List.rev !acc

(* --- distance sanity ---------------------------------------------------------- *)

(* True inter-site distances from the roots: 0-1 BFS over the global
   graph (cross-site edges cost 1, local edges cost 0). *)
let true_distances eng =
  let dist : int Oid.Tbl.t = Oid.Tbl.create 256 in
  let deque = ref [] and back = ref [] in
  let push_front x = deque := x :: !deque in
  let push_back x = back := x :: !back in
  let pop () =
    match !deque with
    | x :: tl ->
        deque := tl;
        Some x
    | [] -> (
        match List.rev !back with
        | [] -> None
        | x :: tl ->
            deque := tl;
            back := [];
            Some x)
  in
  let heap_of r = (Engine.site eng (Oid.site r)).Site.heap in
  let relax r d =
    if Heap.mem (heap_of r) r then begin
      match Oid.Tbl.find_opt dist r with
      | Some d' when d' <= d -> ()
      | _ ->
          Oid.Tbl.replace dist r d;
          if d = 0 then push_front (r, d) else push_back (r, d)
    end
  in
  each_site eng (fun s ->
      List.iter
        (fun r -> relax r 0)
        (Heap.persistent_roots s.Site.heap @ Engine.app_roots eng s.Site.id));
  let rec drain () =
    match pop () with
    | None -> ()
    | Some (r, d) ->
        if Oid.Tbl.find_opt dist r = Some d then
          List.iter
            (fun z ->
              let w = if Site_id.equal (Oid.site z) (Oid.site r) then 0 else 1 in
              relax z (d + w))
            (Heap.fields (heap_of r) r);
        drain ()
  in
  drain ();
  dist

(* An inref's per-source distance estimates the shortest root path
   that ends with that inter-site reference: at most one more than the
   true distance of some holder of the reference at the source site.
   Estimates are conservative (start at 1, grow toward the truth), so
   in a settled system: recorded <= 1 + min holder distance. *)
let distance_sanity eng =
  let acc = ref [] in
  let truth = true_distances eng in
  each_site eng (fun s ->
      Tables.iter_inrefs s.Site.tables (fun ir ->
          let i = ir.Ioref.ir_target in
          List.iter
            (fun src ->
              let p = Engine.site eng src.Ioref.src_site in
              let holder_truth =
                Heap.fold p.Site.heap ~init:None ~f:(fun best o ->
                    if List.exists (Oid.equal i) o.Heap.fields then
                      match Oid.Tbl.find_opt truth o.Heap.oid with
                      | Some d ->
                          Some
                            (match best with
                            | Some b -> min b d
                            | None -> d)
                      | None -> best
                    else best)
              in
              match holder_truth with
              | Some h ->
                  if
                    src.Ioref.src_dist > h + 1
                    && src.Ioref.src_dist < Ioref.infinity_dist
                  then
                    note acc
                      "%a: inref %a source %a records %d but a live holder \
                       sits at true distance %d"
                      Site_id.pp s.Site.id Oid.pp i Site_id.pp
                      src.Ioref.src_site src.Ioref.src_dist h
              | None -> (* garbage or stale holder: any estimate *) ())
            ir.Ioref.ir_sources));
  List.rev !acc

let check_all eng =
  List.concat
    [
      List.map (fun v -> "local-safety: " ^ v) (local_safety eng);
      List.map (fun v -> "auxiliary: " ^ v) (auxiliary eng);
      List.map (fun v -> "remote-safety: " ^ v) (remote_safety eng);
      List.map (fun v -> "visited-hygiene: " ^ v) (visited_hygiene eng);
      List.map (fun v -> "distance-sanity: " ^ v) (distance_sanity eng);
    ]
