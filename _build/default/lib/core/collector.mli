(** The back-tracing collector: per-site orchestration.

    Installs the whole scheme on an engine's sites:
    - scheduled local traces run the §5 combined trace over a
      snapshot-at-beginning window (§6.2) and swap results in
      atomically;
    - the §6.1 transfer barrier cleans suspected iorefs when references
      arrive, recording window-time cleans for replay;
    - after each local trace, suspected outrefs whose distance crossed
      their back threshold start back traces (§4.3);
    - back-trace messages are dispatched to {!Back_trace}. *)

open Dgc_prelude
open Dgc_heap
open Dgc_rts

type t

val install : Engine.t -> t
(** Install hooks on every site of the engine. *)

val engine : t -> Engine.t
val back : t -> Back_trace.shared

val force_local_trace : t -> Site_id.t -> unit
(** Run one full (atomic) local trace at the site right now —
    convenient for tests and scenario setup. Does not trigger back
    traces. *)

val force_local_trace_all : t -> unit
(** {!force_local_trace} at every non-crashed site, in site order. *)

val trigger_back_traces : t -> Site_id.t -> Trace_id.t list
(** Start back traces from every eligible suspected outref at the site
    (distance above its back threshold), up to the configured
    per-trace-round cap; returns the ids started. Runs automatically
    after each scheduled local trace. *)

val start_back_trace : t -> Site_id.t -> Oid.t -> Trace_id.t option
(** Start a trace from a specific outref, ignoring thresholds. *)

val set_auto_back_traces : t -> bool -> unit
(** Enable/disable automatic triggering after scheduled traces
    (default on). The group-tracing and migration baselines reuse the
    distance machinery with this turned off. *)

val set_after_trace : t -> (Site_id.t -> unit) -> unit
(** Callback after every scheduled local trace completes at a site
    (baselines hang their own cycle detectors here). *)

val effective_threshold2 : t -> int
(** The back threshold applied to newly suspected outrefs. Equals the
    configured Δ2 unless [adaptive_threshold] raised it (§3's tuning
    suggestion, applied to the trigger threshold). *)

val in_window : t -> Site_id.t -> bool
(** A local trace window is currently open at the site. *)
