(** Top-level assembly: engine + back-tracing collector + mutators.

    The usual lifecycle is
    {[
      let sim = Sim.make ~cfg () in
      (* build an object graph: Dgc_rts.Builder or mutator agents *)
      Sim.start sim;
      Sim.run_rounds sim 12;
      (* inspect: Dgc_oracle.Oracle, Engine.metrics, Back_trace.stats *)
    ]} *)

open Dgc_simcore
open Dgc_rts

type t = {
  eng : Engine.t;
  col : Collector.t;
  muts : Mutator.manager;
}

val make : ?cfg:Config.t -> unit -> t
val start : t -> unit
(** Begin the periodic local-trace schedule. *)

val run_for : t -> Sim_time.t -> unit
val run_rounds : t -> int -> unit
(** Run until every site has completed that many more local traces
    (bounded internally to avoid spinning if sites are crashed). *)

val collect_all : t -> ?max_rounds:int -> unit -> bool
(** Run rounds until the oracle reports zero garbage, up to
    [max_rounds] (default 40). True on success. Requires {!start} to
    have been called. *)
