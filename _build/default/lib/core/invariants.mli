(** The paper's stated invariants as runtime-checkable predicates.

    §6.1 proves safety from three named invariants; this module checks
    them against live system state so tests and fuzzers can assert
    them at any point (they are exact in a quiesced system; during a
    trace window the old copy is in the tables, so check between
    windows):

    - {b Local safety} ("For any suspected outref o, o.inset includes
      all inrefs o is locally reachable from"): every suspected
      outref's recorded inset covers the local-reachability ground
      truth recomputed from the heap.
    - {b Auxiliary} ("o.inset does not include any clean inref"):
      insets never name clean inrefs.
    - {b Remote safety} ("for any suspected inref i, either i.sources
      includes all remote sites containing i, or at least one of its
      corresponding outrefs is clean"): checked against every site's
      heaps and tables.

    Additionally:
    - {b Visited hygiene}: visited marks only on suspected iorefs
      belonging to live traces (approximated as: flagged inrefs aside,
      no marks on clean iorefs).
    - {b Distance sanity}: a recorded per-source distance estimates
      the shortest root path ending with that inter-site reference, so
      in a settled system it is at most one more than the true
      distance of some live holder of the reference at the source site
      (estimates are conservative and converge from below; garbage has
      no live holders, so any estimate is fine).

    Each check returns human-readable violation strings; empty lists
    mean the invariant holds. *)

open Dgc_rts

val local_safety : Engine.t -> string list
val auxiliary : Engine.t -> string list
val remote_safety : Engine.t -> string list
val visited_hygiene : Engine.t -> string list
val distance_sanity : Engine.t -> string list

val check_all : Engine.t -> string list
(** Concatenation of every check, each violation prefixed with its
    invariant's name. *)
