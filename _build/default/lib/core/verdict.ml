type t = Live | Garbage

let merge a b = match (a, b) with Garbage, Garbage -> Garbage | _ -> Live
let equal a b = match (a, b) with
  | Live, Live | Garbage, Garbage -> true
  | Live, Garbage | Garbage, Live -> false

let to_string = function Live -> "Live" | Garbage -> "Garbage"
let pp ppf t = Format.pp_print_string ppf (to_string t)
