(** Ground truth for verification.

    The oracle sees the whole distributed state at once — every heap,
    every agent variable, every undelivered message — and computes
    exact global reachability. It exists to check the collectors, so it
    deliberately shares none of their machinery: plain breadth-first
    search over the union of heaps.

    Roots: persistent roots of every site, application roots
    (variables and pins) of every site, and references carried by
    in-flight or parked messages. *)

open Dgc_prelude
open Dgc_heap
open Dgc_rts

exception Safety_violation of string

val live_set : Engine.t -> Oid.Set.t
(** All objects reachable from the global roots. *)

val garbage_set : Engine.t -> Oid.Set.t
(** All existing objects not in {!live_set}. *)

val garbage_count : Engine.t -> int

val cyclic_garbage_sites : Engine.t -> Site_id.Set.t
(** Sites that own at least one garbage object. *)

val check_would_free : Engine.t -> Site_id.t -> int list -> unit
(** [check_would_free eng site idxs]: the collector at [site] is about
    to free the objects with local indices [idxs]. Raises
    {!Safety_violation} naming the first live one, if any. *)

val assert_no_garbage : Engine.t -> unit
(** Raises {!Safety_violation} listing remaining garbage, for
    completeness tests run after quiescence. *)

val table_violations : Engine.t -> string list
(** Referential-integrity violations between heaps and ioref tables.
    Exact only in a quiesced system (no in-flight messages):
    - every cross-site field reference has an outref at its source
      site and a matching source entry in the target's inref;
    - every outref is backed by a source entry at the owner;
    - every inref source site actually holds a matching outref. *)
