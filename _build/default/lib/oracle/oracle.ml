open Dgc_prelude
open Dgc_heap
open Dgc_rts

exception Safety_violation of string

let global_roots eng =
  let sites = Engine.sites eng in
  let per_site =
    Array.to_list sites
    |> List.concat_map (fun s ->
           Heap.persistent_roots s.Site.heap
           @ Engine.app_roots eng s.Site.id)
  in
  per_site @ Engine.in_flight_refs eng

let live_set eng =
  let heap_of r = (Engine.site eng (Oid.site r)).Site.heap in
  let visited = ref Oid.Set.empty in
  let queue = Queue.create () in
  let visit r =
    if (not (Oid.Set.mem r !visited)) && Heap.mem (heap_of r) r then begin
      visited := Oid.Set.add r !visited;
      Queue.add r queue
    end
  in
  List.iter visit (global_roots eng);
  while not (Queue.is_empty queue) do
    let r = Queue.pop queue in
    List.iter visit (Heap.fields (heap_of r) r)
  done;
  !visited

let all_objects eng =
  Array.fold_left
    (fun acc s ->
      Heap.fold s.Site.heap ~init:acc ~f:(fun acc o ->
          Oid.Set.add o.Heap.oid acc))
    Oid.Set.empty (Engine.sites eng)

let garbage_set eng = Oid.Set.diff (all_objects eng) (live_set eng)
let garbage_count eng = Oid.Set.cardinal (garbage_set eng)

let cyclic_garbage_sites eng =
  Oid.Set.fold
    (fun r acc -> Site_id.Set.add (Oid.site r) acc)
    (garbage_set eng) Site_id.Set.empty

let check_would_free eng site_id idxs =
  let live = live_set eng in
  List.iter
    (fun i ->
      let oid = Oid.make ~site:site_id ~index:i in
      if Oid.Set.mem oid live then
        raise
          (Safety_violation
             (Format.asprintf "about to free live object %a" Oid.pp oid)))
    idxs

let assert_no_garbage eng =
  let g = garbage_set eng in
  if not (Oid.Set.is_empty g) then
    raise
      (Safety_violation
         (Format.asprintf "uncollected garbage: %a"
            (Format.pp_print_list ~pp_sep:Format.pp_print_space Oid.pp)
            (Oid.Set.elements g)))

let table_violations eng =
  let sites = Engine.sites eng in
  let problems = ref [] in
  let note fmt = Format.kasprintf (fun s -> problems := s :: !problems) fmt in
  Array.iter
    (fun s ->
      let sid = s.Site.id in
      (* Cross-site heap edges are fully registered. *)
      Heap.iter s.Site.heap (fun o ->
          List.iter
            (fun r ->
              if not (Site_id.equal (Oid.site r) sid) then begin
                (match Tables.find_outref s.Site.tables r with
                | Some _ -> ()
                | None ->
                    note "%a: field %a -> %a lacks an outref" Site_id.pp sid
                      Oid.pp o.Heap.oid Oid.pp r);
                let owner = Engine.site eng (Oid.site r) in
                match Tables.find_inref owner.Site.tables r with
                | Some ir when Ioref.find_source ir sid <> None -> ()
                | Some _ ->
                    note "%a: inref %a misses source %a" Site_id.pp
                      owner.Site.id Oid.pp r Site_id.pp sid
                | None ->
                    note "%a: missing inref %a (field held by %a)" Site_id.pp
                      owner.Site.id Oid.pp r Site_id.pp sid
              end)
            o.Heap.fields);
      (* Outrefs are backed by source entries at the owner. *)
      Tables.iter_outrefs s.Site.tables (fun o ->
          let r = o.Ioref.or_target in
          let owner = Engine.site eng (Oid.site r) in
          match Tables.find_inref owner.Site.tables r with
          | Some ir when Ioref.find_source ir sid <> None -> ()
          | Some _ | None ->
              note "%a: outref %a not registered at owner" Site_id.pp sid
                Oid.pp r);
      (* Inref sources actually hold outrefs. *)
      Tables.iter_inrefs s.Site.tables (fun ir ->
          List.iter
            (fun src ->
              let holder = Engine.site eng src in
              match Tables.find_outref holder.Site.tables ir.Ioref.ir_target with
              | Some _ -> ()
              | None ->
                  note "%a: inref %a lists source %a which has no outref"
                    Site_id.pp sid Oid.pp ir.Ioref.ir_target Site_id.pp src)
            (Ioref.source_sites ir)))
    sites;
  List.rev !problems
