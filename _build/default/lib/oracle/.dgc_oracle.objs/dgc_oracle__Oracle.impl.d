lib/oracle/oracle.ml: Array Dgc_heap Dgc_prelude Dgc_rts Engine Format Heap Ioref List Oid Queue Site Site_id Tables
