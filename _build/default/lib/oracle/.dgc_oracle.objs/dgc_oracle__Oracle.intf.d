lib/oracle/oracle.mli: Dgc_heap Dgc_prelude Dgc_rts Engine Oid Site_id
