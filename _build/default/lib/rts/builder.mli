(** Direct construction of consistent multi-site object graphs.

    Tests, scenarios and benches need to start from a known
    configuration (e.g. the exact graphs of the paper's figures)
    without scripting dozens of mutator steps. [Builder] allocates
    objects and wires references while keeping the inref/outref tables
    exactly as the runtime protocols would have left them in a
    quiesced system. New inref sources get the conservative distance 1
    (§3); run local traces afterwards to converge distances. *)

open Dgc_prelude
open Dgc_heap

val obj : Engine.t -> Site_id.t -> Oid.t
(** Allocate an object at the site. *)

val root_obj : Engine.t -> Site_id.t -> Oid.t
(** Allocate an object and make it a persistent root. *)

val make_root : Engine.t -> Oid.t -> unit

val link : Engine.t -> src:Oid.t -> dst:Oid.t -> unit
(** Add a field [src -> dst]. For a cross-site reference this creates
    the outref at the source site and registers the source in the
    target's inref, as a completed insert protocol would have. *)

val unlink : Engine.t -> src:Oid.t -> dst:Oid.t -> unit
(** Remove one occurrence; tables are left for the next local traces
    to reconcile, as in the real system. *)

val chain : Engine.t -> Oid.t list -> unit
(** [chain eng [a; b; c]] links a->b and b->c. *)

val cycle : Engine.t -> Oid.t list -> unit
(** Like {!chain}, plus a closing link from the last to the first. *)

val set_source_distance : Engine.t -> inref:Oid.t -> src:Site_id.t -> int -> unit
(** Override a recorded source distance (for unit tests that need a
    converged or artificial distance state). *)
