lib/rts/builder.ml: Dgc_heap Dgc_prelude Engine Heap Ioref List Oid Site Site_id Tables
