lib/rts/config.ml: Dgc_simcore Format Latency Sim_time
