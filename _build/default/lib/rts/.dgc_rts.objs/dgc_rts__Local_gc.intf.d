lib/rts/local_gc.mli: Engine Site
