lib/rts/tables.ml: Dgc_heap Dgc_prelude Format Ioref List Oid Site_id
