lib/rts/mutator.mli: Dgc_heap Dgc_prelude Dgc_simcore Engine Oid Site_id
