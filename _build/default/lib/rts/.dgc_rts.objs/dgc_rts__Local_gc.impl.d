lib/rts/local_gc.ml: Array Dgc_heap Dgc_simcore Engine Hashtbl Heap Ioref List Metrics Oid Protocol Reach Site Tables
