lib/rts/tables.mli: Dgc_heap Dgc_prelude Format Ioref Oid Site_id
