lib/rts/protocol.ml: Dgc_heap Dgc_prelude List Oid Site_id
