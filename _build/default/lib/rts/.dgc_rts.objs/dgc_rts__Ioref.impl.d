lib/rts/ioref.ml: Dgc_heap Dgc_prelude Format List Oid Site_id Trace_id
