lib/rts/protocol.mli: Dgc_heap Dgc_prelude Oid Site_id
