lib/rts/mutator.ml: Dgc_heap Dgc_prelude Dgc_simcore Engine Hashtbl Heap List Metrics Oid Sim_time Site Site_id String Util
