lib/rts/engine.mli: Config Dgc_heap Dgc_prelude Dgc_simcore Format Journal Metrics Oid Protocol Rng Sim_time Site Site_id
