lib/rts/engine.ml: Array Config Dgc_heap Dgc_prelude Dgc_simcore Event_queue Format Hashtbl Ioref Journal Latency List Metrics Oid Protocol Rng Sim_time Site Site_id Tables
