lib/rts/site.mli: Dgc_heap Dgc_prelude Hashtbl Heap Oid Protocol Site_id Tables
