lib/rts/builder.mli: Dgc_heap Dgc_prelude Engine Oid Site_id
