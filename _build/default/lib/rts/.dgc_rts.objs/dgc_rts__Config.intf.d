lib/rts/config.mli: Dgc_simcore Format Latency Sim_time
