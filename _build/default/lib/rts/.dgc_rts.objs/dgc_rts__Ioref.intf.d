lib/rts/ioref.mli: Dgc_heap Dgc_prelude Format Oid Site_id Trace_id
