lib/rts/site.ml: Dgc_heap Dgc_prelude Hashtbl Heap Ioref List Oid Protocol Site_id Tables Util
