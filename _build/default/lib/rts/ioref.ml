open Dgc_prelude
open Dgc_heap

type source = { src_site : Site_id.t; mutable src_dist : int }

type inref = {
  ir_target : Oid.t;
  mutable ir_sources : source list;
  mutable ir_flagged : bool;
  mutable ir_fresh : bool;
  mutable ir_forced_clean : bool;
  mutable ir_suspected : bool;
  mutable ir_back_threshold : int;
  mutable ir_visited : Trace_id.Set.t;
  mutable ir_outset : Oid.t list;
  mutable ir_ts : float;
}

type outref = {
  or_target : Oid.t;
  mutable or_dist : int;
  mutable or_pins : int;
  mutable or_fresh : bool;
  mutable or_forced_clean : bool;
  mutable or_suspected : bool;
  mutable or_back_threshold : int;
  mutable or_visited : Trace_id.Set.t;
  mutable or_inset : Oid.t list;
  mutable or_ts : float;
}

let infinity_dist = max_int / 4

let make_inref ?(threshold2 = infinity_dist) target =
  {
    ir_target = target;
    ir_sources = [];
    ir_flagged = false;
    ir_fresh = true;
    ir_forced_clean = false;
    ir_suspected = false;
    ir_back_threshold = threshold2;
    ir_visited = Trace_id.Set.empty;
    ir_outset = [];
    ir_ts = 0.;
  }

let make_outref ?(threshold2 = infinity_dist) ?(dist = 1) target =
  {
    or_target = target;
    or_dist = dist;
    or_pins = 0;
    or_fresh = true;
    or_forced_clean = false;
    or_suspected = false;
    or_back_threshold = threshold2;
    or_visited = Trace_id.Set.empty;
    or_inset = [];
    or_ts = 0.;
  }

let inref_dist ir =
  List.fold_left (fun acc s -> min acc s.src_dist) infinity_dist ir.ir_sources

let find_source ir site =
  List.find_opt (fun s -> Site_id.equal s.src_site site) ir.ir_sources

let add_source ir site ~dist =
  match find_source ir site with
  | Some s -> s.src_dist <- min s.src_dist dist
  | None -> ir.ir_sources <- { src_site = site; src_dist = dist } :: ir.ir_sources

let set_source_dist ir site ~dist =
  match find_source ir site with
  | Some s -> s.src_dist <- dist
  | None -> ()

let remove_source ir site =
  ir.ir_sources <-
    List.filter (fun s -> not (Site_id.equal s.src_site site)) ir.ir_sources

let source_sites ir = List.map (fun s -> s.src_site) ir.ir_sources

let inref_clean ~delta ir =
  ir.ir_forced_clean || ir.ir_fresh
  || (not ir.ir_suspected)
  || inref_dist ir <= delta

let outref_clean o =
  o.or_forced_clean || o.or_fresh || o.or_pins > 0 || not o.or_suspected

let pp_source ppf s =
  Format.fprintf ppf "%a@%d" Site_id.pp s.src_site s.src_dist

let pp_inref ppf ir =
  Format.fprintf ppf "@[inref %a: sources=[%a] dist=%d%s%s%s@]" Oid.pp
    ir.ir_target
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       pp_source)
    ir.ir_sources (inref_dist ir)
    (if ir.ir_suspected then " suspected" else "")
    (if ir.ir_forced_clean then " forced-clean" else "")
    (if ir.ir_flagged then " FLAGGED" else "")

let pp_outref ppf o =
  Format.fprintf ppf "@[outref %a: dist=%d pins=%d%s%s inset=[%a]@]" Oid.pp
    o.or_target o.or_dist o.or_pins
    (if o.or_suspected then " suspected" else "")
    (if o.or_forced_clean then " forced-clean" else "")
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Oid.pp)
    o.or_inset
