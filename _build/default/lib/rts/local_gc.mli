(** Plain local tracing (§2), without the distance heuristic.

    Atomic mark-sweep from persistent roots, application roots and
    non-flagged inrefs; untraced outrefs are dropped and reported to
    their target sites in update messages. This is the collector the
    acyclic baselines build on; the core library's {!Local_trace}
    supersedes it with distance propagation, suspicion and outset
    computation. *)

val run : Engine.t -> Site.t -> unit
(** Perform one local trace at the site now. Increments
    [Site.trace_epoch], frees local garbage, sends update messages.
    Metrics: [gc.local_traces], [gc.objects_freed]. *)

val install : Engine.t -> unit
(** Set every site's [h_run_local_trace] to {!run}. *)
