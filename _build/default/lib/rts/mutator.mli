(** Mutator agents (§2, §6.3).

    An agent models one application thread: it sits at a site, holds
    references in named variables (the application roots), and mutates
    the object graph. All acquisition is legal in the paper's sense —
    an agent can only obtain a reference by loading a persistent root,
    reading a field of an object at its site, or allocating; to touch a
    remote object it must {!travel} there, which transfers its
    variables and raises the §6.1 barrier events.

    Variables pin what they hold (local refs become extra trace roots,
    remote refs pin their outrefs), so a reference sitting in a
    variable is never collected — matching §6.3's treatment of
    application roots as persistent roots. *)

open Dgc_prelude
open Dgc_heap

type manager
type t

val manager : Engine.t -> manager
(** Create the agent manager and install its engine callbacks. Call
    once per engine. *)

val spawn : manager -> at:Site_id.t -> t
val agent_site : t -> Site_id.t
val traveling : t -> bool
val vars : t -> (string * Oid.t) list
val var : t -> string -> Oid.t option

(** {1 Synchronous operations}

    These require the agent to be at the relevant site and not
    traveling; they return false (and count a metric) when the
    operation is impossible (missing variable, dead object, bad
    index), which keeps randomized workloads total. *)

val load_root : t -> dst:string -> bool
(** First persistent root of the current site into [dst]. *)

val load_root_named : t -> root:Oid.t -> dst:string -> bool
val new_obj : t -> dst:string -> bool
(** Allocate at the current site. The fresh object is reachable only
    from [dst] until linked. *)

val read_field : t -> obj:string -> idx:int -> dst:string -> bool
(** [idx]'th field (0-based) of the local object named by variable
    [obj]. *)

val write : t -> obj:string -> value:string -> bool
(** Append the reference in [value] to the fields of the local object
    named by [obj] — the §6.1 "copy" of a reference into an object. *)

val unlink : t -> obj:string -> target:string -> bool
(** Remove one occurrence of the reference in variable [target] from
    the local object named by [obj]. *)

val drop : t -> string -> bool
val copy_var : t -> src:string -> dst:string -> bool

(** {1 Travel} *)

val travel : t -> via:string -> k:(unit -> unit) -> bool
(** Move to the site of the object named by variable [via], carrying
    all variables (each is thereby transferred, with barriers and
    insert protocol); [k] runs on arrival. False if already traveling
    or the variable is missing. *)

(** {1 Scripted programs} *)

type instr =
  | Load_root of string
  | Load_root_named of Oid.t * string
  | New of string
  | Read of { obj : string; idx : int; dst : string }
  | Write of { obj : string; value : string }
  | Unlink of { obj : string; target : string }
  | Copy of { src : string; dst : string }
  | Travel of string
  | Drop of string
  | Wait of Dgc_simcore.Sim_time.t

val run_program : t -> ?on_done:(unit -> unit) -> instr list -> unit
(** Execute instructions in order; [Travel] and [Wait] yield to the
    simulation. Failed instructions are skipped (counted in metrics as
    [mutator.op_failed]). *)
