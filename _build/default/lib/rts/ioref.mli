(** Inref and outref table entries.

    An inref records an incoming inter-site reference together with the
    list of source sites known to contain it (§2); an outref records an
    outgoing one. Both carry the distance-heuristic and back-tracing
    state of §§3–6. Fields used only by a particular baseline are
    grouped at the end and ignored by the core collector.

    Clean/suspected status follows §3 and §6: the status computed by
    the last completed local trace is cached in [*_suspected], and the
    barriers may force an ioref clean until the next trace completes
    ([*_forced_clean]). Iorefs created since the last completed trace
    ([*_fresh]) are clean — a brand-new source conservatively gets
    distance 1 (§3), and a brand-new outref is created clean
    (§6.1.2, case 4). *)

open Dgc_prelude
open Dgc_heap

type source = { src_site : Site_id.t; mutable src_dist : int }

type inref = {
  ir_target : Oid.t;  (** the local object; identifies the inref *)
  mutable ir_sources : source list;
  mutable ir_flagged : bool;
      (** confirmed garbage by a back-trace report (§4.5): no longer a
          root for local traces; removed via regular update messages *)
  mutable ir_fresh : bool;
  mutable ir_forced_clean : bool;
  mutable ir_suspected : bool;
  mutable ir_back_threshold : int;
  mutable ir_visited : Trace_id.Set.t;
  mutable ir_outset : Oid.t list;
      (** suspected outrefs locally reachable from this inref, as of the
          last completed local trace (§5); meaningful when suspected *)
  (* Hughes baseline *)
  mutable ir_ts : float;
}

type outref = {
  or_target : Oid.t;  (** the remote object; identifies the outref *)
  mutable or_dist : int;
  mutable or_pins : int;
      (** insert-barrier / in-flight retention count; a pinned outref is
          clean and survives local traces (§6.1.2) *)
  mutable or_fresh : bool;
  mutable or_forced_clean : bool;
  mutable or_suspected : bool;
  mutable or_back_threshold : int;
  mutable or_visited : Trace_id.Set.t;
  mutable or_inset : Oid.t list;
      (** suspected inrefs this outref is locally reachable from (§4.1),
          as of the last completed local trace *)
  (* Hughes baseline *)
  mutable or_ts : float;
}

val infinity_dist : int
(** Stand-in for an unknown/unbounded distance. *)

val make_inref : ?threshold2:int -> Oid.t -> inref
(** Fresh inref with no sources; [threshold2] initializes
    [ir_back_threshold] (default {!infinity_dist}, i.e. never trigger
    until configured). *)

val make_outref : ?threshold2:int -> ?dist:int -> Oid.t -> outref

val inref_dist : inref -> int
(** Minimum source distance; {!infinity_dist} if no sources. *)

val find_source : inref -> Site_id.t -> source option
val add_source : inref -> Site_id.t -> dist:int -> unit
(** Add or update; keeps the minimum of the old and new distance for an
    existing source (a conservative merge: §3 only lowers a source's
    distance on insert, update messages overwrite). *)

val set_source_dist : inref -> Site_id.t -> dist:int -> unit
(** Overwrite (update-message semantics); no-op for unknown sources. *)

val remove_source : inref -> Site_id.t -> unit
val source_sites : inref -> Site_id.t list

val inref_clean : delta:int -> inref -> bool
(** Clean status as seen between traces: forced-clean, fresh, or not
    suspected by the last trace. [delta] guards the degenerate case of
    an inref whose cached distance dropped below the threshold since
    the last trace (e.g. a new source at distance 1). *)

val outref_clean : outref -> bool
val pp_inref : Format.formatter -> inref -> unit
val pp_outref : Format.formatter -> outref -> unit
