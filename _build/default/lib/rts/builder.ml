open Dgc_prelude
open Dgc_heap

let obj eng site_id = Heap.alloc (Engine.site eng site_id).Site.heap

let make_root eng r =
  Heap.add_persistent_root (Engine.site eng (Oid.site r)).Site.heap r

let root_obj eng site_id =
  let r = obj eng site_id in
  make_root eng r;
  r

let link eng ~src ~dst =
  let src_site = Engine.site eng (Oid.site src) in
  Heap.add_field src_site.Site.heap ~obj:src ~target:dst;
  if not (Site_id.equal (Oid.site src) (Oid.site dst)) then begin
    let o, _created = Tables.ensure_outref src_site.Site.tables dst in
    ignore o;
    let dst_site = Engine.site eng (Oid.site dst) in
    let ir = Tables.ensure_inref dst_site.Site.tables dst in
    Ioref.add_source ir (Oid.site src) ~dist:1
  end

let unlink eng ~src ~dst =
  let src_site = Engine.site eng (Oid.site src) in
  ignore (Heap.remove_field src_site.Site.heap ~obj:src ~target:dst)

let chain eng oids =
  let rec loop = function
    | a :: (b :: _ as tl) ->
        link eng ~src:a ~dst:b;
        loop tl
    | [ _ ] | [] -> ()
  in
  loop oids

let cycle eng oids =
  chain eng oids;
  match (oids, List.rev oids) with
  | first :: _, last :: _ when not (Oid.equal first last) ->
      link eng ~src:last ~dst:first
  | [ _ ], _ | [], _ | _, [] -> ()
  | _ -> ()

let set_source_distance eng ~inref ~src dist =
  let site = Engine.site eng (Oid.site inref) in
  match Tables.find_inref site.Site.tables inref with
  | None -> ()
  | Some ir -> Ioref.set_source_dist ir src ~dist
