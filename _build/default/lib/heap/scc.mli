(** Strongly connected components (Tarjan, iterative).

    Used as the reference implementation against which the combined
    trace of §5.2 (which fuses tracing, SCC detection and outset
    computation) is property-tested, and by the heap-analysis examples. *)

type result = {
  component : int array;  (** node -> component id, in [0, count) *)
  count : int;
  order : int list;
  (** component ids in reverse topological order: if an edge goes from
      component [a] to component [b] (a <> b), then [b] appears before
      [a] in [order]. *)
}

val tarjan : n:int -> succ:(int -> int list) -> result
(** Nodes are [0..n-1]; [succ i] lists the successors of [i] (values
    outside [0,n) are ignored). O(n + e), constant stack. *)

val condensation : n:int -> succ:(int -> int list) -> result * int list array
(** The SCC result plus the condensed DAG: successors (without
    duplicates) of each component. *)
