open Dgc_prelude

type t = { site : Site_id.t; index : int }

let make ~site ~index = { site; index }
let site t = t.site
let index t = t.index
let equal a b = Site_id.equal a.site b.site && Int.equal a.index b.index

let compare a b =
  match Site_id.compare a.site b.site with
  | 0 -> Int.compare a.index b.index
  | c -> c

let hash t = (Site_id.hash t.site * 1_000_003) + t.index
let pp ppf t = Format.fprintf ppf "%a/o%d" Site_id.pp t.site t.index
let to_string t = Format.asprintf "%a" pp t

module Ord = struct
  type nonrec t = t

  let compare = compare
end

module Set = Set.Make (Ord)
module Map = Map.Make (Ord)

module Tbl = Hashtbl.Make (struct
  type nonrec t = t

  let equal = equal
  let hash = hash
end)
