open Dgc_prelude

type graph = {
  g_site : Site_id.t;
  g_mem : Oid.t -> bool;
  g_fields : Oid.t -> Oid.t list;
}

let of_heap heap =
  {
    g_site = Heap.site heap;
    g_mem = (fun oid -> Heap.mem heap oid);
    g_fields = (fun oid -> Heap.fields heap oid);
  }

let of_snapshot snap =
  {
    g_site = Snapshot.site snap;
    g_mem = (fun oid -> Snapshot.mem snap oid);
    g_fields = (fun oid -> Snapshot.fields snap oid);
  }

let is_local g oid = Site_id.equal (Oid.site oid) g.g_site

let closure g ~from =
  let locals = ref Oid.Set.empty in
  let remotes = ref Oid.Set.empty in
  let stack = ref [] in
  let visit r =
    if is_local g r then begin
      if g.g_mem r && not (Oid.Set.mem r !locals) then begin
        locals := Oid.Set.add r !locals;
        stack := r :: !stack
      end
    end
    else remotes := Oid.Set.add r !remotes
  in
  List.iter visit from;
  let rec drain () =
    match !stack with
    | [] -> ()
    | r :: tl ->
        stack := tl;
        List.iter visit (g.g_fields r);
        drain ()
  in
  drain ();
  (!locals, !remotes)

let reaches g ~src ~dst =
  if Oid.equal src dst then true
  else begin
    let locals, remotes = closure g ~from:[ src ] in
    if is_local g dst then
      Oid.Set.mem dst locals
      || List.exists
           (fun o -> List.exists (Oid.equal dst) (g.g_fields o))
           (Oid.Set.elements locals)
    else Oid.Set.mem dst remotes
  end
