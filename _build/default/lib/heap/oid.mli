(** Object identifiers.

    An object lives at exactly one site for its whole life (no
    migration in the core scheme; the migration baseline models moved
    objects as fresh copies). An [Oid.t] therefore both names an object
    and identifies its owner site. An {e inref} is identified by the
    reference it contains (§2), i.e. by the target's [Oid.t]; likewise
    an outref. *)

open Dgc_prelude

type t = { site : Site_id.t; index : int }

val make : site:Site_id.t -> index:int -> t
val site : t -> Site_id.t
val index : t -> int
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Tbl : Hashtbl.S with type key = t
