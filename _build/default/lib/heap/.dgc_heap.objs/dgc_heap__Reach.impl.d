lib/heap/reach.ml: Dgc_prelude Heap List Oid Site_id Snapshot
