lib/heap/oid.mli: Dgc_prelude Format Hashtbl Map Set Site_id
