lib/heap/heap.ml: Dgc_prelude Format Hashtbl Int List Oid Option Site_id
