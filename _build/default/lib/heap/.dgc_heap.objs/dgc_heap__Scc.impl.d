lib/heap/scc.ml: Array Hashtbl List
