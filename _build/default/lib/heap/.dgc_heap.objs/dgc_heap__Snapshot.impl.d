lib/heap/snapshot.ml: Dgc_prelude Hashtbl Heap Int List Oid Option Site_id
