lib/heap/reach.mli: Dgc_prelude Heap Oid Site_id Snapshot
