lib/heap/snapshot.mli: Dgc_prelude Heap Oid Site_id
