lib/heap/scc.mli:
