lib/heap/heap.mli: Dgc_prelude Format Oid Site_id
