lib/heap/oid.ml: Dgc_prelude Format Hashtbl Int Map Set Site_id
