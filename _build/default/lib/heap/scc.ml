type result = { component : int array; count : int; order : int list }

(* Iterative Tarjan. The classic recursive formulation keeps, per
   visited node, its position in the enclosing DFS; we reify that with
   an explicit stack of (node, remaining successors). *)
let tarjan ~n ~succ =
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let scc_stack = ref [] in
  let component = Array.make n (-1) in
  let next_index = ref 0 in
  let count = ref 0 in
  let order = ref [] in
  let valid j = j >= 0 && j < n in
  let start v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    scc_stack := v :: !scc_stack;
    on_stack.(v) <- true
  in
  let finish v =
    if lowlink.(v) = index.(v) then begin
      let id = !count in
      incr count;
      order := id :: !order;
      let rec pop () =
        match !scc_stack with
        | [] -> assert false
        | w :: tl ->
            scc_stack := tl;
            on_stack.(w) <- false;
            component.(w) <- id;
            if w <> v then pop ()
      in
      pop ()
    end
  in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      start root;
      let work = ref [ (root, List.filter valid (succ root)) ] in
      let rec step () =
        match !work with
        | [] -> ()
        | (v, remaining) :: rest -> begin
            match remaining with
            | [] ->
                finish v;
                work := rest;
                (match rest with
                | (parent, _) :: _ ->
                    lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
                | [] -> ());
                step ()
            | w :: tl ->
                work := (v, tl) :: rest;
                if index.(w) = -1 then begin
                  start w;
                  work := (w, List.filter valid (succ w)) :: !work
                end
                else if on_stack.(w) then
                  lowlink.(v) <- min lowlink.(v) index.(w);
                step ()
          end
      in
      step ()
    end
  done;
  { component; count = !count; order = List.rev !order }

let condensation ~n ~succ =
  let res = tarjan ~n ~succ in
  let dag = Array.make res.count [] in
  let seen = Hashtbl.create 64 in
  for v = 0 to n - 1 do
    let cv = res.component.(v) in
    List.iter
      (fun w ->
        if w >= 0 && w < n then begin
          let cw = res.component.(w) in
          if cv <> cw && not (Hashtbl.mem seen (cv, cw)) then begin
            Hashtbl.add seen (cv, cw) ();
            dag.(cv) <- cw :: dag.(cv)
          end
        end)
      (succ v)
  done;
  (res, dag)
