(** Baseline: group tracing seeded from suspects (§7, [MKI+95, RJ96]).

    Reuses the core collector's distance heuristic (back tracing
    disabled): when a suspected outref crosses the back threshold, the
    site forms a {e group} — the set of sites reached by flooding
    forward along suspected outrefs from the seed — and runs a marking
    trace restricted to the group. References entering the group from
    outside, clean inrefs, and local roots are treated as roots;
    unmarked objects inside the group are swept.

    Weaknesses demonstrated, per the paper's §7 discussion:
    - the group can be much larger than the cycle (it follows all
      suspected reachability, including garbage chains hanging off);
    - two sites on one cycle may initiate groups simultaneously; a
      busy site refuses to join, the group aborts and must retry;
    - with [max_group] capped, cycles spanning more sites than the cap
      are never collected. *)

open Dgc_rts
open Dgc_core

type t

val install : Engine.t -> max_group:int -> t
val collector : t -> Collector.t

val try_initiate : t -> Dgc_prelude.Site_id.t -> unit
(** Consider starting a group from this site right now (normally done
    automatically after each local trace). Used by tests to force two
    simultaneous initiations. *)

val groups_formed : t -> int
val groups_aborted : t -> int
val last_group_size : t -> int
