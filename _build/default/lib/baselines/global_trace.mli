(** Baseline: complementary global marking trace (§7, [Ali85, JJ92]).

    Ordinary garbage is collected quickly by plain local tracing; a
    periodic global trace collects everything else, including
    inter-site cycles. The global trace marks from persistent and
    application roots only (inrefs are {e not} roots — that is what
    lets it collect cycles), propagating marks across sites in
    coordinator-driven rounds; when two consecutive rounds make no
    progress the coordinator broadcasts the sweep.

    The known weakness this baseline exists to demonstrate: it needs
    the cooperation of {e every} site. One crashed site stalls the
    collection of all cyclic garbage in the system ({!collect} then
    never completes). Mutators are assumed quiescent during a global
    trace. *)

open Dgc_prelude
open Dgc_rts

type t

val install : Engine.t -> t
(** Install plain local tracing ({!Dgc_rts.Local_gc}) plus the global
    marking message handlers on every site. *)

val collect :
  t -> ?coordinator:Site_id.t -> on_done:(freed:int -> rounds:int -> unit) ->
  unit -> unit
(** Start one global collection. [on_done] fires after every site
    swept. If any participating site is crashed, the collection stalls
    and [on_done] never fires. *)

val running : t -> bool
