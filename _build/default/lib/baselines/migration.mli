(** Baseline: collecting cycles by controlled migration (§7, [ML95]).

    Reuses the core collector's distance heuristic (back tracing
    disabled). When a suspected inref's distance crosses the back
    threshold, its object migrates to the source site holding the
    reference; repeated migrations converge a distributed garbage
    cycle onto a single site, where plain local tracing collects it.

    The costs this baseline exists to quantify, per the paper's
    comparison: objects (bytes) physically move, and every reference to
    a migrated object must be patched. This implementation handles the
    single-holder case (exactly one source site), which covers rings
    and chains; multi-holder migration would need forwarding pointers
    as in ML95 and is out of scope — such inrefs are simply skipped
    (and counted). *)

open Dgc_rts
open Dgc_core

type t

val install : Engine.t -> t
val collector : t -> Collector.t

val migrations : t -> int
val bytes_moved : t -> int
val skipped_multi_holder : t -> int
