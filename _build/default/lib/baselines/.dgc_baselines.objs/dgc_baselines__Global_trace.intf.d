lib/baselines/global_trace.mli: Dgc_prelude Dgc_rts Engine Site_id
