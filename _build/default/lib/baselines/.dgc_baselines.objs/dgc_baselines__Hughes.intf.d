lib/baselines/hughes.mli: Dgc_prelude Dgc_rts Dgc_simcore Engine Sim_time
