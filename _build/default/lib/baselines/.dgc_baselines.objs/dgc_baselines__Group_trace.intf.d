lib/baselines/group_trace.mli: Collector Dgc_core Dgc_prelude Dgc_rts Engine
