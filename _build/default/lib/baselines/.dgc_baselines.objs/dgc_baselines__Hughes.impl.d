lib/baselines/hughes.ml: Array Dgc_heap Dgc_prelude Dgc_rts Dgc_simcore Engine Float Hashtbl Heap Ioref List Metrics Oid Protocol Sim_time Site Site_id Tables
