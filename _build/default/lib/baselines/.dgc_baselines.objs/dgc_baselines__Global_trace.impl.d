lib/baselines/global_trace.ml: Array Dgc_heap Dgc_prelude Dgc_rts Dgc_simcore Engine Hashtbl Heap List Local_gc Metrics Oid Protocol Sim_time Site Site_id
