lib/baselines/migration.mli: Collector Dgc_core Dgc_rts Engine
