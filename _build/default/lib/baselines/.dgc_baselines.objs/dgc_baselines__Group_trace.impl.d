lib/baselines/group_trace.ml: Array Collector Config Dgc_core Dgc_heap Dgc_prelude Dgc_rts Dgc_simcore Engine Hashtbl Heap Ioref List Metrics Oid Protocol Sim_time Site Site_id Tables Util
