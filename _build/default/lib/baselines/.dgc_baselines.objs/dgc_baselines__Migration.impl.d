lib/baselines/migration.ml: Array Collector Config Dgc_core Dgc_heap Dgc_prelude Dgc_rts Dgc_simcore Engine Heap Ioref List Metrics Oid Protocol Site Site_id Tables
