(** Baseline: Hughes's timestamp algorithm (§7, [Hug85]).

    Every local trace propagates timestamps instead of mark bits:
    persistent and application roots carry the current time, inrefs
    carry the newest timestamp that has reached them, and the trace
    pushes the maximum onward to outrefs (whose changes travel to the
    target inrefs in update messages). A garbage object's timestamp
    stops advancing, so anything timestamped below a global threshold
    is garbage — including inter-site cycles.

    The threshold is computed centrally: a coordinator collects every
    site's last-trace time and broadcasts [min - slack]. The [slack]
    accounts for propagation lag down reference chains (a faithful
    implementation computes the exact safe bound with a distributed
    minimum over propagation frontiers; the fixed slack approximates
    it and must exceed depth × trace interval — see EXPERIMENTS.md).

    The weakness this baseline demonstrates: the threshold is a global
    minimum, so one slow or crashed site holds back cycle collection
    everywhere (§7: "a single site can hold down the global
    threshold"). *)

open Dgc_simcore
open Dgc_rts

type t

val install : Engine.t -> slack:Sim_time.t -> t
(** Replace every site's local trace with the timestamp-propagating
    variant and install the threshold-round handlers. *)

val run_threshold_round :
  t -> ?coordinator:Dgc_prelude.Site_id.t -> unit -> unit
(** Collect last-trace times, broadcast the new threshold; sites then
    flag inrefs below it so their next local traces collect them.
    Replies from crashed sites never arrive, so the round stalls
    (demonstrably). *)

val threshold : t -> Sim_time.t
(** The last threshold broadcast (0 if none yet). *)

val rounds_completed : t -> int
