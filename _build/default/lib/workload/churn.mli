(** Randomized mutator workload.

    Spawns agents that continuously perform random {e legal} operations
    — loading roots, reading fields, allocating, writing and unlinking
    references, and traveling between sites with their variables. Over
    time this creates and severs inter-site structure, including
    distributed cycles, while every acquisition goes through the
    runtime's transfer machinery (so all §6 barrier paths get
    exercised). Drive it under a running {!Dgc_core.Sim} with oracle
    checks on and safety violations surface as exceptions. *)

open Dgc_prelude
open Dgc_core

type t

val start :
  Sim.t -> rng:Rng.t -> agents:int -> mean_op_gap:Dgc_simcore.Sim_time.t -> t
(** Spawn [agents] at round-robin sites; each performs one random
    operation roughly every [mean_op_gap] (exponential gaps). *)

val stop : t -> unit
(** Agents drop their variables and stop scheduling operations (their
    in-flight travels still land). *)

val ops_done : t -> int
