(** Human-readable reports over a running system.

    Summaries for operators and experiment logs, plus a Graphviz
    export of the distributed object graph (sites as clusters,
    cross-site references highlighted, suspicion states colored) for
    debugging scenarios visually. *)

open Dgc_prelude
open Dgc_rts

type site_summary = {
  ss_id : Site_id.t;
  ss_objects : int;
  ss_roots : int;
  ss_inrefs : int;
  ss_outrefs : int;
  ss_suspected_inrefs : int;
  ss_suspected_outrefs : int;
  ss_flagged_inrefs : int;
  ss_traces_done : int;  (** completed local traces *)
}

val site_summary : Engine.t -> Site_id.t -> site_summary
val summarize : Engine.t -> site_summary list

val pp_summary : Format.formatter -> Engine.t -> unit
(** One table row per site plus a totals row. *)

val pp_site_detail : Format.formatter -> Engine.t -> Site_id.t -> unit
(** Heap and full ioref tables of one site. *)

val to_dot : Engine.t -> string
(** The whole object graph in Graphviz dot syntax: one cluster per
    site, persistent roots as double circles, suspected inref targets
    shaded, flagged ones marked, cross-site edges bold. *)

val garbage_overview : Engine.t -> string
(** One line: how much garbage the oracle sees and where. *)
