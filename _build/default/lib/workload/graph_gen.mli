(** Synthetic object-graph generators.

    All generators build through {!Dgc_rts.Builder}, so ioref tables
    are consistent from the start; distances converge once local
    traces run. *)

open Dgc_prelude
open Dgc_heap
open Dgc_rts

val ring :
  Engine.t -> sites:Site_id.t list -> per_site:int -> rooted:bool -> Oid.t list
(** A cycle that visits the given sites in order, [per_site] chained
    objects on each, with a cross-site link between consecutive sites
    and from the last back to the first. With [rooted], the first
    object also hangs off a fresh persistent root on the first site.
    Returns all objects in creation order (head = entry object). *)

val chain :
  Engine.t -> sites:Site_id.t list -> per_site:int -> rooted:bool -> Oid.t list
(** Like {!ring} without the closing link. *)

val clique : Engine.t -> sites:Site_id.t list -> rooted:bool -> Oid.t list
(** One object per site, each referencing all the others. *)

val random_graph :
  Engine.t ->
  rng:Rng.t ->
  objects_per_site:int ->
  out_degree:float ->
  remote_frac:float ->
  root_frac:float ->
  Oid.t list
(** A random graph over all of the engine's sites: each object draws
    ~[out_degree] references, remote with probability [remote_frac];
    a [root_frac] fraction of objects become persistent roots. *)

val hypertext :
  Engine.t ->
  rng:Rng.t ->
  docs_per_site:int ->
  pages_per_doc:int ->
  cross_links:int ->
  rooted_frac:float ->
  Oid.t list
(** The intro's motivating workload: each document is a prev/next ring
    of pages spread round-robin over the sites (an inter-site cycle),
    and [cross_links] random page-to-page links weave documents
    together. A [rooted_frac] fraction of documents is reachable from
    site directories (persistent roots); the rest is unreferenced —
    distributed cyclic garbage. Returns the garbage pages. *)
