open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core

type t = {
  sim : Sim.t;
  rng : Rng.t;
  mean_gap : Sim_time.t;
  mutable running : bool;
  mutable ops : int;
  agents : Mutator.t list;
}

let ops_done t = t.ops
let var_names = [| "v0"; "v1"; "v2"; "v3" |]
let pick_var t = Rng.choose_arr t.rng var_names

let random_op t agent =
  let eng = t.sim.Sim.eng in
  let held = Mutator.vars agent in
  let attempt =
    if held = [] then
      (* Bootstrap: grab a root or allocate. *)
      if Rng.bool t.rng then Mutator.load_root agent ~dst:(pick_var t)
      else Mutator.new_obj agent ~dst:(pick_var t)
    else begin
      let name, r = Rng.choose t.rng held in
      match Rng.int t.rng 8 with
      | 0 -> Mutator.load_root agent ~dst:(pick_var t)
      | 1 -> Mutator.new_obj agent ~dst:(pick_var t)
      | 2 -> begin
          (* Read a random field of a local held object. *)
          let heap = (Engine.site eng (Mutator.agent_site agent)).Site.heap in
          match Heap.fields heap r with
          | [] -> false
          | fields ->
              Mutator.read_field agent ~obj:name
                ~idx:(Rng.int t.rng (List.length fields))
                ~dst:(pick_var t)
        end
      | 3 ->
          let value, _ = Rng.choose t.rng held in
          Mutator.write agent ~obj:name ~value
      | 4 ->
          let target, _ = Rng.choose t.rng held in
          Mutator.unlink agent ~obj:name ~target
      | 5 -> Mutator.drop agent name
      | 6 ->
          let src, _ = Rng.choose t.rng held in
          Mutator.copy_var agent ~src ~dst:(pick_var t)
      | _ -> Mutator.travel agent ~via:name ~k:(fun () -> ())
    end
  in
  if attempt then t.ops <- t.ops + 1

let rec schedule_agent t agent =
  if t.running then begin
    let gap =
      Latency.sample t.rng (Latency.Exponential t.mean_gap)
    in
    Engine.schedule t.sim.Sim.eng ~delay:gap (fun () ->
        if t.running then begin
          if not (Mutator.traveling agent) then random_op t agent;
          schedule_agent t agent
        end)
  end

let start sim ~rng ~agents ~mean_op_gap =
  let eng = sim.Sim.eng in
  let n_sites = Array.length (Engine.sites eng) in
  let spawned =
    List.init agents (fun i ->
        Mutator.spawn sim.Sim.muts ~at:(Site_id.of_int (i mod n_sites)))
  in
  let t =
    { sim; rng; mean_gap = mean_op_gap; running = true; ops = 0; agents = spawned }
  in
  List.iter (fun a -> schedule_agent t a) spawned;
  t

let stop t =
  t.running <- false;
  List.iter
    (fun a ->
      if not (Mutator.traveling a) then
        List.iter (fun (name, _) -> ignore (Mutator.drop a name)) (Mutator.vars a))
    t.agents
