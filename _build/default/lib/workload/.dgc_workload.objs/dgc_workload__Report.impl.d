lib/workload/report.ml: Array Buffer Dgc_heap Dgc_oracle Dgc_prelude Dgc_rts Engine Format Hashtbl Heap Ioref List Oid Option Printf Site Site_id String Tables Util
