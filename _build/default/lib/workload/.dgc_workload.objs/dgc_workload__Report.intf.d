lib/workload/report.mli: Dgc_prelude Dgc_rts Engine Format Site_id
