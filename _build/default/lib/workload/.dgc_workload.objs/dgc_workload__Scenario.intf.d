lib/workload/scenario.mli: Config Dgc_core Dgc_heap Dgc_prelude Dgc_rts Mutator Oid Sim Site_id Verdict
