lib/workload/churn.mli: Dgc_core Dgc_prelude Dgc_simcore Rng Sim
