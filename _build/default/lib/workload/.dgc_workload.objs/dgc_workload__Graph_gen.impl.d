lib/workload/graph_gen.ml: Array Builder Dgc_heap Dgc_oracle Dgc_prelude Dgc_rts Engine List Oid Rng Site Site_id
