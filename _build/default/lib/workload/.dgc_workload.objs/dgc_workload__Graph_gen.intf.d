lib/workload/graph_gen.mli: Dgc_heap Dgc_prelude Dgc_rts Engine Oid Rng Site_id
