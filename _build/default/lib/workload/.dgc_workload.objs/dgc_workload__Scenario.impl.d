lib/workload/scenario.ml: Back_trace Builder Collector Config Dgc_core Dgc_heap Dgc_oracle Dgc_prelude Dgc_rts Dgc_simcore Engine Format Heap Latency List Mutator Oid Option Sim Sim_time Site Site_id
