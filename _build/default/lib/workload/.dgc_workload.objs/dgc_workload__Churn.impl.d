lib/workload/churn.ml: Array Dgc_core Dgc_heap Dgc_prelude Dgc_rts Dgc_simcore Engine Heap Latency List Mutator Rng Sim Sim_time Site Site_id
