open Dgc_prelude
open Dgc_heap
open Dgc_rts

type site_summary = {
  ss_id : Site_id.t;
  ss_objects : int;
  ss_roots : int;
  ss_inrefs : int;
  ss_outrefs : int;
  ss_suspected_inrefs : int;
  ss_suspected_outrefs : int;
  ss_flagged_inrefs : int;
  ss_traces_done : int;
}

let site_summary eng id =
  let s = Engine.site eng id in
  let suspected_in = ref 0 and flagged = ref 0 in
  Tables.iter_inrefs s.Site.tables (fun ir ->
      if ir.Ioref.ir_suspected then incr suspected_in;
      if ir.Ioref.ir_flagged then incr flagged);
  let suspected_out = ref 0 in
  Tables.iter_outrefs s.Site.tables (fun o ->
      if o.Ioref.or_suspected then incr suspected_out);
  {
    ss_id = id;
    ss_objects = Heap.object_count s.Site.heap;
    ss_roots = List.length (Heap.persistent_roots s.Site.heap);
    ss_inrefs = Tables.inref_count s.Site.tables;
    ss_outrefs = Tables.outref_count s.Site.tables;
    ss_suspected_inrefs = !suspected_in;
    ss_suspected_outrefs = !suspected_out;
    ss_flagged_inrefs = !flagged;
    ss_traces_done = s.Site.trace_epoch;
  }

let summarize eng =
  Array.to_list (Engine.sites eng)
  |> List.map (fun s -> site_summary eng s.Site.id)

let pp_summary ppf eng =
  let rows = summarize eng in
  Format.fprintf ppf
    "@[<v>%-6s %8s %6s %7s %8s %9s %9s %8s %7s@,"
    "site" "objects" "roots" "inrefs" "outrefs" "susp.in" "susp.out"
    "flagged" "traces";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-6s %8d %6d %7d %8d %9d %9d %8d %7d@,"
        (Format.asprintf "%a" Site_id.pp r.ss_id)
        r.ss_objects r.ss_roots r.ss_inrefs r.ss_outrefs
        r.ss_suspected_inrefs r.ss_suspected_outrefs r.ss_flagged_inrefs
        r.ss_traces_done)
    rows;
  let tot f = Util.list_sum f rows in
  Format.fprintf ppf "%-6s %8d %6d %7d %8d %9d %9d %8d@]" "total"
    (tot (fun r -> r.ss_objects))
    (tot (fun r -> r.ss_roots))
    (tot (fun r -> r.ss_inrefs))
    (tot (fun r -> r.ss_outrefs))
    (tot (fun r -> r.ss_suspected_inrefs))
    (tot (fun r -> r.ss_suspected_outrefs))
    (tot (fun r -> r.ss_flagged_inrefs))

let pp_site_detail ppf eng id =
  let s = Engine.site eng id in
  Format.fprintf ppf "@[<v>%a@,%a@]" Heap.pp s.Site.heap Tables.pp
    s.Site.tables

let dot_id r = Printf.sprintf "\"%s\"" (Oid.to_string r)

let to_dot eng =
  let buf = Buffer.create 1024 in
  let out fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  out "digraph dgc {\n  rankdir=LR;\n  node [shape=circle, fontsize=10];\n";
  Array.iter
    (fun s ->
      let id = Site_id.to_int s.Site.id in
      out "  subgraph cluster_%d {\n    label=\"site %d\";\n" id id;
      let roots = Heap.persistent_roots s.Site.heap in
      Heap.iter s.Site.heap (fun o ->
          let r = o.Heap.oid in
          let is_root = List.exists (Oid.equal r) roots in
          let style =
            match Tables.find_inref s.Site.tables r with
            | Some ir when ir.Ioref.ir_flagged ->
                "style=filled, fillcolor=black, fontcolor=white"
            | Some ir when ir.Ioref.ir_suspected ->
                "style=filled, fillcolor=gray80"
            | Some _ | None -> ""
          in
          out "    %s [%s%s];\n" (dot_id r)
            (if is_root then "shape=doublecircle" else "")
            (if style = "" then "" else (if is_root then ", " else "") ^ style));
      out "  }\n")
    (Engine.sites eng);
  Array.iter
    (fun s ->
      Heap.iter s.Site.heap (fun o ->
          List.iter
            (fun dst ->
              let cross = not (Site_id.equal (Oid.site dst) s.Site.id) in
              (* dangling edges (freed targets) would confuse dot *)
              let target_exists =
                Heap.mem (Engine.site eng (Oid.site dst)).Site.heap dst
              in
              if target_exists then
                out "  %s -> %s%s;\n" (dot_id o.Heap.oid) (dot_id dst)
                  (if cross then " [penwidth=2]" else " [style=dashed]"))
            o.Heap.fields))
    (Engine.sites eng);
  out "}\n";
  Buffer.contents buf

let garbage_overview eng =
  let g = Dgc_oracle.Oracle.garbage_set eng in
  if Oid.Set.is_empty g then "no garbage"
  else begin
    let by_site = Hashtbl.create 8 in
    Oid.Set.iter
      (fun r ->
        let k = Site_id.to_int (Oid.site r) in
        Hashtbl.replace by_site k (1 + Option.value ~default:0 (Hashtbl.find_opt by_site k)))
      g;
    let parts =
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) by_site []
      |> List.sort compare
      |> List.map (fun (k, v) -> Printf.sprintf "S%d:%d" k v)
    in
    Printf.sprintf "%d garbage objects (%s)" (Oid.Set.cardinal g)
      (String.concat " " parts)
  end
