open Dgc_prelude
open Dgc_heap
open Dgc_rts

let strand eng ~sites ~per_site ~rooted ~close =
  let objs =
    List.concat_map
      (fun s -> List.init per_site (fun _ -> Builder.obj eng s))
      sites
  in
  Builder.chain eng objs;
  (match (close, objs, List.rev objs) with
  | true, first :: _, last :: _ when not (Oid.equal first last) ->
      Builder.link eng ~src:last ~dst:first
  | _ -> ());
  (match (rooted, objs) with
  | true, first :: _ ->
      let root = Builder.root_obj eng (Oid.site first) in
      Builder.link eng ~src:root ~dst:first
  | _ -> ());
  objs

let ring eng ~sites ~per_site ~rooted =
  strand eng ~sites ~per_site ~rooted ~close:true

let chain eng ~sites ~per_site ~rooted =
  strand eng ~sites ~per_site ~rooted ~close:false

let clique eng ~sites ~rooted =
  let objs = List.map (fun s -> Builder.obj eng s) sites in
  List.iter
    (fun src ->
      List.iter
        (fun dst ->
          if not (Oid.equal src dst) then Builder.link eng ~src ~dst)
        objs)
    objs;
  (match (rooted, objs) with
  | true, first :: _ ->
      let root = Builder.root_obj eng (Oid.site first) in
      Builder.link eng ~src:root ~dst:first
  | _ -> ());
  objs

let random_graph eng ~rng ~objects_per_site ~out_degree ~remote_frac
    ~root_frac =
  let sites = Engine.sites eng in
  let n_sites = Array.length sites in
  let objs =
    Array.to_list sites
    |> List.concat_map (fun s ->
           List.init objects_per_site (fun _ -> Builder.obj eng s.Site.id))
  in
  let arr = Array.of_list objs in
  let pick_local site =
    (* Rejection-sample an object of the given site. *)
    let candidates = Array.of_list (List.filter (fun o -> Site_id.equal (Oid.site o) site) objs) in
    Rng.choose_arr rng candidates
  in
  List.iter
    (fun src ->
      let degree =
        let base = int_of_float out_degree in
        let frac = out_degree -. float_of_int base in
        base + if Rng.chance rng frac then 1 else 0
      in
      for _ = 1 to degree do
        let dst =
          if Rng.chance rng remote_frac && n_sites > 1 then begin
            let other =
              let rec pick () =
                let s = sites.(Rng.int rng n_sites).Site.id in
                if Site_id.equal s (Oid.site src) then pick () else s
              in
              pick ()
            in
            pick_local other
          end
          else pick_local (Oid.site src)
        in
        Builder.link eng ~src ~dst
      done;
      if Rng.chance rng root_frac then Builder.make_root eng src)
    objs;
  ignore arr;
  objs

let hypertext eng ~rng ~docs_per_site ~pages_per_doc ~cross_links ~rooted_frac
    =
  let sites = Engine.sites eng in
  let n_sites = Array.length sites in
  let all_pages = ref [] in
  let garbage_pages = ref [] in
  let docs = ref [] in
  Array.iteri
    (fun home s ->
      let directory = Builder.root_obj eng s.Site.id in
      for _ = 1 to docs_per_site do
        (* Pages are spread round-robin over the sites, so the
           prev/next ring of every document is an inter-site cycle —
           the situation that motivates the paper. *)
        let pages =
          List.init pages_per_doc (fun i ->
              Builder.obj eng (Site_id.of_int ((home + i) mod n_sites)))
        in
        Builder.cycle eng pages;
        let rooted = Rng.chance rng rooted_frac in
        (match pages with
        | first :: _ when rooted ->
            Builder.link eng ~src:directory ~dst:first
        | _ -> ());
        if not rooted then garbage_pages := pages @ !garbage_pages;
        all_pages := pages @ !all_pages;
        docs := (pages, rooted) :: !docs
      done)
    sites;
  let pages_arr = Array.of_list !all_pages in
  for _ = 1 to cross_links do
    let src = Rng.choose_arr rng pages_arr in
    let dst = Rng.choose_arr rng pages_arr in
    if not (Oid.equal src dst) then Builder.link eng ~src ~dst
  done;
  (* Cross links may have made "garbage" documents reachable from
     rooted ones; report the truly unreachable ones. *)
  let live = Dgc_oracle.Oracle.live_set eng in
  List.filter (fun p -> not (Oid.Set.mem p live)) !garbage_pages
