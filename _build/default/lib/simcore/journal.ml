type entry = { at : Sim_time.t; cat : string; text : string }

type t = {
  buf : entry option array;
  mutable next : int;  (** write cursor *)
  mutable total : int;
}

let create ?(capacity = 2048) () =
  if capacity <= 0 then invalid_arg "Journal.create: capacity";
  { buf = Array.make capacity None; next = 0; total = 0 }

let record t ~at ~cat text =
  t.buf.(t.next) <- Some { at; cat; text };
  t.next <- (t.next + 1) mod Array.length t.buf;
  t.total <- t.total + 1

let recordf t ~at ~cat fmt =
  Format.kasprintf (fun s -> record t ~at ~cat s) fmt

let fold_oldest_first t f acc =
  let cap = Array.length t.buf in
  let start = if t.total >= cap then t.next else 0 in
  let n = min t.total cap in
  let rec go i acc =
    if i >= n then acc
    else
      match t.buf.((start + i) mod cap) with
      | Some e -> go (i + 1) (f acc e)
      | None -> go (i + 1) acc
  in
  go 0 acc

let events ?cat ?last t =
  let all =
    fold_oldest_first t
      (fun acc e ->
        match cat with
        | Some c when c <> e.cat -> acc
        | _ -> (e.at, e.cat, e.text) :: acc)
      []
    |> List.rev
  in
  match last with
  | None -> all
  | Some n ->
      let len = List.length all in
      if len <= n then all
      else
        (* drop the oldest len - n *)
        List.filteri (fun i _ -> i >= len - n) all

let length t = min t.total (Array.length t.buf)
let total t = t.total

let clear t =
  Array.fill t.buf 0 (Array.length t.buf) None;
  t.next <- 0;
  t.total <- 0

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (at, cat, text) ->
      Format.fprintf ppf "%a [%s] %s@," Sim_time.pp at cat text)
    (events t);
  Format.fprintf ppf "@]"
