(** Simulated time.

    Time is a non-negative number of simulated seconds. The paper's
    regimes are: local traces minutes apart, message latencies of
    milliseconds (§4.7); the default configurations follow that ratio. *)

type t = float

val zero : t
val of_seconds : float -> t
val of_millis : float -> t
val of_minutes : float -> t
val to_seconds : t -> float
val add : t -> t -> t
val sub : t -> t -> t
(** Saturating at zero. *)

val compare : t -> t -> int
val ( <= ) : t -> t -> bool
val ( < ) : t -> t -> bool
val pp : Format.formatter -> t -> unit
