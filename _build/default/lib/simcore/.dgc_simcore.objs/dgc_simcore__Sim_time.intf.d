lib/simcore/sim_time.mli: Format
