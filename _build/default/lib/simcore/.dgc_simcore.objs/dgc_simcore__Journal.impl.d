lib/simcore/journal.ml: Array Format List Sim_time
