lib/simcore/metrics.ml: Dgc_prelude Float Format Hashtbl List String
