lib/simcore/metrics.mli: Format
