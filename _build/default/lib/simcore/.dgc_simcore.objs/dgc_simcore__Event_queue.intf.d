lib/simcore/event_queue.mli: Sim_time
