lib/simcore/journal.mli: Format Sim_time
