lib/simcore/latency.mli: Dgc_prelude Format Sim_time
