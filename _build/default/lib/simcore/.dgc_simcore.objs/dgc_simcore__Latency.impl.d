lib/simcore/latency.ml: Dgc_prelude Float Format Sim_time
