lib/simcore/event_queue.ml: Array Sim_time
