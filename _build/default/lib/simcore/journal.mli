(** A bounded journal of simulation events.

    A ring buffer of timestamped, categorized one-line events. The
    engine and collectors write into it when one is attached; the CLI
    and debugging sessions read it back. Writing is O(1) and the
    buffer never grows beyond its capacity, so it can stay attached
    during long runs. *)

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 2048 events. *)

val record : t -> at:Sim_time.t -> cat:string -> string -> unit
(** [cat] is a short label ("back", "gc", "barrier", "fault", ...). *)

val recordf :
  t -> at:Sim_time.t -> cat:string -> ('a, Format.formatter, unit, unit) format4 -> 'a
(** Formatted {!record}. *)

val events : ?cat:string -> ?last:int -> t -> (Sim_time.t * string * string) list
(** Oldest first; [cat] filters by category, [last] keeps only the
    most recent n (after filtering). *)

val length : t -> int
(** Events currently retained (≤ capacity). *)

val total : t -> int
(** Events ever recorded (including overwritten ones). *)

val clear : t -> unit
val pp : Format.formatter -> t -> unit
