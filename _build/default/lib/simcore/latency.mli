(** Message latency models for the simulated network. *)

type t =
  | Fixed of Sim_time.t
  | Uniform of Sim_time.t * Sim_time.t  (** inclusive lower, exclusive upper *)
  | Exponential of Sim_time.t  (** mean *)

val sample : Dgc_prelude.Rng.t -> t -> Sim_time.t
val mean : t -> Sim_time.t
val pp : Format.formatter -> t -> unit
