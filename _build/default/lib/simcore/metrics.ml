type t = {
  counters : (string, int ref) Hashtbl.t;
  samples : (string, float list ref) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; samples = Hashtbl.create 16 }

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.samples

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = incr (counter_ref t name)
let add t name n = counter_ref t name := !(counter_ref t name) + n

let get t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let counters t =
  Hashtbl.fold (fun k r acc -> (k, !r) :: acc) t.counters []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sample_ref t name =
  match Hashtbl.find_opt t.samples name with
  | Some r -> r
  | None ->
      let r = ref [] in
      Hashtbl.add t.samples name r;
      r

let observe t name x =
  let r = sample_ref t name in
  r := x :: !r

let samples t name =
  match Hashtbl.find_opt t.samples name with
  | Some r -> List.rev !r
  | None -> []

let mean t name = Dgc_prelude.Util.list_mean (samples t name)

let max_sample t name =
  List.fold_left Float.max neg_infinity (samples t name)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun (name, v) -> Format.fprintf ppf "%-40s %d@," name v)
    (counters t);
  Hashtbl.iter
    (fun name r ->
      Format.fprintf ppf "%-40s n=%d mean=%.2f@," name (List.length !r)
        (Dgc_prelude.Util.list_mean !r))
    t.samples;
  Format.fprintf ppf "@]"
