(** Named counters and sample collections for experiments.

    A [t] is a registry of integer counters and float samples. The
    simulator and collectors record into one registry per run; benches
    read it back to print experiment tables. *)

type t

val create : unit -> t
val reset : t -> unit

(** {1 Counters} *)

val incr : t -> string -> unit
val add : t -> string -> int -> unit
val get : t -> string -> int
(** 0 if never incremented. *)

val counters : t -> (string * int) list
(** Sorted by name. *)

(** {1 Samples} *)

val observe : t -> string -> float -> unit
val samples : t -> string -> float list
(** In observation order; [] if none. *)

val mean : t -> string -> float
val max_sample : t -> string -> float

val pp : Format.formatter -> t -> unit
