type t = float

let zero = 0.
let of_seconds s = s
let of_millis ms = ms /. 1000.
let of_minutes m = m *. 60.
let to_seconds t = t
let add = ( +. )
let sub a b = Float.max 0. (a -. b)
let compare = Float.compare
let ( <= ) a b = Float.compare a b <= 0
let ( < ) a b = Float.compare a b < 0

let pp ppf t =
  if t < 1. then Format.fprintf ppf "%.1fms" (t *. 1000.)
  else Format.fprintf ppf "%.3fs" t
