examples/hypertext.mli:
