examples/fault_tolerance.ml: Config Dgc_core Dgc_heap Dgc_prelude Dgc_rts Dgc_simcore Dgc_workload Engine Format Graph_gen List Metrics Sim Sim_time Site Site_id
