examples/observatory.mli:
