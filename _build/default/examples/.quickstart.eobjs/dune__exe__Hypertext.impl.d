examples/hypertext.ml: Array Churn Config Dgc_core Dgc_heap Dgc_oracle Dgc_prelude Dgc_rts Dgc_simcore Dgc_workload Engine Format Graph_gen List Metrics Rng Sim Sim_time Site
