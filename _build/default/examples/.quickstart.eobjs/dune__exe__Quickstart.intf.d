examples/quickstart.mli:
