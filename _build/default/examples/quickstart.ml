(* Quickstart: build a three-site store, create an inter-site garbage
   cycle, and watch the collector find it.

     dune exec examples/quickstart.exe

   This walks exactly the Figure 1 situation from the paper: local
   tracing alone collects acyclic garbage but can never collect the
   cross-site cycle; the distance heuristic suspects it, and a back
   trace confirms and reclaims it. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core

let say fmt = Format.printf (fmt ^^ "@.")

let () =
  (* A simulation with three sites and second-scale GC so the demo is
     quick; real deployments trace minutes apart. *)
  let cfg =
    {
      Config.default with
      Config.n_sites = 3;
      trace_interval = Sim_time.of_seconds 10.;
      delta = 3;
      threshold2 = 6;
      threshold_bump = 4;
    }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  let s0 = Site_id.of_int 0
  and s1 = Site_id.of_int 1
  and s2 = Site_id.of_int 2 in

  (* A persistent root at site 0 anchoring some live data... *)
  let root = Builder.root_obj eng s0 in
  let live = Builder.obj eng s1 in
  Builder.link eng ~src:root ~dst:live;

  (* ...an acyclic garbage chain across sites 0 -> 1... *)
  let g1 = Builder.obj eng s0 in
  let g2 = Builder.obj eng s1 in
  Builder.link eng ~src:g1 ~dst:g2;

  (* ...and a garbage cycle spread over sites 1 and 2. *)
  let c1 = Builder.obj eng s1 in
  let c2 = Builder.obj eng s2 in
  Builder.link eng ~src:c1 ~dst:c2;
  Builder.link eng ~src:c2 ~dst:c1;

  say "Initial state: %d garbage objects (oracle view)"
    (Dgc_oracle.Oracle.garbage_count eng);

  Sim.start sim;
  Sim.run_rounds sim 3;
  say "After 3 rounds of local tracing:";
  say "  acyclic chain collected: %b"
    ((not (Heap.mem (Engine.site eng s0).Site.heap g1))
    && not (Heap.mem (Engine.site eng s1).Site.heap g2));
  say "  cycle still there:       %b"
    (Heap.mem (Engine.site eng s1).Site.heap c1
    && Heap.mem (Engine.site eng s2).Site.heap c2);

  (* Keep going: distances on the cycle grow without bound, cross the
     suspicion threshold delta, then the back threshold delta2; a back
     trace runs and confirms the cycle as garbage. *)
  let collected = Sim.collect_all sim ~max_rounds:30 () in
  say "After more rounds: everything collected = %b" collected;
  say "  live object untouched:   %b"
    (Heap.mem (Engine.site eng s1).Site.heap live);

  (* What did the back traces do? *)
  List.iter
    (fun (id, st) ->
      match st.Back_trace.ts_outcome with
      | Some (v, at) ->
          say "  trace %a from %a: %a at t=%a, %d messages, sites {%s}"
            Trace_id.pp id Oid.pp st.Back_trace.ts_root Verdict.pp v
            Sim_time.pp at st.Back_trace.ts_msgs
            (String.concat ","
               (List.map
                  (fun s -> string_of_int (Site_id.to_int s))
                  (Site_id.Set.elements st.Back_trace.ts_participants)))
      | None -> say "  trace %a: still running" Trace_id.pp id)
    (Back_trace.stats (Collector.back sim.Sim.col));
  say "Note the locality: only the cycle's sites participate.";

  let m = Engine.metrics eng in
  say "Totals: %d local traces, %d objects freed, %d messages"
    (Metrics.get m "gc.local_traces")
    (Metrics.get m "gc.objects_freed")
    (Metrics.get m "msg.total")
