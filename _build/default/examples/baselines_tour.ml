(* A tour of the §7 baselines on the same workload.

     dune exec examples/baselines_tour.exe

   Runs the identical scenario — a 3-site garbage cycle plus a live
   ring, with site 3 crashed and unrelated to the cycle — under each
   collector, and reports who collects what at which cost. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload
open Dgc_baselines

let say fmt = Format.printf (fmt ^^ "@.")
let s = Site_id.of_int

let cfg =
  {
    Config.default with
    Config.n_sites = 4;
    trace_interval = Sim_time.of_seconds 10.;
    delta = 3;
    threshold2 = 6;
    threshold_bump = 4;
  }

(* Build the shared scenario on a fresh engine. *)
let build eng =
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1; s 2 ] ~per_site:2 ~rooted:false);
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1; s 2 ] ~per_site:1 ~rooted:true);
  Engine.crash eng (s 3)

let report name eng collected extra =
  let m = Engine.metrics eng in
  say "  %-14s collected=%-5b msgs=%-5d %s" name collected
    (Metrics.get m "msg.total") extra

let () =
  say "Scenario: 6-object garbage cycle on sites 0-2, live ring beside";
  say "it, and site 3 (unrelated) crashed for the whole run.";
  say "";

  (* Back tracing (this paper). *)
  let () =
    let sim = Sim.make ~cfg () in
    build sim.Sim.eng;
    Sim.start sim;
    let ok = Sim.collect_all sim ~max_rounds:40 () in
    let m = Engine.metrics sim.Sim.eng in
    report "back-tracing" sim.Sim.eng ok
      (Format.asprintf "back-msgs=%d traces=%d"
         (Metrics.get m "back.msgs")
         (Metrics.get m "back.traces_started"))
  in

  (* Global tracing: stalls because site 3 is down. *)
  let () =
    let eng = Engine.create cfg in
    let gt = Global_trace.install eng in
    build eng;
    Engine.start_gc_schedule eng;
    let finished = ref false in
    Global_trace.collect gt ~on_done:(fun ~freed:_ ~rounds:_ -> finished := true) ();
    Engine.run_for eng (Sim_time.of_minutes 10.);
    report "global-trace" eng
      (!finished && Dgc_oracle.Oracle.garbage_count eng = 0)
      "(stalls: needs every site up)"
  in

  (* Hughes: the crashed site pins the threshold at zero. *)
  let () =
    let eng = Engine.create cfg in
    let h = Hughes.install eng ~slack:(Sim_time.of_seconds 30.) in
    build eng;
    Engine.start_gc_schedule eng;
    for _ = 1 to 40 do
      Engine.run_for eng (Sim_time.of_seconds 15.);
      Hughes.run_threshold_round h ()
    done;
    report "hughes" eng
      (Dgc_oracle.Oracle.garbage_count eng = 0)
      (Format.asprintf "(threshold stuck at %.0f)" (Hughes.threshold h))
  in

  (* Group tracing: works here (the group avoids site 3), at the cost
     of a group-wide marking trace. *)
  let () =
    let eng = Engine.create cfg in
    let g = Group_trace.install eng ~max_group:8 in
    build eng;
    Engine.start_gc_schedule eng;
    Engine.run_for eng (Sim_time.of_minutes 10.);
    report "group-trace" eng
      (Dgc_oracle.Oracle.garbage_count eng = 0)
      (Format.asprintf "groups=%d size=%d" (Group_trace.groups_formed g)
         (Group_trace.last_group_size g))
  in

  (* Migration: converges the cycle onto one site, paying in moved
     bytes. *)
  let () =
    let eng = Engine.create cfg in
    let m = Migration.install eng in
    build eng;
    Engine.start_gc_schedule eng;
    Engine.run_for eng (Sim_time.of_minutes 20.);
    report "migration" eng
      (Dgc_oracle.Oracle.garbage_count eng = 0)
      (Format.asprintf "moves=%d bytes=%d" (Migration.migrations m)
         (Migration.bytes_moved m))
  in
  say "";
  say "Back tracing collects with a handful of small messages touching";
  say "only the cycle's sites; the global schemes stall on the crash;";
  say "group tracing marks a whole subgraph; migration pays in copied";
  say "object bytes."
