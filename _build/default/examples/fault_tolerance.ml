(* Fault tolerance and locality.

     dune exec examples/fault_tolerance.exe

   The paper's central claim about locality (§1): "if a site is
   crashed, partitioned from others, or otherwise slow, it will delay
   the collection of only the garbage reachable from its objects."
   This demo runs two garbage cycles — one on sites 0-1, one on sites
   2-3 — crashes site 3, and shows that the first cycle is collected
   on schedule while only the second waits for the recovery. Message
   loss is likewise tolerated through the §4.6 timeouts. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload

let say fmt = Format.printf (fmt ^^ "@.")
let s = Site_id.of_int

let garbage_on eng sites =
  ignore (Graph_gen.ring eng ~sites ~per_site:2 ~rooted:false)

let count_on eng sites =
  List.fold_left
    (fun acc site ->
      acc + Dgc_heap.Heap.object_count (Engine.site eng site).Site.heap)
    0 sites

let () =
  let cfg =
    {
      Config.default with
      Config.n_sites = 4;
      trace_interval = Sim_time.of_seconds 10.;
      delta = 3;
      threshold2 = 6;
      threshold_bump = 4;
      ext_drop = 0.15 (* and 15% of collector messages vanish *);
    }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  garbage_on eng [ s 0; s 1 ];
  garbage_on eng [ s 2; s 3 ];
  say "Two 2-site garbage cycles: one on sites 0-1, one on sites 2-3.";
  say "Site 3 crashes once suspicion has built up; 15%% of collector";
  say "messages are dropped throughout.";

  Sim.start sim;
  (* Let distances grow to the back threshold first, so back traces
     toward site 3 actually start and run into the crash. *)
  Sim.run_rounds sim 6;
  Engine.crash eng (s 3);
  Sim.run_rounds sim 15;

  say "After 20 rounds with site 3 down:";
  say "  cycle on 0-1: %d objects left (collected despite the crash)"
    (count_on eng [ s 0; s 1 ]);
  say "  cycle on 2-3: %d objects left (waiting for site 3)"
    (count_on eng [ s 2; s 3 ]);

  say "Site 3 recovers.";
  Engine.recover eng (s 3);
  let ok = Sim.collect_all sim ~max_rounds:40 () in
  say "After recovery: everything collected = %b" ok;

  let m = Engine.metrics eng in
  say "Timeout machinery used: %d back calls timed out, %d messages dropped"
    (Metrics.get m "back.call_timeout")
    (Metrics.get m "msg.dropped.lossy" + Metrics.get m "msg.dropped.crashed");
  say
    "Compare with the global-trace and Hughes baselines (see\n\
     examples/baselines_tour.exe), where this crash would have blocked\n\
     ALL cycle collection system-wide."
