(* Hypertext: the paper's motivating workload.

     dune exec examples/hypertext.exe

   "Hypertext documents often form large, complex cycles" (§1).
   Documents are rings of pages; random cross-links weave them into
   tangled inter-site webs. Unpublished documents are cyclic garbage
   that local tracing cannot touch; the collector reclaims them while
   live documents — including ones kept alive only through a chain of
   cross-links — survive. Mutator agents browse the web concurrently
   the whole time. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_rts
open Dgc_core
open Dgc_workload

let say fmt = Format.printf (fmt ^^ "@.")

let () =
  let cfg =
    {
      Config.default with
      Config.n_sites = 6;
      seed = 2026;
      trace_interval = Sim_time.of_seconds 15.;
      delta = 3;
      threshold2 = 7;
      threshold_bump = 5;
    }
  in
  let sim = Sim.make ~cfg () in
  let eng = sim.Sim.eng in
  let rng = Rng.create ~seed:99 in
  let garbage_pages =
    Graph_gen.hypertext eng ~rng ~docs_per_site:4 ~pages_per_doc:5
      ~cross_links:40 ~rooted_frac:0.5
  in
  let total =
    Array.fold_left
      (fun acc s -> acc + Dgc_heap.Heap.object_count s.Site.heap)
      0 (Engine.sites eng)
  in
  say "Built a hypertext web over %d sites; unpublished documents are"
    (Array.length (Engine.sites eng));
  say "unreachable, woven into inter-site cycles by page rings and";
  say "cross links.";
  say "  total objects: %d, cyclic garbage: %d" total
    (List.length garbage_pages);

  (* Readers browse while collection runs. *)
  let churn =
    Churn.start sim
      ~rng:(Rng.create ~seed:7)
      ~agents:4
      ~mean_op_gap:(Sim_time.of_millis 300.)
  in
  Sim.start sim;

  let rec watch round =
    if round <= 24 && Dgc_oracle.Oracle.garbage_count eng > 0 then begin
      Sim.run_rounds sim 2;
      say "  round %2d: %3d garbage objects left, %2d back traces started"
        (round * 2)
        (Dgc_oracle.Oracle.garbage_count eng)
        (Metrics.get (Engine.metrics eng) "back.traces_started");
      watch (round + 1)
    end
  in
  watch 1;
  Churn.stop churn;
  ignore (Sim.collect_all sim ~max_rounds:30 ());

  say "Done. %d reader operations ran concurrently; garbage left: %d"
    (Churn.ops_done churn)
    (Dgc_oracle.Oracle.garbage_count eng);
  let m = Engine.metrics eng in
  say "Back tracing: %d traces (%d garbage, %d live verdicts), %d messages"
    (Metrics.get m "back.traces_started")
    (Metrics.get m "back.outcome_garbage")
    (Metrics.get m "back.outcome_live")
    (Metrics.get m "back.msgs")
