(* Workload generators and whole-system determinism. *)

open Dgc_prelude
open Dgc_simcore
open Dgc_heap
open Dgc_rts
open Dgc_core
open Dgc_workload

let s k = Site_id.of_int k

let cfg n seed =
  {
    Config.default with
    Config.n_sites = n;
    seed;
    delta = 3;
    threshold2 = 6;
    trace_interval = Sim_time.of_seconds 10.;
    trace_duration = Sim_time.zero;
  }

(* --- generators ----------------------------------------------------------- *)

let test_ring_shape () =
  let eng = Engine.create (cfg 3 1) in
  let objs = Graph_gen.ring eng ~sites:[ s 0; s 1; s 2 ] ~per_site:2 ~rooted:false in
  Alcotest.(check int) "object count" 6 (List.length objs);
  Alcotest.(check int) "all garbage" 6 (Dgc_oracle.Oracle.garbage_count eng);
  Alcotest.(check (list string)) "tables consistent" []
    (Dgc_oracle.Oracle.table_violations eng);
  (* each site has exactly one inref and one outref *)
  Array.iter
    (fun st ->
      Alcotest.(check int) "one inref" 1 (Tables.inref_count st.Site.tables);
      Alcotest.(check int) "one outref" 1 (Tables.outref_count st.Site.tables))
    (Engine.sites eng)

let test_rooted_ring_is_live () =
  let eng = Engine.create (cfg 3 1) in
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1; s 2 ] ~per_site:2 ~rooted:true);
  Alcotest.(check int) "nothing is garbage" 0
    (Dgc_oracle.Oracle.garbage_count eng)

let test_chain_shape () =
  let eng = Engine.create (cfg 4 1) in
  let objs =
    Graph_gen.chain eng ~sites:[ s 0; s 1; s 2; s 3 ] ~per_site:1 ~rooted:true
  in
  Alcotest.(check int) "count" 4 (List.length objs);
  Alcotest.(check int) "live" 0 (Dgc_oracle.Oracle.garbage_count eng);
  (* last site has no outref *)
  Alcotest.(check int) "chain end has no outref" 0
    (Tables.outref_count (Engine.site eng (s 3)).Site.tables)

let test_clique_shape () =
  let eng = Engine.create (cfg 4 1) in
  let objs = Graph_gen.clique eng ~sites:[ s 0; s 1; s 2; s 3 ] ~rooted:false in
  Alcotest.(check int) "count" 4 (List.length objs);
  (* every object references the three others: inref has 3 sources *)
  List.iter
    (fun o ->
      match Tables.find_inref (Engine.site eng (Oid.site o)).Site.tables o with
      | Some ir ->
          Alcotest.(check int) "three sources" 3
            (List.length (Ioref.source_sites ir))
      | None -> Alcotest.fail "missing inref")
    objs;
  Alcotest.(check (list string)) "tables consistent" []
    (Dgc_oracle.Oracle.table_violations eng)

let test_hypertext_consistency () =
  let eng = Engine.create (cfg 4 1) in
  let garbage =
    Graph_gen.hypertext eng ~rng:(Rng.create ~seed:3) ~docs_per_site:3
      ~pages_per_doc:4 ~cross_links:10 ~rooted_frac:0.5
  in
  Alcotest.(check int) "reported garbage matches the oracle"
    (List.length garbage)
    (Dgc_oracle.Oracle.garbage_count eng);
  Alcotest.(check (list string)) "tables consistent" []
    (Dgc_oracle.Oracle.table_violations eng);
  (* documents span sites: garbage pages live on more than one site *)
  if garbage <> [] then begin
    let sites_used =
      Site_id.Set.cardinal
        (Site_id.Set.of_list (List.map Oid.site garbage))
    in
    Alcotest.(check bool) "distributed garbage" true (sites_used > 1)
  end

let test_random_graph_consistency () =
  let eng = Engine.create (cfg 4 1) in
  ignore
    (Graph_gen.random_graph eng ~rng:(Rng.create ~seed:9) ~objects_per_site:15
       ~out_degree:2.0 ~remote_frac:0.4 ~root_frac:0.1);
  Alcotest.(check (list string)) "tables consistent" []
    (Dgc_oracle.Oracle.table_violations eng);
  Alcotest.(check int) "all objects exist" 60
    (Array.fold_left
       (fun acc st -> acc + Heap.object_count st.Site.heap)
       0 (Engine.sites eng))

(* --- churn ------------------------------------------------------------------ *)

let test_churn_runs_and_stops () =
  let sim = Sim.make ~cfg:(cfg 3 1) () in
  let eng = sim.Sim.eng in
  Array.iter (fun st -> ignore (Builder.root_obj eng st.Site.id)) (Engine.sites eng);
  let churn =
    Churn.start sim ~rng:(Rng.create ~seed:4) ~agents:2
      ~mean_op_gap:(Sim_time.of_millis 100.)
  in
  Sim.run_for sim (Sim_time.of_seconds 30.);
  let ops = Churn.ops_done churn in
  Alcotest.(check bool) "operations happened" true (ops > 20);
  Churn.stop churn;
  Sim.run_for sim (Sim_time.of_seconds 10.);
  let after = Churn.ops_done churn in
  Sim.run_for sim (Sim_time.of_seconds 30.);
  Alcotest.(check int) "no ops after stop" after (Churn.ops_done churn)

(* --- determinism -------------------------------------------------------------- *)

(* The flagship reproducibility property: a full system run — churn,
   windowed traces, back traces, message loss — is a pure function of
   its seed. *)
let run_fingerprint seed =
  let c =
    {
      (cfg 4 seed) with
      Config.trace_duration = Sim_time.of_seconds 1.;
      ext_drop = 0.1;
    }
  in
  let sim = Sim.make ~cfg:c () in
  let eng = sim.Sim.eng in
  ignore
    (Graph_gen.random_graph eng ~rng:(Rng.create ~seed:(seed + 1))
       ~objects_per_site:10 ~out_degree:1.5 ~remote_frac:0.3 ~root_frac:0.1);
  Array.iter
    (fun st ->
      if Heap.persistent_roots st.Site.heap = [] then
        ignore (Builder.root_obj eng st.Site.id))
    (Engine.sites eng);
  let churn =
    Churn.start sim ~rng:(Rng.create ~seed:(seed + 2)) ~agents:3
      ~mean_op_gap:(Sim_time.of_millis 300.)
  in
  Sim.start sim;
  Sim.run_for sim (Sim_time.of_minutes 3.);
  Churn.stop churn;
  let m = Engine.metrics eng in
  ( Metrics.get m "msg.total",
    Metrics.get m "gc.objects_freed",
    Metrics.get m "back.traces_started",
    Churn.ops_done churn,
    Dgc_oracle.Oracle.garbage_count eng )

let test_determinism () =
  let a = run_fingerprint 77 in
  let b = run_fingerprint 77 in
  let pr (m, f, t, o, g) = Printf.sprintf "msgs=%d freed=%d traces=%d ops=%d garbage=%d" m f t o g in
  Alcotest.(check string) "identical runs from one seed" (pr a) (pr b);
  let c = run_fingerprint 78 in
  Alcotest.(check bool) "different seed differs somewhere" true (a <> c)

(* --- reports --------------------------------------------------------------- *)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_report_summary () =
  let sim = Sim.make ~cfg:(cfg 3 1) () in
  let eng = sim.Sim.eng in
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1; s 2 ] ~per_site:2 ~rooted:true);
  ignore (Graph_gen.ring eng ~sites:[ s 0; s 1 ] ~per_site:1 ~rooted:false);
  Scenario.settle sim ~rounds:3;
  let rows = Report.summarize eng in
  Alcotest.(check int) "one row per site" 3 (List.length rows);
  let r0 = Report.site_summary eng (s 0) in
  Alcotest.(check int) "objects at site 0" 4 r0.Report.ss_objects;
  Alcotest.(check int) "roots at site 0" 1 r0.Report.ss_roots;
  Alcotest.(check int) "traces recorded" 3 r0.Report.ss_traces_done;
  let text = Format.asprintf "%a" Report.pp_summary eng in
  Alcotest.(check bool) "summary mentions totals" true (contains text "total");
  Alcotest.(check bool) "overview counts garbage" true
    (contains (Report.garbage_overview eng) "garbage objects")

let test_report_dot () =
  let sim = Sim.make ~cfg:(cfg 2 1) () in
  let eng = sim.Sim.eng in
  let root = Builder.root_obj eng (s 0) in
  let remote = Builder.obj eng (s 1) in
  Builder.link eng ~src:root ~dst:remote;
  let dot = Report.to_dot eng in
  Alcotest.(check bool) "digraph header" true (contains dot "digraph dgc");
  Alcotest.(check bool) "cluster per site" true (contains dot "cluster_1");
  Alcotest.(check bool) "root shape" true (contains dot "doublecircle");
  Alcotest.(check bool) "cross edge bold" true (contains dot "penwidth=2");
  (* the dot output is balanced *)
  let count c = String.fold_left (fun n ch -> if ch = c then n + 1 else n) 0 dot in
  Alcotest.(check int) "braces balanced" (count '{') (count '}')

let test_report_detail () =
  let sim = Sim.make ~cfg:(cfg 2 1) () in
  let eng = sim.Sim.eng in
  let root = Builder.root_obj eng (s 0) in
  let remote = Builder.obj eng (s 1) in
  Builder.link eng ~src:root ~dst:remote;
  let text = Format.asprintf "%a" (fun ppf -> Report.pp_site_detail ppf eng) (s 0) in
  Alcotest.(check bool) "shows the heap" true (contains text "heap S0");
  Alcotest.(check bool) "shows the outref" true (contains text "outref")

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "ring" `Quick test_ring_shape;
          Alcotest.test_case "rooted ring live" `Quick test_rooted_ring_is_live;
          Alcotest.test_case "chain" `Quick test_chain_shape;
          Alcotest.test_case "clique" `Quick test_clique_shape;
          Alcotest.test_case "hypertext" `Quick test_hypertext_consistency;
          Alcotest.test_case "random graph" `Quick test_random_graph_consistency;
        ] );
      ("churn", [ Alcotest.test_case "runs and stops" `Quick test_churn_runs_and_stops ]);
      ( "determinism",
        [ Alcotest.test_case "seeded runs reproduce" `Slow test_determinism ] );
      ( "report",
        [
          Alcotest.test_case "summary" `Quick test_report_summary;
          Alcotest.test_case "graphviz export" `Quick test_report_dot;
          Alcotest.test_case "site detail" `Quick test_report_detail;
        ] );
    ]
