(* Substrate: ids, rng, time, event queue, latency models, metrics. *)

open Dgc_prelude
open Dgc_simcore

(* --- ids ---------------------------------------------------------------- *)

let test_site_id () =
  let a = Site_id.of_int 3 and b = Site_id.of_int 3 and c = Site_id.of_int 4 in
  Alcotest.(check bool) "equal" true (Site_id.equal a b);
  Alcotest.(check bool) "not equal" false (Site_id.equal a c);
  Alcotest.(check int) "compare" 0 (Site_id.compare a b);
  Alcotest.(check bool) "ordered" true (Site_id.compare a c < 0);
  Alcotest.(check string) "pp" "S3" (Format.asprintf "%a" Site_id.pp a);
  Alcotest.check_raises "negative rejected"
    (Invalid_argument "Site_id.of_int: negative") (fun () ->
      ignore (Site_id.of_int (-1)))

let test_trace_id () =
  let t1 = Trace_id.make ~initiator:(Site_id.of_int 1) ~seq:4 in
  let t2 = Trace_id.make ~initiator:(Site_id.of_int 1) ~seq:5 in
  let t3 = Trace_id.make ~initiator:(Site_id.of_int 2) ~seq:4 in
  Alcotest.(check bool) "equal self" true (Trace_id.equal t1 t1);
  Alcotest.(check bool) "seq distinguishes" false (Trace_id.equal t1 t2);
  Alcotest.(check bool) "site distinguishes" false (Trace_id.equal t1 t3);
  Alcotest.(check bool) "order by site first" true (Trace_id.compare t2 t3 < 0);
  let s = Trace_id.Set.of_list [ t1; t2; t3; t1 ] in
  Alcotest.(check int) "set dedups" 3 (Trace_id.Set.cardinal s)

(* --- rng ---------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:11 and b = Rng.create ~seed:11 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_split_independent () =
  let a = Rng.create ~seed:11 in
  let child = Rng.split a in
  let before = List.init 10 (fun _ -> Rng.int child 1000) in
  (* Drawing more from the parent must not change a fresh child-like
     stream derived the same way from an identical parent. *)
  let a2 = Rng.create ~seed:11 in
  let child2 = Rng.split a2 in
  let again = List.init 10 (fun _ -> Rng.int child2 1000) in
  Alcotest.(check (list int)) "derivation deterministic" before again

let test_rng_bounds () =
  let r = Rng.create ~seed:3 in
  for _ = 1 to 200 do
    let x = Rng.int_in r 5 9 in
    Alcotest.(check bool) "int_in bounds" true (x >= 5 && x <= 9);
    let f = Rng.float_in r 1.5 2.5 in
    Alcotest.(check bool) "float_in bounds" true (f >= 1.5 && f < 2.5)
  done;
  Alcotest.check_raises "empty choose"
    (Invalid_argument "Rng.choose: empty list") (fun () ->
      ignore (Rng.choose r []))

let test_rng_permutation () =
  let r = Rng.create ~seed:5 in
  let p = Rng.permutation r 20 in
  let sorted = Array.copy p in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "permutation of 0..n-1"
    (Array.init 20 (fun i -> i))
    sorted

let test_rng_chance_extremes () =
  let r = Rng.create ~seed:9 in
  for _ = 1 to 50 do
    Alcotest.(check bool) "p=1 always true" true (Rng.chance r 1.0);
    Alcotest.(check bool) "p=0 always false" false (Rng.chance r 0.0)
  done

(* --- util --------------------------------------------------------------- *)

let test_util_lists () =
  Alcotest.(check int) "sum" 6 (Util.list_sum (fun x -> x) [ 1; 2; 3 ]);
  Alcotest.(check int) "max" 9
    (Util.list_max ~default:0 (fun x -> x) [ 4; 9; 2 ]);
  Alcotest.(check int) "max default" 7 (Util.list_max ~default:7 Fun.id []);
  Alcotest.(check (list int)) "take" [ 1; 2 ] (Util.list_take 2 [ 1; 2; 3 ]);
  Alcotest.(check (list int)) "take beyond" [ 1 ] (Util.list_take 5 [ 1 ]);
  Alcotest.(check (list int))
    "dedup" [ 1; 2; 3 ]
    (Util.list_dedup ~compare:Int.compare [ 3; 1; 2; 1; 3 ]);
  Alcotest.(check (float 1e-9)) "mean" 2. (Util.list_mean [ 1.; 2.; 3. ]);
  Alcotest.(check (float 1e-9)) "mean empty" 0. (Util.list_mean []);
  Alcotest.(check (float 1e-9))
    "median" 2.
    (Util.percentile 0.5 [ 3.; 1.; 2. ]);
  Alcotest.(check (float 1e-9)) "p100" 3. (Util.percentile 1.0 [ 3.; 1.; 2. ])

(* --- time --------------------------------------------------------------- *)

let test_time () =
  let t = Sim_time.of_millis 1500. in
  Alcotest.(check (float 1e-9)) "millis" 1.5 (Sim_time.to_seconds t);
  Alcotest.(check (float 1e-9)) "minutes" 120.
    (Sim_time.to_seconds (Sim_time.of_minutes 2.));
  Alcotest.(check (float 1e-9)) "sub saturates" 0.
    (Sim_time.to_seconds (Sim_time.sub (Sim_time.of_seconds 1.) (Sim_time.of_seconds 2.)));
  Alcotest.(check bool) "order" true Sim_time.(Sim_time.zero < t)

(* --- event queue --------------------------------------------------------- *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.push q ~at:3. "c";
  Event_queue.push q ~at:1. "a";
  Event_queue.push q ~at:2. "b";
  let pop () =
    match Event_queue.pop q with Some (_, x) -> x | None -> "empty"
  in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ]
    [ first; second; third ];
  Alcotest.(check bool) "now empty" true (Event_queue.is_empty q)

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  List.iter (fun x -> Event_queue.push q ~at:1. x) [ "x"; "y"; "z" ];
  let out = List.init 3 (fun _ ->
      match Event_queue.pop q with Some (_, v) -> v | None -> "?")
  in
  Alcotest.(check (list string)) "insertion order on ties" [ "x"; "y"; "z" ]
    out

let prop_queue_sorted =
  QCheck2.Test.make ~name:"event queue pops sorted" ~count:300
    ~print:QCheck2.Print.(list (pair float unit))
    QCheck2.Gen.(list (pair (float_bound_exclusive 1000.) unit))
    (fun entries ->
      let q = Event_queue.create () in
      List.iter (fun (t, ()) -> Event_queue.push q ~at:(Float.abs t) ()) entries;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> if t < last then false else drain t
      in
      drain neg_infinity)

let test_queue_interleaved () =
  let q = Event_queue.create () in
  Event_queue.push q ~at:5. 5;
  Event_queue.push q ~at:1. 1;
  (match Event_queue.pop q with
  | Some (_, 1) -> ()
  | _ -> Alcotest.fail "expected 1");
  Event_queue.push q ~at:2. 2;
  Event_queue.push q ~at:7. 7;
  let rest =
    List.init 3 (fun _ ->
        match Event_queue.pop q with Some (_, v) -> v | None -> -1)
  in
  Alcotest.(check (list int)) "interleaved pushes" [ 2; 5; 7 ] rest;
  Alcotest.(check int) "length" 0 (Event_queue.length q)

(* --- latency -------------------------------------------------------------- *)

let test_latency () =
  let r = Rng.create ~seed:2 in
  Alcotest.(check (float 1e-9)) "fixed" 0.25
    (Latency.sample r (Latency.Fixed 0.25));
  for _ = 1 to 100 do
    let x = Latency.sample r (Latency.Uniform (0.1, 0.2)) in
    Alcotest.(check bool) "uniform bounds" true (x >= 0.1 && x < 0.2);
    let e = Latency.sample r (Latency.Exponential 0.05) in
    Alcotest.(check bool) "exp positive" true (e >= 0.)
  done;
  Alcotest.(check (float 1e-9)) "uniform mean" 0.15
    (Latency.mean (Latency.Uniform (0.1, 0.2)))

(* --- journal --------------------------------------------------------------- *)

let test_journal_basics () =
  let j = Journal.create ~capacity:4 () in
  Journal.record j ~at:1. ~cat:"a" "one";
  Journal.recordf j ~at:2. ~cat:"b" "two %d" 2;
  Alcotest.(check int) "length" 2 (Journal.length j);
  Alcotest.(check int) "total" 2 (Journal.total j);
  (match Journal.events j with
  | [ (1., "a", "one"); (2., "b", "two 2") ] -> ()
  | _ -> Alcotest.fail "unexpected events");
  Alcotest.(check int) "category filter" 1
    (List.length (Journal.events ~cat:"a" j));
  Journal.clear j;
  Alcotest.(check int) "cleared" 0 (Journal.length j)

let test_journal_ring_wraps () =
  let j = Journal.create ~capacity:3 () in
  for i = 1 to 10 do
    Journal.record j ~at:(float_of_int i) ~cat:"t" (string_of_int i)
  done;
  Alcotest.(check int) "capped" 3 (Journal.length j);
  Alcotest.(check int) "total counts all" 10 (Journal.total j);
  (match Journal.events j with
  | [ (_, _, "8"); (_, _, "9"); (_, _, "10") ] -> ()
  | _ -> Alcotest.fail "expected the newest three, oldest first");
  match Journal.events ~last:2 j with
  | [ (_, _, "9"); (_, _, "10") ] -> ()
  | _ -> Alcotest.fail "last filter"

(* --- metrics --------------------------------------------------------------- *)

let test_metrics () =
  let m = Metrics.create () in
  Metrics.incr m "a";
  Metrics.incr m "a";
  Metrics.add m "b" 5;
  Alcotest.(check int) "incr" 2 (Metrics.get m "a");
  Alcotest.(check int) "add" 5 (Metrics.get m "b");
  Alcotest.(check int) "absent" 0 (Metrics.get m "zzz");
  Metrics.observe m "s" 1.;
  Metrics.observe m "s" 3.;
  Alcotest.(check (float 1e-9)) "mean" 2. (Metrics.mean m "s");
  Alcotest.(check (list (float 1e-9))) "samples in order" [ 1.; 3. ]
    (Metrics.samples m "s");
  Alcotest.(check (list (pair string int)))
    "counters sorted"
    [ ("a", 2); ("b", 5) ]
    (Metrics.counters m);
  Metrics.reset m;
  Alcotest.(check int) "reset" 0 (Metrics.get m "a")

let () =
  Alcotest.run "substrate"
    [
      ( "ids",
        [
          Alcotest.test_case "site ids" `Quick test_site_id;
          Alcotest.test_case "trace ids" `Quick test_trace_id;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "split derivation" `Quick
            test_rng_split_independent;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "permutation" `Quick test_rng_permutation;
          Alcotest.test_case "chance extremes" `Quick test_rng_chance_extremes;
        ] );
      ("util", [ Alcotest.test_case "list helpers" `Quick test_util_lists ]);
      ("time", [ Alcotest.test_case "arithmetic" `Quick test_time ]);
      ( "event-queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "interleaved" `Quick test_queue_interleaved;
          QCheck_alcotest.to_alcotest prop_queue_sorted;
        ] );
      ("latency", [ Alcotest.test_case "models" `Quick test_latency ]);
      ( "journal",
        [
          Alcotest.test_case "basics" `Quick test_journal_basics;
          Alcotest.test_case "ring wraps" `Quick test_journal_ring_wraps;
        ] );
      ("metrics", [ Alcotest.test_case "registry" `Quick test_metrics ]);
    ]
